#!/usr/bin/env bash
# Run the kernel + RTOS + trace + ISS + parallel + arch + spans benchmark
# suites and leave machine-readable BENCH_kernel.json / BENCH_rtos.json /
# BENCH_trace.json / BENCH_iss.json / BENCH_parallel.json / BENCH_arch.json /
# BENCH_spans.json behind. Designed to be runnable both by
# hand and from CI:
#
#   bench/run_benches.sh                     # full run, ./build, ./BENCH_*.json
#   bench/run_benches.sh --smoke             # CI smoke mode (milliseconds)
#   bench/run_benches.sh --build-dir DIR     # pick a build tree
#   bench/run_benches.sh --out FILE          # where to write the kernel JSON
#   bench/run_benches.sh --rtos-out FILE     # where to write the RTOS JSON
#   bench/run_benches.sh --trace-out FILE    # where to write the trace JSON
#   bench/run_benches.sh --iss-out FILE      # where to write the ISS JSON
#   bench/run_benches.sh --parallel-out FILE # where to write the parallel JSON
#   bench/run_benches.sh --arch-out FILE     # where to write the arch/sweep JSON
#   bench/run_benches.sh --soak-out FILE     # where to write the soak JSON
#   bench/run_benches.sh --micro             # also run the google-benchmark micro suite
#
# Any required benchmark binary that is missing is a hard error (exit 1), so
# a misconfigured build can't silently produce a partial report.
set -euo pipefail

build_dir=build
out=BENCH_kernel.json
rtos_out=BENCH_rtos.json
trace_out=BENCH_trace.json
iss_out=BENCH_iss.json
parallel_out=BENCH_parallel.json
arch_out=BENCH_arch.json
spans_out=BENCH_spans.json
soak_out=BENCH_soak.json
smoke_flag=""
run_micro=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke_flag="--smoke" ;;
    --build-dir) build_dir="$2"; shift ;;
    --out) out="$2"; shift ;;
    --rtos-out) rtos_out="$2"; shift ;;
    --trace-out) trace_out="$2"; shift ;;
    --iss-out) iss_out="$2"; shift ;;
    --parallel-out) parallel_out="$2"; shift ;;
    --arch-out) arch_out="$2"; shift ;;
    --spans-out) spans_out="$2"; shift ;;
    --soak-out) soak_out="$2"; shift ;;
    --micro) run_micro=1 ;;
    *) echo "usage: $0 [--smoke] [--build-dir DIR] [--out FILE] [--rtos-out FILE] [--trace-out FILE] [--iss-out FILE] [--parallel-out FILE] [--arch-out FILE] [--spans-out FILE] [--soak-out FILE] [--micro]" >&2; exit 2 ;;
  esac
  shift
done

required="bench_ctx bench_rtos bench_trace bench_iss bench_parallel bench_arch bench_spans bench_soak"
if [[ "$run_micro" == 1 ]]; then
  required="$required bench_micro"
fi
for bin in $required; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not built (cmake --build $build_dir --target $bin)" >&2
    exit 1
  fi
done

"$build_dir/bench/bench_ctx" $smoke_flag --out "$out"
"$build_dir/bench/bench_rtos" $smoke_flag --out "$rtos_out"
"$build_dir/bench/bench_trace" $smoke_flag --out "$trace_out"
"$build_dir/bench/bench_iss" $smoke_flag --out "$iss_out"
"$build_dir/bench/bench_parallel" $smoke_flag --out "$parallel_out"
"$build_dir/bench/bench_arch" $smoke_flag --out "$arch_out"
"$build_dir/bench/bench_spans" $smoke_flag --out "$spans_out"
"$build_dir/bench/bench_soak" $smoke_flag --out "$soak_out"

if [[ "$run_micro" == 1 ]]; then
  if [[ -n "$smoke_flag" ]]; then
    # Older google-benchmark wants a bare double (no "s" suffix) here.
    "$build_dir/bench/bench_micro" --benchmark_min_time=0.01
  else
    "$build_dir/bench/bench_micro"
  fi
fi
