#!/usr/bin/env bash
# Run the kernel benchmark suite and leave a machine-readable BENCH_kernel.json
# behind. Designed to be runnable both by hand and from CI:
#
#   bench/run_benches.sh                    # full run, ./build, ./BENCH_kernel.json
#   bench/run_benches.sh --smoke            # CI smoke mode (milliseconds)
#   bench/run_benches.sh --build-dir DIR    # pick a build tree
#   bench/run_benches.sh --out FILE         # where to write the JSON
#   bench/run_benches.sh --micro            # also run the google-benchmark micro suite
set -euo pipefail

build_dir=build
out=BENCH_kernel.json
smoke_flag=""
run_micro=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke_flag="--smoke" ;;
    --build-dir) build_dir="$2"; shift ;;
    --out) out="$2"; shift ;;
    --micro) run_micro=1 ;;
    *) echo "usage: $0 [--smoke] [--build-dir DIR] [--out FILE] [--micro]" >&2; exit 2 ;;
  esac
  shift
done

bench_ctx="$build_dir/bench/bench_ctx"
if [[ ! -x "$bench_ctx" ]]; then
  echo "error: $bench_ctx not built (cmake --build $build_dir --target bench_ctx)" >&2
  exit 1
fi

"$bench_ctx" $smoke_flag --out "$out"

if [[ "$run_micro" == 1 && -x "$build_dir/bench/bench_micro" ]]; then
  if [[ -n "$smoke_flag" ]]; then
    # Older google-benchmark wants a bare double (no "s" suffix) here.
    "$build_dir/bench/bench_micro" --benchmark_min_time=0.01
  else
    "$build_dir/bench/bench_micro"
  fi
fi
