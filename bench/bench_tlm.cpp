// Communication-abstraction ablation (the TLM ladder of the companion work
// "RTOS Scheduling in Transaction Level Models"): the same two-master
// streaming workload modeled at message, transaction, and bus-functional
// word level. Reports per-message latency under contention and the
// simulation cost — the accuracy/speed tradeoff of communication modeling.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "arch/arch.hpp"
#include "arch/tlm.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::arch;
using namespace slm::time_literals;

namespace {

struct LevelResult {
    SimTime avg_latency;
    SimTime max_latency;
    SimTime unfairness;  ///< |completion difference| between the two streams
    std::uint64_t kernel_activations;
    double wall_ms;
};

LevelResult run_level(CommLevel level) {
    constexpr int kMessages = 200;
    constexpr std::size_t kBytes = 1024;
    Kernel k;
    Bus bus{k, "bus", Bus::Config{100_ns, 10_ns}};
    TlmChannel ch{bus, "stream", level};
    SimTime total, worst;
    std::vector<SimTime> stream_done(2);
    const auto t0 = std::chrono::steady_clock::now();
    for (int m = 0; m < 2; ++m) {
        k.spawn("m" + std::to_string(m), [&, m] {
            for (int i = 0; i < kMessages; ++i) {
                const SimTime start = k.now();
                ch.send(kBytes, [&](SimTime dt) { k.waitfor(dt); }, m);
                const SimTime lat = k.now() - start;
                total += lat;
                worst = std::max(worst, lat);
            }
            stream_done[static_cast<std::size_t>(m)] = k.now();
        });
    }
    k.run();
    LevelResult r;
    r.avg_latency = total / (2 * kMessages);
    r.max_latency = worst;
    r.unfairness = stream_done[0] > stream_done[1] ? stream_done[0] - stream_done[1]
                                                   : stream_done[1] - stream_done[0];
    r.kernel_activations = k.stats().process_activations;
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    return r;
}

}  // namespace

int main() {
    std::printf("=== Communication abstraction ablation: 2 masters x 200 x 1 KiB ===\n\n");
    std::printf("%-15s %12s %12s %12s %12s %10s\n", "level", "avg latency",
                "max latency", "unfairness", "activations", "wall [ms]");
    LevelResult msg{}, txn{}, bf{};
    for (const auto level :
         {CommLevel::Message, CommLevel::Transaction, CommLevel::BusFunctional}) {
        const LevelResult r = run_level(level);
        std::printf("%-15s %12s %12s %12s %12llu %10.2f\n", to_string(level),
                    r.avg_latency.to_string().c_str(),
                    r.max_latency.to_string().c_str(),
                    r.unfairness.to_string().c_str(),
                    static_cast<unsigned long long>(r.kernel_activations), r.wall_ms);
        if (level == CommLevel::Message) {
            msg = r;
        } else if (level == CommLevel::Transaction) {
            txn = r;
        } else {
            bf = r;
        }
    }

    std::printf("\nchecks:\n");
    const bool optimistic = msg.max_latency < txn.max_latency &&
                            msg.max_latency < bf.max_latency;
    const bool fair = bf.unfairness < txn.unfairness;
    const bool cost = msg.kernel_activations < txn.kernel_activations &&
                      txn.kernel_activations < bf.kernel_activations;
    std::printf("  [%s] message level is optimistic under contention\n",
                optimistic ? "PASS" : "FAIL");
    std::printf("  [%s] bus-functional level shares bandwidth fairly\n",
                fair ? "PASS" : "FAIL");
    std::printf("  [%s] simulation cost rises with modeling detail\n",
                cost ? "PASS" : "FAIL");
    std::printf("\nThe same tradeoff as the RTOS model's preemption granularity, applied\n"
                "to communication: each step down the abstraction ladder exposes more\n"
                "contention detail and costs more simulation events.\n");
    return 0;
}
