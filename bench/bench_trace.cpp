// Trace-sink recording benchmarks: TraceRecorder (string records) vs
// obs::BinaryTraceSink (interned-string fixed-width records) fed the same
// synthetic scheduling trace. Times its own loops and emits BENCH_trace.json
// so the record-throughput ratio (the PR's >=5x target) is tracked from PR to
// PR; also measures the binary sink's replay/convert cost, which is the price
// paid back only when a derived view is actually needed.
//
// The workload mirrors what an OsCore emits: a fixed cast of tasks whose
// names are hierarchical dotted paths (several beyond small-string-
// optimization length, as in real models — "vocoder.codec.encoder_task"),
// cycling through task-state, context-switch, IRQ, and channel records with
// nondecreasing timestamps.
//
// Usage: bench_trace [--smoke] [--out FILE]
//   --smoke   tiny iteration counts for CI
//   --out     output path (default: BENCH_trace.json in the CWD)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/binary_trace.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;

namespace {

struct Measurement {
    double ns_per_item = 0.0;
    double items_per_sec = 0.0;
    std::uint64_t items = 0;
};

double elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
        .count();
}

Measurement finish(std::uint64_t items, double ns) {
    Measurement m;
    m.items = items;
    m.ns_per_item = ns / static_cast<double>(items);
    m.items_per_sec = 1e9 * static_cast<double>(items) / ns;
    return m;
}

/// The task/CPU/state cast. Long-lived std::strings, exactly like the names
/// owned by TCBs and RtosConfig — producers pass string_views of these.
struct Cast {
    std::vector<std::string> tasks;
    std::vector<std::string> cpus;
    std::vector<std::string> states;
    std::vector<std::string> irqs;
    std::vector<std::string> channels;

    Cast() {
        const char* roots[] = {"vocoder.codec", "vocoder.io", "radio.stack",
                               "control.loop"};
        const char* leaves[] = {"driver_task", "encoder_task", "decoder_task",
                                "monitor_task"};
        for (const char* r : roots) {
            for (const char* l : leaves) {
                tasks.push_back(std::string(r) + "." + l);
            }
        }
        cpus = {"DSP0", "DSP1"};
        states = {"Ready", "Running", "WaitingEvent", "WaitingPeriod"};
        irqs = {"audio_subframe_irq", "sys_bus_rx_irq"};
        channels = {"frame_q", "bits_q", "sub_sem.evt"};
    }
};

/// Feed `records` trace records into `sink` and return the recording rate.
/// The event mix per 8-record block: 4 task states, 2 context switches, one
/// IRQ, one channel op — roughly what an RTOS-model run produces.
Measurement bm_record(trace::TraceSink& sink, const Cast& cast,
                      std::uint64_t records) {
    const std::size_t task_mask = cast.tasks.size() - 1;  // 16 tasks
    std::uint64_t emitted = 0;
    std::uint64_t t_ns = 0;
    std::size_t cur = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (emitted < records) {
        const std::size_t next = (cur + 1) & task_mask;
        const std::string& cpu = cast.cpus[cur & 1];
        t_ns += 250;
        const SimTime t{t_ns};
        sink.task_state(t, cpu, cast.tasks[cur], cast.states[2 + (cur & 1)]);
        sink.task_state(t, cpu, cast.tasks[next], cast.states[0]);
        sink.context_switch(t, cpu, cast.tasks[next], cast.tasks[cur]);
        sink.task_state(t, cpu, cast.tasks[next], cast.states[1]);
        emitted += 4;
        if ((cur & 3) == 0) {
            sink.irq(t, cpu, cast.irqs[(cur >> 2) & 1]);
            ++emitted;
        }
        if ((cur & 3) == 2) {
            sink.channel_op(t, cast.channels[cur & 1], "send");
            sink.context_switch(t, cpu, cast.tasks[cur], cast.tasks[next]);
            sink.task_state(t, cpu, cast.tasks[cur], cast.states[1]);
            emitted += 3;
        }
        cur = next;
    }
    return finish(emitted, elapsed_ns(t0));
}

void emit(std::FILE* f, const char* name, const Measurement& m) {
    std::fprintf(f,
                 "    \"%s\": {\"unit\": \"record\", \"ns_per_item\": %.2f, "
                 "\"items_per_sec\": %.0f, \"items\": %llu}",
                 name, m.ns_per_item, m.items_per_sec,
                 static_cast<unsigned long long>(m.items));
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_trace.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_trace [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const std::uint64_t records = smoke ? 200'000 : 8'000'000;
    const int reps = smoke ? 1 : 3;  // best-of to damp allocator noise
    Cast cast;

    Measurement rec_m{}, bin_m{}, replay_m{};
    for (int r = 0; r < reps; ++r) {
        trace::TraceRecorder rec;
        const Measurement m = bm_record(rec, cast, records);
        if (r == 0 || m.items_per_sec > rec_m.items_per_sec) {
            rec_m = m;
        }
    }
    obs::BinaryTraceSink keep;  // reused below for replay + integrity checks
    for (int r = 0; r < reps; ++r) {
        obs::BinaryTraceSink bin;
        const Measurement m = bm_record(bin, cast, records);
        if (r == 0 || m.items_per_sec > bin_m.items_per_sec) {
            bin_m = m;
        }
        if (r == reps - 1) {
            keep = std::move(bin);
        }
    }
    {
        trace::TraceRecorder out;
        const auto t0 = std::chrono::steady_clock::now();
        keep.replay_into(out);
        replay_m = finish(keep.size(), elapsed_ns(t0));
        if (out.records().size() != keep.size()) {
            std::fprintf(stderr, "bench_trace: replay lost records\n");
            return 1;
        }
    }
    const double speedup = bin_m.items_per_sec / rec_m.items_per_sec;

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_trace: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-trace-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"records\": %llu,\n",
                 static_cast<unsigned long long>(rec_m.items));
    std::fprintf(f, "  \"benchmarks\": {\n");
    emit(f, "BM_TraceRecorderRecord", rec_m);
    std::fprintf(f, ",\n");
    emit(f, "BM_BinaryTraceSinkRecord", bin_m);
    std::fprintf(f, ",\n");
    emit(f, "BM_BinaryTraceReplay", replay_m);
    std::fprintf(f, ",\n    \"speedup_binary_over_recorder\": %.2f,\n", speedup);
    std::fprintf(f, "    \"interned_strings\": %llu\n",
                 static_cast<unsigned long long>(keep.string_count()));
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);

    std::printf("trace record     recorder  %10.1f ns/rec %14.0f rec/s\n",
                rec_m.ns_per_item, rec_m.items_per_sec);
    std::printf("trace record     binary    %10.1f ns/rec %14.0f rec/s\n",
                bin_m.ns_per_item, bin_m.items_per_sec);
    std::printf("binary replay              %10.1f ns/rec %14.0f rec/s\n",
                replay_m.ns_per_item, replay_m.items_per_sec);
    std::printf("record speedup binary/recorder: %.1fx\n", speedup);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
