// RTOS personality benchmarks. Times the common syscall paths — task
// create/activate/terminate lifecycle, semaphore signal/wait round trips,
// uncontended mutex lock/unlock — once through the paper-style API
// (RtosModel) and once through the ITRON-style API (ItronOs), and emits a
// machine-readable BENCH_rtos.json so the cost of the personality layer is
// tracked from PR to PR. The contract of the layered architecture is that a
// personality only renames calls; the per-item ratio printed here is the
// measured price of that veneer (ID lookup + error-code mapping).
//
// The mutex rows drive the shared OsMutex service through each personality's
// core — ITRON has no mutex call set of its own, which is itself a point the
// layering makes: services bind to the core, not to an API flavor.
//
// Usage: bench_rtos [--smoke] [--out FILE]
//   --smoke   tiny iteration counts for CI (seconds -> milliseconds)
//   --out     output path (default: BENCH_rtos.json in the CWD)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "rtos/itron.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

struct Measurement {
    double ns_per_item = 0.0;
    double items_per_sec = 0.0;
    std::uint64_t items = 0;
};

double elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
        .count();
}

Measurement finish(std::uint64_t items, double ns) {
    Measurement m;
    m.items = items;
    m.ns_per_item = ns / static_cast<double>(items);
    m.items_per_sec = 1e9 * static_cast<double>(items) / ns;
    return m;
}

/// Task lifecycle: create + activate + terminate, in waves so dispatch and
/// termination are included. Items = tasks that ran to completion.
Measurement bm_lifecycle_paper(int waves, int per_wave) {
    sim::Kernel k;
    rtos::RtosModel os{k};
    os.init();
    const auto t0 = std::chrono::steady_clock::now();
    for (int w = 0; w < waves; ++w) {
        for (int i = 0; i < per_wave; ++i) {
            rtos::Task* t =
                os.task_create("t", rtos::TaskType::Aperiodic, {}, {}, i);
            k.spawn("t", [&os, t] {
                os.task_activate(t);
                os.task_terminate();
            });
        }
        if (w == 0) {
            os.start();
        }
        k.run();
    }
    const double ns = elapsed_ns(t0);
    return finish(static_cast<std::uint64_t>(waves) * per_wave, ns);
}

Measurement bm_lifecycle_itron(int waves, int per_wave) {
    sim::Kernel k;
    rtos::itron::ItronOs os{k};
    rtos::itron::ID next_id = 1;
    const auto t0 = std::chrono::steady_clock::now();
    for (int w = 0; w < waves; ++w) {
        for (int i = 0; i < per_wave; ++i) {
            os.cre_tsk(next_id, {.name = "t", .itskpri = i, .task = [] {}});
            os.sta_tsk(next_id);
            ++next_id;
        }
        if (w == 0) {
            os.start();
        }
        k.run();
    }
    const double ns = elapsed_ns(t0);
    return finish(static_cast<std::uint64_t>(waves) * per_wave, ns);
}

/// Semaphore signal/wait round trip between two tasks: every acquire blocks
/// and every release redispatches the peer, so items (= acquires) price the
/// full syscall + reschedule + context-handoff path.
Measurement bm_sem_pingpong_paper(int iters) {
    sim::Kernel k;
    rtos::RtosModel os{k};
    os.init();
    rtos::OsSemaphore a{os, 0, "a"};
    rtos::OsSemaphore b{os, 0, "b"};
    rtos::Task* ping = os.task_create("ping", rtos::TaskType::Aperiodic, {}, {}, 1);
    rtos::Task* pong = os.task_create("pong", rtos::TaskType::Aperiodic, {}, {}, 2);
    k.spawn("ping", [&, ping] {
        os.task_activate(ping);
        for (int i = 0; i < iters; ++i) {
            a.acquire();
            b.release();
        }
        os.task_terminate();
    });
    k.spawn("pong", [&, pong] {
        os.task_activate(pong);
        for (int i = 0; i < iters; ++i) {
            a.release();
            b.acquire();
        }
        os.task_terminate();
    });
    os.start();
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const double ns = elapsed_ns(t0);
    return finish(2 * static_cast<std::uint64_t>(iters), ns);
}

Measurement bm_sem_pingpong_itron(int iters) {
    sim::Kernel k;
    rtos::itron::ItronOs os{k};
    os.cre_sem(1, {.isemcnt = 0, .name = "a"});
    os.cre_sem(2, {.isemcnt = 0, .name = "b"});
    os.cre_tsk(1, {.name = "ping", .itskpri = 1, .task = [&os, iters] {
                       for (int i = 0; i < iters; ++i) {
                           os.wai_sem(1);
                           os.sig_sem(2);
                       }
                   }});
    os.cre_tsk(2, {.name = "pong", .itskpri = 2, .task = [&os, iters] {
                       for (int i = 0; i < iters; ++i) {
                           os.sig_sem(1);
                           os.wai_sem(2);
                       }
                   }});
    os.sta_tsk(1);
    os.sta_tsk(2);
    os.start();
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const double ns = elapsed_ns(t0);
    return finish(2 * static_cast<std::uint64_t>(iters), ns);
}

/// Uncontended mutex lock/unlock pairs from a single task: the cheapest
/// syscall pair (no blocking, no dispatch), isolating per-call bookkeeping.
Measurement bm_mutex_paper(int iters) {
    sim::Kernel k;
    rtos::RtosModel os{k};
    os.init();
    rtos::OsMutex m{os, rtos::OsMutex::Protocol::PriorityInheritance};
    rtos::Task* t = os.task_create("t", rtos::TaskType::Aperiodic, {}, {}, 1);
    k.spawn("t", [&, t] {
        os.task_activate(t);
        for (int i = 0; i < iters; ++i) {
            m.lock();
            m.unlock();
        }
        os.task_terminate();
    });
    os.start();
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const double ns = elapsed_ns(t0);
    return finish(static_cast<std::uint64_t>(iters), ns);
}

Measurement bm_mutex_itron(int iters) {
    sim::Kernel k;
    rtos::itron::ItronOs os{k};
    rtos::OsMutex m{os.core(), rtos::OsMutex::Protocol::PriorityInheritance};
    os.cre_tsk(1, {.name = "t", .itskpri = 1, .task = [&m, iters] {
                       for (int i = 0; i < iters; ++i) {
                           m.lock();
                           m.unlock();
                       }
                   }});
    os.sta_tsk(1);
    os.start();
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const double ns = elapsed_ns(t0);
    return finish(static_cast<std::uint64_t>(iters), ns);
}

void emit(std::FILE* f, const char* name, const char* unit,
          const std::vector<std::pair<std::string, Measurement>>& rows) {
    std::fprintf(f, "    \"%s\": {\n      \"unit\": \"%s\"", name, unit);
    for (const auto& [personality, m] : rows) {
        std::fprintf(f,
                     ",\n      \"%s\": {\"ns_per_item\": %.2f, "
                     "\"items_per_sec\": %.0f, \"items\": %llu}",
                     personality.c_str(), m.ns_per_item, m.items_per_sec,
                     static_cast<unsigned long long>(m.items));
    }
    if (rows.size() == 2) {
        std::fprintf(f, ",\n      \"itron_over_paper_ratio\": %.3f",
                     rows[1].second.ns_per_item / rows[0].second.ns_per_item);
    }
    std::fprintf(f, "\n    }");
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_rtos.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_rtos [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const int waves = smoke ? 5 : 50;
    const int per_wave = smoke ? 50 : 200;
    const int sem_iters = smoke ? 2'000 : 200'000;
    const int mutex_iters = smoke ? 20'000 : 2'000'000;

    std::fprintf(stderr, "bench_rtos: personality=paper...\n");
    std::vector<std::pair<std::string, Measurement>> lifecycle, sem, mutex;
    lifecycle.emplace_back("paper", bm_lifecycle_paper(waves, per_wave));
    sem.emplace_back("paper", bm_sem_pingpong_paper(sem_iters));
    mutex.emplace_back("paper", bm_mutex_paper(mutex_iters));
    std::fprintf(stderr, "bench_rtos: personality=itron...\n");
    lifecycle.emplace_back("itron", bm_lifecycle_itron(waves, per_wave));
    sem.emplace_back("itron", bm_sem_pingpong_itron(sem_iters));
    mutex.emplace_back("itron", bm_mutex_itron(mutex_iters));

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_rtos: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-rtos-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"benchmarks\": {\n");
    emit(f, "BM_TaskLifecycle", "task", lifecycle);
    std::fprintf(f, ",\n");
    emit(f, "BM_SemSignalWaitRoundTrip", "acquire", sem);
    std::fprintf(f, ",\n");
    emit(f, "BM_MutexLockUnlock", "lock/unlock pair", mutex);
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);

    for (const auto& [name, rows] :
         {std::pair<const char*,
                    const std::vector<std::pair<std::string, Measurement>>&>{
              "task lifecycle", lifecycle},
          {"sem round trip", sem},
          {"mutex pair", mutex}}) {
        for (const auto& [personality, m] : rows) {
            std::printf("%-16s %-6s %10.1f ns/item %12.0f items/s\n", name,
                        personality.c_str(), m.ns_per_item, m.items_per_sec);
        }
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
