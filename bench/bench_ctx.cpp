// Fast-context engine benchmarks. Unlike the google-benchmark binaries, this
// one times its own loops and emits a machine-readable BENCH_kernel.json so
// the kernel's perf trajectory (ns/switch, switches/sec, spawn throughput,
// RTOS dispatch latency) is tracked from PR to PR, with the assembly backend
// and the ucontext baseline measured side by side in one run.
//
// Usage: bench_ctx [--smoke] [--out FILE]
//   --smoke   tiny iteration counts for CI (seconds -> milliseconds)
//   --out     output path (default: BENCH_kernel.json in the CWD)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "rtos/rtos.hpp"
#include "sim/context.hpp"
#include "sim/kernel.hpp"
#include "sim/stack_pool.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

struct Measurement {
    double ns_per_item = 0.0;
    double items_per_sec = 0.0;
    std::uint64_t items = 0;
};

double elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
        .count();
}

Measurement finish(std::uint64_t items, double ns) {
    Measurement m;
    m.items = items;
    m.ns_per_item = ns / static_cast<double>(items);
    m.items_per_sec = 1e9 * static_cast<double>(items) / ns;
    return m;
}

/// Raw cost of the context-switch engine itself: a bare Context::switch_to
/// ping-pong between the thread context and one coroutine, no scheduler in
/// the loop. Items = individual switches (one round trip = 2 switches).
/// This isolates what the assembly backend replaces: swapcontext's register
/// save/restore plus its two sigprocmask syscalls.
struct PingPong {
    sim::Context main_ctx;
    sim::Context fib_ctx;
    sim::ContextBackend backend;
    bool done = false;
};

void pingpong_entry(void* raw) {
    auto* pp = static_cast<PingPong*>(raw);
    while (!pp->done) {
        sim::Context::switch_to(pp->fib_ctx, pp->main_ctx, pp->backend);
    }
    sim::Context::switch_to(pp->fib_ctx, pp->main_ctx, pp->backend,
                            /*finishing=*/true);
}

Measurement bm_raw_switch(sim::ContextBackend backend, int round_trips) {
    sim::StackPool pool{/*guard_pages=*/false};
    sim::StackBlock stack = pool.acquire(64 * 1024);
    PingPong pp;
    pp.backend = backend;
    pp.main_ctx.adopt_thread_stack();
    pp.fib_ctx.init(stack.base, stack.size, &pingpong_entry, &pp, backend);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < round_trips; ++i) {
        sim::Context::switch_to(pp.main_ctx, pp.fib_ctx, backend);
    }
    const double ns = elapsed_ns(t0);
    pp.done = true;
    sim::Context::switch_to(pp.main_ctx, pp.fib_ctx, backend);
    pool.release(stack);
    return finish(2 * static_cast<std::uint64_t>(round_trips), ns);
}

/// Round-trip coroutine switch cost through the full kernel scheduler: two
/// processes yielding to each other. Items = kernel process activations (one
/// activation = switch in + out), so this includes ready-queue and state
/// bookkeeping on top of the raw switch above.
Measurement bm_kernel_yield(sim::ContextBackend backend, int yields) {
    sim::KernelConfig cfg;
    cfg.backend = backend;
    sim::Kernel k{cfg};
    k.spawn("a", [&] {
        for (int i = 0; i < yields; ++i) {
            k.yield();
        }
    });
    k.spawn("b", [&] {
        for (int i = 0; i < yields; ++i) {
            k.yield();
        }
    });
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const double ns = elapsed_ns(t0);
    return finish(k.stats().process_activations, ns);
}

/// Spawn throughput across waves of short-lived processes; later waves are
/// served from the stack pool's free list. Out-params expose the pool's
/// recycle behavior for the JSON report.
Measurement bm_spawn(sim::ContextBackend backend, int waves, int per_wave,
                     std::uint64_t* recycled, double* hit_rate) {
    sim::KernelConfig cfg;
    cfg.backend = backend;
    sim::Kernel k{cfg};
    const auto t0 = std::chrono::steady_clock::now();
    for (int w = 0; w < waves; ++w) {
        for (int i = 0; i < per_wave; ++i) {
            k.spawn("p", [] {});
        }
        k.run();
    }
    const double ns = elapsed_ns(t0);
    *recycled = k.stats().stacks_recycled;
    *hit_rate = static_cast<double>(k.stats().stacks_recycled) /
                static_cast<double>(k.stats().processes_created);
    return finish(k.stats().processes_created, ns);
}

/// RTOS dispatch latency: `tasks` priority-scheduled tasks wake every delay
/// tick and contend for the CPU, so each wake exercises ready-queue insert +
/// pick + dispatch. Items = RTOS dispatches.
Measurement bm_rtos_dispatch(sim::ContextBackend backend, int tasks, int cycles) {
    sim::KernelConfig cfg;
    cfg.backend = backend;
    sim::Kernel k{cfg};
    rtos::RtosConfig rcfg;
    rcfg.policy = rtos::SchedPolicy::Priority;
    rtos::RtosModel os{k, rcfg};
    os.init();
    std::vector<rtos::Task*> handles;
    for (int i = 0; i < tasks; ++i) {
        handles.push_back(os.task_create("t" + std::to_string(i),
                                         rtos::TaskType::Aperiodic, {}, {}, i));
    }
    for (int i = 0; i < tasks; ++i) {
        rtos::Task* t = handles[static_cast<std::size_t>(i)];
        k.spawn("t" + std::to_string(i), [&os, t, cycles] {
            os.task_activate(t);
            for (int c = 0; c < cycles; ++c) {
                os.task_delay(1_us);
            }
            os.task_terminate();
        });
    }
    k.spawn("starter", [&os] { os.start(); });
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const double ns = elapsed_ns(t0);
    return finish(os.stats().dispatches, ns);
}

void emit(std::FILE* f, const char* name, const char* unit,
          const std::vector<std::pair<std::string, Measurement>>& rows,
          const char* extra_json = nullptr) {
    std::fprintf(f, "    \"%s\": {\n      \"unit\": \"%s\"", name, unit);
    for (const auto& [backend, m] : rows) {
        std::fprintf(f,
                     ",\n      \"%s\": {\"ns_per_item\": %.2f, "
                     "\"items_per_sec\": %.0f, \"items\": %llu}",
                     backend.c_str(), m.ns_per_item, m.items_per_sec,
                     static_cast<unsigned long long>(m.items));
    }
    if (rows.size() == 2) {
        std::fprintf(f, ",\n      \"speedup_fast_over_ucontext\": %.2f",
                     rows[0].second.items_per_sec / rows[1].second.items_per_sec);
    }
    if (extra_json != nullptr) {
        std::fprintf(f, ",\n      %s", extra_json);
    }
    std::fprintf(f, "\n    }");
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_ctx [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const int round_trips = smoke ? 50'000 : 2'000'000;
    const int yields = smoke ? 10'000 : 500'000;
    const int waves = smoke ? 10 : 100;
    const int per_wave = smoke ? 50 : 500;
    const int rtos_tasks = 64;
    const int rtos_cycles = smoke ? 20 : 1'000;

    std::vector<sim::ContextBackend> backends;
    if (sim::fast_context_compiled()) {
        backends.push_back(sim::ContextBackend::Fast);
    }
    backends.push_back(sim::ContextBackend::Ucontext);

    std::vector<std::pair<std::string, Measurement>> ctx, yield_rows, spawn,
        rtos_rows;
    std::uint64_t recycled = 0;
    double hit_rate = 0.0;
    for (const auto b : backends) {
        const std::string name = to_string(b);
        std::fprintf(stderr, "bench_ctx: backend=%s...\n", name.c_str());
        ctx.emplace_back(name, bm_raw_switch(b, round_trips));
        yield_rows.emplace_back(name, bm_kernel_yield(b, yields));
        spawn.emplace_back(name, bm_spawn(b, waves, per_wave, &recycled, &hit_rate));
        rtos_rows.emplace_back(name, bm_rtos_dispatch(b, rtos_tasks, rtos_cycles));
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_ctx: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-kernel-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"fast_context_compiled\": %s,\n",
                 sim::fast_context_compiled() ? "true" : "false");
    std::fprintf(f, "  \"benchmarks\": {\n");
    emit(f, "BM_KernelContextSwitch", "switch", ctx);
    std::fprintf(f, ",\n");
    emit(f, "BM_KernelYield", "activation", yield_rows);
    std::fprintf(f, ",\n");
    char pool_extra[128];
    std::snprintf(pool_extra, sizeof(pool_extra),
                  "\"stack_pool\": {\"stacks_recycled\": %llu, \"hit_rate\": %.3f}",
                  static_cast<unsigned long long>(recycled), hit_rate);
    emit(f, "BM_KernelSpawn", "spawn", spawn, pool_extra);
    std::fprintf(f, ",\n");
    emit(f, "BM_RtosDispatch", "dispatch", rtos_rows);
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);

    // Human-readable summary on stdout.
    for (const auto& [name, rows] :
         {std::pair<const char*, const std::vector<std::pair<std::string, Measurement>>&>{
              "context switch", ctx},
          {"kernel yield", yield_rows},
          {"spawn", spawn},
          {"rtos dispatch", rtos_rows}}) {
        for (const auto& [backend, m] : rows) {
            std::printf("%-16s %-9s %10.1f ns/item %14.0f items/s\n", name,
                        backend.c_str(), m.ns_per_item, m.items_per_sec);
        }
    }
    if (ctx.size() == 2) {
        std::printf("context-switch speedup fast/ucontext: %.1fx\n",
                    ctx[0].second.items_per_sec / ctx[1].second.items_per_sec);
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
