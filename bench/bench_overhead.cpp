// Measures the simulation overhead of the RTOS model layer — the paper's §5
// claim that "the simulation overhead introduced by the RTOS model is
// negligible". Compares wall-clock cost of simulating the same workload as
// (a) raw SLDL processes and (b) RTOS-model tasks, across task counts.
// google-benchmark binary: run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

constexpr int kStepsPerTask = 200;

/// Workload (a): plain SLDL processes with waitfor delays.
void BM_RawKernelProcesses(benchmark::State& state) {
    const int tasks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Kernel k;
        for (int i = 0; i < tasks; ++i) {
            k.spawn("p" + std::to_string(i), [&k, i] {
                for (int s = 0; s < kStepsPerTask; ++s) {
                    k.waitfor(microseconds(static_cast<std::uint64_t>(10 + i)));
                }
            });
        }
        k.run();
        benchmark::DoNotOptimize(k.now());
    }
    state.SetItemsProcessed(state.iterations() * tasks * kStepsPerTask);
}

/// Workload (b): the same delays issued as RTOS-model time_wait calls.
void BM_RtosModelTasks(benchmark::State& state) {
    const int tasks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Kernel k;
        rtos::RtosModel os{k};
        for (int i = 0; i < tasks; ++i) {
            rtos::Task* t =
                os.task_create("t" + std::to_string(i), rtos::TaskType::Aperiodic,
                               {}, {}, i % 4);
            k.spawn("t" + std::to_string(i), [&os, t, i] {
                os.task_activate(t);
                for (int s = 0; s < kStepsPerTask; ++s) {
                    os.time_wait(microseconds(static_cast<std::uint64_t>(10 + i)));
                }
                os.task_terminate();
            });
        }
        os.start();
        k.run();
        benchmark::DoNotOptimize(k.now());
    }
    state.SetItemsProcessed(state.iterations() * tasks * kStepsPerTask);
}

/// Workload (c): RTOS tasks ping-ponging through semaphores (syscall-heavy
/// pattern; semaphores rather than bare events because event notifications
/// are lossy when nobody waits yet).
void BM_RtosSemPingPong(benchmark::State& state) {
    constexpr int kRounds = 500;
    for (auto _ : state) {
        sim::Kernel k;
        rtos::RtosModel os{k};
        rtos::OsSemaphore ping{os, 0, "ping"};
        rtos::OsSemaphore pong{os, 0, "pong"};
        rtos::Task* a = os.task_create("a", rtos::TaskType::Aperiodic, {}, {}, 1);
        rtos::Task* b = os.task_create("b", rtos::TaskType::Aperiodic, {}, {}, 2);
        k.spawn("a", [&] {
            os.task_activate(a);
            for (int r = 0; r < kRounds; ++r) {
                os.time_wait(1_us);
                ping.release();
                pong.acquire();
            }
            os.task_terminate();
        });
        k.spawn("b", [&] {
            os.task_activate(b);
            for (int r = 0; r < kRounds; ++r) {
                ping.acquire();
                os.time_wait(1_us);
                pong.release();
            }
            os.task_terminate();
        });
        os.start();
        k.run();
        if (os.stats().context_switches < 2 * kRounds) {
            state.SkipWithError("ping-pong did not complete");
        }
        benchmark::DoNotOptimize(os.stats().context_switches);
    }
    state.SetItemsProcessed(state.iterations() * kRounds);
}

}  // namespace

BENCHMARK(BM_RawKernelProcesses)->Arg(2)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_RtosModelTasks)->Arg(2)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_RtosSemPingPong);

BENCHMARK_MAIN();
