// Span-tracing benchmarks: the two-PE vocoder model simulated with span
// tracing disabled (opts.spans == nullptr — every hook is a null-pointer
// test) and enabled (obs::SpanRecorder wired in), plus the critical-path
// extractor, emitting a machine-readable BENCH_spans.json (schema
// slm-bench-spans-v1).
//
// Three gates, reflected in the "gates" block of the JSON and the exit code:
//   critical_path_exact   HARD: for EVERY token of the two-PE model and for
//                         the 8-candidate sweep winner's attribution, the
//                         per-category segments must sum to the observed
//                         end-to-end latency in integer nanoseconds.
//   enabled_overhead_2x   HARD: simulating with a SpanRecorder attached may
//                         cost at most 2x the spans-disabled run. Recording
//                         is an interned fixed-width append per event, so the
//                         observed ratio sits near 1.0x.
//   disabled_delta_noise  HARD: two independent spans-disabled batches must
//                         agree within 30% (best-of-reps each) — the
//                         "disabled tracing is zero-cost" claim made
//                         falsifiable: the hooks add no measurable time, so
//                         any two disabled runs differ only by timer noise.
//
// Usage: bench_spans [--smoke] [--out FILE]
//   --smoke   tiny workloads for CI (milliseconds)
//   --out     output path (default: BENCH_spans.json in the CWD)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "sys/sweep.hpp"
#include "vocoder/system.hpp"

using namespace slm;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/// One full two-PE vocoder simulation; `rec` optional. Returns wall ms.
double run_model(const vocoder::VocoderConfig& cfg, obs::SpanRecorder* rec) {
    const auto t0 = std::chrono::steady_clock::now();
    sys::SystemOptions opts;
    opts.base_rtos = cfg.rtos;
    opts.spans = rec;
    sys::System system{vocoder::vocoder_app_spec(cfg.frames),
                       vocoder::vocoder_two_pe_platform(cfg),
                       vocoder::vocoder_split_mapping(), opts};
    (void)vocoder::attach_vocoder_behaviors(system, cfg);
    system.run();
    return elapsed_ms(t0);
}

/// Best-of-`reps` spans-disabled run (damp scheduler/allocator noise).
double best_disabled(const vocoder::VocoderConfig& cfg, int reps) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double ms = run_model(cfg, nullptr);
        if (r == 0 || ms < best) {
            best = ms;
        }
    }
    return best;
}

struct GateState {
    bool failed = false;

    /// PASS / FAIL with a hard exit-code consequence.
    const char* hard(bool ok) {
        if (!ok) {
            failed = true;
        }
        return ok ? "PASS" : "FAIL";
    }
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_spans.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_spans [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    vocoder::VocoderConfig cfg;
    cfg.frames = smoke ? 16 : 200;
    const int reps = smoke ? 3 : 5;

    // Untimed warm-up: the first simulation pays one-off allocator and page
    // costs that would otherwise land entirely in batch A.
    (void)run_model(cfg, nullptr);

    // ---- spans disabled: two independent batches -------------------------
    std::fprintf(stderr, "bench_spans: disabled runs (%zu frames x %d reps x 2)...\n",
                 cfg.frames, reps);
    const double disabled_a = best_disabled(cfg, reps);
    const double disabled_b = best_disabled(cfg, reps);
    const double disabled_ms = disabled_a < disabled_b ? disabled_a : disabled_b;
    const double hi = disabled_a > disabled_b ? disabled_a : disabled_b;
    const double disabled_delta = hi / (disabled_ms > 0.0 ? disabled_ms : 1e-9);

    // ---- spans enabled ---------------------------------------------------
    std::fprintf(stderr, "bench_spans: enabled runs...\n");
    double enabled_ms = 0.0;
    obs::SpanRecorder rec;
    for (int r = 0; r < reps; ++r) {
        obs::SpanRecorder local;
        const double ms = run_model(cfg, &local);
        if (r == 0 || ms < enabled_ms) {
            enabled_ms = ms;
        }
        if (r == reps - 1) {
            rec = std::move(local);
        }
    }
    const double overhead =
        enabled_ms / (disabled_ms > 0.0 ? disabled_ms : 1e-9);
    const double spans_per_sec =
        1e3 * static_cast<double>(rec.size()) / (enabled_ms > 0.0 ? enabled_ms : 1e-9);

    // ---- critical-path extraction + exactness ----------------------------
    const auto tx = std::chrono::steady_clock::now();
    const std::vector<obs::CriticalPath> paths = obs::extract_critical_paths(rec);
    const double extract_ms = elapsed_ms(tx);
    bool exact = paths.size() == cfg.frames;
    for (const obs::CriticalPath& cp : paths) {
        exact = exact && cp.exact();
    }

    // Sweep winner: the 8-candidate heterogeneous sweep with attribution on;
    // every candidate's worst-sample breakdown (winner included) must be exact.
    std::fprintf(stderr, "bench_spans: attributed sweep...\n");
    vocoder::VocoderConfig swcfg;
    swcfg.frames = smoke ? 4 : 12;
    const sys::AppSpec app = vocoder::vocoder_app_spec(swcfg.frames);
    const sys::PlatformSpec platform = vocoder::vocoder_sweep_platform(swcfg);
    const std::vector<sys::MappingSpec> candidates =
        sys::enumerate_mappings(app, platform, vocoder::vocoder_enum_options());
    sys::SweepConfig scfg;
    scfg.options.base_rtos = swcfg.rtos;
    scfg.attribute = true;
    const sys::SweepResult sweep = sys::run_sweep(app, platform, candidates, scfg,
                                                  vocoder::vocoder_setup(swcfg));
    bool sweep_exact = !sweep.candidates.empty();
    for (const sys::CandidateResult& c : sweep.candidates) {
        sweep_exact = sweep_exact && c.attribution.valid && c.attribution.exact();
    }

    // ---- gates ------------------------------------------------------------
    GateState gates;
    const char* g_exact = gates.hard(exact && sweep_exact);
    const char* g_overhead = gates.hard(overhead <= 2.0);
    const char* g_delta = gates.hard(disabled_delta <= 1.30);

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_spans: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-spans-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"frames\": %zu,\n", cfg.frames);
    std::fprintf(f,
                 "  \"benchmarks\": {\n"
                 "    \"disabled_ms_a\": %.3f,\n"
                 "    \"disabled_ms_b\": %.3f,\n"
                 "    \"disabled_delta\": %.3f,\n"
                 "    \"enabled_ms\": %.3f,\n"
                 "    \"enabled_overhead\": %.3f,\n"
                 "    \"spans_recorded\": %zu,\n"
                 "    \"interned_strings\": %zu,\n"
                 "    \"spans_per_sec\": %.0f,\n"
                 "    \"extract_ms\": %.3f,\n"
                 "    \"critical_paths\": %zu,\n"
                 "    \"sweep_candidates\": %zu\n"
                 "  },\n",
                 disabled_a, disabled_b, disabled_delta, enabled_ms, overhead,
                 rec.size(), rec.string_count(), spans_per_sec, extract_ms,
                 paths.size(), sweep.candidates.size());
    std::fprintf(f,
                 "  \"gates\": {\n"
                 "    \"critical_path_exact\": \"%s\",\n"
                 "    \"enabled_overhead_2x\": \"%s\",\n"
                 "    \"disabled_delta_noise\": \"%s\"\n"
                 "  }\n}\n",
                 g_exact, g_overhead, g_delta);
    std::fclose(f);

    std::printf("model   : %zu frames  disabled %7.2f ms (delta %.2fx)  "
                "enabled %7.2f ms (%.2fx)\n",
                cfg.frames, disabled_ms, disabled_delta, enabled_ms, overhead);
    std::printf("spans   : %zu recorded (%zu strings)  %.0f spans/s  "
                "extract %0.2f ms -> %zu paths\n",
                rec.size(), rec.string_count(), spans_per_sec, extract_ms,
                paths.size());
    std::printf("exact   : model %s  sweep(%zu candidates) %s\n",
                exact ? "yes" : "NO", sweep.candidates.size(),
                sweep_exact ? "yes" : "NO");
    std::printf("gates   : critical_path_exact=%s enabled_overhead_2x=%s "
                "disabled_delta_noise=%s\n",
                g_exact, g_overhead, g_delta);
    std::printf("wrote %s\n", out_path.c_str());
    return gates.failed ? 1 : 0;
}
