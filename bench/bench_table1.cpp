// Reproduces paper Table 1: the vocoder experiment across the unscheduled,
// architecture, and implementation models. Reports model size, simulation
// wall-clock, context switches, and transcoding delay, next to the paper's
// published values. Absolute numbers differ (our substrate is a calibrated
// stand-in, see DESIGN.md); the shape — ratios and orderings — is the result.
//
// Usage: bench_table1 [frames]   (default 200 = 4 s of speech)

#include <cstdio>
#include <cstdlib>

#include "vocoder/models.hpp"
#include "vocoder/timing.hpp"

using namespace slm;
using namespace slm::vocoder;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) {
        ++failures;
    }
}

}  // namespace

int main(int argc, char** argv) {
    VocoderConfig cfg;
    cfg.frames = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;

    std::printf("=== Table 1 reproduction: vocoder, %zu frames (%.1f s of speech) ===\n\n",
                cfg.frames,
                static_cast<double>(cfg.frames) * kFramePeriod.sec());

    const VocoderResult u = run_vocoder_unscheduled(cfg);
    const VocoderResult a = run_vocoder_architecture(cfg);
    const VocoderResult i = run_vocoder_implementation(cfg);

    std::printf("%-24s %14s %14s %16s\n", "", "unscheduled", "architecture",
                "implementation");
    std::printf("%-24s %14d %14d %16d\n", "Model size [lines]", u.model_loc,
                a.model_loc, i.model_loc);
    std::printf("%-24s %14.3f %14.3f %16.3f\n", "Execution time [s]", u.wall_seconds,
                a.wall_seconds, i.wall_seconds);
    std::printf("%-24s %14llu %14llu %16llu\n", "Context switches",
                static_cast<unsigned long long>(u.context_switches),
                static_cast<unsigned long long>(a.context_switches),
                static_cast<unsigned long long>(i.context_switches));
    std::printf("%-24s %14s %14s %16s\n", "Transcoding delay",
                u.avg_transcoding_delay.to_string().c_str(),
                a.avg_transcoding_delay.to_string().c_str(),
                i.avg_transcoding_delay.to_string().c_str());
    std::printf("%-24s %14s %14s %16s\n", "Data integrity", u.data_ok ? "ok" : "FAIL",
                a.data_ok ? "ok" : "FAIL", i.data_ok ? "ok" : "FAIL");

    std::printf("\npaper (DATE'03, GSM vocoder on DSP56600):\n");
    std::printf("%-24s %14s %14s %16s\n", "Lines of Code", "13,475", "15,552", "79,096");
    std::printf("%-24s %14s %14s %16s\n", "Execution Time", "24.0 s", "24.4 s", "5 h");
    std::printf("%-24s %14s %14s %16s\n", "Transcoding delay", "9.7 ms", "12.5 ms",
                "11.7 ms");

    const double arch_over_unsched =
        u.wall_seconds > 0 ? a.wall_seconds / u.wall_seconds : 0;
    const double impl_over_arch =
        a.wall_seconds > 0 ? i.wall_seconds / a.wall_seconds : 0;
    std::printf("\nderived ratios (ours vs paper):\n");
    std::printf("  arch/unsched sim time : %.2fx   (paper 1.02x)\n", arch_over_unsched);
    std::printf("  impl/arch sim time    : %.0fx   (paper ~740x)\n", impl_over_arch);
    std::printf("  arch/unsched delay    : %.3fx  (paper 1.29x)\n",
                static_cast<double>(a.avg_transcoding_delay.ns()) /
                    static_cast<double>(u.avg_transcoding_delay.ns()));
    std::printf("  impl/unsched delay    : %.3fx  (paper 1.21x)\n",
                static_cast<double>(i.avg_transcoding_delay.ns()) /
                    static_cast<double>(u.avg_transcoding_delay.ns()));

    std::printf("\nshape checks (paper Table 1 orderings):\n");
    check(u.model_loc < a.model_loc && a.model_loc < i.model_loc,
          "model size: unscheduled < architecture << implementation");
    check(i.wall_seconds > 10 * a.wall_seconds,
          "simulation cost: implementation orders of magnitude above architecture");
    check(u.context_switches == 0 && a.context_switches > 0 && i.context_switches > 0,
          "context switches: only the scheduled models switch");
    check(u.avg_transcoding_delay < i.avg_transcoding_delay,
          "delay: unscheduled model is optimistic (ignores serialization)");
    check(i.avg_transcoding_delay < a.avg_transcoding_delay,
          "delay: architecture model is mildly pessimistic (WCET annotations)");
    check(u.data_ok && a.data_ok && i.data_ok, "all models deliver every frame intact");

    std::printf("\n%s\n", failures == 0 ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECK FAILURES");
    return 0;
}
