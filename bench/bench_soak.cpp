// Soak-harness benchmark: generate and run the randomized scenario corpus at
// soak scale (full mode: >= 100 scenarios, >= 1M total jobs), serial and
// sharded, emitting a machine-readable BENCH_soak.json (schema
// slm-bench-soak-v1).
//
// Two gates, reflected in the "gates" block of the JSON and the exit code:
//   equivalence      HARD: the serial and sharded soaks must serialize
//                    byte-identically (the contract ci/check_soak.sh also
//                    enforces on the soak-run example).
//   zero_violations  HARD: a clean corpus (no fault plan) must finish with
//                    zero invariant/oracle violations — the soak harness
//                    gating its own model.
//
// Usage: bench_soak [--smoke] [--out FILE]
//   --smoke   tiny corpus for CI (milliseconds)
//   --out     output path (default: BENCH_soak.json in the CWD)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "soak/soak.hpp"

using namespace slm;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string soak_json(const soak::SoakResult& res) {
    std::ostringstream os;
    soak::write_soak_json(os, res);
    return std::move(os).str();
}

struct GateState {
    bool failed = false;

    /// PASS / FAIL with a hard exit-code consequence.
    const char* hard(bool ok) {
        if (!ok) {
            failed = true;
        }
        return ok ? "PASS" : "FAIL";
    }
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_soak.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_soak [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const unsigned cores = std::max(1U, std::thread::hardware_concurrency());
    const unsigned jobs = cores;

    soak::SoakConfig cfg;
    cfg.scenarios = smoke ? 8 : 120;
    cfg.gen.jobs_target = smoke ? 150 : 12'000;

    std::fprintf(stderr, "bench_soak: %zu scenarios serial...\n", cfg.scenarios);
    auto t0 = std::chrono::steady_clock::now();
    cfg.jobs = 1;
    const soak::SoakResult serial_res = soak::run_soak(cfg);
    const double serial_ms = elapsed_ms(t0);
    const std::string serial = soak_json(serial_res);

    std::fprintf(stderr, "bench_soak: %zu scenarios sharded (%u jobs)...\n",
                 cfg.scenarios, jobs);
    t0 = std::chrono::steady_clock::now();
    cfg.jobs = jobs;
    const soak::SoakResult par_res = soak::run_soak(cfg);
    const double parallel_ms = elapsed_ms(t0);
    const bool identical = soak_json(par_res) == serial;

    const std::uint64_t total_jobs = serial_res.total_jobs();
    const std::uint64_t violations = serial_res.total_violations();
    const double speedup = serial_ms / std::max(parallel_ms, 0.001);
    const double jobs_per_sec_serial =
        static_cast<double>(total_jobs) / std::max(serial_ms / 1000.0, 1e-6);
    const double jobs_per_sec_parallel =
        static_cast<double>(total_jobs) / std::max(parallel_ms / 1000.0, 1e-6);

    GateState gates;
    const char* g_equiv = gates.hard(identical);
    const char* g_clean = gates.hard(violations == 0);

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_soak: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-soak-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"cores_detected\": %u,\n  \"jobs\": %u,\n", cores, jobs);
    std::fprintf(f,
                 "  \"soak\": {\n"
                 "    \"scenarios\": %zu,\n"
                 "    \"jobs_target\": %llu,\n"
                 "    \"total_jobs\": %llu,\n"
                 "    \"serial_ms\": %.2f,\n"
                 "    \"parallel_ms\": %.2f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"jobs_per_sec_serial\": %.0f,\n"
                 "    \"jobs_per_sec_parallel\": %.0f,\n"
                 "    \"byte_identical\": %s,\n"
                 "    \"violations\": %llu,\n"
                 "    \"suspicious\": %llu,\n"
                 "    \"deadline_misses\": %llu,\n"
                 "    \"oracle_checked\": %llu,\n"
                 "    \"rta_schedulable\": %llu,\n"
                 "    \"hyperperiod_overflows\": %llu\n"
                 "  },\n",
                 cfg.scenarios,
                 static_cast<unsigned long long>(cfg.gen.jobs_target),
                 static_cast<unsigned long long>(total_jobs), serial_ms, parallel_ms,
                 speedup, jobs_per_sec_serial, jobs_per_sec_parallel,
                 identical ? "true" : "false",
                 static_cast<unsigned long long>(violations),
                 static_cast<unsigned long long>(serial_res.total_suspicious()),
                 static_cast<unsigned long long>(serial_res.total_deadline_misses()),
                 static_cast<unsigned long long>(serial_res.oracle_checked()),
                 static_cast<unsigned long long>(serial_res.rta_schedulable_count()),
                 static_cast<unsigned long long>(serial_res.hyperperiod_overflows()));
    std::fprintf(f,
                 "  \"gates\": {\n"
                 "    \"equivalence\": \"%s\",\n"
                 "    \"zero_violations\": \"%s\"\n"
                 "  }\n}\n",
                 g_equiv, g_clean);
    std::fclose(f);

    std::printf("soak    : %zu scenarios, %llu jobs  serial %8.1f ms  "
                "sharded %8.1f ms (%.1fx)  %s\n",
                cfg.scenarios, static_cast<unsigned long long>(total_jobs),
                serial_ms, parallel_ms, speedup,
                identical ? "byte-identical" : "DIVERGED");
    std::printf("oracle  : %llu checked, %llu schedulable, %llu suspicious\n",
                static_cast<unsigned long long>(serial_res.oracle_checked()),
                static_cast<unsigned long long>(serial_res.rta_schedulable_count()),
                static_cast<unsigned long long>(serial_res.total_suspicious()));
    std::printf("gates   : equivalence=%s zero_violations=%s\n", g_equiv, g_clean);
    std::printf("wrote %s\n", out_path.c_str());
    return gates.failed ? 1 : 0;
}
