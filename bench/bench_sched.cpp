// Scheduling design-space exploration with the RTOS model — the use case the
// paper's design flow motivates (§3: "evaluate different dynamic scheduling
// approaches ... as part of system design space exploration"). Sweeps periodic
// task sets of increasing utilization under every policy and reports deadline
// misses, then shows the priority-inheritance ablation on the classic
// inversion scenario.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "vocoder/models.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

struct SetResult {
    std::uint64_t misses = 0;
    std::uint64_t switches = 0;
};

SetResult run_set(rtos::SchedPolicy policy,
                  const std::vector<analysis::PeriodicTaskSpec>& specs, SimTime horizon) {
    sim::Kernel k;
    rtos::RtosConfig cfg;
    cfg.policy = policy;
    cfg.quantum = 2_ms;
    cfg.preemption_granularity = 1_ms;
    rtos::RtosModel os{k, cfg};
    std::vector<rtos::Task*> tasks;
    for (const auto& s : specs) {
        rtos::Task* t = os.task_create(s.name, rtos::TaskType::Periodic, s.period,
                                       s.wcet, s.priority);
        tasks.push_back(t);
        k.spawn(s.name, [&os, t, wcet = s.wcet] {
            os.task_activate(t);
            for (;;) {
                os.time_wait(wcet);
                os.task_endcycle();
            }
        });
    }
    os.start();
    (void)k.run_until(horizon);
    SetResult out;
    out.switches = os.stats().context_switches;
    for (const rtos::Task* t : tasks) {
        out.misses += t->stats().deadline_misses;
    }
    return out;
}

std::vector<analysis::PeriodicTaskSpec> make_set(double target_u) {
    // Three tasks with harmonic-ish periods scaled to the target utilization.
    std::vector<analysis::PeriodicTaskSpec> specs;
    const struct {
        const char* name;
        SimTime period;
        double share;  // share of total utilization
    } defs[] = {{"fast", 40_ms, 0.3}, {"mid", 100_ms, 0.3}, {"slow", 280_ms, 0.4}};
    for (const auto& d : defs) {
        analysis::PeriodicTaskSpec s;
        s.name = d.name;
        s.period = d.period;
        s.wcet = SimTime{static_cast<std::uint64_t>(
            static_cast<double>(d.period.ns()) * target_u * d.share)};
        specs.push_back(s);
    }
    assign_rms_priorities(specs);
    return specs;
}

}  // namespace

int main() {
    std::printf("=== Scheduling-policy exploration: deadline misses vs utilization ===\n\n");
    std::printf("%-6s %-8s %-6s", "U", "RTA", "EDF?");
    for (const auto p : {rtos::SchedPolicy::Priority, rtos::SchedPolicy::Rms,
                         rtos::SchedPolicy::Edf, rtos::SchedPolicy::RoundRobin,
                         rtos::SchedPolicy::Fifo}) {
        std::printf(" %12s", to_string(p));
    }
    std::printf("\n");

    for (const double u : {0.5, 0.7, 0.85, 0.95, 1.05}) {
        const auto specs = make_set(u);
        std::printf("%-6.2f %-8s %-6s", analysis::utilization(specs),
                    analysis::rta_schedulable(specs) ? "sched" : "miss",
                    analysis::edf_schedulable(specs) ? "yes" : "no");
        for (const auto p : {rtos::SchedPolicy::Priority, rtos::SchedPolicy::Rms,
                             rtos::SchedPolicy::Edf, rtos::SchedPolicy::RoundRobin,
                             rtos::SchedPolicy::Fifo}) {
            const SetResult r = run_set(p, specs, 2800_ms);
            std::printf(" %6llu misses",
                        static_cast<unsigned long long>(r.misses));
        }
        std::printf("\n");
    }

    // ---- priority-inheritance ablation ----
    std::printf("\n=== Priority-inheritance ablation (classic inversion scenario) ===\n\n");
    for (const bool inherit : {false, true}) {
        sim::Kernel k;
        rtos::RtosModel os{k};
        rtos::OsMutex m{os, inherit ? rtos::OsMutex::Protocol::PriorityInheritance
                                    : rtos::OsMutex::Protocol::None};
        rtos::OsEvent* go_high = os.event_new("goH");
        rtos::OsEvent* go_med = os.event_new("goM");
        SimTime high_acquired;

        const auto add = [&](const char* name, int prio, std::function<void()> body) {
            rtos::Task* t = os.task_create(name, rtos::TaskType::Aperiodic, {}, {}, prio);
            k.spawn(name, [&os, t, body = std::move(body)] {
                os.task_activate(t);
                body();
                os.task_terminate();
            });
        };
        add("high", 10, [&] {
            os.event_wait(go_high);
            m.lock();
            high_acquired = k.now();
            m.unlock();
        });
        add("med", 20, [&] {
            os.event_wait(go_med);
            os.time_wait(2_ms);
        });
        add("low", 30, [&] {
            m.lock();
            os.time_wait(500_us);
            os.time_wait(500_us);
            m.unlock();
        });
        k.spawn("irqs", [&] {
            k.waitfor(100_us);
            os.isr_enter("irqH");
            os.event_notify(go_high);
            os.interrupt_return();
            k.waitfor(100_us);
            os.isr_enter("irqM");
            os.event_notify(go_med);
            os.interrupt_return();
        });
        os.start();
        k.run();
        std::printf("  %-22s high-priority task acquired lock at %s\n",
                    inherit ? "priority inheritance:" : "plain mutex:",
                    high_acquired.to_string().c_str());
    }
    std::printf("\nWithout inheritance the medium task runs its full 2 ms inside the\n"
                "inversion window; with inheritance the blocked time is bounded by the\n"
                "low task's remaining critical section.\n");

    // ---- policy choice on a real workload: the vocoder ----
    std::printf("\n=== Scheduling policy on the vocoder architecture model ===\n\n");
    std::printf("%-12s %14s %16s %16s %10s\n", "policy", "avg delay",
                "max delay", "worst input lat", "switches");
    for (const auto p : {rtos::SchedPolicy::Priority, rtos::SchedPolicy::RoundRobin,
                         rtos::SchedPolicy::Fifo}) {
        vocoder::VocoderConfig vc;
        vc.frames = 50;
        vc.rtos.policy = p;
        // Fine-grained delay modeling so preemptive policies can actually
        // preempt; FIFO stays run-to-completion regardless.
        vc.rtos.preemption_granularity = 500_us;
        const vocoder::VocoderResult r = vocoder::run_vocoder_architecture(vc);
        std::printf("%-12s %14s %16s %16s %10llu%s\n", to_string(p),
                    r.avg_transcoding_delay.to_string().c_str(),
                    r.max_transcoding_delay.to_string().c_str(),
                    r.max_input_latency.to_string().c_str(),
                    static_cast<unsigned long long>(r.context_switches),
                    r.data_ok ? "" : "  DATA FAIL");
    }
    std::printf("\nThe transcode makespan is work-conserving, so the policies land in\n"
                "the same delay band — but FIFO's run-to-completion semantics make the\n"
                "driver wait out whole encode steps, blowing up the worst input\n"
                "latency, while the preemptive policies bound it near the chunk size.\n");
    return 0;
}
