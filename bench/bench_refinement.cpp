// Reproduces the paper's §5 refinement-effort measurement: "manual refinement
// took less than one hour and required changing or adding 104 lines or less
// than 1% of code", automated by the refinement tool. Runs the tool on the
// vocoder specification, and on a realistically sized model (the same system
// padded with pure-computation algorithm behaviors, which is what dominates
// the paper's 13.5 kLoC model) to show the footprint percentage.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "refine/refiner.hpp"
#include "refine/vocoder_spec.hpp"

using namespace slm::refine;

namespace {

RefineConfig vocoder_config() {
    RefineConfig cfg;
    cfg.os_owner = "DspPe";
    cfg.tasks["Coder"] = TaskSpec{"APERIODIC", 0, 650000};
    cfg.tasks["Decoder"] = TaskSpec{"APERIODIC", 0, 320000};
    cfg.tasks["BusDriver"] = TaskSpec{"APERIODIC", 0, 60000};
    return cfg;
}

/// Pad the vocoder spec with pure-computation leaf behaviors (filter kernels,
/// table lookups, ...) to the scale of the paper's full model. These behaviors
/// use no SLDL timing/synchronization services, so a correct refiner leaves
/// them untouched.
std::string padded_model(int target_lines) {
    std::ostringstream os;
    os << kVocoderSpec;
    int lines = static_cast<int>(
        std::count(kVocoderSpec.begin(), kVocoderSpec.end(), '\n'));
    int b = 0;
    while (lines < target_lines) {
        os << "\nbehavior AlgKernel" << b << "() {\n";
        os << "  int acc;\n  int i;\n";
        os << "  void main(void) {\n";
        lines += 5;
        for (int s = 0; s < 40; ++s) {
            os << "    acc = acc + i * " << (s + 1) << ";\n";
            os << "    i = i + acc;\n";
            lines += 2;
        }
        os << "  }\n};\n";
        lines += 2;
        ++b;
    }
    return os.str();
}

void report(const char* title, const RefineResult& r) {
    std::printf("%-28s lines %6d | changed %4d | added %4d | touched %4d (%5.2f%%) | edits %4zu\n",
                title, r.report.lines_total, r.report.lines_changed,
                r.report.lines_added, r.report.lines_touched(),
                r.report.percent_touched(), r.report.edit_count);
}

}  // namespace

int main() {
    std::printf("=== Refinement effort (paper §5: 104 lines, <1%% of code) ===\n\n");

    const Refiner refiner{vocoder_config()};

    const RefineResult compact = refiner.refine(kVocoderSpec);
    if (!compact.ok()) {
        std::printf("FAIL: %s\n", compact.errors[0].c_str());
        return 0;
    }
    report("vocoder spec (compact)", compact);

    const std::string big = padded_model(13'475);  // the paper's model size
    const RefineResult full = refiner.refine(big);
    if (!full.ok()) {
        std::printf("FAIL: %s\n", full.errors[0].c_str());
        return 0;
    }
    report("vocoder model (13.5 kLoC)", full);

    std::printf("\npaper: 104 touched lines on 13,475 -> 0.77%%\n");
    std::printf("ours : %d touched lines on %d -> %.2f%%  [%s]\n",
                full.report.lines_touched(), full.report.lines_total,
                full.report.percent_touched(),
                full.report.percent_touched() < 1.5 ? "PASS (<1.5%)" : "FAIL");

    std::printf("\nfirst refinement actions:\n");
    for (std::size_t i = 0; i < compact.report.notes.size() && i < 8; ++i) {
        std::printf("  - %s\n", compact.report.notes[i].c_str());
    }
    std::printf("  ... (%zu total)\n", compact.report.notes.size());
    return 0;
}
