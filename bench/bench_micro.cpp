// Microbenchmarks of the simulation substrates: SLDL kernel primitives
// (context switches, events, channels) and the instruction-set simulator's
// throughput. These establish the cost model behind the Table 1 execution-
// time ratios.

#include <benchmark/benchmark.h>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

/// Cost of one coroutine round trip (process switch in + out).
void BM_KernelContextSwitch(benchmark::State& state) {
    constexpr int kYields = 10'000;
    for (auto _ : state) {
        sim::Kernel k;
        k.spawn("a", [&k] {
            for (int i = 0; i < kYields; ++i) {
                k.yield();
            }
        });
        k.spawn("b", [&k] {
            for (int i = 0; i < kYields; ++i) {
                k.yield();
            }
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * 2 * kYields);
}

/// Cost of an event notify/wait pair.
void BM_KernelEventPingPong(benchmark::State& state) {
    constexpr int kRounds = 10'000;
    for (auto _ : state) {
        sim::Kernel k;
        sim::Event ping{k, "ping"}, pong{k, "pong"};
        k.spawn("a", [&] {
            for (int i = 0; i < kRounds; ++i) {
                k.notify(ping);
                k.wait(pong);
            }
            k.notify(ping);
        });
        k.spawn("b", [&] {
            for (int i = 0; i < kRounds; ++i) {
                k.wait(ping);
                k.notify(pong);
            }
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * kRounds);
}

/// Cost of a timed-queue operation (waitfor schedule + wake).
void BM_KernelWaitfor(benchmark::State& state) {
    constexpr int kSteps = 20'000;
    for (auto _ : state) {
        sim::Kernel k;
        k.spawn("t", [&k] {
            for (int i = 0; i < kSteps; ++i) {
                k.waitfor(10_ns);
            }
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * kSteps);
}

/// Queue channel throughput (send + receive with blocking protocol).
void BM_ChannelQueue(benchmark::State& state) {
    constexpr int kItems = 10'000;
    for (auto _ : state) {
        sim::Kernel k;
        sim::Queue<int> q{k, 16};
        k.spawn("producer", [&] {
            for (int i = 0; i < kItems; ++i) {
                q.send(i);
            }
        });
        k.spawn("consumer", [&] {
            long long sum = 0;
            for (int i = 0; i < kItems; ++i) {
                sum += q.receive();
            }
            benchmark::DoNotOptimize(sum);
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * kItems);
}

/// Raw ISS throughput in instructions/second (host-side MIPS).
void BM_IssExecution(benchmark::State& state) {
    const auto prog = iss::assemble(R"(
        ldi r1, 0
        ldi r2, 1000000000
        loop:
        addi r1, r1, 1
        mac r3, r1, r1
        blt r1, r2, loop
        halt
    )");
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        iss::Cpu cpu{prog.program.code, 64};
        (void)cpu.run(3'000'000);  // ~1M instructions per iteration
        instrs += cpu.retired();
        benchmark::DoNotOptimize(cpu.reg(3));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}

}  // namespace

BENCHMARK(BM_KernelContextSwitch);
BENCHMARK(BM_KernelEventPingPong);
BENCHMARK(BM_KernelWaitfor);
BENCHMARK(BM_ChannelQueue);
BENCHMARK(BM_IssExecution);

BENCHMARK_MAIN();
