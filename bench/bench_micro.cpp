// Microbenchmarks of the simulation substrates: SLDL kernel primitives
// (context switches, events, channels) and the instruction-set simulator's
// throughput. These establish the cost model behind the Table 1 execution-
// time ratios.

#include <benchmark/benchmark.h>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

/// Cost of one scheduler round trip (process switch in + out, including
/// ready-queue and state bookkeeping). The raw switch primitive is measured
/// by bench_ctx as BM_KernelContextSwitch.
void BM_KernelYield(benchmark::State& state) {
    constexpr int kYields = 10'000;
    for (auto _ : state) {
        sim::Kernel k;
        state.SetLabel(to_string(k.backend()));
        k.spawn("a", [&k] {
            for (int i = 0; i < kYields; ++i) {
                k.yield();
            }
        });
        k.spawn("b", [&k] {
            for (int i = 0; i < kYields; ++i) {
                k.yield();
            }
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * 2 * kYields);
}

/// Spawn throughput with stack recycling: waves of short-lived processes, so
/// every wave after the first is served from the stack pool's free list. The
/// counters expose the pool hit rate and the peak stack footprint.
void BM_KernelSpawn(benchmark::State& state) {
    constexpr int kWaves = 20;
    constexpr int kPerWave = 100;
    std::uint64_t recycled = 0;
    std::uint64_t peak_bytes = 0;
    std::uint64_t created = 0;
    for (auto _ : state) {
        sim::Kernel k;
        for (int w = 0; w < kWaves; ++w) {
            for (int i = 0; i < kPerWave; ++i) {
                k.spawn("p", [] {});
            }
            peak_bytes = std::max(peak_bytes, k.stats().stack_bytes_in_use);
            k.run();
        }
        recycled = k.stats().stacks_recycled;
        created = k.stats().processes_created;
    }
    state.SetItemsProcessed(state.iterations() * kWaves * kPerWave);
    state.counters["stacks_recycled"] = static_cast<double>(recycled);
    state.counters["stack_bytes_in_use_peak"] = static_cast<double>(peak_bytes);
    state.counters["pool_hit_rate"] =
        created != 0 ? static_cast<double>(recycled) / static_cast<double>(created) : 0.0;
}

/// Cost of an event notify/wait pair.
void BM_KernelEventPingPong(benchmark::State& state) {
    constexpr int kRounds = 10'000;
    for (auto _ : state) {
        sim::Kernel k;
        sim::Event ping{k, "ping"}, pong{k, "pong"};
        k.spawn("a", [&] {
            for (int i = 0; i < kRounds; ++i) {
                k.notify(ping);
                k.wait(pong);
            }
            k.notify(ping);
        });
        k.spawn("b", [&] {
            for (int i = 0; i < kRounds; ++i) {
                k.wait(ping);
                k.notify(pong);
            }
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * kRounds);
}

/// Cost of a timed-queue operation (waitfor schedule + wake).
void BM_KernelWaitfor(benchmark::State& state) {
    constexpr int kSteps = 20'000;
    for (auto _ : state) {
        sim::Kernel k;
        k.spawn("t", [&k] {
            for (int i = 0; i < kSteps; ++i) {
                k.waitfor(10_ns);
            }
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * kSteps);
}

/// Queue channel throughput (send + receive with blocking protocol).
void BM_ChannelQueue(benchmark::State& state) {
    constexpr int kItems = 10'000;
    for (auto _ : state) {
        sim::Kernel k;
        sim::Queue<int> q{k, 16};
        k.spawn("producer", [&] {
            for (int i = 0; i < kItems; ++i) {
                q.send(i);
            }
        });
        k.spawn("consumer", [&] {
            long long sum = 0;
            for (int i = 0; i < kItems; ++i) {
                sum += q.receive();
            }
            benchmark::DoNotOptimize(sum);
        });
        k.run();
    }
    state.SetItemsProcessed(state.iterations() * kItems);
}

/// Raw ISS throughput in instructions/second (host-side MIPS).
void BM_IssExecution(benchmark::State& state) {
    const auto prog = iss::assemble(R"(
        ldi r1, 0
        ldi r2, 1000000000
        loop:
        addi r1, r1, 1
        mac r3, r1, r1
        blt r1, r2, loop
        halt
    )");
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        iss::Cpu cpu{prog.program.code, 64};
        (void)cpu.run(3'000'000);  // ~1M instructions per iteration
        instrs += cpu.retired();
        benchmark::DoNotOptimize(cpu.reg(3));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}

}  // namespace

BENCHMARK(BM_KernelYield);
BENCHMARK(BM_KernelSpawn);
BENCHMARK(BM_KernelEventPingPong);
BENCHMARK(BM_KernelWaitfor);
BENCHMARK(BM_ChannelQueue);
BENCHMARK(BM_IssExecution);

BENCHMARK_MAIN();
