// Ablation of the paper's §4.3 accuracy note: "the accuracy of preemption
// results is limited by the granularity of task delay models". Sweeps the
// RTOS model's preemption granularity on the vocoder architecture model and
// reports the worst interrupt-to-driver latency (the preemption-sensitive
// metric) together with the simulation cost — the accuracy/speed tradeoff a
// designer buys with finer delay modeling.

#include <cstdio>

#include "sim/time.hpp"
#include "vocoder/models.hpp"
#include "vocoder/timing.hpp"

using namespace slm;
using namespace slm::time_literals;
using namespace slm::vocoder;

int main() {
    std::printf("=== Preemption-granularity ablation (vocoder architecture model) ===\n\n");
    std::printf("%-14s %18s %18s %14s\n", "granularity", "max input latency",
                "avg transcode", "wall [ms]");

    const SimTime grans[] = {SimTime::zero(), 2000_us, 1000_us, 500_us, 200_us,
                             100_us,          50_us,   20_us};
    SimTime coarse_latency, fine_latency;
    for (const SimTime g : grans) {
        VocoderConfig cfg;
        cfg.frames = 100;
        cfg.rtos.preemption_granularity = g;
        const VocoderResult r = run_vocoder_architecture(cfg);
        std::printf("%-14s %18s %18s %14.2f\n",
                    g.is_zero() ? "one chunk" : g.to_string().c_str(),
                    r.max_input_latency.to_string().c_str(),
                    r.avg_transcoding_delay.to_string().c_str(),
                    r.wall_seconds * 1e3);
        if (g.is_zero()) {
            coarse_latency = r.max_input_latency;
        }
        fine_latency = r.max_input_latency;
    }

    std::printf("\nWith one chunk per time_wait, an interrupt arriving mid-encode waits\n"
                "for the end of the 6.5 ms delay step (the Fig. 8 t4 -> t4' effect);\n"
                "chopping delays bounds the dispatch latency at the cost of more\n"
                "simulation events.\n");
    std::printf("\n[%s] finest granularity tightened worst latency %.1fx\n",
                fine_latency * 4 < coarse_latency ? "PASS" : "FAIL",
                static_cast<double>(coarse_latency.ns()) /
                    static_cast<double>(fine_latency.ns()));
    return 0;
}
