// Reproduces paper Fig. 8: simulation traces of the Fig. 3 example in the
// unscheduled model (a) and the priority-scheduled architecture model (b),
// plus the event times the paper calls out (t4 interrupt, t4' delayed switch).
// Prints the traces and a PASS/FAIL shape check for each property.

#include <cstdio>

#include "arch/fig3.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) {
        ++failures;
    }
}

}  // namespace

int main() {
    std::printf("=== Fig. 8 reproduction: Fig. 3 example, unscheduled vs architecture ===\n\n");
    const arch::Fig3Delays d;

    trace::TraceRecorder ru;
    const arch::Fig3Result u = arch::run_fig3_unscheduled(&ru, d);
    std::printf("(a) unscheduled model\n%s\n",
                ru.render_gantt(SimTime::zero(), 170_us, 68).c_str());

    trace::TraceRecorder ra;
    const arch::Fig3Result a = arch::run_fig3_architecture(&ra, d);
    std::printf("(b) architecture model, priority scheduling (B3 > B2)\n%s\n",
                ra.render_gantt(SimTime::zero(), 170_us, 68).c_str());

    std::printf("event times:\n");
    std::printf("  interrupt t4                : %s (both models)\n",
                d.irq_at.to_string().c_str());
    std::printf("  B3 gets bus data, unsched   : %s (= t4)\n",
                u.bus_data_seen.to_string().c_str());
    std::printf("  B3 gets bus data, arch      : %s (= t4', end of d6 step)\n",
                a.bus_data_seen.to_string().c_str());
    std::printf("  completion (B3/B2), unsched : %s / %s\n",
                u.b3_done.to_string().c_str(), u.b2_done.to_string().c_str());
    std::printf("  completion (B3/B2), arch    : %s / %s\n",
                a.b3_done.to_string().c_str(), a.b2_done.to_string().c_str());
    std::printf("  context switches, arch      : %llu\n\n",
                static_cast<unsigned long long>(a.context_switches));

    std::printf("shape checks (paper Fig. 8 semantics):\n");
    check(ru.has_concurrent_execution("PE0"),
          "unscheduled: B2 and B3 delays overlap (true concurrency)");
    check(!ra.has_concurrent_execution("PE0"),
          "architecture: execution fully serialized on the PE");
    check(u.bus_data_seen == d.irq_at,
          "unscheduled: B3 receives data the instant the interrupt fires");
    check(a.bus_data_seen > d.irq_at,
          "architecture: task switch delayed past the interrupt...");
    check(a.bus_data_seen == 110_us,
          "...until the end of task_b2's current delay step d6 (t4' = 110 us)");
    check(a.b2_done > u.b2_done && a.b3_done > u.b3_done,
          "architecture completions later than unscheduled (serialization)");
    check(a.context_switches > 0 && u.context_switches == 0,
          "context switches appear only in the scheduled model");

    std::printf("\n%s\n", failures == 0 ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECK FAILURES");
    return 0;
}
