// Parallel-engine benchmarks: serial explore/campaign vs. the slm::parallel
// work-stealing pool (cold) vs. a warm ResultCache re-run, emitting a
// machine-readable BENCH_parallel.json (schema slm-bench-parallel-v1).
//
// Three gates, reflected in the "gates" block of the JSON and the exit code:
//   equivalence       HARD: serial, cold-parallel, and warm-parallel runs
//                     must serialize byte-identically (the same contract
//                     ci/check_parallel.sh enforces on the examples).
//   cold_speedup_6x   cold-parallel explore >= 6x serial. Only meaningful
//                     with real cores to spread across, so it is SKIPped
//                     (not failed) when fewer than 8 hardware threads are
//                     detected — single-core CI boxes still run everything
//                     and still enforce the other two gates.
//   warm_speedup_20x  warm-cache explore >= 20x serial, full mode only
//                     (smoke workloads are too small to amortize the fixed
//                     pool startup cost, so smoke reports the number
//                     without gating on it).
//
// Usage: bench_parallel [--smoke] [--out FILE]
//   --smoke   tiny workloads for CI (milliseconds)
//   --out     output path (default: BENCH_parallel.json in the CWD)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "explore/explore.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "parallel/cache.hpp"
#include "parallel/parallel.hpp"
#include "rtos/rtos.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/// Equal-priority task set with simultaneous wakeups: every task sleeps to
/// the same instant and then computes in short slices, so the scheduler hits
/// a tie-break choice point per slice and the bounded DFS has a real tree to
/// shard. `tasks`/`slices` scale the space; the per-path simulation cost is
/// what the pool parallelizes.
explore::Explorer::BuildFn make_bench_build(unsigned tasks, unsigned slices) {
    return [tasks, slices](explore::Run& run) {
        rtos::RtosConfig cfg;
        cfg.cpu_name = "CPU0";
        auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
        os.init();
        for (unsigned i = 0; i < tasks; ++i) {
            const std::string name = "t" + std::to_string(i);
            rtos::Task* t =
                os.task_create(name, rtos::TaskType::Aperiodic, {}, {}, 1);
            run.kernel().spawn(name, [&os, t, slices] {
                os.task_activate(t);
                os.task_delay(1_ms);  // everyone wakes at the same instant
                for (unsigned s = 0; s < slices; ++s) {
                    os.time_wait(50_us);
                }
                os.task_terminate();
            });
        }
        os.start();
    };
}

std::string result_json(const explore::ExploreResult& res) {
    std::ostringstream os;
    explore::write_result_json(os, res);
    return std::move(os).str();
}

std::string campaign_json(const fault::CampaignResult& res) {
    std::ostringstream os;
    fault::write_campaign_json(os, res);
    return std::move(os).str();
}

/// One traced run of a small jittered task set — the campaign workload.
fault::CampaignRun run_campaign_model(fault::FaultInjector& inj,
                                      unsigned slices) {
    sim::Kernel k;
    trace::TraceRecorder rec;
    rtos::RtosConfig rc;
    rc.cpu_name = "CPU0";
    rc.tracer = &rec;
    rtos::RtosModel os(k, rc);
    os.init();
    inj.attach(os);
    for (const char* name : {"sense", "plan", "act"}) {
        rtos::Task* t =
            os.task_create(name, rtos::TaskType::Aperiodic, {}, {}, 1);
        k.spawn(name, [&os, t, slices] {
            os.task_activate(t);
            for (unsigned s = 0; s < slices; ++s) {
                os.time_wait(100_us);
            }
            os.task_terminate();
        });
    }
    os.start();
    k.run();
    fault::CampaignRun out;
    std::ostringstream csv;
    rec.write_csv(csv);
    out.trace_csv = std::move(csv).str();
    out.end_time = k.now();
    return out;
}

struct GateState {
    bool failed = false;

    /// PASS / FAIL with a hard exit-code consequence.
    const char* hard(bool ok) {
        if (!ok) {
            failed = true;
        }
        return ok ? "PASS" : "FAIL";
    }
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_parallel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_parallel [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const unsigned cores = std::max(1U, std::thread::hardware_concurrency());
    const unsigned jobs = cores;

    // ---- exploration ------------------------------------------------------
    const unsigned tasks = smoke ? 3 : 4;
    const unsigned slices = smoke ? 3 : 6;
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 2;
    cfg.max_paths = smoke ? 2'000 : 20'000;
    const explore::Explorer::BuildFn build = make_bench_build(tasks, slices);

    std::fprintf(stderr, "bench_parallel: explore serial...\n");
    auto t0 = std::chrono::steady_clock::now();
    const std::string serial = result_json(explore::Explorer{build, cfg}.explore());
    const double serial_ms = elapsed_ms(t0);

    std::fprintf(stderr, "bench_parallel: explore parallel cold (%u jobs)...\n",
                 jobs);
    parallel::ResultCache cache;
    parallel::ParallelConfig pc;
    pc.jobs = jobs;
    pc.cache = &cache;
    pc.model_fingerprint = "bench-explore-v1";
    parallel::ParallelStats cold;
    t0 = std::chrono::steady_clock::now();
    const std::string cold_json = result_json(parallel::explore(build, cfg, pc, &cold));
    const double cold_ms = elapsed_ms(t0);

    std::fprintf(stderr, "bench_parallel: explore parallel warm (cached)...\n");
    parallel::ParallelStats warm;
    t0 = std::chrono::steady_clock::now();
    const std::string warm_json = result_json(parallel::explore(build, cfg, pc, &warm));
    const double warm_ms = elapsed_ms(t0);

    const double cold_speedup = serial_ms / cold_ms;
    const double warm_speedup = serial_ms / warm_ms;
    const bool explore_identical = cold_json == serial && warm_json == serial;

    // ---- campaign ---------------------------------------------------------
    const unsigned sweep_runs = smoke ? 16 : 200;
    const unsigned camp_slices = smoke ? 10 : 200;
    const fault::FaultPlan plan =
        *fault::FaultPlan::parse("exec_jitter sense max=20us p=0.5\n"
                                 "exec_jitter plan max=20us p=0.5\n");
    const fault::CampaignRunFn fn = [camp_slices](fault::FaultInjector& inj,
                                                  fault::CampaignRun& out) {
        out = run_campaign_model(inj, camp_slices);
    };
    const fault::CampaignConfig cc{1, sweep_runs};

    std::fprintf(stderr, "bench_parallel: campaign serial (%u seeds)...\n",
                 sweep_runs);
    t0 = std::chrono::steady_clock::now();
    const std::string camp_serial = campaign_json(fault::run_campaign(plan, cc, fn));
    const double camp_serial_ms = elapsed_ms(t0);

    std::fprintf(stderr, "bench_parallel: campaign parallel cold...\n");
    parallel::ParallelConfig cpc;
    cpc.jobs = jobs;
    cpc.cache = &cache;
    cpc.model_fingerprint = "bench-campaign-v1";
    parallel::ParallelStats camp_cold;
    t0 = std::chrono::steady_clock::now();
    const std::string camp_cold_json =
        campaign_json(parallel::run_campaign(plan, cc, fn, cpc, &camp_cold));
    const double camp_cold_ms = elapsed_ms(t0);

    std::fprintf(stderr, "bench_parallel: campaign parallel warm...\n");
    t0 = std::chrono::steady_clock::now();
    const std::string camp_warm_json =
        campaign_json(parallel::run_campaign(plan, cc, fn, cpc, nullptr));
    const double camp_warm_ms = elapsed_ms(t0);

    const double camp_cold_speedup = camp_serial_ms / camp_cold_ms;
    const double camp_warm_speedup = camp_serial_ms / camp_warm_ms;
    const bool camp_identical =
        camp_cold_json == camp_serial && camp_warm_json == camp_serial;

    // ---- gates ------------------------------------------------------------
    GateState gates;
    const char* g_equiv = gates.hard(explore_identical && camp_identical);
    char g_cold[64];
    if (cores < 8) {
        std::snprintf(g_cold, sizeof(g_cold), "SKIP (%u cores < 8)", cores);
    } else {
        std::snprintf(g_cold, sizeof(g_cold), "%s",
                      gates.hard(cold_speedup >= 6.0));
    }
    char g_warm[64];
    if (smoke) {
        std::snprintf(g_warm, sizeof(g_warm), "SKIP (smoke)");
    } else {
        std::snprintf(g_warm, sizeof(g_warm), "%s",
                      gates.hard(warm_speedup >= 20.0));
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_parallel: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-parallel-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"cores_detected\": %u,\n  \"jobs\": %u,\n", cores, jobs);
    std::fprintf(f,
                 "  \"explore\": {\n"
                 "    \"paths\": %llu,\n"
                 "    \"serial_ms\": %.2f,\n"
                 "    \"parallel_cold_ms\": %.2f,\n"
                 "    \"parallel_warm_ms\": %.2f,\n"
                 "    \"speedup_cold\": %.2f,\n"
                 "    \"speedup_warm\": %.2f,\n"
                 "    \"byte_identical\": %s,\n"
                 "    \"utilization_cold\": %.3f,\n"
                 "    \"tasks_stolen\": %llu,\n"
                 "    \"warm_cache_hits\": %llu\n"
                 "  },\n",
                 static_cast<unsigned long long>(cold.tasks_executed), serial_ms,
                 cold_ms, warm_ms, cold_speedup, warm_speedup,
                 explore_identical ? "true" : "false", cold.utilization(),
                 static_cast<unsigned long long>(cold.tasks_stolen),
                 static_cast<unsigned long long>(warm.cache_hits));
    std::fprintf(f,
                 "  \"campaign\": {\n"
                 "    \"seeds\": %u,\n"
                 "    \"serial_ms\": %.2f,\n"
                 "    \"parallel_cold_ms\": %.2f,\n"
                 "    \"parallel_warm_ms\": %.2f,\n"
                 "    \"speedup_cold\": %.2f,\n"
                 "    \"speedup_warm\": %.2f,\n"
                 "    \"byte_identical\": %s\n"
                 "  },\n",
                 sweep_runs, camp_serial_ms, camp_cold_ms, camp_warm_ms,
                 camp_cold_speedup, camp_warm_speedup,
                 camp_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"gates\": {\n"
                 "    \"equivalence\": \"%s\",\n"
                 "    \"cold_speedup_6x\": \"%s\",\n"
                 "    \"warm_speedup_20x\": \"%s\"\n"
                 "  }\n}\n",
                 g_equiv, g_cold, g_warm);
    std::fclose(f);

    std::printf("explore : %6llu paths  serial %8.1f ms  cold %8.1f ms "
                "(%.1fx)  warm %8.1f ms (%.1fx)  %s\n",
                static_cast<unsigned long long>(cold.tasks_executed), serial_ms,
                cold_ms, cold_speedup, warm_ms, warm_speedup,
                explore_identical ? "byte-identical" : "DIVERGED");
    std::printf("campaign: %6u seeds  serial %8.1f ms  cold %8.1f ms "
                "(%.1fx)  warm %8.1f ms (%.1fx)  %s\n",
                sweep_runs, camp_serial_ms, camp_cold_ms, camp_cold_speedup,
                camp_warm_ms, camp_warm_speedup,
                camp_identical ? "byte-identical" : "DIVERGED");
    std::printf("gates   : equivalence=%s cold_speedup_6x=%s "
                "warm_speedup_20x=%s\n",
                g_equiv, g_cold, g_warm);
    std::printf("wrote %s\n", out_path.c_str());
    return gates.failed ? 1 : 0;
}
