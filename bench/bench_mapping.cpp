// Mapping exploration (extension of the paper's design flow, Fig. 1): the
// same vocoder workload mapped onto one DSP (driver + encoder + decoder
// sharing a CPU under the RTOS model) versus two DSPs connected by a system
// bus (decoder offloaded). The architecture model quantifies what the second
// PE buys: the decoder escapes driver/encoder interference, at the price of a
// bus transfer per frame.

#include <cstdio>

#include "vocoder/models.hpp"
#include "vocoder/timing.hpp"

using namespace slm;
using namespace slm::vocoder;

int main() {
    VocoderConfig cfg;
    cfg.frames = 100;

    std::printf("=== Mapping exploration: vocoder on one vs two DSPs (%zu frames) ===\n\n",
                cfg.frames);

    const VocoderResult one = run_vocoder_architecture(cfg);
    const TwoPeResult two = run_vocoder_two_pe(cfg);

    std::printf("%-26s %16s %16s\n", "", "single DSP", "dual DSP");
    std::printf("%-26s %16s %16s\n", "avg transcoding delay",
                one.avg_transcoding_delay.to_string().c_str(),
                two.overall.avg_transcoding_delay.to_string().c_str());
    std::printf("%-26s %16s %16s\n", "max transcoding delay",
                one.max_transcoding_delay.to_string().c_str(),
                two.overall.max_transcoding_delay.to_string().c_str());
    std::printf("%-26s %16llu %16llu\n", "context switches",
                static_cast<unsigned long long>(one.context_switches),
                static_cast<unsigned long long>(two.overall.context_switches));
    std::printf("%-26s %16s %7s + %-7s\n", "CPU busy time", "(one PE)",
                two.pe0_busy.to_string().c_str(), two.pe1_busy.to_string().c_str());
    std::printf("%-26s %16s %16s\n", "data integrity", one.data_ok ? "ok" : "FAIL",
                two.overall.data_ok ? "ok" : "FAIL");
    std::printf("%-26s %16s %9llu xfers\n", "system bus", "-",
                static_cast<unsigned long long>(two.bus_transfers));
    std::printf("%-26s %16s %16s\n", "bus busy", "-", two.bus_busy.to_string().c_str());

    // What the model teaches here: the transcode chain is serial, so a second
    // PE barely moves the latency (it even adds a bus hop). What it buys is
    // utilization headroom — capacity for more channels.
    const double util_one =
        static_cast<double>((two.pe0_busy + two.pe1_busy).ns()) /
        static_cast<double>(one.sim_duration.ns());
    const double util_pe0 = static_cast<double>(two.pe0_busy.ns()) /
                            static_cast<double>(two.overall.sim_duration.ns());
    const double util_pe1 = static_cast<double>(two.pe1_busy.ns()) /
                            static_cast<double>(two.overall.sim_duration.ns());
    std::printf("%-26s %15.1f%% %8.1f%%/%.1f%%\n", "CPU utilization",
                util_one * 100, util_pe0 * 100, util_pe1 * 100);

    const double delay_ratio =
        static_cast<double>(two.overall.avg_transcoding_delay.ns()) /
        static_cast<double>(one.avg_transcoding_delay.ns());
    const bool latency_flat = delay_ratio > 0.95 && delay_ratio < 1.05;
    const bool headroom = util_pe0 < util_one && util_pe1 < util_one;
    const bool intact = one.data_ok && two.overall.data_ok;
    std::printf("\n  [%s] latency is mapping-insensitive (serial chain): ratio %.3f\n",
                latency_flat ? "PASS" : "FAIL", delay_ratio);
    std::printf("  [%s] dual mapping halves per-PE utilization (headroom for more channels)\n",
                headroom ? "PASS" : "FAIL");
    std::printf("  [%s] both mappings deliver every frame intact\n",
                intact ? "PASS" : "FAIL");
    std::printf("\nThis is the evaluation loop the paper's flow enables: mappings and\n"
                "scheduling strategies compared quantitatively at the architecture\n"
                "level, long before RTL or target code exists — here it correctly\n"
                "shows that a second DSP buys capacity, not transcode latency.\n");
    return 0;
}
