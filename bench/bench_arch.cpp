// Architecture/mapping-sweep benchmarks: the vocoder design-space sweep on
// the heterogeneous ARM+DSP platform, serial vs. the slm::parallel sharded
// sweep, emitting a machine-readable BENCH_arch.json (schema
// slm-bench-arch-v1).
//
// Two gates, reflected in the "gates" block of the JSON and the exit code:
//   equivalence    HARD: the serial and parallel sweeps must serialize
//                  byte-identically (the same contract ci/check_sweep.sh
//                  enforces on the mapping_sweep example).
//   scaling_exact  HARD: scaling a PE's speed by k must scale the charged
//                  execution time by *exactly* k — checked at the OsCore
//                  level (time_wait on a speed-k core) and end-to-end on an
//                  elaborated system (latency of a fixed pipeline on speed-k
//                  PEs), for k in {2, 3, 5}.
//
// Usage: bench_arch [--smoke] [--out FILE]
//   --smoke   tiny workloads for CI (milliseconds)
//   --out     output path (default: BENCH_arch.json in the CWD)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "arch/arch.hpp"
#include "sim/kernel.hpp"
#include "sys/sweep.hpp"
#include "vocoder/system.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string sweep_json(const sys::SweepResult& res) {
    std::ostringstream os;
    sys::write_sweep_json(os, res);
    return std::move(os).str();
}

/// Exactness check one: nominal work k * N on a speed-k/1 core must finish at
/// exactly N (OsCore::scaled_exec is exact rational arithmetic, not a float).
bool core_scaling_exact(std::uint32_t k) {
    sim::Kernel kern;
    rtos::RtosConfig cfg;
    cfg.speed_num = k;
    arch::ProcessingElement pe{kern, "pe", cfg};
    const SimTime nominal = nanoseconds(7'000'003 * static_cast<std::uint64_t>(k));
    pe.add_task("t", 1, [&] { pe.os().time_wait(nominal); });
    pe.start();
    kern.run();
    return kern.now() == nanoseconds(7'000'003);
}

/// Exactness check two: a two-task pipeline elaborated on speed-k PEs with a
/// zero-cost bus must report exactly 1/k of the speed-1 end-to-end latency.
bool system_scaling_exact(std::uint32_t k) {
    SimTime latency[2];
    for (int fast = 0; fast < 2; ++fast) {
        sys::AppSpec app;
        app.name = "scale-check";
        app.tasks = {sys::TaskSpec{"stage0", nanoseconds(600'000 * k), {}, {}, 1, 1},
                     sys::TaskSpec{"stage1", nanoseconds(300'000 * k), {}, {}, 1, 1}};
        app.channels = {sys::ChannelSpec{"in", "", "stage0", 4, 0},
                        sys::ChannelSpec{"mid", "stage0", "stage1", 4, 0}};
        app.stimuli = {sys::StimulusSpec{"src", "in", 1_us, 1}};
        sys::PlatformSpec platform;
        platform.name = "scale";
        const std::uint32_t num = fast != 0 ? k : 1;
        platform.pes = {sys::PeSpec{"PE0", num, 1},
                        sys::PeSpec{"PE1", num, 1}};
        platform.buses = {sys::BusSpec{"bus", SimTime::zero(), SimTime::zero()}};
        sys::MappingSpec mapping;
        mapping.name = "split";
        mapping.bindings = {sys::TaskBinding{"stage0", "PE0", 1},
                            sys::TaskBinding{"stage1", "PE1", 1}};
        mapping.routes = {sys::ChannelRoute{"in", "bus"},
                          sys::ChannelRoute{"mid", "bus"}};
        sys::System system{app, platform, mapping};
        system.run();
        if (system.latencies().size() != 1) {
            return false;
        }
        latency[fast] = system.latencies().front();
    }
    return latency[0] == nanoseconds(900'000 * static_cast<std::uint64_t>(k)) &&
           latency[1] * k == latency[0];
}

struct GateState {
    bool failed = false;

    /// PASS / FAIL with a hard exit-code consequence.
    const char* hard(bool ok) {
        if (!ok) {
            failed = true;
        }
        return ok ? "PASS" : "FAIL";
    }
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_arch.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_arch [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const unsigned cores = std::max(1U, std::thread::hardware_concurrency());
    const unsigned jobs = cores;

    // ---- vocoder mapping sweep -------------------------------------------
    vocoder::VocoderConfig cfg;
    cfg.frames = smoke ? 4 : 24;
    const sys::AppSpec app = vocoder::vocoder_app_spec(cfg.frames);
    const sys::PlatformSpec platform = vocoder::vocoder_sweep_platform(cfg);
    const std::vector<sys::MappingSpec> candidates =
        sys::enumerate_mappings(app, platform, vocoder::vocoder_enum_options());

    sys::SweepConfig scfg;
    scfg.options.base_rtos = cfg.rtos;
    const sys::SystemSetup setup = vocoder::vocoder_setup(cfg);

    std::fprintf(stderr, "bench_arch: sweep serial (%zu candidates)...\n",
                 candidates.size());
    auto t0 = std::chrono::steady_clock::now();
    scfg.jobs = 1;
    const sys::SweepResult serial_res =
        sys::run_sweep(app, platform, candidates, scfg, setup);
    const double serial_ms = elapsed_ms(t0);
    const std::string serial = sweep_json(serial_res);

    std::fprintf(stderr, "bench_arch: sweep parallel (%u jobs)...\n", jobs);
    t0 = std::chrono::steady_clock::now();
    scfg.jobs = jobs;
    parallel::ParallelStats stats;
    const sys::SweepResult par_res =
        sys::run_sweep(app, platform, candidates, scfg, setup, &stats);
    const double parallel_ms = elapsed_ms(t0);
    const bool identical = sweep_json(par_res) == serial;

    // Simulated nanoseconds across all candidates: the sweep's work measure.
    std::uint64_t sim_ns_total = 0;
    for (const sys::CandidateResult& c : serial_res.candidates) {
        sim_ns_total += c.metrics.sim_duration.ns();
    }
    const double speedup = serial_ms / std::max(parallel_ms, 0.001);
    // Per-candidate throughput: simulated milliseconds per wall millisecond.
    const double throughput_serial =
        (static_cast<double>(sim_ns_total) / 1e6) / std::max(serial_ms, 0.001);
    const double throughput_parallel =
        (static_cast<double>(sim_ns_total) / 1e6) / std::max(parallel_ms, 0.001);
    const std::size_t winner =
        serial_res.ranking().empty() ? 0 : serial_res.ranking().front();

    // ---- heterogeneous-scaling exactness ---------------------------------
    bool scaling_ok = true;
    for (const std::uint32_t k : {2u, 3u, 5u}) {
        scaling_ok = scaling_ok && core_scaling_exact(k) && system_scaling_exact(k);
    }

    // ---- gates ------------------------------------------------------------
    GateState gates;
    const char* g_equiv = gates.hard(identical);
    const char* g_scaling = gates.hard(scaling_ok);

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_arch: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-arch-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"cores_detected\": %u,\n  \"jobs\": %u,\n", cores, jobs);
    std::fprintf(f,
                 "  \"sweep\": {\n"
                 "    \"candidates\": %zu,\n"
                 "    \"frames\": %zu,\n"
                 "    \"serial_ms\": %.2f,\n"
                 "    \"parallel_ms\": %.2f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"sim_ns_total\": %llu,\n"
                 "    \"throughput_serial_sim_ms_per_wall_ms\": %.1f,\n"
                 "    \"throughput_parallel_sim_ms_per_wall_ms\": %.1f,\n"
                 "    \"byte_identical\": %s,\n"
                 "    \"winner\": \"%s\"\n"
                 "  },\n",
                 candidates.size(), cfg.frames, serial_ms, parallel_ms, speedup,
                 static_cast<unsigned long long>(sim_ns_total), throughput_serial,
                 throughput_parallel, identical ? "true" : "false",
                 serial_res.candidates[winner].mapping.summary().c_str());
    std::fprintf(f,
                 "  \"scaling\": {\n"
                 "    \"factors\": [2, 3, 5],\n"
                 "    \"exact\": %s\n"
                 "  },\n",
                 scaling_ok ? "true" : "false");
    std::fprintf(f,
                 "  \"gates\": {\n"
                 "    \"equivalence\": \"%s\",\n"
                 "    \"scaling_exact\": \"%s\"\n"
                 "  }\n}\n",
                 g_equiv, g_scaling);
    std::fclose(f);

    std::printf("sweep   : %zu candidates x %zu frames  serial %8.1f ms  "
                "parallel %8.1f ms (%.1fx)  %s\n",
                candidates.size(), cfg.frames, serial_ms, parallel_ms, speedup,
                identical ? "byte-identical" : "DIVERGED");
    std::printf("winner  : %s\n",
                serial_res.candidates[winner].mapping.summary().c_str());
    std::printf("scaling : k in {2,3,5} %s\n", scaling_ok ? "exact" : "INEXACT");
    std::printf("gates   : equivalence=%s scaling_exact=%s\n", g_equiv, g_scaling);
    std::printf("wrote %s\n", out_path.c_str());
    return gates.failed ? 1 : 0;
}
