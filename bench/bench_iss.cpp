// ISS execution-engine benchmark: the decoded-superblock engine vs the
// reference interpreter on the vocoder guest workload (the full three-task
// RTOS image from build_vocoder_guest, driven subframe-by-subframe exactly
// like the implementation model) plus a raw MAC-loop dispatch microbench.
// Emits BENCH_iss.json so the fast-over-reference instructions/sec ratio (the
// PR's >=5x target) is tracked from PR to PR.
//
// The two backends must agree bit-for-bit: the benchmark fingerprints the
// complete architectural outcome (notify stream, registers, counters, kernel
// stats, and all 64K words of data memory) of both runs and hard-fails on any
// divergence — a second, workload-scale conformance check behind the
// test_iss_engine lockstep suite.
//
// Usage: bench_iss [--smoke] [--out FILE]
//   --smoke   tiny frame counts for CI
//   --out     output path (default: BENCH_iss.json in the CWD)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/engine.hpp"
#include "iss/guest_os.hpp"
#include "vocoder/codec.hpp"
#include "vocoder/iss_gen.hpp"
#include "vocoder/timing.hpp"

using namespace slm;
using namespace slm::iss;
using namespace slm::vocoder;

namespace {

struct Measurement {
    double ns_per_item = 0.0;
    double items_per_sec = 0.0;
    std::uint64_t items = 0;
};

double elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
        .count();
}

Measurement finish(std::uint64_t items, double ns) {
    Measurement m;
    m.items = items;
    m.ns_per_item = ns / static_cast<double>(items);
    m.items_per_sec = 1e9 * static_cast<double>(items) / ns;
    return m;
}

/// FNV-1a over every architecturally visible outcome of a workload run.
struct Fingerprint {
    std::uint64_t h = 1469598103934665603ull;

    void mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFFu;
            h *= 1099511628211ull;
        }
    }
    void mix_i32(std::int32_t v) { mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
};

struct WorkloadOutcome {
    Measurement m;
    std::uint64_t fingerprint = 0;
    std::uint64_t guest_instructions = 0;
    std::uint64_t guest_cycles = 0;
    std::size_t engine_blocks = 0;
    std::uint64_t engine_chain_hits = 0;
};

/// Run the full vocoder guest image (driver + encoder + decoder tasks under
/// the guest kernel) for `frames` frames, feeding deterministic synthetic
/// subframes from the host the way the implementation model's audio port
/// does, and fingerprint everything the guest computed.
WorkloadOutcome run_vocoder_workload(IssBackend backend, std::size_t frames) {
    const GuestImage img = build_vocoder_guest(frames);
    constexpr int kSubframeSamples = kFrameSamples / kSubframesPerFrame;

    Cpu cpu{img.program.code, 65536, backend};
    GuestKernel gk{cpu};
    gk.sem_init(kSemSubframe, 0);
    gk.sem_init(kSemFrame, 0);
    gk.sem_init(kSemBits, 0);
    gk.create_task("driver", kDriverPriority, img.driver_entry, 60000);
    gk.create_task("encoder", kEncoderPriority, img.encoder_entry, 61000);
    gk.create_task("decoder", kDecoderPriority, img.decoder_entry, 62000);

    Fingerprint fp;
    gk.set_host_notify([&fp](std::int32_t code, std::int32_t value) {
        fp.mix_i32(code);
        fp.mix_i32(value);
    });

    const std::size_t total_subframes = frames * static_cast<std::size_t>(kSubframesPerFrame);
    std::size_t fed = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (!gk.all_exited()) {
        if (gk.idle()) {
            if (gk.has_sleepers()) {
                gk.skip_idle_cycles(gk.cycles_until_wake());
                continue;
            }
            if (fed >= total_subframes) {
                std::fprintf(stderr, "bench_iss: guest deadlocked with no input left\n");
                std::exit(1);
            }
            // Deterministic synthetic audio (same for both backends).
            for (int i = 0; i < kSubframeSamples; ++i) {
                const auto s = static_cast<std::int32_t>(
                    (static_cast<std::uint32_t>(fed) * 2654435761u +
                     static_cast<std::uint32_t>(i) * 40503u) %
                        65536u) -
                    32768;
                cpu.store(static_cast<std::uint32_t>(kMicRxAddr + i), s);
            }
            gk.sem_post_from_host(kSemSubframe);
            ++fed;
            continue;
        }
        (void)gk.run_slice(100000);
    }
    const double ns = elapsed_ns(t0);

    WorkloadOutcome out;
    out.m = finish(cpu.retired(), ns);
    out.guest_instructions = cpu.retired();
    out.guest_cycles = cpu.cycles();
    for (int i = 0; i < kNumRegs; ++i) {
        fp.mix_i32(cpu.reg(i));
    }
    fp.mix_i32(cpu.pc());
    fp.mix(cpu.retired());
    fp.mix(cpu.cycles());
    fp.mix(gk.stats().context_switches);
    fp.mix(gk.stats().syscalls);
    fp.mix(gk.stats().kernel_cycles);
    fp.mix(gk.now_cycles());
    for (const GuestTask* t : gk.tasks()) {
        fp.mix(t->cycles_used);
        fp.mix(static_cast<std::uint64_t>(t->state));
    }
    for (std::uint32_t w = 0; w < cpu.mem_words(); ++w) {
        std::int32_t v = 0;
        (void)cpu.try_load(w, v);
        fp.mix_i32(v);
    }
    out.fingerprint = fp.h;
    if (const SuperblockEngine* eng = cpu.engine()) {
        out.engine_blocks = eng->block_count();
        out.engine_chain_hits = eng->chain_hits();
    }
    return out;
}

/// Raw dispatch-rate microbench: a five-instruction MAC loop run for a fixed
/// cycle budget — no kernel, no syscalls, pure engine-vs-switch throughput.
Measurement run_mac_loop(IssBackend backend, std::uint64_t budget) {
    const AsmResult r = assemble(R"(
        ldi r1, 12345
        ldi r2, 7
        loop:
        mac r3, r1, r2
        addi r1, r1, -1
        xor r4, r3, r1
        and r5, r4, r2
        bne r1, r0, loop
        halt
    )");
    if (!r.ok()) {
        std::fprintf(stderr, "bench_iss: mac loop failed to assemble\n");
        std::exit(1);
    }
    Cpu cpu{r.program.code, 256, backend};
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult res = cpu.run(budget);
    const double ns = elapsed_ns(t0);
    if (res.trap == Trap::Fault) {
        std::fprintf(stderr, "bench_iss: mac loop faulted: %s\n",
                     cpu.fault_message().c_str());
        std::exit(1);
    }
    return finish(cpu.retired(), ns);
}

void emit(std::FILE* f, const char* name, const Measurement& m) {
    std::fprintf(f,
                 "    \"%s\": {\"unit\": \"instr\", \"ns_per_item\": %.3f, "
                 "\"items_per_sec\": %.0f, \"items\": %llu}",
                 name, m.ns_per_item, m.items_per_sec,
                 static_cast<unsigned long long>(m.items));
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_iss.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: bench_iss [--smoke] [--out FILE]\n");
            return 2;
        }
    }

    const std::size_t frames = smoke ? 5 : 200;
    const std::uint64_t mac_budget = smoke ? 2'000'000 : 200'000'000;
    const int reps = smoke ? 1 : 3;  // best-of to damp scheduler noise

    WorkloadOutcome fast{}, ref{};
    for (int r = 0; r < reps; ++r) {
        const WorkloadOutcome o = run_vocoder_workload(IssBackend::Superblock, frames);
        if (r == 0 || o.m.items_per_sec > fast.m.items_per_sec) {
            fast = o;
        }
    }
    for (int r = 0; r < reps; ++r) {
        const WorkloadOutcome o = run_vocoder_workload(IssBackend::Reference, frames);
        if (r == 0 || o.m.items_per_sec > ref.m.items_per_sec) {
            ref = o;
        }
    }

    // Conformance hard-gate: both backends must have computed the identical
    // architectural outcome, down to every word of guest memory.
    if (fast.fingerprint != ref.fingerprint ||
        fast.guest_instructions != ref.guest_instructions ||
        fast.guest_cycles != ref.guest_cycles) {
        std::fprintf(stderr,
                     "bench_iss: BACKEND DIVERGENCE fast={fp=%016llx n=%llu c=%llu} "
                     "reference={fp=%016llx n=%llu c=%llu}\n",
                     static_cast<unsigned long long>(fast.fingerprint),
                     static_cast<unsigned long long>(fast.guest_instructions),
                     static_cast<unsigned long long>(fast.guest_cycles),
                     static_cast<unsigned long long>(ref.fingerprint),
                     static_cast<unsigned long long>(ref.guest_instructions),
                     static_cast<unsigned long long>(ref.guest_cycles));
        return 1;
    }

    Measurement mac_fast{}, mac_ref{};
    for (int r = 0; r < reps; ++r) {
        const Measurement m = run_mac_loop(IssBackend::Superblock, mac_budget);
        if (r == 0 || m.items_per_sec > mac_fast.items_per_sec) {
            mac_fast = m;
        }
    }
    for (int r = 0; r < reps; ++r) {
        const Measurement m = run_mac_loop(IssBackend::Reference, mac_budget);
        if (r == 0 || m.items_per_sec > mac_ref.items_per_sec) {
            mac_ref = m;
        }
    }

    const double speedup = fast.m.items_per_sec / ref.m.items_per_sec;
    const double mac_speedup = mac_fast.items_per_sec / mac_ref.items_per_sec;

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::perror("bench_iss: fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"slm-bench-iss-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"workload\": {\"frames\": %llu, \"guest_instructions\": %llu, "
                 "\"guest_cycles\": %llu, \"state_fingerprint\": \"%016llx\"},\n",
                 static_cast<unsigned long long>(frames),
                 static_cast<unsigned long long>(fast.guest_instructions),
                 static_cast<unsigned long long>(fast.guest_cycles),
                 static_cast<unsigned long long>(fast.fingerprint));
    std::fprintf(f, "  \"threaded_dispatch\": %s,\n",
                 threaded_dispatch_compiled() ? "true" : "false");
    std::fprintf(f, "  \"engine\": {\"blocks\": %llu, \"chain_hits\": %llu},\n",
                 static_cast<unsigned long long>(fast.engine_blocks),
                 static_cast<unsigned long long>(fast.engine_chain_hits));
    std::fprintf(f, "  \"benchmarks\": {\n");
    emit(f, "BM_VocoderGuestSuperblock", fast.m);
    std::fprintf(f, ",\n");
    emit(f, "BM_VocoderGuestReference", ref.m);
    std::fprintf(f, ",\n");
    emit(f, "BM_MacLoopSuperblock", mac_fast);
    std::fprintf(f, ",\n");
    emit(f, "BM_MacLoopReference", mac_ref);
    std::fprintf(f, ",\n    \"speedup_fast_over_reference\": %.2f,\n", speedup);
    std::fprintf(f, "    \"mac_loop_speedup\": %.2f\n", mac_speedup);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);

    std::printf("vocoder guest  superblock %10.2f ns/instr %14.0f instr/s\n",
                fast.m.ns_per_item, fast.m.items_per_sec);
    std::printf("vocoder guest  reference  %10.2f ns/instr %14.0f instr/s\n",
                ref.m.ns_per_item, ref.m.items_per_sec);
    std::printf("mac loop       superblock %10.2f ns/instr %14.0f instr/s\n",
                mac_fast.ns_per_item, mac_fast.items_per_sec);
    std::printf("mac loop       reference  %10.2f ns/instr %14.0f instr/s\n",
                mac_ref.ns_per_item, mac_ref.items_per_sec);
    std::printf("speedup fast/reference: vocoder %.1fx, mac loop %.1fx\n", speedup,
                mac_speedup);
    std::printf("state fingerprint %016llx (backends agree)\n",
                static_cast<unsigned long long>(fast.fingerprint));
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
