#!/usr/bin/env bash
# Soak-harness gate (docs/soak-testing.md): the randomized soak must be
# replayable byte-for-byte at any sharding, and the planted-defect pipeline
# must work end to end — a fault plan that overruns every execution budget is
# caught by the differential oracle, auto-shrunk to a minimal seed+spec repro,
# and that repro's replay verified byte-identical. Registered as the
# `check_soak` ctest (see the top-level CMakeLists.txt), so it also runs
# inside the ASan/TSan trees built by `ci/sanitize.sh`.
#
#   ci/check_soak.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

soak="$build_dir/examples/soak-run"
if [ ! -x "$soak" ]; then
  echo "check_soak: $soak not built (build the repo first)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

require_identical() {  # require_identical WHAT SERIAL PARALLEL LABEL
  if ! cmp -s "$2" "$3"; then
    echo "check_soak: $1 ($4) diverged from the reference run:" >&2
    diff "$2" "$3" | head -5 >&2
    exit 1
  fi
}

# 1. Seed replay: a fixed-seed clean soak dumped at --jobs 1, 2, and 8 must
#    be byte-identical, and the run must pass (exit 0, zero violations).
"$soak" --scenarios 12 --seed 7 --jobs-target 400 --jobs 1 \
        --dump "$tmpdir/soak_serial.json" --quiet
if [ ! -s "$tmpdir/soak_serial.json" ]; then
  echo "check_soak: soak-run produced an empty dump" >&2
  exit 1
fi
if ! grep -q '"schema":"slm-soak-result-v1"' "$tmpdir/soak_serial.json"; then
  echo "check_soak: dump is missing the slm-soak-result-v1 schema tag" >&2
  exit 1
fi
if ! grep -q '"violations":0,' "$tmpdir/soak_serial.json"; then
  echo "check_soak: the clean soak reported violations:" >&2
  head -c 600 "$tmpdir/soak_serial.json" >&2
  exit 1
fi
for jobs in 2 8; do
  "$soak" --scenarios 12 --seed 7 --jobs-target 400 --jobs "$jobs" \
          --dump "$tmpdir/soak_j$jobs.json" --quiet
  require_identical "soak result" "$tmpdir/soak_serial.json" \
                    "$tmpdir/soak_j$jobs.json" "--jobs $jobs"
done

# 2. Planted defect: quadruple every execution budget via a slm::fault plan.
#    Analytically schedulable scenarios now blow their response-time bounds,
#    so soak-run must exit nonzero, and --shrink must reduce the failure to a
#    minimal repro whose replay is byte-identical.
plan="$tmpdir/plan.txt"
printf 'seed 1\nexec_scale * factor=4.0\n' > "$plan"
if "$soak" --scenarios 8 --seed 1 --jobs-target 200 --fault-plan "$plan" \
           --shrink --shrink-dump "$tmpdir/shrink_a.json" --quiet; then
  echo "check_soak: the planted defect was NOT caught (exit 0)" >&2
  exit 1
fi
if ! grep -q '"schema":"slm-soak-shrink-v1"' "$tmpdir/shrink_a.json"; then
  echo "check_soak: shrink dump is missing the slm-soak-shrink-v1 schema tag" >&2
  exit 1
fi
if ! grep -q '"replay_identical":true' "$tmpdir/shrink_a.json"; then
  echo "check_soak: the minimal repro's replay was not byte-identical" >&2
  exit 1
fi
# Minimality: the corpus draws 3..8 tasks per scenario; an overload defect
# must shrink to at most 2 surviving tasks.
task_count="$(grep -o '"task_count":[0-9]*' "$tmpdir/shrink_a.json" | head -1 | cut -d: -f2)"
if [ -z "$task_count" ] || [ "$task_count" -gt 2 ]; then
  echo "check_soak: shrinker left $task_count tasks (expected <= 2)" >&2
  exit 1
fi

# 3. The whole failure pipeline (detection order, shrink path) must itself be
#    deterministic under sharding.
"$soak" --scenarios 8 --seed 1 --jobs-target 200 --fault-plan "$plan" --jobs 8 \
        --shrink --shrink-dump "$tmpdir/shrink_b.json" --quiet || true
require_identical "shrink result" "$tmpdir/shrink_a.json" "$tmpdir/shrink_b.json" \
                  "--jobs 8"

echo "check_soak: OK (replay byte-identical at --jobs 1/2/8, planted defect shrunk to $task_count task(s))"
