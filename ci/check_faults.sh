#!/usr/bin/env bash
# Fault-injection determinism gate: runs the fault_campaign example's
# single-run trace dump twice with the same seed and requires the two CSV
# traces to be byte-for-byte identical — the replayability contract of
# slm::fault (seeded PRNG, no wall clock, no global state). A third run with
# a different seed must diverge, proving the seed actually reaches the
# injector. Registered as the `check_faults` ctest (see the top-level
# CMakeLists.txt).
#
#   ci/check_faults.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

campaign="$build_dir/examples/fault_campaign"
if [ ! -x "$campaign" ]; then
  echo "check_faults: $campaign not built (build the repo first)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

"$campaign" --seed 9 --dump-trace "$tmpdir/a.csv" --quiet
"$campaign" --seed 9 --dump-trace "$tmpdir/b.csv" --quiet
"$campaign" --seed 10 --dump-trace "$tmpdir/c.csv" --quiet

if [ ! -s "$tmpdir/a.csv" ]; then
  echo "check_faults: fault_campaign produced an empty trace" >&2
  exit 1
fi

if ! cmp -s "$tmpdir/a.csv" "$tmpdir/b.csv"; then
  echo "check_faults: same seed produced different traces (replay broken):" >&2
  diff "$tmpdir/a.csv" "$tmpdir/b.csv" | head -20 >&2
  exit 1
fi

if cmp -s "$tmpdir/a.csv" "$tmpdir/c.csv"; then
  echo "check_faults: seeds 9 and 10 produced identical traces" \
       "(the seed does not reach the injector)" >&2
  exit 1
fi

echo "check_faults: OK (seed 9 replays byte-identically; seed 10 diverges)"
