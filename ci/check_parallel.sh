#!/usr/bin/env bash
# Parallel-determinism gate: the slm::parallel engines must emit byte-identical
# canonical JSON to the serial engines at every thread count. Runs the
# explore_demo exploration dump and the fault_campaign sweep dump serially and
# at --jobs 1, 2, and 8, and requires every parallel artifact to match the
# serial one byte-for-byte (the contract in docs/parallel-exploration.md).
# Registered as the `check_parallel` ctest (see the top-level CMakeLists.txt),
# so it also runs inside the TSan tree built by `ci/sanitize.sh --tsan`.
#
#   ci/check_parallel.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

explore="$build_dir/examples/explore_demo"
campaign="$build_dir/examples/fault_campaign"
for bin in "$explore" "$campaign"; do
  if [ ! -x "$bin" ]; then
    echo "check_parallel: $bin not built (build the repo first)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

require_identical() {  # require_identical WHAT SERIAL PARALLEL JOBS
  if ! cmp -s "$2" "$3"; then
    echo "check_parallel: $1 with --jobs $4 diverged from the serial run:" >&2
    diff "$2" "$3" | head -10 >&2
    exit 1
  fi
}

# 1. Exploration: three result JSONs (failing model, fixed model, exhaustive
#    3-task space) per run.
"$explore" --dump "$tmpdir/explore_serial.json" > /dev/null
if [ ! -s "$tmpdir/explore_serial.json" ]; then
  echo "check_parallel: explore_demo produced an empty dump" >&2
  exit 1
fi
for jobs in 1 2 8; do
  "$explore" --jobs "$jobs" --dump "$tmpdir/explore_j$jobs.json" > /dev/null
  require_identical "explore_demo" "$tmpdir/explore_serial.json" \
                    "$tmpdir/explore_j$jobs.json" "$jobs"
done

# 2. Campaign: a 6-seed fig3 sweep, full trace CSV inlined per seed.
"$campaign" --runs 6 --dump-campaign "$tmpdir/camp_serial.json" --quiet
if [ ! -s "$tmpdir/camp_serial.json" ]; then
  echo "check_parallel: fault_campaign produced an empty campaign dump" >&2
  exit 1
fi
for jobs in 1 2 8; do
  "$campaign" --runs 6 --jobs "$jobs" \
              --dump-campaign "$tmpdir/camp_j$jobs.json" --quiet
  require_identical "fault_campaign" "$tmpdir/camp_serial.json" \
                    "$tmpdir/camp_j$jobs.json" "$jobs"
done

echo "check_parallel: OK (explore + campaign byte-identical at --jobs 1/2/8)"
