#!/usr/bin/env bash
# Header self-containment gate: every public header under src/ must compile
# standalone (a translation unit consisting of just that #include), so the
# layered includes stay honest — a header silently leaning on something its
# includer happened to pull in first breaks the next consumer. Registered as
# the `check_headers` ctest (see the top-level CMakeLists.txt).
#
#   ci/check_headers.sh [--cxx COMPILER]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

cxx="${CXX:-c++}"
if [[ "${1:-}" == "--cxx" && -n "${2:-}" ]]; then
  cxx="$2"
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Coverage guard: every module expected to export headers must contribute at
# least one, so a glob or layout change can't silently shrink what the gate
# checks. New modules should be added here when they gain public headers.
expected_modules="sim trace rtos arch refine iss vocoder analysis explore obs"
fail=0
for mod in $expected_modules; do
  if ! find "src/$mod" -name '*.hpp' -print -quit 2>/dev/null | grep -q .; then
    echo "check_headers: expected module src/$mod contributes no headers" >&2
    fail=1
  fi
done

checked=0
while IFS= read -r header; do
  tu="$tmpdir/tu.cpp"
  printf '#include "%s"\n' "${header#src/}" > "$tu"
  if ! "$cxx" -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I src \
       "$tu" 2> "$tmpdir/err.txt"; then
    echo "check_headers: $header is not self-contained:" >&2
    sed 's/^/  /' "$tmpdir/err.txt" >&2
    fail=1
  fi
  checked=$((checked + 1))
done < <(find src -name '*.hpp' | sort)

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_headers: OK ($checked headers compile standalone)"
