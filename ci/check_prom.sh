#!/usr/bin/env bash
# Prometheus exposition gate: runs the slm-report example with --prom and
# validates the exported text against the exposition-format rules that a real
# scrape would enforce — line grammar, one # HELP/# TYPE pair per family,
# histogram buckets cumulative and +Inf-terminated with _count equal to the
# +Inf bucket. Registered as the `check_prom` ctest (see the top-level
# CMakeLists.txt).
#
#   ci/check_prom.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

report="$build_dir/examples/slm-report"
if [ ! -x "$report" ]; then
  echo "check_prom: $report not built (build the repo first)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
prom="$tmpdir/metrics.prom"

"$report" --frames 1 --quiet --prom "$prom"
if [ ! -s "$prom" ]; then
  echo "check_prom: slm-report produced no metrics at $prom" >&2
  exit 1
fi

awk '
function fail(msg) { printf "check_prom: line %d: %s\n  %s\n", NR, msg, $0; bad = 1 }
# One family ends where the next name (stripped of histogram suffixes) starts.
function base_of(name) {
  sub(/_bucket$/, "", name); sub(/_sum$/, "", name); sub(/_count$/, "", name)
  return name
}
function flush_family() {
  if (cur == "") return
  if (!(cur in helped)) { printf "check_prom: family %s has no # HELP\n", cur; bad = 1 }
  if (!(cur in typed))  { printf "check_prom: family %s has no # TYPE\n", cur; bad = 1 }
}
/^# HELP / {
  if (split($0, h, " ") < 4) fail("HELP without text")
  helped[h[3]] = 1; next
}
/^# TYPE / {
  if (split($0, t, " ") != 4) fail("malformed TYPE")
  if (t[4] != "counter" && t[4] != "gauge" && t[4] != "histogram")
    fail("unknown metric type " t[4])
  typed[t[3]] = 1; kind[t[3]] = t[4]; next
}
/^#/ { fail("unexpected comment form"); next }
/^$/ { next }
{
  if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$/) {
    fail("sample line does not match the exposition grammar"); next
  }
  name = $1; sub(/\{.*/, "", name)
  base = base_of(name)
  if (base != cur) { flush_family(); cur = base }
  if (kind[base] == "histogram") {
    if (name == base "_bucket") {
      if ($0 !~ /le="/) { fail("_bucket without an le label"); next }
      v = $NF + 0
      if (in_hist && v < prev_bucket) fail("histogram buckets are not cumulative")
      prev_bucket = v; in_hist = 1
      if ($0 ~ /le="\+Inf"/) { inf_seen = 1; inf_val = v }
    } else if (name == base "_count") {
      if (!inf_seen) fail("_count before any +Inf bucket")
      else if ($NF + 0 != inf_val) fail("_count differs from the +Inf bucket")
      in_hist = 0; inf_seen = 0; prev_bucket = 0
    }
  }
  series++
}
END {
  flush_family()
  if (series == 0) { print "check_prom: no sample lines at all"; bad = 1 }
  if (bad) exit 1
  printf "check_prom: OK (%d sample lines)\n", series
}
' "$prom"

# The span-tracing families (docs/span-tracing.md) must be present: counts of
# recorded/open spans and the worst critical path's total plus its exact
# per-category breakdown, one labelled series per path category.
for family in slm_span_records slm_span_strings slm_span_open \
              slm_span_latency_records slm_span_critical_path_total_ns; do
  if ! grep -Eq "^$family(\{[^}]*\})? " "$prom"; then
    echo "check_prom: missing span metric family $family" >&2
    exit 1
  fi
done
for category in compute bus ready preempt block deliver dst_busy env other; do
  if ! grep -q "^slm_span_critical_path_ns{category=\"$category\"} " "$prom"; then
    echo "check_prom: missing slm_span_critical_path_ns category \"$category\"" >&2
    exit 1
  fi
done
echo "check_prom: OK (slm_span_* families present)"

# The soak-harness aggregates (docs/soak-testing.md) must be present: corpus
# size, job/violation totals, and the differential-oracle counters.
for family in slm_soak_scenarios slm_soak_jobs_total slm_soak_violations_total \
              slm_soak_suspicious_total slm_soak_oracle_checked \
              slm_soak_rta_schedulable slm_soak_deadline_misses_total \
              slm_soak_hyperperiod_overflows_total; do
  if ! grep -Eq "^$family(\{[^}]*\})? " "$prom"; then
    echo "check_prom: missing soak metric family $family" >&2
    exit 1
  fi
done
# The soak sample gating the report run itself: zero violations exported.
if ! grep -Eq "^slm_soak_violations_total 0$" "$prom"; then
  echo "check_prom: slm_soak_violations_total is nonzero" >&2
  exit 1
fi
echo "check_prom: OK (slm_soak_* families present, zero violations)"
