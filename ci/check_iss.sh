#!/usr/bin/env bash
# ISS backend-equivalence gate: the decoded-superblock execution engine must
# be architecturally indistinguishable from the reference interpreter. Runs
# the differential suite (test_iss_engine: lockstep corpus + seeded fuzz +
# guest-kernel scenarios) under the default fast engine and again with
# SLM_ISS_REFERENCE=1, then runs bench_iss in smoke mode — which hard-fails
# if the two backends' whole-workload state fingerprints diverge on the
# vocoder guest image. Registered as the `check_iss` ctest (see the
# top-level CMakeLists.txt) so it runs in plain and sanitizer builds alike.
#
#   ci/check_iss.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

suite="$build_dir/tests/test_iss_engine"
bench="$build_dir/bench/bench_iss"
for bin in "$suite" "$bench"; do
  if [ ! -x "$bin" ]; then
    echo "check_iss: $bin not built (build the repo first)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "check_iss: differential suite (superblock engine)"
SLM_ISS_REFERENCE= "$suite" --gtest_brief=1

echo "check_iss: differential suite (reference interpreter)"
SLM_ISS_REFERENCE=1 "$suite" --gtest_brief=1

echo "check_iss: whole-workload fingerprint (bench_iss --smoke)"
"$bench" --smoke --out "$tmpdir/BENCH_iss_smoke.json"

if [ ! -s "$tmpdir/BENCH_iss_smoke.json" ]; then
  echo "check_iss: bench_iss produced an empty report" >&2
  exit 1
fi

echo "check_iss: OK (both backends agree on corpus, fuzz, and vocoder guest)"
