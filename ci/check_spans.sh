#!/usr/bin/env bash
# Span-tracing determinism gate: the causal span streams described in
# docs/span-tracing.md must reproduce byte-for-byte no matter how the run is
# repeated or parallelised. Three checks:
#
#   1. token_trace (two-PE vocoder with an obs::SpanRecorder wired in) run
#      twice must produce identical slm-span-dump-v1 dumps, and the dump must
#      carry the schema header and at least one latency span.
#   2. mapping_sweep --spans --replay-winner serially and at --jobs 1, 2, and
#      8 must produce identical dumps — the attributed sweep JSON AND the
#      winner replay's full span stream (worker-local recorders are the
#      mechanism; this gate is the contract).
#   3. The token_trace exit code is itself a gate: it exits nonzero unless
#      every token's critical-path segments sum exactly to its observed
#      latency, so this script fails on any estimation drift too.
#
# Registered as the `check_spans` ctest (see the top-level CMakeLists.txt),
# so it also runs inside the ASan/TSan trees built by `ci/sanitize.sh`.
#
#   ci/check_spans.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

token_trace="$build_dir/examples/token_trace"
sweep="$build_dir/examples/mapping_sweep"
for bin in "$token_trace" "$sweep"; do
  if [ ! -x "$bin" ]; then
    echo "check_spans: $bin not built (build the repo first)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

require_identical() {  # require_identical WHAT REFERENCE CANDIDATE LABEL
  if ! cmp -s "$2" "$3"; then
    echo "check_spans: $1 ($4) diverged from the reference run:" >&2
    diff "$2" "$3" | head -10 >&2
    exit 1
  fi
}

# 1. Run-to-run determinism of the canonical span dump (exactness enforced by
#    the example's own exit code).
"$token_trace" --frames 4 --quiet --dump "$tmpdir/spans_a.jsonl"
"$token_trace" --frames 4 --quiet --dump "$tmpdir/spans_b.jsonl"
if [ ! -s "$tmpdir/spans_a.jsonl" ]; then
  echo "check_spans: token_trace produced an empty span dump" >&2
  exit 1
fi
if ! grep -q '"schema":"slm-span-dump-v1"' "$tmpdir/spans_a.jsonl"; then
  echo "check_spans: dump is missing the slm-span-dump-v1 schema tag" >&2
  exit 1
fi
if ! grep -q '"kind":"latency"' "$tmpdir/spans_a.jsonl"; then
  echo "check_spans: dump has no latency spans (tokens not traced?)" >&2
  exit 1
fi
require_identical "token_trace span dump" "$tmpdir/spans_a.jsonl" \
                  "$tmpdir/spans_b.jsonl" "repeat run"

# 2. Attributed sweep + winner-replay span stream, serial vs parallel.
"$sweep" --frames 4 --spans --replay-winner --dump "$tmpdir/sweep_serial.json"
if ! grep -q '"attribution":{' "$tmpdir/sweep_serial.json"; then
  echo "check_spans: sweep dump carries no attribution objects" >&2
  exit 1
fi
if ! grep -q '"exact":true' "$tmpdir/sweep_serial.json"; then
  echo "check_spans: no candidate attribution is marked exact" >&2
  exit 1
fi
if grep -q '"exact":false' "$tmpdir/sweep_serial.json"; then
  echo "check_spans: a candidate attribution failed the exactness contract" >&2
  exit 1
fi
if ! grep -q '"schema":"slm-span-dump-v1"' "$tmpdir/sweep_serial.json"; then
  echo "check_spans: sweep dump is missing the winner-replay span stream" >&2
  exit 1
fi
for jobs in 1 2 8; do
  "$sweep" --frames 4 --jobs "$jobs" --spans --replay-winner \
           --dump "$tmpdir/sweep_j$jobs.json"
  require_identical "mapping_sweep --spans" "$tmpdir/sweep_serial.json" \
                    "$tmpdir/sweep_j$jobs.json" "--jobs $jobs"
done

echo "check_spans: OK (span dumps byte-identical run-to-run and at --jobs 1/2/8)"
