#!/usr/bin/env bash
# Sanitizer gates.
#
# Default mode — ASan+UBSan: configure, build, and run the test suite with
# -DSLM_SANITIZE=ON. This exercises the fast-context engine's sanitizer
# fiber annotations and the stack pool's unpoison-on-recycle path (see
# docs/kernel-internals.md), plus every ucontext-variant test the suite
# registers. The ISS's decoded-superblock engine runs under sanitizers here
# too: the *.refiss test variants and the check_iss gate (lockstep
# differential suite + bench_iss fingerprint) are part of the ctest run.
#
# --tsan mode — ThreadSanitizer: a separate tree with -DSLM_TSAN=ON (TSan is
# mutually exclusive with ASan). This is the data-race gate for the
# slm::parallel work-stealing engines: the context engine carries TSan fiber
# annotations (__tsan_create_fiber / __tsan_switch_to_fiber, see
# src/sim/context.cpp), so coroutine switches inside each worker don't
# confuse the race detector, and the ctest run includes test_parallel and the
# check_parallel byte-equivalence gate.
#
#   ci/sanitize.sh                    # ASan+UBSan, build tree: build-asan
#   ci/sanitize.sh my-dir             # ASan+UBSan in another tree
#   ci/sanitize.sh --tsan             # TSan, build tree: build-tsan
#   ci/sanitize.sh --tsan my-dir      # TSan in another tree
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode_flag="-DSLM_SANITIZE=ON"
default_dir="build-asan"
if [[ "${1:-}" == "--tsan" ]]; then
  mode_flag="-DSLM_TSAN=ON"
  default_dir="build-tsan"
  shift
fi
build_dir="${1:-$default_dir}"

cmake -B "$build_dir" -S "$repo_root" "$mode_flag"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
