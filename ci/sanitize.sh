#!/usr/bin/env bash
# ASan+UBSan gate: configure, build, and run the test suite with
# -DSLM_SANITIZE=ON. This exercises the fast-context engine's sanitizer
# fiber annotations and the stack pool's unpoison-on-recycle path (see
# docs/kernel-internals.md), plus every ucontext-variant test the suite
# registers. The ISS's decoded-superblock engine runs under sanitizers here
# too: the *.refiss test variants and the check_iss gate (lockstep
# differential suite + bench_iss fingerprint) are part of the ctest run.
#
#   ci/sanitize.sh              # build tree: build-asan
#   ci/sanitize.sh my-dir       # pick another build tree
set -euo pipefail

build_dir="${1:-build-asan}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$build_dir" -S "$repo_root" -DSLM_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
