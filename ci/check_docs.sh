#!/usr/bin/env bash
# Documentation link gate: fails if any intra-repo markdown link in the
# checked pages is broken, any `path/to/file.ext:NN` code reference points at
# a missing file or past its end, or any docs/*.md page is unreachable from
# the docs/README.md index. Registered as the `check_docs` ctest (see the
# top-level CMakeLists.txt), so `ctest` runs it next to the code tests.
#
#   ci/check_docs.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

doc_files=(docs/*.md README.md EXPERIMENTS.md ROADMAP.md)

# ---- 1. intra-repo markdown links resolve -----------------------------------
# [text](target): external schemes and pure #anchors are skipped; relative
# targets must exist, resolved against the linking file's directory (with the
# repo root as a fallback for root-relative spellings). Fenced code blocks and
# inline code spans are stripped first — a C++ lambda `[](T x)` is not a link.
strip_code() {
  awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$1" |
    sed -E 's/`[^`]*`//g'
}

for f in "${doc_files[@]}"; do
  [ -f "$f" ] || continue
  dir="$(dirname "$f")"
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      err "$f: broken link -> ($target)"
    fi
  done < <(strip_code "$f" | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//' || true)
done

# ---- 2. file:line code references point at real lines -----------------------
for f in "${doc_files[@]}"; do
  [ -f "$f" ] || continue
  while IFS=: read -r path line; do
    [ -z "${path:-}" ] && continue
    if [ ! -f "$path" ]; then
      err "$f: code ref to missing file -> $path:$line"
    elif [ "$(wc -l < "$path")" -lt "$line" ]; then
      err "$f: code ref past end of file -> $path:$line ($(wc -l < "$path") lines)"
    fi
  done < <(grep -ohE '(src|tests|examples|bench|ci|docs)/[A-Za-z0-9_./-]+\.(cpp|hpp|h|sh|md|txt):[0-9]+' "$f" 2>/dev/null | sort -u || true)
done

# ---- 3. every docs page is reachable from the docs/README.md index ----------
index="docs/README.md"
if [ ! -f "$index" ]; then
  err "missing $index (the docs index)"
else
  for f in docs/*.md; do
    base="$(basename "$f")"
    [ "$base" = "README.md" ] && continue
    if ! grep -qE "\\]\\((\\./)?$base(#[^)]*)?\\)" "$index"; then
      err "docs page not linked from $index: $f"
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_docs: OK (${#doc_files[@]} page globs, links + code refs + index coverage)"
