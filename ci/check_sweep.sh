#!/usr/bin/env bash
# Mapping-sweep determinism gate: a design-space sweep must produce the same
# result no matter how it is parallelised or repeated. Runs the vocoder
# mapping_sweep serially and at --jobs 1, 2, and 8 (winner replay included)
# and requires every parallel slm-sweep-result-v1 dump to match the serial
# one byte-for-byte; then runs the multi_pe_system example twice and requires
# the two task-state trace dumps to be identical. The contract lives in
# docs/system-mapping.md. Registered as the `check_sweep` ctest (see the
# top-level CMakeLists.txt), so it also runs inside the ASan/TSan trees built
# by `ci/sanitize.sh`.
#
#   ci/check_sweep.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ "${1:-}" == "--build-dir" && -n "${2:-}" ]]; then
  build_dir="$2"
fi

sweep="$build_dir/examples/mapping_sweep"
multi_pe="$build_dir/examples/multi_pe_system"
for bin in "$sweep" "$multi_pe"; do
  if [ ! -x "$bin" ]; then
    echo "check_sweep: $bin not built (build the repo first)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

require_identical() {  # require_identical WHAT SERIAL PARALLEL LABEL
  if ! cmp -s "$2" "$3"; then
    echo "check_sweep: $1 ($4) diverged from the reference run:" >&2
    diff "$2" "$3" | head -10 >&2
    exit 1
  fi
}

# 1. Vocoder mapping sweep on the heterogeneous ARM+DSP platform: 8 candidate
#    mappings, canonical JSON plus a replay of the winning mapping.
"$sweep" --frames 4 --dump "$tmpdir/sweep_serial.json" --replay-winner
if [ ! -s "$tmpdir/sweep_serial.json" ]; then
  echo "check_sweep: mapping_sweep produced an empty dump" >&2
  exit 1
fi
if ! grep -q '"schema":"slm-sweep-result-v1"' "$tmpdir/sweep_serial.json"; then
  echo "check_sweep: dump is missing the slm-sweep-result-v1 schema tag" >&2
  exit 1
fi
if ! grep -q '"schema":"slm-sweep-replay-v1"' "$tmpdir/sweep_serial.json"; then
  echo "check_sweep: dump is missing the winner-replay record" >&2
  exit 1
fi
for jobs in 1 2 8; do
  "$sweep" --frames 4 --jobs "$jobs" --dump "$tmpdir/sweep_j$jobs.json" \
           --replay-winner
  require_identical "mapping_sweep" "$tmpdir/sweep_serial.json" \
                    "$tmpdir/sweep_j$jobs.json" "--jobs $jobs"
done

# 2. Elaborated two-PE example: the task-state trace of a spec-declared
#    system must reproduce run-to-run.
"$multi_pe" --dump "$tmpdir/trace_a.csv"
"$multi_pe" --dump "$tmpdir/trace_b.csv"
if [ ! -s "$tmpdir/trace_a.csv" ]; then
  echo "check_sweep: multi_pe_system produced an empty trace" >&2
  exit 1
fi
require_identical "multi_pe_system" "$tmpdir/trace_a.csv" "$tmpdir/trace_b.csv" \
                  "repeat run"

echo "check_sweep: OK (sweep byte-identical at --jobs 1/2/8, trace reproducible)"
