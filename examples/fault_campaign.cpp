// fault_campaign: deterministic fault-injection campaigns on two models.
//
//   1. Fig. 8 architecture model under a seeded fault plan (execution jitter
//      on task_b2, delayed + occasionally dropped external interrupt), swept
//      across seeds. Each run reports what was injected and how the schedule
//      shifted; the same seed always reproduces the same trace byte-for-byte
//      (ci/check_faults.sh pins this via --seed/--dump-trace).
//
//   2. A vocoder-style periodic transcoder (20 ms frames) whose execution
//      overruns 2x inside a fault window, swept over all five deadline-miss
//      recovery policies. The report shows which policy keeps the transcoding
//      deadline: how many frames missed, were skipped, or were lost to
//      restarts, and whether the task is back on deadline after the window.
//
// Usage: fault_campaign [--seed N] [--runs N] [--jobs N] [--dump-trace FILE]
//                       [--dump-campaign FILE] [--quiet]
//
//   --jobs N           run the fig3 seed sweep on the N-worker parallel
//                      engine (slm::parallel::run_campaign); 0 (default) =
//                      the serial fault::run_campaign. Output is
//                      byte-identical either way.
//   --dump-campaign F  run only the fig3 sweep and write its canonical JSON
//                      (fault::write_campaign_json) to F — the artifact
//                      ci/check_parallel.sh byte-compares across thread
//                      counts.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "arch/fig3.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "parallel/parallel.hpp"
#include "rtos/core.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

bool g_quiet = false;

/// Copies the core's stats when the core dies (the model functions own their
/// cores, so the numbers must be grabbed at teardown).
class StatsGrabber final : public rtos::OsObserver {
public:
    void bind(rtos::OsCore& core) {
        core_ = &core;
        core.add_observer(this);
    }
    void on_core_teardown() override {
        stats = core_->stats();
        core_ = nullptr;
    }
    rtos::RtosStats stats{};

private:
    rtos::OsCore* core_ = nullptr;
};

const char* kFig3Plan = R"(# Fig. 8 fault plan: jittered execution, unreliable external interrupt
exec_jitter task_b2 max=10us p=0.8
isr_delay ext delay=15us p=0.5
isr_spurious ext extra=1 p=0.25
)";

fault::CampaignRun run_fig3_once(fault::FaultInjector& inj) {
    trace::TraceRecorder rec;
    fault::CampaignRun out;
    StatsGrabber grab;
    const arch::Fig3Result res = arch::run_fig3_architecture(
        &rec, {}, {}, [&](rtos::OsCore& core) {
            inj.attach(core);
            grab.bind(core);
        });
    std::ostringstream csv;
    rec.write_csv(csv);
    out.trace_csv = std::move(csv).str();
    out.end_time = res.pe_done;
    out.deadline_misses = grab.stats.deadline_misses;
    out.crashes = grab.stats.crashes;
    out.restarts = grab.stats.restarts;
    out.watchdog_fires = grab.stats.watchdog_fires;
    out.jobs_skipped = grab.stats.jobs_skipped;
    return out;
}

/// The fig3 sweep on either engine; `jobs` 0 = serial. Both produce the same
/// CampaignResult byte-for-byte (ci/check_parallel.sh holds them to it).
fault::CampaignResult run_fig3_campaign(std::uint64_t first_seed, unsigned runs,
                                        unsigned jobs) {
    const std::optional<fault::FaultPlan> plan = fault::FaultPlan::parse(kFig3Plan);
    const fault::CampaignRunFn fn = [](fault::FaultInjector& inj,
                                       fault::CampaignRun& out) {
        out = run_fig3_once(inj);
    };
    if (jobs == 0) {
        return fault::run_campaign(*plan, {first_seed, runs}, fn);
    }
    parallel::ParallelConfig pc;
    pc.jobs = jobs;
    return parallel::run_campaign(*plan, {first_seed, runs}, fn, pc);
}

void fig3_campaign(std::uint64_t first_seed, unsigned runs, unsigned jobs) {
    if (!g_quiet) {
        std::printf("==== Fig. 8 campaign: %u seeds starting at %llu ====\n\n",
                    runs, static_cast<unsigned long long>(first_seed));
    }
    const fault::CampaignResult res = run_fig3_campaign(first_seed, runs, jobs);
    if (g_quiet) {
        return;
    }
    std::printf("%6s %10s %12s %14s\n", "seed", "injected", "end time",
                "trace bytes");
    for (const fault::CampaignRun& r : res.runs) {
        std::printf("%6llu %10llu %12s %14zu\n",
                    static_cast<unsigned long long>(r.seed),
                    static_cast<unsigned long long>(r.injections),
                    r.end_time.to_string().c_str(), r.trace_csv.size());
    }
    std::printf("\ntotal injections across the sweep: %llu\n\n",
                static_cast<unsigned long long>(res.total_injections()));
}

/// The transcoder skeleton: one periodic task with the vocoder's 20 ms frame
/// period, nominally finishing at 60%% utilization. The fault plan doubles
/// its execution time between 100 ms and 200 ms.
struct PolicyOutcome {
    rtos::MissPolicy policy;
    std::uint64_t completions = 0;
    std::uint64_t misses = 0;
    std::uint64_t skipped = 0;
    std::uint64_t restarts = 0;
    bool recovered = false;  ///< on-deadline again after the fault window
};

PolicyOutcome run_policy(rtos::MissPolicy policy, std::uint64_t seed) {
    constexpr SimTime kPeriod = 20_ms;
    constexpr SimTime kExec = 12_ms;
    constexpr std::uint64_t kFrames = 25;  // 500 ms horizon

    const std::optional<fault::FaultPlan> plan = fault::FaultPlan::parse(
        "exec_scale transcoder factor=2.0 after=100ms until=200ms\n");
    fault::FaultInjector inj(*plan, seed);

    sim::Kernel k;
    rtos::RtosConfig rc;
    rc.cpu_name = "DSP";
    rc.default_miss_policy = policy;
    arch::ProcessingElement pe{k, "DSP", rc};
    inj.attach(pe.os());

    SimTime last_miss{};
    SimTime last_on_time{};
    class Watch final : public rtos::OsObserver {
    public:
        SimTime* last_miss;
        SimTime* last_on_time;
        void on_completion(const rtos::Task&, SimTime, bool missed,
                           SimTime now) override {
            *(missed ? last_miss : last_on_time) = now;
        }
    } watch;
    watch.last_miss = &last_miss;
    watch.last_on_time = &last_on_time;
    pe.os().add_observer(&watch);

    rtos::Task* t = pe.add_periodic_task(
        "transcoder", 1, kPeriod, kExec,
        [&] { pe.os().time_wait(kExec); }, kFrames, kPeriod);
    pe.start();
    k.run_until(milliseconds(600));
    pe.os().remove_observer(&watch);

    PolicyOutcome out;
    out.policy = policy;
    out.completions = t->stats().completions;
    out.misses = t->stats().deadline_misses;
    out.skipped = t->stats().jobs_skipped;
    out.restarts = t->stats().restarts;
    out.recovered = !last_on_time.is_zero() && last_on_time > last_miss;
    return out;
}

void policy_sweep(std::uint64_t seed) {
    if (!g_quiet) {
        std::printf("==== Transcoder overrun: deadline-miss policy sweep ====\n\n");
        std::printf("20 ms frames, 12 ms nominal execution; 2x overrun in "
                    "[100 ms, 200 ms)\n\n");
        std::printf("%-8s %12s %8s %8s %9s %10s\n", "policy", "completions",
                    "misses", "skipped", "restarts", "recovered");
    }
    for (const rtos::MissPolicy p :
         {rtos::MissPolicy::Ignore, rtos::MissPolicy::Notify,
          rtos::MissPolicy::SkipJob, rtos::MissPolicy::Restart,
          rtos::MissPolicy::Kill}) {
        const PolicyOutcome o = run_policy(p, seed);
        if (!g_quiet) {
            std::printf("%-8s %12llu %8llu %8llu %9llu %10s\n",
                        rtos::to_string(o.policy),
                        static_cast<unsigned long long>(o.completions),
                        static_cast<unsigned long long>(o.misses),
                        static_cast<unsigned long long>(o.skipped),
                        static_cast<unsigned long long>(o.restarts),
                        o.recovered ? "yes" : "no");
        }
    }
    if (!g_quiet) {
        std::printf("\n(SkipJob sheds the backlog and is back on deadline "
                    "right after the window;\n Ignore/Notify drag the overrun "
                    "forward; Kill trades the task for silence.)\n");
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 1;
    unsigned runs = 4;
    unsigned jobs = 0;
    std::string dump_path;
    std::string dump_campaign_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
            runs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--dump-trace") == 0 && i + 1 < argc) {
            dump_path = argv[++i];
        } else if (std::strcmp(argv[i], "--dump-campaign") == 0 && i + 1 < argc) {
            dump_campaign_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            g_quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: fault_campaign [--seed N] [--runs N] [--jobs N] "
                         "[--dump-trace FILE] [--dump-campaign FILE] [--quiet]\n");
            return 2;
        }
    }

    if (!dump_campaign_path.empty()) {
        // Parallel-equivalence gate (ci/check_parallel.sh): the whole sweep's
        // canonical JSON. Same seeds => same bytes, at any --jobs.
        const fault::CampaignResult res = run_fig3_campaign(seed, runs, jobs);
        std::ofstream out{dump_campaign_path, std::ios::binary};
        fault::write_campaign_json(out, res);
        if (!out) {
            std::fprintf(stderr, "fault_campaign: cannot write %s\n",
                         dump_campaign_path.c_str());
            return 2;
        }
        if (!g_quiet) {
            std::printf("%u-seed campaign at seed %llu -> %s\n", runs,
                        static_cast<unsigned long long>(seed),
                        dump_campaign_path.c_str());
        }
        return 0;
    }

    if (!dump_path.empty()) {
        // Determinism gate (ci/check_faults.sh): one fig3 run at --seed,
        // canonical trace to --dump-trace. Same seed => same bytes.
        const std::optional<fault::FaultPlan> plan =
            fault::FaultPlan::parse(kFig3Plan);
        fault::FaultInjector inj(*plan, seed);
        const fault::CampaignRun run = run_fig3_once(inj);
        std::ofstream out{dump_path, std::ios::binary};
        out << run.trace_csv;
        if (!g_quiet) {
            std::printf("seed %llu: %llu injections, %zu trace bytes -> %s\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(inj.stats().total()),
                        run.trace_csv.size(), dump_path.c_str());
        }
        return 0;
    }

    fig3_campaign(seed, runs, jobs);
    policy_sweep(seed);
    return 0;
}
