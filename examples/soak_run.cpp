// soak-run: the randomized soak harness CLI (docs/soak-testing.md).
//
// Generates seeded scenarios (periodic/mutex/pipeline/isr families), runs
// each to completion under the streaming invariant monitors and the RTA
// differential oracle, and merges verdicts deterministically — the --dump
// JSON is byte-identical at any --jobs count. With --plan/--fault-plan a
// slm::fault plan is injected into every scenario (seeded per scenario);
// --shrink delta-debugs the lowest-seed failure to a minimal seed+spec
// repro and verifies its replay byte-for-byte.
//
// Exit code: 0 when every scenario passed, 1 when any violation was found
// (the planted-defect path of ci/check_soak.sh expects exactly this).
//
// Usage: soak-run [--scenarios N] [--seed S] [--jobs-target N] [--jobs J]
//                 [--min-tasks N] [--max-tasks N]
//                 [--plan TEXT | --fault-plan FILE] [--shrink]
//                 [--dump FILE] [--shrink-dump FILE] [--quiet]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "soak/shrink.hpp"
#include "soak/soak.hpp"

using namespace slm;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: soak-run [--scenarios N] [--seed S] [--jobs-target N] "
                 "[--jobs J] [--min-tasks N] [--max-tasks N] "
                 "[--plan TEXT | --fault-plan FILE] [--shrink] "
                 "[--dump FILE] [--shrink-dump FILE] [--quiet]\n");
    return 2;
}

bool write_file(const std::string& path, const std::string& bytes) {
    std::ofstream out{path};
    out << bytes;
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    soak::SoakConfig cfg;
    bool do_shrink = false;
    bool quiet = false;
    std::string dump_path;
    std::string shrink_dump_path;
    for (int i = 1; i < argc; ++i) {
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "soak-run: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--scenarios") == 0) {
            cfg.scenarios = static_cast<std::size_t>(std::atoll(next("--scenarios")));
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            cfg.first_seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
        } else if (std::strcmp(argv[i], "--jobs-target") == 0) {
            cfg.gen.jobs_target =
                static_cast<std::uint64_t>(std::atoll(next("--jobs-target")));
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            cfg.jobs = static_cast<unsigned>(std::atoi(next("--jobs")));
        } else if (std::strcmp(argv[i], "--min-tasks") == 0) {
            cfg.gen.min_tasks = static_cast<std::size_t>(std::atoi(next("--min-tasks")));
        } else if (std::strcmp(argv[i], "--max-tasks") == 0) {
            cfg.gen.max_tasks = static_cast<std::size_t>(std::atoi(next("--max-tasks")));
        } else if (std::strcmp(argv[i], "--plan") == 0) {
            cfg.fault_plan = next("--plan");
        } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
            std::ifstream in{next("--fault-plan")};
            if (!in.good()) {
                std::fprintf(stderr, "soak-run: cannot read fault plan file\n");
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            cfg.fault_plan = text.str();
        } else if (std::strcmp(argv[i], "--shrink") == 0) {
            do_shrink = true;
        } else if (std::strcmp(argv[i], "--dump") == 0) {
            dump_path = next("--dump");
        } else if (std::strcmp(argv[i], "--shrink-dump") == 0) {
            shrink_dump_path = next("--shrink-dump");
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            return usage();
        }
    }
    if (cfg.scenarios == 0 || cfg.gen.min_tasks == 0 ||
        cfg.gen.max_tasks < cfg.gen.min_tasks) {
        return usage();
    }

    // Pre-validate the plan so a typo is a usage error, not a mid-soak abort.
    if (!cfg.fault_plan.empty()) {
        std::string err;
        if (!fault::FaultPlan::parse(cfg.fault_plan, &err)) {
            std::fprintf(stderr, "soak-run: fault plan: %s\n", err.c_str());
            return 2;
        }
    }

    parallel::ParallelStats stats;
    const soak::SoakResult res = soak::run_soak(cfg, &stats);

    if (!quiet) {
        std::printf("soak: %zu scenarios (seeds %llu..%llu), %llu jobs, %u workers\n",
                    res.verdicts.size(),
                    static_cast<unsigned long long>(cfg.first_seed),
                    static_cast<unsigned long long>(cfg.first_seed + cfg.scenarios - 1),
                    static_cast<unsigned long long>(res.total_jobs()),
                    static_cast<unsigned>(stats.workers));
        std::printf(
            "oracle: %llu checked, %llu RTA-schedulable, %llu suspicious, "
            "%llu hyperperiod overflows\n",
            static_cast<unsigned long long>(res.oracle_checked()),
            static_cast<unsigned long long>(res.rta_schedulable_count()),
            static_cast<unsigned long long>(res.total_suspicious()),
            static_cast<unsigned long long>(res.hyperperiod_overflows()));
        std::printf("violations: %llu across %llu deadline misses\n",
                    static_cast<unsigned long long>(res.total_violations()),
                    static_cast<unsigned long long>(res.total_deadline_misses()));
        for (const soak::ScenarioVerdict& v : res.verdicts) {
            if (!v.failed()) {
                continue;
            }
            std::printf("FAIL %s (%s, seed %llu):\n", v.name.c_str(),
                        v.family.c_str(), static_cast<unsigned long long>(v.seed));
            for (const std::string& viol : v.violations) {
                std::printf("  %s\n", viol.c_str());
            }
        }
    }

    if (!dump_path.empty()) {
        std::ostringstream os;
        soak::write_soak_json(os, res);
        if (!write_file(dump_path, os.str())) {
            std::fprintf(stderr, "soak-run: cannot write %s\n", dump_path.c_str());
            return 2;
        }
        if (!quiet) {
            std::printf("wrote soak result to %s\n", dump_path.c_str());
        }
    }

    const soak::ScenarioVerdict* failure = res.first_failure();
    if (failure != nullptr && do_shrink) {
        std::string err;
        const std::optional<fault::FaultPlan> plan =
            cfg.fault_plan.empty() ? std::nullopt
                                   : fault::FaultPlan::parse(cfg.fault_plan, &err);
        const soak::Scenario failing = soak::generate(cfg.gen, failure->seed);
        const soak::ShrinkResult shrunk =
            soak::shrink(failing, plan.has_value() ? &*plan : nullptr);
        if (!quiet) {
            std::printf(
                "shrink: seed %llu -> %zu tasks after %llu attempts "
                "(%llu accepted, %llu rounds), replay %s\n",
                static_cast<unsigned long long>(failure->seed),
                shrunk.minimal.app.tasks.size(),
                static_cast<unsigned long long>(shrunk.attempts),
                static_cast<unsigned long long>(shrunk.accepted),
                static_cast<unsigned long long>(shrunk.rounds),
                shrunk.replay_identical ? "byte-identical" : "DIVERGED");
            for (const std::string& viol : shrunk.verdict.violations) {
                std::printf("  minimal still fails: %s\n", viol.c_str());
            }
        }
        if (!shrink_dump_path.empty()) {
            std::ostringstream os;
            soak::write_shrink_json(os, shrunk);
            if (!write_file(shrink_dump_path, os.str())) {
                std::fprintf(stderr, "soak-run: cannot write %s\n",
                             shrink_dump_path.c_str());
                return 2;
            }
            if (!quiet) {
                std::printf("wrote shrink result to %s\n", shrink_dump_path.c_str());
            }
        }
    }

    return failure != nullptr ? 1 : 0;
}
