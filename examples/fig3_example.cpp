// The paper's running example (Fig. 3): one PE with behaviors B1; par{B2, B3},
// channels c1/c2, and a bus driver whose ISR signals a semaphore. Runs both
// the unscheduled specification model and the RTOS-based architecture model
// and renders the two Fig. 8 traces side by side.
//
// Build & run:  ./build/examples/fig3_example

#include <cstdio>

#include "arch/fig3.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

void print_result(const char* title, const arch::Fig3Result& r,
                  const trace::TraceRecorder& rec) {
    std::printf("--- %s ---\n", title);
    std::printf("%s", rec.render_gantt(SimTime::zero(), 170_us, 68).c_str());
    std::printf("B3 got bus data at : %s\n", r.bus_data_seen.to_string().c_str());
    std::printf("B3 finished        : %s\n", r.b3_done.to_string().c_str());
    std::printf("B2 finished        : %s\n", r.b2_done.to_string().c_str());
    std::printf("PE finished        : %s\n", r.pe_done.to_string().c_str());
    std::printf("context switches   : %llu\n\n",
                static_cast<unsigned long long>(r.context_switches));
}

}  // namespace

int main() {
    const arch::Fig3Delays d;

    trace::TraceRecorder unsched_rec;
    const arch::Fig3Result u = arch::run_fig3_unscheduled(&unsched_rec, d);
    print_result("unscheduled model (paper Fig. 8a)", u, unsched_rec);

    trace::TraceRecorder arch_rec;
    const arch::Fig3Result a = arch::run_fig3_architecture(&arch_rec, d);
    print_result("architecture model, priority scheduling (paper Fig. 8b)", a, arch_rec);

    std::printf("The interrupt fires at t4 = %s in both models. In the unscheduled\n"
                "model B3 receives its data immediately; in the architecture model the\n"
                "task switch is delayed to the end of task_b2's current delay step\n"
                "(t4' = %s) — the preemption-granularity effect of paper §4.3.\n",
                d.irq_at.to_string().c_str(), a.bus_data_seen.to_string().c_str());
    return 0;
}
