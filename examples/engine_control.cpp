// An engine-control-unit style system model exercising the full RTOS-model
// feature set: periodic control tasks under RMS, a crank-shaft interrupt
// routed through the prioritized interrupt controller, a diagnostics task
// using task_delay (non-CPU-consuming sleep) and timeouts, and schedulability
// cross-checked with response-time analysis.
//
// Build & run:  ./build/examples/engine_control

#include <cstdio>
#include <vector>

#include "analysis/analysis.hpp"
#include "arch/arch.hpp"
#include "rtos/os_channels.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

int main() {
    sim::Kernel kernel;
    trace::TraceRecorder trace;

    rtos::RtosConfig cfg;
    cfg.policy = rtos::SchedPolicy::Rms;
    cfg.preemption_granularity = 100_us;
    cfg.tracer = &trace;
    arch::ProcessingElement ecu{kernel, "ECU", cfg};
    rtos::OsCore& os = ecu.os();

    // ---- analytic check before simulating ----
    std::vector<analysis::PeriodicTaskSpec> specs = {
        {"fuel", 2_ms, 400_us, {}, 0},
        {"ignition", 4_ms, 900_us, {}, 0},
        {"lambda", 10_ms, 1500_us, {}, 0},
    };
    analysis::assign_rms_priorities(specs);
    std::printf("utilization %.3f (RMS bound %.3f), RTA schedulable: %s\n\n",
                analysis::utilization(specs), analysis::rms_utilization_bound(3),
                analysis::rta_schedulable(specs) ? "yes" : "no");

    // ---- periodic control loops (priorities from RMS ranks) ----
    const SimTime horizon = 50_ms;
    for (const auto& s : specs) {
        ecu.add_periodic_task(
            s.name, s.priority, s.period, s.wcet,
            [&os, wcet = s.wcet] { os.time_wait(wcet); },
            horizon.ns() / s.period.ns());
    }

    // ---- crank-shaft interrupt through the prioritized controller ----
    arch::InterruptController pic{kernel, os, "pic"};
    arch::InterruptLine crank{kernel, "crank"};
    arch::InterruptLine can_rx{kernel, "can_rx"};
    rtos::OsSemaphore crank_sem{os, 0, "crank_sem"};
    rtos::OsSemaphore can_sem{os, 0, "can_sem"};
    pic.attach(crank, 0, [&] { crank_sem.release(); });  // highest IRQ priority
    pic.attach(can_rx, 3, [&] { can_sem.release(); });

    int crank_events = 0;
    ecu.add_task("crank_sync", 0, [&] {
        // Sporadic: synchronize to each crank edge, tiny bounded work.
        while (crank_sem.acquire_for(20_ms)) {
            os.time_wait(50_us);
            ++crank_events;
        }
    });

    int can_frames = 0, can_timeouts = 0;
    ecu.add_task("can_service", 4, [&] {
        for (int i = 0; i < 10; ++i) {
            if (can_sem.acquire_for(6_ms)) {
                os.time_wait(200_us);
                ++can_frames;
            } else {
                ++can_timeouts;
            }
        }
    });

    // Diagnostics: wakes every 10 ms without burning CPU while asleep.
    int diag_rounds = 0;
    ecu.add_task("diag", 5, [&] {
        for (int i = 0; i < 5; ++i) {
            os.task_delay(10_ms);
            os.time_wait(300_us);
            ++diag_rounds;
        }
    });

    // Device models: crank at ~1.3 ms spacing, CAN frames sparser.
    kernel.spawn("engine", [&] {
        for (int i = 0; i < 38; ++i) {
            kernel.waitfor(1300_us);
            crank.raise();
        }
    });
    kernel.spawn("can_bus", [&] {
        for (int i = 0; i < 7; ++i) {
            kernel.waitfor(5_ms);
            can_rx.raise();
        }
    });

    ecu.start();
    kernel.run();

    std::printf("simulated %s of engine operation\n", kernel.now().to_string().c_str());
    std::printf("crank events serviced : %d\n", crank_events);
    std::printf("CAN frames / timeouts : %d / %d\n", can_frames, can_timeouts);
    std::printf("diagnostic rounds     : %d\n", diag_rounds);
    std::printf("context switches      : %llu, IRQs dispatched: %llu\n",
                static_cast<unsigned long long>(os.stats().context_switches),
                static_cast<unsigned long long>(pic.dispatched()));
    std::uint64_t misses = 0;
    for (const rtos::Task* t : os.tasks()) {
        misses += t->stats().deadline_misses;
    }
    std::printf("deadline misses       : %llu\n\n",
                static_cast<unsigned long long>(misses));
    std::printf("%s\n", trace.utilization_report(SimTime::zero(), kernel.now()).c_str());
    return 0;
}
