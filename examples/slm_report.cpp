// slm-report: a full observability run report from the unified obs layer.
//
// Three sections, each exercising a different part of src/obs/:
//
//   1. Fig. 8 architecture model — recorded through the hot-path
//      obs::BinaryTraceSink, converted losslessly to a TraceRecorder for the
//      Gantt chart and utilization table; online per-task analytics
//      (scheduling latency, response times) from an obs::RtosAnalytics
//      observer, no trace walk.
//   2. Vocoder architecture model — same instrumentation on a bigger model.
//   3. Vocoder mapping sweep — the slm::sys design-space comparison: every
//      task->PE assignment on the heterogeneous ARM+DSP platform, ranked by
//      deadline misses and latency quantiles (sys::SweepResult::ranking).
//   4. Fault injection & recovery — a deterministic slm::fault plan (overrun
//      window + one-shot crash) against a watchdog-protected workload; the
//      injection and recovery counters land in the shared registry as
//      slm_fault_* gauges.
//   5. Token span tracing — the two-PE vocoder under an obs::SpanRecorder:
//      per-frame critical paths with the exact per-category latency
//      breakdown (docs/span-tracing.md), slm_span_* gauges in the shared
//      registry, and optional exports: --spans FILE (canonical span dump)
//      and --perfetto FILE (Chrome trace-event JSON). Exporting from an
//      empty recorder is a hard error, never a silent skip.
//   6. Randomized soak sample — a small seeded slice of the slm::soak corpus
//      (docs/soak-testing.md) run under the invariant monitors and the RTA
//      differential oracle; the aggregates land in the shared registry as
//      slm_soak_* gauges.
//   7. Priority-inversion demo — three tasks sharing a Protocol::None mutex;
//      the analytics inversion detector reports the unbounded-inversion
//      window with its blocking chain, and the shared metrics registry
//      (kernel + OS gauges, analytics counters/histograms, fault counters)
//      is exported as Prometheus text (--prom) and JSON (--json).
//      ci/check_prom.sh validates that export.
//
// Usage: slm-report [--frames N] [--prom FILE] [--json FILE] [--spans FILE]
//                   [--perfetto FILE] [--quiet]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "arch/arch.hpp"
#include "arch/fig3.hpp"
#include "fault/fault.hpp"
#include "obs/analytics.hpp"
#include "obs/binary_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "soak/soak.hpp"
#include "sys/sweep.hpp"
#include "trace/trace.hpp"
#include "vocoder/models.hpp"
#include "vocoder/system.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

bool g_quiet = false;

void heading(const char* text) {
    if (!g_quiet) {
        std::printf("\n==== %s ====\n\n", text);
    }
}

void print_task_timing(const obs::RtosAnalytics& analytics,
                       const std::vector<std::string>& tasks) {
    if (g_quiet) {
        return;
    }
    std::printf("%-14s %6s %12s %12s %12s %12s\n", "task", "jobs", "lat p50",
                "lat max", "resp mean", "resp max");
    for (const std::string& name : tasks) {
        const obs::Histogram* lat = analytics.latency_histogram(name);
        const obs::Histogram* resp = analytics.response_histogram(name);
        if (lat == nullptr) {
            continue;
        }
        const auto us = [](double ns) { return ns / 1000.0; };
        std::printf("%-14s %6llu %9.1f us %9.1f us", name.c_str(),
                    static_cast<unsigned long long>(resp ? resp->count() : 0),
                    us(lat->quantile(0.5)), us(lat->max()));
        if (resp != nullptr && resp->count() > 0) {
            std::printf(" %9.1f us %9.1f us", us(resp->mean()), us(resp->max()));
        }
        std::printf("\n");
    }
}

void print_findings(const obs::RtosAnalytics& analytics) {
    if (g_quiet) {
        return;
    }
    if (analytics.findings().empty()) {
        std::printf("no unbounded priority-inversion windows detected\n");
        return;
    }
    for (const obs::InversionFinding& f : analytics.findings()) {
        std::printf(
            "INVERSION %s..%s: %s blocked on %s (holder %s) while %s ran; chain:",
            f.start.to_string().c_str(), f.end.to_string().c_str(),
            f.blocked.c_str(), f.resource.c_str(), f.holder.c_str(),
            f.intervener.c_str());
        for (const std::string& c : f.chain) {
            std::printf(" %s", c.c_str());
        }
        std::printf("\n");
    }
}

void section_fig8() {
    heading("Fig. 8: architecture model (binary trace sink + online analytics)");
    obs::BinaryTraceSink bin;
    obs::Registry reg;
    std::unique_ptr<obs::RtosAnalytics> analytics;
    const arch::Fig3Result res = arch::run_fig3_architecture(
        &bin, {}, {}, [&](rtos::OsCore& os) {
            analytics = std::make_unique<obs::RtosAnalytics>(os, reg);
        });
    const trace::TraceRecorder rec = bin.to_recorder();
    if (!g_quiet) {
        std::printf("%s\n",
                    rec.render_gantt(SimTime::zero(), 160_us, 72).c_str());
        std::printf("%s\n",
                    rec.utilization_report(SimTime::zero(), 160_us).c_str());
        std::printf("binary records: %zu (interned strings: %zu)\n\n",
                    bin.size(), bin.string_count());
    }
    print_task_timing(*analytics, {"task_b2", "task_b3", "task_pe"});
    if (!g_quiet) {
        std::printf("\nB2 done %s, B3 done %s, %llu context switches\n",
                    res.b2_done.to_string().c_str(), res.b3_done.to_string().c_str(),
                    static_cast<unsigned long long>(res.context_switches));
    }
}

void section_vocoder(std::size_t frames) {
    heading("Vocoder: architecture model");
    obs::BinaryTraceSink bin;
    obs::Registry reg;
    std::unique_ptr<obs::RtosAnalytics> analytics;
    vocoder::VocoderConfig cfg;
    cfg.frames = frames;
    cfg.tracer = &bin;
    cfg.on_os = [&](rtos::OsCore& os) {
        analytics = std::make_unique<obs::RtosAnalytics>(os, reg);
    };
    const vocoder::VocoderResult res = vocoder::run_vocoder_architecture(cfg);
    print_task_timing(*analytics, {"driver", "encoder", "decoder"});
    if (!g_quiet) {
        const trace::TraceRecorder rec = bin.to_recorder();
        std::printf("\n%s\n",
                    rec.render_gantt(SimTime::zero(), res.sim_duration, 72).c_str());
        std::printf("%zu frames, %llu context switches, avg delay %s, data %s\n",
                    res.frames,
                    static_cast<unsigned long long>(res.context_switches),
                    res.avg_transcoding_delay.to_string().c_str(),
                    res.data_ok ? "ok" : "CORRUPT");
    }
}

void section_mapping_sweep(std::size_t frames) {
    heading("Vocoder mapping sweep (heterogeneous ARM+DSP platform)");
    vocoder::VocoderConfig cfg;
    cfg.frames = frames;
    const sys::AppSpec app = vocoder::vocoder_app_spec(cfg.frames);
    const sys::PlatformSpec platform = vocoder::vocoder_sweep_platform(cfg);
    const std::vector<sys::MappingSpec> candidates =
        sys::enumerate_mappings(app, platform, vocoder::vocoder_enum_options());
    sys::SweepConfig scfg;
    scfg.options.base_rtos = cfg.rtos;
    scfg.attribute = true;  // every candidate annotated with its bottleneck
    const sys::SweepResult result = sys::run_sweep(app, platform, candidates, scfg,
                                                   vocoder::vocoder_setup(cfg));
    if (g_quiet) {
        return;
    }
    const std::vector<std::size_t> ranking = result.ranking();
    std::printf("%-4s %-42s %6s %12s %12s %10s %-10s\n", "rank", "mapping", "misses",
                "lat p95", "lat max", "bus busy", "bottleneck");
    for (std::size_t r = 0; r < ranking.size(); ++r) {
        const sys::CandidateResult& c = result.candidates[ranking[r]];
        SimTime bus_busy;
        for (const sys::BusMetrics& b : c.metrics.buses) {
            bus_busy += b.busy;
        }
        std::printf("%-4zu %-42s %6llu %12s %12s %10s %-10s\n", r + 1,
                    c.mapping.summary().c_str(),
                    static_cast<unsigned long long>(c.metrics.task_deadline_misses +
                                                    c.metrics.latency_misses),
                    c.metrics.latency_p95.to_string().c_str(),
                    c.metrics.latency_max.to_string().c_str(),
                    bus_busy.to_string().c_str(),
                    c.attribution.valid ? obs::to_string(c.attribution.bottleneck())
                                        : "-");
    }
    const sys::CandidateResult& best = result.candidates[ranking.front()];
    std::printf("\nbest mapping: %s (%s)", best.mapping.name.c_str(),
                best.mapping.summary().c_str());
    if (best.attribution.valid) {
        std::printf(" — worst frame %llu ns, critical path dominated by %s",
                    static_cast<unsigned long long>(best.attribution.total_ns),
                    obs::to_string(best.attribution.bottleneck()));
    }
    std::printf("\n");
}

/// Section 5: the two-PE vocoder under span tracing — per-frame critical
/// paths (exactness checked), slm_span_* gauges, optional exports.
int section_spans(obs::Registry& reg, std::size_t frames, const std::string& spans_path,
                  const std::string& perfetto_path) {
    heading("Token span tracing (two-PE vocoder, critical-path attribution)");
    vocoder::VocoderConfig cfg;
    cfg.frames = frames;
    obs::SpanRecorder rec;
    {
        sys::SystemOptions opts;
        opts.base_rtos = cfg.rtos;
        opts.spans = &rec;
        sys::System system{vocoder::vocoder_app_spec(cfg.frames),
                           vocoder::vocoder_two_pe_platform(cfg),
                           vocoder::vocoder_split_mapping(), opts};
        (void)vocoder::attach_vocoder_behaviors(system, cfg);
        system.run();
    }
    const std::vector<obs::CriticalPath> paths = obs::extract_critical_paths(rec);
    bool all_exact = true;
    for (const obs::CriticalPath& cp : paths) {
        all_exact = all_exact && cp.exact();
    }
    if (!g_quiet) {
        std::printf("%zu spans over %zu frames; critical-path sums %s\n", rec.size(),
                    paths.size(), all_exact ? "exact" : "INEXACT");
        const obs::CriticalPath worst = obs::worst_critical_path(rec);
        if (worst.valid) {
            std::printf("worst frame %llu: %llu ns end-to-end, %zu hops\n",
                        static_cast<unsigned long long>(worst.token_id),
                        static_cast<unsigned long long>(worst.total_ns), worst.hops);
            for (std::size_t c = 0; c < obs::kPathCategoryCount; ++c) {
                if (worst.by_category[c] != 0) {
                    std::printf("    %-8s %9llu ns\n",
                                obs::to_string(static_cast<obs::PathCategory>(c)),
                                static_cast<unsigned long long>(worst.by_category[c]));
                }
            }
        }
    }
    obs::register_span_stats(reg, rec);
    // Export requests against an empty recorder are configuration errors —
    // fail loudly rather than writing a vacuous file.
    if ((!spans_path.empty() || !perfetto_path.empty()) && rec.size() == 0) {
        std::fprintf(stderr,
                     "slm-report: no spans recorded; --spans/--perfetto need a "
                     "traced run (frames > 0)\n");
        return 1;
    }
    if (!spans_path.empty()) {
        std::ofstream out{spans_path};
        obs::write_span_json(out, rec);
        if (!out.good()) {
            std::fprintf(stderr, "slm-report: cannot write %s\n", spans_path.c_str());
            return 1;
        }
        if (!g_quiet) {
            std::printf("wrote span dump to %s\n", spans_path.c_str());
        }
    }
    if (!perfetto_path.empty()) {
        std::ofstream out{perfetto_path};
        obs::write_perfetto_json(out, rec);
        if (!out.good()) {
            std::fprintf(stderr, "slm-report: cannot write %s\n",
                         perfetto_path.c_str());
            return 1;
        }
        if (!g_quiet) {
            std::printf("wrote Chrome trace-event JSON to %s\n", perfetto_path.c_str());
        }
    }
    return all_exact ? 0 : 1;
}

void section_faults(obs::Registry& reg) {
    heading("Fault injection & recovery (deterministic plan, seed 7)");
    std::string err;
    const std::optional<fault::FaultPlan> plan = fault::FaultPlan::parse(
        "seed 7\n"
        "exec_scale worker factor=2.0 after=20ms until=60ms\n"
        "crash logger at=15ms\n",
        &err);
    if (!plan) {
        std::fprintf(stderr, "fault plan: %s\n", err.c_str());
        return;
    }
    fault::FaultInjector inj(*plan);

    sim::Kernel kernel;
    rtos::RtosConfig cfg;
    cfg.default_miss_policy = rtos::MissPolicy::SkipJob;
    arch::ProcessingElement pe{kernel, "FPE", cfg};
    inj.attach(pe.os());

    // A periodic worker that misses deadlines inside the overrun window and
    // sheds the backlog via SkipJob.
    rtos::Task* worker = pe.add_periodic_task(
        "worker", 1, 10_ms, 6_ms, [&] { pe.os().time_wait(6_ms); }, 10, 10_ms);

    // A watchdog-protected background job: the plan crashes it at 15 ms and
    // the 12 ms watchdog (kicked every 5 ms while running) restarts it. The
    // watchdog also trips while the overrunning worker starves the logger —
    // every fire shows up in the recovery counters below.
    rtos::TaskParams logger_params;
    logger_params.name = "logger";
    logger_params.priority = 5;
    rtos::Task* logger = pe.os().task_create(std::move(logger_params));
    pe.os().task_set_body(logger, [&] {
        for (int i = 0; i < 8; ++i) {
            pe.os().time_wait(5_ms);
            pe.os().watchdog_kick(logger);
        }
    });
    pe.os().task_start(logger);
    pe.os().watchdog_arm(logger, 12_ms, rtos::MissPolicy::Restart);

    pe.start();
    kernel.run_until(milliseconds(200));

    const fault::FaultStats& fs = inj.stats();
    const rtos::RtosStats& os_stats = pe.os().stats();
    // Plain gauges (final values) — the injector and OS die with this scope,
    // so callback sources would dangle by export time in section_inversion.
    const obs::Labels seed_label{{"seed", std::to_string(inj.seed())}};
    const auto set = [&](const char* name, const char* help, double v) {
        reg.gauge(name, help, seed_label).set(v);
    };
    set("slm_fault_injected_total", "Faults injected by the demo plan", double(fs.total()));
    set("slm_fault_exec_scaled_total", "Execution-scale faults fired", double(fs.exec_scaled));
    set("slm_fault_crashes_injected_total", "Crash faults fired", double(fs.crashes_injected));
    set("slm_fault_recovery_deadline_misses", "Deadline misses under fault",
        double(os_stats.deadline_misses));
    set("slm_fault_recovery_jobs_skipped", "Jobs shed by MissPolicy::SkipJob",
        double(os_stats.jobs_skipped));
    set("slm_fault_recovery_crashes", "Task crashes observed", double(os_stats.crashes));
    set("slm_fault_recovery_watchdog_fires", "Watchdog expirations",
        double(os_stats.watchdog_fires));
    set("slm_fault_recovery_restarts", "Task restarts performed", double(os_stats.restarts));

    if (!g_quiet) {
        std::printf("plan: worker 2x overrun in [20ms,60ms), logger crash at 15ms\n");
        std::printf("injected: %llu (%llu exec-scale, %llu crash)\n",
                    static_cast<unsigned long long>(fs.total()),
                    static_cast<unsigned long long>(fs.exec_scaled),
                    static_cast<unsigned long long>(fs.crashes_injected));
        std::printf(
            "worker: %llu completions, %llu misses, %llu jobs skipped (SkipJob)\n",
            static_cast<unsigned long long>(worker->stats().completions),
            static_cast<unsigned long long>(worker->stats().deadline_misses),
            static_cast<unsigned long long>(worker->stats().jobs_skipped));
        std::printf("logger: %llu crash -> %llu watchdog fire -> %llu restart; "
                    "completions %llu\n",
                    static_cast<unsigned long long>(os_stats.crashes),
                    static_cast<unsigned long long>(os_stats.watchdog_fires),
                    static_cast<unsigned long long>(logger->stats().restarts),
                    static_cast<unsigned long long>(logger->stats().completions));
    }
}

void section_soak(obs::Registry& reg) {
    heading("Randomized soak sample (seeded scenarios, invariants + RTA oracle)");
    soak::SoakConfig cfg;
    cfg.scenarios = 8;
    cfg.gen.jobs_target = 150;
    const soak::SoakResult res = soak::run_soak(cfg);
    soak::register_soak_stats(reg, res);
    if (!g_quiet) {
        std::printf("%zu scenarios (seeds %llu..%llu): %llu jobs, %llu violations, "
                    "%llu suspicious\n",
                    res.verdicts.size(),
                    static_cast<unsigned long long>(cfg.first_seed),
                    static_cast<unsigned long long>(cfg.first_seed + cfg.scenarios - 1),
                    static_cast<unsigned long long>(res.total_jobs()),
                    static_cast<unsigned long long>(res.total_violations()),
                    static_cast<unsigned long long>(res.total_suspicious()));
        std::printf("oracle: %llu checked, %llu RTA-schedulable — every schedulable "
                    "set met its response bound in simulation\n",
                    static_cast<unsigned long long>(res.oracle_checked()),
                    static_cast<unsigned long long>(res.rta_schedulable_count()));
        for (const soak::ScenarioVerdict& v : res.verdicts) {
            if (v.failed()) {
                std::printf("FAIL %s: %s\n", v.name.c_str(),
                            v.violations.front().c_str());
            }
        }
    }
}

void section_inversion(obs::Registry& reg, const std::string& prom_path,
                       const std::string& json_path) {
    heading("Priority-inversion demo (Protocol::None mutex)");
    sim::Kernel kernel;
    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    cfg.policy = rtos::SchedPolicy::Priority;
    // Chop delays so preemption lands inside low's critical section — with
    // the default one-chunk granularity low would never be preempted while
    // holding the lock and no inversion could occur (paper §4.3).
    cfg.preemption_granularity = 5_us;
    rtos::RtosModel os{kernel, cfg};
    obs::RtosAnalytics analytics{os, reg};
    os.init();

    rtos::OsMutex bus{os, rtos::OsMutex::Protocol::None, "shared_bus"};

    rtos::Task* low = os.task_create("low", rtos::TaskType::Aperiodic, {}, {}, 30);
    rtos::Task* mid = os.task_create("mid", rtos::TaskType::Aperiodic, {}, {}, 20);
    rtos::Task* high = os.task_create("high", rtos::TaskType::Aperiodic, {}, {}, 10);

    kernel.spawn("low", [&] {
        os.task_activate(low);
        bus.lock();
        os.time_wait(100_us);  // long critical section
        bus.unlock();
        os.task_terminate();
    });
    kernel.spawn("mid", [&] {
        os.task_activate(mid);
        os.task_delay(10_us);   // arrive after low has the lock
        os.time_wait(200_us);   // pure computation: starves low -> starves high
        os.task_terminate();
    });
    kernel.spawn("high", [&] {
        os.task_activate(high);
        os.task_delay(20_us);
        bus.lock();  // blocks on low; mid keeps running -> unbounded inversion
        os.time_wait(10_us);
        bus.unlock();
        os.task_terminate();
    });

    os.start();
    kernel.run();

    print_findings(analytics);

    // Export the full registry while every referenced object is still alive:
    // kernel + OS gauges read the live stats structs at write time.
    obs::register_kernel_stats(reg, kernel);
    obs::register_os_stats(reg, os);
    if (!prom_path.empty()) {
        std::ofstream out{prom_path};
        reg.write_prometheus(out);
        if (!g_quiet) {
            std::printf("wrote Prometheus metrics to %s\n", prom_path.c_str());
        }
    }
    if (!json_path.empty()) {
        std::ofstream out{json_path};
        reg.write_json(out);
        if (!g_quiet) {
            std::printf("wrote JSON metrics to %s\n", json_path.c_str());
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t frames = 10;
    std::string prom_path;
    std::string json_path;
    std::string spans_path;
    std::string perfetto_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
            frames = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
            prom_path = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--spans") == 0 && i + 1 < argc) {
            spans_path = argv[++i];
        } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
            perfetto_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            g_quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: slm-report [--frames N] [--prom FILE] "
                         "[--json FILE] [--spans FILE] [--perfetto FILE] "
                         "[--quiet]\n");
            return 2;
        }
    }
    obs::Registry reg;  // shared by the span + fault + inversion sections
    section_fig8();
    section_vocoder(frames);
    section_mapping_sweep(frames);
    const int spans_rc = section_spans(reg, frames, spans_path, perfetto_path);
    if (spans_rc != 0) {
        return spans_rc;
    }
    section_faults(reg);
    section_soak(reg);
    section_inversion(reg, prom_path, json_path);
    return 0;
}
