// slm-report: a full observability run report from the unified obs layer.
//
// Three sections, each exercising a different part of src/obs/:
//
//   1. Fig. 8 architecture model — recorded through the hot-path
//      obs::BinaryTraceSink, converted losslessly to a TraceRecorder for the
//      Gantt chart and utilization table; online per-task analytics
//      (scheduling latency, response times) from an obs::RtosAnalytics
//      observer, no trace walk.
//   2. Vocoder architecture model — same instrumentation on a bigger model.
//   3. Priority-inversion demo — three tasks sharing a Protocol::None mutex;
//      the analytics inversion detector reports the unbounded-inversion
//      window with its blocking chain, and the full metrics registry
//      (kernel + OS gauges, analytics counters/histograms) is exported as
//      Prometheus text (--prom) and JSON (--json). ci/check_prom.sh
//      validates that export.
//
// Usage: slm-report [--frames N] [--prom FILE] [--json FILE] [--quiet]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "arch/fig3.hpp"
#include "obs/analytics.hpp"
#include "obs/binary_trace.hpp"
#include "obs/metrics.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"
#include "vocoder/models.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

bool g_quiet = false;

void heading(const char* text) {
    if (!g_quiet) {
        std::printf("\n==== %s ====\n\n", text);
    }
}

void print_task_timing(const obs::RtosAnalytics& analytics,
                       const std::vector<std::string>& tasks) {
    if (g_quiet) {
        return;
    }
    std::printf("%-14s %6s %12s %12s %12s %12s\n", "task", "jobs", "lat p50",
                "lat max", "resp mean", "resp max");
    for (const std::string& name : tasks) {
        const obs::Histogram* lat = analytics.latency_histogram(name);
        const obs::Histogram* resp = analytics.response_histogram(name);
        if (lat == nullptr) {
            continue;
        }
        const auto us = [](double ns) { return ns / 1000.0; };
        std::printf("%-14s %6llu %9.1f us %9.1f us", name.c_str(),
                    static_cast<unsigned long long>(resp ? resp->count() : 0),
                    us(lat->quantile(0.5)), us(lat->max()));
        if (resp != nullptr && resp->count() > 0) {
            std::printf(" %9.1f us %9.1f us", us(resp->mean()), us(resp->max()));
        }
        std::printf("\n");
    }
}

void print_findings(const obs::RtosAnalytics& analytics) {
    if (g_quiet) {
        return;
    }
    if (analytics.findings().empty()) {
        std::printf("no unbounded priority-inversion windows detected\n");
        return;
    }
    for (const obs::InversionFinding& f : analytics.findings()) {
        std::printf(
            "INVERSION %s..%s: %s blocked on %s (holder %s) while %s ran; chain:",
            f.start.to_string().c_str(), f.end.to_string().c_str(),
            f.blocked.c_str(), f.resource.c_str(), f.holder.c_str(),
            f.intervener.c_str());
        for (const std::string& c : f.chain) {
            std::printf(" %s", c.c_str());
        }
        std::printf("\n");
    }
}

void section_fig8() {
    heading("Fig. 8: architecture model (binary trace sink + online analytics)");
    obs::BinaryTraceSink bin;
    obs::Registry reg;
    std::unique_ptr<obs::RtosAnalytics> analytics;
    const arch::Fig3Result res = arch::run_fig3_architecture(
        &bin, {}, {}, [&](rtos::OsCore& os) {
            analytics = std::make_unique<obs::RtosAnalytics>(os, reg);
        });
    const trace::TraceRecorder rec = bin.to_recorder();
    if (!g_quiet) {
        std::printf("%s\n",
                    rec.render_gantt(SimTime::zero(), 160_us, 72).c_str());
        std::printf("%s\n",
                    rec.utilization_report(SimTime::zero(), 160_us).c_str());
        std::printf("binary records: %zu (interned strings: %zu)\n\n",
                    bin.size(), bin.string_count());
    }
    print_task_timing(*analytics, {"task_b2", "task_b3", "task_pe"});
    if (!g_quiet) {
        std::printf("\nB2 done %s, B3 done %s, %llu context switches\n",
                    res.b2_done.to_string().c_str(), res.b3_done.to_string().c_str(),
                    static_cast<unsigned long long>(res.context_switches));
    }
}

void section_vocoder(std::size_t frames) {
    heading("Vocoder: architecture model");
    obs::BinaryTraceSink bin;
    obs::Registry reg;
    std::unique_ptr<obs::RtosAnalytics> analytics;
    vocoder::VocoderConfig cfg;
    cfg.frames = frames;
    cfg.tracer = &bin;
    cfg.on_os = [&](rtos::OsCore& os) {
        analytics = std::make_unique<obs::RtosAnalytics>(os, reg);
    };
    const vocoder::VocoderResult res = vocoder::run_vocoder_architecture(cfg);
    print_task_timing(*analytics, {"driver", "encoder", "decoder"});
    if (!g_quiet) {
        const trace::TraceRecorder rec = bin.to_recorder();
        std::printf("\n%s\n",
                    rec.render_gantt(SimTime::zero(), res.sim_duration, 72).c_str());
        std::printf("%zu frames, %llu context switches, avg delay %s, data %s\n",
                    res.frames,
                    static_cast<unsigned long long>(res.context_switches),
                    res.avg_transcoding_delay.to_string().c_str(),
                    res.data_ok ? "ok" : "CORRUPT");
    }
}

void section_inversion(const std::string& prom_path, const std::string& json_path) {
    heading("Priority-inversion demo (Protocol::None mutex)");
    sim::Kernel kernel;
    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    cfg.policy = rtos::SchedPolicy::Priority;
    // Chop delays so preemption lands inside low's critical section — with
    // the default one-chunk granularity low would never be preempted while
    // holding the lock and no inversion could occur (paper §4.3).
    cfg.preemption_granularity = 5_us;
    rtos::RtosModel os{kernel, cfg};
    obs::Registry reg;
    obs::RtosAnalytics analytics{os, reg};
    os.init();

    rtos::OsMutex bus{os, rtos::OsMutex::Protocol::None, "shared_bus"};

    rtos::Task* low = os.task_create("low", rtos::TaskType::Aperiodic, {}, {}, 30);
    rtos::Task* mid = os.task_create("mid", rtos::TaskType::Aperiodic, {}, {}, 20);
    rtos::Task* high = os.task_create("high", rtos::TaskType::Aperiodic, {}, {}, 10);

    kernel.spawn("low", [&] {
        os.task_activate(low);
        bus.lock();
        os.time_wait(100_us);  // long critical section
        bus.unlock();
        os.task_terminate();
    });
    kernel.spawn("mid", [&] {
        os.task_activate(mid);
        os.task_delay(10_us);   // arrive after low has the lock
        os.time_wait(200_us);   // pure computation: starves low -> starves high
        os.task_terminate();
    });
    kernel.spawn("high", [&] {
        os.task_activate(high);
        os.task_delay(20_us);
        bus.lock();  // blocks on low; mid keeps running -> unbounded inversion
        os.time_wait(10_us);
        bus.unlock();
        os.task_terminate();
    });

    os.start();
    kernel.run();

    print_findings(analytics);

    // Export the full registry while every referenced object is still alive:
    // kernel + OS gauges read the live stats structs at write time.
    obs::register_kernel_stats(reg, kernel);
    obs::register_os_stats(reg, os);
    if (!prom_path.empty()) {
        std::ofstream out{prom_path};
        reg.write_prometheus(out);
        if (!g_quiet) {
            std::printf("wrote Prometheus metrics to %s\n", prom_path.c_str());
        }
    }
    if (!json_path.empty()) {
        std::ofstream out{json_path};
        reg.write_json(out);
        if (!g_quiet) {
            std::printf("wrote JSON metrics to %s\n", json_path.c_str());
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t frames = 10;
    std::string prom_path;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
            frames = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
            prom_path = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            g_quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: slm-report [--frames N] [--prom FILE] "
                         "[--json FILE] [--quiet]\n");
            return 2;
        }
    }
    section_fig8();
    section_vocoder(frames);
    section_inversion(prom_path, json_path);
    return 0;
}
