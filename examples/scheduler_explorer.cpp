// Design-space exploration with the RTOS model (the paper's §3 use case):
// evaluate one periodic task set under every scheduling policy and compare
// deadline misses and response times against response-time analysis.
//
// Build & run:  ./build/examples/scheduler_explorer

#include <cstdio>
#include <vector>

#include "analysis/analysis.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

struct TaskDef {
    const char* name;
    SimTime period;
    SimTime wcet;
    int priority;  // used by Priority/RoundRobin policies
};

constexpr SimTime kHorizon = 2100_ms;

void run_policy(rtos::SchedPolicy policy, const std::vector<TaskDef>& defs) {
    sim::Kernel k;
    rtos::RtosConfig cfg;
    cfg.policy = policy;
    cfg.quantum = 2_ms;
    cfg.preemption_granularity = 1_ms;
    rtos::RtosModel os{k, cfg};
    std::vector<rtos::Task*> tasks;
    for (const TaskDef& d : defs) {
        rtos::Task* t = os.task_create(d.name, rtos::TaskType::Periodic, d.period,
                                       d.wcet, d.priority);
        tasks.push_back(t);
        k.spawn(d.name, [&os, t, wcet = d.wcet] {
            os.task_activate(t);
            for (;;) {
                os.time_wait(wcet);
                os.task_endcycle();
            }
        });
    }
    os.start();
    (void)k.run_until(kHorizon);

    std::printf("%-11s", to_string(policy));
    std::uint64_t misses = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        std::printf("  %s max %-8s", defs[i].name,
                    tasks[i]->stats().max_response.to_string().c_str());
        misses += tasks[i]->stats().deadline_misses;
    }
    std::printf("  misses %llu, switches %llu\n",
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(os.stats().context_switches));
}

}  // namespace

int main() {
    const std::vector<TaskDef> defs = {
        {"T1", 100_ms, 20_ms, 0},
        {"T2", 150_ms, 30_ms, 1},
        {"T3", 350_ms, 80_ms, 2},
    };

    // Analytical expectations first.
    std::vector<analysis::PeriodicTaskSpec> specs;
    for (const TaskDef& d : defs) {
        analysis::PeriodicTaskSpec s;
        s.name = d.name;
        s.period = d.period;
        s.wcet = d.wcet;
        s.priority = d.priority;
        specs.push_back(s);
    }
    std::printf("task set utilization : %.3f (RMS bound for 3 tasks: %.3f)\n",
                analysis::utilization(specs), analysis::rms_utilization_bound(3));
    std::printf("RTA schedulable      : %s\n", analysis::rta_schedulable(specs) ? "yes" : "no");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto r = analysis::response_time(specs, i);
        std::printf("  RTA worst response %s: %s\n", specs[i].name.c_str(),
                    r ? r->to_string().c_str() : "exceeds deadline");
    }
    std::printf("\nsimulated over one hyperperiod (%s):\n", kHorizon.to_string().c_str());

    for (const auto policy :
         {rtos::SchedPolicy::Priority, rtos::SchedPolicy::Rms, rtos::SchedPolicy::Edf,
          rtos::SchedPolicy::RoundRobin, rtos::SchedPolicy::Fifo}) {
        run_policy(policy, defs);
    }
    std::printf("\nPriority/RMS/EDF meet every deadline (matching RTA); FIFO's\n"
                "non-preemptive runs show how the RTOS model exposes a bad policy\n"
                "choice before any implementation work is done.\n");
    return 0;
}
