// The automatic refinement tool (paper §5: "we have developed a tool that
// performs the refinement of unscheduled specification models into RTOS-based
// architecture models automatically"). Reads a mini-SpecC model from a file
// (or uses the embedded vocoder spec) and prints the refined source plus the
// changed-lines report.
//
// Usage:  ./build/examples/refine_tool [file.sc [task:NAME ...]] [--quiet]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "refine/refiner.hpp"
#include "refine/vocoder_spec.hpp"

using namespace slm::refine;

int main(int argc, char** argv) {
    std::string source{kVocoderSpec};
    RefineConfig cfg;
    bool quiet = false;
    bool default_spec = true;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strncmp(argv[i], "task:", 5) == 0) {
            cfg.tasks[argv[i] + 5] = TaskSpec{};
        } else if (std::strncmp(argv[i], "owner:", 6) == 0) {
            cfg.os_owner = argv[i] + 6;
        } else {
            std::ifstream in{argv[i]};
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", argv[i]);
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            source = ss.str();
            default_spec = false;
        }
    }
    if (default_spec && cfg.tasks.empty()) {
        cfg.os_owner = "DspPe";
        cfg.tasks["Coder"] = TaskSpec{"APERIODIC", 0, 650000};
        cfg.tasks["Decoder"] = TaskSpec{"APERIODIC", 0, 320000};
        cfg.tasks["BusDriver"] = TaskSpec{"APERIODIC", 0, 60000};
    }

    const RefineResult r = Refiner{cfg}.refine(source);
    if (!r.ok()) {
        for (const std::string& e : r.errors) {
            std::fprintf(stderr, "error: %s\n", e.c_str());
        }
        return 1;
    }

    if (!quiet) {
        std::printf("%s\n", r.output.c_str());
    }
    std::printf("// ---- refinement report ----\n");
    std::printf("// model lines   : %d\n", r.report.lines_total);
    std::printf("// lines changed : %d\n", r.report.lines_changed);
    std::printf("// lines added   : %d\n", r.report.lines_added);
    std::printf("// touched       : %d (%.2f%% of model)\n", r.report.lines_touched(),
                r.report.percent_touched());
    std::printf("// edits applied : %zu\n", r.report.edit_count);
    return 0;
}
