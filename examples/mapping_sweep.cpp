// Mapping design-space sweep over the vocoder on a heterogeneous platform
// (slow ARM + fast DSP): enumerate every task->PE assignment, simulate each
// candidate with the real codec behaviors, and rank them by deadline misses
// and latency. The sweep is deterministic at any --jobs count — the canonical
// JSON (--dump) is byte-identical serial vs parallel, which ci/check_sweep.sh
// enforces. See docs/system-mapping.md for the flow.
//
// --spans additionally runs the sweep with critical-path attribution (every
// candidate annotated with its worst latency sample's exact per-category
// breakdown and bottleneck) and, with --replay-winner, appends the winner
// replay's full span dump — all still byte-identical at any --jobs, which
// ci/check_spans.sh enforces.
//
// Build & run:  ./build/examples/mapping_sweep --frames 6
//               ./build/examples/mapping_sweep --frames 6 --jobs 8 --dump out.json
//               ./build/examples/mapping_sweep --spans --replay-winner

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/span.hpp"
#include "sys/sweep.hpp"
#include "vocoder/system.hpp"

using namespace slm;

int main(int argc, char** argv) {
    std::size_t frames = 6;
    unsigned jobs = 1;
    const char* dump_path = nullptr;
    bool replay_winner = false;
    bool spans = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
            frames = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
            dump_path = argv[++i];
        } else if (std::strcmp(argv[i], "--replay-winner") == 0) {
            replay_winner = true;
        } else if (std::strcmp(argv[i], "--spans") == 0) {
            spans = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: mapping_sweep [--frames N] [--jobs N] [--dump FILE]"
                         " [--replay-winner] [--spans] [--quiet]\n");
            return 2;
        }
    }
    quiet = quiet || dump_path != nullptr;

    vocoder::VocoderConfig cfg;
    cfg.frames = frames;

    const sys::AppSpec app = vocoder::vocoder_app_spec(cfg.frames);
    const sys::PlatformSpec platform = vocoder::vocoder_sweep_platform(cfg);
    const std::vector<sys::MappingSpec> candidates =
        sys::enumerate_mappings(app, platform, vocoder::vocoder_enum_options());

    sys::SweepConfig scfg;
    scfg.jobs = jobs;
    scfg.options.base_rtos = cfg.rtos;
    scfg.attribute = spans;
    parallel::ParallelStats stats;
    const sys::SweepResult result =
        sys::run_sweep(app, platform, candidates, scfg, vocoder::vocoder_setup(cfg),
                       &stats);
    const std::vector<std::size_t> ranking = result.ranking();

    if (!quiet) {
        std::printf("%zu candidates, %zu frames, %llu workers\n\n", candidates.size(),
                    frames, static_cast<unsigned long long>(stats.workers));
        std::printf("%-4s %-6s %-40s %8s %10s %10s %-10s\n", "rank", "name", "mapping",
                    "misses", "p95", "max", spans ? "bottleneck" : "");
        for (std::size_t r = 0; r < ranking.size(); ++r) {
            const sys::CandidateResult& c = result.candidates[ranking[r]];
            std::printf("%-4zu %-6s %-40s %8llu %10s %10s %-10s\n", r + 1,
                        c.mapping.name.c_str(), c.mapping.summary().c_str(),
                        static_cast<unsigned long long>(
                            c.metrics.task_deadline_misses + c.metrics.latency_misses),
                        c.metrics.latency_p95.to_string().c_str(),
                        c.metrics.latency_max.to_string().c_str(),
                        c.attribution.valid ? obs::to_string(c.attribution.bottleneck())
                                            : "");
        }
    }

    std::ostringstream out;
    sys::write_sweep_json(out, result);

    // Replaying the winning mapping re-elaborates it from its spec alone and
    // must reproduce the sweep's metrics exactly — appended to the dump so the
    // CI byte-compare covers replay determinism too.
    if (replay_winner && !ranking.empty()) {
        const sys::MappingSpec& winner = result.candidates[ranking.front()].mapping;
        obs::SpanRecorder rec;
        sys::SystemOptions opts;
        opts.base_rtos = cfg.rtos;
        if (spans) {
            opts.spans = &rec;
        }
        const sys::SystemMetrics m = [&] {
            // Scope the System so its teardown closes every open span before
            // the dump — the replay dump must show a fully closed stream.
            sys::System system{app, platform, winner, opts};
            (void)vocoder::attach_vocoder_behaviors(system, cfg);
            system.run();
            return system.metrics();
        }();
        out << "{\"schema\":\"slm-sweep-replay-v1\",\"winner\":\"" << winner.name
            << "\",\"sim_ns\":" << m.sim_duration.ns()
            << ",\"jobs_completed\":" << m.jobs_completed
            << ",\"task_deadline_misses\":" << m.task_deadline_misses
            << ",\"latency_misses\":" << m.latency_misses
            << ",\"latency_max_ns\":" << m.latency_max.ns() << "}\n";
        if (spans) {
            obs::write_span_json(out, rec);
        }
        if (!quiet) {
            std::printf("\nreplayed winner %s: sim %s, %llu misses, max latency %s\n",
                        winner.name.c_str(), m.sim_duration.to_string().c_str(),
                        static_cast<unsigned long long>(m.task_deadline_misses +
                                                        m.latency_misses),
                        m.latency_max.to_string().c_str());
        }
    }

    if (dump_path != nullptr) {
        std::ofstream f{dump_path};
        f << out.str();
        return f.good() ? 0 : 1;
    }
    if (!quiet) {
        std::printf("\n%s", out.str().c_str());
    }
    return 0;
}
