// Quickstart: model three prioritized tasks on one abstract RTOS instance,
// exactly the refinement pattern of the paper (task_activate / body /
// task_terminate, time_wait for delays, RTOS events for synchronization).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

int main() {
    sim::Kernel kernel;
    trace::TraceRecorder trace;

    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    cfg.policy = rtos::SchedPolicy::Priority;
    cfg.tracer = &trace;
    rtos::RtosModel os{kernel, cfg};
    os.init();

    rtos::OsQueue<int> queue{os, 1, "work"};

    // A producer task (priority 2) and a consumer task (priority 1 = higher).
    rtos::Task* producer = os.task_create("producer", rtos::TaskType::Aperiodic,
                                          {}, {}, /*priority=*/2);
    rtos::Task* consumer = os.task_create("consumer", rtos::TaskType::Aperiodic,
                                          {}, {}, /*priority=*/1);
    rtos::Task* logger = os.task_create("logger", rtos::TaskType::Periodic,
                                        milliseconds(5), microseconds(200),
                                        /*priority=*/0);

    kernel.spawn("producer", [&] {
        os.task_activate(producer);
        for (int i = 0; i < 4; ++i) {
            os.time_wait(3_ms);  // model 3 ms of computation
            queue.send(i);       // wakes the higher-priority consumer
        }
        os.task_terminate();
    });

    kernel.spawn("consumer", [&] {
        os.task_activate(consumer);
        for (int i = 0; i < 4; ++i) {
            const int item = queue.receive();
            os.time_wait(1_ms);
            std::printf("[%8s] consumed item %d on %s\n",
                        kernel.now().to_string().c_str(), item,
                        os.config().cpu_name.c_str());
        }
        os.task_terminate();
    });

    kernel.spawn("logger", [&] {
        os.task_activate(logger);
        for (int i = 0; i < 3; ++i) {
            os.time_wait(200_us);  // periodic housekeeping
            os.task_endcycle();
        }
        os.task_terminate();
    });

    os.start();
    kernel.run();

    std::printf("\nsimulated time   : %s\n", kernel.now().to_string().c_str());
    std::printf("context switches : %llu\n",
                static_cast<unsigned long long>(os.stats().context_switches));
    std::printf("cpu busy time    : %s\n\n", os.busy_time().to_string().c_str());
    std::printf("%s\n", trace.render_gantt(SimTime::zero(), kernel.now(), 64).c_str());
    return 0;
}
