// SLM32 playground: assemble a program (from a file, or a built-in demo),
// run it on the instruction-set simulator, and print the disassembly, the
// final register file, and execution statistics. Handy for writing guest
// programs for the implementation model.
//
// Usage:  ./build/examples/iss_playground [program.s] [--max-cycles N]

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/isa.hpp"

using namespace slm::iss;

namespace {

constexpr const char* kDemo = R"(; demo: sum of squares 1..10, then integer sqrt by division loop
        ldi r1, 10
        ldi r2, 0
loop:
        mac r2, r1, r1
        addi r1, r1, -1
        bne r1, r0, loop
        ; r2 = 385; isqrt via Newton steps: x' = (x + n/x) / 2
        ldi r3, 100        ; initial guess
        ldi r5, 2
newton:
        div r4, r2, r3
        add r4, r4, r3
        div r4, r4, r5
        beq r4, r3, done
        mov r3, r4
        jmp newton
done:
        st r0, 0, r3       ; mem[0] = isqrt(385) = 19
        halt
)";

}  // namespace

int main(int argc, char** argv) {
    std::string source = kDemo;
    std::uint64_t max_cycles = 10'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-cycles") == 0 && i + 1 < argc) {
            max_cycles = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::ifstream in{argv[i]};
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", argv[i]);
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            source = ss.str();
        }
    }

    const AsmResult r = assemble(source);
    if (!r.ok()) {
        for (const AsmError& e : r.errors) {
            std::fprintf(stderr, "line %d: %s\n", e.line, e.message.c_str());
        }
        return 1;
    }

    std::printf("disassembly (%zu instructions):\n", r.program.code.size());
    for (std::size_t pc = 0; pc < r.program.code.size(); ++pc) {
        for (const auto& [label, addr] : r.program.labels) {
            if (addr == static_cast<std::int32_t>(pc)) {
                std::printf("%s:\n", label.c_str());
            }
        }
        std::printf("  %4zu: %-24s ; 0x%016llx\n", pc,
                    disassemble(r.program.code[pc]).c_str(),
                    static_cast<unsigned long long>(encode(r.program.code[pc])));
    }

    Cpu cpu{r.program.code, 4096};
    const RunResult res = cpu.run(max_cycles);

    std::printf("\nstopped: %s after %llu instructions, %llu cycles\n",
                res.trap == Trap::Halt    ? "halt"
                : res.trap == Trap::Sys   ? "sys"
                : res.trap == Trap::Fault ? cpu.fault_message().c_str()
                                          : "cycle budget",
                static_cast<unsigned long long>(cpu.retired()),
                static_cast<unsigned long long>(cpu.cycles()));
    std::printf("registers:\n");
    for (int i = 0; i < kNumRegs; i += 4) {
        std::printf("  r%-2d=%-11d r%-2d=%-11d r%-2d=%-11d r%-2d=%-11d\n", i,
                    cpu.reg(i), i + 1, cpu.reg(i + 1), i + 2, cpu.reg(i + 2), i + 3,
                    cpu.reg(i + 3));
    }
    std::printf("mem[0..3] = %d %d %d %d\n", cpu.load(0), cpu.load(1), cpu.load(2),
                cpu.load(3));
    return 0;
}
