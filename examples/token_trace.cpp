// Token-level causal span tracing on the two-PE vocoder (docs/span-tracing.md):
// elaborate the canonical driver+encoder | decoder split with an
// obs::SpanRecorder wired in, extract the critical path of every decoded
// frame, and print the exact per-category latency breakdown. The program
// exits nonzero unless, for EVERY token, the per-category segments sum to the
// observed end-to-end latency in integer nanoseconds — the no-estimation
// guarantee the span model is built around.
//
// Build & run:  ./build/examples/token_trace --frames 4
//               ./build/examples/token_trace --dump spans.jsonl
//               ./build/examples/token_trace --perfetto trace.json   # chrome://tracing
//
// --dump writes the canonical span dump (byte-identical across runs,
// ci/check_spans.sh); --perfetto writes Chrome trace-event JSON with per-PE
// tracks, per-task rows, and flow arrows following each frame across PEs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/span.hpp"
#include "vocoder/system.hpp"

using namespace slm;

int main(int argc, char** argv) {
    std::size_t frames = 4;
    const char* dump_path = nullptr;
    const char* perfetto_path = nullptr;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
            frames = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
            dump_path = argv[++i];
        } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
            perfetto_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: token_trace [--frames N] [--dump FILE]"
                         " [--perfetto FILE] [--quiet]\n");
            return 2;
        }
    }

    vocoder::VocoderConfig cfg;
    cfg.frames = frames;

    obs::SpanRecorder rec;
    std::shared_ptr<vocoder::VocoderSysOutcome> outcome;
    {
        // Scoped so core teardown closes every task-state span before export.
        sys::SystemOptions opts;
        opts.base_rtos = cfg.rtos;
        opts.spans = &rec;
        sys::System system{vocoder::vocoder_app_spec(cfg.frames),
                           vocoder::vocoder_two_pe_platform(cfg),
                           vocoder::vocoder_split_mapping(), opts};
        outcome = vocoder::attach_vocoder_behaviors(system, cfg);
        system.run();
    }

    const std::vector<obs::CriticalPath> paths = obs::extract_critical_paths(rec);
    if (!quiet) {
        std::printf("%zu spans (%zu strings, %zu open), %zu frames traced\n\n",
                    rec.size(), rec.string_count(), rec.open_count(), paths.size());
    }

    bool all_exact = !paths.empty();
    for (const obs::CriticalPath& cp : paths) {
        if (!cp.exact()) {
            all_exact = false;
        }
        if (quiet) {
            continue;
        }
        std::printf("frame %llu: %llu ns end-to-end, %zu hops, bottleneck %s%s\n",
                    static_cast<unsigned long long>(cp.token_id),
                    static_cast<unsigned long long>(cp.total_ns), cp.hops,
                    obs::to_string(cp.bottleneck()),
                    cp.exact() ? "" : "  [SEGMENTS DO NOT SUM]");
        for (std::size_t c = 0; c < obs::kPathCategoryCount; ++c) {
            if (cp.by_category[c] == 0) {
                continue;
            }
            std::printf("    %-8s %9llu ns  (%5.1f%%)\n",
                        obs::to_string(static_cast<obs::PathCategory>(c)),
                        static_cast<unsigned long long>(cp.by_category[c]),
                        100.0 * static_cast<double>(cp.by_category[c]) /
                            static_cast<double>(cp.total_ns));
        }
    }

    if (dump_path != nullptr) {
        std::ofstream f{dump_path};
        obs::write_span_json(f, rec);
        if (!f.good()) {
            return 1;
        }
        if (!quiet) {
            std::printf("\nwrote span dump to %s\n", dump_path);
        }
    }
    if (perfetto_path != nullptr) {
        std::ofstream f{perfetto_path};
        obs::write_perfetto_json(f, rec);
        if (!f.good()) {
            return 1;
        }
        if (!quiet) {
            std::printf("wrote Chrome trace-event JSON to %s\n", perfetto_path);
        }
    }

    if (!all_exact) {
        std::fprintf(stderr,
                     "FAIL: critical-path segments do not sum to the observed "
                     "latency for every token\n");
        return 1;
    }
    if (!outcome->data_ok) {
        std::fprintf(stderr, "FAIL: decoded audio corrupt\n");
        return 1;
    }
    if (!quiet) {
        std::printf("\nall %zu critical paths exact (sum == observed latency)\n",
                    paths.size());
    }
    return 0;
}
