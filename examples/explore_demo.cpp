// Schedule-space exploration demo: the default deterministic schedule hides a
// cross-acquisition deadlock between two equal-priority tasks that wake from
// task_delay() at the same instant. Bounded DFS over the kernel's tie-break
// choice points finds it within one divergence, replays it from the recorded
// decision trace, and proves the lock-order fix clean by exhausting the
// schedule space. See docs/schedule-exploration.md.
//
// Usage: explore_demo [--jobs N] [--dump FILE] [--replay TRACE]
//
//   --jobs N      run the explorations on the N-worker parallel engine
//                 (slm::parallel) instead of the serial one; results are
//                 byte-identical either way (docs/parallel-exploration.md)
//   --dump FILE   write the canonical result JSON of every exploration to
//                 FILE, one line each — the artifact ci/check_parallel.sh
//                 byte-compares across thread counts
//   --replay T    re-run one serialized decision trace ("len|i:c,...") on the
//                 crossed-lock model and report its outcome; malformed or
//                 ill-fitting traces get a structured "line N:" diagnostic in
//                 the same shape as fault-plan parse errors

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "explore/explore.hpp"
#include "parallel/parallel.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

// Two tasks, two mutexes. `ctrl` sleeps while holding m1 (the seeded hazard),
// `comms` wakes at the same instant. With crossed acquisition order the
// schedule where comms runs first after the simultaneous wakeup deadlocks;
// the default FIFO schedule (ctrl's timer was armed first) never hits it.
void build_crossed(explore::Run& run, bool fixed_lock_order) {
    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    cfg.tracer = &run.trace();
    auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
    os.init();
    auto& m1 = run.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m1");
    auto& m2 = run.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m2");

    rtos::Task* ctrl = os.task_create("ctrl", rtos::TaskType::Aperiodic, {}, {}, 1);
    rtos::Task* comms = os.task_create("comms", rtos::TaskType::Aperiodic, {}, {}, 1);

    run.kernel().spawn("ctrl", [&os, &m1, &m2, ctrl] {
        os.task_activate(ctrl);
        m1.lock();
        os.task_delay(1_ms);  // hold m1 across a sleep
        m2.lock();
        os.time_wait(100_us);
        m2.unlock();
        m1.unlock();
        os.task_terminate();
    });
    run.kernel().spawn("comms", [&os, &m1, &m2, comms, fixed_lock_order] {
        os.task_activate(comms);
        os.task_delay(1_ms);  // wakes in the same instant as ctrl
        rtos::OsMutex& first = fixed_lock_order ? m1 : m2;
        rtos::OsMutex& second = fixed_lock_order ? m2 : m1;
        first.lock();
        second.lock();
        os.time_wait(100_us);
        second.unlock();
        first.unlock();
        os.task_terminate();
    });
    os.start();
}

// Three equal-priority tasks with nothing but computation: a small space the
// explorer can cover completely.
void build_three_tasks(explore::Run& run) {
    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
    os.init();
    for (const char* name : {"t0", "t1", "t2"}) {
        rtos::Task* t = os.task_create(name, rtos::TaskType::Aperiodic, {}, {}, 1);
        run.kernel().spawn(name, [&os, t] {
            os.task_activate(t);
            os.time_wait(1_ms);
            os.task_terminate();
        });
    }
    os.start();
}

void print_result(const char* label, const explore::ExploreResult& res) {
    std::printf("%-22s paths=%llu  choice_points=%llu  pruned=%llu  "
                "max_depth=%llu  exhausted=%s  violations=%zu\n",
                label, static_cast<unsigned long long>(res.stats.paths),
                static_cast<unsigned long long>(res.stats.choice_points),
                static_cast<unsigned long long>(res.stats.pruned),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.exhausted ? "yes" : "no", res.violations.size());
}

}  // namespace

int main(int argc, char** argv) {
    unsigned jobs = 0;  // 0 = the serial engine
    std::string dump_path;
    std::string replay_arg;
    bool do_replay = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
            dump_path = argv[++i];
        } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
            replay_arg = argv[++i];
            do_replay = true;
        } else {
            std::fprintf(stderr, "usage: explore_demo [--jobs N] [--dump FILE] "
                                 "[--replay TRACE]\n");
            return 2;
        }
    }

    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;  // one divergence from the default schedule
    const explore::Explorer::BuildFn crossed_build = [](explore::Run& r) {
        build_crossed(r, /*fixed_lock_order=*/false);
    };

    // ---- 0. --replay: re-run one decision trace with full diagnostics -----
    if (do_replay) {
        explore::Explorer ex{crossed_build, cfg};
        const explore::Explorer::ReplayOutcome out = ex.replay_trace(replay_arg);
        if (!out.error.empty()) {
            // Same "line N: what went wrong" shape as fault::FaultPlan::parse
            // diagnostics, so scripted pipelines parse both with one pattern
            // (the trace argument is its own line 1).
            std::fprintf(stderr, "explore_demo: --replay: line 1: %s\n",
                         out.error.c_str());
            return out.result.has_value() ? 1 : 2;
        }
        const explore::PathResult& pr = *out.result;
        std::printf("replayed \"%s\": %zu violation(s), ended at %s\n",
                    pr.schedule.to_string().c_str(), pr.violations.size(),
                    pr.end_time.to_string().c_str());
        for (const explore::Violation& v : pr.violations) {
            std::printf("  %s: %s\n", to_string(v.kind), v.detail.c_str());
        }
        return 0;
    }

    // Run every exploration on the chosen engine; the results (and the
    // canonical JSON below) are byte-identical regardless of `jobs`.
    const auto run = [jobs](const explore::Explorer::BuildFn& build,
                            const explore::ExploreConfig& c) {
        if (jobs == 0) {
            return explore::Explorer{build, c}.explore();
        }
        parallel::ParallelConfig pc;
        pc.jobs = jobs;
        return parallel::explore(build, c, pc);
    };

    // ---- 1. Bounded DFS finds the seeded deadlock -------------------------
    explore::Explorer crossed{crossed_build, cfg};
    const auto res = run(crossed_build, cfg);
    print_result("crossed lock order:", res);
    if (res.violations.empty()) {
        std::printf("FAIL: expected a deadlock within the preemption bound\n");
        return 1;
    }
    const explore::Violation& v = res.violations.front();
    std::printf("  %s at %s on schedule \"%s\"\n    %s\n", to_string(v.kind),
                v.time.to_string().c_str(), v.schedule.to_string().c_str(),
                v.detail.c_str());

    // ---- 2. Replay the failing schedule from its decision trace -----------
    const auto replayed = crossed.replay(v.schedule);
    if (replayed.violations.empty()) {
        std::printf("FAIL: replay did not reproduce the deadlock\n");
        return 1;
    }
    std::printf("\nreplayed \"%s\" -> %s again; Gantt of the failing run:\n",
                v.schedule.to_string().c_str(),
                to_string(replayed.violations.front().kind));
    if (replayed.end_time > SimTime::zero()) {
        std::printf("%s\n", replayed.trace
                                .render_gantt(SimTime::zero(), replayed.end_time, 56)
                                .c_str());
    }

    // ---- 3. The lock-order fix survives the same exploration --------------
    const auto res_fixed = run(
        [](explore::Run& r) { build_crossed(r, /*fixed_lock_order=*/true); }, cfg);
    print_result("consistent order:", res_fixed);
    if (!res_fixed.violations.empty() || !res_fixed.exhausted) {
        std::printf("FAIL: lock-order fix should explore clean and exhaust\n");
        return 1;
    }

    // ---- 4. Exhaustive mode: full coverage of a 3-task space --------------
    explore::ExploreConfig all;
    all.preemption_bound = 16;  // larger than any path's choice count
    const auto res_three = run([](explore::Run& r) { build_three_tasks(r); }, all);
    print_result("3 tasks, exhaustive:", res_three);
    if (!res_three.exhausted || res_three.stats.pruned != 0 ||
        res_three.stats.truncated != 0) {
        std::printf("FAIL: expected full path coverage\n");
        return 1;
    }
    std::printf("  full coverage: every interleaving of the 3-task space "
                "visited (%llu paths, nothing pruned)\n",
                static_cast<unsigned long long>(res_three.stats.paths));

    if (!dump_path.empty()) {
        std::ofstream f{dump_path, std::ios::binary};
        explore::write_result_json(f, res);
        explore::write_result_json(f, res_fixed);
        explore::write_result_json(f, res_three);
        if (!f) {
            std::fprintf(stderr, "explore_demo: cannot write %s\n",
                         dump_path.c_str());
            return 2;
        }
    }
    return 0;
}
