// Vocoder demo: runs the paper's Table 1 experiment at small scale — the same
// voice codec workload simulated as (a) unscheduled specification model,
// (b) RTOS-model architecture model, and (c) ISS-based implementation model —
// and prints the per-model measurements.
//
// Build & run:  ./build/examples/vocoder_demo [frames]

#include <cstdio>
#include <cstdlib>

#include "vocoder/models.hpp"
#include "vocoder/timing.hpp"

using namespace slm;
using namespace slm::vocoder;

namespace {

void print_row(const char* name, const VocoderResult& r) {
    std::printf("%-16s %8d %12.3f %10llu %14s %14s %8s\n", name, r.model_loc,
                r.wall_seconds,
                static_cast<unsigned long long>(r.context_switches),
                r.avg_transcoding_delay.to_string().c_str(),
                r.max_transcoding_delay.to_string().c_str(),
                r.data_ok ? "ok" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
    VocoderConfig cfg;
    cfg.frames = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 25;

    std::printf("vocoder: %zu frames of %s speech, encoder %s + decoder %s per frame\n\n",
                cfg.frames, kFramePeriod.to_string().c_str(),
                cycles_to_time(kEncodeWcetCycles).to_string().c_str(),
                cycles_to_time(kDecodeWcetCycles).to_string().c_str());
    std::printf("%-16s %8s %12s %10s %14s %14s %8s\n", "model", "LoC", "wall [s]",
                "switches", "avg delay", "max delay", "data");
    std::printf("%.*s\n", 88,
                "----------------------------------------------------------------------"
                "--------------------");

    print_row("unscheduled", run_vocoder_unscheduled(cfg));
    print_row("architecture", run_vocoder_architecture(cfg));
    print_row("implementation", run_vocoder_implementation(cfg));

    std::printf("\nShape to look for (paper Table 1): the architecture model simulates\n"
                "about as fast as the specification while exposing scheduling effects;\n"
                "the implementation model is orders of magnitude slower to simulate; and\n"
                "the delays order unscheduled < implementation < architecture.\n");
    return 0;
}
