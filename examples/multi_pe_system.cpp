// A two-PE architecture model: a sensor-fusion pipeline where PE0 preprocesses
// sensor frames and ships them over a shared bus to PE1, whose ISR + driver
// task hand them to a fusion task. The system is *declared* as an slm::sys
// spec triple (application / platform / mapping) and elaborated into kernel
// objects — change the MappingSpec and the same pipeline re-maps without
// touching behavior code (see docs/system-mapping.md).
//
// Build & run:  ./build/examples/multi_pe_system
//               ./build/examples/multi_pe_system --dump trace.csv   (CI mode:
//               quiet, writes the task-state trace for byte-comparison)

#include <cstdio>
#include <cstring>
#include <fstream>

#include "sys/elaborate.hpp"
#include "sys/spec.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

int main(int argc, char** argv) {
    const char* dump_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
            dump_path = argv[++i];
        }
    }
    constexpr std::uint64_t kFrames = 6;

    // Application: camera -> sender -> driver -> fusion, one token per frame.
    sys::AppSpec app;
    app.name = "sensor-fusion";
    app.tasks = {
        sys::TaskSpec{"camera", 4_ms, {}, {}, kFrames, 2},   // capture + preprocess
        sys::TaskSpec{"sender", {}, {}, {}, kFrames, 1},     // bus master port
        sys::TaskSpec{"driver", 300_us, {}, {}, kFrames, 1}, // copy out of the bus i/f
        sys::TaskSpec{"fusion", 6_ms, {}, {}, kFrames, 2},   // fuse + track
    };
    app.channels = {
        sys::ChannelSpec{"pre", "camera", "sender", 4, 2},
        sys::ChannelSpec{"xfer", "sender", "driver", 4, 0},
        sys::ChannelSpec{"fused", "driver", "fusion", 4, 2},
    };

    // Platform: two identical PEs on a 200 ns + 20 ns/byte bus.
    sys::PlatformSpec platform;
    platform.name = "dual-pe";
    platform.pes = {sys::PeSpec{"PE0", 1, 1, rtos::SchedPolicy::Priority, {}, 1},
                    sys::PeSpec{"PE1", 1, 1, rtos::SchedPolicy::Priority, {}, 1}};
    platform.buses = {sys::BusSpec{"sysbus", 200_ns, 20_ns, arch::BusArbitration::Fifo}};

    // Mapping: preprocessing on PE0, fusion on PE1, frames over the bus —
    // elaboration turns the "xfer" route into BusLink + ISR + semaphore
    // (paper Fig. 3) and the intra-PE routes into OS queues.
    sys::MappingSpec mapping;
    mapping.name = "split";
    mapping.bindings = {sys::TaskBinding{"camera", "PE0", 2},
                        sys::TaskBinding{"sender", "PE0", 1},
                        sys::TaskBinding{"driver", "PE1", 1},
                        sys::TaskBinding{"fusion", "PE1", 2}};
    mapping.routes = {sys::ChannelRoute{"pre", ""}, sys::ChannelRoute{"xfer", "sysbus"},
                      sys::ChannelRoute{"fused", ""}};

    trace::TraceRecorder trace;
    sys::SystemOptions opts;
    opts.tracer = &trace;
    sys::System system{app, platform, mapping, opts};

    // Only the sink needs a real body (to print); every other task uses the
    // default dataflow behavior derived from its spec.
    const bool quiet = dump_path != nullptr;
    system.set_behavior("fusion", [quiet](sys::TaskCtx& ctx) {
        const sys::Token frame = ctx.recv("fused");
        ctx.exec(ctx.spec().exec_cost);
        ctx.record_latency(ctx.now() - frame.born);
        if (!quiet) {
            std::printf("[%9s] PE1 fused frame %llu\n", ctx.now().to_string().c_str(),
                        static_cast<unsigned long long>(frame.id));
        }
    });

    system.run();

    if (dump_path != nullptr) {
        std::ofstream out{dump_path};
        trace.write_csv(out);
        return out.good() ? 0 : 1;
    }

    const arch::Bus& bus = *system.bus("sysbus");
    std::printf("\nsimulated time: %s\n", system.kernel().now().to_string().c_str());
    std::printf("bus: %llu transfers, %llu bytes, busy %s\n",
                static_cast<unsigned long long>(bus.transfers()),
                static_cast<unsigned long long>(bus.bytes_transferred()),
                bus.busy_time().to_string().c_str());
    std::printf("PE0 switches: %llu, PE1 switches: %llu\n",
                static_cast<unsigned long long>(
                    system.pe("PE0")->os().stats().context_switches),
                static_cast<unsigned long long>(
                    system.pe("PE1")->os().stats().context_switches));
    std::printf("PE0 serialized: %s | PE1 serialized: %s\n\n",
                trace.has_concurrent_execution("PE0") ? "NO (bug!)" : "yes",
                trace.has_concurrent_execution("PE1") ? "NO (bug!)" : "yes");
    std::printf("%s\n",
                trace.render_gantt(SimTime::zero(), system.kernel().now(), 68).c_str());
    return 0;
}
