// A two-PE architecture model: a sensor-fusion pipeline where PE0 preprocesses
// sensor frames and ships them over a shared bus to PE1, whose ISR + driver
// task hand them to a fusion task. Each PE runs its own RTOS-model instance —
// tasks on one PE serialize, PEs overlap, and the bus arbitrates transfers.
//
// Build & run:  ./build/examples/multi_pe_system

#include <cstdio>

#include "arch/arch.hpp"
#include "rtos/os_channels.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

int main() {
    sim::Kernel kernel;
    trace::TraceRecorder trace;
    constexpr int kFrames = 6;

    rtos::RtosConfig cfg0, cfg1;
    cfg0.tracer = &trace;
    cfg1.tracer = &trace;
    arch::ProcessingElement pe0{kernel, "PE0", cfg0};
    arch::ProcessingElement pe1{kernel, "PE1", cfg1};

    arch::Bus bus{kernel, "sysbus", arch::Bus::Config{200_ns, 20_ns}};
    arch::BusLink<int> link{kernel, bus, "pe0_to_pe1"};
    rtos::OsSemaphore rx_sem{pe1.os(), 0, "rx_sem"};
    rtos::OsQueue<int> fusion_q{pe1.os(), 2, "fusion_q"};

    // PE0: two producer tasks sharing the CPU, then a sender task that owns
    // the bus master port.
    rtos::OsQueue<int> pre_q{pe0.os(), 2, "pre_q"};
    pe0.add_task("camera", 2, [&] {
        for (int f = 0; f < kFrames; ++f) {
            pe0.os().time_wait(4_ms);  // capture + preprocess
            pre_q.send(f);
        }
    });
    pe0.add_task("sender", 1, [&] {
        for (int f = 0; f < kFrames; ++f) {
            const int frame = pre_q.receive();
            // Bus time is charged to this task's execution.
            link.post(frame, [&](SimTime dt) { pe0.os().time_wait(dt); });
        }
    });

    // PE1: ISR -> semaphore -> driver task -> fusion task (paper Fig. 3 shape).
    pe1.attach_isr(link.irq(), [&] { rx_sem.release(); });
    pe1.add_task("driver", 1, [&] {
        for (int f = 0; f < kFrames; ++f) {
            rx_sem.acquire();
            int frame = 0;
            (void)link.try_fetch(frame);
            pe1.os().time_wait(300_us);  // copy out of the bus interface
            fusion_q.send(frame);
        }
    });
    pe1.add_task("fusion", 2, [&] {
        for (int f = 0; f < kFrames; ++f) {
            const int frame = fusion_q.receive();
            pe1.os().time_wait(6_ms);  // fuse + track
            std::printf("[%9s] PE1 fused frame %d\n",
                        kernel.now().to_string().c_str(), frame);
        }
    });

    pe0.start();
    pe1.start();
    kernel.run();

    std::printf("\nsimulated time: %s\n", kernel.now().to_string().c_str());
    std::printf("bus: %llu transfers, %llu bytes, busy %s\n",
                static_cast<unsigned long long>(bus.transfers()),
                static_cast<unsigned long long>(bus.bytes_transferred()),
                bus.busy_time().to_string().c_str());
    std::printf("PE0 switches: %llu, PE1 switches: %llu\n",
                static_cast<unsigned long long>(pe0.os().stats().context_switches),
                static_cast<unsigned long long>(pe1.os().stats().context_switches));
    std::printf("PE0 serialized: %s | PE1 serialized: %s\n\n",
                trace.has_concurrent_execution("PE0") ? "NO (bug!)" : "yes",
                trace.has_concurrent_execution("PE1") ? "NO (bug!)" : "yes");
    std::printf("%s\n", trace.render_gantt(SimTime::zero(), kernel.now(), 68).c_str());
    return 0;
}
