#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::trace;
using namespace slm::time_literals;

TEST(Trace, ExecSpansBecomeIntervals) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "B2");
    rec.exec_end(10_us, "PE0", "B2");
    rec.exec_begin(20_us, "PE0", "B2");
    rec.exec_end(25_us, "PE0", "B2");
    const auto ivs = rec.intervals("B2");
    ASSERT_EQ(ivs.size(), 2u);
    EXPECT_EQ(ivs[0], (Interval{0_us, 10_us, "B2"}));
    EXPECT_EQ(ivs[1], (Interval{20_us, 25_us, "B2"}));
}

TEST(Trace, TaskStateRunningMakesIntervals) {
    TraceRecorder rec;
    rec.task_state(0_us, "PE0", "t", "Running");
    rec.task_state(5_us, "PE0", "t", "Ready");
    rec.task_state(9_us, "PE0", "t", "Running");
    rec.task_state(12_us, "PE0", "t", "Terminated");
    const auto ivs = rec.intervals("t");
    ASSERT_EQ(ivs.size(), 2u);
    EXPECT_EQ(ivs[0], (Interval{0_us, 5_us, "t"}));
    EXPECT_EQ(ivs[1], (Interval{9_us, 12_us, "t"}));
}

TEST(Trace, OpenIntervalClosedAtTraceEnd) {
    TraceRecorder rec;
    rec.task_state(0_us, "PE0", "t", "Running");
    rec.marker(30_us, "end");
    const auto ivs = rec.intervals("t");
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].end, 30_us);
}

TEST(Trace, OpenExecSpanClosedAtTraceEnd) {
    TraceRecorder rec;
    rec.exec_begin(10_us, "PE0", "t");
    rec.irq(40_us, "PE0", "ext");  // last record defines the trace end
    const auto ivs = rec.intervals("t");
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].begin, 10_us);
    EXPECT_EQ(ivs[0].end, 40_us);
}

TEST(Trace, OpenIntervalAtVeryEndOfTraceIsDropped) {
    // The span opens on the final record: closing it at the trace end would
    // make it zero-length, and zero-length intervals never surface.
    TraceRecorder rec;
    rec.marker(0_us, "start");
    rec.exec_begin(10_us, "PE0", "t");
    EXPECT_TRUE(rec.intervals("t").empty());
}

TEST(Trace, ZeroLengthIntervalsDropped) {
    TraceRecorder rec;
    rec.task_state(5_us, "PE0", "t", "Running");
    rec.task_state(5_us, "PE0", "t", "Ready");
    EXPECT_TRUE(rec.intervals("t").empty());
}

TEST(Trace, BusyTimeSumsIntervals) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "", "a");
    rec.exec_end(10_us, "", "a");
    rec.exec_begin(50_us, "", "a");
    rec.exec_end(65_us, "", "a");
    EXPECT_EQ(rec.busy_time("a"), 25_us);
}

TEST(Trace, ActorsInOrderOfAppearance) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "", "z");
    rec.exec_begin(1_us, "", "a");
    rec.task_state(2_us, "", "m", "Running");
    rec.exec_end(3_us, "", "z");
    EXPECT_EQ(rec.actors(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Trace, ConcurrentExecutionDetected) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "a");
    rec.exec_begin(5_us, "PE0", "b");  // overlaps a
    rec.exec_end(10_us, "PE0", "a");
    rec.exec_end(12_us, "PE0", "b");
    EXPECT_TRUE(rec.has_concurrent_execution("PE0"));
}

TEST(Trace, SerializedExecutionPasses) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "a");
    rec.exec_end(5_us, "PE0", "a");
    rec.exec_begin(5_us, "PE0", "b");
    rec.exec_end(9_us, "PE0", "b");
    EXPECT_FALSE(rec.has_concurrent_execution("PE0"));
}

TEST(Trace, ZeroLengthOverlapIsNotConcurrency) {
    // b's exec span is instantaneous inside a's span: it drops out of the
    // interval view entirely, so it must not count as concurrent execution.
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "a");
    rec.exec_begin(5_us, "PE0", "b");
    rec.exec_end(5_us, "PE0", "b");
    rec.exec_end(10_us, "PE0", "a");
    EXPECT_FALSE(rec.has_concurrent_execution("PE0"));
}

TEST(Trace, ConcurrencyCheckScopedToCpu) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "a");
    rec.exec_begin(1_us, "PE1", "b");  // different PE: overlap is fine
    rec.exec_end(5_us, "PE0", "a");
    rec.exec_end(6_us, "PE1", "b");
    EXPECT_FALSE(rec.has_concurrent_execution("PE0"));
    EXPECT_FALSE(rec.has_concurrent_execution("PE1"));
}

TEST(Trace, IrqTimesFiltered) {
    TraceRecorder rec;
    rec.irq(3_us, "PE0", "uart");
    rec.irq(7_us, "PE0", "timer");
    rec.irq(9_us, "PE0", "uart");
    EXPECT_EQ(rec.irq_times().size(), 3u);
    EXPECT_EQ(rec.irq_times("uart"), (std::vector<SimTime>{3_us, 9_us}));
    EXPECT_TRUE(rec.irq_times("spurious").empty());  // unknown name: no matches
}

TEST(Trace, IrqTimesIgnoreOtherKinds) {
    // A marker or task_state sharing an IRQ's name must not leak into the
    // filtered view -- the filter is kind-first, name-second.
    TraceRecorder rec;
    rec.marker(1_us, "uart");
    rec.task_state(2_us, "PE0", "uart", "Running");
    rec.irq(5_us, "PE0", "uart");
    EXPECT_EQ(rec.irq_times("uart"), (std::vector<SimTime>{5_us}));
}

TEST(Trace, ContextSwitchCountByCpu) {
    TraceRecorder rec;
    rec.context_switch(1_us, "PE0", "a", "<idle>");
    rec.context_switch(2_us, "PE1", "x", "<idle>");
    rec.context_switch(3_us, "PE0", "b", "a");
    EXPECT_EQ(rec.context_switches(), 3u);
    EXPECT_EQ(rec.context_switches("PE0"), 2u);
    EXPECT_EQ(rec.context_switches("PE1"), 1u);
}

TEST(Trace, CountByKind) {
    TraceRecorder rec;
    rec.marker(0_us, "m1");
    rec.irq(1_us, "", "i");
    rec.marker(2_us, "m2");
    EXPECT_EQ(rec.count(RecordKind::Marker), 2u);
    EXPECT_EQ(rec.count(RecordKind::Irq), 1u);
    EXPECT_EQ(rec.count(RecordKind::ContextSwitch), 0u);
}

TEST(Trace, ClearResets) {
    TraceRecorder rec;
    rec.marker(0_us, "m");
    rec.clear();
    EXPECT_TRUE(rec.records().empty());
}

TEST(SpecTraceAdapterTest, RecordsDelayStepsAsExecution) {
    sim::Kernel k;
    TraceRecorder rec;
    SpecTraceAdapter adapter{k, rec, "PE0"};
    k.set_observer(&adapter);
    k.spawn("B2", [&] {
        k.waitfor(30_us);
        k.waitfor(20_us);
    });
    k.spawn("B3", [&] { k.waitfor(40_us); });
    k.run();
    EXPECT_EQ(rec.busy_time("B2"), 50_us);
    EXPECT_EQ(rec.busy_time("B3"), 40_us);
    EXPECT_TRUE(rec.has_concurrent_execution("PE0"));  // spec model overlaps
    EXPECT_EQ(rec.intervals("B2").size(), 2u);
}

TEST(SpecTraceAdapterTest, EventWaitsAreNotExecution) {
    sim::Kernel k;
    TraceRecorder rec;
    SpecTraceAdapter adapter{k, rec, "PE0"};
    k.set_observer(&adapter);
    sim::Event e{k, "e"};
    k.spawn("waiter", [&] {
        k.wait(e);          // idle: no span
        k.waitfor(10_us);   // computing: span
    });
    k.spawn("notifier", [&] {
        k.waitfor(25_us);
        k.notify(e);
    });
    k.run();
    const auto ivs = rec.intervals("waiter");
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].begin, 25_us);
    EXPECT_EQ(ivs[0].end, 35_us);
}

TEST(SpecTraceAdapterTest, FilterExcludesTestbench) {
    sim::Kernel k;
    TraceRecorder rec;
    SpecTraceAdapter adapter{k, rec, "PE0"};
    adapter.set_filter([](const std::string& name) { return name != "device"; });
    k.set_observer(&adapter);
    k.spawn("device", [&] { k.waitfor(10_us); });
    k.spawn("B1", [&] { k.waitfor(10_us); });
    k.run();
    EXPECT_EQ(rec.actors(), (std::vector<std::string>{"B1"}));
}

TEST(Trace, GanttRendersRows) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "B2");
    rec.exec_end(50_us, "PE0", "B2");
    rec.exec_begin(50_us, "PE0", "B3");
    rec.exec_end(100_us, "PE0", "B3");
    rec.irq(75_us, "PE0", "ext");
    const std::string g = rec.render_gantt(0_us, 100_us, 20);
    // B2 occupies the first half, B3 the second.
    EXPECT_NE(g.find("|##########..........|"), std::string::npos) << g;
    EXPECT_NE(g.find("|..........##########|"), std::string::npos) << g;
    EXPECT_NE(g.find('^'), std::string::npos);
}

TEST(Trace, UtilizationReport) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "a");
    rec.exec_end(50_us, "PE0", "a");
    rec.exec_begin(50_us, "PE0", "b");
    rec.exec_end(75_us, "PE0", "b");
    const std::string rep = rec.utilization_report(SimTime::zero(), 100_us);
    EXPECT_NE(rep.find("a"), std::string::npos);
    EXPECT_NE(rep.find("50.0%"), std::string::npos) << rep;
    EXPECT_NE(rep.find("25.0%"), std::string::npos) << rep;
}

TEST(Trace, UtilizationReportClipsToWindow) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "a");
    rec.exec_end(100_us, "PE0", "a");
    // Window covers only the second half of the interval.
    const std::string rep = rec.utilization_report(50_us, 100_us);
    EXPECT_NE(rep.find("100.0%"), std::string::npos) << rep;
    EXPECT_NE(rep.find("50 us"), std::string::npos) << rep;
}

TEST(Trace, CsvExport) {
    TraceRecorder rec;
    rec.task_state(2_us, "PE0", "t", "Running");
    std::ostringstream os;
    rec.write_csv(os);
    EXPECT_EQ(os.str(), "t_ns,kind,cpu,actor,detail\n2000,task_state,PE0,t,Running\n");
}

TEST(Trace, ChromeTraceExport) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "task_a");
    rec.exec_end(4_us, "PE0", "task_a");
    rec.irq(2_us, "PE0", "ext");
    std::ostringstream os;
    rec.write_chrome_trace(os);
    const std::string j = os.str();
    EXPECT_EQ(j.front(), '[');
    EXPECT_NE(j.find(R"("name":"task_a","ph":"X")"), std::string::npos) << j;
    EXPECT_NE(j.find(R"("dur":4.000)"), std::string::npos) << j;
    EXPECT_NE(j.find(R"("name":"irq:ext","ph":"i")"), std::string::npos);
    EXPECT_NE(j.find(R"("args":{"name":"task_a"})"), std::string::npos);
}

TEST(Trace, ChromeTraceEscapesJsonMetacharacters) {
    // Actor/IRQ names with JSON metacharacters must come out escaped -- an
    // unescaped quote would truncate the string and corrupt the whole file.
    TraceRecorder rec;
    rec.exec_begin(0_us, "PE0", "say \"hi\"\\now");
    rec.exec_end(4_us, "PE0", "say \"hi\"\\now");
    rec.irq(2_us, "PE0", "line\nbreak");
    std::ostringstream os;
    rec.write_chrome_trace(os);
    const std::string j = os.str();
    EXPECT_NE(j.find(R"("name":"say \"hi\"\\now")"), std::string::npos) << j;
    EXPECT_NE(j.find(R"("name":"irq:line\nbreak")"), std::string::npos) << j;
    EXPECT_EQ(j.find("say \"hi\""), std::string::npos);  // no unescaped quotes
}

TEST(Trace, JsonEscapeCoversControlChars) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\tb\nc"), "a\\tb\\nc");
    EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
}

TEST(Trace, VcdExportStructure) {
    TraceRecorder rec;
    rec.exec_begin(0_us, "", "a");
    rec.exec_end(4_us, "", "a");
    std::ostringstream os;
    rec.write_vcd(os);
    const std::string vcd = os.str();
    EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 ! a $end"), std::string::npos);
    EXPECT_NE(vcd.find("#0\n"), std::string::npos);
    EXPECT_NE(vcd.find("1!"), std::string::npos);
    EXPECT_NE(vcd.find("#4000\n0!"), std::string::npos);
}
