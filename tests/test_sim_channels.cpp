#include "sim/channels.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::time_literals;

// ---- Semaphore ----

TEST(Semaphore, InitialTokensAllowAcquire) {
    Kernel k;
    Semaphore s{k, 2};
    int acquired = 0;
    k.spawn("p", [&] {
        s.acquire();
        s.acquire();
        acquired = 2;
    });
    k.run();
    EXPECT_EQ(acquired, 2);
    EXPECT_EQ(s.count(), 0u);
}

TEST(Semaphore, AcquireBlocksUntilRelease) {
    Kernel k;
    Semaphore s{k, 0};
    SimTime acquired_at;
    k.spawn("consumer", [&] {
        s.acquire();
        acquired_at = k.now();
    });
    k.spawn("producer", [&] {
        k.waitfor(5_us);
        s.release();
    });
    k.run();
    EXPECT_EQ(acquired_at, 5_us);
}

TEST(Semaphore, ReleaseBeforeAcquireIsRemembered) {
    // Unlike a bare event, semaphore state persists across time steps.
    Kernel k;
    bool got = false;
    Semaphore s{k, 0};
    k.spawn("producer", [&] { s.release(); });
    k.spawn("consumer", [&] {
        k.waitfor(10_us);
        s.acquire();
        got = true;
    });
    k.run();
    EXPECT_TRUE(got);
}

TEST(Semaphore, TryAcquire) {
    Kernel k;
    Semaphore s{k, 1};
    std::vector<bool> results;
    k.spawn("p", [&] {
        results.push_back(s.try_acquire());
        results.push_back(s.try_acquire());
        s.release();
        results.push_back(s.try_acquire());
    });
    k.run();
    EXPECT_EQ(results, (std::vector<bool>{true, false, true}));
}

TEST(Semaphore, WakesOnlyAsManyAsTokens) {
    Kernel k;
    Semaphore s{k, 0};
    int through = 0;
    for (int i = 0; i < 3; ++i) {
        k.spawn("w" + std::to_string(i), [&] {
            s.acquire();
            ++through;
        });
    }
    k.spawn("producer", [&] {
        k.waitfor(1_us);
        s.release();  // exactly one waiter may pass
    });
    k.run();
    EXPECT_EQ(through, 1);
    EXPECT_EQ(k.blocked_processes().size(), 2u);
}

// ---- Mutex ----

TEST(Mutex, ProvidesMutualExclusion) {
    Kernel k;
    Mutex m{k};
    int in_critical = 0;
    int max_in_critical = 0;
    for (int i = 0; i < 4; ++i) {
        k.spawn("p" + std::to_string(i), [&] {
            ScopedLock lock{m};
            ++in_critical;
            max_in_critical = std::max(max_in_critical, in_critical);
            k.waitfor(5_us);  // hold the lock across a time step
            --in_critical;
        });
    }
    k.run();
    EXPECT_EQ(max_in_critical, 1);
    EXPECT_EQ(k.now(), 20_us);  // fully serialized
}

TEST(Mutex, TracksOwner) {
    Kernel k;
    Mutex m{k};
    k.spawn("p", [&] {
        EXPECT_FALSE(m.locked());
        m.lock();
        EXPECT_TRUE(m.locked());
        EXPECT_EQ(m.owner(), this_process());
        m.unlock();
        EXPECT_FALSE(m.locked());
    });
    k.run();
}

// ---- Handshake ----

TEST(Handshake, SendBeforeReceiveIsRemembered) {
    Kernel k;
    Handshake hs{k};
    bool received = false;
    k.spawn("sender", [&] { hs.send(); });
    k.spawn("receiver", [&] {
        k.waitfor(3_us);
        hs.receive();
        received = true;
    });
    k.run();
    EXPECT_TRUE(received);
}

TEST(Handshake, ReceiveBlocksUntilSend) {
    Kernel k;
    Handshake hs{k};
    SimTime received_at;
    k.spawn("receiver", [&] {
        hs.receive();
        received_at = k.now();
    });
    k.spawn("sender", [&] {
        k.waitfor(7_us);
        hs.send();
    });
    k.run();
    EXPECT_EQ(received_at, 7_us);
}

TEST(Handshake, MultipleSendsCollapse) {
    Kernel k;
    Handshake hs{k};
    bool second_receive_blocked = true;
    k.spawn("sender", [&] {
        hs.send();
        hs.send();
    });
    k.spawn("receiver", [&] {
        k.waitfor(1_us);
        hs.receive();
        hs.receive();  // blocks forever: flag semantics, not a counter
        second_receive_blocked = false;
    });
    k.run();
    EXPECT_TRUE(second_receive_blocked);
}

// ---- Queue ----

TEST(Queue, FifoOrder) {
    Kernel k;
    Queue<int> q{k, 0};
    std::vector<int> got;
    k.spawn("producer", [&] {
        for (int i = 1; i <= 5; ++i) {
            q.send(i);
        }
    });
    k.spawn("consumer", [&] {
        for (int i = 0; i < 5; ++i) {
            got.push_back(q.receive());
        }
    });
    k.run();
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Queue, ReceiveBlocksOnEmpty) {
    Kernel k;
    Queue<int> q{k, 0};
    SimTime got_at;
    k.spawn("consumer", [&] {
        (void)q.receive();
        got_at = k.now();
    });
    k.spawn("producer", [&] {
        k.waitfor(9_us);
        q.send(42);
    });
    k.run();
    EXPECT_EQ(got_at, 9_us);
}

TEST(Queue, SendBlocksWhenFull) {
    Kernel k;
    Queue<int> q{k, 2};
    SimTime third_sent_at;
    k.spawn("producer", [&] {
        q.send(1);
        q.send(2);
        q.send(3);  // blocks: capacity 2
        third_sent_at = k.now();
    });
    k.spawn("consumer", [&] {
        k.waitfor(4_us);
        (void)q.receive();
    });
    k.run();
    EXPECT_EQ(third_sent_at, 4_us);
}

TEST(Queue, UnboundedSendNeverBlocks) {
    Kernel k;
    Queue<int> q{k, 0};
    k.spawn("producer", [&] {
        for (int i = 0; i < 1000; ++i) {
            q.send(i);
        }
    });
    k.run();
    EXPECT_EQ(q.size(), 1000u);
}

TEST(Queue, TryReceive) {
    Kernel k;
    Queue<int> q{k, 0};
    k.spawn("p", [&] {
        int v = 0;
        EXPECT_FALSE(q.try_receive(v));
        q.send(7);
        EXPECT_TRUE(q.try_receive(v));
        EXPECT_EQ(v, 7);
    });
    k.run();
}

TEST(Queue, MoveOnlyPayload) {
    Kernel k;
    Queue<std::unique_ptr<int>> q{k, 0};
    int got = 0;
    k.spawn("producer", [&] { q.send(std::make_unique<int>(99)); });
    k.spawn("consumer", [&] { got = *q.receive(); });
    k.run();
    EXPECT_EQ(got, 99);
}

TEST(Queue, ManyProducersOneConsumer) {
    Kernel k;
    Queue<int> q{k, 4};
    long long sum = 0;
    for (int p = 0; p < 5; ++p) {
        k.spawn("prod" + std::to_string(p), [&, p] {
            for (int i = 0; i < 20; ++i) {
                k.waitfor(nanoseconds(static_cast<std::uint64_t>(p) * 7 + 3));
                q.send(p * 100 + i);
            }
        });
    }
    k.spawn("consumer", [&] {
        for (int i = 0; i < 100; ++i) {
            sum += q.receive();
        }
    });
    k.run();
    long long expected = 0;
    for (int p = 0; p < 5; ++p) {
        for (int i = 0; i < 20; ++i) {
            expected += p * 100 + i;
        }
    }
    EXPECT_EQ(sum, expected);
}

// ---- Barrier ----

TEST(BarrierChan, ReleasesAllAtOnce) {
    Kernel k;
    Barrier bar{k, 3};
    std::vector<SimTime> release_times;
    for (int i = 0; i < 3; ++i) {
        k.spawn("p" + std::to_string(i), [&, i] {
            k.waitfor(microseconds(static_cast<std::uint64_t>(i + 1)));
            bar.arrive_and_wait();
            release_times.push_back(k.now());
        });
    }
    k.run();
    ASSERT_EQ(release_times.size(), 3u);
    for (const SimTime t : release_times) {
        EXPECT_EQ(t, 3_us);  // everyone leaves when the last party arrives
    }
}

TEST(BarrierChan, Reusable) {
    Kernel k;
    Barrier bar{k, 2};
    int rounds_done = 0;
    for (int i = 0; i < 2; ++i) {
        k.spawn("p" + std::to_string(i), [&, i] {
            for (int r = 0; r < 10; ++r) {
                k.waitfor(nanoseconds(static_cast<std::uint64_t>(i) * 13 + 1));
                bar.arrive_and_wait();
            }
            ++rounds_done;
        });
    }
    k.run();
    EXPECT_EQ(rounds_done, 2);
}
