#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/stack_pool.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::time_literals;

TEST(Kernel, StartsAtTimeZero) {
    Kernel k;
    EXPECT_EQ(k.now(), SimTime::zero());
}

TEST(Kernel, RunWithNoProcessesTerminates) {
    Kernel k;
    k.run();
    EXPECT_EQ(k.now(), SimTime::zero());
}

TEST(Kernel, SingleProcessRunsToCompletion) {
    Kernel k;
    bool ran = false;
    k.spawn("p", [&] { ran = true; });
    k.run();
    EXPECT_TRUE(ran);
}

TEST(Kernel, WaitforAdvancesTime) {
    Kernel k;
    SimTime seen;
    k.spawn("p", [&] {
        k.waitfor(10_us);
        seen = k.now();
    });
    k.run();
    EXPECT_EQ(seen, 10_us);
    EXPECT_EQ(k.now(), 10_us);
}

TEST(Kernel, SequentialWaitforsAccumulate) {
    Kernel k;
    k.spawn("p", [&] {
        k.waitfor(3_us);
        k.waitfor(4_us);
        k.waitfor(5_us);
    });
    k.run();
    EXPECT_EQ(k.now(), 12_us);
}

TEST(Kernel, ParallelWaitforsOverlap) {
    // Two concurrent processes delay "in parallel": total simulated time is
    // the max, not the sum — the defining property of the unscheduled model.
    Kernel k;
    k.spawn("a", [&] { k.waitfor(30_us); });
    k.spawn("b", [&] { k.waitfor(20_us); });
    k.run();
    EXPECT_EQ(k.now(), 30_us);
}

TEST(Kernel, ProcessesRunInSpawnOrder) {
    Kernel k;
    std::vector<std::string> order;
    for (const char* n : {"a", "b", "c"}) {
        k.spawn(n, [&order, n] { order.push_back(n); });
    }
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Kernel, SimultaneousTimeoutsFireInScheduleOrder) {
    Kernel k;
    std::vector<std::string> order;
    k.spawn("a", [&] {
        k.waitfor(5_us);
        order.push_back("a");
    });
    k.spawn("b", [&] {
        k.waitfor(5_us);
        order.push_back("b");
    });
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
}

TEST(Kernel, NotifyWakesWaiter) {
    Kernel k;
    Event e{k, "e"};
    bool woke = false;
    k.spawn("waiter", [&] {
        k.wait(e);
        woke = true;
    });
    k.spawn("notifier", [&] {
        k.waitfor(1_us);
        k.notify(e);
    });
    k.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(k.now(), 1_us);
}

TEST(Kernel, NotifyWakesAllWaiters) {
    Kernel k;
    Event e{k, "e"};
    int woke = 0;
    for (int i = 0; i < 5; ++i) {
        k.spawn("w" + std::to_string(i), [&] {
            k.wait(e);
            ++woke;
        });
    }
    k.spawn("notifier", [&] {
        k.waitfor(1_us);
        k.notify(e);
    });
    k.run();
    EXPECT_EQ(woke, 5);
}

TEST(Kernel, NotifyIsStickyWithinDelta) {
    // SpecC semantics: a wait() later in the same delta cycle sees the
    // notification and does not block.
    Kernel k;
    Event e{k, "e"};
    bool continued = false;
    k.spawn("notifier", [&] { k.notify(e); });
    k.spawn("late_waiter", [&] {
        k.wait(e);  // runs in the same delta as the notify
        continued = true;
    });
    k.run();
    EXPECT_TRUE(continued);
}

TEST(Kernel, NotifyIsLostAcrossTime) {
    // A notification in an earlier time step does not satisfy a later wait.
    Kernel k;
    Event e{k, "e"};
    bool woke = false;
    k.spawn("notifier", [&] { k.notify(e); });
    k.spawn("late_waiter", [&] {
        k.waitfor(1_us);  // move past the delta where the notify happened
        k.wait(e);
        woke = true;
    });
    k.run();
    EXPECT_FALSE(woke);
    EXPECT_EQ(k.blocked_processes().size(), 1u);
}

TEST(Kernel, NotifyIsLostAcrossDelta) {
    Kernel k;
    Event e{k, "e"};
    bool woke = false;
    k.spawn("notifier", [&] { k.notify(e); });
    k.spawn("late_waiter", [&] {
        k.waitfor(SimTime::zero());  // next delta, same time
        k.wait(e);
        woke = true;
    });
    k.run();
    EXPECT_FALSE(woke);
}

TEST(Kernel, WaitforZeroYieldsToNextDelta) {
    Kernel k;
    std::vector<int> order;
    k.spawn("a", [&] {
        k.waitfor(SimTime::zero());
        order.push_back(1);
    });
    k.spawn("b", [&] { order.push_back(0); });
    k.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(k.now(), SimTime::zero());
}

TEST(Kernel, YieldRunsAfterOtherRunnables) {
    Kernel k;
    std::vector<int> order;
    k.spawn("a", [&] {
        k.yield();
        order.push_back(1);
    });
    k.spawn("b", [&] { order.push_back(0); });
    k.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Kernel, ParForksAndJoins) {
    Kernel k;
    std::vector<std::string> log;
    k.spawn("parent", [&] {
        log.push_back("pre");
        k.par({[&] {
                   k.waitfor(5_us);
                   log.push_back("c1");
               },
               [&] {
                   k.waitfor(3_us);
                   log.push_back("c2");
               }});
        log.push_back("post");
    });
    k.run();
    EXPECT_EQ(log, (std::vector<std::string>{"pre", "c2", "c1", "post"}));
    EXPECT_EQ(k.now(), 5_us);  // children overlap
}

TEST(Kernel, ParChildrenSeeParent) {
    Kernel k;
    const Process* parent_of_child = nullptr;
    Process* parent = k.spawn("parent", [&] {
        k.par({[&] { parent_of_child = this_process()->parent(); }});
    });
    k.run();
    EXPECT_EQ(parent_of_child, parent);
}

TEST(Kernel, NestedPar) {
    Kernel k;
    int leaves = 0;
    k.spawn("root", [&] {
        k.par({[&] {
                   k.par({[&] { ++leaves; }, [&] { ++leaves; }});
               },
               [&] {
                   k.par({[&] { ++leaves; }, [&] { ++leaves; }});
               }});
    });
    k.run();
    EXPECT_EQ(leaves, 4);
}

TEST(Kernel, EmptyParReturnsImmediately) {
    Kernel k;
    bool after = false;
    k.spawn("p", [&] {
        k.par(std::vector<Branch>{});
        after = true;
    });
    k.run();
    EXPECT_TRUE(after);
}

TEST(Kernel, NamedParBranches) {
    Kernel k;
    std::vector<std::string> names;
    k.spawn("p", [&] {
        std::vector<Branch> branches;
        branches.push_back({"left", [&] { names.push_back(this_process()->name()); }});
        branches.push_back({"right", [&] { names.push_back(this_process()->name()); }});
        k.par(std::move(branches));
    });
    k.run();
    EXPECT_EQ(names, (std::vector<std::string>{"left", "right"}));
}

TEST(Kernel, JoinFinishedProcessReturnsImmediately) {
    Kernel k;
    bool joined = false;
    Process* worker = k.spawn("worker", [] {});
    k.spawn("joiner", [&] {
        k.waitfor(1_us);  // worker finishes first
        k.join(*worker);
        joined = true;
    });
    k.run();
    EXPECT_TRUE(joined);
}

TEST(Kernel, JoinBlocksUntilDone) {
    Kernel k;
    SimTime join_time;
    Process* worker = k.spawn("worker", [&] { k.waitfor(10_us); });
    k.spawn("joiner", [&] {
        k.join(*worker);
        join_time = k.now();
    });
    k.run();
    EXPECT_EQ(join_time, 10_us);
}

TEST(Kernel, SpawnDuringRunExecutesChild) {
    Kernel k;
    bool child_ran = false;
    k.spawn("parent", [&] {
        Process* c = k.spawn("child", [&] { child_ran = true; });
        k.join(*c);
    });
    k.run();
    EXPECT_TRUE(child_ran);
}

TEST(Kernel, RunUntilStopsAtLimit) {
    Kernel k;
    int ticks = 0;
    k.spawn("ticker", [&] {
        for (int i = 0; i < 100; ++i) {
            k.waitfor(1_ms);
            ++ticks;
        }
    });
    const bool more = k.run_until(5_ms);
    EXPECT_TRUE(more);
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(k.now(), 5_ms);
}

TEST(Kernel, RunUntilCanResume) {
    Kernel k;
    int ticks = 0;
    k.spawn("ticker", [&] {
        for (int i = 0; i < 10; ++i) {
            k.waitfor(1_ms);
            ++ticks;
        }
    });
    EXPECT_TRUE(k.run_until(3_ms));
    EXPECT_EQ(ticks, 3);
    EXPECT_FALSE(k.run_until(20_ms));
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(k.now(), 20_ms);
}

TEST(Kernel, RunUntilWithNoActivityAdvancesClock) {
    Kernel k;
    EXPECT_FALSE(k.run_until(7_ms));
    EXPECT_EQ(k.now(), 7_ms);
}

TEST(Kernel, KillReadyProcessUnwindsBeforeBody) {
    Kernel k;
    bool ran = false;
    Process* victim = k.spawn("victim", [&] { ran = true; });
    k.kill(*victim);
    k.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(victim->state(), ProcState::Killed);
}

TEST(Kernel, KillWaitingProcessRunsDestructors) {
    Kernel k;
    Event e{k, "never"};
    bool cleaned_up = false;
    struct Raii {
        bool& flag;
        ~Raii() { flag = true; }
    };
    Process* victim = k.spawn("victim", [&] {
        Raii raii{cleaned_up};
        k.wait(e);
    });
    k.spawn("killer", [&] {
        k.waitfor(1_us);
        k.kill(*victim);
    });
    k.run();
    EXPECT_TRUE(cleaned_up);
    EXPECT_EQ(victim->state(), ProcState::Killed);
}

TEST(Kernel, KillSleepingProcessCancelsTimeout) {
    Kernel k;
    bool resumed = false;
    Process* victim = k.spawn("victim", [&] {
        k.waitfor(100_ms);
        resumed = true;
    });
    k.spawn("killer", [&] {
        k.waitfor(1_us);
        k.kill(*victim);
    });
    k.run();
    EXPECT_FALSE(resumed);
    // The victim's 100 ms timeout must not drag simulated time forward.
    EXPECT_EQ(k.now(), 1_us);
}

TEST(Kernel, SelfKillUnwinds) {
    Kernel k;
    bool after = false;
    Process* p = k.spawn("p", [&] {
        k.kill(*this_process());
        after = true;
    });
    k.run();
    EXPECT_FALSE(after);
    EXPECT_EQ(p->state(), ProcState::Killed);
}

TEST(Kernel, KillIsIdempotent) {
    Kernel k;
    Event e{k, "never"};
    Process* victim = k.spawn("victim", [&] { k.wait(e); });
    k.spawn("killer", [&] {
        k.waitfor(1_us);
        k.kill(*victim);
        k.kill(*victim);
    });
    k.run();
    EXPECT_EQ(victim->state(), ProcState::Killed);
    k.kill(*victim);  // killing a dead process is a no-op
}

TEST(Kernel, KilledParentStopsButChildrenFinish) {
    Kernel k;
    bool child_done = false;
    bool parent_post = false;
    Process* parent = k.spawn("parent", [&] {
        k.par({[&] {
            k.waitfor(10_us);
            child_done = true;
        }});
        parent_post = true;
    });
    k.spawn("killer", [&] {
        k.waitfor(1_us);
        k.kill(*parent);
    });
    k.run();
    EXPECT_TRUE(child_done);
    EXPECT_FALSE(parent_post);
}

TEST(Kernel, DeadlockedProcessesAreReported) {
    Kernel k;
    Event e1{k, "e1"}, e2{k, "e2"};
    k.spawn("a", [&] {
        k.wait(e1);
        k.notify(e2);
    });
    k.spawn("b", [&] {
        k.wait(e2);
        k.notify(e1);
    });
    k.run();
    EXPECT_EQ(k.blocked_processes().size(), 2u);
}

TEST(Kernel, StatsCountActivity) {
    Kernel k;
    Event e{k, "e"};
    k.spawn("a", [&] {
        k.waitfor(1_us);
        k.notify(e);
    });
    k.spawn("b", [&] { k.wait(e); });
    k.run();
    const KernelStats& s = k.stats();
    EXPECT_EQ(s.processes_created, 2u);
    EXPECT_GE(s.process_activations, 3u);
    EXPECT_EQ(s.events_notified, 1u);
    EXPECT_EQ(s.time_advances, 1u);
    EXPECT_GE(s.delta_cycles, 2u);
}

TEST(Kernel, ObserverSeesStateTransitions) {
    struct Recorder : KernelObserver {
        std::vector<std::string> log;
        void on_process_state(const Process& p, ProcState, ProcState to) override {
            log.push_back(p.name() + ":" + to_string(to));
        }
    } rec;
    Kernel k;
    k.set_observer(&rec);
    k.spawn("p", [&] { k.waitfor(1_us); });
    k.run();
    EXPECT_EQ(rec.log, (std::vector<std::string>{"p:Ready", "p:Running", "p:WaitingTime",
                                                 "p:Ready", "p:Running", "p:Done"}));
}

TEST(Kernel, ObserverSeesTimeAdvances) {
    struct Recorder : KernelObserver {
        std::vector<SimTime> times;
        void on_time_advance(SimTime t) override { times.push_back(t); }
    } rec;
    Kernel k;
    k.set_observer(&rec);
    k.spawn("p", [&] {
        k.waitfor(2_us);
        k.waitfor(3_us);
    });
    k.run();
    EXPECT_EQ(rec.times, (std::vector<SimTime>{2_us, 5_us}));
}

TEST(Kernel, ThisKernelAndThisProcess) {
    Kernel k;
    Kernel* seen_kernel = nullptr;
    Process* seen_process = nullptr;
    Process* p = k.spawn("p", [&] {
        seen_kernel = &this_kernel();
        seen_process = this_process();
    });
    k.run();
    EXPECT_EQ(seen_kernel, &k);
    EXPECT_EQ(seen_process, p);
    EXPECT_EQ(this_process(), nullptr);
}

TEST(Kernel, ManyProcessesManySwitches) {
    // Stress: 200 processes ping-ponging through time steps stay deterministic.
    Kernel k;
    constexpr int kProcs = 200;
    constexpr int kSteps = 50;
    std::uint64_t total = 0;
    for (int i = 0; i < kProcs; ++i) {
        k.spawn("p" + std::to_string(i), [&, i] {
            for (int s = 0; s < kSteps; ++s) {
                k.waitfor(nanoseconds(static_cast<std::uint64_t>(i) + 1));
                ++total;
            }
        });
    }
    k.run();
    EXPECT_EQ(total, static_cast<std::uint64_t>(kProcs) * kSteps);
    EXPECT_EQ(k.now(), nanoseconds(kProcs * kSteps));
}

TEST(Kernel, DeterministicTraceAcrossRuns) {
    auto run_once = [] {
        Kernel k;
        std::vector<std::string> log;
        Event e{k, "e"};
        k.spawn("a", [&] {
            for (int i = 0; i < 10; ++i) {
                k.waitfor(3_us);
                log.push_back("a" + std::to_string(i));
                k.notify(e);
            }
        });
        k.spawn("b", [&] {
            for (int i = 0; i < 5; ++i) {
                k.wait(e);
                log.push_back("b" + std::to_string(i));
                k.waitfor(4_us);
            }
        });
        k.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Kernel, EventWaiterCountTracksBlockedProcesses) {
    Kernel k;
    Event e{k, "e"};
    k.spawn("w1", [&] { k.wait(e); });
    k.spawn("w2", [&] { k.wait(e); });
    k.spawn("check", [&] {
        k.waitfor(1_us);
        EXPECT_EQ(e.waiter_count(), 2u);
        k.notify(e);
    });
    k.run();
    EXPECT_EQ(e.waiter_count(), 0u);
}

// --- fast-context engine regressions -------------------------------------

TEST(Kernel, BackendResolvesToSomethingRunnable) {
    Kernel k;
    // Auto must resolve to a concrete backend, never stay Auto.
    EXPECT_NE(k.backend(), ContextBackend::Auto);
    if (!fast_context_compiled()) {
        EXPECT_EQ(k.backend(), ContextBackend::Ucontext);
    }
}

TEST(Kernel, TinyStackSizeIsClampedToMinimum) {
    // A stack_size below the documented minimum is clamped, not rejected:
    // the process still runs with at least kMinStackSize bytes.
    KernelConfig cfg;
    cfg.stack_size = 1;  // absurdly small; would fault if honored literally
    Kernel k{cfg};
    bool ran = false;
    k.spawn("p", [&] {
        // Burn some genuine stack to prove the clamped size is usable.
        volatile char burn[4096];
        burn[0] = 1;
        burn[sizeof(burn) - 1] = 1;
        ran = burn[0] == 1 && burn[sizeof(burn) - 1] == 1;
    });
    // The stack is acquired at spawn time, already clamped.
    EXPECT_GE(k.stats().stack_bytes_in_use, KernelConfig::kMinStackSize);
    k.run();
    EXPECT_TRUE(ran);
}

TEST(Kernel, StackPoolRecyclesAcrossWaves) {
    Kernel k;
    for (int wave = 0; wave < 3; ++wave) {
        for (int i = 0; i < 8; ++i) {
            k.spawn("p", [] {});
        }
        k.run();
    }
    // Waves 2 and 3 must be served from the pool's free list.
    EXPECT_EQ(k.stats().processes_created, 24u);
    EXPECT_GE(k.stats().stacks_recycled, 16u);
    // All short-lived stacks were returned; only the pool holds them now.
    EXPECT_EQ(k.stats().stack_bytes_in_use, 0u);
}

TEST(Kernel, KillDuringSwitchOnRecycledStackRunsDestructors) {
    // Regression for the stack pool: process A finishes and its stack returns
    // to the pool; process B is spawned onto that recycled stack, blocks (so
    // its saved context lives in the recycled memory), and is then killed.
    // The ProcessKilled unwinding must run B's destructors on that stack.
    Kernel k;
    Event e{k, "never"};
    bool a_done = false;
    bool b_cleaned_up = false;
    bool b_resumed = false;
    struct Raii {
        bool& flag;
        ~Raii() { flag = true; }
    };
    k.spawn("a", [&] { a_done = true; });
    k.run();  // A finishes; its stack is now on the pool free list
    ASSERT_TRUE(a_done);
    ASSERT_EQ(k.stats().stack_bytes_in_use, 0u);  // A's stack is pooled, not live

    Process* b = k.spawn("b", [&] {
        Raii raii{b_cleaned_up};
        k.wait(e);  // suspend mid-body: context saved on the recycled stack
        b_resumed = true;
    });
    k.spawn("killer", [&] {
        k.waitfor(1_us);
        k.kill(*b);
    });
    k.run();
    EXPECT_GE(k.stats().stacks_recycled, 1u);  // B really reused A's stack
    EXPECT_TRUE(b_cleaned_up);
    EXPECT_FALSE(b_resumed);
    EXPECT_EQ(b->state(), ProcState::Killed);
}

TEST(Kernel, GuardPagesBackendRunsProcesses) {
    KernelConfig cfg;
    cfg.guard_pages = true;
    Kernel k{cfg};
    int sum = 0;
    for (int i = 0; i < 4; ++i) {
        k.spawn("p", [&sum, i] { sum += i; });
    }
    k.run();
    EXPECT_EQ(sum, 6);
    // Guarded stacks recycle through the pool exactly like plain ones.
    for (int i = 0; i < 4; ++i) {
        k.spawn("q", [&sum] { ++sum; });
    }
    k.run();
    EXPECT_EQ(sum, 10);
    EXPECT_GE(k.stats().stacks_recycled, 4u);
}

TEST(Kernel, ExplicitUcontextBackendMatchesFastSemantics) {
    // The same program must produce identical scheduling under both backends.
    auto run_with = [](ContextBackend backend) {
        KernelConfig cfg;
        cfg.backend = backend;
        Kernel k{cfg};
        std::vector<std::string> log;
        Event e{k, "e"};
        k.spawn("a", [&] {
            log.push_back("a0");
            k.notify(e);
            k.waitfor(2_us);
            log.push_back("a1");
        });
        k.spawn("b", [&] {
            k.wait(e);
            log.push_back("b0");
            k.waitfor(1_us);
            log.push_back("b1");
        });
        k.run();
        return log;
    };
    const auto uc = run_with(ContextBackend::Ucontext);
    const auto fast = run_with(ContextBackend::Fast);  // degrades if absent
    EXPECT_EQ(uc, fast);
    EXPECT_EQ(uc, (std::vector<std::string>{"a0", "b0", "b1", "a1"}));
}

// ---- One-shot timers (post_at / cancel_timer) ----

TEST(Kernel, PostAtFiresAtRequestedTime) {
    Kernel k;
    SimTime fired_at = SimTime::max();
    k.post_at(10_us, [&] { fired_at = k.now(); });
    k.spawn("p", [&] { k.waitfor(20_us); });
    k.run();
    EXPECT_EQ(fired_at, 10_us);
}

TEST(Kernel, TimerCallbackRunsInSchedulerContext) {
    Kernel k;
    bool saw_null_process = false;
    k.post_at(5_us, [&] { saw_null_process = this_process() == nullptr; });
    k.spawn("p", [&] { k.waitfor(10_us); });
    k.run();
    EXPECT_TRUE(saw_null_process);
}

TEST(Kernel, TimerFiresBeforeSameInstantProcessWakeup) {
    Kernel k;
    std::vector<std::string> log;
    k.post_at(10_us, [&] { log.push_back("timer"); });
    k.spawn("p", [&] {
        k.waitfor(10_us);
        log.push_back("process");
    });
    k.run();
    EXPECT_EQ(log, (std::vector<std::string>{"timer", "process"}));
}

TEST(Kernel, SameInstantTimersFireInPostingOrder) {
    Kernel k;
    std::vector<int> order;
    k.post_at(5_us, [&] { order.push_back(1); });
    k.post_at(5_us, [&] { order.push_back(2); });
    k.post_at(5_us, [&] { order.push_back(3); });
    k.spawn("p", [&] { k.waitfor(10_us); });
    k.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, CancelTimerPreventsFiring) {
    Kernel k;
    bool fired = false;
    const Kernel::TimerId id = k.post_at(10_us, [&] { fired = true; });
    EXPECT_TRUE(k.timer_pending(id));
    k.cancel_timer(id);
    EXPECT_FALSE(k.timer_pending(id));
    k.spawn("p", [&] { k.waitfor(20_us); });
    k.run();
    EXPECT_FALSE(fired);
}

TEST(Kernel, TimerPendingClearsAfterFiring) {
    Kernel k;
    const Kernel::TimerId id = k.post_at(5_us, [] {});
    k.spawn("p", [&] { k.waitfor(10_us); });
    k.run();
    EXPECT_FALSE(k.timer_pending(id));
    k.cancel_timer(id);  // cancelling a fired timer is a harmless no-op
}

TEST(Kernel, RunUntilAdvancesThroughTimerOnlyActivity) {
    // A pending timer alone counts as activity: run_until() must advance to
    // it even with no runnable processes.
    Kernel k;
    SimTime fired_at{};
    k.post_at(30_us, [&] { fired_at = k.now(); });
    k.run_until(100_us);
    EXPECT_EQ(fired_at, 30_us);
    EXPECT_EQ(k.now(), 100_us);
}

TEST(Kernel, TimerCallbackCanChainAnotherTimer) {
    Kernel k;
    std::vector<SimTime> fires;
    std::function<void()> tick = [&] {
        fires.push_back(k.now());
        if (fires.size() < 3) {
            k.post_at(k.now() + 10_us, tick);
        }
    };
    k.post_at(10_us, tick);
    k.run_until(100_us);
    EXPECT_EQ(fires, (std::vector<SimTime>{10_us, 20_us, 30_us}));
}

// ---- Guard-page fallback (satellite: StackPool robustness) ----

TEST(Kernel, GuardFailureFallsBackToUnguardedStacks) {
    StackPool::force_guard_failure_for_testing(true);
    {
        KernelConfig cfg;
        cfg.guard_pages = true;
        Kernel k{cfg};
        int sum = 0;
        for (int i = 0; i < 4; ++i) {
            k.spawn("p", [&sum, i] { sum += i; });
        }
        k.run();
        EXPECT_EQ(sum, 6);  // processes still ran, just without guards
        EXPECT_EQ(k.stats().guard_pages_disabled, 1u);
    }
    StackPool::force_guard_failure_for_testing(false);
    KernelConfig cfg;
    cfg.guard_pages = true;
    Kernel k{cfg};
    k.spawn("p", [] {});
    k.run();
    EXPECT_EQ(k.stats().guard_pages_disabled, 0u);
}
