#include "arch/arch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "arch/fig3.hpp"
#include "rtos/os_channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::arch;
using namespace slm::time_literals;

// ---- Bus ----

TEST(BusTest, TransferLatency) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{100_ns, 10_ns}};
    EXPECT_EQ(bus.transfer_latency(0), 100_ns);
    EXPECT_EQ(bus.transfer_latency(64), nanoseconds(100 + 640));
}

TEST(BusTest, TransfersAreArbitrated) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), 10_ns}};
    std::vector<SimTime> done;
    for (int i = 0; i < 3; ++i) {
        k.spawn("m" + std::to_string(i), [&] {
            bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); });  // 1 us each
            done.push_back(k.now());
        });
    }
    k.run();
    // One master at a time: completions at 1, 2, 3 us.
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], 1_us);
    EXPECT_EQ(done[1], 2_us);
    EXPECT_EQ(done[2], 3_us);
    EXPECT_EQ(bus.transfers(), 3u);
    EXPECT_EQ(bus.bytes_transferred(), 300u);
    EXPECT_EQ(bus.busy_time(), 3_us);
}

TEST(BusTest, PriorityArbitrationGrantsLowestMaster) {
    Kernel k;
    Bus::Config cfg{SimTime::zero(), 10_ns, BusArbitration::Priority, {}, 0};
    Bus bus{k, "bus", cfg};
    std::vector<int> grant_order;
    // Master 9 grabs the bus first; masters 3 and 1 request while it is busy.
    k.spawn("m9", [&] {
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 9);
        grant_order.push_back(9);
    });
    k.spawn("m3", [&] {
        k.waitfor(100_ns);
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 3);
        grant_order.push_back(3);
    });
    k.spawn("m1", [&] {
        k.waitfor(200_ns);
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 1);
        grant_order.push_back(1);
    });
    k.run();
    // 9 finishes first (it held the bus), then 1 beats 3 despite arriving later.
    EXPECT_EQ(grant_order, (std::vector<int>{9, 1, 3}));
}

TEST(BusTest, FifoArbitrationIgnoresMasterIds) {
    Kernel k;
    Bus::Config cfg{SimTime::zero(), 10_ns, BusArbitration::Fifo, {}, 0};
    Bus bus{k, "bus", cfg};
    std::vector<int> grant_order;
    k.spawn("m9", [&] {
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 9);
        grant_order.push_back(9);
    });
    k.spawn("m3", [&] {
        k.waitfor(100_ns);
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 3);
        grant_order.push_back(3);
    });
    k.spawn("m1", [&] {
        k.waitfor(200_ns);
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 1);
        grant_order.push_back(1);
    });
    k.run();
    EXPECT_EQ(grant_order, (std::vector<int>{9, 3, 1}));  // request order
}

TEST(BusTest, TdmaAlignsTransfersToSlots) {
    Kernel k;
    Bus::Config cfg{SimTime::zero(), 1_ns, BusArbitration::Tdma, 10_us, 2};
    Bus bus{k, "bus", cfg};
    std::vector<SimTime> starts(2);
    // Master 1's slot is [10, 20) us in each 20 us frame; master 0's is [0, 10).
    k.spawn("m1", [&] {
        k.waitfor(1_us);  // request at 1 us, slot opens at 10 us
        const SimTime t0 = k.now();
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 1);
        starts[1] = t0;  // record request; start checked via arbitration_wait
    });
    k.spawn("m0", [&] {
        k.waitfor(25_us);  // inside frame 2, master 0's slot is [20, 30) us
        const SimTime t0 = k.now();
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 0);
        EXPECT_EQ(k.now() - t0, nanoseconds(100));  // no alignment stall
    });
    k.run();
    // Master 1 stalled from 1 us to its slot start at 10 us (+100 ns transfer).
    EXPECT_EQ(bus.arbitration_wait(), 9_us);
}

TEST(BusTest, ArbitrationWaitMeasuresContention) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), 10_ns}};
    k.spawn("a", [&] { bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }); });
    k.spawn("b", [&] { bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }); });
    k.run();
    // b waited exactly for a's 1 us transfer.
    EXPECT_EQ(bus.arbitration_wait(), 1_us);
}

// ---- InterruptLine / BusLink ----

TEST(InterruptLineTest, RaiseWakesWaiter) {
    Kernel k;
    InterruptLine line{k, "irq0"};
    SimTime woken;
    k.spawn("handler", [&] {
        k.wait(line.event());
        woken = k.now();
    });
    k.spawn("device", [&] {
        k.waitfor(5_us);
        line.raise();
    });
    k.run();
    EXPECT_EQ(woken, 5_us);
    EXPECT_EQ(line.raise_count(), 1u);
}

TEST(BusLinkTest, PostDeliversAndInterrupts) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), SimTime::zero()}};
    BusLink<int> link{k, bus, "lnk"};
    int got = 0;
    SimTime got_at;
    k.spawn("receiver", [&] {
        k.wait(link.irq().event());
        EXPECT_TRUE(link.try_fetch(got));
        got_at = k.now();
    });
    k.spawn("sender", [&] {
        k.waitfor(7_us);
        link.post(123, [&](SimTime dt) { k.waitfor(dt); });
    });
    k.run();
    EXPECT_EQ(got, 123);
    EXPECT_EQ(got_at, 7_us);
    EXPECT_EQ(link.pending(), 0u);
}

TEST(BusLinkTest, FetchOnEmptyFails) {
    Kernel k;
    Bus bus{k, "bus"};
    BusLink<int> link{k, bus, "lnk"};
    int v = 0;
    EXPECT_FALSE(link.try_fetch(v));
}

// ---- ProcessingElement ----

TEST(PeTest, AddTaskRunsRefinedLifecycle) {
    Kernel k;
    ProcessingElement pe{k, "PE0"};
    bool ran = false;
    rtos::Task* t = pe.add_task("worker", 1, [&] {
        pe.os().time_wait(10_us);
        ran = true;
    });
    pe.start();
    k.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(t->state(), rtos::TaskState::Terminated);
    EXPECT_EQ(k.now(), 10_us);
}

TEST(PeTest, PeriodicTaskHelper) {
    Kernel k;
    ProcessingElement pe{k, "PE0"};
    int cycles = 0;
    rtos::Task* t = pe.add_periodic_task(
        "sampler", 1, 100_us, 10_us,
        [&] {
            pe.os().time_wait(10_us);
            ++cycles;
        },
        5);
    pe.start();
    k.run();
    EXPECT_EQ(cycles, 5);
    EXPECT_EQ(t->stats().completions, 5u);
    // Each cycle ends with task_endcycle, so the task terminates at the 5th
    // release point (t = 5 * period).
    EXPECT_EQ(k.now(), 500_us);
}

TEST(PeTest, IsrSignalsTaskThroughSemaphore) {
    // The Fig. 3 bus-driver pattern through the PE convenience API.
    Kernel k;
    ProcessingElement pe{k, "PE0"};
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), SimTime::zero()}};
    BusLink<int> link{k, bus, "ext"};
    rtos::OsSemaphore sem{pe.os(), 0};
    pe.attach_isr(link.irq(), [&] { sem.release(); });
    SimTime data_at;
    int data = 0;
    pe.add_task("driver", 1, [&] {
        sem.acquire();
        EXPECT_TRUE(link.try_fetch(data));
        data_at = k.now();
    });
    k.spawn("ext_pe", [&] {
        k.waitfor(20_us);
        link.post(55, [&](SimTime dt) { k.waitfor(dt); });
    });
    pe.start();
    k.run();
    EXPECT_EQ(data, 55);
    EXPECT_EQ(data_at, 20_us);
    EXPECT_EQ(pe.os().stats().isr_entries, 1u);
}

TEST(PeTest, TwoPesOverlapOneSerializes) {
    Kernel k;
    ProcessingElement pe0{k, "PE0"}, pe1{k, "PE1"};
    pe0.add_task("a", 1, [&] { pe0.os().time_wait(40_us); });
    pe0.add_task("b", 2, [&] { pe0.os().time_wait(40_us); });
    pe1.add_task("c", 1, [&] { pe1.os().time_wait(60_us); });
    pe0.start();
    pe1.start();
    k.run();
    EXPECT_EQ(k.now(), 80_us);  // PE0 serialized to 80; PE1's 60 overlaps
}

// ---- InterruptController ----

TEST(IntCtrlTest, SimultaneousIrqsServedByPriority) {
    Kernel k;
    rtos::RtosConfig cfg;
    cfg.cpu_name = "PE0";
    rtos::RtosModel os{k, cfg};
    os.init();
    InterruptController ctrl{k, os, "pic"};
    InterruptLine slow{k, "slow"}, fast{k, "fast"};
    std::vector<std::string> served;
    ctrl.attach(slow, 5, [&] { served.push_back("slow"); });
    ctrl.attach(fast, 1, [&] { served.push_back("fast"); });
    k.spawn("device", [&] {
        k.waitfor(1_us);
        slow.raise();  // raised first...
        fast.raise();  // ...but fast has higher priority
    });
    os.start();
    k.run();
    EXPECT_EQ(served, (std::vector<std::string>{"fast", "slow"}));
    EXPECT_EQ(ctrl.dispatched(), 2u);
}

TEST(IntCtrlTest, MaskingDefersUntilUnmask) {
    Kernel k;
    rtos::RtosModel os{k};
    os.init();
    InterruptController ctrl{k, os, "pic"};
    InterruptLine line{k, "uart"};
    std::vector<SimTime> served_at;
    ctrl.attach(line, 1, [&] { served_at.push_back(k.now()); });
    ctrl.mask(line);
    k.spawn("device", [&] {
        k.waitfor(1_us);
        line.raise();
        line.raise();  // two raises latch while masked
        k.waitfor(9_us);
        ctrl.unmask(line);
    });
    os.start();
    k.run();
    ASSERT_EQ(served_at.size(), 2u);
    EXPECT_EQ(served_at[0], 10_us);  // both served at unmask time
    EXPECT_EQ(served_at[1], 10_us);
    EXPECT_EQ(ctrl.pending(), 0u);
}

TEST(IntCtrlTest, HandlerWakesTaskThroughSemaphore) {
    Kernel k;
    rtos::RtosModel os{k};
    os.init();
    rtos::OsSemaphore sem{os, 0};
    InterruptController ctrl{k, os, "pic"};
    InterruptLine line{k, "dma"};
    ctrl.attach(line, 0, [&] { sem.release(); });
    SimTime woke;
    rtos::Task* t = os.task_create("driver", rtos::TaskType::Aperiodic, {}, {}, 1);
    k.spawn("driver", [&] {
        os.task_activate(t);
        sem.acquire();
        woke = k.now();
        os.task_terminate();
    });
    k.spawn("device", [&] {
        k.waitfor(7_us);
        line.raise();
    });
    os.start();
    k.run();
    EXPECT_EQ(woke, 7_us);
    EXPECT_EQ(os.stats().isr_entries, 1u);
}

// ---- Fig. 3 example: the paper's Fig. 8 traces ----

TEST(Fig3, UnscheduledModelOverlaps) {
    trace::TraceRecorder rec;
    const Fig3Result r = run_fig3_unscheduled(&rec);
    // True concurrency: B2 and B3 delays overlap (paper Fig. 8(a)).
    EXPECT_TRUE(rec.has_concurrent_execution("PE0"));
    EXPECT_EQ(r.context_switches, 0u);
    // B3 receives its bus data the instant the interrupt fires (t4 = 95 us).
    EXPECT_EQ(r.bus_data_seen, 95_us);
    EXPECT_EQ(r.b3_done, 115_us);
    EXPECT_EQ(r.b2_done, 120_us);
    EXPECT_EQ(r.pe_done, 120_us);
}

TEST(Fig3, ArchitectureModelSerializes) {
    trace::TraceRecorder rec;
    const Fig3Result r = run_fig3_architecture(&rec);
    // Dynamic scheduling: tasks interleave, never overlap (paper Fig. 8(b)).
    EXPECT_FALSE(rec.has_concurrent_execution("PE0"));
    EXPECT_GT(r.context_switches, 0u);
    // The interrupt at t4 = 95 us readies task_b3, but the switch is delayed
    // to the end of task_b2's current delay step d6 (t4' = 110 us).
    EXPECT_EQ(r.bus_data_seen, 110_us);
    EXPECT_EQ(r.b3_done, 130_us);
    EXPECT_EQ(r.b2_done, 160_us);
    EXPECT_EQ(r.pe_done, 160_us);
}

TEST(Fig3, ArchitectureLaterThanUnscheduled) {
    // Serialization can only delay completions relative to the (idealized)
    // unscheduled model.
    const Fig3Result u = run_fig3_unscheduled(nullptr);
    const Fig3Result a = run_fig3_architecture(nullptr);
    EXPECT_GE(a.b2_done, u.b2_done);
    EXPECT_GE(a.b3_done, u.b3_done);
    EXPECT_GE(a.pe_done, u.pe_done);
}

TEST(Fig3, FineGranularityTightensPreemption) {
    trace::TraceRecorder rec;
    rtos::RtosConfig cfg;
    cfg.preemption_granularity = 1_us;
    const Fig3Result r = run_fig3_architecture(&rec, Fig3Delays{}, cfg);
    // With 1 us delay steps the switch happens at the first boundary after
    // the interrupt (95 us) instead of the end of d6 (110 us).
    EXPECT_EQ(r.bus_data_seen, 96_us);
    EXPECT_FALSE(rec.has_concurrent_execution("PE0"));
}

TEST(Fig3, IrqRecordedInBothTraces) {
    trace::TraceRecorder ru, ra;
    (void)run_fig3_unscheduled(&ru);
    (void)run_fig3_architecture(&ra);
    ASSERT_EQ(ru.irq_times("ext").size(), 1u);
    ASSERT_EQ(ra.irq_times("ext").size(), 1u);
    EXPECT_EQ(ru.irq_times("ext")[0], 95_us);
    EXPECT_EQ(ra.irq_times("ext")[0], 95_us);
}

TEST(Fig3, TotalWorkIsModelInvariant) {
    // The sum of modeled computation is the same in both models; only its
    // placement in time differs.
    trace::TraceRecorder ru, ra;
    (void)run_fig3_unscheduled(&ru);
    (void)run_fig3_architecture(&ra);
    const Fig3Delays d;
    const SimTime b2_work = d.d5 + d.d6 + d.d7 + d.d8;
    const SimTime b3_work = d.d1 + d.d2 + d.d3 + d.d4;
    EXPECT_EQ(ru.busy_time("B2"), b2_work);
    EXPECT_EQ(ru.busy_time("B3"), b3_work);
    EXPECT_EQ(ra.busy_time("task_b2"), b2_work);
    EXPECT_EQ(ra.busy_time("task_b3"), b3_work);
}

// ---- arbitration and delivery edges (mapping-sweep platform support) ----

TEST(BusTest, ZeroLatencyConfigTransfersInstantly) {
    // A BusSpec{0, 0} platform bus (the vocoder's audio feed) must move data
    // without consuming simulated time or accumulating busy time.
    Kernel k;
    Bus bus{k, "free", Bus::Config{SimTime::zero(), SimTime::zero()}};
    for (int i = 0; i < 3; ++i) {
        k.spawn("m" + std::to_string(i), [&] {
            bus.occupy(1000, [&](SimTime dt) { k.waitfor(dt); });
            EXPECT_EQ(k.now(), SimTime::zero());
        });
    }
    k.run();
    EXPECT_EQ(k.now(), SimTime::zero());
    EXPECT_EQ(bus.transfers(), 3u);
    EXPECT_EQ(bus.bytes_transferred(), 3000u);
    EXPECT_EQ(bus.busy_time(), SimTime::zero());
    EXPECT_EQ(bus.arbitration_wait(), SimTime::zero());
}

TEST(BusTest, PriorityArbitrationReordersDeepQueue) {
    // Three masters queue while the bus is busy; grants follow master id
    // (7, then 4, then 9 would be FIFO order) — lowest id wins each regrant.
    Kernel k;
    Bus::Config cfg{SimTime::zero(), 10_ns, BusArbitration::Priority, {}, 0};
    Bus bus{k, "bus", cfg};
    std::vector<int> grants;
    k.spawn("holder", [&] {
        bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, 0);
        grants.push_back(0);
    });
    const int arrival_order[] = {7, 4, 9};  // request order while bus is held
    for (int i = 0; i < 3; ++i) {
        const int id = arrival_order[i];
        k.spawn("m" + std::to_string(id), [&, id, i] {
            k.waitfor(nanoseconds(100 + i));
            bus.occupy(100, [&](SimTime dt) { k.waitfor(dt); }, id);
            grants.push_back(id);
        });
    }
    k.run();
    EXPECT_EQ(grants, (std::vector<int>{0, 4, 7, 9}));
}

TEST(BusLinkTest, PostsDrainInFifoOrderThenEmpty) {
    // Two tokens posted back-to-back fetch in order; a third fetch fails and
    // must not disturb the destination variable.
    Kernel k;
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), SimTime::zero()}};
    BusLink<int> link{k, bus, "lnk"};
    std::vector<int> got;
    k.spawn("sender", [&] {
        link.post(11, [&](SimTime dt) { k.waitfor(dt); });
        link.post(22, [&](SimTime dt) { k.waitfor(dt); });
    });
    k.run();
    EXPECT_EQ(link.pending(), 2u);
    int v = -1;
    EXPECT_TRUE(link.try_fetch(v));
    got.push_back(v);
    EXPECT_TRUE(link.try_fetch(v));
    got.push_back(v);
    EXPECT_FALSE(link.try_fetch(v));
    EXPECT_EQ(got, (std::vector<int>{11, 22}));
    EXPECT_EQ(v, 22);  // failed fetch left the destination alone
    EXPECT_EQ(link.pending(), 0u);
}

TEST(IntCtrlTest, ThreePendingSourcesServedStrictlyByPriority) {
    // All three lines latch while masked; unmasking delivers every pending
    // interrupt in priority order regardless of raise order.
    Kernel k;
    rtos::RtosModel os{k};
    os.init();
    InterruptController ctrl{k, os, "pic"};
    InterruptLine a{k, "a"}, b{k, "b"}, c{k, "c"};
    std::vector<std::string> served;
    ctrl.attach(a, 9, [&] { served.push_back("a"); });
    ctrl.attach(b, 1, [&] { served.push_back("b"); });
    ctrl.attach(c, 5, [&] { served.push_back("c"); });
    ctrl.mask(a);
    ctrl.mask(b);
    ctrl.mask(c);
    k.spawn("devices", [&] {
        k.waitfor(1_us);
        a.raise();  // lowest priority raised first
        c.raise();
        b.raise();  // highest priority raised last
        k.waitfor(1_us);
        ctrl.unmask(a);
        ctrl.unmask(b);
        ctrl.unmask(c);
    });
    os.start();
    k.run();
    EXPECT_EQ(served, (std::vector<std::string>{"b", "c", "a"}));
    EXPECT_EQ(ctrl.pending(), 0u);
}
