// Randomized property tests of the RTOS model: for every scheduling policy
// and a battery of seeds, generate a random task system (mixed aperiodic and
// periodic tasks, chunked computation, semaphore interactions, interrupts)
// and check the model's global invariants.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::time_literals;

namespace {

struct Scenario {
    SchedPolicy policy;
    std::uint32_t seed;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
    return std::string(to_string(info.param.policy)) + "_seed" +
           std::to_string(info.param.seed);
}

}  // namespace

class RtosProperties : public ::testing::TestWithParam<Scenario> {};

TEST_P(RtosProperties, RandomTaskSystemInvariants) {
    const auto [policy, seed] = GetParam();
    std::mt19937 rng{seed};

    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.policy = policy;
    cfg.quantum = microseconds(rng() % 40 + 5);
    cfg.preemption_granularity =
        (rng() % 2 == 0) ? SimTime::zero() : microseconds(rng() % 30 + 5);
    cfg.tracer = &rec;
    RtosModel os{k, cfg};

    OsSemaphore sem{os, 1 + rng() % 2};
    const int n_aperiodic = 3 + static_cast<int>(rng() % 4);
    const int n_periodic = 1 + static_cast<int>(rng() % 2);

    SimTime total_work;
    std::vector<Task*> tasks;

    for (int i = 0; i < n_aperiodic; ++i) {
        const int prio = static_cast<int>(rng() % 5);
        const int steps = 2 + static_cast<int>(rng() % 5);
        const SimTime step = microseconds(rng() % 80 + 5);
        const bool uses_sem = rng() % 2 == 0;
        total_work += step * static_cast<std::uint64_t>(steps);
        Task* t = os.task_create("ap" + std::to_string(i), TaskType::Aperiodic, {}, {},
                                 prio, microseconds(rng() % 5000 + 500));
        tasks.push_back(t);
        k.spawn(t->name(), [&os, &sem, t, steps, step, uses_sem] {
            os.task_activate(t);
            for (int s = 0; s < steps; ++s) {
                if (uses_sem) {
                    sem.acquire();
                }
                os.time_wait(step);
                if (uses_sem) {
                    sem.release();
                }
            }
            os.task_terminate();
        });
    }

    constexpr int kCycles = 4;
    for (int i = 0; i < n_periodic; ++i) {
        const SimTime period = microseconds(500 + rng() % 500);
        const SimTime wcet = microseconds(rng() % 60 + 10);
        total_work += wcet * kCycles;
        Task* t = os.task_create("per" + std::to_string(i), TaskType::Periodic, period,
                                 wcet, static_cast<int>(rng() % 3));
        tasks.push_back(t);
        k.spawn(t->name(), [&os, t, wcet] {
            os.task_activate(t);
            for (int c = 0; c < kCycles; ++c) {
                os.time_wait(wcet);
                os.task_endcycle();
            }
            os.task_terminate();
        });
    }

    // A periodic interrupt source poking the semaphore.
    k.spawn("irq_src", [&] {
        for (int i = 0; i < 10; ++i) {
            k.waitfor(microseconds(rng() % 200 + 50));
            os.isr_enter("rand_irq");
            sem.release();
            os.interrupt_return();
        }
    });

    os.start();
    k.run();

    // ---- invariants ----
    // 1. Every task ran to completion.
    for (const Task* t : tasks) {
        EXPECT_EQ(t->state(), TaskState::Terminated) << t->name();
        EXPECT_GT(t->stats().exec_time.ns(), 0u) << t->name();
    }
    // 2. Execution is serialized on the single CPU.
    EXPECT_FALSE(rec.has_concurrent_execution("cpu0"));
    // 3. All modeled work was executed, exactly once.
    EXPECT_EQ(os.busy_time(), total_work);
    // 4. The CPU cannot be busy longer than the simulation ran.
    EXPECT_LE(os.busy_time(), k.now());
    // 5. Dispatch accounting is consistent.
    EXPECT_GE(os.stats().dispatches, os.stats().context_switches);
    EXPECT_GE(os.stats().context_switches, static_cast<std::uint64_t>(tasks.size()));
    // 6. No task is left in the RTOS bookkeeping.
    EXPECT_EQ(os.running_task(), nullptr);
    // 7. Trace-derived busy time matches the model's accounting.
    SimTime trace_busy;
    for (const Task* t : tasks) {
        trace_busy += rec.busy_time(t->name());
    }
    EXPECT_EQ(trace_busy, total_work);
}

TEST_P(RtosProperties, ResponseNeverBelowOwnWork) {
    const auto [policy, seed] = GetParam();
    std::mt19937 rng{seed};
    Kernel k;
    RtosConfig cfg;
    cfg.policy = policy;
    cfg.quantum = 20_us;
    RtosModel os{k, cfg};
    std::vector<std::pair<Task*, SimTime>> work;
    for (int i = 0; i < 5; ++i) {
        const SimTime wcet = microseconds(rng() % 90 + 10);
        Task* t = os.task_create("p" + std::to_string(i), TaskType::Periodic, 2_ms, wcet,
                                 static_cast<int>(rng() % 4));
        work.emplace_back(t, wcet);
        k.spawn(t->name(), [&os, t, wcet] {
            os.task_activate(t);
            for (int c = 0; c < 3; ++c) {
                os.time_wait(wcet);
                os.task_endcycle();
            }
            os.task_terminate();
        });
    }
    os.start();
    k.run();
    for (const auto& [t, wcet] : work) {
        EXPECT_GE(t->stats().max_response, wcet) << t->name();
        EXPECT_EQ(t->stats().completions, 3u) << t->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeedMatrix, RtosProperties,
    ::testing::Values(
        Scenario{SchedPolicy::Fifo, 1}, Scenario{SchedPolicy::Fifo, 7},
        Scenario{SchedPolicy::Priority, 1}, Scenario{SchedPolicy::Priority, 7},
        Scenario{SchedPolicy::Priority, 42}, Scenario{SchedPolicy::RoundRobin, 1},
        Scenario{SchedPolicy::RoundRobin, 7}, Scenario{SchedPolicy::RoundRobin, 42},
        Scenario{SchedPolicy::Edf, 1}, Scenario{SchedPolicy::Edf, 7},
        Scenario{SchedPolicy::Edf, 42}, Scenario{SchedPolicy::Rms, 1},
        Scenario{SchedPolicy::Rms, 7}, Scenario{SchedPolicy::Rms, 42}),
    scenario_name);
