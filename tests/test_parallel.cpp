// slm::parallel: the work-stealing deque, the determinism contract of the
// parallel exploration/campaign engines (byte-identical canonical JSON vs.
// the serial engines, at every thread count), and the result cache (warm
// re-runs hit; stale fingerprints and changed configs miss).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/explore.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "parallel/cache.hpp"
#include "parallel/deque.hpp"
#include "parallel/parallel.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

std::string result_json(const explore::ExploreResult& res) {
    std::ostringstream os;
    explore::write_result_json(os, res);
    return std::move(os).str();
}

std::string campaign_json(const fault::CampaignResult& res) {
    std::ostringstream os;
    fault::write_campaign_json(os, res);
    return std::move(os).str();
}

/// Two tasks, two mutexes, crossed acquisition order: deadlocks within one
/// divergence of the default schedule (same hazard as examples/explore_demo).
void build_crossed(explore::Run& run) {
    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    cfg.tracer = &run.trace();
    auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
    os.init();
    auto& m1 = run.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m1");
    auto& m2 = run.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m2");
    rtos::Task* ctrl = os.task_create("ctrl", rtos::TaskType::Aperiodic, {}, {}, 1);
    rtos::Task* comms = os.task_create("comms", rtos::TaskType::Aperiodic, {}, {}, 1);
    run.kernel().spawn("ctrl", [&os, &m1, &m2, ctrl] {
        os.task_activate(ctrl);
        m1.lock();
        os.task_delay(1_ms);
        m2.lock();
        os.time_wait(100_us);
        m2.unlock();
        m1.unlock();
        os.task_terminate();
    });
    run.kernel().spawn("comms", [&os, &m1, &m2, comms] {
        os.task_activate(comms);
        os.task_delay(1_ms);
        m2.lock();
        m1.lock();
        os.time_wait(100_us);
        m1.unlock();
        m2.unlock();
        os.task_terminate();
    });
    os.start();
}

/// A small task set whose shape (task count, priorities, delays) is derived
/// from `seed` only, so every seed is a distinct deterministic model.
explore::Explorer::BuildFn seeded_build(std::uint64_t seed) {
    return [seed](explore::Run& run) {
        rtos::RtosConfig cfg;
        cfg.cpu_name = "CPU0";
        auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
        os.init();
        const unsigned n = 2 + static_cast<unsigned>(seed % 3);
        for (unsigned i = 0; i < n; ++i) {
            const std::string name = "t" + std::to_string(i);
            const unsigned prio = 1 + static_cast<unsigned>((seed >> i) % 2);
            const SimTime delay = milliseconds(1 + (seed + i) % 2);
            const SimTime work = microseconds(100 * (i + 1));
            rtos::Task* t =
                os.task_create(name, rtos::TaskType::Aperiodic, {}, {}, prio);
            run.kernel().spawn(name, [&os, t, delay, work] {
                os.task_activate(t);
                os.task_delay(delay);
                os.time_wait(work);
                os.task_terminate();
            });
        }
        os.start();
    };
}

explore::ExploreResult parallel_explore(const explore::Explorer::BuildFn& build,
                                        const explore::ExploreConfig& cfg,
                                        unsigned jobs,
                                        parallel::ResultCache* cache = nullptr,
                                        const std::string& fingerprint = {},
                                        parallel::ParallelStats* stats = nullptr) {
    parallel::ParallelConfig pc;
    pc.jobs = jobs;
    pc.cache = cache;
    pc.model_fingerprint = fingerprint;
    return parallel::explore(build, cfg, pc, stats);
}

/// Minimal campaign runner: one jittered worker task, canonical CSV out.
fault::CampaignRun run_mini_model(fault::FaultInjector& inj) {
    sim::Kernel k;
    trace::TraceRecorder rec;
    rtos::RtosConfig rc;
    rc.cpu_name = "CPU0";
    rc.tracer = &rec;
    rtos::RtosModel os(k, rc);
    os.init();
    inj.attach(os);
    rtos::Task* t = os.task_create("worker", rtos::TaskType::Aperiodic, {}, {}, 1);
    k.spawn("worker", [&os, t] {
        os.task_activate(t);
        for (int i = 0; i < 5; ++i) {
            os.time_wait(100_us);
        }
        os.task_terminate();
    });
    os.start();
    k.run();
    fault::CampaignRun out;
    std::ostringstream csv;
    rec.write_csv(csv);
    out.trace_csv = std::move(csv).str();
    out.end_time = k.now();
    return out;
}

const char* kMiniPlan = "exec_jitter worker max=50us p=0.5\n";

const fault::CampaignRunFn kMiniRunner = [](fault::FaultInjector& inj,
                                            fault::CampaignRun& out) {
    out = run_mini_model(inj);
};

}  // namespace

// ---- the work-stealing deque ----

TEST(ParallelDeque, OwnerLifoThiefFifo) {
    parallel::WorkDeque<int> d;
    d.push(1);
    d.push(2);
    d.push(3);
    int v = 0;
    ASSERT_TRUE(d.steal(v));
    EXPECT_EQ(v, 1);  // thieves take the oldest item
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, 3);  // the owner takes the newest
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(d.pop(v));
    EXPECT_FALSE(d.steal(v));
}

TEST(ParallelDeque, StealStressEveryItemExactlyOnce) {
    // One owner interleaving pushes and pops, three thieves stealing. Every
    // item must be consumed exactly once: the sum over all consumers equals
    // the sum pushed. Also exercises buffer growth (initial capacity 2).
    constexpr int kItems = 20000;
    parallel::WorkDeque<int> d(2);
    std::atomic<bool> done{false};
    std::atomic<std::int64_t> stolen_sum{0};
    std::atomic<std::int64_t> stolen_count{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < 3; ++t) {
        thieves.emplace_back([&] {
            int v = 0;
            while (!done.load()) {
                if (d.steal(v)) {
                    stolen_sum.fetch_add(v);
                    stolen_count.fetch_add(1);
                } else {
                    std::this_thread::yield();
                }
            }
            while (d.steal(v)) {  // drain the leftovers
                stolen_sum.fetch_add(v);
                stolen_count.fetch_add(1);
            }
        });
    }

    std::int64_t popped_sum = 0;
    std::int64_t popped_count = 0;
    int v = 0;
    for (int i = 1; i <= kItems; ++i) {
        d.push(i);
        if (i % 3 == 0 && d.pop(v)) {  // owner occasionally takes back work
            popped_sum += v;
            ++popped_count;
        }
    }
    while (d.pop(v)) {
        popped_sum += v;
        ++popped_count;
    }
    done.store(true);
    for (std::thread& th : thieves) {
        th.join();
    }

    const std::int64_t expected_sum =
        static_cast<std::int64_t>(kItems) * (kItems + 1) / 2;
    EXPECT_EQ(popped_count + stolen_count.load(), kItems);
    EXPECT_EQ(popped_sum + stolen_sum.load(), expected_sum);
}

// ---- exploration determinism ----

TEST(ParallelExplore, ByteIdenticalToSerialOnFailingModel) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    const std::string serial =
        result_json(explore::Explorer{build_crossed, cfg}.explore());
    EXPECT_NE(serial.find("deadlock"), std::string::npos);
    for (const unsigned jobs : {1U, 2U, 4U, 8U}) {
        const std::string par =
            result_json(parallel_explore(build_crossed, cfg, jobs));
        EXPECT_EQ(par, serial) << "jobs=" << jobs;
    }
}

TEST(ParallelExplore, ByteIdenticalToSerialAcrossSeedsAndThreadCounts) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const explore::Explorer::BuildFn build = seeded_build(seed);
        const std::string serial =
            result_json(explore::Explorer{build, cfg}.explore());
        for (const unsigned jobs : {1U, 2U, 4U, 8U}) {
            const std::string par = result_json(parallel_explore(build, cfg, jobs));
            EXPECT_EQ(par, serial) << "seed=" << seed << " jobs=" << jobs;
        }
    }
}

TEST(ParallelExplore, ViolationListMatchesSerialUnderViolationCap) {
    // Serial stops enumerating once the cap fills; the parallel engine keeps
    // going and truncates at merge. Because serial enumerates in
    // lexicographic order, both end up with the lex-first cap entries — the
    // stats legitimately differ, the violation list must not.
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    cfg.max_violations = 2;
    const auto serial = explore::Explorer{build_crossed, cfg}.explore();
    ASSERT_EQ(serial.violations.size(), 2U);
    const auto par = parallel_explore(build_crossed, cfg, 4);
    ASSERT_EQ(par.violations.size(), 2U);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(par.violations[i].kind, serial.violations[i].kind);
        EXPECT_EQ(par.violations[i].schedule, serial.violations[i].schedule);
        EXPECT_EQ(par.violations[i].detail, serial.violations[i].detail);
        EXPECT_EQ(par.violations[i].time, serial.violations[i].time);
    }
}

TEST(ParallelExplore, PathBudgetCapsTheRun) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 16;
    cfg.max_paths = 7;
    const auto res = parallel_explore([](explore::Run& r) { seeded_build(3)(r); },
                                      cfg, 2);
    EXPECT_EQ(res.stats.paths, 7U);
    EXPECT_FALSE(res.exhausted);
}

TEST(ParallelExplore, StatsSanity) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    parallel::ParallelStats st;
    const auto res =
        parallel_explore(build_crossed, cfg, 2, nullptr, {}, &st);
    EXPECT_EQ(st.workers, 2U);
    // No cache attached and no budget drops: one work item per explored path.
    EXPECT_EQ(st.tasks_executed, res.stats.paths);
    EXPECT_EQ(st.cache_hits + st.cache_misses, 0U);
    EXPECT_GT(st.busy_ns, 0U);
    EXPECT_GT(st.wall_ns, 0U);
    EXPECT_GE(st.utilization(), 0.0);
    EXPECT_LE(st.utilization(), 1.0);
}

// ---- the result cache ----

TEST(ParallelCache, WarmRerunHitsEverythingAndStaysByteIdentical) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    const std::string serial =
        result_json(explore::Explorer{build_crossed, cfg}.explore());

    parallel::ResultCache cache;
    parallel::ParallelStats cold;
    const std::string first =
        result_json(parallel_explore(build_crossed, cfg, 2, &cache, "m1", &cold));
    EXPECT_EQ(first, serial);
    EXPECT_EQ(cold.cache_hits, 0U);
    EXPECT_EQ(cold.cache_misses, cold.tasks_executed);

    parallel::ParallelStats warm;
    const std::string second =
        result_json(parallel_explore(build_crossed, cfg, 2, &cache, "m1", &warm));
    EXPECT_EQ(second, serial);  // incl. the replayed first_failure trace
    EXPECT_EQ(warm.cache_misses, 0U);
    EXPECT_EQ(warm.cache_hits, warm.tasks_executed);
    EXPECT_EQ(warm.first_failure_replays, 1U);
}

TEST(ParallelCache, StaleModelFingerprintMustMiss) {
    // The cache-poisoning guard: a changed model is announced by a changed
    // fingerprint, and every lookup under the new fingerprint must miss even
    // though the plan prefixes are identical.
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    parallel::ResultCache cache;
    (void)parallel_explore(build_crossed, cfg, 2, &cache, "model-v1");
    ASSERT_GT(cache.stats().entries, 0U);

    parallel::ParallelStats st;
    const std::string fresh = result_json(
        parallel_explore(build_crossed, cfg, 2, &cache, "model-v2", &st));
    EXPECT_EQ(st.cache_hits, 0U);
    EXPECT_EQ(st.cache_misses, st.tasks_executed);
    EXPECT_EQ(fresh, result_json(explore::Explorer{build_crossed, cfg}.explore()));
}

TEST(ParallelCache, ChangedExploreConfigMustMiss) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    parallel::ResultCache cache;
    (void)parallel_explore(build_crossed, cfg, 2, &cache, "m1");

    explore::ExploreConfig deeper = cfg;
    deeper.preemption_bound = 2;  // different config digest, same fingerprint
    parallel::ParallelStats st;
    (void)parallel_explore(build_crossed, deeper, 2, &cache, "m1", &st);
    EXPECT_EQ(st.cache_hits, 0U);
}

TEST(ParallelCache, KeySchemaSeparatesModelsConfigsAndPlans) {
    explore::ExploreConfig a;
    explore::ExploreConfig b;
    b.preemption_bound = a.preemption_bound + 1;
    const std::vector<std::uint32_t> p1{0, 1};
    const std::vector<std::uint32_t> p2{0, 2};
    EXPECT_NE(parallel::expansion_cache_key("m", a, p1),
              parallel::expansion_cache_key("m", b, p1));
    EXPECT_NE(parallel::expansion_cache_key("m", a, p1),
              parallel::expansion_cache_key("m", a, p2));
    EXPECT_NE(parallel::expansion_cache_key("m1", a, p1),
              parallel::expansion_cache_key("m2", a, p1));

    const fault::FaultPlan plan_a = *fault::FaultPlan::parse(kMiniPlan);
    fault::FaultPlan plan_b = plan_a;
    plan_b.specs[0].probability = 0.9;
    EXPECT_NE(parallel::campaign_cache_key("m", plan_a, 1),
              parallel::campaign_cache_key("m", plan_b, 1));
    EXPECT_NE(parallel::campaign_cache_key("m", plan_a, 1),
              parallel::campaign_cache_key("m", plan_a, 2));
}

// ---- campaigns ----

TEST(ParallelCampaign, ByteIdenticalToSerialAcrossThreadCounts) {
    const fault::FaultPlan plan = *fault::FaultPlan::parse(kMiniPlan);
    const fault::CampaignConfig cc{1, 12};
    const std::string serial =
        campaign_json(fault::run_campaign(plan, cc, kMiniRunner));
    for (const unsigned jobs : {1U, 2U, 4U, 8U}) {
        parallel::ParallelConfig pc;
        pc.jobs = jobs;
        const std::string par =
            campaign_json(parallel::run_campaign(plan, cc, kMiniRunner, pc));
        EXPECT_EQ(par, serial) << "jobs=" << jobs;
    }
}

TEST(ParallelCampaign, WarmCacheServesRunsByteIdentical) {
    const fault::FaultPlan plan = *fault::FaultPlan::parse(kMiniPlan);
    const fault::CampaignConfig cc{7, 8};
    parallel::ResultCache cache;
    parallel::ParallelConfig pc;
    pc.jobs = 2;
    pc.cache = &cache;
    pc.model_fingerprint = "mini-v1";

    parallel::ParallelStats cold;
    const std::string first =
        campaign_json(parallel::run_campaign(plan, cc, kMiniRunner, pc, &cold));
    EXPECT_EQ(cold.cache_hits, 0U);
    EXPECT_EQ(cold.cache_misses, 8U);

    parallel::ParallelStats warm;
    const std::string second =
        campaign_json(parallel::run_campaign(plan, cc, kMiniRunner, pc, &warm));
    EXPECT_EQ(warm.cache_hits, 8U);
    EXPECT_EQ(warm.cache_misses, 0U);
    EXPECT_EQ(second, first);
    EXPECT_EQ(first, campaign_json(fault::run_campaign(plan, cc, kMiniRunner)));
}

// ---- observability ----

TEST(ParallelObs, CountersExportThroughTheRegistry) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    parallel::ParallelStats st;
    (void)parallel_explore(build_crossed, cfg, 2, nullptr, {}, &st);

    obs::Registry reg;
    parallel::register_parallel_stats(reg, st);
    std::ostringstream prom;
    reg.write_prometheus(prom);
    const std::string text = std::move(prom).str();
    for (const char* name :
         {"slm_parallel_workers", "slm_parallel_tasks_executed_total",
          "slm_parallel_tasks_stolen_total", "slm_parallel_cache_hits_total",
          "slm_parallel_cache_misses_total", "slm_parallel_utilization"}) {
        EXPECT_NE(text.find(name), std::string::npos) << name;
    }
    const obs::Gauge* executed =
        reg.find_gauge("slm_parallel_tasks_executed_total");
    ASSERT_NE(executed, nullptr);
    EXPECT_EQ(executed->value(), static_cast<double>(st.tasks_executed));
}
