#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/guest_os.hpp"
#include "iss/isa.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::iss;
using namespace slm::time_literals;

// ---- ISA ----

class EncodeRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(EncodeRoundTrip, EncodeDecodeIsIdentity) {
    Instr i;
    i.op = GetParam();
    i.rd = 3;
    i.ra = 7;
    i.rb = 15;
    i.imm = -123456;
    EXPECT_EQ(decode(encode(i)), i);
}

INSTANTIATE_TEST_SUITE_P(AllOps, EncodeRoundTrip,
                         ::testing::Values(Op::Nop, Op::Ldi, Op::Mov, Op::Add, Op::Sub,
                                           Op::Mul, Op::Mac, Op::And, Op::Or, Op::Xor,
                                           Op::Shl, Op::Shr, Op::Div, Op::Rem, Op::Addi,
                                           Op::Ld, Op::St, Op::Beq, Op::Bne, Op::Blt,
                                           Op::Bge, Op::Jmp, Op::Jal, Op::Jr, Op::Sys,
                                           Op::Halt),
                         [](const ::testing::TestParamInfo<Op>& info) {
                             return to_string(info.param);
                         });

TEST(Isa, BadOpcodeDecodesToHalt) {
    EXPECT_EQ(decode(0xFF00000000000000ull).op, Op::Halt);
}

TEST(Isa, CycleCostsAreModeled) {
    EXPECT_EQ(cycle_cost(Op::Add), 1);
    EXPECT_EQ(cycle_cost(Op::Mac), 4);
    EXPECT_EQ(cycle_cost(Op::Ld), 3);
    EXPECT_EQ(cycle_cost(Op::Beq), 2);
    EXPECT_EQ(cycle_cost(Op::Sys), 10);
}

TEST(Isa, Disassemble) {
    EXPECT_EQ(disassemble(Instr{Op::Addi, 1, 1, 0, -1}), "addi r1, r1, -1");
    EXPECT_EQ(disassemble(Instr{Op::Mac, 3, 2, 2, 0}), "mac r3, r2, r2");
    EXPECT_EQ(disassemble(Instr{Op::Halt, 0, 0, 0, 0}), "halt");
}

// ---- assembler ----

TEST(Assembler, BasicProgram) {
    const auto r = assemble(R"(
        ; compute 10 + 32
        ldi r1, 10
        ldi r2, 0x20
        add r3, r1, r2
        halt
    )");
    ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
    ASSERT_EQ(r.program.code.size(), 4u);
    EXPECT_EQ(r.program.code[0], (Instr{Op::Ldi, 1, 0, 0, 10}));
    EXPECT_EQ(r.program.code[1], (Instr{Op::Ldi, 2, 0, 0, 32}));
    EXPECT_EQ(r.program.code[2], (Instr{Op::Add, 3, 1, 2, 0}));
    EXPECT_EQ(r.program.code[3].op, Op::Halt);
}

TEST(Assembler, LabelsResolveForwardAndBack) {
    const auto r = assemble(R"(
        start:
          ldi r1, 3
        loop:
          addi r1, r1, -1
          bne r1, r0, loop
          jmp end
          nop
        end:
          halt
    )");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.program.label("start"), 0);
    EXPECT_EQ(r.program.label("loop"), 1);
    EXPECT_EQ(r.program.label("end"), 5);
    EXPECT_EQ(r.program.code[2].imm, 1);  // bne -> loop
    EXPECT_EQ(r.program.code[3].imm, 5);  // jmp -> end
}

TEST(Assembler, RegisterAliases) {
    const auto r = assemble("mov sp, lr\n");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.program.code[0], (Instr{Op::Mov, 14, 15, 0, 0}));
}

TEST(Assembler, StOperandOrder) {
    const auto r = assemble("st r4, 8, r5\n");
    ASSERT_TRUE(r.ok());
    // st base, offset, src
    EXPECT_EQ(r.program.code[0], (Instr{Op::St, 0, 4, 5, 8}));
}

TEST(Assembler, ErrorUnknownMnemonic) {
    const auto r = assemble("frobnicate r1, r2\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("unknown mnemonic"), std::string::npos);
    EXPECT_EQ(r.errors[0].line, 1);
}

TEST(Assembler, ErrorBadRegister) {
    const auto r = assemble("mov r1, r99\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("bad register"), std::string::npos);
}

TEST(Assembler, ErrorOperandCount) {
    const auto r = assemble("add r1, r2\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("expects 3 operands"), std::string::npos);
}

TEST(Assembler, ErrorUndefinedLabel) {
    const auto r = assemble("jmp nowhere\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("undefined label"), std::string::npos);
}

TEST(Assembler, ErrorDuplicateLabel) {
    const auto r = assemble("x:\nnop\nx:\nnop\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("duplicate label"), std::string::npos);
}

TEST(Assembler, DisassembleReassembles) {
    const auto first = assemble(R"(
        ldi r1, 160
        ldi r2, 0
        loop:
        mac r2, r1, r1
        addi r1, r1, -1
        bne r1, r0, loop
        sys 5
        halt
    )");
    ASSERT_TRUE(first.ok());
    std::string listing;
    for (const Instr& i : first.program.code) {
        listing += disassemble(i) + "\n";
    }
    const auto second = assemble(listing);
    ASSERT_TRUE(second.ok()) << listing;
    EXPECT_EQ(first.program.code, second.program.code);
}

// ---- CPU ----

namespace {
Cpu make_cpu(const std::string& asm_text, std::size_t mem_words = 1024) {
    const auto r = assemble(asm_text);
    EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
    return Cpu{r.program.code, mem_words};
}
}  // namespace

TEST(CpuTest, ArithmeticAndHalt) {
    Cpu cpu = make_cpu("ldi r1, 6\nldi r2, 7\nmul r3, r1, r2\nhalt\n");
    const RunResult r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Halt);
    EXPECT_EQ(cpu.reg(3), 42);
    EXPECT_EQ(cpu.retired(), 4u);
}

TEST(CpuTest, MacLoopComputesSumOfSquares) {
    Cpu cpu = make_cpu(R"(
        ldi r1, 5
        ldi r2, 0
        loop:
        mac r2, r1, r1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    (void)cpu.run(100000);
    EXPECT_EQ(cpu.reg(2), 25 + 16 + 9 + 4 + 1);
}

TEST(CpuTest, LoadStore) {
    Cpu cpu = make_cpu(R"(
        ldi r1, 100
        ldi r2, 77
        st r1, 3, r2
        ld r3, r1, 3
        halt
    )");
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.load(103), 77);
    EXPECT_EQ(cpu.reg(3), 77);
}

TEST(CpuTest, BranchesSignedComparison) {
    Cpu cpu = make_cpu(R"(
        ldi r1, -5
        ldi r2, 3
        blt r1, r2, less
        ldi r3, 0
        halt
        less:
        ldi r3, 1
        halt
    )");
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.reg(3), 1);
}

TEST(CpuTest, JalAndJrImplementCalls) {
    Cpu cpu = make_cpu(R"(
        jal lr, func
        halt
        func:
        ldi r5, 99
        jr lr
    )");
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.reg(5), 99);
    EXPECT_EQ(cpu.pc(), 1);  // halted at the instruction after the call
}

TEST(CpuTest, SysTrapsWithServiceNumber) {
    Cpu cpu = make_cpu("ldi r1, 4\nsys 3\nhalt\n");
    RunResult r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Sys);
    EXPECT_EQ(r.sys_no, 3);
    // pc points past the SYS: resuming continues cleanly.
    r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Halt);
}

TEST(CpuTest, CyclesAccumulatePerCost) {
    Cpu cpu = make_cpu("ldi r1, 1\nmac r2, r1, r1\nhalt\n");
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.cycles(), 1u + 4u + 1u);
}

TEST(CpuTest, UntakenBranchIsCheaper) {
    Cpu cpu1 = make_cpu("ldi r1, 1\nbeq r1, r0, 0\nhalt\n");  // untaken
    (void)cpu1.run(1000);
    Cpu cpu2 = make_cpu("ldi r1, 0\nbeq r1, r0, 2\nhalt\n");  // taken to halt
    (void)cpu2.run(1000);
    EXPECT_EQ(cpu1.cycles(), 1u + 1u + 1u);
    EXPECT_EQ(cpu2.cycles(), 1u + 2u + 1u);
}

TEST(CpuTest, DivisionAndRemainder) {
    Cpu cpu = make_cpu(R"(
        ldi r1, -37
        ldi r2, 5
        div r3, r1, r2
        rem r4, r1, r2
        halt
    )");
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.reg(3), -7);  // C++ truncation semantics
    EXPECT_EQ(cpu.reg(4), -2);
}

TEST(CpuTest, DivisionByZeroFaults) {
    Cpu cpu = make_cpu("ldi r1, 9\nldi r2, 0\ndiv r3, r1, r2\nhalt\n");
    const RunResult r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Fault);
    EXPECT_NE(cpu.fault_message().find("division by zero"), std::string::npos);
}

TEST(CpuTest, DivisionOverflowIsDefined) {
    Cpu cpu = make_cpu(R"(
        ldi r1, -2147483648
        ldi r2, -1
        div r3, r1, r2
        rem r4, r1, r2
        halt
    )");
    const RunResult r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Halt);
    EXPECT_EQ(cpu.reg(3), std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(cpu.reg(4), 0);
}

TEST(CpuTest, MemoryFaultTraps) {
    Cpu cpu = make_cpu("ldi r1, 100000\nld r2, r1, 0\nhalt\n", 1024);
    const RunResult r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Fault);
    EXPECT_NE(cpu.fault_message().find("out of range"), std::string::npos);
}

TEST(CpuTest, PcFaultTraps) {
    Cpu cpu = make_cpu("jmp 999\n");
    const RunResult r = cpu.run(1000);
    EXPECT_EQ(r.trap, Trap::Fault);
}

TEST(CpuTest, RunStopsAtCycleBudget) {
    Cpu cpu = make_cpu(R"(
        loop:
        addi r1, r1, 1
        jmp loop
    )");
    const RunResult r = cpu.run(100);
    EXPECT_EQ(r.trap, Trap::None);
    EXPECT_GE(static_cast<std::uint64_t>(r.cycles), 100u);
}

TEST(CpuTest, ContextSaveRestore) {
    Cpu cpu = make_cpu("ldi r1, 11\nhalt\nldi r1, 22\nhalt\n");
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.reg(1), 11);
    Context snapshot = cpu.context();
    Context other;
    other.pc = 2;
    cpu.load_context(other);
    (void)cpu.run(1000);
    EXPECT_EQ(cpu.reg(1), 22);
    cpu.load_context(snapshot);
    EXPECT_EQ(cpu.reg(1), 11);
}

// ---- GuestKernel ----

namespace {
/// Two tasks incrementing private memory cells with yields in between.
const char* kYieldProgram = R"(
    ; task A at 0: bump mem[0] three times, yielding after each
    taskA:
      ldi r1, 0
    a_loop:
      ld r2, r1, 0
      addi r2, r2, 1
      st r1, 0, r2
      sys 1          ; yield
      ldi r3, 3
      ld r2, r1, 0
      blt r2, r3, a_loop
      sys 2          ; exit
    taskB:
      ldi r1, 1
    b_loop:
      ld r2, r1, 0
      addi r2, r2, 1
      st r1, 0, r2
      sys 1
      ldi r3, 3
      ld r2, r1, 0
      blt r2, r3, b_loop
      sys 2
)";
}  // namespace

TEST(GuestKernelTest, TasksRunAndExit) {
    const auto prog = assemble(kYieldProgram);
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.create_task("A", 5, prog.program.label("taskA"), 900);
    gk.create_task("B", 5, prog.program.label("taskB"), 800);
    while (!gk.all_exited()) {
        ASSERT_GT(gk.run_slice(10000), 0u);
    }
    EXPECT_EQ(cpu.load(0), 3);
    EXPECT_EQ(cpu.load(1), 3);
    EXPECT_GT(gk.stats().context_switches, 2u);
    EXPECT_GT(gk.stats().syscalls, 0u);
}

TEST(GuestKernelTest, PriorityRunsHighFirst) {
    // Two instances of a pure-compute task; the higher-priority one (B) must
    // finish first even though A was created first.
    const auto prog = assemble(R"(
        task:
          ldi r1, 1000
        loop:
          addi r1, r1, -1
          bne r1, r0, loop
          ldi r1, 7          ; notify host: who finished
          mov r2, r4
          sys 5
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    GuestTask* a = gk.create_task("A", 5, prog.program.label("task"), 900);
    GuestTask* b = gk.create_task("B", 1, prog.program.label("task"), 800);
    a->ctx.regs[4] = 1;
    b->ctx.regs[4] = 2;
    std::vector<std::int32_t> finish_order;
    gk.set_host_notify([&](std::int32_t, std::int32_t who) {
        finish_order.push_back(who);
    });
    while (!gk.all_exited()) {
        (void)gk.run_slice(100000);
    }
    ASSERT_EQ(finish_order.size(), 2u);
    EXPECT_EQ(finish_order[0], 2);  // B (priority 1) first
    EXPECT_EQ(finish_order[1], 1);
}

TEST(GuestKernelTest, SemaphoreBlocksAndHostPostWakes) {
    const auto prog = assemble(R"(
        task:
          ldi r1, 9       ; sem id
          sys 3           ; sem_wait -> blocks
          ldi r1, 42
          ldi r2, 0
          sys 5           ; notify host
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.sem_init(9, 0);
    gk.create_task("T", 1, prog.program.label("task"), 900);
    bool notified = false;
    gk.set_host_notify([&](std::int32_t a, std::int32_t) { notified = (a == 42); });

    (void)gk.run_slice(100000);
    EXPECT_TRUE(gk.idle());  // blocked on the semaphore
    EXPECT_FALSE(notified);

    gk.sem_post_from_host(9);
    while (!gk.all_exited()) {
        (void)gk.run_slice(100000);
    }
    EXPECT_TRUE(notified);
}

TEST(GuestKernelTest, SemWaitConsumesAvailableToken) {
    const auto prog = assemble("ldi r1, 2\nsys 3\nsys 2\n");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.sem_init(2, 1);
    gk.create_task("T", 1, 0, 900);
    while (!gk.all_exited()) {
        ASSERT_GT(gk.run_slice(100000), 0u);
    }
}

TEST(GuestKernelTest, KernelCyclesAreCharged) {
    const auto prog = assemble("sys 1\nsys 2\n");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernelConfig cfg;
    cfg.syscall_cycles = 100;
    cfg.context_switch_cycles = 500;
    GuestKernel gk{cpu, cfg};
    gk.create_task("T", 1, 0, 900);
    std::uint64_t total = 0;
    while (!gk.all_exited()) {
        total += gk.run_slice(100000);
    }
    EXPECT_GT(gk.stats().kernel_cycles, 0u);
    EXPECT_GE(total, gk.stats().kernel_cycles);
}

TEST(GuestKernelTest, QuantumRotatesEqualPriorities) {
    // Two equal-priority compute tasks notifying the host every lap. With a
    // small quantum their notifications interleave; without, the first task
    // runs all its laps before the second starts.
    const auto prog = assemble(R"(
        task:
          ldi r9, 3
        lap:
          ldi r6, 200
        burn:
          addi r6, r6, -1
          bne r6, r0, burn
          ldi r1, 1
          mov r2, r4     ; task id preloaded in r4
          sys 5
          addi r9, r9, -1
          bne r9, r0, lap
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    const auto run = [&](std::uint64_t quantum) {
        Cpu cpu{prog.program.code};
        GuestKernelConfig cfg;
        cfg.quantum_cycles = quantum;
        GuestKernel gk{cpu, cfg};
        GuestTask* a = gk.create_task("A", 5, prog.program.label("task"), 900);
        GuestTask* b = gk.create_task("B", 5, prog.program.label("task"), 800);
        a->ctx.regs[4] = 1;
        b->ctx.regs[4] = 2;
        std::vector<std::int32_t> order;
        gk.set_host_notify([&](std::int32_t, std::int32_t who) {
            order.push_back(who);
        });
        while (!gk.all_exited()) {
            (void)gk.run_slice(100000);
        }
        return order;
    };
    EXPECT_EQ(run(0), (std::vector<std::int32_t>{1, 1, 1, 2, 2, 2}));
    EXPECT_EQ(run(400), (std::vector<std::int32_t>{1, 2, 1, 2, 1, 2}));
}

TEST(GuestKernelTest, QuantumNeverRotatesToLowerPriority) {
    const auto prog = assemble(R"(
        task:
          ldi r6, 2000
        burn:
          addi r6, r6, -1
          bne r6, r0, burn
          ldi r1, 1
          mov r2, r4
          sys 5
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernelConfig cfg;
    cfg.quantum_cycles = 100;  // expires many times during the burn
    GuestKernel gk{cpu, cfg};
    GuestTask* hi = gk.create_task("hi", 1, prog.program.label("task"), 900);
    GuestTask* lo = gk.create_task("lo", 9, prog.program.label("task"), 800);
    hi->ctx.regs[4] = 1;
    lo->ctx.regs[4] = 2;
    std::vector<std::int32_t> order;
    gk.set_host_notify([&](std::int32_t, std::int32_t who) { order.push_back(who); });
    while (!gk.all_exited()) {
        (void)gk.run_slice(100000);
    }
    EXPECT_EQ(order, (std::vector<std::int32_t>{1, 2}));  // hi finishes first
}

TEST(GuestKernelTest, SleepBlocksForCycles) {
    const auto prog = assemble(R"(
        task:
          ldi r1, 1
          ldi r2, 0
          sys 5          ; notify: start
          ldi r1, 5000
          sys 6          ; sleep 5000 cycles
          ldi r1, 2
          ldi r2, 0
          sys 5          ; notify: woke
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.create_task("T", 1, prog.program.label("task"), 900);
    std::uint64_t start_cycles = 0, wake_cycles = 0;
    gk.set_host_notify([&](std::int32_t code, std::int32_t) {
        if (code == 1) {
            start_cycles = gk.now_cycles();
        } else {
            wake_cycles = gk.now_cycles();
        }
    });
    while (!gk.all_exited()) {
        if (gk.idle() && gk.has_sleepers()) {
            gk.skip_idle_cycles(gk.cycles_until_wake());
        }
        (void)gk.run_slice(100000);
    }
    EXPECT_GE(wake_cycles - start_cycles, 5000u);
    EXPECT_LT(wake_cycles - start_cycles, 5600u);  // + syscall/dispatch overhead
}

TEST(GuestKernelTest, SleepersWakeInDeadlineOrder) {
    const auto prog = assemble(R"(
        task:
          mov r1, r4     ; per-task sleep length preloaded in r4
          sys 6
          ldi r1, 3
          mov r2, r5     ; per-task id in r5
          sys 5
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    GuestTask* a = gk.create_task("A", 1, prog.program.label("task"), 900);
    GuestTask* b = gk.create_task("B", 2, prog.program.label("task"), 800);
    a->ctx.regs[4] = 9000;  // A sleeps longer
    a->ctx.regs[5] = 1;
    b->ctx.regs[4] = 2000;
    b->ctx.regs[5] = 2;
    std::vector<std::int32_t> order;
    gk.set_host_notify([&](std::int32_t, std::int32_t who) { order.push_back(who); });
    while (!gk.all_exited()) {
        if (gk.idle() && gk.has_sleepers()) {
            gk.skip_idle_cycles(gk.cycles_until_wake());
        }
        (void)gk.run_slice(100000);
    }
    EXPECT_EQ(order, (std::vector<std::int32_t>{2, 1}));  // shorter sleep first
}

// ---- IssPe: SLDL integration ----

TEST(IssPeTest, ExecutionAdvancesSimulatedTime) {
    // 1000-iteration countdown: 1 (ldi) + 1000*(1 addi + 2/1 bne) + exit.
    const auto prog = assemble(R"(
        ldi r1, 1000
        loop:
        addi r1, r1, -1
        bne r1, r0, loop
        sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.create_task("T", 1, 0, 900);
    sim::Kernel k;
    IssPe::Config cfg;
    cfg.cycle_time = 10_ns;
    IssPe pe{k, "iss0", cpu, gk, cfg};
    k.run();
    EXPECT_TRUE(gk.all_exited());
    // cycles: ldi 1 + 1000 * (addi 1 + bne) where bne is 2 taken / 1 untaken,
    // + sys 10 + syscall overhead 50 + initial dispatch 180.
    const std::uint64_t cycles = 1 + 999 * 3 + 2 + 10 + 50 + 180;
    EXPECT_EQ(k.now(), nanoseconds(cycles * 10));
    EXPECT_EQ(pe.busy_time(), k.now());
}

TEST(IssPeTest, IdlePeWakesOnIrq) {
    const auto prog = assemble(R"(
        ldi r1, 3
        sys 3      ; wait on sem 3
        ldi r1, 1
        ldi r2, 0
        sys 5      ; host notify
        sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.sem_init(3, 0);
    gk.create_task("driver", 1, 0, 900);
    sim::Kernel k;
    IssPe pe{k, "iss0", cpu, gk, IssPe::Config{10_ns, 2000}};
    SimTime notified_at;
    gk.set_host_notify([&](std::int32_t, std::int32_t) { notified_at = k.now(); });
    k.spawn("device", [&] {
        k.waitfor(50_us);
        pe.post_irq(3);
    });
    k.run();
    EXPECT_TRUE(gk.all_exited());
    // Woken at 50 us + a few hundred cycles of kernel/task work.
    EXPECT_GE(notified_at, 50_us);
    EXPECT_LT(notified_at, 60_us);
}

TEST(IssPeTest, PeriodicGuestTaskViaSleep) {
    // A "blinky" guest task: notify the host, then sleep 100k cycles (1 ms at
    // 10 ns/cycle). The simulated notification times must advance by ~1 ms.
    const auto prog = assemble(R"(
        task:
          ldi r9, 4
        loop:
          ldi r1, 1
          mov r2, r9
          sys 5
          ldi r1, 100000
          sys 6
          addi r9, r9, -1
          bne r9, r0, loop
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.create_task("blinky", 1, prog.program.label("task"), 900);
    sim::Kernel k;
    IssPe pe{k, "iss0", cpu, gk, IssPe::Config{10_ns, 2000}};
    std::vector<SimTime> ticks;
    gk.set_host_notify([&](std::int32_t, std::int32_t) { ticks.push_back(k.now()); });
    k.run();
    EXPECT_TRUE(gk.all_exited());
    ASSERT_EQ(ticks.size(), 4u);
    for (std::size_t i = 1; i < ticks.size(); ++i) {
        const SimTime gap = ticks[i] - ticks[i - 1];
        EXPECT_GE(gap, 1_ms);
        EXPECT_LT(gap, 1_ms + 50_us) << "tick " << i;  // + slice quantization
    }
}

TEST(IssPeTest, IrqWakesSleepingSystemEarly) {
    // While the only ready work is a long guest sleep, an interrupt must be
    // served without waiting for the sleep deadline.
    const auto prog = assemble(R"(
        sleeper:
          ldi r1, 1000000  ; 10 ms at 10 ns/cycle
          sys 6
          sys 2
        driver:
          ldi r1, 7
          sys 3            ; wait on sem 7
          ldi r1, 9
          ldi r2, 0
          sys 5            ; notify host
          sys 2
    )");
    ASSERT_TRUE(prog.ok());
    Cpu cpu{prog.program.code};
    GuestKernel gk{cpu};
    gk.sem_init(7, 0);
    gk.create_task("sleeper", 5, prog.program.label("sleeper"), 900);
    gk.create_task("driver", 1, prog.program.label("driver"), 800);
    sim::Kernel k;
    IssPe pe{k, "iss0", cpu, gk, IssPe::Config{10_ns, 2000}};
    SimTime notified_at;
    gk.set_host_notify([&](std::int32_t, std::int32_t) { notified_at = k.now(); });
    k.spawn("device", [&] {
        k.waitfor(2_ms);  // well before the sleeper's 10 ms deadline
        pe.post_irq(7);
    });
    k.run();
    EXPECT_TRUE(gk.all_exited());
    EXPECT_GE(notified_at, 2_ms);
    EXPECT_LT(notified_at, 2_ms + 100_us);
}
