#include "sys/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "sim/kernel.hpp"
#include "sys/elaborate.hpp"
#include "sys/sweep.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::time_literals;

namespace {

// A minimal well-formed triple: stimulus -> producer -> consumer, producer on
// PE0, consumer on PE1, stimulus and cross-PE channel on the bus.
struct Triple {
    sys::AppSpec app;
    sys::PlatformSpec platform;
    sys::MappingSpec mapping;
};

Triple make_pipeline(std::uint64_t jobs = 3) {
    Triple t;
    t.app.name = "pipe";
    t.app.tasks = {sys::TaskSpec{"producer", 100_us, {}, {}, jobs, 1},
                   sys::TaskSpec{"consumer", 50_us, {}, {}, jobs, 1}};
    t.app.channels = {sys::ChannelSpec{"in", "", "producer", 4, 0},
                      sys::ChannelSpec{"out", "producer", "consumer", 8, 0}};
    t.app.stimuli = {sys::StimulusSpec{"src", "in", 1_ms, jobs}};
    t.app.latency_deadline = 10_ms;
    t.platform.name = "duo";
    t.platform.pes = {sys::PeSpec{"PE0"}, sys::PeSpec{"PE1"}};
    t.platform.buses = {sys::BusSpec{"bus", 100_ns, 10_ns}};
    t.mapping.name = "split";
    t.mapping.bindings = {sys::TaskBinding{"producer", "PE0", 1},
                          sys::TaskBinding{"consumer", "PE1", 1}};
    t.mapping.routes = {sys::ChannelRoute{"in", "bus"}, sys::ChannelRoute{"out", "bus"}};
    return t;
}

bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
    return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
        return e.find(needle) != std::string::npos;
    });
}

}  // namespace

// ---- spec validation ----

TEST(SpecTest, WellFormedTripleValidates) {
    const Triple t = make_pipeline();
    EXPECT_TRUE(sys::validate(t.app, t.platform, t.mapping).empty());
}

TEST(SpecTest, LookupsFindByNameOrReturnNull) {
    const Triple t = make_pipeline();
    ASSERT_NE(t.app.task("producer"), nullptr);
    EXPECT_EQ(t.app.task("producer")->exec_cost, 100_us);
    EXPECT_EQ(t.app.task("nope"), nullptr);
    ASSERT_NE(t.app.channel("out"), nullptr);
    EXPECT_EQ(t.app.channel("out")->message_bytes, 8u);
    ASSERT_NE(t.platform.pe("PE1"), nullptr);
    EXPECT_EQ(t.platform.bus("none"), nullptr);
    ASSERT_NE(t.mapping.binding("consumer"), nullptr);
    EXPECT_EQ(t.mapping.binding("consumer")->pe, "PE1");
    ASSERT_NE(t.mapping.route("in"), nullptr);
    EXPECT_EQ(t.mapping.route("ghost"), nullptr);
}

TEST(SpecTest, ValidateFlagsUnboundTask) {
    Triple t = make_pipeline();
    t.mapping.bindings.pop_back();  // consumer unbound
    EXPECT_TRUE(mentions(sys::validate(t.app, t.platform, t.mapping), "consumer"));
}

TEST(SpecTest, ValidateFlagsUnknownPe) {
    Triple t = make_pipeline();
    t.mapping.bindings[0].pe = "PE9";
    EXPECT_TRUE(mentions(sys::validate(t.app, t.platform, t.mapping), "PE9"));
}

TEST(SpecTest, ValidateFlagsUnroutedChannel) {
    Triple t = make_pipeline();
    t.mapping.routes.pop_back();  // "out" unrouted
    EXPECT_TRUE(mentions(sys::validate(t.app, t.platform, t.mapping), "out"));
}

TEST(SpecTest, ValidateFlagsIntraRouteAcrossPes) {
    Triple t = make_pipeline();
    t.mapping.routes[1].bus = "";  // "out" intra-PE but endpoints span PE0/PE1
    EXPECT_TRUE(mentions(sys::validate(t.app, t.platform, t.mapping), "out"));
}

TEST(SpecTest, ValidateFlagsStimulusChannelNotOnBus) {
    Triple t = make_pipeline();
    t.mapping.routes[0].bus = "";  // stimulus channel must ride a bus
    EXPECT_FALSE(sys::validate(t.app, t.platform, t.mapping).empty());
}

TEST(SpecTest, ValidateFlagsDuplicateAndDegenerateSpecs) {
    Triple t = make_pipeline();
    t.app.tasks.push_back(t.app.tasks.front());      // duplicate task name
    t.app.tasks[1].jobs = 0;                         // degenerate job count
    t.platform.pes[0].speed_num = 0;                 // non-positive speed
    const std::vector<std::string> errors = sys::validate(t.app, t.platform, t.mapping);
    EXPECT_GE(errors.size(), 3u);
}

TEST(SpecTest, MappingSummaryListsBindingsInOrder) {
    const Triple t = make_pipeline();
    EXPECT_EQ(t.mapping.summary(), "producer@1->PE0 consumer@1->PE1");
}

// ---- elaboration ----

TEST(ElaborateTest, BuildsPesBusesAndRuns) {
    const Triple t = make_pipeline(3);
    sys::System system{t.app, t.platform, t.mapping};
    ASSERT_NE(system.pe("PE0"), nullptr);
    ASSERT_NE(system.pe("PE1"), nullptr);
    ASSERT_NE(system.bus("bus"), nullptr);
    EXPECT_EQ(system.pe("nope"), nullptr);
    system.run();
    const sys::SystemMetrics m = system.metrics();
    EXPECT_EQ(m.jobs_completed, 6u);  // 3 producer + 3 consumer jobs
    EXPECT_EQ(m.latency_samples, 3u);
    EXPECT_EQ(m.latency_misses, 0u);
    EXPECT_GT(m.latency_max, SimTime::zero());
    ASSERT_EQ(m.pes.size(), 2u);
    ASSERT_EQ(m.buses.size(), 1u);
    // Every stimulus token and every producer->consumer message crossed the bus.
    EXPECT_EQ(m.buses[0].transfers, 6u);
    EXPECT_EQ(m.buses[0].bytes, 3u * 4 + 3u * 8);
}

TEST(ElaborateTest, IntraPeRouteUsesOsQueue) {
    Triple t = make_pipeline(2);
    t.mapping.bindings[1].pe = "PE0";  // co-locate; "out" becomes an OS queue
    t.mapping.routes[1].bus = "";
    sys::System system{t.app, t.platform, t.mapping};
    system.run();
    const sys::SystemMetrics m = system.metrics();
    EXPECT_EQ(m.jobs_completed, 4u);
    EXPECT_EQ(m.buses[0].transfers, 2u);  // only the stimulus channel crossed
}

TEST(ElaborateTest, CustomBehaviorSeesJobIndexAndPeName) {
    const Triple t = make_pipeline(2);
    sys::System system{t.app, t.platform, t.mapping};
    std::vector<std::uint64_t> jobs;
    std::string pe_name;
    system.set_behavior("consumer", [&](sys::TaskCtx& ctx) {
        const sys::Token tok = ctx.recv("out");
        ctx.exec(ctx.spec().exec_cost);
        ctx.record_latency(ctx.now() - tok.born);
        jobs.push_back(ctx.job());
        pe_name = ctx.pe_name();
    });
    system.run();
    EXPECT_EQ(jobs, (std::vector<std::uint64_t>{0, 1}));
    EXPECT_EQ(pe_name, "PE1");
    EXPECT_EQ(system.latencies().size(), 2u);
}

TEST(ElaborateTest, LatencyDeadlineMissesAreCounted) {
    Triple t = make_pipeline(2);
    t.app.latency_deadline = 1_ns;  // everything misses
    sys::System system{t.app, t.platform, t.mapping};
    system.run();
    EXPECT_EQ(system.metrics().latency_misses, 2u);
}

// ---- heterogeneous speed scaling ----

// Acceptance criterion: scaling a PE's speed by k scales the charged
// execution time by exactly k — at the OsCore level, not approximately.
TEST(SpeedScalingTest, ExecTimeScalesExactlyByK) {
    for (const std::uint32_t k : {2u, 3u, 7u}) {
        // Speed k/1: nominal work dt charges dt / k.
        {
            Kernel kern;
            rtos::RtosConfig cfg;
            cfg.speed_num = k;
            arch::ProcessingElement pe{kern, "fast", cfg};
            pe.add_task("t", 1, [&] { pe.os().time_wait(nanoseconds(420'000 * k)); });
            pe.start();
            kern.run();
            EXPECT_EQ(kern.now(), nanoseconds(420'000)) << "speed " << k << "/1";
        }
        // Speed 1/k: nominal work dt charges dt * k.
        {
            Kernel kern;
            rtos::RtosConfig cfg;
            cfg.speed_den = k;
            arch::ProcessingElement pe{kern, "slow", cfg};
            pe.add_task("t", 1, [&] { pe.os().time_wait(nanoseconds(420'000)); });
            pe.start();
            kern.run();
            EXPECT_EQ(kern.now(), nanoseconds(420'000ull * k)) << "speed 1/" << k;
        }
    }
}

TEST(SpeedScalingTest, ScaledExecIsExactRationalArithmetic) {
    Kernel kern;
    rtos::RtosConfig cfg;
    cfg.speed_num = 3;
    cfg.speed_den = 2;  // 1.5x: charges 2/3 of nominal
    arch::ProcessingElement pe{kern, "pe", cfg};
    EXPECT_EQ(pe.os().scaled_exec(nanoseconds(900)), nanoseconds(600));
    EXPECT_EQ(pe.os().scaled_exec(SimTime::zero()), SimTime::zero());
    EXPECT_DOUBLE_EQ(pe.speed(), 1.5);
}

TEST(SpeedScalingTest, IoWaitNeverScales) {
    // Bus occupancy / external I/O has a fixed wall duration: io_wait on a
    // speed-4 core must still elapse the nominal time.
    Kernel kern;
    rtos::RtosConfig cfg;
    cfg.speed_num = 4;
    arch::ProcessingElement pe{kern, "fast", cfg};
    SimTime io_done, exec_done;
    pe.add_task("t", 1, [&] {
        pe.os().io_wait(80_us);
        io_done = kern.now();
        pe.os().time_wait(80_us);
        exec_done = kern.now();
    });
    pe.start();
    kern.run();
    EXPECT_EQ(io_done, 80_us);                  // unscaled
    EXPECT_EQ(exec_done - io_done, 20_us);      // scaled by 4
}

TEST(SpeedScalingTest, ElaboratedSystemChargesScaledCost) {
    // The same app on a speed-2 PE finishes its exec phases in half the time;
    // with zero-cost transport the end-to-end latency halves exactly.
    Triple t = make_pipeline(1);
    t.platform.buses[0] = sys::BusSpec{"bus", SimTime::zero(), SimTime::zero()};
    SimTime latency[2];
    for (int i = 0; i < 2; ++i) {
        Triple v = t;
        if (i == 1) {
            v.platform.pes[0].speed_num = 2;
            v.platform.pes[1].speed_num = 2;
        }
        sys::System system{v.app, v.platform, v.mapping};
        system.run();
        ASSERT_EQ(system.latencies().size(), 1u);
        latency[i] = system.latencies().front();
    }
    EXPECT_EQ(latency[0], 150_us);  // 100 us producer + 50 us consumer
    EXPECT_EQ(latency[1], 75_us);   // exactly halved
}

// ---- mapping enumeration ----

TEST(SweepTest, EnumerationCoversAssignmentSpaceDeterministically) {
    const Triple t = make_pipeline();
    sys::EnumOptions opts;
    opts.default_bus = "bus";
    const std::vector<sys::MappingSpec> a =
        sys::enumerate_mappings(t.app, t.platform, opts);
    const std::vector<sys::MappingSpec> b =
        sys::enumerate_mappings(t.app, t.platform, opts);
    ASSERT_EQ(a.size(), 4u);  // 2 PEs ^ 2 tasks
    std::set<std::string> summaries;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, "m" + std::to_string(i));
        EXPECT_EQ(a[i].summary(), b[i].summary());  // stable order
        summaries.insert(a[i].summary());
        EXPECT_TRUE(sys::validate(t.app, t.platform, a[i]).empty()) << a[i].name;
    }
    EXPECT_EQ(summaries.size(), 4u);  // all distinct
}

TEST(SweepTest, EnumerationAppliesColocationRule) {
    const Triple t = make_pipeline();
    sys::EnumOptions opts;
    opts.default_bus = "bus";
    for (const sys::MappingSpec& m : sys::enumerate_mappings(t.app, t.platform, opts)) {
        EXPECT_EQ(m.route("in")->bus, "bus");  // stimulus channel always on bus
        const bool colocated =
            m.binding("producer")->pe == m.binding("consumer")->pe;
        EXPECT_EQ(m.route("out")->bus, colocated ? "" : "bus") << m.summary();
    }
}

TEST(SweepTest, PinnedTasksAreExcludedFromTheSweep) {
    const Triple t = make_pipeline();
    sys::EnumOptions opts;
    opts.default_bus = "bus";
    opts.pinned = {sys::TaskBinding{"producer", "PE0", 1}};
    const std::vector<sys::MappingSpec> ms =
        sys::enumerate_mappings(t.app, t.platform, opts);
    ASSERT_EQ(ms.size(), 2u);  // only the consumer sweeps
    for (const sys::MappingSpec& m : ms) {
        EXPECT_EQ(m.binding("producer")->pe, "PE0");
    }
}

TEST(SweepTest, PriorityPermutationsMultiplyCandidates) {
    const Triple t = make_pipeline();
    sys::EnumOptions opts;
    opts.default_bus = "bus";
    opts.sweep_priorities = true;
    const std::vector<sys::MappingSpec> ms =
        sys::enumerate_mappings(t.app, t.platform, opts);
    // Split assignments have one task per PE (1! * 1! = 1 variant); co-located
    // assignments have two on one PE (2! = 2 variants): 2*1 + 2*2 = 6.
    EXPECT_EQ(ms.size(), 6u);
    std::set<std::string> names;
    for (const sys::MappingSpec& m : ms) {
        names.insert(m.name);
        EXPECT_TRUE(sys::validate(t.app, t.platform, m).empty()) << m.name;
    }
    EXPECT_EQ(names.size(), ms.size());  // variant names stay unique
}

// ---- sweep evaluation + determinism ----

TEST(SweepTest, RunSweepFillsEnumerationOrderSlots) {
    const Triple t = make_pipeline(2);
    sys::EnumOptions opts;
    opts.default_bus = "bus";
    const std::vector<sys::MappingSpec> ms =
        sys::enumerate_mappings(t.app, t.platform, opts);
    const sys::SweepResult res = sys::run_sweep(t.app, t.platform, ms);
    ASSERT_EQ(res.candidates.size(), ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
        EXPECT_EQ(res.candidates[i].mapping.name, ms[i].name);
        EXPECT_EQ(res.candidates[i].metrics.jobs_completed, 4u);
    }
    const std::vector<std::size_t> ranking = res.ranking();
    ASSERT_EQ(ranking.size(), ms.size());
    std::set<std::size_t> unique(ranking.begin(), ranking.end());
    EXPECT_EQ(unique.size(), ms.size());  // a permutation of the indices
}

TEST(SweepTest, SweepJsonIsByteIdenticalAcrossJobCounts) {
    const Triple t = make_pipeline(2);
    sys::EnumOptions opts;
    opts.default_bus = "bus";
    const std::vector<sys::MappingSpec> ms =
        sys::enumerate_mappings(t.app, t.platform, opts);
    std::string serial;
    for (const unsigned jobs : {1u, 2u, 4u}) {
        sys::SweepConfig cfg;
        cfg.jobs = jobs;
        parallel::ParallelStats stats;
        const sys::SweepResult res =
            sys::run_sweep(t.app, t.platform, ms, cfg, {}, &stats);
        std::ostringstream json;
        sys::write_sweep_json(json, res);
        EXPECT_NE(json.str().find("\"schema\":\"slm-sweep-result-v1\""),
                  std::string::npos);
        if (jobs == 1) {
            serial = json.str();
            EXPECT_EQ(stats.workers, 1u);
        } else {
            EXPECT_EQ(json.str(), serial) << "jobs=" << jobs;
        }
    }
}

// ---- latency-quantile edges ----
// metrics() computes nearest-rank percentiles (ceil(p/100 * n) - 1); the
// degenerate sample counts are where an off-by-one would hide.

TEST(MetricsQuantileTest, NoSamplesYieldsZeroQuantiles) {
    const Triple t = make_pipeline();
    sys::System system{t.app, t.platform, t.mapping};
    const sys::SystemMetrics m = system.metrics();  // never run: no samples
    EXPECT_EQ(m.latency_samples, 0u);
    EXPECT_EQ(m.latency_p50, SimTime::zero());
    EXPECT_EQ(m.latency_p95, SimTime::zero());
    EXPECT_EQ(m.latency_max, SimTime::zero());
    EXPECT_EQ(m.latency_misses, 0u);
}

TEST(MetricsQuantileTest, SingleSampleIsEveryQuantile) {
    const Triple t = make_pipeline();
    sys::System system{t.app, t.platform, t.mapping};
    system.record_latency(7_ms);
    const sys::SystemMetrics m = system.metrics();
    EXPECT_EQ(m.latency_samples, 1u);
    EXPECT_EQ(m.latency_p50, 7_ms);
    EXPECT_EQ(m.latency_p95, 7_ms);
    EXPECT_EQ(m.latency_max, 7_ms);
}

TEST(MetricsQuantileTest, AllEqualSamplesCollapseEveryQuantile) {
    const Triple t = make_pipeline();
    sys::System system{t.app, t.platform, t.mapping};
    for (int i = 0; i < 17; ++i) {
        system.record_latency(3_ms);
    }
    const sys::SystemMetrics m = system.metrics();
    EXPECT_EQ(m.latency_samples, 17u);
    EXPECT_EQ(m.latency_p50, 3_ms);
    EXPECT_EQ(m.latency_p95, 3_ms);
    EXPECT_EQ(m.latency_max, 3_ms);
    EXPECT_EQ(m.latency_misses, 0u);  // deadline 10ms: equal samples, no miss
}

TEST(MetricsQuantileTest, QuantilesAreOrderedOnDistinctSamples) {
    const Triple t = make_pipeline();
    sys::System system{t.app, t.platform, t.mapping};
    for (int i = 1; i <= 100; ++i) {
        system.record_latency(milliseconds(static_cast<std::uint64_t>(i)));
    }
    const sys::SystemMetrics m = system.metrics();
    EXPECT_EQ(m.latency_p50, 50_ms);   // nearest-rank: ceil(0.50*100) = 50th
    EXPECT_EQ(m.latency_p95, 95_ms);
    EXPECT_EQ(m.latency_max, 100_ms);
    EXPECT_LE(m.latency_p50, m.latency_p95);
    EXPECT_LE(m.latency_p95, m.latency_max);
}
