#include "vocoder/codec.hpp"
#include "vocoder/iss_gen.hpp"
#include "vocoder/models.hpp"
#include "vocoder/timing.hpp"

#include <gtest/gtest.h>

#include "trace/trace.hpp"

using namespace slm;
using namespace slm::vocoder;
using namespace slm::time_literals;

// ---- speech source ----

TEST(SpeechSourceTest, DeterministicForSeed) {
    SpeechSource a{7}, b{7};
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(a.next_frame(), b.next_frame());
    }
}

TEST(SpeechSourceTest, SeedsDiffer) {
    SpeechSource a{1}, b{2};
    EXPECT_NE(a.next_frame(), b.next_frame());
}

TEST(SpeechSourceTest, SamplesWithin16BitRange) {
    SpeechSource src{3};
    for (int f = 0; f < 20; ++f) {
        const Frame fr = src.next_frame();
        for (const std::int32_t s : fr.samples) {
            EXPECT_GE(s, -32768);
            EXPECT_LE(s, 32767);
        }
    }
}

TEST(SpeechSourceTest, SignalHasEnergy) {
    SpeechSource src{1};
    const Frame fr = src.next_frame();
    std::int64_t energy = 0;
    for (const std::int32_t s : fr.samples) {
        energy += static_cast<std::int64_t>(s) * s;
    }
    EXPECT_GT(energy, 1'000'000);
}

// ---- codec ----

TEST(CodecTest, RoundTripSnr) {
    SpeechSource src{1};
    Encoder enc;
    Decoder dec;
    double min_snr = 1e9;
    for (int f = 0; f < 25; ++f) {
        const Frame in = src.next_frame();
        const Frame out = dec.decode(enc.encode(in));
        min_snr = std::min(min_snr, snr_db(in, out));
    }
    EXPECT_GT(min_snr, 8.0);  // quantized-residual LPC: modest but real fidelity
}

TEST(CodecTest, EncodeIsDeterministic) {
    SpeechSource src1{5}, src2{5};
    Encoder e1, e2;
    for (int f = 0; f < 3; ++f) {
        const EncodedFrame a = e1.encode(src1.next_frame());
        const EncodedFrame b = e2.encode(src2.next_frame());
        EXPECT_EQ(a.lpc_q12, b.lpc_q12);
        EXPECT_EQ(a.residual, b.residual);
        EXPECT_EQ(a.shift, b.shift);
        EXPECT_EQ(a.checksum, b.checksum);
    }
}

TEST(CodecTest, ChecksumMatchesFrame) {
    SpeechSource src{9};
    Encoder enc;
    const Frame in = src.next_frame();
    EXPECT_EQ(enc.encode(in).checksum, frame_checksum(in));
}

TEST(CodecTest, ChecksumSensitiveToData) {
    SpeechSource src{9};
    Frame a = src.next_frame();
    Frame b = a;
    b.samples[42] ^= 1;
    EXPECT_NE(frame_checksum(a), frame_checksum(b));
}

TEST(CodecTest, LpcCoefficientsBounded) {
    SpeechSource src{1};
    Encoder enc;
    for (int f = 0; f < 10; ++f) {
        const EncodedFrame e = enc.encode(src.next_frame());
        for (const std::int32_t c : e.lpc_q12) {
            EXPECT_LE(std::abs(c), 32767);
        }
    }
}

TEST(CodecTest, OpCountsAreMacDominated) {
    SpeechSource src{1};
    Encoder enc;
    (void)enc.encode(src.next_frame());
    const OpCounts& ops = enc.op_counts();
    // autocorrelation (11 lags x ~160) + residual (160 x 10) dominate.
    EXPECT_GT(ops.macs, 3000u);
    EXPECT_GT(ops.loads, ops.stores);
}

TEST(CodecTest, SilentFrameIsStable) {
    Encoder enc;
    Decoder dec;
    const Frame silent{};  // all zeros: degenerate autocorrelation
    const Frame out = dec.decode(enc.encode(silent));
    for (const std::int32_t s : out.samples) {
        EXPECT_LE(std::abs(s), 64);
    }
}

// ---- guest image ----

TEST(GuestImageTest, AssemblesWithEntries) {
    const GuestImage img = build_vocoder_guest(3);
    EXPECT_FALSE(img.program.code.empty());
    EXPECT_NE(img.driver_entry, img.encoder_entry);
    EXPECT_NE(img.encoder_entry, img.decoder_entry);
    EXPECT_GT(img.listing_lines, 500);  // unrolled DSP-style inner loops
}

TEST(GuestImageTest, FrameCountParameterizesImage) {
    const GuestImage a = build_vocoder_guest(3);
    const GuestImage b = build_vocoder_guest(7);
    EXPECT_EQ(a.program.code.size(), b.program.code.size());  // only constants differ
    EXPECT_NE(a.listing, b.listing);
}

// ---- the three models (small frame counts keep tests fast) ----

TEST(VocoderModels, UnscheduledDelayIsAlgorithmic) {
    VocoderConfig cfg;
    cfg.frames = 6;
    const VocoderResult r = run_vocoder_unscheduled(cfg);
    // Fully concurrent behaviors: the transcoding delay is exactly encode +
    // decode WCET (the paper's optimistic 9.7 ms figure).
    const SimTime expect = cycles_to_time(kEncodeWcetCycles + kDecodeWcetCycles);
    EXPECT_EQ(r.avg_transcoding_delay, expect);
    EXPECT_EQ(r.max_transcoding_delay, expect);
    EXPECT_EQ(r.context_switches, 0u);
    EXPECT_TRUE(r.data_ok);
    EXPECT_GT(r.min_snr_db, 8.0);
}

TEST(VocoderModels, ArchitectureSerializesAndInflatesDelay) {
    VocoderConfig cfg;
    cfg.frames = 6;
    trace::TraceRecorder rec;
    cfg.tracer = &rec;
    const VocoderResult r = run_vocoder_architecture(cfg);
    EXPECT_FALSE(rec.has_concurrent_execution("DSP"));
    EXPECT_GT(r.context_switches, 0u);
    EXPECT_TRUE(r.data_ok);
    EXPECT_GT(r.min_snr_db, 8.0);
    const SimTime unsched = cycles_to_time(kEncodeWcetCycles + kDecodeWcetCycles);
    EXPECT_GT(r.avg_transcoding_delay, unsched);
}

TEST(VocoderModels, ImplementationDataIntegrity) {
    VocoderConfig cfg;
    cfg.frames = 4;
    const VocoderResult r = run_vocoder_implementation(cfg);
    EXPECT_TRUE(r.data_ok);
    EXPECT_GT(r.context_switches, 0u);
    EXPECT_EQ(r.frames, 4u);
}

TEST(VocoderModels, Table1DelayOrdering) {
    // The paper's qualitative result: the unscheduled model is optimistic,
    // the architecture model pessimistic, the implementation in between.
    VocoderConfig cfg;
    cfg.frames = 8;
    const VocoderResult u = run_vocoder_unscheduled(cfg);
    const VocoderResult a = run_vocoder_architecture(cfg);
    const VocoderResult i = run_vocoder_implementation(cfg);
    EXPECT_LT(u.avg_transcoding_delay, i.avg_transcoding_delay);
    EXPECT_LT(i.avg_transcoding_delay, a.avg_transcoding_delay);
    // All three deliver every frame.
    EXPECT_TRUE(u.data_ok);
    EXPECT_TRUE(a.data_ok);
    EXPECT_TRUE(i.data_ok);
}

TEST(VocoderModels, ImplementationTimingNearActualCycles) {
    VocoderConfig cfg;
    cfg.frames = 4;
    const VocoderResult r = run_vocoder_implementation(cfg);
    // Per-frame processing is calibrated to ~93% of the 9.7 ms WCET path plus
    // driver interference and kernel overhead: expect 9-11 ms.
    EXPECT_GT(r.avg_transcoding_delay, 8'500_us);
    EXPECT_LT(r.avg_transcoding_delay, 11'500_us);
}

TEST(VocoderModels, ModelLocShapeMatchesPaper) {
    // Table 1 LoC row shape: impl >> arch > unsched.
    VocoderConfig cfg;
    cfg.frames = 1;
    const VocoderResult u = run_vocoder_unscheduled(cfg);
    const VocoderResult a = run_vocoder_architecture(cfg);
    const VocoderResult i = run_vocoder_implementation(cfg);
    EXPECT_GT(a.model_loc, u.model_loc);
    EXPECT_GT(i.model_loc, 2 * a.model_loc);
}

TEST(VocoderModels, TwoPeMappingOffloadsDecoder) {
    VocoderConfig cfg;
    cfg.frames = 6;
    trace::TraceRecorder rec;
    cfg.tracer = &rec;
    const VocoderResult one = run_vocoder_architecture(cfg);
    cfg.tracer = nullptr;
    const TwoPeResult two = run_vocoder_two_pe(cfg);
    EXPECT_TRUE(two.overall.data_ok);
    EXPECT_GT(two.overall.min_snr_db, 8.0);
    // The transcode chain is serial, so the latency stays in the same band
    // (within 10%) — the second PE buys utilization headroom, not latency.
    const double ratio =
        static_cast<double>(two.overall.avg_transcoding_delay.ns()) /
        static_cast<double>(one.avg_transcoding_delay.ns());
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
    // Work splits across the PEs: decoder cycles live on DSP1 only.
    EXPECT_EQ(two.pe1_busy, cycles_to_time(kDecodeWcetCycles) * 6);
    EXPECT_GT(two.pe0_busy, two.pe1_busy);
    // One bus transfer per frame.
    EXPECT_EQ(two.bus_transfers, 6u);
}

TEST(VocoderModels, TwoPeTraceSerializedPerPe) {
    VocoderConfig cfg;
    cfg.frames = 4;
    trace::TraceRecorder rec;
    cfg.tracer = &rec;
    const TwoPeResult two = run_vocoder_two_pe(cfg);
    EXPECT_TRUE(two.overall.data_ok);
    EXPECT_FALSE(rec.has_concurrent_execution("DSP0"));
    EXPECT_FALSE(rec.has_concurrent_execution("DSP1"));
}

TEST(VocoderModels, SimDurationCoversAllFrames) {
    VocoderConfig cfg;
    cfg.frames = 5;
    const VocoderResult r = run_vocoder_unscheduled(cfg);
    // Last frame ready at ~frames * 20 ms; decoding adds ~10 ms.
    EXPECT_GE(r.sim_duration, kFramePeriod * 5);
    EXPECT_LT(r.sim_duration, kFramePeriod * 5 + 20_ms);
}

TEST(VocoderModels, GranularityAblationTightensInputLatency) {
    // Paper §4.3: preemption accuracy is bounded by the delay-model
    // granularity. With one coarse chunk per time_wait, a sub-frame interrupt
    // arriving mid-encode waits until the end of the encoder's 6.5 ms step;
    // with 500 us chunks the driver preempts at the next chunk boundary.
    VocoderConfig coarse;
    coarse.frames = 6;
    VocoderConfig fine = coarse;
    fine.rtos.preemption_granularity = 500_us;
    const VocoderResult rc = run_vocoder_architecture(coarse);
    const VocoderResult rf = run_vocoder_architecture(fine);
    EXPECT_TRUE(rc.data_ok);
    EXPECT_TRUE(rf.data_ok);
    // Coarse model: worst input latency is in the multi-ms range.
    EXPECT_GT(rc.max_input_latency, 2_ms);
    // Fine model: bounded by chunk size + copy + switch overheads.
    EXPECT_LT(rf.max_input_latency, rc.max_input_latency / 2);
    // Finer modeling attributes interference landing near the decode boundary
    // more faithfully, so the fine-grained delay estimate is >= the coarse one.
    EXPECT_GE(rf.avg_transcoding_delay, rc.avg_transcoding_delay);
}
