#include "explore/explore.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/analysis.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

// The demo scenario (examples/explore_demo.cpp): two equal-priority tasks
// wake from task_delay at the same instant; crossed mutex acquisition
// deadlocks only when the wakeup tie goes the non-default way.
void build_crossed(explore::Run& run, bool fixed_lock_order) {
    rtos::RtosConfig cfg;
    cfg.cpu_name = "CPU0";
    cfg.tracer = &run.trace();
    auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
    os.init();
    auto& m1 = run.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m1");
    auto& m2 = run.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m2");
    rtos::Task* a = os.task_create("ctrl", rtos::TaskType::Aperiodic, {}, {}, 1);
    rtos::Task* b = os.task_create("comms", rtos::TaskType::Aperiodic, {}, {}, 1);
    run.kernel().spawn("ctrl", [&os, &m1, &m2, a] {
        os.task_activate(a);
        m1.lock();
        os.task_delay(1_ms);
        m2.lock();
        os.time_wait(100_us);
        m2.unlock();
        m1.unlock();
        os.task_terminate();
    });
    run.kernel().spawn("comms", [&os, &m1, &m2, b, fixed_lock_order] {
        os.task_activate(b);
        os.task_delay(1_ms);
        rtos::OsMutex& first = fixed_lock_order ? m1 : m2;
        rtos::OsMutex& second = fixed_lock_order ? m2 : m1;
        first.lock();
        second.lock();
        os.time_wait(100_us);
        second.unlock();
        first.unlock();
        os.task_terminate();
    });
    os.start();
}

void build_three_tasks(explore::Run& run) {
    rtos::RtosConfig cfg;
    cfg.tracer = &run.trace();
    auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
    os.init();
    for (const char* name : {"t0", "t1", "t2"}) {
        rtos::Task* t = os.task_create(name, rtos::TaskType::Aperiodic, {}, {}, 1);
        run.kernel().spawn(name, [&os, t] {
            os.task_activate(t);
            os.time_wait(1_ms);
            os.task_terminate();
        });
    }
    os.start();
}

std::string csv_of(const trace::TraceRecorder& rec) {
    std::ostringstream os;
    rec.write_csv(os);
    return os.str();
}

}  // namespace

// ---- Schedule (de)serialization ----

TEST(Schedule, RoundTripsThroughString) {
    explore::Schedule s;
    s.choices = {0, 0, 2, 0, 1};
    EXPECT_EQ(s.to_string(), "5|2:2,4:1");
    EXPECT_EQ(s.divergences(), 2u);
    const auto back = explore::Schedule::parse(s.to_string());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
}

TEST(Schedule, AllDefaultIsJustLength) {
    explore::Schedule s;
    s.choices = {0, 0, 0};
    EXPECT_EQ(s.to_string(), "3|");
    const auto back = explore::Schedule::parse("3|");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
}

TEST(Schedule, ParseRejectsMalformedInput) {
    EXPECT_FALSE(explore::Schedule::parse("").has_value());
    EXPECT_FALSE(explore::Schedule::parse("nope").has_value());
    EXPECT_FALSE(explore::Schedule::parse("3|9:1").has_value());  // index >= len
    EXPECT_FALSE(explore::Schedule::parse("3|1:0").has_value());  // default entry
    EXPECT_FALSE(explore::Schedule::parse("3|1").has_value());    // no colon
}

TEST(Schedule, ParseReportsWhatIsWrong) {
    const auto err_for = [](const std::string& s) {
        std::string err;
        EXPECT_FALSE(explore::Schedule::parse(s, &err).has_value()) << s;
        EXPECT_FALSE(err.empty()) << s;
        return err;
    };
    EXPECT_NE(err_for("nope").find("missing '|'"), std::string::npos);
    EXPECT_NE(err_for("abc|").find("not a number"), std::string::npos);
    EXPECT_NE(err_for("3|1").find("no ':'"), std::string::npos);
    EXPECT_NE(err_for("3|x:1").find("index"), std::string::npos);
    EXPECT_NE(err_for("3|1:y").find("choice"), std::string::npos);
    EXPECT_NE(err_for("3|9:1").find("past the declared length"), std::string::npos);
    EXPECT_NE(err_for("3|1:0").find("redundant"), std::string::npos);
}

// ---- serialized-trace replay: negative paths ----

TEST(Explorer, ReplayTraceRejectsMalformedInput) {
    explore::Explorer ex{build_three_tasks};
    const auto out = ex.replay_trace("not-a-trace");
    EXPECT_FALSE(out.ok());
    EXPECT_FALSE(out.result.has_value());  // malformed input: nothing was run
    EXPECT_NE(out.error.find("malformed decision trace"), std::string::npos)
        << out.error;
}

TEST(Explorer, ReplayTraceRejectsTruncatedInput) {
    explore::Explorer ex{build_three_tasks};
    const auto out = ex.replay_trace("4|2:");  // cut off mid-entry
    EXPECT_FALSE(out.ok());
    EXPECT_FALSE(out.result.has_value());
    EXPECT_NE(out.error.find("malformed decision trace"), std::string::npos)
        << out.error;
}

TEST(Explorer, ReplayTraceReportsOutOfRangeChoice) {
    // "4|1:7" parses, but no dispatch tie among three tasks ever has seven
    // candidates: the run degrades to the default at point 1 and says so.
    explore::Explorer ex{build_three_tasks};
    const auto out = ex.replay_trace("4|1:7");
    EXPECT_FALSE(out.ok());
    ASSERT_TRUE(out.result.has_value());  // the run still happened...
    EXPECT_TRUE(out.result->diverged);    // ...but not on the planned path
    EXPECT_NE(out.error.find("point 1"), std::string::npos) << out.error;
    EXPECT_NE(out.error.find("out of range"), std::string::npos) << out.error;
}

TEST(Explorer, ReplayTraceRoundTripsCleanly) {
    explore::Explorer ex{build_three_tasks};
    auto base = ex.replay(explore::Schedule{});
    const auto out = ex.replay_trace(base.schedule.to_string());
    ASSERT_TRUE(out.ok()) << out.error;
    EXPECT_FALSE(out.result->diverged);
    EXPECT_EQ(csv_of(out.result->trace), csv_of(base.trace));
}

// ---- deadlock discovery ----

TEST(Explorer, FindsCrossAcquisitionDeadlock) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    explore::Explorer ex{[](explore::Run& r) { build_crossed(r, false); }, cfg};
    const auto res = ex.explore();

    ASSERT_FALSE(res.violations.empty());
    const explore::Violation& v = res.violations.front();
    EXPECT_EQ(v.kind, explore::Violation::Kind::Deadlock);
    // The report names the cycle through the watched mutexes.
    EXPECT_NE(v.detail.find("cyclic mutex wait"), std::string::npos) << v.detail;
    EXPECT_NE(v.detail.find("m1"), std::string::npos) << v.detail;
    EXPECT_NE(v.detail.find("m2"), std::string::npos) << v.detail;
    // One divergence from the default schedule suffices.
    EXPECT_EQ(v.schedule.divergences(), 1u);
    // The default path (explored first) is clean: more than one path ran.
    EXPECT_GT(res.stats.paths, 1u);
    ASSERT_TRUE(res.first_failure.has_value());
    EXPECT_FALSE(res.first_failure->trace.records().empty());
}

TEST(Explorer, DefaultScheduleNeverDeadlocks) {
    // preemption_bound 0 pins every run to the deterministic schedule.
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 0;
    explore::Explorer ex{[](explore::Run& r) { build_crossed(r, false); }, cfg};
    const auto res = ex.explore();
    EXPECT_TRUE(res.violations.empty());
    EXPECT_TRUE(res.exhausted);
    EXPECT_EQ(res.stats.paths, 1u);
}

TEST(Explorer, LockOrderFixExploresClean) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 2;
    explore::Explorer ex{[](explore::Run& r) { build_crossed(r, true); }, cfg};
    const auto res = ex.explore();
    EXPECT_TRUE(res.violations.empty());
    EXPECT_TRUE(res.exhausted);
}

TEST(Explorer, RandomWalksFindTheSameDeadlock) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    cfg.seed = 7;
    explore::Explorer ex{[](explore::Run& r) { build_crossed(r, false); }, cfg};
    const auto res = ex.random_walks(32);
    ASSERT_FALSE(res.violations.empty());
    EXPECT_EQ(res.violations.front().kind, explore::Violation::Kind::Deadlock);
}

// ---- determinism and replay ----

TEST(Explorer, SamePriorityTieBreakIsDeterministic) {
    // Two uncontrolled runs of the same build produce byte-for-byte equal
    // traces: the FIFO tie-break is stable, which is what makes the all-zero
    // schedule (and therefore every decision trace) replayable.
    auto run_once = [] {
        explore::Run run{sim::KernelConfig{}};
        build_three_tasks(run);
        run.kernel().run();
        return csv_of(run.trace());
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Explorer, ReplayReproducesTraceByteForByte) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    explore::Explorer ex{[](explore::Run& r) { build_crossed(r, false); }, cfg};
    const auto res = ex.explore();
    ASSERT_TRUE(res.first_failure.has_value());

    const auto replayed = ex.replay(res.first_failure->schedule);
    ASSERT_FALSE(replayed.violations.empty());
    EXPECT_EQ(replayed.violations.front().kind,
              res.first_failure->violations.front().kind);
    EXPECT_EQ(replayed.schedule, res.first_failure->schedule);
    EXPECT_EQ(csv_of(replayed.trace), csv_of(res.first_failure->trace));
}

TEST(Explorer, ReplayFromParsedStringMatches) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 1;
    explore::Explorer ex{[](explore::Run& r) { build_crossed(r, false); }, cfg};
    const auto res = ex.explore();
    ASSERT_FALSE(res.violations.empty());

    const auto parsed =
        explore::Schedule::parse(res.violations.front().schedule.to_string());
    ASSERT_TRUE(parsed.has_value());
    const auto replayed = ex.replay(*parsed);
    ASSERT_FALSE(replayed.violations.empty());
    EXPECT_EQ(replayed.violations.front().kind, explore::Violation::Kind::Deadlock);
}

// ---- exhaustive coverage ----

TEST(Explorer, ExhaustsThreeTaskSpaceWithoutPruning) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 16;  // larger than any path's choice count
    explore::Explorer ex{[](explore::Run& r) { build_three_tasks(r); }, cfg};
    const auto res = ex.explore();
    EXPECT_TRUE(res.exhausted);
    EXPECT_EQ(res.stats.pruned, 0u);
    EXPECT_EQ(res.stats.truncated, 0u);
    EXPECT_TRUE(res.violations.empty());
    // More than one interleaving exists and all were visited.
    EXPECT_GT(res.stats.paths, 1u);
    EXPECT_GT(res.stats.choice_points, 0u);
}

TEST(Explorer, BoundZeroVisitsExactlyTheDefaultPath) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 0;
    explore::Explorer ex{[](explore::Run& r) { build_three_tasks(r); }, cfg};
    const auto res = ex.explore();
    EXPECT_EQ(res.stats.paths, 1u);
    EXPECT_TRUE(res.exhausted);
    EXPECT_GT(res.stats.pruned, 0u);  // the skipped alternatives are counted
}

// ---- other safety properties ----

TEST(Explorer, ReportsLostSignalsWhenOptedIn) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 0;
    cfg.check_lost_signals = true;
    explore::Explorer ex{[](explore::Run& r) {
        auto& os = r.make<rtos::RtosModel>(r.kernel(), rtos::RtosConfig{});
        os.init();
        rtos::OsEvent* evt = os.event_new("go");
        rtos::Task* t = os.task_create("t", rtos::TaskType::Aperiodic, {}, {}, 1);
        r.kernel().spawn("t", [&os, evt, t] {
            os.task_activate(t);
            os.event_notify(evt);  // nobody is waiting: the signal is lost
            os.task_terminate();
        });
        os.start();
    }, cfg};
    const auto res = ex.explore();
    ASSERT_FALSE(res.violations.empty());
    EXPECT_EQ(res.violations.front().kind, explore::Violation::Kind::LostSignal);
}

TEST(Explorer, ReportsExpectPredicateFailures) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 0;
    explore::Explorer ex{[](explore::Run& r) {
        build_three_tasks(r);
        r.expect("always-false", [] { return false; });
    }, cfg};
    const auto res = ex.explore();
    ASSERT_FALSE(res.violations.empty());
    EXPECT_EQ(res.violations.front().kind,
              explore::Violation::Kind::PropertyFailure);
    EXPECT_EQ(res.violations.front().detail, "always-false");
}

TEST(Explorer, AssertionFailuresBecomeViolationsNotAborts) {
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 0;
    explore::Explorer ex{[](explore::Run& r) {
        auto& os = r.make<rtos::RtosModel>(r.kernel(), rtos::RtosConfig{});
        os.init();
        auto& m = r.make<rtos::OsMutex>(os, rtos::OsMutex::Protocol::None, "m");
        rtos::Task* t = os.task_create("t", rtos::TaskType::Aperiodic, {}, {}, 1);
        r.kernel().spawn("t", [&os, &m, t] {
            os.task_activate(t);
            m.lock();
            m.lock();  // SLM_ASSERT: OsMutex is not recursive
            os.task_terminate();
        });
        os.start();
    }, cfg};
    const auto res = ex.explore();
    ASSERT_FALSE(res.violations.empty());
    EXPECT_EQ(res.violations.front().kind,
              explore::Violation::Kind::AssertionFailure);
    EXPECT_NE(res.violations.front().detail.find("not recursive"),
              std::string::npos);
}

TEST(Explorer, DeadlineMissesSurfaceUnderHorizon) {
    // One periodic task whose execution exceeds its period: every cycle
    // completes late. Bound the run with a hyperperiod-derived horizon.
    std::vector<analysis::PeriodicTaskSpec> specs{{"late", 1_ms, 2_ms, {}, 0}};
    explore::ExploreConfig cfg;
    cfg.preemption_bound = 0;
    cfg.check_deadline_misses = true;
    cfg.check_deadlock = false;  // the task never terminates; that's fine here
    cfg.horizon = analysis::hyperperiod(specs) * 4;
    explore::Explorer ex{[](explore::Run& r) {
        auto& os = r.make<rtos::RtosModel>(r.kernel(), rtos::RtosConfig{});
        os.init();
        rtos::Task* t =
            os.task_create("late", rtos::TaskType::Periodic, 1_ms, 2_ms, 0);
        r.kernel().spawn("late", [&os, t] {
            os.task_activate(t);
            for (;;) {
                os.time_wait(2_ms);  // overruns the 1 ms period
                os.task_endcycle();
            }
        });
        os.start();
    }, cfg};
    const auto res = ex.explore();
    ASSERT_FALSE(res.violations.empty());
    EXPECT_EQ(res.violations.front().kind, explore::Violation::Kind::DeadlineMiss);
    EXPECT_NE(res.violations.front().detail.find("late"), std::string::npos);
}

// ---- analysis::hyperperiod ----

TEST(Hyperperiod, LcmOfPeriods) {
    std::vector<analysis::PeriodicTaskSpec> specs{
        {"a", 4_ms, 1_ms, {}, 0},
        {"b", 6_ms, 1_ms, {}, 1},
        {"c", 10_ms, 1_ms, {}, 2},
    };
    EXPECT_EQ(analysis::hyperperiod(specs), 60_ms);
}

TEST(Hyperperiod, EmptyAndAperiodicEntries) {
    EXPECT_EQ(analysis::hyperperiod({}), SimTime::zero());
    std::vector<analysis::PeriodicTaskSpec> specs{
        {"periodic", 3_ms, 1_ms, {}, 0},
        {"aperiodic", SimTime::zero(), 1_ms, {}, 1},
    };
    EXPECT_EQ(analysis::hyperperiod(specs), 3_ms);
}

TEST(Hyperperiod, SaturatesOnOverflow) {
    std::vector<analysis::PeriodicTaskSpec> specs{
        {"a", nanoseconds((1LL << 62) - 1), 1_ms, {}, 0},
        {"b", nanoseconds((1LL << 61) - 1), 1_ms, {}, 1},
    };
    EXPECT_EQ(analysis::hyperperiod(specs), SimTime::max());
}
