#include "arch/tlm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "arch/arch.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::arch;
using namespace slm::time_literals;

namespace {

/// Two masters sending `bytes` each at t=0 over a shared bus at `level`;
/// returns the two completion times.
std::vector<SimTime> race(CommLevel level, std::size_t bytes,
                          Bus::Config cfg = Bus::Config{SimTime::zero(), 10_ns}) {
    Kernel k;
    Bus bus{k, "bus", cfg};
    TlmChannel ch{bus, "ch", level};
    std::vector<SimTime> done(2);
    for (int m = 0; m < 2; ++m) {
        k.spawn("m" + std::to_string(m), [&, m] {
            ch.send(bytes, [&](SimTime dt) { k.waitfor(dt); }, m);
            done[static_cast<std::size_t>(m)] = k.now();
        });
    }
    k.run();
    return done;
}

}  // namespace

TEST(Tlm, BeatMath) {
    EXPECT_EQ(TlmChannel::beats(1), 1u);
    EXPECT_EQ(TlmChannel::beats(4), 1u);
    EXPECT_EQ(TlmChannel::beats(5), 2u);
    EXPECT_EQ(TlmChannel::beats(1000), 250u);
}

TEST(Tlm, MessageLevelIgnoresContention) {
    const auto done = race(CommLevel::Message, 1000);
    // Pure latency model: both 10 us transfers overlap completely.
    EXPECT_EQ(done[0], 10_us);
    EXPECT_EQ(done[1], 10_us);
}

TEST(Tlm, TransactionLevelSerializesWholeMessages) {
    const auto done = race(CommLevel::Transaction, 1000);
    EXPECT_EQ(done[0], 10_us);  // holds the bus end to end
    EXPECT_EQ(done[1], 20_us);  // waits out the entire first message
}

TEST(Tlm, BusFunctionalInterleavesFairly) {
    const auto done = race(CommLevel::BusFunctional, 1000);
    // Word-level interleaving: both messages share bandwidth and finish
    // around 20 us, within one beat (40 ns) of each other.
    EXPECT_GT(done[0], 19_us);
    EXPECT_LE(done[0], 20_us);
    EXPECT_GT(done[1], 19_us);
    EXPECT_LE(done[1], 20_us);
    const SimTime gap = done[1] > done[0] ? done[1] - done[0] : done[0] - done[1];
    EXPECT_LE(gap, 40_ns);
}

TEST(Tlm, LevelsAgreeWithoutContention) {
    // A single master sees identical timing at every level.
    for (const auto level :
         {CommLevel::Message, CommLevel::Transaction, CommLevel::BusFunctional}) {
        Kernel k;
        Bus bus{k, "bus", Bus::Config{100_ns, 10_ns}};
        TlmChannel ch{bus, "ch", level};
        SimTime done;
        k.spawn("m", [&] {
            ch.send(1000, [&](SimTime dt) { k.waitfor(dt); });
            done = k.now();
        });
        k.run();
        EXPECT_EQ(done, nanoseconds(100 + 10'000)) << to_string(level);
    }
}

TEST(Tlm, BusFunctionalChargesSetupOncePerMessage) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{200_ns, 10_ns}};
    TlmChannel ch{bus, "ch", CommLevel::BusFunctional};
    k.spawn("m", [&] { ch.send(100, [&](SimTime dt) { k.waitfor(dt); }); });
    k.run();
    EXPECT_EQ(bus.busy_time(), nanoseconds(200 + 1000));
    EXPECT_EQ(bus.bytes_transferred(), 100u);
    EXPECT_EQ(bus.transfers(), TlmChannel::beats(100));
}

TEST(Tlm, StatsCountMessages) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), 1_ns}};
    TlmChannel ch{bus, "ch", CommLevel::Transaction};
    k.spawn("m", [&] {
        for (int i = 0; i < 5; ++i) {
            ch.send(64, [&](SimTime dt) { k.waitfor(dt); });
        }
    });
    k.run();
    EXPECT_EQ(ch.messages(), 5u);
    EXPECT_EQ(ch.bytes_sent(), 320u);
}

TEST(Tlm, OddTailBeatHandled) {
    Kernel k;
    Bus bus{k, "bus", Bus::Config{SimTime::zero(), 10_ns}};
    TlmChannel ch{bus, "ch", CommLevel::BusFunctional};
    SimTime done;
    k.spawn("m", [&] {
        ch.send(7, [&](SimTime dt) { k.waitfor(dt); });  // 4 + 3 bytes
        done = k.now();
    });
    k.run();
    EXPECT_EQ(done, 70_ns);
    EXPECT_EQ(bus.transfers(), 2u);
    EXPECT_EQ(bus.bytes_transferred(), 7u);
}

TEST(Tlm, PriorityArbitrationAppliesPerBeat) {
    // Under bus-functional + priority arbitration, a high-priority master
    // starves the low-priority one beat-by-beat instead of message-by-message.
    Kernel k;
    Bus::Config cfg{SimTime::zero(), 10_ns, BusArbitration::Priority, {}, 0};
    Bus bus{k, "bus", cfg};
    TlmChannel ch{bus, "ch", CommLevel::BusFunctional};
    std::vector<SimTime> done(2);
    k.spawn("low", [&] {
        ch.send(400, [&](SimTime dt) { k.waitfor(dt); }, /*master=*/5);
        done[0] = k.now();
    });
    k.spawn("high", [&] {
        k.waitfor(1_us);  // arrives mid-stream
        ch.send(400, [&](SimTime dt) { k.waitfor(dt); }, /*master=*/1);
        done[1] = k.now();
    });
    k.run();
    // high arrives exactly on a beat boundary (1 us = 25 beats), so its 4 us
    // of beats run immediately, ahead of low's remaining 75 beats.
    EXPECT_EQ(done[1], 5_us);
    EXPECT_EQ(done[0], 8_us);  // low finishes last
}
