// Extended RTOS services: timeouts and dynamic priorities. These model the
// "key features typically available in any RTOS" beyond the paper's minimal
// Fig. 4 interface (natural extensions when mapping onto QNX/VxWorks APIs).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::time_literals;

namespace {

Task* add_task(Kernel& k, RtosModel& os, const std::string& name, int prio,
               std::function<void(Task*)> body) {
    Task* t = os.task_create(name, TaskType::Aperiodic, {}, {}, prio);
    k.spawn(name, [&os, t, body = std::move(body)] {
        os.task_activate(t);
        body(t);
        os.task_terminate();
    });
    return t;
}

void add_isr(Kernel& k, RtosModel& os, const std::string& name, SimTime at,
             std::function<void()> isr_body) {
    k.spawn(name, [&k, &os, name, at, isr_body = std::move(isr_body)] {
        k.waitfor(at);
        os.isr_enter(name);
        isr_body();
        os.interrupt_return();
    });
}

}  // namespace

// ---- kernel-level wait_timeout ----

TEST(WaitTimeout, EventArrivesFirst) {
    Kernel k;
    Event e{k, "e"};
    bool got = false;
    SimTime at;
    k.spawn("w", [&] {
        got = k.wait_timeout(e, 100_us);
        at = k.now();
    });
    k.spawn("n", [&] {
        k.waitfor(30_us);
        k.notify(e);
    });
    k.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(at, 30_us);
}

TEST(WaitTimeout, TimeoutFires) {
    Kernel k;
    Event e{k, "never"};
    bool got = true;
    SimTime at;
    k.spawn("w", [&] {
        got = k.wait_timeout(e, 100_us);
        at = k.now();
    });
    k.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(at, 100_us);
    EXPECT_EQ(e.waiter_count(), 0u);  // waiter removed on timeout
}

TEST(WaitTimeout, LateNotifyDoesNotWakeTimedOutWaiter) {
    Kernel k;
    Event e{k, "e"};
    int wakes = 0;
    k.spawn("w", [&] {
        (void)k.wait_timeout(e, 10_us);
        ++wakes;
    });
    k.spawn("n", [&] {
        k.waitfor(50_us);
        k.notify(e);  // nobody is waiting anymore
    });
    k.run();
    EXPECT_EQ(wakes, 1);
}

TEST(WaitTimeout, RepeatedTimeoutsAreIndependent) {
    Kernel k;
    Event e{k, "e"};
    std::vector<SimTime> at;
    k.spawn("w", [&] {
        for (int i = 0; i < 3; ++i) {
            EXPECT_FALSE(k.wait_timeout(e, 10_us));
            at.push_back(k.now());
        }
    });
    k.run();
    EXPECT_EQ(at, (std::vector<SimTime>{10_us, 20_us, 30_us}));
}

TEST(WaitTimeout, NotifyCancelsPendingTimeout) {
    // After the event wakes the waiter, the stale timeout entry must not
    // disturb a later wait.
    Kernel k;
    Event e{k, "e"};
    bool second_wait_timed_out = false;
    k.spawn("w", [&] {
        EXPECT_TRUE(k.wait_timeout(e, 100_us));  // notified at 10 us
        k.wait(e);                               // plain wait: notified at 200 us
        second_wait_timed_out = false;
    });
    k.spawn("n", [&] {
        k.waitfor(10_us);
        k.notify(e);
        k.waitfor(190_us);  // past the stale 110 us timeout
        k.notify(e);
    });
    k.run();
    EXPECT_TRUE(k.blocked_processes().empty());
    EXPECT_FALSE(second_wait_timed_out);
}

// ---- RTOS event_wait_timeout ----

TEST(RtosTimeout, EventWaitTimesOut) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("never");
    bool got = true;
    SimTime at;
    add_task(k, os, "t", 1, [&](Task*) {
        got = os.event_wait_timeout(e, 250_us);
        at = k.now();
    });
    os.start();
    k.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(at, 250_us);
    EXPECT_EQ(e->waiter_count(), 0u);
}

TEST(RtosTimeout, EventWaitNotifiedInTime) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("e");
    bool got = false;
    SimTime at;
    add_task(k, os, "t", 1, [&](Task*) {
        got = os.event_wait_timeout(e, 1_ms);
        at = k.now();
    });
    add_isr(k, os, "irq", 40_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(at, 40_us);
}

TEST(RtosTimeout, TimeoutClockStartsAtTheCall) {
    // The low-priority task cannot even issue its wait before the busy task
    // releases the CPU (at 200 us) — so its 50 us timeout expires at 250 us.
    // The model correctly exposes that "timeout" budgets start at the syscall,
    // which is itself subject to scheduling.
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("never");
    SimTime resumed;
    add_task(k, os, "low", 9, [&](Task*) {
        EXPECT_FALSE(os.event_wait_timeout(e, 50_us));
        resumed = k.now();
    });
    add_task(k, os, "busy", 1, [&](Task*) {
        os.time_wait(100_us);
        os.time_wait(100_us);
    });
    os.start();
    k.run();
    EXPECT_EQ(resumed, 250_us);
}

TEST(RtosTimeout, TimedOutTaskWaitsForRunningChunk) {
    // The high-priority waiter registers at t=0 on an idle CPU; a background
    // task is released at 10 us and computes in 100 us chunks. The waiter's
    // timeout fires at 50 us, but it is only dispatched when the running
    // task's current delay step ends (110 us) — the t4 -> t4' effect applied
    // to timeout wakeups.
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("never");
    OsEvent* go = os.event_new("go");
    SimTime resumed;
    add_task(k, os, "waiter", 1, [&](Task*) {
        EXPECT_FALSE(os.event_wait_timeout(e, 50_us));
        resumed = k.now();
    });
    add_task(k, os, "busy", 5, [&](Task*) {
        os.event_wait(go);
        os.time_wait(100_us);
        os.time_wait(100_us);
    });
    add_isr(k, os, "irq", 10_us, [&] { os.event_notify(go); });
    os.start();
    k.run();
    EXPECT_EQ(resumed, 110_us);
}

TEST(RtosTimeout, NotifyJustBeforeDeadline) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("e");
    bool got = false;
    add_task(k, os, "t", 1, [&](Task*) { got = os.event_wait_timeout(e, 50_us); });
    add_isr(k, os, "irq", 50_us - 1_ns, [&] { os.event_notify(e); });
    os.start();
    k.run();
    EXPECT_TRUE(got);
}

TEST(RtosTimeout, SemaphoreAcquireFor) {
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    std::vector<std::string> log;
    add_task(k, os, "t", 1, [&](Task*) {
        if (!sem.acquire_for(30_us)) {
            log.push_back("timeout@" + std::to_string(k.now().ns()));
        }
        if (sem.acquire_for(100_us)) {
            log.push_back("got@" + std::to_string(k.now().ns()));
        }
    });
    add_isr(k, os, "irq", 75_us, [&] { sem.release(); });
    os.start();
    k.run();
    EXPECT_EQ(log, (std::vector<std::string>{"timeout@30000", "got@75000"}));
}

TEST(RtosTimeout, SemaphoreImmediateTokenNoBlock) {
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 2};
    add_task(k, os, "t", 1, [&](Task*) {
        EXPECT_TRUE(sem.acquire_for(10_us));
        EXPECT_TRUE(sem.acquire_for(10_us));
        EXPECT_EQ(k.now(), SimTime::zero());  // never blocked
    });
    os.start();
    k.run();
}

TEST(RtosTimeout, QueueReceiveFor) {
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 0};
    std::vector<std::string> log;
    add_task(k, os, "consumer", 1, [&](Task*) {
        int v = 0;
        // Times out at 20 us; the producer's 30 us delay step ends at 30 us,
        // so the consumer is redispatched there with the queue still empty.
        EXPECT_FALSE(q.receive_for(v, 20_us));
        log.push_back("empty@" + std::to_string(k.now().ns()));
        EXPECT_TRUE(q.receive_for(v, 100_us));  // producer sends at 60 us
        log.push_back("got" + std::to_string(v) + "@" + std::to_string(k.now().ns()));
    });
    add_task(k, os, "producer", 2, [&](Task*) {
        os.time_wait(30_us);
        os.time_wait(30_us);
        q.send(7);
    });
    os.start();
    k.run();
    EXPECT_EQ(log, (std::vector<std::string>{"empty@30000", "got7@60000"}));
}

TEST(RtosTimeout, QueueDeliversLateDataOnRedispatch) {
    // If the message arrives between the timeout instant and the moment the
    // timed-out task gets the CPU back, receive_for still delivers it — the
    // task could never have observed the empty queue.
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 0};
    int v = 0;
    bool got = false;
    add_task(k, os, "consumer", 1, [&](Task*) {
        got = q.receive_for(v, 20_us);  // timeout at 20, data at 60
    });
    add_task(k, os, "producer", 2, [&](Task*) {
        os.time_wait(60_us);  // one coarse chunk covering the timeout
        q.send(9);
    });
    os.start();
    k.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(v, 9);
}

TEST(RtosTimeout, TimeoutRobustUnderContention) {
    // Several tasks with staggered timeouts on the same semaphore; a single
    // release satisfies exactly one of them.
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    int got = 0, timed_out = 0;
    for (int i = 0; i < 4; ++i) {
        add_task(k, os, "t" + std::to_string(i), i, [&, i](Task*) {
            if (sem.acquire_for(microseconds(40 + 10u * static_cast<unsigned>(i)))) {
                ++got;
            } else {
                ++timed_out;
            }
        });
    }
    add_isr(k, os, "irq", 20_us, [&] { sem.release(); });
    os.start();
    k.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(timed_out, 3);
}

// ---- task_delay: non-CPU-consuming sleep ----

TEST(TaskDelay, SleepDoesNotConsumeCpu) {
    Kernel k;
    RtosModel os{k};
    SimTime low_done;
    add_task(k, os, "sleeper", 1, [&](Task* me) {
        os.task_delay(100_us);
        EXPECT_EQ(me->stats().exec_time, SimTime::zero());
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(80_us);  // runs *during* the sleeper's delay
        low_done = k.now();
    });
    os.start();
    k.run();
    EXPECT_EQ(low_done, 80_us);  // not pushed behind the 100 us sleep
    EXPECT_EQ(k.now(), 100_us);
    EXPECT_EQ(os.busy_time(), 80_us);
}

TEST(TaskDelay, WakesAndPreemptsByPriority) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> log;
    add_task(k, os, "high", 1, [&](Task*) {
        os.task_delay(50_us);
        os.time_wait(10_us);
        log.push_back("high@" + std::to_string(k.now().ns()));
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(30_us);  // wakeup at 50 lands inside the second step
        os.time_wait(30_us);
        os.time_wait(30_us);  // the switch happens at this call's entry
        log.push_back("low@" + std::to_string(k.now().ns()));
    });
    os.start();
    k.run();
    // high wakes at 50 during low's second step [30,60]; switch at 60; low's
    // third step resumes after high finishes.
    EXPECT_EQ(log, (std::vector<std::string>{"high@70000", "low@100000"}));
}

TEST(TaskDelay, MultipleSleepersIndependent) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> order;
    for (int i = 0; i < 3; ++i) {
        add_task(k, os, "s" + std::to_string(i), i, [&, i](Task*) {
            os.task_delay(microseconds(30 - 10u * static_cast<unsigned>(i)));
            order.push_back("s" + std::to_string(i) + "@" +
                            std::to_string(k.now().ns()));
        });
    }
    os.start();
    k.run();
    // Wake order follows delay lengths, not priorities (CPU is idle anyway).
    EXPECT_EQ(order, (std::vector<std::string>{"s2@10000", "s1@20000", "s0@30000"}));
}

TEST(TaskDelay, KillWhileSleepingCancels) {
    Kernel k;
    RtosModel os{k};
    bool resumed = false;
    Task* sleeper = add_task(k, os, "sleeper", 1, [&](Task*) {
        os.task_delay(10_ms);
        resumed = true;
    });
    add_task(k, os, "killer", 2, [&](Task*) {
        os.time_wait(1_us);
        os.task_kill(sleeper);
    });
    os.start();
    k.run();
    EXPECT_FALSE(resumed);
    EXPECT_EQ(sleeper->state(), TaskState::Terminated);
    EXPECT_EQ(k.now(), 1_us);  // the 10 ms timer vanished with the task
}

// ---- dynamic priorities ----

TEST(DynamicPriority, RaiseReadyTaskPreemptsCaller) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> log;
    Task* bg = add_task(k, os, "bg", 9, [&](Task*) {
        os.time_wait(10_us);
        log.push_back("bg-done@" + std::to_string(k.now().ns()));
    });
    add_task(k, os, "boss", 5, [&](Task*) {
        os.time_wait(10_us);
        os.task_set_priority(bg, 1);  // bg now outranks boss: switch inside call
        os.time_wait(10_us);
        log.push_back("boss-done@" + std::to_string(k.now().ns()));
    });
    os.start();
    k.run();
    EXPECT_EQ(log, (std::vector<std::string>{"bg-done@20000", "boss-done@30000"}));
}

TEST(DynamicPriority, LowerSelfYields) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> order;
    add_task(k, os, "first", 1, [&](Task* me) {
        os.time_wait(5_us);
        os.task_set_priority(me, 20);  // demote below "second": switch now
        os.time_wait(5_us);
        order.push_back("first");
    });
    add_task(k, os, "second", 10, [&](Task*) {
        os.time_wait(5_us);
        order.push_back("second");
    });
    os.start();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"second", "first"}));
}

TEST(DynamicPriority, EffectivePriorityTracksBase) {
    Kernel k;
    RtosModel os{k};
    Task* t = add_task(k, os, "t", 7, [&](Task* me) {
        os.task_set_priority(me, 3);
        EXPECT_EQ(me->effective_priority(), 3);
        os.time_wait(1_us);
    });
    os.start();
    k.run();
    EXPECT_EQ(t->params().priority, 3);
}
