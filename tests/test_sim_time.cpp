#include "sim/time.hpp"

#include <gtest/gtest.h>

using namespace slm;
using namespace slm::time_literals;

TEST(SimTime, DefaultIsZero) {
    SimTime t;
    EXPECT_EQ(t.ns(), 0u);
    EXPECT_TRUE(t.is_zero());
    EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, FactoryUnits) {
    EXPECT_EQ(nanoseconds(7).ns(), 7u);
    EXPECT_EQ(microseconds(3).ns(), 3'000u);
    EXPECT_EQ(milliseconds(2).ns(), 2'000'000u);
    EXPECT_EQ(seconds(1).ns(), 1'000'000'000u);
}

TEST(SimTime, Literals) {
    EXPECT_EQ(5_ns, nanoseconds(5));
    EXPECT_EQ(5_us, microseconds(5));
    EXPECT_EQ(5_ms, milliseconds(5));
    EXPECT_EQ(5_s, seconds(5));
}

TEST(SimTime, UnitConversions) {
    EXPECT_DOUBLE_EQ(milliseconds(12).ms(), 12.0);
    EXPECT_DOUBLE_EQ(microseconds(1500).ms(), 1.5);
    EXPECT_DOUBLE_EQ(seconds(2).sec(), 2.0);
    EXPECT_DOUBLE_EQ(nanoseconds(2500).us(), 2.5);
}

TEST(SimTime, Arithmetic) {
    EXPECT_EQ(3_us + 4_us, 7_us);
    EXPECT_EQ(9_us - 4_us, 5_us);
    EXPECT_EQ(3_us * 4, 12_us);
    EXPECT_EQ(4 * 3_us, 12_us);
    EXPECT_EQ(12_us / 4, 3_us);
}

TEST(SimTime, AdditionSaturates) {
    EXPECT_EQ(SimTime::max() + 1_ns, SimTime::max());
    EXPECT_EQ(SimTime::max() + SimTime::max(), SimTime::max());
}

TEST(SimTime, MultiplicationSaturates) {
    // wcet * releases terms in schedulability math must clamp like operator+,
    // not wrap to a small bogus product.
    EXPECT_EQ(SimTime::max() * 2, SimTime::max());
    EXPECT_EQ(2 * SimTime::max(), SimTime::max());
    EXPECT_EQ(seconds(20) * 1'000'000'000ull, SimTime::max());
    EXPECT_EQ(SimTime::max() * 1, SimTime::max());
    EXPECT_EQ(SimTime::max() * 0, SimTime::zero());
}

TEST(SimTime, SubtractionClampsAtZero) {
    EXPECT_EQ(1_ns - 2_ns, SimTime::zero());
    EXPECT_EQ(SimTime::zero() - 1_s, SimTime::zero());
}

TEST(SimTime, CompoundAssignment) {
    SimTime t = 10_us;
    t += 5_us;
    EXPECT_EQ(t, 15_us);
    t -= 3_us;
    EXPECT_EQ(t, 12_us);
}

TEST(SimTime, Ordering) {
    EXPECT_LT(1_ns, 1_us);
    EXPECT_LT(999_us, 1_ms);
    EXPECT_GT(1_s, 999_ms);
    EXPECT_LE(5_ms, 5_ms);
}

TEST(SimTime, ToStringPicksUnit) {
    EXPECT_EQ(nanoseconds(12).to_string(), "12 ns");
    EXPECT_EQ(microseconds(12).to_string(), "12 us");
    EXPECT_EQ(milliseconds(12).to_string(), "12 ms");
    EXPECT_EQ(seconds(12).to_string(), "12 s");
    EXPECT_EQ(SimTime{12'500'000}.to_string(), "12.5 ms");
}
