// slm::fault: deterministic fault injection + RTOS recovery services.
//
// Covers the plan grammar, the seeded injector (replay identity above all),
// every injection mechanism (exec scale/jitter, ISR drop/delay/spurious,
// crash-at-dispatch, mutex-holder stall), the recovery services (watchdogs,
// task_restart, deadline-miss policies on both OS personalities), campaign
// sweeps, and the explore integration. The suite is registered under both
// context backends (see tests/CMakeLists.txt).

#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "fault/campaign.hpp"
#include "obs/metrics.hpp"
#include "rtos/itron.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::fault;
using namespace slm::time_literals;

namespace {

FaultPlan plan_of(const std::string& text) {
    std::string err;
    const std::optional<FaultPlan> p = FaultPlan::parse(text, &err);
    EXPECT_TRUE(p.has_value()) << err;
    return p.value_or(FaultPlan{});
}

std::string csv_of(const trace::TraceRecorder& rec) {
    std::ostringstream os;
    rec.write_csv(os);
    return os.str();
}

/// Counts recovery-related observer callbacks.
struct RecoveryWatch final : OsObserver {
    int misses = 0;
    int watchdogs = 0;
    int restarts = 0;
    int crashes = 0;
    SimTime last_watchdog{};
    void on_deadline_miss(const Task&, SimTime, SimTime) override { ++misses; }
    void on_watchdog(const Task&, SimTime now) override {
        ++watchdogs;
        last_watchdog = now;
    }
    void on_task_restart(const Task&, SimTime) override { ++restarts; }
    void on_task_crash(const Task&, SimTime) override { ++crashes; }
};

}  // namespace

// ---- plan grammar ----

TEST(FaultPlan, ParsesFullGrammar) {
    const FaultPlan p = plan_of(
        "# a comment line\n"
        "seed 42\n"
        "exec_scale transcoder factor=1.5 after=10ms until=20ms\n"
        "exec_jitter * max=500us p=0.25\n"
        "isr_drop ext p=0.1\n"
        "isr_delay timer delay=200us\n"
        "isr_spurious ext extra=3\n"
        "crash logger at=5ms\n"
        "mutex_stall bus stall=100us p=0.5   # trailing comment\n");
    EXPECT_EQ(p.seed, 42u);
    ASSERT_EQ(p.specs.size(), 7u);

    EXPECT_EQ(p.specs[0].kind, FaultKind::ExecScale);
    EXPECT_EQ(p.specs[0].target, "transcoder");
    EXPECT_DOUBLE_EQ(p.specs[0].factor, 1.5);
    EXPECT_EQ(p.specs[0].after, 10_ms);
    EXPECT_EQ(p.specs[0].until, 20_ms);

    EXPECT_EQ(p.specs[1].kind, FaultKind::ExecJitter);
    EXPECT_EQ(p.specs[1].target, "*");
    EXPECT_EQ(p.specs[1].amount, 500_us);
    EXPECT_DOUBLE_EQ(p.specs[1].probability, 0.25);

    EXPECT_EQ(p.specs[2].kind, FaultKind::IsrDrop);
    EXPECT_EQ(p.specs[3].kind, FaultKind::IsrDelay);
    EXPECT_EQ(p.specs[3].amount, 200_us);
    EXPECT_EQ(p.specs[4].kind, FaultKind::IsrSpurious);
    EXPECT_EQ(p.specs[4].extra, 3u);

    EXPECT_EQ(p.specs[5].kind, FaultKind::Crash);
    ASSERT_TRUE(p.specs[5].at.has_value());
    EXPECT_EQ(*p.specs[5].at, 5_ms);

    EXPECT_EQ(p.specs[6].kind, FaultKind::MutexStall);
    EXPECT_EQ(p.specs[6].amount, 100_us);
}

TEST(FaultPlan, BareNumbersAreNanoseconds) {
    const FaultPlan p = plan_of("isr_delay ext delay=1500\n");
    EXPECT_EQ(p.specs[0].amount, SimTime{1500});
}

TEST(FaultPlan, RejectsMalformedInputWithLineNumbers) {
    const auto expect_error = [](const std::string& text, const char* line_tag) {
        std::string err;
        EXPECT_FALSE(FaultPlan::parse(text, &err).has_value()) << text;
        EXPECT_NE(err.find(line_tag), std::string::npos)
            << "error \"" << err << "\" should name " << line_tag;
    };
    expect_error("warp_core breach\n", "line 1");
    expect_error("seed\n", "line 1");
    expect_error("seed banana\n", "line 1");
    expect_error("exec_scale\n", "line 1");                       // no target
    expect_error("exec_scale t\n", "line 1");                     // no factor=
    expect_error("exec_scale t factor=fast\n", "line 1");
    expect_error("exec_jitter t\n", "line 1");                    // no max=
    expect_error("isr_delay t delay=10lightyears\n", "line 1");
    expect_error("crash t p=1.5\n", "line 1");                    // p out of range
    expect_error("isr_spurious t extra=0\n", "line 1");
    expect_error("mutex_stall m stall=1ms color=red\n", "line 1");
    expect_error("crash t banana\n", "line 1");                   // not key=value
    expect_error("seed 1\nexec_scale t\n", "line 2");             // line numbers count
}

// ---- injection mechanisms ----

TEST(FaultInjector, ExecScaleDoublesDelaysInsideWindow) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("exec_scale worker factor=2.0 after=10us until=30us\n"));
    inj.attach(os);
    os.init();
    Task* t = os.task_create("worker", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] {
        os.time_wait(5_us);   // before window: 5 us charged      -> now 5
        os.time_wait(5_us);   // starts at 5 < 10: still unscaled -> now 10
        os.time_wait(5_us);   // inside window: charged as 10     -> now 20
        os.time_wait(5_us);   // inside window: charged as 10     -> now 30
        os.time_wait(5_us);   // at 30, window closed: 5          -> now 35
    });
    os.task_start(t);
    os.start();
    k.run();
    EXPECT_EQ(k.now(), 35_us);
    EXPECT_EQ(inj.stats().exec_scaled, 2u);
    EXPECT_EQ(t->stats().exec_time, 35_us);  // the scaled time is real CPU time
}

TEST(FaultInjector, ExecJitterAddsBoundedDeterministicDelay) {
    const auto end_time_with_seed = [](std::uint64_t seed) {
        Kernel k;
        RtosModel os{k};
        FaultInjector inj(plan_of("exec_jitter worker max=10us\n"), seed);
        inj.attach(os);
        os.init();
        Task* t = os.task_create("worker", TaskType::Aperiodic, {}, {}, 1);
        os.task_set_body(t, [&] { os.time_wait(20_us); });
        os.task_start(t);
        os.start();
        k.run();
        EXPECT_EQ(inj.stats().exec_jittered, 1u);
        return k.now();
    };
    const SimTime a = end_time_with_seed(7);
    EXPECT_GE(a, 20_us);
    EXPECT_LE(a, 30_us);
    EXPECT_EQ(a, end_time_with_seed(7));  // same seed, same jitter
    bool any_different = false;
    for (std::uint64_t s = 1; s <= 8 && !any_different; ++s) {
        any_different = end_time_with_seed(s) != a;
    }
    EXPECT_TRUE(any_different) << "eight seeds all produced identical jitter";
}

TEST(FaultInjector, IsrDropSuppressesDelivery) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("isr_drop ext\n"));
    inj.attach(os);
    os.init();
    int fires = 0;
    k.spawn("src", [&] {
        k.waitfor(10_us);
        os.isr_deliver("ext", [&] { ++fires; });
        os.isr_deliver("other", [&] { ++fires; });  // different line: untouched
    });
    os.start();
    k.run();
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(inj.stats().isr_dropped, 1u);
}

TEST(FaultInjector, IsrDelayPostponesDelivery) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("isr_delay ext delay=5us\n"));
    inj.attach(os);
    os.init();
    SimTime fired_at{};
    k.spawn("src", [&] {
        k.waitfor(10_us);
        os.isr_deliver("ext", [&] { fired_at = k.now(); });
    });
    os.start();
    k.run();
    EXPECT_EQ(fired_at, 15_us);
    EXPECT_EQ(inj.stats().isr_delayed, 1u);
}

TEST(FaultInjector, IsrSpuriousRepeatsDelivery) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("isr_spurious ext extra=2\n"));
    inj.attach(os);
    os.init();
    int fires = 0;
    k.spawn("src", [&] {
        k.waitfor(10_us);
        os.isr_deliver("ext", [&] { ++fires; });
    });
    os.start();
    k.run();
    EXPECT_EQ(fires, 3);  // the real one + 2 spurious
    EXPECT_EQ(inj.stats().isr_spurious, 2u);
}

TEST(FaultInjector, CrashAtDispatchKillsTaskAndReleasesMutex) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("crash holder at=5us\n"));
    inj.attach(os);
    os.init();
    OsMutex m{os, OsMutex::Protocol::None, "m"};
    bool waiter_got_lock = false;

    Task* holder = os.task_create("holder", TaskType::Aperiodic, {}, {}, 3);
    os.task_set_body(holder, [&] {
        m.lock();
        os.time_wait(50_us);
        m.unlock();
    });
    os.task_start(holder);

    // Preempts the holder after the crash deadline so it gets re-dispatched.
    Task* noise = os.task_create("noise", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(noise, [&] {
        os.task_delay(6_us);
        os.time_wait(1_us);
    });
    os.task_start(noise);

    Task* waiter = os.task_create("waiter", TaskType::Aperiodic, {}, {}, 2);
    os.task_set_body(waiter, [&] {
        os.task_delay(2_us);
        m.lock();  // blocks on holder; only the crash cleanup can free it
        waiter_got_lock = true;
        m.unlock();
    });
    os.task_start(waiter);

    os.start();
    k.run();
    EXPECT_EQ(holder->state(), TaskState::Terminated);
    EXPECT_TRUE(waiter_got_lock) << "crash cleanup must force-release the mutex";
    EXPECT_EQ(os.stats().crashes, 1u);
    EXPECT_EQ(inj.stats().crashes_injected, 1u);
}

TEST(FaultInjector, CrashIsOneShotAcrossRestart) {
    // A crash rule fires once; the restarted incarnation must run clean.
    Kernel k;
    RecoveryWatch watch;  // outlives the core: ~OsCore notifies observers
    RtosModel os{k};
    FaultInjector inj(plan_of("crash victim at=3us\n"));
    inj.attach(os);
    os.init();
    os.add_observer(&watch);
    Task* victim = os.task_create("victim", TaskType::Aperiodic, {}, {}, 2);
    // Two chunks: the boundary at 5 us lets the higher-priority noise task
    // preempt, so the victim is re-dispatched (and crashes) mid-body.
    os.task_set_body(victim, [&] {
        os.time_wait(5_us);
        os.time_wait(5_us);
    });
    os.task_start(victim);
    Task* noise = os.task_create("noise", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(noise, [&] {
        os.task_delay(4_us);      // ready at 4 us: preempts at the 5 us boundary
        os.time_wait(1_us);
        os.task_delay(2_us);      // yield: the victim re-dispatches at 6 us, dies
        os.task_restart(victim);  // revive the crashed task at 8 us
    });
    os.task_start(noise);
    os.start();
    k.run();
    EXPECT_EQ(watch.crashes, 1);
    EXPECT_EQ(watch.restarts, 1);
    EXPECT_EQ(victim->stats().restarts, 1u);
    EXPECT_EQ(victim->stats().completions, 1u);  // second incarnation finished
    EXPECT_EQ(inj.stats().crashes_injected, 1u);
}

TEST(FaultInjector, MutexStallChargesHolder) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("mutex_stall m stall=10us\n"));
    inj.attach(os);
    os.init();
    OsMutex m{os, OsMutex::Protocol::None, "m"};
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] {
        m.lock();
        os.time_wait(5_us);
        m.unlock();
    });
    os.task_start(t);
    os.start();
    k.run();
    EXPECT_EQ(k.now(), 15_us);  // 5 us of work + 10 us injected stall
    EXPECT_EQ(inj.stats().stalls_injected, 1u);
}

TEST(FaultInjector, NoHookPathIsUntouched) {
    // The same model with and without an attached injector whose plan
    // matches nothing must produce identical traces.
    const auto run_once = [](bool with_inert_injector) {
        Kernel k;
        trace::TraceRecorder rec;
        RtosConfig cfg;
        cfg.tracer = &rec;
        RtosModel os{k, cfg};
        FaultInjector inj(plan_of("exec_scale nobody factor=9.0\n"));
        if (with_inert_injector) {
            inj.attach(os);
        }
        os.init();
        for (const char* name : {"a", "b"}) {
            Task* t = os.task_create(name, TaskType::Aperiodic, {}, {}, 1);
            os.task_set_body(t, [&] { os.time_wait(10_us); });
            os.task_start(t);
        }
        os.start();
        k.run();
        return csv_of(rec);
    };
    EXPECT_EQ(run_once(false), run_once(true));
}

// ---- watchdogs ----

TEST(Watchdog, NotifyFiresOnceAfterTimeout) {
    Kernel k;
    RecoveryWatch watch;  // outlives the core: ~OsCore notifies observers
    RtosModel os{k};
    os.init();
    os.add_observer(&watch);
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] { os.task_sleep(); });  // hangs forever
    os.task_start(t);
    os.watchdog_arm(t, 10_us, MissPolicy::Notify);
    EXPECT_TRUE(os.watchdog_armed(t));
    os.start();
    k.run_until(100_us);
    EXPECT_EQ(watch.watchdogs, 1);
    EXPECT_EQ(watch.last_watchdog, 10_us);
    EXPECT_EQ(os.stats().watchdog_fires, 1u);
    EXPECT_EQ(t->state(), TaskState::Suspended);  // Notify does not touch the task
    EXPECT_FALSE(os.watchdog_armed(t));          // one-shot until re-armed/kicked
}

TEST(Watchdog, KickRestartsTheCountdown) {
    Kernel k;
    RecoveryWatch watch;  // outlives the core: ~OsCore notifies observers
    RtosModel os{k};
    os.init();
    os.add_observer(&watch);
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] {
        for (int i = 0; i < 4; ++i) {
            os.time_wait(6_us);      // always inside the 10 us budget
            os.watchdog_kick(t);
        }
    });
    os.task_start(t);
    os.watchdog_arm(t, 10_us, MissPolicy::Kill);
    os.start();
    k.run_until(100_us);
    EXPECT_EQ(watch.watchdogs, 0);
    EXPECT_EQ(t->stats().completions, 1u);  // survived: kicked in time, then done
}

TEST(Watchdog, DisarmCancels) {
    Kernel k;
    RecoveryWatch watch;  // outlives the core: ~OsCore notifies observers
    RtosModel os{k};
    os.init();
    os.add_observer(&watch);
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] {
        os.time_wait(5_us);
        os.watchdog_disarm(t);
        os.time_wait(50_us);  // would have tripped the 10 us watchdog
    });
    os.task_start(t);
    os.watchdog_arm(t, 10_us, MissPolicy::Kill);
    os.start();
    k.run_until(100_us);
    EXPECT_EQ(watch.watchdogs, 0);
    EXPECT_EQ(t->stats().completions, 1u);
}

TEST(Watchdog, KillTerminatesHungTask) {
    Kernel k;
    RtosModel os{k};
    os.init();
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] { os.task_sleep(); });
    os.task_start(t);
    os.watchdog_arm(t, 10_us, MissPolicy::Kill);
    os.start();
    k.run_until(100_us);
    EXPECT_EQ(t->state(), TaskState::Terminated);
    EXPECT_EQ(os.stats().watchdog_fires, 1u);
}

TEST(Watchdog, RestartRevivesHungTask) {
    Kernel k;
    RtosModel os{k};
    os.init();
    int attempt = 0;
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] {
        if (attempt++ == 0) {
            os.task_sleep();  // first incarnation hangs
        }
        os.time_wait(5_us);   // later incarnations finish promptly
    });
    os.task_start(t);
    os.watchdog_arm(t, 10_us, MissPolicy::Restart);
    os.start();
    k.run_until(100_us);
    EXPECT_EQ(t->stats().restarts, 1u);
    EXPECT_EQ(t->stats().completions, 1u);
    EXPECT_EQ(t->state(), TaskState::Terminated);
    EXPECT_EQ(os.stats().watchdog_fires, 1u);  // the recovery run kept it quiet
}

TEST(Watchdog, CrashThenWatchdogRestartRecovers) {
    // The full recovery chain: fault-injected crash -> the armed watchdog is
    // deliberately left pending -> it fires -> Restart revives the task ->
    // the (one-shot) crash does not recur and the task completes.
    Kernel k;
    RecoveryWatch watch;  // outlives the core: ~OsCore notifies observers
    RtosModel os{k};
    FaultInjector inj(plan_of("crash srv at=4us\n"));
    inj.attach(os);
    os.init();
    os.add_observer(&watch);
    Task* srv = os.task_create("srv", TaskType::Aperiodic, {}, {}, 3);
    // The chunk boundary at 6 us lets noise preempt; srv's re-dispatch at
    // 7 us is past the 4 us crash point and kills the first incarnation.
    os.task_set_body(srv, [&] {
        os.time_wait(6_us);
        os.time_wait(14_us);
    });
    os.task_start(srv);
    // Longer than the 20 us body, so the recovery incarnation can finish
    // before its (re-armed) watchdog trips again.
    os.watchdog_arm(srv, 25_us, MissPolicy::Restart);
    Task* noise = os.task_create("noise", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(noise, [&] {
        os.task_delay(5_us);
        os.time_wait(1_us);
    });
    os.task_start(noise);
    os.start();
    k.run_until(200_us);
    EXPECT_EQ(watch.crashes, 1);
    EXPECT_GE(watch.watchdogs, 1);
    EXPECT_GE(srv->stats().restarts, 1u);
    EXPECT_EQ(srv->stats().completions, 1u);
    EXPECT_EQ(srv->state(), TaskState::Terminated);
}

// ---- deadline-miss policies, both personalities ----

namespace {

struct PolicyOutcome {
    std::string csv;
    std::uint64_t completions = 0;
    std::uint64_t misses = 0;  ///< OS-level: survives the Restart stats reset
    std::uint64_t skipped = 0;
    std::uint64_t restarts = 0;
    int notified = 0;
    bool terminated = false;
};

/// One overrunning periodic task under `policy`, built on either personality.
/// The periodic machinery is personality-neutral core API; the ITRON flavor
/// wraps the same core, so the traces must match byte for byte.
PolicyOutcome run_policy_scenario(MissPolicy policy, bool use_itron) {
    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.tracer = &rec;
    RecoveryWatch watch;  // outlives the core: ~OsCore notifies observers
    std::unique_ptr<RtosModel> paper;
    std::unique_ptr<itron::ItronOs> it;
    OsCore* core = nullptr;
    if (use_itron) {
        it = std::make_unique<itron::ItronOs>(k, cfg);
        core = &it->core();
    } else {
        paper = std::make_unique<RtosModel>(k, cfg);
        paper->init();
        core = paper.get();
    }
    FaultInjector inj(plan_of("exec_scale job factor=2.0 after=15us until=55us\n"));
    inj.attach(*core);
    core->add_observer(&watch);

    TaskParams p;
    p.name = "job";
    p.type = TaskType::Periodic;
    p.priority = 1;
    p.period = 10_us;
    p.deadline = 10_us;
    p.miss_policy = policy;
    Task* t = core->task_create(p);
    core->task_set_body(t, [core] {
        for (int i = 0; i < 8; ++i) {
            core->time_wait(6_us);  // 12 us inside the fault window: misses
            core->task_endcycle();
        }
    });
    core->task_start(t);
    if (use_itron) {
        it->start();
    } else {
        paper->start();
    }
    k.run_until(300_us);
    core->remove_observer(&watch);

    PolicyOutcome out;
    out.csv = csv_of(rec);
    out.completions = t->stats().completions;
    out.misses = core->stats().deadline_misses;
    out.skipped = t->stats().jobs_skipped;
    out.restarts = t->stats().restarts;
    out.notified = watch.misses;
    out.terminated = t->state() == TaskState::Terminated;
    return out;
}

}  // namespace

TEST(MissPolicy, AllFivePoliciesOnBothPersonalities) {
    for (const MissPolicy policy :
         {MissPolicy::Ignore, MissPolicy::Notify, MissPolicy::SkipJob,
          MissPolicy::Restart, MissPolicy::Kill}) {
        SCOPED_TRACE(to_string(policy));
        const PolicyOutcome paper = run_policy_scenario(policy, false);
        const PolicyOutcome itron = run_policy_scenario(policy, true);
        EXPECT_EQ(paper.csv, itron.csv) << "trace divergence between personalities";
        EXPECT_EQ(paper.completions, itron.completions);
        EXPECT_EQ(paper.misses, itron.misses);
        EXPECT_EQ(paper.skipped, itron.skipped);
        EXPECT_EQ(paper.restarts, itron.restarts);

        EXPECT_GT(paper.misses, 0u) << "the fault window must cause misses";
        switch (policy) {
            case MissPolicy::Ignore:
                EXPECT_EQ(paper.notified, 0);
                EXPECT_EQ(paper.skipped, 0u);
                EXPECT_EQ(paper.restarts, 0u);
                break;
            case MissPolicy::Notify:
                EXPECT_GT(paper.notified, 0);
                EXPECT_EQ(paper.skipped, 0u);
                EXPECT_EQ(paper.restarts, 0u);
                break;
            case MissPolicy::SkipJob:
                EXPECT_GT(paper.skipped, 0u);
                break;
            case MissPolicy::Restart:
                EXPECT_GT(paper.restarts, 0u);
                break;
            case MissPolicy::Kill:
                EXPECT_TRUE(paper.terminated);
                EXPECT_LT(paper.completions, 8u);
                break;
        }
    }
}

// ---- ITRON personality wrappers ----

TEST(ItronFault, WatchdogAndRestartServices) {
    Kernel k;
    itron::ItronOs os{k};
    int runs = 0;
    ASSERT_EQ(os.cre_tsk(1, {.name = "t", .itskpri = 1,
                             .task = [&] {
                                 ++runs;
                                 os.core().time_wait(10_us);
                             }}),
              itron::E_OK);

    EXPECT_EQ(os.sta_wdg(1, SimTime{}, MissPolicy::Kill), itron::E_PAR);
    EXPECT_EQ(os.kck_wdg(1), itron::E_OBJ);      // never armed
    EXPECT_EQ(os.rst_tsk(1), itron::E_OBJ);      // not started yet
    EXPECT_EQ(os.rst_tsk(99), itron::E_NOEXS);
    EXPECT_EQ(os.sta_wdg(99, 10_us, MissPolicy::Kill), itron::E_NOEXS);

    ASSERT_EQ(os.sta_tsk(1), itron::E_OK);
    EXPECT_EQ(os.sta_wdg(1, 50_us, MissPolicy::Notify), itron::E_OK);
    EXPECT_EQ(os.kck_wdg(1), itron::E_OK);
    EXPECT_EQ(os.stp_wdg(1), itron::E_OK);
    os.start();
    k.run();
    EXPECT_EQ(runs, 1);

    // The task is DORMANT (terminated) now: sta_tsk revives it...
    EXPECT_EQ(os.sta_tsk(1), itron::E_OK);
    k.run();
    EXPECT_EQ(runs, 2);
    // ...and rst_tsk on a dormant task is an error (nothing to restart).
    EXPECT_EQ(os.rst_tsk(1), itron::E_OBJ);
}

// ---- determinism & campaigns ----

namespace {

/// A small contended model with probabilistic faults: enough moving parts
/// that different seeds genuinely diverge.
std::string run_seeded_model(FaultInjector& inj) {
    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.tracer = &rec;
    RtosModel os{k, cfg};
    inj.attach(os);
    os.init();
    for (int i = 0; i < 3; ++i) {
        Task* t = os.task_create("w" + std::to_string(i), TaskType::Aperiodic, {}, {},
                                 i + 1);
        os.task_set_body(t, [&os] {
            for (int j = 0; j < 4; ++j) {
                os.time_wait(7_us);
            }
        });
        os.task_start(t);
    }
    k.spawn("irq", [&] {
        for (int j = 0; j < 4; ++j) {
            k.waitfor(11_us);
            os.isr_deliver("ext", [] {});
        }
    });
    os.start();
    k.run();
    return csv_of(rec);
}

const char* kSeededPlan =
    "exec_jitter * max=3us p=0.5\n"
    "isr_delay ext delay=2us p=0.5\n"
    "isr_drop ext p=0.2\n";

}  // namespace

TEST(FaultInjector, SameSeedReplaysByteIdentically) {
    FaultInjector a(plan_of(kSeededPlan), 123);
    FaultInjector b(plan_of(kSeededPlan), 123);
    const std::string ta = run_seeded_model(a);
    const std::string tb = run_seeded_model(b);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(a.stats().total(), b.stats().total());
    EXPECT_EQ(a.stats().exec_jittered, b.stats().exec_jittered);
    EXPECT_EQ(a.stats().isr_dropped, b.stats().isr_dropped);
    EXPECT_EQ(a.stats().isr_delayed, b.stats().isr_delayed);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
    std::set<std::string> traces;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        FaultInjector inj(plan_of(kSeededPlan), seed);
        traces.insert(run_seeded_model(inj));
    }
    EXPECT_GT(traces.size(), 1u) << "six seeds all produced the same schedule";
}

TEST(Campaign, SweepIsDeterministicPerSeed) {
    const FaultPlan plan = plan_of(kSeededPlan);
    const auto sweep = [&] {
        return run_campaign(plan, {.first_seed = 10, .runs = 4},
                            [](FaultInjector& inj, CampaignRun& out) {
                                out.trace_csv = run_seeded_model(inj);
                            });
    };
    const CampaignResult a = sweep();
    const CampaignResult b = sweep();
    ASSERT_EQ(a.runs.size(), 4u);
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].seed, 10 + i);  // driver fills the seed
        EXPECT_FALSE(a.runs[i].trace_csv.empty());
        EXPECT_EQ(a.runs[i].trace_csv, b.runs[i].trace_csv);
        EXPECT_EQ(a.runs[i].injections, b.runs[i].injections);
    }
    EXPECT_EQ(a.total_injections(), b.total_injections());
}

// ---- explore integration ----

TEST(Campaign, FaultExplorerKeepsReplayIdentity) {
    // Two equal-priority tasks (a schedule choice point) under a fixed fault
    // plan: exploration enumerates schedules, and replaying a found schedule
    // reproduces its trace byte for byte because the injector is re-seeded
    // identically per path.
    FaultPlan plan = plan_of("exec_scale t0 factor=2.0\n");
    const auto build = [](explore::Run& run, FaultInjector&) {
        rtos::RtosConfig cfg;
        cfg.tracer = &run.trace();
        auto& os = run.make<rtos::RtosModel>(run.kernel(), cfg);
        os.init();
        for (const char* name : {"t0", "t1"}) {
            Task* t = os.task_create(name, TaskType::Aperiodic, {}, {}, 1);
            run.kernel().spawn(name, [&os, t] {
                os.task_activate(t);
                os.time_wait(10_us);
                os.task_terminate();
            });
        }
        os.start();
    };
    explore::Explorer ex = make_fault_explorer(plan, 5, build);
    const explore::ExploreResult res = ex.explore();
    EXPECT_GT(res.stats.paths, 1u) << "tie-break must create schedule choices";

    explore::Explorer ex2 = make_fault_explorer(plan, 5, build);
    explore::PathResult base = ex2.replay(explore::Schedule{});
    explore::PathResult again = ex2.replay(explore::Schedule{});
    EXPECT_EQ(csv_of(base.trace), csv_of(again.trace));
    // The fault plan really bit: t0 runs 20 us, so the default path ends
    // at 30 us instead of the fault-free 20 us.
    EXPECT_EQ(base.end_time, 30_us);
}

// ---- observability ----

TEST(FaultObs, RegisterFaultStatsExportsCounters) {
    Kernel k;
    RtosModel os{k};
    FaultInjector inj(plan_of("seed 9\nexec_scale t factor=3.0\n"));
    inj.attach(os);
    os.init();
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    os.task_set_body(t, [&] { os.time_wait(10_us); });
    os.task_start(t);
    os.start();
    k.run();

    obs::Registry reg;
    register_fault_stats(reg, inj);
    std::ostringstream prom;
    reg.write_prometheus(prom);
    const std::string text = prom.str();
    EXPECT_NE(text.find("slm_fault_exec_scaled_total{seed=\"9\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("slm_fault_crashes_total{seed=\"9\"} 0"), std::string::npos);
}
