#include "rtos/rtos.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::time_literals;

namespace {

/// Spawn an SLDL process refined into an RTOS task (the paper's Fig. 5
/// pattern: activate, body, terminate).
Task* add_task(Kernel& k, RtosModel& os, const std::string& name, int prio,
               std::function<void(Task*)> body, TaskType type = TaskType::Aperiodic,
               SimTime period = {}, SimTime wcet = {}, SimTime deadline = {}) {
    Task* t = os.task_create(name, type, period, wcet, prio, deadline);
    k.spawn(name, [&os, t, body = std::move(body)] {
        os.task_activate(t);
        body(t);
        os.task_terminate();
    });
    return t;
}

/// Spawn an interrupt source: at time `at`, run `isr_body` as an ISR.
void add_isr(Kernel& k, RtosModel& os, const std::string& name, SimTime at,
             std::function<void()> isr_body) {
    k.spawn(name, [&k, &os, name, at, isr_body = std::move(isr_body)] {
        k.waitfor(at);
        os.isr_enter(name);
        isr_body();
        os.interrupt_return();
    });
}

}  // namespace

TEST(Rtos, TaskLifecycleStates) {
    Kernel k;
    RtosModel os{k};
    os.init();
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 5);
    EXPECT_EQ(t->state(), TaskState::New);
    k.spawn("t", [&] {
        os.task_activate(t);
        EXPECT_EQ(t->state(), TaskState::Running);
        os.time_wait(10_us);
        os.task_terminate();
        EXPECT_EQ(t->state(), TaskState::Terminated);
    });
    os.start();
    k.run();
    EXPECT_EQ(t->state(), TaskState::Terminated);
    EXPECT_EQ(t->stats().exec_time, 10_us);
    EXPECT_EQ(t->stats().completions, 1u);
}

TEST(Rtos, SerializedExecutionAccumulatesDelays) {
    // The defining property of the architecture model (paper §4.3): delays of
    // concurrent tasks are accumulative, unlike the overlapping unscheduled
    // model. Two 50 us tasks take 100 us.
    Kernel k;
    RtosModel os{k};
    add_task(k, os, "a", 1, [&](Task*) { os.time_wait(50_us); });
    add_task(k, os, "b", 2, [&](Task*) { os.time_wait(50_us); });
    os.start();
    k.run();
    EXPECT_EQ(k.now(), 100_us);
    EXPECT_EQ(os.busy_time(), 100_us);
}

TEST(Rtos, PriorityOrderLowestNumberFirst) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> order;
    // Spawn in reverse priority order to prove ordering comes from priorities.
    add_task(k, os, "low", 30, [&](Task*) {
        os.time_wait(10_us);
        order.push_back("low");
    });
    add_task(k, os, "high", 10, [&](Task*) {
        os.time_wait(10_us);
        order.push_back("high");
    });
    add_task(k, os, "mid", 20, [&](Task*) {
        os.time_wait(10_us);
        order.push_back("mid");
    });
    os.start();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"high", "mid", "low"}));
}

TEST(Rtos, PriorityTieBreaksFifo) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> order;
    for (const char* n : {"first", "second", "third"}) {
        add_task(k, os, n, 7, [&order, &os, n](Task*) {
            os.time_wait(1_us);
            order.push_back(n);
        });
    }
    os.start();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(Rtos, PreemptionDelayedToEndOfDelayStep) {
    // Paper Fig. 8(b): the interrupt at t4 readies the high-priority task, but
    // the switch happens at t4' — the end of the running task's current
    // discrete delay step.
    Kernel k;
    RtosModel os{k};
    SimTime high_resumed;
    Task* high = nullptr;
    OsEvent* e = os.event_new("ext");
    high = add_task(k, os, "high", 1, [&](Task*) {
        os.event_wait(e);
        high_resumed = k.now();
        os.time_wait(20_us);
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(100_us);  // one coarse delay step
        os.time_wait(100_us);
    });
    add_isr(k, os, "irq", 30_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    // Interrupt at 30 us, but low's step runs to 100 us before the switch.
    EXPECT_EQ(high_resumed, 100_us);
    EXPECT_EQ(high->stats().exec_time, 20_us);
    EXPECT_EQ(k.now(), 220_us);  // 200 us of low + 20 us of high, serialized
}

TEST(Rtos, PreemptionGranularityImprovesResponse) {
    // Same scenario with time_wait chopped into 10 us chunks: the switch now
    // happens at the first chunk boundary after the interrupt.
    Kernel k;
    RtosConfig cfg;
    cfg.preemption_granularity = 10_us;
    RtosModel os{k, cfg};
    SimTime high_resumed;
    OsEvent* e = os.event_new("ext");
    add_task(k, os, "high", 1, [&](Task*) {
        os.event_wait(e);
        high_resumed = k.now();
        os.time_wait(20_us);
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(100_us);
        os.time_wait(100_us);
    });
    add_isr(k, os, "irq", 33_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    EXPECT_EQ(high_resumed, 40_us);  // next 10 us boundary after 33 us
    EXPECT_EQ(k.now(), 220_us);      // total work is granularity-invariant
}

TEST(Rtos, FifoIsNonPreemptive) {
    Kernel k;
    RtosConfig cfg;
    cfg.policy = SchedPolicy::Fifo;
    RtosModel os{k, cfg};
    std::vector<std::string> order;
    OsEvent* e = os.event_new("go");
    add_task(k, os, "high", 1, [&](Task*) {
        os.event_wait(e);
        order.push_back("high@" + std::to_string(k.now().ns()));
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(100_us);
        order.push_back("low@" + std::to_string(k.now().ns()));
    });
    add_isr(k, os, "irq", 10_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    // Even though "high" became ready at 10 us, FIFO never preempts.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "low@100000");
    EXPECT_EQ(order[1], "high@100000");
}

TEST(Rtos, RoundRobinRotatesOnQuantum) {
    Kernel k;
    RtosConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.quantum = 10_us;
    RtosModel os{k, cfg};
    SimTime a_done, b_done;
    add_task(k, os, "a", 5, [&](Task*) {
        os.time_wait(30_us);
        a_done = k.now();
    });
    add_task(k, os, "b", 5, [&](Task*) {
        os.time_wait(30_us);
        b_done = k.now();
    });
    os.start();
    k.run();
    // a: 0-10, 20-30, 40-50; b: 10-20, 30-40, 50-60.
    EXPECT_EQ(a_done, 50_us);
    EXPECT_EQ(b_done, 60_us);
    EXPECT_GE(os.stats().context_switches, 6u);
}

TEST(Rtos, RoundRobinRespectsPriorities) {
    Kernel k;
    RtosConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.quantum = 10_us;
    RtosModel os{k, cfg};
    SimTime high_done, low_done;
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(20_us);
        low_done = k.now();
    });
    add_task(k, os, "high", 1, [&](Task*) {
        os.time_wait(20_us);
        high_done = k.now();
    });
    os.start();
    k.run();
    EXPECT_EQ(high_done, 20_us);  // never rotated out by the low-prio task
    EXPECT_EQ(low_done, 40_us);
}

TEST(Rtos, EdfPicksEarliestDeadline) {
    Kernel k;
    RtosConfig cfg;
    cfg.policy = SchedPolicy::Edf;
    RtosModel os{k, cfg};
    std::vector<std::string> order;
    // Deadlines: b (300us) < a (500us); priority field is ignored by EDF.
    add_task(
        k, os, "a", 1,
        [&](Task*) {
            os.time_wait(10_us);
            order.push_back("a");
        },
        TaskType::Aperiodic, {}, {}, 500_us);
    add_task(
        k, os, "b", 9,
        [&](Task*) {
            os.time_wait(10_us);
            order.push_back("b");
        },
        TaskType::Aperiodic, {}, {}, 300_us);
    os.start();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"b", "a"}));
}

TEST(Rtos, RmsShorterPeriodWins) {
    Kernel k;
    RtosConfig cfg;
    cfg.policy = SchedPolicy::Rms;
    RtosModel os{k, cfg};
    std::vector<std::string> first_cycle_order;
    add_task(
        k, os, "slow", 1,
        [&](Task*) {
            os.time_wait(10_us);
            first_cycle_order.push_back("slow");
            os.task_endcycle();
        },
        TaskType::Periodic, 1_ms, 10_us);
    add_task(
        k, os, "fast", 9,
        [&](Task*) {
            os.time_wait(10_us);
            first_cycle_order.push_back("fast");
            os.task_endcycle();
        },
        TaskType::Periodic, 200_us, 10_us);
    os.start();
    k.run_until(150_us);
    EXPECT_EQ(first_cycle_order, (std::vector<std::string>{"fast", "slow"}));
}

TEST(Rtos, PeriodicTaskReleasesOnPeriod) {
    Kernel k;
    RtosModel os{k};
    std::vector<SimTime> releases;
    add_task(
        k, os, "p", 1,
        [&](Task*) {
            for (int i = 0; i < 5; ++i) {
                releases.push_back(k.now());
                os.time_wait(30_us);
                os.task_endcycle();
            }
        },
        TaskType::Periodic, 100_us, 30_us);
    os.start();
    k.run();
    ASSERT_EQ(releases.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(releases[static_cast<std::size_t>(i)],
                  microseconds(static_cast<std::uint64_t>(i) * 100));
    }
}

TEST(Rtos, PeriodicResponseTimeTracked) {
    Kernel k;
    RtosModel os{k};
    Task* t = add_task(
        k, os, "p", 1,
        [&](Task*) {
            for (int i = 0; i < 4; ++i) {
                os.time_wait(25_us);
                os.task_endcycle();
            }
        },
        TaskType::Periodic, 100_us, 25_us);
    os.start();
    k.run();
    EXPECT_EQ(t->stats().completions, 4u);
    EXPECT_EQ(t->stats().max_response, 25_us);
    EXPECT_EQ(t->stats().total_response, 100_us);
    EXPECT_EQ(t->stats().deadline_misses, 0u);
}

TEST(Rtos, DeadlineMissDetected) {
    Kernel k;
    RtosModel os{k};
    Task* t = add_task(
        k, os, "p", 1,
        [&](Task*) {
            for (int i = 0; i < 3; ++i) {
                os.time_wait(150_us);  // exceeds the 100 us period
                os.task_endcycle();
            }
        },
        TaskType::Periodic, 100_us, 150_us);
    os.start();
    k.run();
    EXPECT_EQ(t->stats().deadline_misses, 3u);
    EXPECT_EQ(os.stats().deadline_misses, 3u);
}

TEST(Rtos, ExplicitRelativeDeadlineUsed) {
    Kernel k;
    RtosModel os{k};
    // Deadline 40 us < period 100 us: a 50 us execution misses every cycle.
    Task* t = add_task(
        k, os, "p", 1,
        [&](Task*) {
            for (int i = 0; i < 2; ++i) {
                os.time_wait(50_us);
                os.task_endcycle();
            }
        },
        TaskType::Periodic, 100_us, 50_us, 40_us);
    os.start();
    k.run();
    EXPECT_EQ(t->stats().deadline_misses, 2u);
}

TEST(Rtos, TaskSleepAndActivate) {
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> log;
    Task* sleeper = add_task(k, os, "sleeper", 1, [&](Task*) {
        log.push_back("pre-sleep@" + std::to_string(k.now().ns()));
        os.task_sleep();
        log.push_back("woken@" + std::to_string(k.now().ns()));
    });
    add_task(k, os, "waker", 5, [&](Task*) {
        os.time_wait(50_us);
        os.task_activate(sleeper);
        os.time_wait(10_us);
    });
    os.start();
    k.run();
    // sleeper (high prio) runs first, sleeps; waker runs 50 us, activates
    // sleeper which preempts immediately (activation is a syscall boundary).
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], "pre-sleep@0");
    EXPECT_EQ(log[1], "woken@50000");
}

TEST(Rtos, ActivateSuspendedFromLowerPrioYieldsImmediately) {
    Kernel k;
    RtosModel os{k};
    SimTime low_finished;
    Task* high = add_task(k, os, "high", 1, [&](Task*) {
        os.task_sleep();
        os.time_wait(30_us);
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(10_us);
        os.task_activate(high);  // high preempts inside this call
        os.time_wait(10_us);
        low_finished = k.now();
    });
    os.start();
    k.run();
    EXPECT_EQ(low_finished, 50_us);  // 10 + (30 high) + 10
}

TEST(Rtos, TaskKillReadyTask) {
    Kernel k;
    RtosModel os{k};
    bool victim_ran = false;
    Task* victim = add_task(k, os, "victim", 9, [&](Task*) {
        victim_ran = true;
        os.time_wait(10_us);
    });
    add_task(k, os, "killer", 1, [&](Task*) {
        os.task_kill(victim);
        os.time_wait(5_us);
    });
    os.start();
    k.run();
    EXPECT_FALSE(victim_ran);
    EXPECT_EQ(victim->state(), TaskState::Terminated);
}

TEST(Rtos, TaskKillWaitingTaskCleansEventQueue) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("never");
    Task* victim = add_task(k, os, "victim", 1, [&](Task*) { os.event_wait(e); });
    add_task(k, os, "killer", 5, [&](Task*) {
        os.time_wait(10_us);
        os.task_kill(victim);
    });
    os.start();
    k.run();
    EXPECT_EQ(victim->state(), TaskState::Terminated);
    EXPECT_EQ(e->waiter_count(), 0u);
    EXPECT_TRUE(k.blocked_processes().empty());
}

TEST(Rtos, TaskKillSelfActsAsTerminate) {
    Kernel k;
    RtosModel os{k};
    bool after_kill = false;
    Task* t = nullptr;
    t = add_task(k, os, "suicidal", 1, [&](Task* me) {
        os.time_wait(5_us);
        os.task_kill(me);
        after_kill = true;  // must never run
    });
    os.start();
    k.run();
    EXPECT_FALSE(after_kill);
    EXPECT_EQ(t->state(), TaskState::Terminated);
}

TEST(Rtos, TaskKillRunningFromIsr) {
    Kernel k;
    RtosModel os{k};
    Task* victim = add_task(k, os, "victim", 5, [&](Task*) { os.time_wait(100_us); });
    SimTime other_start;
    add_task(k, os, "other", 9, [&](Task*) {
        other_start = k.now();
        os.time_wait(10_us);
    });
    add_isr(k, os, "irq", 30_us, [&] { os.task_kill(victim); });
    os.start();
    k.run();
    EXPECT_EQ(victim->state(), TaskState::Terminated);
    // "other" is dispatched right at the kill (the CPU went idle at 30 us).
    EXPECT_EQ(other_start, 30_us);
}

TEST(Rtos, ParStartSuspendsParentUntilParEnd) {
    // The paper's Fig. 6 refinement: dynamic fork/join of child tasks.
    Kernel k;
    RtosModel os{k};
    std::vector<std::string> log;
    Task* tb2 = os.task_create("B2", TaskType::Aperiodic, {}, {}, 2);
    Task* tb3 = os.task_create("B3", TaskType::Aperiodic, {}, {}, 1);
    k.spawn("Task_PE", [&] {
        Task* me = os.task_create("PE", TaskType::Aperiodic, {}, {}, 0);
        os.task_activate(me);
        os.time_wait(10_us);  // B1
        log.push_back("B1-done@" + std::to_string(k.now().ns()));
        Task* parent = os.par_start();
        k.par({[&] {
                   os.task_activate(tb2);
                   os.time_wait(20_us);
                   log.push_back("B2-done@" + std::to_string(k.now().ns()));
                   os.task_terminate();
               },
               [&] {
                   os.task_activate(tb3);
                   os.time_wait(30_us);
                   log.push_back("B3-done@" + std::to_string(k.now().ns()));
                   os.task_terminate();
               }});
        os.par_end(parent);
        log.push_back("join@" + std::to_string(k.now().ns()));
        os.task_terminate();
    });
    os.start();
    k.run();
    // B3 has higher priority; children serialize: B3 10..40, B2 40..60.
    EXPECT_EQ(log, (std::vector<std::string>{"B1-done@10000", "B3-done@40000",
                                             "B2-done@60000", "join@60000"}));
}

TEST(Rtos, EventNotifyWakesAllWaiters) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("e");
    std::vector<std::string> order;
    add_task(k, os, "w1", 5, [&](Task*) {
        os.event_wait(e);
        order.push_back("w1");
        os.time_wait(1_us);
    });
    add_task(k, os, "w2", 1, [&](Task*) {
        os.event_wait(e);
        order.push_back("w2");
        os.time_wait(1_us);
    });
    add_isr(k, os, "irq", 10_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    // Both wake; the higher-priority waiter (w2) is dispatched first.
    EXPECT_EQ(order, (std::vector<std::string>{"w2", "w1"}));
}

TEST(Rtos, EventNotifyWithNoWaitersIsLost) {
    Kernel k;
    RtosModel os{k};
    bool woke = false;
    OsEvent* e = os.event_new("e");
    add_task(k, os, "late", 1, [&](Task*) {
        os.time_wait(10_us);
        os.event_wait(e);  // the notify below already happened
        woke = true;
    });
    add_isr(k, os, "irq", 1_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    EXPECT_FALSE(woke);
}

TEST(Rtos, EventDelRemovesEvent) {
    Kernel k;
    RtosModel os{k};
    add_task(k, os, "t", 1, [&](Task*) {
        OsEvent* e = os.event_new("tmp");
        os.event_notify(e);  // no waiters: lost
        os.event_del(e);
        os.time_wait(1_us);
    });
    os.start();
    k.run();
    EXPECT_EQ(k.now(), 1_us);
}

TEST(Rtos, ContextSwitchesCounted) {
    Kernel k;
    RtosModel os{k};
    add_task(k, os, "a", 1, [&](Task*) { os.time_wait(10_us); });
    add_task(k, os, "b", 2, [&](Task*) { os.time_wait(10_us); });
    os.start();
    k.run();
    // dispatch a (1 switch), a terminates -> dispatch b (1 switch).
    EXPECT_EQ(os.stats().context_switches, 2u);
}

TEST(Rtos, ContextSwitchOverheadChargesTime) {
    Kernel k;
    RtosConfig cfg;
    cfg.context_switch_overhead = 3_us;
    RtosModel os{k, cfg};
    add_task(k, os, "a", 1, [&](Task*) { os.time_wait(10_us); });
    add_task(k, os, "b", 2, [&](Task*) { os.time_wait(10_us); });
    os.start();
    k.run();
    // 2 switches x 3 us overhead + 20 us work.
    EXPECT_EQ(k.now(), 26_us);
}

TEST(Rtos, TracerRecordsSerializedExecution) {
    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.cpu_name = "PE0";
    cfg.tracer = &rec;
    RtosModel os{k, cfg};
    add_task(k, os, "a", 1, [&](Task*) { os.time_wait(10_us); });
    add_task(k, os, "b", 2, [&](Task*) { os.time_wait(10_us); });
    os.start();
    k.run();
    EXPECT_FALSE(rec.has_concurrent_execution("PE0"));
    EXPECT_EQ(rec.context_switches("PE0"), 2u);
    const auto ivs_a = rec.intervals("a");
    ASSERT_EQ(ivs_a.size(), 1u);
    EXPECT_EQ(ivs_a[0].begin, SimTime::zero());
    EXPECT_EQ(ivs_a[0].end, 10_us);
    const auto ivs_b = rec.intervals("b");
    ASSERT_EQ(ivs_b.size(), 1u);
    EXPECT_EQ(ivs_b[0].begin, 10_us);
    EXPECT_EQ(ivs_b[0].end, 20_us);
}

TEST(Rtos, StartPolicyOverride) {
    Kernel k;
    RtosModel os{k};  // config default: Priority
    std::vector<std::string> order;
    OsEvent* e = os.event_new("go");
    add_task(k, os, "high", 1, [&](Task*) {
        os.event_wait(e);
        order.push_back("high");
    });
    add_task(k, os, "low", 9, [&](Task*) {
        os.time_wait(100_us);
        order.push_back("low");
    });
    add_isr(k, os, "irq", 10_us, [&] { os.event_notify(e); });
    os.start(SchedPolicy::Fifo);  // override: non-preemptive
    k.run();
    EXPECT_EQ(std::string(os.policy().name()), "FIFO");
    EXPECT_EQ(order, (std::vector<std::string>{"low", "high"}));
}

TEST(Rtos, InterruptReturnDispatchesWhenIdle) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("ext");
    SimTime resumed;
    add_task(k, os, "t", 1, [&](Task*) {
        os.event_wait(e);  // CPU idle while waiting
        resumed = k.now();
    });
    add_isr(k, os, "irq", 42_us, [&] { os.event_notify(e); });
    os.start();
    k.run();
    EXPECT_EQ(resumed, 42_us);  // immediate dispatch: nothing was running
    EXPECT_EQ(os.stats().isr_entries, 1u);
}

TEST(Rtos, SelfReturnsBoundTask) {
    Kernel k;
    RtosModel os{k};
    Task* t = nullptr;
    const Task* seen = nullptr;
    t = add_task(k, os, "t", 1, [&](Task*) { seen = os.self(); });
    os.start();
    k.run();
    EXPECT_EQ(seen, t);
    EXPECT_EQ(os.self(), nullptr);  // outside process context
}

TEST(Rtos, RunningTaskVisible) {
    Kernel k;
    RtosModel os{k};
    add_task(k, os, "t", 1, [&](Task* me) {
        EXPECT_EQ(os.running_task(), me);
        os.time_wait(1_us);
    });
    os.start();
    k.run();
    EXPECT_EQ(os.running_task(), nullptr);
}

TEST(Rtos, BusyTimeSumsAllTasks) {
    Kernel k;
    RtosModel os{k};
    add_task(k, os, "a", 1, [&](Task*) { os.time_wait(7_us); });
    add_task(k, os, "b", 2, [&](Task*) { os.time_wait(5_us); });
    os.start();
    k.run();
    EXPECT_EQ(os.busy_time(), 12_us);
}

TEST(Rtos, TimeWaitZeroIsSyscallBoundary) {
    Kernel k;
    RtosModel os{k};
    add_task(k, os, "t", 1, [&](Task*) { os.time_wait(SimTime::zero()); });
    os.start();
    k.run();
    EXPECT_EQ(k.now(), SimTime::zero());
}

TEST(Rtos, TwoRtosInstancesAreIndependent) {
    // Two PEs, each with its own RTOS: tasks on different PEs overlap in time,
    // tasks on the same PE serialize.
    Kernel k;
    RtosConfig c0, c1;
    c0.cpu_name = "PE0";
    c1.cpu_name = "PE1";
    RtosModel os0{k, c0}, os1{k, c1};
    add_task(k, os0, "pe0_a", 1, [&](Task*) { os0.time_wait(50_us); });
    add_task(k, os0, "pe0_b", 2, [&](Task*) { os0.time_wait(50_us); });
    add_task(k, os1, "pe1_a", 1, [&](Task*) { os1.time_wait(80_us); });
    os0.start();
    os1.start();
    k.run();
    // PE0 needs 100 us serialized; PE1's 80 us overlaps with it.
    EXPECT_EQ(k.now(), 100_us);
    EXPECT_EQ(os0.busy_time(), 100_us);
    EXPECT_EQ(os1.busy_time(), 80_us);
}

// ---- parameterized policy sweep: cross-policy invariants ----

class PolicySweep : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(PolicySweep, WorkConservingSerialization) {
    // N CPU-bound tasks with mixed attributes: under every policy, the model
    // must serialize execution (makespan == total work) and every task must
    // finish exactly its own work.
    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.policy = GetParam();
    cfg.quantum = 7_us;
    cfg.tracer = &rec;
    RtosModel os{k, cfg};
    constexpr int kTasks = 8;
    SimTime total;
    for (int i = 0; i < kTasks; ++i) {
        const SimTime work = microseconds(static_cast<std::uint64_t>(11 + 13 * i));
        total += work;
        add_task(
            k, os, "t" + std::to_string(i), i % 3, [&os, work](Task*) {
                os.time_wait(work / 2);
                os.time_wait(work - work / 2);
            },
            TaskType::Aperiodic, {}, {}, microseconds(100 + 50u * static_cast<unsigned>(i)));
    }
    os.start();
    k.run();
    EXPECT_EQ(k.now(), total);
    EXPECT_EQ(os.busy_time(), total);
    EXPECT_FALSE(rec.has_concurrent_execution("cpu0"));
    for (const Task* t : os.tasks()) {
        EXPECT_EQ(t->state(), TaskState::Terminated) << t->name();
    }
}

TEST_P(PolicySweep, BlockedTasksDoNotHoldCpu) {
    // One task blocks on an event mid-way; the others keep the CPU busy.
    Kernel k;
    RtosConfig cfg;
    cfg.policy = GetParam();
    cfg.quantum = 5_us;
    RtosModel os{k, cfg};
    OsEvent* e = os.event_new("e");
    add_task(
        k, os, "blocker", 0,
        [&](Task*) {
            os.time_wait(10_us);
            os.event_wait(e);
            os.time_wait(10_us);
        },
        TaskType::Aperiodic, {}, {}, 100_us);
    add_task(
        k, os, "worker", 1,
        [&](Task*) {
            os.time_wait(40_us);
            os.event_notify(e);
            os.time_wait(10_us);
        },
        TaskType::Aperiodic, {}, {}, 200_us);
    os.start();
    k.run();
    EXPECT_EQ(k.now(), 70_us);  // all 70 us of work, no idle gaps
    EXPECT_EQ(os.busy_time(), 70_us);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values(SchedPolicy::Fifo, SchedPolicy::Priority,
                                           SchedPolicy::RoundRobin, SchedPolicy::Edf,
                                           SchedPolicy::Rms),
                         [](const ::testing::TestParamInfo<SchedPolicy>& info) {
                             return to_string(info.param);
                         });

// ---- parameterized granularity sweep ----

class GranularitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GranularitySweep, ResponseBoundedByGranularity) {
    const SimTime gran = microseconds(GetParam());
    Kernel k;
    RtosConfig cfg;
    cfg.preemption_granularity = gran;
    RtosModel os{k, cfg};
    OsEvent* e = os.event_new("ext");
    SimTime resumed;
    constexpr auto kIrqAt = 37_us;
    add_task(k, os, "high", 1, [&](Task*) {
        os.event_wait(e);
        resumed = k.now();
    });
    add_task(k, os, "low", 9, [&](Task*) { os.time_wait(200_us); });
    add_isr(k, os, "irq", kIrqAt, [&] { os.event_notify(e); });
    os.start();
    k.run();
    // The dispatch latency is at most one delay-model step.
    EXPECT_GE(resumed, kIrqAt);
    EXPECT_LE((resumed - kIrqAt).ns(), gran.ns());
    // And the switch happens exactly at a chunk boundary.
    EXPECT_EQ(resumed.ns() % gran.ns(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Granularities, GranularitySweep,
                         ::testing::Values(1u, 2u, 5u, 10u, 20u, 50u, 100u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                             return std::to_string(info.param) + "us";
                         });
