// Contract-violation tests: misuse of the modeling APIs must abort loudly
// with a location message (SLM_ASSERT), never corrupt the simulation. These
// use gtest death tests; each scenario runs in a forked child.

#include <gtest/gtest.h>

#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::time_literals;

TEST(Contracts, WaitOutsideProcessContextAborts) {
    Kernel k;
    Event e{k, "e"};
    EXPECT_DEATH(k.wait(e), "process context");
}

TEST(Contracts, WaitforOutsideProcessContextAborts) {
    Kernel k;
    EXPECT_DEATH(k.waitfor(1_us), "process context");
}

TEST(Contracts, WaitforForeverAborts) {
    Kernel k;
    k.spawn("p", [&] { k.waitfor(SimTime::max()); });
    EXPECT_DEATH(k.run(), "never wake");
}

TEST(Contracts, SpawnWithoutBodyAborts) {
    Kernel k;
    EXPECT_DEATH((void)k.spawn("empty", nullptr), "process body");
}

TEST(Contracts, MutexUnlockByNonOwnerAborts) {
    Kernel k;
    Mutex m{k};
    k.spawn("owner", [&] {
        m.lock();
        k.waitfor(10_us);
        m.unlock();
    });
    k.spawn("thief", [&] {
        k.waitfor(1_us);
        m.unlock();  // not the owner
    });
    EXPECT_DEATH(k.run(), "non-owner");
}

TEST(Contracts, RecursiveMutexLockAborts) {
    Kernel k;
    Mutex m{k};
    k.spawn("p", [&] {
        m.lock();
        m.lock();
    });
    EXPECT_DEATH(k.run(), "not recursive");
}

TEST(Contracts, TimeWaitFromNonTaskAborts) {
    Kernel k;
    RtosModel os{k};
    k.spawn("raw", [&] { os.time_wait(1_us); });
    os.start();
    EXPECT_DEATH(k.run(), "running task");
}

TEST(Contracts, DoubleStartAborts) {
    Kernel k;
    RtosModel os{k};
    os.start();
    EXPECT_DEATH(os.start(), "twice");
}

TEST(Contracts, PeriodicTaskNeedsPeriod) {
    Kernel k;
    RtosModel os{k};
    EXPECT_DEATH((void)os.task_create("p", TaskType::Periodic, SimTime::zero(),
                                      1_us, 0),
                 "period");
}

TEST(Contracts, EndcycleOnAperiodicAborts) {
    Kernel k;
    RtosModel os{k};
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 0);
    k.spawn("t", [&] {
        os.task_activate(t);
        os.task_endcycle();
    });
    os.start();
    EXPECT_DEATH(k.run(), "periodic");
}

TEST(Contracts, EventDelWithWaitersAborts) {
    Kernel k;
    RtosModel os{k};
    OsEvent* e = os.event_new("e");
    Task* waiter = os.task_create("waiter", TaskType::Aperiodic, {}, {}, 1);
    Task* deleter = os.task_create("deleter", TaskType::Aperiodic, {}, {}, 2);
    k.spawn("waiter", [&] {
        os.task_activate(waiter);
        os.event_wait(e);
    });
    k.spawn("deleter", [&] {
        os.task_activate(deleter);
        os.event_del(e);
    });
    os.start();
    EXPECT_DEATH(k.run(), "waiting");
}

TEST(Contracts, ActivateBoundTaskFromOtherProcessAborts) {
    Kernel k;
    RtosModel os{k};
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    k.spawn("a", [&] {
        os.task_activate(t);
        os.time_wait(10_us);
    });
    k.spawn("b", [&] {
        os.task_activate(t);  // New-task activation from a foreign process is
                              // fine only for the task's own process... but t
                              // is already bound once "a" ran.
        os.time_wait(10_us);
    });
    os.start();
    // "b" reaches task_activate while t is Running -> no-op; then b tries to
    // bind itself to a second task? No: b has no task, so time_wait aborts.
    EXPECT_DEATH(k.run(), "running task");
}

TEST(Contracts, ParEndWithoutParStartAborts) {
    Kernel k;
    RtosModel os{k};
    Task* t = os.task_create("t", TaskType::Aperiodic, {}, {}, 1);
    k.spawn("t", [&] {
        os.task_activate(t);
        os.par_end(t);  // t is Running, not ParWait
    });
    os.start();
    EXPECT_DEATH(k.run(), "par_start");
}

TEST(Contracts, GanttNeedsWindow) {
    trace::TraceRecorder rec;
    EXPECT_DEATH((void)rec.render_gantt(10_us, 10_us), "window");
}
