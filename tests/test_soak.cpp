#include "soak/soak.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "soak/gen.hpp"
#include "soak/shrink.hpp"
#include "sys/spec.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

std::string scenario_bytes(const soak::Scenario& sc) {
    std::ostringstream os;
    soak::write_scenario_json(os, sc);
    return os.str();
}

std::string soak_bytes(const soak::SoakResult& res) {
    std::ostringstream os;
    soak::write_soak_json(os, res);
    return os.str();
}

/// Small-but-representative config: enough seeds to hit every family.
soak::SoakConfig small_config() {
    soak::SoakConfig cfg;
    cfg.scenarios = 10;
    cfg.gen.jobs_target = 120;
    return cfg;
}

}  // namespace

// ---- generator ----

TEST(SoakGen, SameSeedSameBytes) {
    const soak::GenConfig cfg;
    EXPECT_EQ(scenario_bytes(soak::generate(cfg, 42)),
              scenario_bytes(soak::generate(cfg, 42)));
    EXPECT_NE(scenario_bytes(soak::generate(cfg, 42)),
              scenario_bytes(soak::generate(cfg, 43)));
}

TEST(SoakGen, ScenariosAreValidSpecs) {
    const soak::GenConfig cfg;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const soak::Scenario sc = soak::generate(cfg, seed);
        EXPECT_TRUE(sys::validate(sc.app, sc.platform, sc.mapping).empty())
            << "seed " << seed;
        EXPECT_GE(sc.app.tasks.size(), 1u);
        EXPECT_LE(sc.app.tasks.size(), cfg.max_tasks);
        std::uint64_t jobs = 0;
        for (const sys::TaskSpec& t : sc.app.tasks) {
            jobs += t.jobs;
        }
        EXPECT_EQ(jobs, sc.total_jobs) << "seed " << seed;
    }
}

TEST(SoakGen, OracleScenariosHaveNonzeroGranularity) {
    const soak::GenConfig cfg;
    bool saw_oracle = false;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const soak::Scenario sc = soak::generate(cfg, seed);
        if (!sc.oracle_eligible) {
            continue;
        }
        saw_oracle = true;
        // The one-chunk default would let a lower-priority job run to
        // completion unpreempted and void every analytic bound.
        EXPECT_FALSE(sc.granularity.is_zero()) << "seed " << seed;
        for (const sys::TaskSpec& t : sc.app.tasks) {
            EXPECT_FALSE(t.period.is_zero()) << "seed " << seed;
        }
    }
    EXPECT_TRUE(saw_oracle);
}

// ---- engine ----

TEST(SoakRun, CleanSoakHasNoViolations) {
    const soak::SoakResult res = soak::run_soak(small_config());
    EXPECT_EQ(res.total_violations(), 0u);
    EXPECT_EQ(res.first_failure(), nullptr);
    EXPECT_GT(res.total_jobs(), 0u);
    for (const soak::ScenarioVerdict& v : res.verdicts) {
        EXPECT_EQ(v.jobs_completed, v.expected_jobs) << v.name;
    }
}

TEST(SoakRun, OracleCoversBothDirections) {
    soak::SoakConfig cfg = small_config();
    cfg.scenarios = 24;
    const soak::SoakResult res = soak::run_soak(cfg);
    // The utilization range is drawn wide on purpose: some sets prove
    // schedulable (bound checked in sim), and the oracle must have applied
    // to a decent share of the scenarios.
    EXPECT_GT(res.oracle_checked(), 0u);
    EXPECT_GT(res.rta_schedulable_count(), 0u);
    EXPECT_EQ(res.total_violations(), 0u);
}

TEST(SoakRun, ShardingIsByteIdentical) {
    soak::SoakConfig cfg = small_config();
    cfg.jobs = 1;
    const std::string serial = soak_bytes(soak::run_soak(cfg));
    cfg.jobs = 3;
    const std::string sharded = soak_bytes(soak::run_soak(cfg));
    EXPECT_EQ(serial, sharded);
    EXPECT_NE(serial.find("\"schema\":\"slm-soak-result-v1\""), std::string::npos);
}

// ---- planted defect + shrinker ----

TEST(SoakShrink, PlantedDefectIsCaughtAndShrunk) {
    soak::SoakConfig cfg = small_config();
    // Every job runs 4x its declared cost: analytically schedulable sets now
    // blow their response-time bounds, which the oracle must catch.
    cfg.fault_plan = "seed 1\nexec_scale * factor=4.0\n";
    const soak::SoakResult res = soak::run_soak(cfg);
    const soak::ScenarioVerdict* failure = res.first_failure();
    ASSERT_NE(failure, nullptr);
    EXPECT_GT(res.total_violations(), 0u);

    std::string err;
    const auto plan = fault::FaultPlan::parse(cfg.fault_plan, &err);
    ASSERT_TRUE(plan.has_value()) << err;
    const soak::Scenario failing = soak::generate(cfg.gen, failure->seed);
    const soak::ShrinkResult shrunk = soak::shrink(failing, &*plan);
    EXPECT_TRUE(shrunk.verdict.failed());
    EXPECT_LE(shrunk.minimal.app.tasks.size(), failing.app.tasks.size());
    EXPECT_GT(shrunk.accepted, 0u);
    EXPECT_TRUE(shrunk.replay_identical);

    // The minimal repro is a pure function of (scenario, plan).
    const soak::ShrinkResult again = soak::shrink(failing, &*plan);
    EXPECT_EQ(scenario_bytes(shrunk.minimal), scenario_bytes(again.minimal));
}

// ---- invariant monitors (fed directly, no simulation) ----

TEST(SoakMonitor, DetectsLostTokenAndLostWakeup) {
    soak::SoakMonitor m;
    m.on_channel_op("c0", "send", 1_us);
    m.on_channel_op("c0", "send", 2_us);
    m.on_channel_op("c0", "recv", 3_us);
    m.on_channel_op("sem.rx", "release", 4_us);
    m.on_channel_op("sem.rx", "acquire", 5_us);
    m.on_channel_op("sem.rx", "release", 6_us);
    std::vector<std::string> out;
    m.finish(out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[0].find("lost-token: channel c0"), std::string::npos);
    EXPECT_NE(out[1].find("lost-wakeup: channel sem.rx"), std::string::npos);
}

TEST(SoakMonitor, BalancedChannelsAreClean) {
    soak::SoakMonitor m;
    for (int i = 0; i < 1000; ++i) {
        m.on_channel_op("c0", "send", microseconds(i));
        m.on_channel_op("c0", "recv", microseconds(i));
    }
    std::vector<std::string> out;
    m.finish(out);
    EXPECT_TRUE(out.empty());
}

TEST(SoakMonitor, DetectsTimeGoingBackwards) {
    soak::SoakMonitor m;
    m.on_isr("irq0", 10_us);
    m.on_isr("irq0", 5_us);
    m.on_isr("irq0", 4_us);
    std::vector<std::string> out;
    m.finish(out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("monotone"), std::string::npos);
    EXPECT_NE(out[0].find("2 total"), std::string::npos);
}

// ---- soak-scale overflow regressions ----

// The counters the soak harness aggregates must stay 64-bit: multi-million-job
// runs overflow 32-bit counts in minutes of simulated time. A narrowing
// refactor should fail here, not wrap in production.
static_assert(std::is_same_v<decltype(rtos::TaskStats::activations), std::uint64_t>);
static_assert(std::is_same_v<decltype(rtos::TaskStats::completions), std::uint64_t>);
static_assert(std::is_same_v<decltype(rtos::TaskStats::deadline_misses), std::uint64_t>);
static_assert(std::is_same_v<decltype(rtos::RtosStats::dispatches), std::uint64_t>);
static_assert(std::is_same_v<decltype(rtos::RtosStats::context_switches), std::uint64_t>);
static_assert(std::is_same_v<decltype(rtos::RtosStats::syscalls), std::uint64_t>);
static_assert(std::is_same_v<decltype(sim::KernelStats::delta_cycles), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(sim::KernelStats::process_activations), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(soak::ScenarioVerdict::jobs_completed), std::uint64_t>);

TEST(SoakScale, AggregatesSurvivePastUint32) {
    soak::SoakResult res;
    res.verdicts.resize(3);
    for (soak::ScenarioVerdict& v : res.verdicts) {
        v.jobs_completed = std::uint64_t{3'000'000'000};  // > 2^31 each
        v.deadline_misses = std::uint64_t{2'200'000'000};
        v.preemptions = std::uint64_t{4'100'000'000};
    }
    EXPECT_EQ(res.total_jobs(), std::uint64_t{9'000'000'000});
    EXPECT_EQ(res.total_deadline_misses(), std::uint64_t{6'600'000'000});
}

TEST(SoakScale, HistogramCountIsExactAtMillions) {
    obs::Histogram h{{1.0, 10.0, 100.0}};
    constexpr std::uint64_t kN = 2'000'000;
    for (std::uint64_t i = 0; i < kN; ++i) {
        h.observe(static_cast<double>(i % 200));
    }
    EXPECT_EQ(h.count(), kN);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : h.bucket_counts()) {
        bucket_total += c;
    }
    EXPECT_EQ(bucket_total, kN);
}

// ---- metrics export ----

TEST(SoakStats, RegistersAllFamilies) {
    const soak::SoakResult res = soak::run_soak(small_config());
    obs::Registry reg;
    soak::register_soak_stats(reg, res);
    std::ostringstream os;
    reg.write_prometheus(os);
    const std::string prom = os.str();
    for (const char* family :
         {"slm_soak_scenarios", "slm_soak_jobs_total", "slm_soak_violations_total",
          "slm_soak_suspicious_total", "slm_soak_oracle_checked",
          "slm_soak_rta_schedulable", "slm_soak_deadline_misses_total",
          "slm_soak_hyperperiod_overflows_total"}) {
        EXPECT_NE(prom.find(family), std::string::npos) << family;
    }
}
