#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "sys/sweep.hpp"
#include "vocoder/system.hpp"

using namespace slm;
using namespace slm::time_literals;

namespace {

/// Run the canonical two-PE vocoder split with `rec` wired in; the System is
/// scoped so core teardown closes every task-state span before we look.
std::shared_ptr<vocoder::VocoderSysOutcome> run_two_pe(std::size_t frames,
                                                       obs::SpanRecorder& rec) {
    vocoder::VocoderConfig cfg;
    cfg.frames = frames;
    sys::SystemOptions opts;
    opts.base_rtos = cfg.rtos;
    opts.spans = &rec;
    sys::System system{vocoder::vocoder_app_spec(cfg.frames),
                       vocoder::vocoder_two_pe_platform(cfg),
                       vocoder::vocoder_split_mapping(), opts};
    auto outcome = vocoder::attach_vocoder_behaviors(system, cfg);
    system.run();
    return outcome;
}

bool is_task_state(obs::SpanKind k) {
    switch (k) {
        case obs::SpanKind::TaskRun:
        case obs::SpanKind::TaskReady:
        case obs::SpanKind::TaskPreempt:
        case obs::SpanKind::TaskBlock:
        case obs::SpanKind::TaskIdle:
            return true;
        default:
            return false;
    }
}

}  // namespace

// ---- SpanRecorder mechanics ----

TEST(SpanRecorderTest, IdsAreDenseAndOpenCountTracksLifecycle) {
    obs::SpanRecorder rec;
    const std::uint64_t a =
        rec.begin_span(1_us, obs::SpanKind::Job, "PE0", "task_a");
    const std::uint64_t b =
        rec.begin_span(2_us, obs::SpanKind::Recv, "PE0", "chan", "task_a", {}, a);
    EXPECT_EQ(a, 1u);  // span id = record index + 1
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.open_count(), 2u);
    EXPECT_EQ(rec.rec(0).t_end_ns, obs::SpanRecorder::kOpenEnd);

    rec.end_span(b, 5_us);
    EXPECT_EQ(rec.open_count(), 1u);
    EXPECT_EQ(rec.rec(1).t_begin_ns, 2000u);
    EXPECT_EQ(rec.rec(1).t_end_ns, 5000u);
    EXPECT_EQ(rec.rec(1).parent, a);

    rec.end_span(a, 5_us);
    EXPECT_EQ(rec.open_count(), 0u);
}

TEST(SpanRecorderTest, InternsRepeatedStringsOnce) {
    obs::SpanRecorder rec;
    for (int i = 0; i < 100; ++i) {
        rec.instant(nanoseconds(static_cast<std::uint64_t>(i)),
                    obs::SpanKind::ChannelOp, "PE0", "frame_q", "send");
    }
    EXPECT_EQ(rec.size(), 100u);
    // "", "PE0", "frame_q", "send" — one entry each no matter the repeats.
    EXPECT_EQ(rec.string_count(), 4u);
    EXPECT_EQ(rec.str(rec.rec(0).name), "frame_q");
    EXPECT_EQ(rec.rec(0).name, rec.rec(99).name);
}

TEST(SpanRecorderTest, MutatorsRewriteOpenSpansInPlace) {
    obs::SpanRecorder rec;
    const std::uint64_t id =
        rec.begin_span(0_us, obs::SpanKind::TaskReady, "PE0", "worker");
    rec.reclassify(id, obs::SpanKind::TaskPreempt);
    rec.set_token(id, obs::TokenRef{42, 1000});
    rec.set_value(id, 7);
    rec.end_span(id, 3_us);

    const obs::SpanRecorder::SpanRec& r = rec.rec(0);
    EXPECT_EQ(static_cast<obs::SpanKind>(r.kind), obs::SpanKind::TaskPreempt);
    EXPECT_EQ(r.token_id, 42u);
    EXPECT_EQ(r.token_born_ns, 1000u);
    EXPECT_EQ(r.value, 7u);
}

TEST(SpanRecorderTest, InstantAndCompleteAreClosedOnArrival) {
    obs::SpanRecorder rec;
    rec.instant(4_us, obs::SpanKind::Isr, "PE1", "bus_irq");
    rec.complete(1_us, 2_us, obs::SpanKind::BusXfer, "", "bits_q", "sys_bus",
                 obs::TokenRef{3, 0});
    EXPECT_EQ(rec.open_count(), 0u);
    EXPECT_EQ(rec.rec(0).t_begin_ns, rec.rec(0).t_end_ns);
    EXPECT_EQ(rec.rec(1).t_begin_ns, 1000u);
    EXPECT_EQ(rec.rec(1).t_end_ns, 2000u);
    EXPECT_EQ(rec.str(rec.rec(1).pe), "");
    EXPECT_EQ(rec.rec(1).token_id, 3u);
}

TEST(SpanRecorderTest, ClearResetsRecordsStringsAndOpenCount) {
    obs::SpanRecorder rec;
    const std::uint64_t id = rec.begin_span(1_us, obs::SpanKind::Job, "PE0", "t");
    (void)id;
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.open_count(), 0u);
    // Ids restart dense after clear.
    EXPECT_EQ(rec.begin_span(0_us, obs::SpanKind::Job, "PE0", "t"), 1u);
}

// ---- end-to-end: the two-PE vocoder ----

TEST(SpanModelTest, EveryTokenCriticalPathIsExact) {
    obs::SpanRecorder rec;
    auto outcome = run_two_pe(5, rec);
    ASSERT_TRUE(outcome->data_ok);

    const std::vector<obs::CriticalPath> paths = obs::extract_critical_paths(rec);
    ASSERT_EQ(paths.size(), 5u);  // one per frame
    for (const obs::CriticalPath& cp : paths) {
        EXPECT_TRUE(cp.valid);
        EXPECT_TRUE(cp.exact()) << "token " << cp.token_id << ": categories sum to "
                                << cp.category_sum() << " but observed latency is "
                                << cp.total_ns;
        EXPECT_EQ(cp.recorded_ns - cp.anchor_ns, cp.total_ns);
        EXPECT_GE(cp.hops, 1u);  // driver -> encoder -> decoder crosses channels
        EXPECT_EQ(cp.sink, "decoder");
        // Segments are contiguous and cover the window exactly.
        ASSERT_FALSE(cp.segments.empty());
        EXPECT_EQ(cp.segments.front().begin_ns, cp.anchor_ns);
        EXPECT_EQ(cp.segments.back().end_ns, cp.recorded_ns);
        for (std::size_t i = 1; i < cp.segments.size(); ++i) {
            EXPECT_EQ(cp.segments[i].begin_ns, cp.segments[i - 1].end_ns);
        }
    }
    // worst_critical_path picks the largest sample of the same set.
    const obs::CriticalPath worst = obs::worst_critical_path(rec);
    ASSERT_TRUE(worst.valid);
    std::uint64_t max_total = 0;
    for (const obs::CriticalPath& cp : paths) {
        max_total = std::max(max_total, cp.total_ns);
    }
    EXPECT_EQ(worst.total_ns, max_total);
}

TEST(SpanModelTest, SpanDagInvariantsHold) {
    obs::SpanRecorder rec;
    (void)run_two_pe(3, rec);

    // Teardown closed everything.
    EXPECT_EQ(rec.open_count(), 0u);
    ASSERT_GT(rec.size(), 0u);

    std::size_t with_parent = 0;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> state_end;
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const obs::SpanRecorder::SpanRec& r = rec.rec(i);
        EXPECT_LT(r.kind, obs::kSpanKindCount);
        EXPECT_NE(r.t_end_ns, obs::SpanRecorder::kOpenEnd);
        EXPECT_LE(r.t_begin_ns, r.t_end_ns);
        if (r.parent != 0) {
            // No orphan or forward parents: a parent is an earlier span.
            ++with_parent;
            ASSERT_LE(r.parent, rec.size());
            EXPECT_LT(r.parent, i + 1);  // strictly earlier than this span's id
            EXPECT_LE(rec.rec(r.parent - 1).t_begin_ns, r.t_begin_ns);
        }
        if (is_task_state(static_cast<obs::SpanKind>(r.kind))) {
            // Per-task state timeline: monotone, non-overlapping spans.
            const auto key = std::make_pair(r.pe, r.name);
            const auto it = state_end.find(key);
            if (it != state_end.end()) {
                EXPECT_LE(it->second, r.t_begin_ns)
                    << "overlapping state spans for " << rec.str(r.pe) << "/"
                    << rec.str(r.name);
            }
            state_end[key] = r.t_end_ns;
        }
    }
    // Recv/Send/Latency spans hang off their Job spans.
    EXPECT_GT(with_parent, 0u);
}

TEST(SpanModelTest, SpanDumpIsDeterministicAcrossRuns) {
    obs::SpanRecorder a;
    obs::SpanRecorder b;
    (void)run_two_pe(3, a);
    (void)run_two_pe(3, b);
    std::ostringstream ja;
    std::ostringstream jb;
    obs::write_span_json(ja, a);
    obs::write_span_json(jb, b);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_NE(ja.str().find("\"schema\":\"slm-span-dump-v1\""), std::string::npos);
    EXPECT_NE(ja.str().find("\"kind\":\"latency\""), std::string::npos);
}

TEST(SpanModelTest, OpenSpanDumpsEndNull) {
    obs::SpanRecorder rec;
    (void)rec.begin_span(1_us, obs::SpanKind::Job, "PE0", "stuck");
    std::ostringstream js;
    obs::write_span_json(js, rec);
    EXPECT_NE(js.str().find("\"end_ns\":null"), std::string::npos);
}

TEST(SpanModelTest, PerfettoExportIsWellFormedAndCarriesFlows) {
    obs::SpanRecorder rec;
    (void)run_two_pe(3, rec);
    std::ostringstream js;
    obs::write_perfetto_json(js, rec);
    const std::string out = js.str();
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    // Cross-PE token hops produce paired flow events.
    EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);

    // Determinism of the export itself.
    std::ostringstream js2;
    obs::write_perfetto_json(js2, rec);
    EXPECT_EQ(out, js2.str());
}

TEST(SpanModelTest, RegisterSpanStatsSnapshotsTheRecorder) {
    obs::SpanRecorder rec;
    (void)run_two_pe(2, rec);
    obs::Registry reg;
    obs::register_span_stats(reg, rec);
    std::ostringstream prom;
    reg.write_prometheus(prom);
    const std::string out = prom.str();
    EXPECT_NE(out.find("slm_span_records"), std::string::npos);
    EXPECT_NE(out.find("slm_span_latency_records"), std::string::npos);
    EXPECT_NE(out.find("slm_span_critical_path_total_ns"), std::string::npos);
    EXPECT_NE(out.find("slm_span_critical_path_ns{category=\"compute\"}"),
              std::string::npos);
}

// ---- sweep attribution ----

TEST(SpanSweepTest, AttributedSweepIsByteIdenticalAcrossJobs) {
    vocoder::VocoderConfig cfg;
    cfg.frames = 3;
    const sys::AppSpec app = vocoder::vocoder_app_spec(cfg.frames);
    const sys::PlatformSpec platform = vocoder::vocoder_sweep_platform(cfg);
    const std::vector<sys::MappingSpec> candidates =
        sys::enumerate_mappings(app, platform, vocoder::vocoder_enum_options());

    std::string serial;
    for (const unsigned jobs : {1u, 2u}) {
        sys::SweepConfig scfg;
        scfg.jobs = jobs;
        scfg.options.base_rtos = cfg.rtos;
        scfg.attribute = true;
        const sys::SweepResult res = sys::run_sweep(app, platform, candidates, scfg,
                                                    vocoder::vocoder_setup(cfg));
        EXPECT_TRUE(res.attributed);
        for (const sys::CandidateResult& c : res.candidates) {
            EXPECT_TRUE(c.attribution.valid);
            EXPECT_TRUE(c.attribution.exact())
                << c.mapping.name << ": inexact attribution";
        }
        std::ostringstream json;
        sys::write_sweep_json(json, res);
        EXPECT_NE(json.str().find("\"attribution\":{"), std::string::npos);
        if (jobs == 1) {
            serial = json.str();
        } else {
            EXPECT_EQ(json.str(), serial);
        }
    }
}

TEST(SpanSweepTest, UnattributedSweepOmitsTheAttributionKey) {
    vocoder::VocoderConfig cfg;
    cfg.frames = 2;
    const sys::AppSpec app = vocoder::vocoder_app_spec(cfg.frames);
    const sys::PlatformSpec platform = vocoder::vocoder_sweep_platform(cfg);
    const std::vector<sys::MappingSpec> candidates =
        sys::enumerate_mappings(app, platform, vocoder::vocoder_enum_options());
    sys::SweepConfig scfg;
    scfg.options.base_rtos = cfg.rtos;
    const sys::SweepResult res = sys::run_sweep(app, platform, candidates, scfg,
                                                vocoder::vocoder_setup(cfg));
    std::ostringstream json;
    sys::write_sweep_json(json, res);
    EXPECT_EQ(json.str().find("\"attribution\""), std::string::npos);
}

TEST(SpanSweepTest, CandidateWithoutSamplesGetsNullAttribution) {
    obs::SpanRecorder rec;  // empty: no latency records at all
    const obs::CriticalPath cp = obs::worst_critical_path(rec);
    EXPECT_FALSE(cp.valid);
    EXPECT_FALSE(cp.exact());
    EXPECT_TRUE(obs::extract_critical_paths(rec).empty());
}
