// Property sweep over the paper's Fig. 3 example: randomized delay sets and
// preemption granularities must preserve the model-level invariants that the
// specific Fig. 8 numbers instantiate.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "arch/fig3.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::arch;
using namespace slm::time_literals;

namespace {

Fig3Delays random_delays(std::uint32_t seed) {
    std::mt19937 rng{seed};
    const auto us = [&rng](unsigned lo, unsigned hi) {
        return microseconds(lo + rng() % (hi - lo));
    };
    Fig3Delays d;
    d.b1 = us(5, 20);
    d.d1 = us(10, 40);
    d.d2 = us(10, 40);
    d.d3 = us(5, 30);
    d.d4 = us(3, 15);
    d.d5 = us(15, 50);
    d.d6 = us(10, 40);
    d.d7 = us(10, 35);
    d.d8 = us(5, 20);
    d.irq_at = us(40, 160);
    return d;
}

SimTime total_work(const Fig3Delays& d) {
    return d.b1 + d.d1 + d.d2 + d.d3 + d.d4 + d.d5 + d.d6 + d.d7 + d.d8;
}

SimTime max_step(const Fig3Delays& d) {
    return std::max({d.b1, d.d1, d.d2, d.d3, d.d4, d.d5, d.d6, d.d7, d.d8});
}

}  // namespace

class Fig3Sweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Fig3Sweep, InvariantsAcrossDelaySets) {
    const Fig3Delays d = random_delays(GetParam());

    trace::TraceRecorder ru;
    const Fig3Result u = run_fig3_unscheduled(&ru, d);
    trace::TraceRecorder ra;
    const Fig3Result a = run_fig3_architecture(&ra, d);

    // Serialization: only the architecture model enforces it.
    EXPECT_FALSE(ra.has_concurrent_execution("PE0"));

    // Data can never be seen before the interrupt that delivers it.
    EXPECT_GE(u.bus_data_seen, d.irq_at);
    EXPECT_GE(a.bus_data_seen, d.irq_at);
    // Serialization only delays observation.
    EXPECT_GE(a.bus_data_seen, u.bus_data_seen);

    // Completion ordering: the architecture model can only be later.
    EXPECT_GE(a.b2_done, u.b2_done);
    EXPECT_GE(a.b3_done, u.b3_done);
    EXPECT_GE(a.pe_done, u.pe_done);

    // Work conservation: the serialized makespan is bounded by total work
    // (everything is computation; waits overlap with other tasks' steps).
    EXPECT_LE(a.pe_done, total_work(d) + d.irq_at);

    // Busy-time invariance between the models.
    const SimTime b2_work = d.d5 + d.d6 + d.d7 + d.d8;
    const SimTime b3_work = d.d1 + d.d2 + d.d3 + d.d4;
    EXPECT_EQ(ru.busy_time("B2"), b2_work);
    EXPECT_EQ(ra.busy_time("task_b2"), b2_work);
    EXPECT_EQ(ru.busy_time("B3"), b3_work);
    EXPECT_EQ(ra.busy_time("task_b3"), b3_work);

    // Context switches only exist in the scheduled model.
    EXPECT_EQ(u.context_switches, 0u);
    EXPECT_GT(a.context_switches, 0u);
}

TEST_P(Fig3Sweep, DispatchLatencyBoundedByStepSize) {
    // Once the interrupt fires and B3 (the highest-priority task) is
    // runnable, the wait for the bus data is bounded by one delay step of
    // whatever is running, plus B3's own remaining pre-wait work.
    const Fig3Delays d = random_delays(GetParam());
    const Fig3Result a = run_fig3_architecture(nullptr, d);
    EXPECT_LE(a.bus_data_seen - d.irq_at, total_work(d));
    // With fine-grained delay modeling the bound tightens to the chunk size
    // whenever B3 was already blocked on the semaphore at irq time.
    rtos::RtosConfig fine;
    fine.preemption_granularity = 5_us;
    const Fig3Result af = run_fig3_architecture(nullptr, d, fine);
    EXPECT_LE(af.bus_data_seen, a.bus_data_seen);
}

TEST_P(Fig3Sweep, MakespanInvariantUnderGranularity) {
    const Fig3Delays d = random_delays(GetParam());
    const Fig3Result coarse = run_fig3_architecture(nullptr, d);
    for (const SimTime g : {50_us, 10_us, 2_us}) {
        rtos::RtosConfig cfg;
        cfg.preemption_granularity = g;
        const Fig3Result r = run_fig3_architecture(nullptr, d, cfg);
        // All work must still complete, at the same instant: chopping delay
        // steps redistributes interference but conserves total computation.
        EXPECT_EQ(r.pe_done, coarse.pe_done) << "granularity " << g.to_string();
        EXPECT_GE(r.bus_data_seen, d.irq_at);
        EXPECT_LE(r.bus_data_seen, coarse.bus_data_seen);
    }
}

TEST_P(Fig3Sweep, DeterministicPerDelaySet) {
    const Fig3Delays d = random_delays(GetParam());
    const Fig3Result r1 = run_fig3_architecture(nullptr, d);
    const Fig3Result r2 = run_fig3_architecture(nullptr, d);
    EXPECT_EQ(r1.pe_done, r2.pe_done);
    EXPECT_EQ(r1.b2_done, r2.b2_done);
    EXPECT_EQ(r1.b3_done, r2.b3_done);
    EXPECT_EQ(r1.bus_data_seen, r2.bus_data_seen);
    EXPECT_EQ(r1.context_switches, r2.context_switches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig3Sweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u,
                                           111u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& info) {
                             return "seed" + std::to_string(info.param);
                         });
