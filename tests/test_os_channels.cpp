#include "rtos/os_channels.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::time_literals;

namespace {

Task* add_task(Kernel& k, RtosModel& os, const std::string& name, int prio,
               std::function<void(Task*)> body) {
    Task* t = os.task_create(name, TaskType::Aperiodic, {}, {}, prio);
    k.spawn(name, [&os, t, body = std::move(body)] {
        os.task_activate(t);
        body(t);
        os.task_terminate();
    });
    return t;
}

void add_isr(Kernel& k, RtosModel& os, const std::string& name, SimTime at,
             std::function<void()> isr_body) {
    k.spawn(name, [&k, &os, name, at, isr_body = std::move(isr_body)] {
        k.waitfor(at);
        os.isr_enter(name);
        isr_body();
        os.interrupt_return();
    });
}

}  // namespace

// ---- OsSemaphore ----

TEST(OsSemaphore, BlocksUntilRelease) {
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    SimTime acquired_at;
    add_task(k, os, "consumer", 1, [&](Task*) {
        sem.acquire();
        acquired_at = k.now();
    });
    add_task(k, os, "producer", 5, [&](Task*) {
        os.time_wait(25_us);
        sem.release();
    });
    os.start();
    k.run();
    EXPECT_EQ(acquired_at, 25_us);
}

TEST(OsSemaphore, IsrReleaseWakesTask) {
    // The paper's Fig. 3 pattern: ISR signals the bus driver task through a
    // semaphore channel.
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    SimTime woke_at;
    add_task(k, os, "driver", 1, [&](Task*) {
        sem.acquire();
        woke_at = k.now();
    });
    add_isr(k, os, "ext_irq", 33_us, [&] { sem.release(); });
    os.start();
    k.run();
    EXPECT_EQ(woke_at, 33_us);  // CPU was idle: immediate dispatch
}

TEST(OsSemaphore, StatePersistsUnlikeEvents) {
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    bool got = false;
    add_task(k, os, "late", 1, [&](Task*) {
        os.time_wait(50_us);
        sem.acquire();  // release happened at 1 us; token is retained
        got = true;
    });
    add_isr(k, os, "irq", 1_us, [&] { sem.release(); });
    os.start();
    k.run();
    EXPECT_TRUE(got);
}

TEST(OsSemaphore, CountingBehaviour) {
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 2};
    int through = 0;
    for (int i = 0; i < 4; ++i) {
        add_task(k, os, "t" + std::to_string(i), i, [&](Task*) {
            if (sem.try_acquire()) {
                ++through;
            }
        });
    }
    os.start();
    k.run();
    EXPECT_EQ(through, 2);
    EXPECT_EQ(sem.count(), 0u);
}

TEST(OsSemaphore, ReleaseExactlyAtTimeoutInstant) {
    // The satellite boundary of detail::acquire_until: the release lands in
    // the very instant the timeout fires. Whichever of the two wakeups the
    // kernel orders first, the re-check after a timed-out wait must find the
    // token — a same-instant release is taken, never reported as a timeout.
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    bool got = false;
    SimTime done;
    add_task(k, os, "waiter", 1, [&](Task*) {
        got = sem.acquire_for(50_us);
        done = k.now();
    });
    add_isr(k, os, "irq", 50_us, [&] { sem.release(); });
    os.start();
    k.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(done, 50_us);
    EXPECT_EQ(sem.count(), 0u);  // the token was consumed, not dropped
}

TEST(OsSemaphore, ReleaseJustAfterTimeoutInstant) {
    // One nanosecond past the deadline is a genuine timeout: the waiter
    // reports failure at exactly the deadline instant and the token stays.
    Kernel k;
    RtosModel os{k};
    OsSemaphore sem{os, 0};
    bool got = true;
    SimTime done;
    add_task(k, os, "waiter", 1, [&](Task*) {
        got = sem.acquire_for(50_us);
        done = k.now();
    });
    add_isr(k, os, "irq", 50_us + 1_ns, [&] { sem.release(); });
    os.start();
    k.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(done, 50_us);
    EXPECT_EQ(sem.count(), 1u);
}

// ---- OsMutex ----

TEST(OsMutex, MutualExclusionAcrossTasks) {
    Kernel k;
    RtosModel os{k};
    OsMutex m{os};
    int in_critical = 0, max_in = 0;
    for (int i = 0; i < 3; ++i) {
        add_task(k, os, "t" + std::to_string(i), i, [&](Task*) {
            OsScopedLock lock{m};
            ++in_critical;
            max_in = std::max(max_in, in_critical);
            os.time_wait(10_us);
            --in_critical;
        });
    }
    os.start();
    k.run();
    EXPECT_EQ(max_in, 1);
    EXPECT_EQ(k.now(), 30_us);
}

TEST(OsMutex, PriorityInversionWithoutInheritance) {
    // Classic scenario: low holds the lock, medium preempts low, high waits
    // for both. Without inheritance, high's lock acquisition is delayed by
    // medium's entire execution.
    Kernel k;
    RtosModel os{k};
    OsMutex m{os, OsMutex::Protocol::None};
    OsEvent* go_high = os.event_new("goH");
    OsEvent* go_med = os.event_new("goM");
    SimTime high_acquired;
    add_task(k, os, "high", 10, [&](Task*) {
        os.event_wait(go_high);
        m.lock();
        high_acquired = k.now();
        m.unlock();
    });
    add_task(k, os, "med", 20, [&](Task*) {
        os.event_wait(go_med);
        os.time_wait(200_us);
    });
    add_task(k, os, "low", 30, [&](Task*) {
        m.lock();
        os.time_wait(50_us);  // two delay steps: preemption can land between
        os.time_wait(50_us);
        m.unlock();
    });
    add_isr(k, os, "irqH", 10_us, [&] { os.event_notify(go_high); });
    add_isr(k, os, "irqM", 20_us, [&] { os.event_notify(go_med); });
    os.start();
    k.run();
    // low's first delay step ends at 50 us; high runs, blocks on the mutex;
    // medium (ready since 20 us) then runs its full 200 us before low can
    // finish the critical section and release.
    EXPECT_EQ(high_acquired, 300_us);
}

TEST(OsMutex, PriorityInheritanceBoundsInversion) {
    Kernel k;
    RtosModel os{k};
    OsMutex m{os, OsMutex::Protocol::PriorityInheritance};
    OsEvent* go_high = os.event_new("goH");
    OsEvent* go_med = os.event_new("goM");
    SimTime high_acquired;
    add_task(k, os, "high", 10, [&](Task*) {
        os.event_wait(go_high);
        m.lock();
        high_acquired = k.now();
        m.unlock();
    });
    add_task(k, os, "med", 20, [&](Task*) {
        os.event_wait(go_med);
        os.time_wait(200_us);
    });
    add_task(k, os, "low", 30, [&](Task*) {
        m.lock();
        os.time_wait(50_us);
        os.time_wait(50_us);
        m.unlock();
    });
    add_isr(k, os, "irqH", 10_us, [&] { os.event_notify(go_high); });
    add_isr(k, os, "irqM", 20_us, [&] { os.event_notify(go_med); });
    os.start();
    k.run();
    // With inheritance, low is boosted to high's priority while holding the
    // lock, so medium cannot run in between: high acquires right when low's
    // critical section ends.
    EXPECT_EQ(high_acquired, 100_us);
}

TEST(OsMutex, PriorityCeilingPreventsPreemptionInCriticalSection) {
    // Immediate-ceiling protocol: low is boosted to the ceiling the moment it
    // locks, so medium never preempts the critical section and high (which
    // arrives later) acquires as soon as low releases.
    Kernel k;
    RtosModel os{k};
    OsMutex m{os, OsMutex::Protocol::PriorityCeiling, "res", /*ceiling=*/10};
    OsEvent* go_high = os.event_new("goH");
    OsEvent* go_med = os.event_new("goM");
    SimTime high_acquired;
    add_task(k, os, "high", 10, [&](Task*) {
        os.event_wait(go_high);
        m.lock();
        high_acquired = k.now();
        m.unlock();
    });
    add_task(k, os, "med", 20, [&](Task*) {
        os.event_wait(go_med);
        os.time_wait(200_us);
    });
    add_task(k, os, "low", 30, [&](Task* me) {
        m.lock();
        EXPECT_EQ(me->effective_priority(), 10);  // boosted at acquisition
        os.time_wait(50_us);
        os.time_wait(50_us);
        m.unlock();
        EXPECT_EQ(me->effective_priority(), 30);
    });
    add_isr(k, os, "irqH", 10_us, [&] { os.event_notify(go_high); });
    add_isr(k, os, "irqM", 20_us, [&] { os.event_notify(go_med); });
    os.start();
    k.run();
    // With the ceiling equal to high's priority, high still cannot preempt
    // the section, but acquires immediately at its end — same bound as
    // inheritance, achieved without any blocking-time chain.
    EXPECT_EQ(high_acquired, 100_us);
}

TEST(OsMutex, CeilingRestoredAfterUnlock) {
    Kernel k;
    RtosModel os{k};
    OsMutex m{os, OsMutex::Protocol::PriorityCeiling, "res", 1};
    Task* t = add_task(k, os, "t", 8, [&](Task* me) {
        {
            OsScopedLock lock{m};
            EXPECT_EQ(me->effective_priority(), 1);
            os.time_wait(10_us);
        }
        EXPECT_EQ(me->effective_priority(), 8);
        os.time_wait(10_us);
    });
    os.start();
    k.run();
    EXPECT_EQ(t->state(), TaskState::Terminated);
}

TEST(OsMutex, InheritanceRestoredAfterUnlock) {
    Kernel k;
    RtosModel os{k};
    OsMutex m{os, OsMutex::Protocol::PriorityInheritance};
    OsEvent* go_high = os.event_new("goH");
    Task* low = nullptr;
    add_task(k, os, "high", 10, [&](Task*) {
        os.event_wait(go_high);
        m.lock();
        m.unlock();
    });
    low = add_task(k, os, "low", 30, [&](Task* me) {
        m.lock();
        os.time_wait(30_us);  // high becomes ready at 10 us...
        os.time_wait(20_us);  // ...and blocks on the lock at this boundary
        EXPECT_EQ(me->effective_priority(), 10);  // boosted
        m.unlock();
        EXPECT_EQ(me->effective_priority(), 30);  // restored
        os.time_wait(10_us);
    });
    add_isr(k, os, "irqH", 10_us, [&] { os.event_notify(go_high); });
    os.start();
    k.run();
    EXPECT_EQ(low->effective_priority(), 30);
}

TEST(OsMutex, PiAndCeilingHeldTogetherLifoRelease) {
    // Satellite: one task holds a PriorityInheritance mutex and a
    // PriorityCeiling mutex at the same time, releasing in LIFO order.
    // While the ceiling (5) is held it dominates high's priority (10), so
    // high cannot even run to block on the PI mutex; dropping the ceiling
    // lets high block, which boosts low through inheritance until the PI
    // mutex is released.
    Kernel k;
    RtosModel os{k};
    OsMutex m_pi{os, OsMutex::Protocol::PriorityInheritance, "pi"};
    OsMutex m_pc{os, OsMutex::Protocol::PriorityCeiling, "pc", /*ceiling=*/5};
    OsEvent* go_high = os.event_new("goH");
    SimTime high_got_pi;
    std::vector<int> eff;
    add_task(k, os, "high", 10, [&](Task*) {
        os.event_wait(go_high);
        m_pi.lock();
        high_got_pi = k.now();
        m_pi.unlock();
    });
    add_task(k, os, "low", 30, [&](Task* me) {
        m_pi.lock();  // uncontended: no boost yet
        os.time_wait(10_us);
        m_pc.lock();  // ceiling boost: eff -> 5
        eff.push_back(me->effective_priority());
        os.time_wait(10_us);  // high becomes ready at 15 us but 5 beats 10
        os.time_wait(10_us);
        eff.push_back(me->effective_priority());
        m_pc.unlock();  // restore pre-ceiling level; high now preempts,
                        // blocks on m_pi and boosts low to 10
        eff.push_back(me->effective_priority());
        m_pi.unlock();  // restore pre-lock level (no boost)
        eff.push_back(me->effective_priority());
        os.time_wait(10_us);
    });
    add_isr(k, os, "irqH", 15_us, [&] { os.event_notify(go_high); });
    os.start();
    k.run();
    EXPECT_EQ(eff, (std::vector<int>{5, 5, 10, 30}));
    EXPECT_EQ(high_got_pi, 30_us);
}

TEST(OsMutex, PiAndCeilingHeldTogetherNonLifoRelease) {
    // Satellite, non-LIFO order: the PI mutex (locked first, carrying high's
    // inheritance) is released *before* the ceiling mutex. Each unlock
    // reinstates the boost level saved at that mutex's own lock time — the
    // documented save/restore discipline of os_channels.hpp — so the PI
    // unlock drops low all the way to base (its save predates the boost) and
    // the ceiling unlock then reinstates the stale inherited level 10. The
    // crossed restores are pinned here exactly as the doc comment warns.
    Kernel k;
    RtosModel os{k};
    OsMutex m_pi{os, OsMutex::Protocol::PriorityInheritance, "pi"};
    OsMutex m_pc{os, OsMutex::Protocol::PriorityCeiling, "pc", /*ceiling=*/5};
    OsEvent* go_high = os.event_new("goH");
    SimTime high_got_pi;
    std::vector<int> eff;
    add_task(k, os, "high", 10, [&](Task*) {
        os.event_wait(go_high);
        m_pi.lock();
        high_got_pi = k.now();
        m_pi.unlock();
    });
    add_task(k, os, "low", 30, [&](Task* me) {
        m_pi.lock();
        os.time_wait(10_us);  // high blocks on m_pi at this boundary -> boost 10
        os.time_wait(10_us);
        eff.push_back(me->effective_priority());
        m_pc.lock();  // saves the inherited 10, boosts to ceiling 5
        eff.push_back(me->effective_priority());
        os.time_wait(10_us);
        m_pi.unlock();  // non-LIFO: reinstates m_pi's saved level (no boost),
                        // dropping the still-held ceiling; high runs here
        eff.push_back(me->effective_priority());
        m_pc.unlock();  // reinstates m_pc's saved level: the stale 10
        eff.push_back(me->effective_priority());
        os.time_wait(10_us);
    });
    add_isr(k, os, "irqH", 5_us, [&] { os.event_notify(go_high); });
    os.start();
    k.run();
    EXPECT_EQ(eff, (std::vector<int>{10, 5, 30, 10}));
    EXPECT_EQ(high_got_pi, 30_us);
}

// ---- OsQueue ----

TEST(OsQueue, FifoAcrossTasks) {
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 0};
    std::vector<int> got;
    add_task(k, os, "producer", 2, [&](Task*) {
        for (int i = 1; i <= 5; ++i) {
            os.time_wait(5_us);
            q.send(i * 10);
        }
    });
    add_task(k, os, "consumer", 1, [&](Task*) {
        for (int i = 0; i < 5; ++i) {
            got.push_back(q.receive());
        }
    });
    os.start();
    k.run();
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30, 40, 50}));
}

TEST(OsQueue, BoundedSendBlocks) {
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 1};
    SimTime second_send_done;
    add_task(k, os, "producer", 1, [&](Task*) {
        q.send(1);
        q.send(2);  // blocks until the consumer drains one
        second_send_done = k.now();
    });
    add_task(k, os, "consumer", 2, [&](Task*) {
        os.time_wait(30_us);
        (void)q.receive();
        (void)q.receive();
    });
    os.start();
    k.run();
    EXPECT_EQ(second_send_done, 30_us);
}

TEST(OsQueue, HigherPriorityConsumerPreemptsOnSend) {
    // A send() that wakes a higher-priority consumer switches inside the call
    // (the notify is a scheduler invocation point).
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 0};
    std::vector<std::string> log;
    add_task(k, os, "consumer", 1, [&](Task*) {
        const int v = q.receive();
        log.push_back("recv:" + std::to_string(v) + "@" + std::to_string(k.now().ns()));
    });
    add_task(k, os, "producer", 5, [&](Task*) {
        os.time_wait(10_us);
        q.send(7);
        log.push_back("sent-returned@" + std::to_string(k.now().ns()));
    });
    os.start();
    k.run();
    EXPECT_EQ(log, (std::vector<std::string>{"recv:7@10000", "sent-returned@10000"}));
}

TEST(OsMailboxTest, SingleSlotHandoff) {
    Kernel k;
    RtosModel os{k};
    OsMailbox<std::string> mbox{os};
    std::string got;
    add_task(k, os, "producer", 1, [&](Task*) {
        mbox.send("frame0");
        mbox.send("frame1");  // blocks until receive
    });
    add_task(k, os, "consumer", 2, [&](Task*) {
        os.time_wait(10_us);
        got = mbox.receive();
        got += "+" + mbox.receive();
    });
    os.start();
    k.run();
    EXPECT_EQ(got, "frame0+frame1");
}

TEST(OsQueue, BackToBackTranscodingPattern) {
    // Miniature of the vocoder's back-to-back mode: encoder output feeds the
    // decoder input; priorities make the decoder run as soon as data arrives.
    Kernel k;
    RtosModel os{k};
    OsQueue<int> enc_out{os, 1};
    std::vector<SimTime> decoded_at;
    add_task(k, os, "encoder", 2, [&](Task*) {
        for (int f = 0; f < 3; ++f) {
            os.time_wait(40_us);  // encode
            enc_out.send(f);
        }
    });
    add_task(k, os, "decoder", 1, [&](Task*) {
        for (int f = 0; f < 3; ++f) {
            const int frame = enc_out.receive();
            os.time_wait(20_us);  // decode
            decoded_at.push_back(k.now());
            EXPECT_EQ(frame, f);
        }
    });
    os.start();
    k.run();
    ASSERT_EQ(decoded_at.size(), 3u);
    EXPECT_EQ(decoded_at[0], 60_us);   // 40 encode + 20 decode
    EXPECT_EQ(decoded_at[1], 120_us);  // strictly serialized on one CPU
    EXPECT_EQ(decoded_at[2], 180_us);
}

TEST(OsQueue, SendExactlyAtTimeoutInstant) {
    // Same boundary as OsSemaphore.ReleaseExactlyAtTimeoutInstant, for the
    // other user of detail::acquire_until: a message sent in the instant the
    // receive timeout fires is delivered, not lost to the timeout.
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 0};
    bool got = false;
    int v = -1;
    SimTime done;
    add_task(k, os, "receiver", 1, [&](Task*) {
        got = q.receive_for(v, 50_us);
        done = k.now();
    });
    add_isr(k, os, "irq", 50_us, [&] { q.send(42); });
    os.start();
    k.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(v, 42);
    EXPECT_EQ(done, 50_us);
    EXPECT_TRUE(q.empty());
}

TEST(OsQueue, SendJustAfterTimeoutInstant) {
    Kernel k;
    RtosModel os{k};
    OsQueue<int> q{os, 0};
    bool got = true;
    int v = -1;
    SimTime done;
    add_task(k, os, "receiver", 1, [&](Task*) {
        got = q.receive_for(v, 50_us);
        done = k.now();
    });
    add_isr(k, os, "irq", 50_us + 1_ns, [&] { q.send(42); });
    os.start();
    k.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(v, -1);
    EXPECT_EQ(done, 50_us);
    EXPECT_EQ(q.size(), 1u);  // the late message stays queued
}
