// Randomized stress/property tests of the SLDL kernel: conservation laws,
// determinism, and robustness under process churn. Each test is parameterized
// by an RNG seed so a failure pins an exact reproducible scenario.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::time_literals;

namespace {

using Seed = std::uint32_t;

}  // namespace

class SimStress : public ::testing::TestWithParam<Seed> {};

TEST_P(SimStress, SemaphoreTokensAreConserved) {
    std::mt19937 rng{GetParam()};
    Kernel k;
    Semaphore sem{k, 0};
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kTokensPerProducer = 50;
    int consumed = 0;
    for (int p = 0; p < kProducers; ++p) {
        const auto jitter = static_cast<std::uint64_t>(rng() % 97 + 1);
        k.spawn("prod" + std::to_string(p), [&k, &sem, jitter] {
            for (int i = 0; i < kTokensPerProducer; ++i) {
                k.waitfor(nanoseconds(jitter));
                sem.release();
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        const auto jitter = static_cast<std::uint64_t>(rng() % 53 + 1);
        k.spawn("cons" + std::to_string(c), [&k, &sem, &consumed, jitter] {
            for (int i = 0; i < kTokensPerProducer; ++i) {
                sem.acquire();
                ++consumed;
                k.waitfor(nanoseconds(jitter));
            }
        });
    }
    k.run();
    EXPECT_EQ(consumed + static_cast<int>(sem.count()),
              kProducers * kTokensPerProducer);
    EXPECT_EQ(consumed, kProducers * kTokensPerProducer);  // equal supply/demand
    EXPECT_TRUE(k.blocked_processes().empty());
}

TEST_P(SimStress, QueueItemsConservedAndOrderedPerProducer) {
    std::mt19937 rng{GetParam()};
    Kernel k;
    Queue<int> q{k, 1 + rng() % 8};
    constexpr int kProducers = 3;
    constexpr int kItems = 60;
    std::vector<int> last_seen(kProducers, -1);
    int received = 0;
    for (int p = 0; p < kProducers; ++p) {
        const auto jitter = static_cast<std::uint64_t>(rng() % 31 + 1);
        k.spawn("prod" + std::to_string(p), [&k, &q, p, jitter] {
            for (int i = 0; i < kItems; ++i) {
                q.send(p * 1000 + i);
                k.waitfor(nanoseconds(jitter));
            }
        });
    }
    k.spawn("cons", [&] {
        for (int i = 0; i < kProducers * kItems; ++i) {
            const int v = q.receive();
            const int p = v / 1000;
            const int seq = v % 1000;
            EXPECT_GT(seq, last_seen[static_cast<std::size_t>(p)]);  // FIFO per producer
            last_seen[static_cast<std::size_t>(p)] = seq;
            ++received;
        }
    });
    k.run();
    EXPECT_EQ(received, kProducers * kItems);
    EXPECT_TRUE(q.empty());
}

TEST_P(SimStress, DeterministicAcrossRuns) {
    const auto run_once = [seed = GetParam()] {
        std::mt19937 rng{seed};
        Kernel k;
        Semaphore sem{k, 1};
        std::vector<std::string> log;
        for (int p = 0; p < 6; ++p) {
            const auto steps = 5 + rng() % 20;
            const auto jitter = static_cast<std::uint64_t>(rng() % 13 + 1);
            k.spawn("p" + std::to_string(p), [&k, &sem, &log, p, steps, jitter] {
                for (unsigned i = 0; i < steps; ++i) {
                    sem.acquire();
                    log.push_back(std::to_string(p) + "@" +
                                  std::to_string(k.now().ns()));
                    k.waitfor(nanoseconds(jitter));
                    sem.release();
                    k.waitfor(nanoseconds(jitter * 2));
                }
            });
        }
        k.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_P(SimStress, RandomKillsLeaveKernelConsistent) {
    std::mt19937 rng{GetParam()};
    Kernel k;
    Event never{k, "never"};
    std::vector<Process*> victims;
    int cleanups = 0;
    struct Raii {
        int& counter;
        ~Raii() { ++counter; }
    };
    for (int i = 0; i < 12; ++i) {
        const auto mode = rng() % 3;
        victims.push_back(k.spawn("v" + std::to_string(i), [&k, &never, &cleanups, mode] {
            Raii raii{cleanups};
            switch (mode) {
                case 0:
                    k.wait(never);
                    break;
                case 1:
                    k.waitfor(seconds(100));
                    break;
                default:
                    for (;;) {
                        k.waitfor(1_us);
                    }
            }
        }));
    }
    k.spawn("killer", [&] {
        std::mt19937 kr{GetParam() ^ 0xdeadbeefu};
        for (Process* v : victims) {
            k.waitfor(nanoseconds(kr() % 500 + 1));
            k.kill(*v);
        }
    });
    k.run();
    for (Process* v : victims) {
        EXPECT_EQ(v->state(), ProcState::Killed);
    }
    EXPECT_EQ(cleanups, 12);  // every victim's stack unwound
    EXPECT_EQ(never.waiter_count(), 0u);
    EXPECT_TRUE(k.blocked_processes().empty());
}

TEST_P(SimStress, DeepParTreeJoinsCompletely) {
    std::mt19937 rng{GetParam()};
    Kernel k;
    int leaves = 0;
    const int fanout = 2 + static_cast<int>(rng() % 2);
    const int depth = 4;
    std::function<void(int)> node = [&](int level) {
        if (level == depth) {
            k.waitfor(nanoseconds(rng() % 50 + 1));
            ++leaves;
            return;
        }
        std::vector<Branch> branches;
        for (int i = 0; i < fanout; ++i) {
            branches.push_back(Branch{"n" + std::to_string(level) + "_" + std::to_string(i),
                                      [&node, level] { node(level + 1); }});
        }
        k.par(std::move(branches));
    };
    bool root_done = false;
    k.spawn("root", [&] {
        node(0);
        root_done = true;
    });
    k.run();
    int expect = 1;
    for (int i = 0; i < depth; ++i) {
        expect *= fanout;
    }
    EXPECT_EQ(leaves, expect);
    EXPECT_TRUE(root_done);
}

TEST_P(SimStress, BarrierNeverTearsUnderJitter) {
    std::mt19937 rng{GetParam()};
    Kernel k;
    constexpr unsigned kParties = 5;
    constexpr int kRounds = 40;
    Barrier bar{k, kParties};
    std::vector<int> round_of(kParties, 0);
    for (unsigned p = 0; p < kParties; ++p) {
        const auto jitter = static_cast<std::uint64_t>(rng() % 77 + 1);
        k.spawn("p" + std::to_string(p), [&k, &bar, &round_of, p, jitter] {
            for (int r = 0; r < kRounds; ++r) {
                k.waitfor(nanoseconds(jitter * (p + 1)));
                bar.arrive_and_wait();
                round_of[p] = r + 1;
                // No party may be more than one round ahead of any other.
                for (const int other : round_of) {
                    EXPECT_LE(std::abs(other - round_of[p]), 1);
                }
            }
        });
    }
    k.run();
    for (const int r : round_of) {
        EXPECT_EQ(r, kRounds);
    }
}

TEST_P(SimStress, MutexNeverDoubleOwned) {
    std::mt19937 rng{GetParam()};
    Kernel k;
    Mutex m{k};
    int inside = 0;
    int max_inside = 0;
    long long total_entries = 0;
    for (int p = 0; p < 8; ++p) {
        const auto hold = static_cast<std::uint64_t>(rng() % 40 + 1);
        const auto gap = static_cast<std::uint64_t>(rng() % 25 + 1);
        k.spawn("p" + std::to_string(p), [&, hold, gap] {
            for (int i = 0; i < 25; ++i) {
                ScopedLock lock{m};
                ++inside;
                max_inside = std::max(max_inside, inside);
                ++total_entries;
                k.waitfor(nanoseconds(hold));
                --inside;
                // gap outside the lock would deadlock *inside* the guard scope
            }
        });
        (void)gap;
    }
    k.run();
    EXPECT_EQ(max_inside, 1);
    EXPECT_EQ(total_entries, 8 * 25);
    EXPECT_FALSE(m.locked());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStress,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const ::testing::TestParamInfo<Seed>& info) {
                             return "seed" + std::to_string(info.param);
                         });
