// Lockstep differential tests for the decoded-superblock ISS engine: every
// run() — over an assembler corpus, seeded fuzz programs, and GuestKernel
// scheduling scenarios — must leave the fast backend in byte-identical
// architectural state (registers, pc, memory, retired/cycle counters, fault
// messages, trap boundaries) to the reference interpreter. ci/check_iss.sh
// runs this binary under both SLM_ISS_REFERENCE settings as the conformance
// gate.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <type_traits>
#include <vector>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/engine.hpp"
#include "iss/guest_os.hpp"
#include "iss/isa.hpp"

using namespace slm::iss;

namespace {

std::vector<std::int32_t> mem_image(const Cpu& cpu) {
    std::vector<std::int32_t> out(cpu.mem_words(), 0);
    for (std::uint32_t w = 0; w < cpu.mem_words(); ++w) {
        EXPECT_TRUE(cpu.try_load(w, out[w]));
    }
    return out;
}

void expect_same_state(const Cpu& ref, const Cpu& fast, const std::string& what) {
    EXPECT_EQ(ref.pc(), fast.pc()) << what;
    for (int i = 0; i < kNumRegs; ++i) {
        EXPECT_EQ(ref.reg(i), fast.reg(i)) << what << " r" << i;
    }
    EXPECT_EQ(ref.retired(), fast.retired()) << what;
    EXPECT_EQ(ref.cycles(), fast.cycles()) << what;
    EXPECT_EQ(ref.fault_message(), fast.fault_message()) << what;
    EXPECT_EQ(mem_image(ref), mem_image(fast)) << what;
}

/// Drive a reference and a superblock Cpu over the same budget schedule,
/// comparing the full architectural state after every run() call.
void run_lockstep(const std::vector<Instr>& prog,
                  const std::vector<std::uint64_t>& budgets,
                  std::size_t mem_words = 256) {
    Cpu ref{prog, mem_words, IssBackend::Reference};
    Cpu fast{prog, mem_words, IssBackend::Superblock};
    for (std::size_t i = 0; i < budgets.size(); ++i) {
        const RunResult a = ref.run(budgets[i]);
        const RunResult b = fast.run(budgets[i]);
        const std::string what =
            "hop " + std::to_string(i) + " budget " + std::to_string(budgets[i]);
        EXPECT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap)) << what;
        EXPECT_EQ(a.cycles, b.cycles) << what;
        EXPECT_EQ(a.sys_no, b.sys_no) << what;
        expect_same_state(ref, fast, what);
        if (a.trap == Trap::Fault || ::testing::Test::HasFailure()) {
            break;  // both machines are parked on the faulting instruction
        }
    }
}

std::vector<Instr> assemble_or_die(const std::string& src) {
    const AsmResult r = assemble(src);
    EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
    return r.program.code;
}

}  // namespace

// ---- assembler corpus lockstep ----

TEST(EngineLockstep, CorpusPrograms) {
    const char* corpus[] = {
        // arithmetic + halt
        "ldi r1, 6\nldi r2, 7\nmul r3, r1, r2\nhalt\n",
        // mac loop (back-edge chaining)
        "ldi r1, 25\nldi r2, 0\nloop:\nmac r2, r1, r1\naddi r1, r1, -1\n"
        "bne r1, r0, loop\nhalt\n",
        // loads/stores
        "ldi r1, 100\nldi r2, 77\nst r1, 3, r2\nld r3, r1, 3\nhalt\n",
        // signed branch
        "ldi r1, -5\nldi r2, 3\nblt r1, r2, less\nldi r3, 0\nhalt\nless:\n"
        "ldi r3, 1\nhalt\n",
        // call/return through jal/jr (dynamic target)
        "jal lr, func\nhalt\nfunc:\nldi r5, 99\njr lr\n",
        // division, remainder, overflow case
        "ldi r1, -2147483648\nldi r2, -1\ndiv r3, r1, r2\nrem r4, r1, r2\n"
        "ldi r1, -37\nldi r2, 5\ndiv r5, r1, r2\nrem r6, r1, r2\nhalt\n",
        // division by zero fault mid-program
        "ldi r1, 9\nldi r2, 0\naddi r3, r1, 1\ndiv r4, r1, r2\nhalt\n",
        // load fault (positive out of range)
        "ldi r1, 100000\nld r2, r1, 0\nhalt\n",
        // store fault (negative address)
        "ldi r1, -3\nst r1, 0, r1\nhalt\n",
        // pc fault via jump
        "ldi r1, 1\njmp 999\n",
        // program that falls off the end (no terminator)
        "ldi r1, 2\naddi r1, r1, 3\nmov r2, r1\n",
        // sys services interleaved with computation
        "ldi r1, 4\nsys 5\naddi r1, r1, 1\nsys 5\nmul r2, r1, r1\nsys 3\nhalt\n",
        // shifts and logic over wrapped values
        "ldi r1, -1\nldi r2, 7\nshl r3, r1, r2\nshr r4, r1, r2\nand r5, r3, r4\n"
        "or r6, r3, r4\nxor r7, r3, r4\nhalt\n",
    };
    for (const char* src : corpus) {
        SCOPED_TRACE(src);
        const std::vector<Instr> prog = assemble_or_die(src);
        run_lockstep(prog, {1000000});
        // Same corpus again under a dribble of small budgets: exercises
        // mid-block parking and resume on every program shape.
        run_lockstep(prog, std::vector<std::uint64_t>(60, 7));
        run_lockstep(prog, std::vector<std::uint64_t>(120, 1));
    }
}

// ---- trap/budget edge cases (identical under both backends) ----

TEST(EngineLockstep, MidBlockBudgetSweep) {
    // One long straight-line block mixing 1/3/4/16-cycle instructions: run it
    // under every budget from 1 to past its total cost and require the stop
    // instruction (and all state) to match the reference exactly, then finish
    // the program and compare again.
    const std::vector<Instr> prog = assemble_or_die(R"(
        ldi r1, 7
        ldi r2, 3
        mul r3, r1, r2
        st r2, 10, r3
        ld r4, r2, 10
        mac r5, r4, r1
        div r6, r3, r2
        rem r7, r3, r2
        addi r8, r7, 5
        xor r9, r8, r1
        halt
    )");
    for (std::uint64_t k = 1; k <= 55; ++k) {
        SCOPED_TRACE("budget " + std::to_string(k));
        run_lockstep(prog, {k, 1000});
    }
}

TEST(EngineLockstep, ResumeAfterSysContinuesPastTheSys) {
    const std::vector<Instr> prog =
        assemble_or_die("ldi r1, 1\nsys 5\naddi r1, r1, 1\nsys 4\nhalt\n");
    Cpu ref{prog, 64, IssBackend::Reference};
    Cpu fast{prog, 64, IssBackend::Superblock};
    for (int hop = 0; hop < 3; ++hop) {
        const RunResult a = ref.run(1000);
        const RunResult b = fast.run(1000);
        EXPECT_EQ(static_cast<int>(a.trap), static_cast<int>(b.trap));
        EXPECT_EQ(a.sys_no, b.sys_no);
        expect_same_state(ref, fast, "hop " + std::to_string(hop));
    }
    // After the first Sys the pc already points past the SYS instruction.
    EXPECT_EQ(fast.pc(), 4);  // parked on halt after both syscalls
}

TEST(EngineLockstep, HaltParksOnTheHaltInstruction) {
    const std::vector<Instr> prog = assemble_or_die("ldi r1, 5\nhalt\n");
    Cpu fast{prog, 64, IssBackend::Superblock};
    RunResult r = fast.run(1000);
    EXPECT_EQ(static_cast<int>(r.trap), static_cast<int>(Trap::Halt));
    EXPECT_EQ(fast.pc(), 1);  // stays on the halt
    // Re-running re-executes the halt: same trap, one more cycle, same pc.
    const std::uint64_t cycles_before = fast.cycles();
    r = fast.run(1000);
    EXPECT_EQ(static_cast<int>(r.trap), static_cast<int>(Trap::Halt));
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_EQ(fast.cycles(), cycles_before + 1);
    EXPECT_EQ(fast.pc(), 1);
}

TEST(EngineLockstep, TakenAndUntakenBranchCosts) {
    const std::vector<Instr> untaken =
        assemble_or_die("ldi r1, 1\nbeq r1, r0, 0\nhalt\n");
    const std::vector<Instr> taken =
        assemble_or_die("ldi r1, 0\nbeq r1, r0, 2\nhalt\n");
    Cpu u{untaken, 64, IssBackend::Superblock};
    Cpu t{taken, 64, IssBackend::Superblock};
    (void)u.run(1000);
    (void)t.run(1000);
    EXPECT_EQ(u.cycles(), 1u + 1u + 1u);  // untaken branch is one cheaper
    EXPECT_EQ(t.cycles(), 1u + 2u + 1u);
    run_lockstep(untaken, {1000});
    run_lockstep(taken, {1000});
}

TEST(EngineLockstep, DivisionEdgeBehaviour) {
    // INT_MIN / -1 is architecturally defined (no trap); division by zero
    // faults with the pc parked on the div and nothing charged for it.
    const std::vector<Instr> overflow = assemble_or_die(
        "ldi r1, -2147483648\nldi r2, -1\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt\n");
    run_lockstep(overflow, {1000});
    const std::vector<Instr> zero =
        assemble_or_die("ldi r1, 9\nldi r2, 0\ndiv r3, r1, r2\nhalt\n");
    Cpu ref{zero, 64, IssBackend::Reference};
    Cpu fast{zero, 64, IssBackend::Superblock};
    const RunResult a = ref.run(1000);
    const RunResult b = fast.run(1000);
    EXPECT_EQ(static_cast<int>(a.trap), static_cast<int>(Trap::Fault));
    EXPECT_EQ(static_cast<int>(b.trap), static_cast<int>(Trap::Fault));
    EXPECT_EQ(fast.fault_message(), "division by zero at pc 2");
    expect_same_state(ref, fast, "div-by-zero");
    EXPECT_EQ(fast.pc(), 2);        // parked on the div
    EXPECT_EQ(fast.retired(), 2u);  // the div itself did not retire
}

TEST(EngineLockstep, FaultMessagesAreByteIdentical) {
    const std::vector<Instr> far_load =
        assemble_or_die("ldi r1, 100000\nld r2, r1, 5\nhalt\n");
    Cpu fast{far_load, 1024, IssBackend::Superblock};
    (void)fast.run(1000);
    EXPECT_EQ(fast.fault_message(), "data access out of range: 100005");
    const std::vector<Instr> neg_store =
        assemble_or_die("ldi r1, -70000\nst r1, -2, r1\nhalt\n");
    Cpu fast2{neg_store, 1024, IssBackend::Superblock};
    (void)fast2.run(1000);
    EXPECT_EQ(fast2.fault_message(), "data access out of range: -70002");
    Cpu fast3{assemble_or_die("jmp 999\n"), 64, IssBackend::Superblock};
    (void)fast3.run(1000);
    EXPECT_EQ(fast3.fault_message(), "pc out of range: 999");
}

// ---- seeded fuzz lockstep ----

namespace {

/// Same generator as test_iss_fuzz.cpp: valid-opcode instructions with
/// branch/jump targets inside the program.
Instr random_instr(std::mt19937& rng, int program_size) {
    constexpr Op kOps[] = {Op::Nop, Op::Ldi, Op::Mov, Op::Add,  Op::Sub, Op::Mul,
                           Op::Mac, Op::And, Op::Or,  Op::Xor,  Op::Shl, Op::Shr,
                           Op::Div, Op::Rem, Op::Addi, Op::Ld,  Op::St,  Op::Beq,
                           Op::Bne, Op::Blt, Op::Bge, Op::Jmp,  Op::Jal, Op::Jr,
                           Op::Sys, Op::Halt};
    const auto reg = [&rng] { return static_cast<std::uint8_t>(rng() % kNumRegs); };
    const auto target = [&rng, program_size] {
        return static_cast<std::int32_t>(rng() % static_cast<unsigned>(program_size));
    };
    Instr i;
    i.op = kOps[rng() % (sizeof kOps / sizeof kOps[0])];
    switch (i.op) {
        case Op::Nop:
        case Op::Halt:
            break;
        case Op::Ldi:
            i.rd = reg();
            i.imm = static_cast<std::int32_t>(rng() % 200001) - 100000;
            break;
        case Op::Mov:
            i.rd = reg();
            i.ra = reg();
            break;
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Mac:
        case Op::And:
        case Op::Or:
        case Op::Xor:
        case Op::Shl:
        case Op::Shr:
        case Op::Div:
        case Op::Rem:
            i.rd = reg();
            i.ra = reg();
            i.rb = reg();
            break;
        case Op::Addi:
            i.rd = reg();
            i.ra = reg();
            i.imm = static_cast<std::int32_t>(rng() % 2001) - 1000;
            break;
        case Op::Ld:
            i.rd = reg();
            i.ra = reg();
            i.imm = static_cast<std::int32_t>(rng() % 64);
            break;
        case Op::St:
            i.ra = reg();
            i.rb = reg();
            i.imm = static_cast<std::int32_t>(rng() % 64);
            break;
        case Op::Beq:
        case Op::Bne:
        case Op::Blt:
        case Op::Bge:
            i.ra = reg();
            i.rb = reg();
            i.imm = target();
            break;
        case Op::Jmp:
            i.imm = target();
            break;
        case Op::Jal:
            i.rd = reg();
            i.imm = target();
            break;
        case Op::Jr:
            i.ra = reg();
            break;
        case Op::Sys:
            i.imm = 5;  // host-notify: the only side-effect-free service
            break;
    }
    return i;
}

}  // namespace

class EngineFuzzLockstep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EngineFuzzLockstep, RandomProgramsRandomBudgets) {
    std::mt19937 rng{GetParam() ^ 0x9e3779b9u};
    for (int p = 0; p < 25; ++p) {
        constexpr int kLen = 40;
        std::vector<Instr> prog;
        prog.reserve(kLen);
        for (int i = 0; i < kLen; ++i) {
            prog.push_back(random_instr(rng, kLen));
        }
        // Random budget schedule, weighted toward tiny budgets so the engine
        // constantly parks and resumes mid-block.
        std::vector<std::uint64_t> budgets;
        for (int h = 0; h < 48; ++h) {
            budgets.push_back(h % 3 == 0 ? 1 + rng() % 4 : 1 + rng() % 400);
        }
        SCOPED_TRACE("program " + std::to_string(p));
        run_lockstep(prog, budgets, 128);
        if (::testing::Test::HasFailure()) {
            return;  // first divergence is enough to diagnose
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzLockstep,
                         ::testing::Values(1u, 7u, 42u, 1001u, 31337u, 0xdeadbeefu),
                         [](const ::testing::TestParamInfo<std::uint32_t>& info) {
                             return "seed" + std::to_string(info.param);
                         });

// ---- GuestKernel scheduling lockstep ----

namespace {

struct ScenarioResult {
    std::vector<std::pair<std::int32_t, std::int32_t>> notifies;
    std::vector<std::uint64_t> slices;
    std::uint64_t now = 0;
    std::uint64_t switches = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t kernel_cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    std::vector<std::uint64_t> task_cycles;
    std::vector<std::int32_t> mem;
};

void expect_same_scenario(const ScenarioResult& a, const ScenarioResult& b) {
    EXPECT_EQ(a.notifies, b.notifies);
    EXPECT_EQ(a.slices, b.slices);  // every run_slice() must consume the same
    EXPECT_EQ(a.now, b.now);
    EXPECT_EQ(a.switches, b.switches);
    EXPECT_EQ(a.syscalls, b.syscalls);
    EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.task_cycles, b.task_cycles);
    EXPECT_EQ(a.mem, b.mem);
}

ScenarioResult finish(Cpu& cpu, GuestKernel& gk, ScenarioResult r) {
    r.now = gk.now_cycles();
    r.switches = gk.stats().context_switches;
    r.syscalls = gk.stats().syscalls;
    r.kernel_cycles = gk.stats().kernel_cycles;
    r.retired = cpu.retired();
    r.cycles = cpu.cycles();
    for (const GuestTask* t : gk.tasks()) {
        r.task_cycles.push_back(t->cycles_used);
    }
    r.mem = mem_image(cpu);
    return r;
}

/// Two equal-priority notify-loop tasks under a round-robin quantum, driven
/// with an odd slice size so slices, quantum expiries, and basic blocks all
/// misalign — the harshest batching scenario.
ScenarioResult quantum_scenario(IssBackend backend, std::uint64_t quantum,
                                std::uint64_t slice) {
    const AsmResult prog = assemble(R"(
        task:
          ldi r9, 3
        lap:
          ldi r6, 200
        burn:
          addi r6, r6, -1
          bne r6, r0, burn
          ldi r1, 1
          mov r2, r4
          sys 5
          addi r9, r9, -1
          bne r9, r0, lap
          sys 2
    )");
    EXPECT_TRUE(prog.ok());
    Cpu cpu{prog.program.code, 2048, backend};
    GuestKernelConfig cfg;
    cfg.quantum_cycles = quantum;
    GuestKernel gk{cpu, cfg};
    GuestTask* a = gk.create_task("A", 5, prog.program.label("task"), 900);
    GuestTask* b = gk.create_task("B", 5, prog.program.label("task"), 800);
    a->ctx.regs[4] = 1;
    b->ctx.regs[4] = 2;
    ScenarioResult r;
    gk.set_host_notify([&r](std::int32_t x, std::int32_t y) {
        r.notifies.emplace_back(x, y);
    });
    while (!gk.all_exited()) {
        r.slices.push_back(gk.run_slice(slice));
    }
    return finish(cpu, gk, std::move(r));
}

/// Yielding tasks sharing memory cells, with a cooperative yield loop.
ScenarioResult yield_scenario(IssBackend backend, std::uint64_t slice) {
    const AsmResult prog = assemble(R"(
        taskA:
          ldi r1, 0
        a_loop:
          ld r2, r1, 0
          addi r2, r2, 1
          st r1, 0, r2
          sys 1
          ldi r3, 3
          ld r2, r1, 0
          blt r2, r3, a_loop
          sys 2
        taskB:
          ldi r1, 1
        b_loop:
          ld r2, r1, 0
          addi r2, r2, 1
          st r1, 0, r2
          sys 1
          ldi r3, 3
          ld r2, r1, 0
          blt r2, r3, b_loop
          sys 2
    )");
    EXPECT_TRUE(prog.ok());
    Cpu cpu{prog.program.code, 2048, backend};
    GuestKernel gk{cpu};
    gk.create_task("A", 5, prog.program.label("taskA"), 900);
    gk.create_task("B", 5, prog.program.label("taskB"), 800);
    ScenarioResult r;
    while (!gk.all_exited()) {
        r.slices.push_back(gk.run_slice(slice));
    }
    return finish(cpu, gk, std::move(r));
}

/// Two sleepers with staggered deadlines plus a busy background task: wake
/// scans must fire at the same instruction boundaries under both backends.
ScenarioResult sleep_scenario(IssBackend backend, std::uint64_t slice) {
    const AsmResult prog = assemble(R"(
        sleeper:
          mov r1, r4
          sys 6
          ldi r1, 3
          mov r2, r5
          sys 5
          sys 2
        busy:
          ldi r6, 900
        spin:
          addi r6, r6, -1
          bne r6, r0, spin
          ldi r1, 4
          ldi r2, 0
          sys 5
          sys 2
    )");
    EXPECT_TRUE(prog.ok());
    Cpu cpu{prog.program.code, 2048, backend};
    GuestKernel gk{cpu};
    GuestTask* a = gk.create_task("A", 1, prog.program.label("sleeper"), 900);
    GuestTask* b = gk.create_task("B", 2, prog.program.label("sleeper"), 800);
    gk.create_task("C", 9, prog.program.label("busy"), 700);
    a->ctx.regs[4] = 2300;  // wakes mid-way through C's spin loop
    a->ctx.regs[5] = 1;
    b->ctx.regs[4] = 2317;  // wakes a few instructions later
    b->ctx.regs[5] = 2;
    ScenarioResult r;
    gk.set_host_notify([&r](std::int32_t x, std::int32_t y) {
        r.notifies.emplace_back(x, y);
    });
    while (!gk.all_exited()) {
        if (gk.idle() && gk.has_sleepers()) {
            gk.skip_idle_cycles(gk.cycles_until_wake());
        }
        r.slices.push_back(gk.run_slice(slice));
    }
    return finish(cpu, gk, std::move(r));
}

/// Semaphore block + host-side post from an "interrupt" between slices.
ScenarioResult sem_scenario(IssBackend backend, std::uint64_t slice) {
    const AsmResult prog = assemble(R"(
        task:
          ldi r1, 9
          sys 3
          ldi r1, 42
          ldi r2, 0
          sys 5
          sys 2
    )");
    EXPECT_TRUE(prog.ok());
    Cpu cpu{prog.program.code, 1024, backend};
    GuestKernel gk{cpu};
    gk.sem_init(9, 0);
    gk.create_task("T", 1, prog.program.label("task"), 900);
    ScenarioResult r;
    gk.set_host_notify([&r](std::int32_t x, std::int32_t y) {
        r.notifies.emplace_back(x, y);
    });
    r.slices.push_back(gk.run_slice(slice));
    EXPECT_TRUE(gk.idle());
    gk.sem_post_from_host(9);
    while (!gk.all_exited()) {
        r.slices.push_back(gk.run_slice(slice));
    }
    return finish(cpu, gk, std::move(r));
}

}  // namespace

TEST(GuestKernelLockstep, QuantumRotationMatchesReference) {
    for (const std::uint64_t slice : {259u, 1000u, 100000u}) {
        SCOPED_TRACE("slice " + std::to_string(slice));
        expect_same_scenario(quantum_scenario(IssBackend::Reference, 400, slice),
                             quantum_scenario(IssBackend::Superblock, 400, slice));
    }
    // Quantum smaller than one instruction cost: rotation every instruction.
    expect_same_scenario(quantum_scenario(IssBackend::Reference, 1, 997),
                         quantum_scenario(IssBackend::Superblock, 1, 997));
}

TEST(GuestKernelLockstep, YieldingTasksMatchReference) {
    for (const std::uint64_t slice : {173u, 10000u}) {
        SCOPED_TRACE("slice " + std::to_string(slice));
        expect_same_scenario(yield_scenario(IssBackend::Reference, slice),
                             yield_scenario(IssBackend::Superblock, slice));
    }
}

TEST(GuestKernelLockstep, SleeperWakesMatchReference) {
    for (const std::uint64_t slice : {211u, 5000u, 100000u}) {
        SCOPED_TRACE("slice " + std::to_string(slice));
        expect_same_scenario(sleep_scenario(IssBackend::Reference, slice),
                             sleep_scenario(IssBackend::Superblock, slice));
    }
}

TEST(GuestKernelLockstep, HostSemaphorePostMatchesReference) {
    expect_same_scenario(sem_scenario(IssBackend::Reference, 100000),
                         sem_scenario(IssBackend::Superblock, 100000));
}

// ---- satellite: Cpu::run cycle-aggregate width ----

static_assert(std::is_same_v<decltype(RunResult::cycles), std::uint64_t>,
              "run() aggregates cycles in 64 bits so soak budgets cannot overflow");

TEST(CycleAccounting, SoakBudgetPastIntMaxDoesNotOverflow) {
    if (resolve_iss_backend(IssBackend::Auto) == IssBackend::Reference) {
        GTEST_SKIP() << "soak run is only practical on the superblock engine";
    }
    // 16-cycle divisions: ~134M instructions cross the old INT_MAX aggregate
    // in about 2.1G cycles. With the int accumulator this wrapped negative and
    // run() never returned control at the requested budget.
    const std::vector<Instr> prog = assemble_or_die(R"(
        ldi r1, 1000000
        ldi r2, 7
        loop:
        div r3, r1, r2
        div r3, r1, r2
        div r3, r1, r2
        div r3, r1, r2
        div r3, r1, r2
        div r3, r1, r2
        div r3, r1, r2
        div r3, r1, r2
        jmp loop
    )");
    Cpu cpu{prog, 64, IssBackend::Superblock};
    const std::uint64_t budget = 2'200'000'000;  // > 2^31 cycles
    const RunResult r = cpu.run(budget);
    EXPECT_EQ(static_cast<int>(r.trap), static_cast<int>(Trap::None));
    EXPECT_GE(r.cycles, budget);
    EXPECT_LT(r.cycles, budget + 16);  // at most the in-flight instruction over
    EXPECT_EQ(cpu.cycles(), r.cycles);
}

// ---- satellite: checked host-facing memory accessors ----

TEST(HostAccessors, TryVariantsAreBoundsCheckedAndSilent) {
    Cpu cpu{std::vector<Instr>{}, 16};
    EXPECT_TRUE(cpu.try_store(3, 42));
    std::int32_t v = -1;
    EXPECT_TRUE(cpu.try_load(3, v));
    EXPECT_EQ(v, 42);
    EXPECT_FALSE(cpu.try_load(16, v));
    EXPECT_EQ(v, 42);  // out-of-range load leaves the output untouched
    EXPECT_FALSE(cpu.try_store(16, 1));
    EXPECT_TRUE(cpu.fault_message().empty());  // try_* never record faults
}

TEST(HostAccessors, OutOfRangeAccessRecordsFaultInsteadOfThrowing) {
    Cpu cpu{std::vector<Instr>{}, 16};
    EXPECT_EQ(cpu.load(99), 0);
    EXPECT_EQ(cpu.fault_message(), "host data access out of range: 99");
    cpu.store(1234, 7);  // no-op, but diagnosable
    EXPECT_EQ(cpu.fault_message(), "host data access out of range: 1234");
    cpu.store(2, 9);
    EXPECT_EQ(cpu.load(2), 9);
    std::int32_t probe = -1;
    EXPECT_FALSE(cpu.try_load(1234, probe));  // same bounds rule as guest Ld/St
}

// ---- backend selection ----

namespace {

/// RAII save/restore of SLM_ISS_REFERENCE so backend tests cannot leak state
/// into the rest of the suite (which runs under both settings in CI).
class EnvGuard {
public:
    EnvGuard() {
        const char* v = std::getenv("SLM_ISS_REFERENCE");
        had_ = v != nullptr;
        if (had_) {
            saved_ = v;
        }
    }
    ~EnvGuard() {
        if (had_) {
            ::setenv("SLM_ISS_REFERENCE", saved_.c_str(), 1);
        } else {
            ::unsetenv("SLM_ISS_REFERENCE");
        }
    }

private:
    bool had_ = false;
    std::string saved_;
};

}  // namespace

TEST(BackendSelect, EnvVarMirrorsUcontextPattern) {
    const EnvGuard guard;
    ::setenv("SLM_ISS_REFERENCE", "1", 1);
    EXPECT_EQ(resolve_iss_backend(IssBackend::Auto), IssBackend::Reference);
    ::setenv("SLM_ISS_REFERENCE", "yes", 1);
    EXPECT_EQ(resolve_iss_backend(IssBackend::Auto), IssBackend::Reference);
    ::setenv("SLM_ISS_REFERENCE", "0", 1);  // explicit "0" means off
    EXPECT_EQ(resolve_iss_backend(IssBackend::Auto), IssBackend::Superblock);
    ::setenv("SLM_ISS_REFERENCE", "", 1);
    EXPECT_EQ(resolve_iss_backend(IssBackend::Auto), IssBackend::Superblock);
    ::unsetenv("SLM_ISS_REFERENCE");
    EXPECT_EQ(resolve_iss_backend(IssBackend::Auto), IssBackend::Superblock);
    // Explicit requests are never overridden by the environment.
    ::setenv("SLM_ISS_REFERENCE", "1", 1);
    EXPECT_EQ(resolve_iss_backend(IssBackend::Superblock), IssBackend::Superblock);
    EXPECT_EQ(resolve_iss_backend(IssBackend::Reference), IssBackend::Reference);
}

TEST(BackendSelect, MixedSteppingAndBackendSwitchesStayCoherent) {
    const std::vector<Instr> prog = assemble_or_die(R"(
        ldi r1, 0
        loop:
        addi r1, r1, 1
        mul r2, r1, r1
        st r0, 20, r2
        ld r3, r0, 20
        jmp loop
    )");
    Cpu ref{prog, 64, IssBackend::Reference};
    Cpu mixed{prog, 64, IssBackend::Superblock};
    // Interleave single steps, engine runs, and a mid-stream backend switch;
    // the reference twin replays the same schedule purely step/run_reference.
    (void)ref.step();
    (void)mixed.step();
    (void)ref.run_reference(100);
    (void)mixed.run(100);  // engine resumes from the hand-stepped pc
    mixed.set_backend(IssBackend::Reference);
    (void)ref.run_reference(57);
    (void)mixed.run(57);
    mixed.set_backend(IssBackend::Superblock);
    (void)ref.run_reference(333);
    (void)mixed.run(333);
    expect_same_state(ref, mixed, "mixed schedule");
}

// ---- engine internals ----

TEST(EngineInternals, BlocksChainAndStatsAccumulate) {
    const std::vector<Instr> prog = assemble_or_die(R"(
        ldi r1, 500
        loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    Cpu cpu{prog, 64, IssBackend::Superblock};
    const RunResult r = cpu.run(1u << 20);
    EXPECT_EQ(static_cast<int>(r.trap), static_cast<int>(Trap::Halt));
    const SuperblockEngine* eng = cpu.engine();
    ASSERT_NE(eng, nullptr);
    EXPECT_GT(eng->block_count(), 0u);
    EXPECT_GT(eng->decoded_instr_count(), 0u);
    // The loop re-executes one block ~500 times; after the first lap every
    // back-edge resolves through the chain cache.
    EXPECT_GT(eng->blocks_executed(), 490u);
    EXPECT_GT(eng->chain_hits(), 490u);
    EXPECT_LT(eng->block_count(), 8u);  // tiny program, few distinct blocks
}

TEST(EngineInternals, DispatchModeIsReported) {
    // Informational: either mode must pass the whole suite; this just pins
    // that the query is wired up and stable within a process.
    EXPECT_EQ(threaded_dispatch_compiled(), threaded_dispatch_compiled());
}
