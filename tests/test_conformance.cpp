// Cross-personality conformance suite: the same scenarios run once through
// the paper-style API (RtosModel + os_channels) and once through the
// ITRON-style API (ItronOs), and must produce byte-identical traces and
// identical core statistics — the layered architecture's contract that a
// personality only renames calls, never changes scheduling. The suite also
// checks that the schedule explorer hooks both personalities through the
// shared OsCore (identical schedule spaces, deadlock detection on an
// ITRON-only model).

#include "rtos/itron.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "explore/explore.hpp"
#include "fault/fault.hpp"
#include "obs/analytics.hpp"
#include "obs/metrics.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::sim;
using namespace slm::rtos;
using namespace slm::time_literals;

namespace {

// ---------------------------------------------------------------------------
// Personality-neutral scenario facade. A scenario describes tasks and their
// use of OS services against this structure; each personality runner binds
// the callbacks to its own call set, so one scenario definition drives both
// APIs. Every runner provides one semaphore ("sem") and one queue ("q").
struct Api {
    std::function<void(const std::string&, int, std::function<void()>)> spawn_task;
    std::function<void(SimTime)> exec;   ///< model computation time
    std::function<void(SimTime)> delay;  ///< timed sleep, no CPU use
    std::function<void()> sleep_self;    ///< sleep until woken
    std::function<void(const std::string&)> wake;
    std::function<void()> sem_wait;
    std::function<bool(SimTime)> sem_wait_for;  ///< false = timed out
    std::function<void()> sem_signal;
    std::function<void(std::int64_t)> q_send;
    std::function<std::int64_t()> q_recv;
    // Recovery services (restartable tasks + watchdogs). `spawn_managed`
    // registers the body with the OS (task_set_body / cre_tsk) so the task
    // can be restarted; `spawn_task` keeps the hand-spawned legacy idiom.
    std::function<void(const std::string&, int, std::function<void()>)> spawn_managed;
    std::function<void(const std::string&)> restart;
    std::function<void(const std::string&, SimTime, MissPolicy)> wd_arm;
    std::function<void(const std::string&)> wd_kick;
    std::function<void(const std::string&)> wd_disarm;
};

using Scenario = std::function<void(Api&)>;

struct Outcome {
    std::string csv;
    std::string metrics;  ///< obs::RtosAnalytics registry, Prometheus text
    std::uint64_t end_ns = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t restarts = 0;
    std::uint64_t crashes = 0;
    std::uint64_t watchdog_fires = 0;
};

/// Observer-derived analytics as comparable text. Everything RtosAnalytics
/// collects (latency/response histograms, preemption/switch/blocking
/// counters) flows from personality-neutral OsCore events, so the full
/// Prometheus dump — values, series, registration order — must be
/// byte-identical across personalities. Syscall counts, which legitimately
/// differ (ITRON object creation is a syscall, paper-API construction is
/// not), live in RtosStats and never enter this registry.
std::string analytics_metrics(const obs::Registry& reg) {
    std::ostringstream os;
    reg.write_prometheus(os);
    return os.str();
}

Outcome run_paper(const Scenario& sc, SchedPolicy policy = SchedPolicy::Priority,
                  const fault::FaultPlan* fplan = nullptr) {
    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.policy = policy;
    cfg.tracer = &rec;
    RtosModel os{k, cfg};
    std::optional<fault::FaultInjector> inj;
    if (fplan != nullptr) {
        inj.emplace(*fplan);  // seeded by the plan: same PRNG both runners
        inj->attach(os);
    }
    obs::Registry reg;
    obs::RtosAnalytics analytics{os, reg};
    os.init();
    OsSemaphore sem{os, 0, "sem"};
    OsQueue<std::int64_t> q{os, 0, "q"};
    std::unordered_map<std::string, Task*> tasks;

    Api api;
    api.spawn_task = [&](const std::string& name, int prio, std::function<void()> body) {
        Task* t = os.task_create(name, TaskType::Aperiodic, {}, {}, prio);
        tasks.emplace(name, t);
        k.spawn(name, [&os, t, body = std::move(body)] {
            os.task_activate(t);
            body();
            os.task_terminate();
        });
    };
    api.exec = [&](SimTime dt) { os.time_wait(dt); };
    api.delay = [&](SimTime dt) { os.task_delay(dt); };
    api.sleep_self = [&] { os.task_sleep(); };
    api.wake = [&](const std::string& name) { os.task_activate(tasks.at(name)); };
    api.sem_wait = [&] { sem.acquire(); };
    api.sem_wait_for = [&](SimTime t) { return sem.acquire_for(t); };
    api.sem_signal = [&] { sem.release(); };
    api.q_send = [&](std::int64_t v) { q.send(v); };
    api.q_recv = [&] { return q.receive(); };
    api.spawn_managed = [&](const std::string& name, int prio,
                            std::function<void()> body) {
        Task* t = os.task_create(name, TaskType::Aperiodic, {}, {}, prio);
        tasks.emplace(name, t);
        os.task_set_body(t, std::move(body));
        os.task_start(t);
    };
    api.restart = [&](const std::string& name) { os.task_restart(tasks.at(name)); };
    api.wd_arm = [&](const std::string& name, SimTime timeout, MissPolicy action) {
        os.watchdog_arm(tasks.at(name), timeout, action);
    };
    api.wd_kick = [&](const std::string& name) { os.watchdog_kick(tasks.at(name)); };
    api.wd_disarm = [&](const std::string& name) { os.watchdog_disarm(tasks.at(name)); };

    sc(api);
    os.start();
    k.run();

    std::ostringstream csv;
    rec.write_csv(csv);
    return {csv.str(), analytics_metrics(reg), k.now().ns(),
            os.stats().context_switches, os.stats().dispatches, os.stats().syscalls,
            os.stats().restarts, os.stats().crashes, os.stats().watchdog_fires};
}

Outcome run_itron(const Scenario& sc, SchedPolicy policy = SchedPolicy::Priority,
                  const fault::FaultPlan* fplan = nullptr) {
    Kernel k;
    trace::TraceRecorder rec;
    RtosConfig cfg;
    cfg.policy = policy;
    cfg.tracer = &rec;
    itron::ItronOs os{k, cfg};
    std::optional<fault::FaultInjector> inj;
    if (fplan != nullptr) {
        inj.emplace(*fplan);
        inj->attach(os.core());
    }
    obs::Registry reg;
    obs::RtosAnalytics analytics{os.core(), reg};
    EXPECT_EQ(os.cre_sem(1, {.isemcnt = 0, .name = "sem"}), itron::E_OK);
    EXPECT_EQ(os.cre_dtq(1, {.dtqcnt = 0, .name = "q"}), itron::E_OK);
    std::unordered_map<std::string, itron::ID> ids;
    itron::ID next_id = 1;

    Api api;
    api.spawn_task = [&](const std::string& name, int prio,
                         std::function<void()> body) {
        const itron::ID id = next_id++;
        ids.emplace(name, id);
        EXPECT_EQ(os.cre_tsk(id, {.name = name, .itskpri = prio, .task = std::move(body)}),
                  itron::E_OK);
        EXPECT_EQ(os.sta_tsk(id), itron::E_OK);
    };
    api.exec = [&](SimTime dt) { os.core().time_wait(dt); };
    api.delay = [&](SimTime dt) { EXPECT_EQ(os.dly_tsk(dt), itron::E_OK); };
    api.sleep_self = [&] { EXPECT_EQ(os.slp_tsk(), itron::E_OK); };
    api.wake = [&](const std::string& name) {
        EXPECT_EQ(os.wup_tsk(ids.at(name)), itron::E_OK);
    };
    api.sem_wait = [&] { EXPECT_EQ(os.wai_sem(1), itron::E_OK); };
    api.sem_wait_for = [&](SimTime t) { return os.twai_sem(1, t) == itron::E_OK; };
    api.sem_signal = [&] { EXPECT_EQ(os.sig_sem(1), itron::E_OK); };
    api.q_send = [&](std::int64_t v) {
        EXPECT_EQ(os.snd_dtq(1, static_cast<itron::VP_INT>(v)), itron::E_OK);
    };
    api.q_recv = [&]() -> std::int64_t {
        itron::VP_INT v = 0;
        EXPECT_EQ(os.rcv_dtq(&v, 1), itron::E_OK);
        return static_cast<std::int64_t>(v);
    };
    api.spawn_managed = [&](const std::string& name, int prio,
                            std::function<void()> body) {
        const itron::ID id = next_id++;
        ids.emplace(name, id);
        EXPECT_EQ(os.cre_tsk(id, {.name = name, .itskpri = prio, .task = std::move(body)}),
                  itron::E_OK);
        EXPECT_EQ(os.sta_tsk(id), itron::E_OK);
    };
    api.restart = [&](const std::string& name) {
        EXPECT_EQ(os.rst_tsk(ids.at(name)), itron::E_OK);
    };
    api.wd_arm = [&](const std::string& name, SimTime timeout, MissPolicy action) {
        EXPECT_EQ(os.sta_wdg(ids.at(name), timeout, action), itron::E_OK);
    };
    api.wd_kick = [&](const std::string& name) {
        EXPECT_EQ(os.kck_wdg(ids.at(name)), itron::E_OK);
    };
    api.wd_disarm = [&](const std::string& name) {
        EXPECT_EQ(os.stp_wdg(ids.at(name)), itron::E_OK);
    };

    sc(api);
    os.start();
    k.run();

    std::ostringstream csv;
    rec.write_csv(csv);
    return {csv.str(), analytics_metrics(reg), k.now().ns(),
            os.core().stats().context_switches, os.core().stats().dispatches,
            os.core().stats().syscalls, os.core().stats().restarts,
            os.core().stats().crashes, os.core().stats().watchdog_fires};
}

void expect_conformant(const char* what, const Scenario& sc,
                       SchedPolicy policy = SchedPolicy::Priority,
                       const char* fault_plan = nullptr) {
    std::optional<fault::FaultPlan> plan;
    if (fault_plan != nullptr) {
        std::string err;
        plan = fault::FaultPlan::parse(fault_plan, &err);
        ASSERT_TRUE(plan.has_value()) << what << ": bad fault plan: " << err;
    }
    const fault::FaultPlan* fp = plan.has_value() ? &*plan : nullptr;
    const Outcome paper = run_paper(sc, policy, fp);
    const Outcome itron = run_itron(sc, policy, fp);
    EXPECT_FALSE(paper.csv.empty()) << what;
    EXPECT_EQ(paper.csv, itron.csv) << what << ": trace divergence between personalities";
    EXPECT_FALSE(paper.metrics.empty()) << what;
    EXPECT_EQ(paper.metrics, itron.metrics)
        << what << ": analytics metrics divergence between personalities";
    EXPECT_EQ(paper.end_ns, itron.end_ns) << what;
    EXPECT_EQ(paper.context_switches, itron.context_switches) << what;
    EXPECT_EQ(paper.dispatches, itron.dispatches) << what;
    EXPECT_EQ(paper.syscalls, itron.syscalls) << what;
    EXPECT_EQ(paper.restarts, itron.restarts) << what;
    EXPECT_EQ(paper.crashes, itron.crashes) << what;
    EXPECT_EQ(paper.watchdog_fires, itron.watchdog_fires) << what;
}

// ---- shared scenarios -----------------------------------------------------

void sc_preemption(Api& api) {
    api.spawn_task("hi", 1, [&api] {
        api.exec(1_ms);
        api.delay(2_ms);
        api.exec(1_ms);
    });
    api.spawn_task("lo", 5, [&api] { api.exec(5_ms); });
}

void sc_semaphore(Api& api) {
    api.spawn_task("cons", 1, [&api] {
        for (int i = 0; i < 3; ++i) {
            api.sem_wait();
            api.exec(500_us);
        }
    });
    api.spawn_task("prod", 5, [&api] {
        for (int i = 0; i < 3; ++i) {
            api.exec(1_ms);
            api.sem_signal();
        }
    });
}

void sc_sleep_wakeup(Api& api) {
    api.spawn_task("sleeper", 1, [&api] {
        api.exec(1_ms);
        api.sleep_self();
        api.exec(1_ms);
    });
    api.spawn_task("waker", 5, [&api] {
        api.exec(3_ms);
        api.wake("sleeper");
        api.exec(1_ms);
    });
}

void sc_queue(Api& api) {
    api.spawn_task("qcons", 1, [&api] {
        for (int i = 0; i < 3; ++i) {
            const std::int64_t v = api.q_recv();
            api.exec(microseconds(100) * static_cast<std::uint64_t>(v + 1));
        }
    });
    api.spawn_task("qprod", 3, [&api] {
        for (std::int64_t i = 0; i < 3; ++i) {
            api.exec(1_ms);
            api.q_send(i);
        }
    });
}

void sc_round_robin(Api& api) {
    for (const char* n : {"rr0", "rr1", "rr2"}) {
        api.spawn_task(n, 0, [&api] { api.exec(2500_us); });
    }
}

void sc_sem_timeout(Api& api) {
    // The producer idles (no CPU use), so the consumer's 1 ms timeout is
    // served the instant it fires and genuinely fails; the 5 ms wait then
    // succeeds when the signal lands at 3 ms.
    api.spawn_task("twait", 1, [&api] {
        EXPECT_FALSE(api.sem_wait_for(1_ms));  // nothing signaled before 1 ms
        api.exec(500_us);
        EXPECT_TRUE(api.sem_wait_for(5_ms));   // token arrives at 3 ms
        api.exec(500_us);
    });
    api.spawn_task("tprod", 5, [&api] {
        api.delay(3_ms);
        api.sem_signal();
        api.exec(100_us);
    });
}

void sc_restart_watchdog(Api& api) {
    // A managed service pets its watchdog chunk by chunk, then overruns; the
    // supervisor restarts it mid-flight and finally disarms the watchdog.
    // Exercises task_set_body/task_start/task_restart/watchdog_* against
    // cre_tsk/sta_tsk/rst_tsk/sta_wdg/kck_wdg/stp_wdg.
    api.spawn_managed("svc", 2, [&api] {
        for (int i = 0; i < 4; ++i) {
            api.exec(1_ms);
            api.wd_kick("svc");
        }
        api.exec(5_ms);  // overrun tail: the watchdog fires (Notify) mid-way
    });
    api.spawn_task("boss", 1, [&api] {
        api.wd_arm("svc", 2_ms, MissPolicy::Notify);
        api.delay(3_ms);
        api.restart("svc");  // restart the preempted service mid-flight
        api.delay(12_ms);
        api.wd_disarm("svc");
    });
}

void sc_faulted_recovery(Api& api) {
    // Same shape under an active fault plan: seeded exec jitter and a scaling
    // window stretch the service's chunks, so the kicks race the watchdog.
    // Both personalities see the same injector decisions (same plan seed),
    // so traces, metrics, and recovery counters must still match exactly.
    api.spawn_managed("worker", 3, [&api] {
        for (int i = 0; i < 5; ++i) {
            api.exec(1_ms);
            api.wd_kick("worker");
        }
    });
    api.spawn_task("boss", 1, [&api] {
        api.wd_arm("worker", 2_ms, MissPolicy::Notify);
        api.delay(4_ms);
        api.restart("worker");
        api.delay(14_ms);
        api.wd_disarm("worker");
    });
}

TEST(Conformance, Preemption) { expect_conformant("preemption", sc_preemption); }

TEST(Conformance, SemaphoreProducerConsumer) {
    expect_conformant("semaphore", sc_semaphore);
}

TEST(Conformance, SleepWakeup) { expect_conformant("sleep/wakeup", sc_sleep_wakeup); }

TEST(Conformance, MessageQueue) { expect_conformant("queue", sc_queue); }

TEST(Conformance, RoundRobin) {
    expect_conformant("round-robin", sc_round_robin, SchedPolicy::RoundRobin);
}

TEST(Conformance, SemaphoreTimeout) {
    expect_conformant("timed semaphore", sc_sem_timeout);
}

TEST(Conformance, RestartAndWatchdog) {
    expect_conformant("restart/watchdog", sc_restart_watchdog);
}

TEST(Conformance, FaultInjectedRecovery) {
    expect_conformant("faulted recovery", sc_faulted_recovery, SchedPolicy::Priority,
                      "seed 23\n"
                      "exec_jitter worker max=400us p=0.7\n"
                      "exec_scale worker factor=1.5 after=2ms until=6ms\n");
}

// ---- ITRON personality semantics ------------------------------------------

TEST(ItronPersonality, ObjectAndParameterErrors) {
    Kernel k;
    itron::ItronOs os{k};
    EXPECT_EQ(os.cre_tsk(0, {.name = "bad", .task = [] {}}), itron::E_ID);
    EXPECT_EQ(os.cre_tsk(1, {.name = "nobody", .task = nullptr}), itron::E_PAR);
    EXPECT_EQ(os.sta_tsk(1), itron::E_NOEXS);
    EXPECT_EQ(os.cre_tsk(1, {.name = "t1", .task = [] {}}), itron::E_OK);
    EXPECT_EQ(os.cre_tsk(1, {.name = "dup", .task = [] {}}), itron::E_OBJ);
    EXPECT_EQ(os.sta_tsk(1), itron::E_OK);
    EXPECT_EQ(os.sta_tsk(1), itron::E_OBJ);  // not DORMANT anymore
    EXPECT_EQ(os.chg_pri(9, 3), itron::E_NOEXS);
    EXPECT_EQ(os.get_pri(1, nullptr), itron::E_PAR);
    EXPECT_EQ(os.cre_sem(-1, {}), itron::E_ID);
    EXPECT_EQ(os.cre_sem(1, {.isemcnt = 5, .maxsem = 2}), itron::E_PAR);
    EXPECT_EQ(os.sig_sem(1), itron::E_NOEXS);
    EXPECT_EQ(os.wai_sem(1), itron::E_NOEXS);
    EXPECT_EQ(os.cre_dtq(0, {}), itron::E_ID);
    EXPECT_EQ(os.snd_dtq(7, 0), itron::E_NOEXS);
    itron::VP_INT v = 0;
    EXPECT_EQ(os.rcv_dtq(nullptr, 1), itron::E_PAR);
    EXPECT_EQ(os.rcv_dtq(&v, 1), itron::E_NOEXS);
    // Task-context calls made from outside any task:
    EXPECT_EQ(os.slp_tsk(), itron::E_CTX);
    EXPECT_EQ(os.dly_tsk(1_ms), itron::E_CTX);
    os.start();
    k.run();
}

TEST(ItronPersonality, SemaphoreMaxCountAndPolling) {
    Kernel k;
    itron::ItronOs os{k};
    ASSERT_EQ(os.cre_sem(1, {.isemcnt = 1, .maxsem = 2, .name = "s"}), itron::E_OK);
    EXPECT_EQ(os.sig_sem(1), itron::E_OK);     // 1 -> 2
    EXPECT_EQ(os.sig_sem(1), itron::E_QOVR);   // at maxsem
    EXPECT_EQ(os.semaphore_count(1), 2u);
    EXPECT_EQ(os.pol_sem(1), itron::E_OK);     // 2 -> 1
    EXPECT_EQ(os.pol_sem(1), itron::E_OK);     // 1 -> 0
    EXPECT_EQ(os.pol_sem(1), itron::E_TMOUT);  // empty, polling never blocks
    EXPECT_EQ(os.twai_sem(1, SimTime::zero()), itron::E_TMOUT);  // TMO_POL
}

TEST(ItronPersonality, WakeupCounting) {
    Kernel k;
    itron::ItronOs os{k};
    SimTime first{};
    SimTime second{};
    os.cre_tsk(1, {.name = "sleeper", .itskpri = 5, .task = [&] {
                       os.core().time_wait(1_ms);
                       EXPECT_EQ(os.slp_tsk(), itron::E_OK);  // queued wakeup: no block
                       first = k.now();
                       EXPECT_EQ(os.slp_tsk(), itron::E_OK);  // real suspension
                       second = k.now();
                   }});
    os.cre_tsk(2, {.name = "waker", .itskpri = 1, .task = [&] {
                       EXPECT_EQ(os.wup_tsk(1), itron::E_OK);  // target awake: wupcnt=1
                       EXPECT_EQ(os.dly_tsk(3_ms), itron::E_OK);
                       EXPECT_EQ(os.wup_tsk(1), itron::E_OK);  // target asleep: wakes it
                   }});
    ASSERT_EQ(os.sta_tsk(1), itron::E_OK);
    ASSERT_EQ(os.sta_tsk(2), itron::E_OK);
    os.start();
    k.run();
    EXPECT_EQ(first.ns(), milliseconds(1).ns());
    EXPECT_EQ(second.ns(), milliseconds(3).ns());
}

TEST(ItronPersonality, CanWupDrainsQueuedWakeups) {
    Kernel k;
    itron::ItronOs os{k};
    SimTime woke{};
    os.cre_tsk(1, {.name = "sleeper", .itskpri = 5, .task = [&] {
                       EXPECT_EQ(os.slp_tsk(), itron::E_OK);
                       woke = k.now();
                   }});
    os.cre_tsk(2, {.name = "waker", .itskpri = 1, .task = [&] {
                       EXPECT_EQ(os.wup_tsk(1), itron::E_OK);
                       EXPECT_EQ(os.wup_tsk(1), itron::E_OK);
                       unsigned n = 99;
                       EXPECT_EQ(os.can_wup(1, &n), itron::E_OK);
                       EXPECT_EQ(n, 2u);  // both wakeups were still queued
                       EXPECT_EQ(os.dly_tsk(2_ms), itron::E_OK);
                       EXPECT_EQ(os.wup_tsk(1), itron::E_OK);
                   }});
    ASSERT_EQ(os.sta_tsk(1), itron::E_OK);
    ASSERT_EQ(os.sta_tsk(2), itron::E_OK);
    os.start();
    k.run();
    // The canceled wakeups must not satisfy the sleep: it blocks until 2 ms.
    EXPECT_EQ(woke.ns(), milliseconds(2).ns());
}

TEST(ItronPersonality, ExtTskAndTerTsk) {
    Kernel k;
    itron::ItronOs os{k};
    bool after_ext = false;
    os.cre_tsk(1, {.name = "quitter", .itskpri = 1, .task = [&] {
                       os.core().time_wait(1_ms);
                       os.ext_tsk();
                       after_ext = true;  // must be unreachable
                   }});
    os.cre_tsk(2, {.name = "victim", .itskpri = 5, .task = [&] {
                       os.core().time_wait(10_ms);
                   }});
    os.cre_tsk(3, {.name = "killer", .itskpri = 2, .task = [&] {
                       os.core().time_wait(2_ms);
                       EXPECT_EQ(os.ter_tsk(3), itron::E_OBJ);  // self: use ext_tsk
                       EXPECT_EQ(os.ter_tsk(2), itron::E_OK);
                       EXPECT_EQ(os.ter_tsk(2), itron::E_OBJ);  // already gone
                   }});
    ASSERT_EQ(os.sta_tsk(1), itron::E_OK);
    ASSERT_EQ(os.sta_tsk(2), itron::E_OK);
    ASSERT_EQ(os.sta_tsk(3), itron::E_OK);
    os.start();
    k.run();
    EXPECT_FALSE(after_ext);
    EXPECT_EQ(os.task(1)->state(), TaskState::Terminated);
    EXPECT_EQ(os.task(2)->state(), TaskState::Terminated);
    EXPECT_LT(k.now().ns(), milliseconds(10).ns());  // victim's exec never completed
}

TEST(ItronPersonality, ChangePriorityReschedules) {
    Kernel k;
    itron::ItronOs os{k};
    std::vector<std::string> order;
    os.cre_tsk(1, {.name = "A", .itskpri = 1, .task = [&] {
                       order.push_back("A0");
                       os.core().time_wait(1_ms);
                       EXPECT_EQ(os.chg_pri(1, 10), itron::E_OK);  // drop below B
                       order.push_back("A1");
                       os.core().time_wait(1_ms);
                   }});
    os.cre_tsk(2, {.name = "B", .itskpri = 5, .task = [&] {
                       order.push_back("B0");
                       os.core().time_wait(1_ms);
                       order.push_back("B1");
                   }});
    ASSERT_EQ(os.sta_tsk(1), itron::E_OK);
    ASSERT_EQ(os.sta_tsk(2), itron::E_OK);
    os.start();
    k.run();
    // Lowering A's own priority switches to B inside the chg_pri call; A1 is
    // only logged after B ran to completion.
    const std::vector<std::string> expected{"A0", "B0", "B1", "A1"};
    EXPECT_EQ(order, expected);
    itron::PRI p = 0;
    EXPECT_EQ(os.get_pri(1, &p), itron::E_OK);
    EXPECT_EQ(p, 10);
}

// ---- exploration works on both personalities -------------------------------

TEST(Conformance, ExplorerCoversBothPersonalities) {
    // Two equal-priority two-step tasks: every dispatch is a tie, so the
    // schedule space has more than one path. Both personalities must expose
    // the *same* space to the explorer, because choice points live in the
    // shared core, not in the API layer.
    auto paper_build = [](explore::Run& run) {
        auto& os = run.make<RtosModel>(run.kernel(), RtosConfig{.tracer = &run.trace()});
        os.init();
        for (const char* n : {"A", "B"}) {
            Task* t = os.task_create(n, TaskType::Aperiodic, {}, {}, 1);
            run.kernel().spawn(n, [&os, t] {
                os.task_activate(t);
                os.time_wait(1_ms);
                os.time_wait(1_ms);
                os.task_terminate();
            });
        }
        os.start();
    };
    auto itron_build = [](explore::Run& run) {
        auto& os = run.make<itron::ItronOs>(run.kernel(),
                                            RtosConfig{.tracer = &run.trace()});
        itron::ID id = 1;
        for (const char* n : {"A", "B"}) {
            os.cre_tsk(id, {.name = n, .itskpri = 1, .task = [&os] {
                                os.core().time_wait(1_ms);
                                os.core().time_wait(1_ms);
                            }});
            os.sta_tsk(id);
            ++id;
        }
        os.start();
    };
    explore::ExploreConfig ec;
    ec.preemption_bound = 2;
    const auto paper = explore::Explorer{paper_build, ec}.explore();
    const auto itron_r = explore::Explorer{itron_build, ec}.explore();
    EXPECT_TRUE(paper.exhausted);
    EXPECT_TRUE(itron_r.exhausted);
    EXPECT_GT(paper.stats.paths, 1u);
    EXPECT_EQ(paper.stats.paths, itron_r.stats.paths);
    EXPECT_EQ(paper.stats.choice_points, itron_r.stats.choice_points);
    EXPECT_TRUE(paper.violations.empty());
    EXPECT_TRUE(itron_r.violations.empty());
}

TEST(Conformance, ExplorerFindsDeadlockInItronModel) {
    // Classic cross-order semaphore deadlock written purely against the ITRON
    // API: the core-level deadlock checker must flag it without any
    // personality-specific support.
    auto build = [](explore::Run& run) {
        auto& os = run.make<itron::ItronOs>(run.kernel(),
                                            RtosConfig{.tracer = &run.trace()});
        os.cre_sem(1, {.isemcnt = 1, .maxsem = 1, .name = "s1"});
        os.cre_sem(2, {.isemcnt = 1, .maxsem = 1, .name = "s2"});
        os.cre_tsk(1, {.name = "fwd", .itskpri = 1, .task = [&os] {
                           os.wai_sem(1);
                           os.dly_tsk(1_ms);
                           os.wai_sem(2);
                           os.sig_sem(2);
                           os.sig_sem(1);
                       }});
        os.cre_tsk(2, {.name = "rev", .itskpri = 2, .task = [&os] {
                           os.wai_sem(2);
                           os.dly_tsk(1_ms);
                           os.wai_sem(1);
                           os.sig_sem(1);
                           os.sig_sem(2);
                       }});
        os.sta_tsk(1);
        os.sta_tsk(2);
        os.start();
    };
    const auto r = explore::Explorer{build}.explore();
    ASSERT_FALSE(r.violations.empty());
    EXPECT_TRUE(std::any_of(r.violations.begin(), r.violations.end(), [](const auto& v) {
        return v.kind == explore::Violation::Kind::Deadlock;
    }));
}

}  // namespace
