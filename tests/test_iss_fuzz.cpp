// Randomized round-trip and robustness tests for the SLM32 toolchain: any
// valid instruction sequence must survive disassemble -> assemble -> encode ->
// decode unchanged, and the CPU must never escape its sandbox on random
// (valid-opcode) programs.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/isa.hpp"

using namespace slm::iss;

namespace {

/// Generate an instruction whose populated fields match exactly what the
/// op's textual form carries — the disassemble/assemble round trip can only
/// preserve significant fields, so don't-care fields stay zero.
Instr random_instr(std::mt19937& rng, int program_size) {
    constexpr Op kOps[] = {Op::Nop, Op::Ldi, Op::Mov, Op::Add,  Op::Sub, Op::Mul,
                           Op::Mac, Op::And, Op::Or,  Op::Xor,  Op::Shl, Op::Shr,
                           Op::Div, Op::Rem, Op::Addi, Op::Ld,  Op::St,  Op::Beq,
                           Op::Bne, Op::Blt, Op::Bge, Op::Jmp,  Op::Jal, Op::Jr,
                           Op::Sys, Op::Halt};
    const auto reg = [&rng] { return static_cast<std::uint8_t>(rng() % kNumRegs); };
    const auto target = [&rng, program_size] {
        return static_cast<std::int32_t>(rng() % static_cast<unsigned>(program_size));
    };
    Instr i;
    i.op = kOps[rng() % (sizeof kOps / sizeof kOps[0])];
    switch (i.op) {
        case Op::Nop:
        case Op::Halt:
            break;
        case Op::Ldi:
            i.rd = reg();
            i.imm = static_cast<std::int32_t>(rng() % 200001) - 100000;
            break;
        case Op::Mov:
            i.rd = reg();
            i.ra = reg();
            break;
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Mac:
        case Op::And:
        case Op::Or:
        case Op::Xor:
        case Op::Shl:
        case Op::Shr:
        case Op::Div:
        case Op::Rem:
            i.rd = reg();
            i.ra = reg();
            i.rb = reg();
            break;
        case Op::Addi:
            i.rd = reg();
            i.ra = reg();
            i.imm = static_cast<std::int32_t>(rng() % 2001) - 1000;
            break;
        case Op::Ld:
            i.rd = reg();
            i.ra = reg();
            i.imm = static_cast<std::int32_t>(rng() % 64);
            break;
        case Op::St:
            i.ra = reg();
            i.rb = reg();
            i.imm = static_cast<std::int32_t>(rng() % 64);
            break;
        case Op::Beq:
        case Op::Bne:
        case Op::Blt:
        case Op::Bge:
            i.ra = reg();
            i.rb = reg();
            i.imm = target();
            break;
        case Op::Jmp:
            i.imm = target();
            break;
        case Op::Jal:
            i.rd = reg();
            i.imm = target();
            break;
        case Op::Jr:
            i.ra = reg();
            break;
        case Op::Sys:
            i.imm = 5;  // host-notify: the only side-effect-free service
            break;
    }
    return i;
}

}  // namespace

class IssFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IssFuzz, DisassembleAssembleRoundTrip) {
    std::mt19937 rng{GetParam()};
    constexpr int kLen = 60;
    std::vector<Instr> prog;
    prog.reserve(kLen);
    for (int i = 0; i < kLen; ++i) {
        prog.push_back(random_instr(rng, kLen));
    }
    std::string listing;
    for (const Instr& i : prog) {
        listing += disassemble(i) + "\n";
    }
    const AsmResult re = assemble(listing);
    ASSERT_TRUE(re.ok()) << listing;
    EXPECT_EQ(re.program.code, prog);
}

TEST_P(IssFuzz, EncodeDecodeRoundTrip) {
    std::mt19937 rng{GetParam()};
    for (int i = 0; i < 300; ++i) {
        const Instr instr = random_instr(rng, 1000);
        EXPECT_EQ(decode(encode(instr)), instr);
    }
}

TEST_P(IssFuzz, RandomProgramsNeverEscapeTheSandbox) {
    // Random valid-opcode programs either halt, fault cleanly (pc/memory/
    // div-zero), request a syscall, or exhaust the cycle budget — the host
    // process must never crash and data accesses stay in bounds by
    // construction of the Cpu API.
    std::mt19937 rng{GetParam() ^ 0x5a5a5a5au};
    for (int p = 0; p < 20; ++p) {
        constexpr int kLen = 40;
        std::vector<Instr> prog;
        for (int i = 0; i < kLen; ++i) {
            prog.push_back(random_instr(rng, kLen));
        }
        Cpu cpu{prog, 256};
        std::uint64_t budget = 200'000;
        Trap last = Trap::None;
        for (int hops = 0; hops < 64 && budget > 0; ++hops) {
            const RunResult r = cpu.run(budget);
            budget -= std::min<std::uint64_t>(budget,
                                              static_cast<std::uint64_t>(r.cycles));
            last = r.trap;
            if (r.trap == Trap::Halt || r.trap == Trap::Fault || r.trap == Trap::None) {
                break;  // clean terminal state (None = budget exhausted)
            }
            // Trap::Sys: skip the service and keep running.
        }
        // Whatever happened, the machine ended in a well-defined state: a
        // fault carries a diagnostic, and the cycle ledger never exceeds the
        // budget handed out (plus one in-flight instruction).
        if (last == Trap::Fault) {
            EXPECT_FALSE(cpu.fault_message().empty());
        }
        EXPECT_LE(cpu.cycles(), 200'000u + 16u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IssFuzz,
                         ::testing::Values(1u, 7u, 42u, 1001u, 31337u, 0xdeadbeefu),
                         [](const ::testing::TestParamInfo<std::uint32_t>& info) {
                             return "seed" + std::to_string(info.param);
                         });
