#include "analysis/analysis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

using namespace slm;
using namespace slm::analysis;
using namespace slm::time_literals;

namespace {

PeriodicTaskSpec task(const char* name, SimTime period, SimTime wcet, int prio = 0) {
    PeriodicTaskSpec t;
    t.name = name;
    t.period = period;
    t.wcet = wcet;
    t.priority = prio;
    return t;
}

/// The classic unschedulable-by-RTA example: U = 0.823, T1 misses.
std::vector<PeriodicTaskSpec> unschedulable_set() {
    std::vector<PeriodicTaskSpec> ts = {
        task("T1", 50_ms, 12_ms),
        task("T2", 40_ms, 10_ms),
        task("T3", 30_ms, 10_ms),
    };
    assign_rms_priorities(ts);
    return ts;
}

/// A comfortably schedulable set: U = 0.628.
std::vector<PeriodicTaskSpec> schedulable_set() {
    std::vector<PeriodicTaskSpec> ts = {
        task("T1", 100_ms, 20_ms),
        task("T2", 150_ms, 30_ms),
        task("T3", 350_ms, 80_ms),
    };
    assign_rms_priorities(ts);
    return ts;
}

}  // namespace

TEST(Analysis, Utilization) {
    const auto ts = schedulable_set();
    EXPECT_NEAR(utilization(ts), 0.2 + 0.2 + 80.0 / 350.0, 1e-9);
}

TEST(Analysis, RmsBoundValues) {
    EXPECT_NEAR(rms_utilization_bound(1), 1.0, 1e-9);
    EXPECT_NEAR(rms_utilization_bound(2), 0.8284271247, 1e-6);
    EXPECT_NEAR(rms_utilization_bound(3), 0.7797631497, 1e-6);
    EXPECT_EQ(rms_utilization_bound(0), 1.0);
}

TEST(Analysis, RmsBoundTest) {
    EXPECT_TRUE(rms_schedulable_by_bound(schedulable_set()));
    EXPECT_FALSE(rms_schedulable_by_bound(unschedulable_set()));
}

TEST(Analysis, EdfTest) {
    EXPECT_TRUE(edf_schedulable(schedulable_set()));
    EXPECT_TRUE(edf_schedulable(unschedulable_set()));  // U = 0.823 <= 1
    std::vector<PeriodicTaskSpec> over = {task("a", 10_ms, 6_ms), task("b", 10_ms, 5_ms)};
    EXPECT_FALSE(edf_schedulable(over));
}

TEST(Analysis, AssignRmsPriorities) {
    auto ts = unschedulable_set();
    // Shortest period (T3, 30 ms) gets the highest priority (0).
    EXPECT_EQ(ts[2].priority, 0);
    EXPECT_EQ(ts[1].priority, 1);
    EXPECT_EQ(ts[0].priority, 2);
}

TEST(Analysis, ResponseTimeHandComputed) {
    const auto ts = schedulable_set();
    // Highest priority task: response = its own WCET.
    EXPECT_EQ(response_time(ts, 0).value(), 20_ms);
    // T2: 30 + ceil(R/100)*20 -> 50.
    EXPECT_EQ(response_time(ts, 1).value(), 50_ms);
    // T3: 80 + interference from T1 and T2 -> fixpoint at 150.
    EXPECT_EQ(response_time(ts, 2).value(), 150_ms);
}

TEST(Analysis, ResponseTimeDetectsOverrun) {
    const auto ts = unschedulable_set();
    // T1 (lowest priority): recurrence exceeds its 50 ms deadline.
    EXPECT_FALSE(response_time(ts, 0).has_value());
    EXPECT_FALSE(rta_schedulable(ts));
}

TEST(Analysis, RtaAcceptsSchedulableSet) {
    EXPECT_TRUE(rta_schedulable(schedulable_set()));
}

TEST(Analysis, BlockingTermInflatesResponse) {
    const auto ts = schedulable_set();
    // T2 with a 25 ms blocking term (longest lower-priority critical section
    // under priority inheritance): R = 30 + 25 + ceil(R/100)*20 -> 75.
    const auto r = response_time_with_blocking(ts, 1, 25_ms);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 75_ms);
    EXPECT_GT(*r, response_time(ts, 1).value());
}

TEST(Analysis, BlockingCanBreakSchedulability) {
    const auto ts = schedulable_set();
    // T3's slack to its 350 ms deadline is 200 ms; a larger blocking term
    // pushes the recurrence past the deadline.
    EXPECT_TRUE(response_time_with_blocking(ts, 2, 100_ms).has_value());
    EXPECT_FALSE(response_time_with_blocking(ts, 2, 260_ms).has_value());
}

TEST(Analysis, ZeroBlockingMatchesPlainResponseTime) {
    const auto ts = schedulable_set();
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(response_time_with_blocking(ts, i, SimTime::zero()),
                  response_time(ts, i))
            << ts[i].name;
    }
}

TEST(Analysis, OverloadedRecurrenceDiverges) {
    // Higher-priority utilization 1.2 with an effectively unbounded deadline:
    // every busy period grows without bound, so the recurrence never reaches
    // a fixpoint and must report nullopt (via the iteration cap), not hang or
    // hand back a wrapped value.
    std::vector<PeriodicTaskSpec> ts = {task("H1", 10_ms, 6_ms, 0),
                                        task("H2", 10_ms, 6_ms, 1),
                                        task("L", 100_ms, 5_ms, 2)};
    ts[2].deadline = SimTime::max();
    EXPECT_FALSE(response_time(ts, 2).has_value());
    EXPECT_FALSE(response_time_with_blocking(ts, 2, 1_ms).has_value());
}

TEST(Analysis, SaturatedInterferenceIsDivergenceNotGarbage) {
    // A near-max WCET makes the interference term saturate SimTime; the
    // fixpoint must be reported as divergent instead of "converging" on max.
    std::vector<PeriodicTaskSpec> ts = {
        task("H", 1_ms, SimTime{std::uint64_t{1} << 62}, 0),
        task("L", 10_ms, 1_ms, 1)};
    ts[1].deadline = SimTime::max();
    EXPECT_FALSE(response_time(ts, 1).has_value());
}

TEST(Analysis, HyperperiodExactAndChecked) {
    std::vector<PeriodicTaskSpec> ts = {task("a", 4_ms, 1_ms), task("b", 6_ms, 1_ms)};
    EXPECT_EQ(hyperperiod(ts), 12_ms);
    EXPECT_EQ(hyperperiod_checked(ts), std::optional<SimTime>{12_ms});
    EXPECT_EQ(hyperperiod({}), SimTime::zero());
    EXPECT_EQ(hyperperiod_checked({}), std::optional<SimTime>{SimTime::zero()});
}

TEST(Analysis, HyperperiodOverflowIsDetected) {
    // Three coprime ~2^31 ns periods: the pairwise LCM still fits (~4.6e18),
    // the triple product (~9.9e27) does not. The checked variant must say so;
    // the clamping wrapper saturates instead of wrapping.
    std::vector<PeriodicTaskSpec> ts = {
        task("p1", SimTime{2'147'483'647}, 1_ms),  // 2^31 - 1 (prime)
        task("p2", SimTime{2'147'483'629}, 1_ms),  // prime
        task("p3", SimTime{2'147'483'587}, 1_ms),  // prime
    };
    EXPECT_FALSE(hyperperiod_checked(ts).has_value());
    EXPECT_EQ(hyperperiod(ts), SimTime::max());
    EXPECT_TRUE(
        hyperperiod_checked(std::span{ts.data(), 2}).has_value());  // 2 primes fit
}

TEST(Analysis, ExplicitDeadlineTightensTest) {
    auto ts = schedulable_set();
    ts[2].deadline = 100_ms;  // T3's response (150 ms) now exceeds its deadline
    EXPECT_FALSE(rta_schedulable(ts));
}

// ---- cross-validation against the RTOS-model simulation ----

namespace {

struct SimOutcome {
    SimTime max_response;
    std::uint64_t misses;
};

/// Run the task set under the RMS policy and report the named task's measured
/// worst response + total deadline misses. All tasks release at t=0 (the
/// critical instant), so the first job experiences worst-case interference.
SimOutcome simulate_rms(const std::vector<PeriodicTaskSpec>& ts,
                        const std::string& who, SimTime horizon) {
    sim::Kernel k;
    rtos::RtosConfig cfg;
    cfg.policy = rtos::SchedPolicy::Rms;
    // Near-ideal preemption so the simulation matches RTA's assumptions.
    cfg.preemption_granularity = 1_ms;
    rtos::RtosModel os{k, cfg};
    std::vector<rtos::Task*> tasks;
    for (const PeriodicTaskSpec& spec : ts) {
        rtos::Task* t = os.task_create(spec.name, rtos::TaskType::Periodic, spec.period,
                                       spec.wcet, spec.priority, spec.deadline);
        tasks.push_back(t);
        k.spawn(spec.name, [&os, t, wcet = spec.wcet] {
            os.task_activate(t);
            for (;;) {
                os.time_wait(wcet);
                os.task_endcycle();
            }
        });
    }
    os.start();
    (void)k.run_until(horizon);
    SimOutcome out{};
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].name == who) {
            out.max_response = tasks[i]->stats().max_response;
        }
        out.misses += tasks[i]->stats().deadline_misses;
    }
    return out;
}

}  // namespace

TEST(AnalysisVsSimulation, ResponseTimeMatchesRta) {
    const auto ts = schedulable_set();
    const SimTime rta = response_time(ts, 2).value();  // T3: 150 ms
    const SimOutcome sim = simulate_rms(ts, "T3", 2100_ms);  // one hyperperiod
    // The simulated worst response brackets the analytical value: at least the
    // ideal-preemption bound, at most bound + blocking from the 1 ms chunks.
    EXPECT_GE(sim.max_response, rta);
    EXPECT_LE(sim.max_response, rta + 3_ms);
    EXPECT_EQ(sim.misses, 0u);
}

TEST(AnalysisVsSimulation, UnschedulableSetMissesInSimulation) {
    const auto ts = unschedulable_set();
    ASSERT_FALSE(rta_schedulable(ts));
    const SimOutcome sim = simulate_rms(ts, "T1", 600_ms);
    EXPECT_GT(sim.misses, 0u);
}

TEST(AnalysisVsSimulation, HigherPriorityTasksUnaffected) {
    const auto ts = unschedulable_set();
    // T3 (highest priority) stays schedulable even in the overloaded set.
    const SimOutcome sim = simulate_rms(ts, "T3", 600_ms);
    EXPECT_LE(sim.max_response, 10_ms + 2_ms);
}

TEST(AnalysisVsSimulation, ResponseExactlyAtDeadlineIsSchedulable) {
    // U = 1.0, fully packed: T2's response lands exactly on its deadline
    // (R = 4 + ceil(8/4)*2 = 8 = D). The boundary counts as schedulable both
    // analytically and in simulation — a strict > in either place would
    // misclassify this set.
    std::vector<PeriodicTaskSpec> ts = {task("T1", 4_ms, 2_ms),
                                        task("T2", 8_ms, 4_ms)};
    assign_rms_priorities(ts);
    EXPECT_EQ(response_time(ts, 1).value(), 8_ms);
    EXPECT_TRUE(rta_schedulable(ts));
    const SimOutcome sim = simulate_rms(ts, "T2", 64_ms);
    EXPECT_EQ(sim.misses, 0u);
    EXPECT_EQ(sim.max_response, 8_ms);
}
