// Property sweeps over the vocoder codec and the generated guest programs:
// fidelity, determinism, and calibration must hold across seeds, not just for
// the default test vector.

#include <gtest/gtest.h>

#include <set>

#include "iss/cpu.hpp"
#include "iss/guest_os.hpp"
#include "vocoder/codec.hpp"
#include "vocoder/iss_gen.hpp"
#include "vocoder/timing.hpp"

using namespace slm;
using namespace slm::vocoder;

class CodecSeedSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CodecSeedSweep, RoundTripFidelity) {
    SpeechSource src{GetParam()};
    Encoder enc;
    Decoder dec;
    double min_snr = 1e9;
    for (int f = 0; f < 15; ++f) {
        const Frame in = src.next_frame();
        const Frame out = dec.decode(enc.encode(in));
        min_snr = std::min(min_snr, snr_db(in, out));
    }
    EXPECT_GT(min_snr, 8.0) << "seed " << GetParam();
}

TEST_P(CodecSeedSweep, ResidualAlwaysRepresentable) {
    SpeechSource src{GetParam()};
    Encoder enc;
    for (int f = 0; f < 10; ++f) {
        const EncodedFrame e = enc.encode(src.next_frame());
        EXPECT_GE(e.shift, 0);
        EXPECT_LT(e.shift, 16);  // residual energy stays in a sane band
        for (const std::int8_t r : e.residual) {
            EXPECT_GE(r, -128);
            EXPECT_LE(r, 127);
        }
    }
}

TEST_P(CodecSeedSweep, ChecksumsDistinctAcrossFrames) {
    SpeechSource src{GetParam()};
    std::set<std::uint32_t> sums;
    for (int f = 0; f < 30; ++f) {
        sums.insert(frame_checksum(src.next_frame()));
    }
    EXPECT_EQ(sums.size(), 30u);  // no accidental collisions on real frames
}

TEST_P(CodecSeedSweep, DecoderIsPureFunctionOfBitstream) {
    SpeechSource src{GetParam()};
    Encoder enc;
    std::vector<EncodedFrame> stream;
    for (int f = 0; f < 5; ++f) {
        stream.push_back(enc.encode(src.next_frame()));
    }
    Decoder d1, d2;
    for (const EncodedFrame& e : stream) {
        EXPECT_EQ(d1.decode(e), d2.decode(e));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 1234u, 0xffffffffu),
                         [](const ::testing::TestParamInfo<std::uint32_t>& info) {
                             return "seed" + std::to_string(info.param);
                         });

// ---- guest image calibration ----

class GuestCalibration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GuestCalibration, EncoderCyclesHitTarget) {
    // Run the generated encoder for one frame standalone and check the
    // executed cycle count lands within 1% of the calibration target.
    const std::size_t frames = GetParam();
    const GuestImage img = build_vocoder_guest(frames);
    iss::Cpu cpu{img.program.code, 65536};
    iss::GuestKernel gk{cpu};
    gk.sem_init(kSemFrame, 1);  // one frame pre-queued
    gk.sem_init(kSemBits, 0);
    gk.create_task("encoder", 1, img.encoder_entry, 61000);
    // Execute until the encoder blocks on the second frame (or exits).
    std::uint64_t total = 0;
    for (int i = 0; i < 10'000 && !gk.idle() && !gk.all_exited(); ++i) {
        total += gk.run_slice(100'000);
    }
    const std::uint64_t target = actual_cycles(kEncodeWcetCycles);
    const std::uint64_t overhead =
        iss::GuestKernelConfig{}.context_switch_cycles +
        2 * iss::GuestKernelConfig{}.syscall_cycles;
    EXPECT_GT(total, target - target / 100);
    EXPECT_LT(total, target + target / 100 + overhead);
}

INSTANTIATE_TEST_SUITE_P(FrameCounts, GuestCalibration, ::testing::Values(1u, 4u, 16u),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return std::to_string(info.param) + "frames";
                         });
