// Unified observability layer (src/obs/): metrics registry semantics and
// exposition formats, binary trace sink losslessness + file format, and the
// online per-task analytics observer including the priority-inversion
// detector. The cross-personality guarantees of the analytics metrics are
// pinned separately in tests/test_conformance.cpp.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/binary_trace.hpp"
#include "rtos/os_channels.hpp"
#include "rtos/rtos.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

using namespace slm;
using namespace slm::obs;
using namespace slm::time_literals;

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, GetOrCreateAddressesTheSameSeries) {
    Registry reg;
    Counter& a = reg.counter("slm_test_total", "h", {{"task", "x"}});
    Counter& b = reg.counter("slm_test_total", "h", {{"task", "x"}});
    Counter& c = reg.counter("slm_test_total", "h", {{"task", "y"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.family_count(), 1u);
    a.inc(2);
    EXPECT_EQ(reg.find_counter("slm_test_total", {{"task", "x"}})->value(), 2u);
}

TEST(Registry, LabelOrderDoesNotMatter) {
    Registry reg;
    Counter& a = reg.counter("slm_t", "h", {{"b", "2"}, {"a", "1"}});
    Counter& b = reg.counter("slm_t", "h", {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&a, &b);
}

TEST(Registry, FindReturnsNullForAbsentOrWrongKind) {
    Registry reg;
    reg.counter("slm_c", "h");
    EXPECT_EQ(reg.find_counter("slm_missing"), nullptr);
    EXPECT_EQ(reg.find_counter("slm_c", {{"task", "x"}}), nullptr);
    EXPECT_EQ(reg.find_gauge("slm_c"), nullptr);  // exists, but as a counter
    EXPECT_NE(reg.find_counter("slm_c"), nullptr);
}

TEST(Registry, GaugeSourceOverridesSetValue) {
    Registry reg;
    Gauge& g = reg.gauge("slm_g", "h");
    g.set(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    double live = 7.0;
    g.set_source([&live] { return live; });
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
    live = 9.0;
    EXPECT_DOUBLE_EQ(g.value(), 9.0);  // read-through, not a snapshot
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, CountsSumsAndBuckets) {
    Histogram h{{10.0, 20.0, 30.0}};
    for (const double v : {5.0, 15.0, 25.0, 100.0}) {
        h.observe(v);
    }
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 145.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 36.25);
    // Non-cumulative per-bucket counts; the trailing entry is the +Inf bucket.
    const std::vector<std::uint64_t> expected{1, 1, 1, 1};
    EXPECT_EQ(h.bucket_counts(), expected);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClampedToObservedRange) {
    Histogram h{{10.0, 20.0, 30.0}};
    for (const double v : {5.0, 15.0, 25.0}) {
        h.observe(v);
    }
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 25.0);
    const double p50 = h.quantile(0.5);
    EXPECT_GE(p50, 5.0);
    EXPECT_LE(p50, 25.0);
    EXPECT_LE(h.quantile(0.25), p50);
    EXPECT_LE(p50, h.quantile(0.75));
}

TEST(HistogramTest, QuantileNeverInterpolatesPastObservedMax) {
    // One sample in a very wide bucket: naive interpolation would report a
    // value far above the only observation.
    Histogram h{{1000.0}};
    h.observe(7.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
}

TEST(HistogramTest, EmptyHistogramIsDefined) {
    Histogram h{Histogram::default_time_bounds_ns()};
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Exposition formats

TEST(Exposition, PrometheusTextFormat) {
    Registry reg;
    reg.counter("slm_events_total", "events seen", {{"task", "drv"}}).inc(4);
    reg.gauge("slm_depth", "queue depth").set(2.5);
    Histogram& h = reg.histogram("slm_lat_ns", "latency", {10.0, 100.0});
    h.observe(5.0);
    h.observe(50.0);
    std::ostringstream os;
    reg.write_prometheus(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("# HELP slm_events_total events seen\n"), std::string::npos)
        << out;
    EXPECT_NE(out.find("# TYPE slm_events_total counter\n"), std::string::npos);
    EXPECT_NE(out.find("slm_events_total{task=\"drv\"} 4\n"), std::string::npos);
    EXPECT_NE(out.find("# TYPE slm_depth gauge\n"), std::string::npos);
    EXPECT_NE(out.find("slm_depth 2.5\n"), std::string::npos);
    EXPECT_NE(out.find("# TYPE slm_lat_ns histogram\n"), std::string::npos);
    // Buckets are cumulative and end with +Inf; _sum/_count close the series.
    EXPECT_NE(out.find("slm_lat_ns_bucket{le=\"10\"} 1\n"), std::string::npos) << out;
    EXPECT_NE(out.find("slm_lat_ns_bucket{le=\"100\"} 2\n"), std::string::npos);
    EXPECT_NE(out.find("slm_lat_ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
    EXPECT_NE(out.find("slm_lat_ns_sum 55\n"), std::string::npos);
    EXPECT_NE(out.find("slm_lat_ns_count 2\n"), std::string::npos);
}

TEST(Exposition, PrometheusEscapesLabelValues) {
    Registry reg;
    reg.counter("slm_esc_total", "h", {{"task", "a\"b\\c\nd"}}).inc();
    std::ostringstream os;
    reg.write_prometheus(os);
    EXPECT_NE(os.str().find(R"(task="a\"b\\c\nd")"), std::string::npos) << os.str();
}

TEST(Exposition, JsonSharesTheChromeTraceEscaper) {
    const std::string nasty = "a\"b\\c\nd";
    Registry reg;
    reg.counter("slm_esc_total", "h", {{"task", nasty}}).inc();
    std::ostringstream os;
    reg.write_json(os);
    // Whatever trace::json_escape produces is what must land in the JSON --
    // one escaping routine for both exporters (no second implementation to
    // drift).
    EXPECT_NE(os.str().find(trace::json_escape(nasty)), std::string::npos) << os.str();
    EXPECT_NE(os.str().find("\"metrics\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stats-struct re-registration

TEST(StatsRegistration, KernelStatsReadThroughLive) {
    sim::Kernel k;
    k.spawn("p", [&] { k.waitfor(5_us); });
    Registry reg;
    register_kernel_stats(reg, k);
    k.run();
    // Registered before the run, read after it: callback gauges see the
    // current struct, not a snapshot from registration time.
    const Gauge* created = reg.find_gauge("slm_kernel_processes_created");
    ASSERT_NE(created, nullptr);
    EXPECT_DOUBLE_EQ(created->value(),
                     static_cast<double>(k.stats().processes_created));
    EXPECT_DOUBLE_EQ(reg.find_gauge("slm_kernel_now_ns")->value(),
                     static_cast<double>(k.now().ns()));
}

TEST(StatsRegistration, OsAndTaskStatsCarryLabels) {
    sim::Kernel k;
    rtos::RtosModel os{k, {}};
    os.init();
    rtos::Task* t = os.task_create("worker", rtos::TaskType::Aperiodic, {}, {}, 1);
    k.spawn("worker", [&] {
        os.task_activate(t);
        os.time_wait(10_us);
        os.task_terminate();
    });
    os.start();
    k.run();
    Registry reg;
    register_os_stats(reg, os);
    const Labels cpu{{"cpu", "cpu0"}};
    const Gauge* switches = reg.find_gauge("slm_os_context_switches", cpu);
    ASSERT_NE(switches, nullptr);
    EXPECT_DOUBLE_EQ(switches->value(),
                     static_cast<double>(os.stats().context_switches));
    // register_os_stats covers every task existing at call time.
    const Gauge* act =
        reg.find_gauge("slm_task_activations", {{"cpu", "cpu0"}, {"task", "worker"}});
    ASSERT_NE(act, nullptr);
    EXPECT_DOUBLE_EQ(act->value(), 1.0);
}

// ---------------------------------------------------------------------------
// BinaryTraceSink

namespace {

/// Record the same mixed-kind scenario into any sink. Names include JSON
/// metacharacters so export round-trips also exercise the escaper.
void record_scenario(trace::TraceSink& s) {
    s.marker(0_us, "start \"run\"");
    s.task_state(1_us, "PE0", "drv", "Ready");
    s.task_state(1_us, "PE0", "drv", "Running");
    s.context_switch(1_us, "PE0", "drv", "<idle>");
    s.exec_begin(1_us, "PE0", "drv");
    s.irq(3_us, "PE0", "timer");
    s.exec_end(5_us, "PE0", "drv");
    s.channel_op(5_us, "bus\\link", "send");
    s.task_state(5_us, "PE0", "drv", "Terminated");
    s.marker(6_us, "end");
}

}  // namespace

TEST(BinaryTrace, InternsRepeatedStringsOnce) {
    BinaryTraceSink bin;
    for (int i = 0; i < 1000; ++i) {
        bin.task_state(microseconds(static_cast<std::uint64_t>(i)), "PE0", "drv",
                       "Running");
    }
    EXPECT_EQ(bin.size(), 1000u);
    // "", "PE0", "drv", "Running" -- nothing else, no matter how many records.
    EXPECT_EQ(bin.string_count(), 4u);
    EXPECT_EQ(bin.str(0), "");  // the empty string is always id 0
}

TEST(BinaryTrace, RecordsCarryKindAndInternedIds) {
    BinaryTraceSink bin;
    bin.context_switch(2_us, "PE0", "b", "a");
    ASSERT_EQ(bin.size(), 1u);
    const BinaryTraceSink::BinRecord& r = bin.record(0);
    EXPECT_EQ(r.t_ns, 2000u);
    EXPECT_EQ(r.kind, static_cast<std::uint32_t>(trace::RecordKind::ContextSwitch));
    EXPECT_EQ(bin.str(r.cpu), "PE0");
    EXPECT_EQ(bin.str(r.actor), "b");   // incoming
    EXPECT_EQ(bin.str(r.detail), "a");  // outgoing
}

TEST(BinaryTrace, ReplayMatchesDirectRecordingByteForByte) {
    trace::TraceRecorder direct;
    BinaryTraceSink bin;
    record_scenario(direct);
    record_scenario(bin);
    const trace::TraceRecorder replayed = bin.to_recorder();
    const auto dump = [](const trace::TraceRecorder& rec) {
        std::ostringstream csv;
        std::ostringstream vcd;
        std::ostringstream chrome;
        rec.write_csv(csv);
        rec.write_vcd(vcd);
        rec.write_chrome_trace(chrome);
        return std::vector<std::string>{csv.str(), vcd.str(), chrome.str()};
    };
    EXPECT_EQ(dump(replayed), dump(direct));
    // And the derived views agree too.
    EXPECT_EQ(replayed.busy_time("drv"), direct.busy_time("drv"));
    EXPECT_EQ(replayed.context_switches(), direct.context_switches());
}

TEST(BinaryTrace, DirectChromeTraceMatchesRecorderPath) {
    // write_chrome_trace() renders straight from the interned records; it
    // must be byte-identical to materialising a TraceRecorder first, so the
    // direct path can never drift from the reference exporter.
    BinaryTraceSink bin;
    record_scenario(bin);
    std::ostringstream direct;
    std::ostringstream via_recorder;
    bin.write_chrome_trace(direct);
    bin.to_recorder().write_chrome_trace(via_recorder);
    EXPECT_EQ(direct.str(), via_recorder.str());
    ASSERT_FALSE(direct.str().empty());
    EXPECT_EQ(direct.str().front(), '[');
}

TEST(BinaryTrace, ChromeTraceSurvivesSaveLoadRoundTrip) {
    BinaryTraceSink bin;
    record_scenario(bin);
    std::ostringstream before;
    bin.write_chrome_trace(before);

    std::stringstream file;
    bin.save(file);
    BinaryTraceSink loaded;
    ASSERT_TRUE(loaded.load(file));
    std::ostringstream after;
    loaded.write_chrome_trace(after);
    EXPECT_EQ(before.str(), after.str());
}

TEST(BinaryTrace, SaveLoadRoundTrip) {
    BinaryTraceSink bin;
    record_scenario(bin);
    std::stringstream file;
    bin.save(file);

    BinaryTraceSink loaded;
    loaded.marker(0_us, "stale");  // load() must replace, not append
    ASSERT_TRUE(loaded.load(file));
    ASSERT_EQ(loaded.size(), bin.size());
    for (std::size_t i = 0; i < bin.size(); ++i) {
        const auto& a = bin.record(i);
        const auto& b = loaded.record(i);
        EXPECT_EQ(a.t_ns, b.t_ns);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(bin.str(a.cpu), loaded.str(b.cpu));
        EXPECT_EQ(bin.str(a.actor), loaded.str(b.actor));
        EXPECT_EQ(bin.str(a.detail), loaded.str(b.detail));
    }
    std::ostringstream before;
    std::ostringstream after;
    bin.to_recorder().write_csv(before);
    loaded.to_recorder().write_csv(after);
    EXPECT_EQ(before.str(), after.str());
}

TEST(BinaryTrace, LoadRejectsMalformedStreams) {
    BinaryTraceSink bin;
    record_scenario(bin);
    std::stringstream good;
    bin.save(good);
    const std::string bytes = good.str();

    BinaryTraceSink sink;
    {
        std::stringstream s{"not a trace"};
        EXPECT_FALSE(sink.load(s));
        EXPECT_EQ(sink.size(), 0u);  // left cleared, not half-loaded
    }
    {
        std::stringstream s{bytes.substr(0, bytes.size() / 2)};  // truncated
        EXPECT_FALSE(sink.load(s));
        EXPECT_EQ(sink.size(), 0u);
    }
    {
        std::string corrupt = bytes;
        corrupt[0] ^= 0xFF;  // break the magic
        std::stringstream s{corrupt};
        EXPECT_FALSE(sink.load(s));
    }
}

namespace {

/// Same PRNG the fault injector uses: deterministic, no wall clock, so a
/// fuzz failure replays exactly.
std::uint64_t fuzz_next(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace

TEST(BinaryTrace, CorruptionFuzzNeverCrashes) {
    // Every prefix truncation plus a seeded storm of bit flips and byte
    // stomps. load() must either reject the stream (leaving the sink
    // cleared) or yield a well-formed trace that is safe to re-export; it
    // must never crash or index out of bounds (the caps and per-record
    // validation in load() bound every field).
    BinaryTraceSink bin;
    record_scenario(bin);
    std::stringstream good;
    bin.save(good);
    const std::string bytes = good.str();
    ASSERT_GT(bytes.size(), 16u);

    const auto probe = [](const std::string& data) {
        BinaryTraceSink sink;
        std::stringstream s{data};
        if (sink.load(s)) {
            // Whatever survived the damage must still walk and export.
            std::ostringstream csv;
            sink.to_recorder().write_csv(csv);
        } else {
            EXPECT_EQ(sink.size(), 0u);  // rejected = cleared, not half-loaded
        }
    };

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        probe(bytes.substr(0, len));
    }
    std::uint64_t rng = 0xF00DFEEDF00DFEEDull;
    for (int round = 0; round < 400; ++round) {
        std::string mutated = bytes;
        const int edits = 1 + static_cast<int>(fuzz_next(rng) % 4);
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = fuzz_next(rng) % mutated.size();
            if (fuzz_next(rng) % 2 == 0) {
                mutated[pos] = static_cast<char>(
                    static_cast<unsigned char>(mutated[pos]) ^
                    (1u << (fuzz_next(rng) % 8)));
            } else {
                mutated[pos] = static_cast<char>(fuzz_next(rng) & 0xFF);
            }
        }
        if (fuzz_next(rng) % 4 == 0) {
            mutated.resize(fuzz_next(rng) % (mutated.size() + 1));
        }
        probe(mutated);
    }
}

TEST(BinaryTrace, ClearResetsRecordsAndAcceptsEarlierTimes) {
    BinaryTraceSink bin;
    bin.marker(10_us, "m");
    bin.clear();
    EXPECT_EQ(bin.size(), 0u);
    bin.marker(1_us, "after-clear");  // earlier than the cleared record: fine
    EXPECT_EQ(bin.size(), 1u);
}

TEST(BinaryTrace, ChunkBoundaryIsSeamless) {
    // Cross the 64Ki-record chunk boundary and verify indexed access on both
    // sides of it.
    BinaryTraceSink bin;
    const std::size_t n = (1u << 16) + 17;
    for (std::size_t i = 0; i < n; ++i) {
        bin.marker(nanoseconds(i), "m");
    }
    ASSERT_EQ(bin.size(), n);
    EXPECT_EQ(bin.record(0).t_ns, 0u);
    EXPECT_EQ(bin.record((1u << 16) - 1).t_ns, (1u << 16) - 1);
    EXPECT_EQ(bin.record(1u << 16).t_ns, 1u << 16);
    EXPECT_EQ(bin.record(n - 1).t_ns, n - 1);
}

// ---------------------------------------------------------------------------
// RtosAnalytics

TEST(Analytics, LatencyResponseAndPreemptionCounters) {
    sim::Kernel kernel;
    rtos::RtosConfig cfg;
    cfg.preemption_granularity = 5_us;  // let hp preempt inside lp's time_wait
    rtos::RtosModel os{kernel, cfg};
    Registry reg;
    RtosAnalytics analytics{os, reg};
    os.init();
    rtos::Task* hp = os.task_create("hp", rtos::TaskType::Aperiodic, {}, {}, 1);
    rtos::Task* lp = os.task_create("lp", rtos::TaskType::Aperiodic, {}, {}, 5);
    kernel.spawn("hp", [&] {
        os.task_activate(hp);
        os.task_delay(10_us);
        os.time_wait(10_us);
        os.task_terminate();
    });
    kernel.spawn("lp", [&] {
        os.task_activate(lp);
        os.time_wait(30_us);
        os.task_terminate();
    });
    os.start();
    kernel.run();

    const Labels lp_labels{{"cpu", "cpu0"}, {"task", "lp"}};
    const Labels hp_labels{{"cpu", "cpu0"}, {"task", "hp"}};
    // lp loses the CPU exactly once: when hp's delay expires at 10 us.
    EXPECT_EQ(reg.find_counter("slm_task_preempted_total", lp_labels)->value(), 1u);
    EXPECT_EQ(reg.find_counter("slm_task_jobs_total", hp_labels)->value(), 1u);
    EXPECT_EQ(reg.find_counter("slm_task_jobs_total", lp_labels)->value(), 1u);
    EXPECT_EQ(reg.find_counter("slm_task_missed_total", hp_labels)->value(), 0u);
    const Histogram* lat = analytics.latency_histogram("hp");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->count(), 0u);
    const Histogram* resp = analytics.response_histogram("lp");
    ASSERT_NE(resp, nullptr);
    ASSERT_EQ(resp->count(), 1u);
    // lp runs 30 us of work but finishes at 40 us (10 us stolen by hp).
    EXPECT_DOUBLE_EQ(resp->max(), 40000.0);
    EXPECT_GT(reg.find_counter("slm_os_dispatches_total", {{"cpu", "cpu0"}})->value(),
              0u);
}

TEST(Analytics, BlockingTimeUnderPriorityInheritance) {
    sim::Kernel kernel;
    rtos::RtosConfig cfg;
    cfg.preemption_granularity = 5_us;
    rtos::RtosModel os{kernel, cfg};
    Registry reg;
    RtosAnalytics analytics{os, reg};
    os.init();
    rtos::OsMutex mtx{os, rtos::OsMutex::Protocol::PriorityInheritance, "mtx"};
    rtos::Task* low = os.task_create("low", rtos::TaskType::Aperiodic, {}, {}, 20);
    rtos::Task* high = os.task_create("high", rtos::TaskType::Aperiodic, {}, {}, 10);
    kernel.spawn("low", [&] {
        os.task_activate(low);
        mtx.lock();
        os.time_wait(50_us);
        mtx.unlock();
        os.task_terminate();
    });
    kernel.spawn("high", [&] {
        os.task_activate(high);
        os.task_delay(10_us);
        mtx.lock();
        mtx.unlock();
        os.task_terminate();
    });
    os.start();
    kernel.run();

    // high blocks from 10 us until low releases at 50 us: 40 us of blocking,
    // bounded by inheritance -- so no inversion window may be reported.
    const Labels high_labels{{"cpu", "cpu0"}, {"task", "high"}};
    EXPECT_EQ(reg.find_counter("slm_task_blocking_ns_total", high_labels)->value(),
              40000u);
    EXPECT_TRUE(analytics.findings().empty());
    EXPECT_EQ(reg.find_counter("slm_os_inversions_total", {{"cpu", "cpu0"}})->value(),
              0u);
}

namespace {

/// The Mars-Pathfinder shape: low holds the lock, high blocks on it, mid
/// (lock-free) starves low. `protocol` decides whether the window can open.
std::unique_ptr<RtosAnalytics> run_inversion_model(rtos::OsMutex::Protocol protocol,
                                                   Registry& reg) {
    sim::Kernel kernel;
    rtos::RtosConfig cfg;
    cfg.preemption_granularity = 5_us;  // preemption inside the critical section
    rtos::RtosModel os{kernel, cfg};
    auto analytics = std::make_unique<RtosAnalytics>(os, reg);
    os.init();
    rtos::OsMutex bus{os, protocol, "bus"};
    rtos::Task* low = os.task_create("low", rtos::TaskType::Aperiodic, {}, {}, 30);
    rtos::Task* mid = os.task_create("mid", rtos::TaskType::Aperiodic, {}, {}, 20);
    rtos::Task* high = os.task_create("high", rtos::TaskType::Aperiodic, {}, {}, 10);
    kernel.spawn("low", [&] {
        os.task_activate(low);
        bus.lock();
        os.time_wait(100_us);
        bus.unlock();
        os.task_terminate();
    });
    kernel.spawn("mid", [&] {
        os.task_activate(mid);
        os.task_delay(10_us);
        os.time_wait(200_us);
        os.task_terminate();
    });
    kernel.spawn("high", [&] {
        os.task_activate(high);
        os.task_delay(20_us);
        bus.lock();
        os.time_wait(10_us);
        bus.unlock();
        os.task_terminate();
    });
    os.start();
    kernel.run();
    return analytics;  // the core died with the kernel scope -- results live on
}

}  // namespace

TEST(Analytics, DetectsUnboundedInversionUnderProtocolNone) {
    Registry reg;
    const auto analytics = run_inversion_model(rtos::OsMutex::Protocol::None, reg);
    ASSERT_FALSE(analytics->findings().empty());
    const InversionFinding& f = analytics->findings().front();
    EXPECT_EQ(f.blocked, "high");
    EXPECT_EQ(f.holder, "low");
    EXPECT_EQ(f.intervener, "mid");
    EXPECT_EQ(f.resource, "bus");
    ASSERT_FALSE(f.chain.empty());
    EXPECT_EQ(f.chain.front(), "low");
    EXPECT_GT(f.end.ns(), f.start.ns());
    EXPECT_GE(reg.find_counter("slm_os_inversions_total", {{"cpu", "cpu0"}})->value(),
              1u);
}

TEST(Analytics, InheritanceClosesTheInversionWindow) {
    Registry reg;
    const auto analytics =
        run_inversion_model(rtos::OsMutex::Protocol::PriorityInheritance, reg);
    // Boosted low runs instead of mid while high waits: no unbounded window.
    EXPECT_TRUE(analytics->findings().empty());
}

TEST(Analytics, SurvivesCoreTeardown) {
    // run_inversion_model destroys kernel + core before returning; the
    // observer must have detached via on_core_teardown and still serve its
    // collected numbers (and destruct cleanly -- end of this test).
    Registry reg;
    auto analytics = run_inversion_model(rtos::OsMutex::Protocol::None, reg);
    const Histogram* lat = analytics->latency_histogram("high");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->count(), 0u);
    analytics.reset();  // must not touch the dead core
}
