#include "refine/refiner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "refine/lexer.hpp"
#include "refine/vocoder_spec.hpp"

using namespace slm::refine;

// ---- Lexer ----

TEST(Lexer, TokenizesKeywordsIdentsNumbers) {
    Lexer lex{"behavior B2() { waitfor(500); }"};
    const auto toks = lex.run();
    ASSERT_TRUE(lex.errors().empty());
    ASSERT_GE(toks.size(), 10u);
    EXPECT_TRUE(toks[0].is_kw("behavior"));
    EXPECT_EQ(toks[1].kind, TokKind::Ident);
    EXPECT_EQ(toks[1].text, "B2");
    EXPECT_TRUE(toks[2].is_punct("("));
    EXPECT_TRUE(toks[5].is_kw("waitfor"));
    EXPECT_EQ(toks[7].kind, TokKind::Number);
    EXPECT_EQ(toks[7].text, "500");
}

TEST(Lexer, TracksLineNumbers) {
    Lexer lex{"a\nb\n\nc"};
    const auto toks = lex.run();
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, CommentsAreTokens) {
    Lexer lex{"x // line comment\n/* block\ncomment */ y"};
    const auto toks = lex.run();
    ASSERT_EQ(toks.size(), 5u);  // x, comment, comment, y, eof
    EXPECT_EQ(toks[1].kind, TokKind::Comment);
    EXPECT_EQ(toks[2].kind, TokKind::Comment);
    EXPECT_EQ(toks[3].text, "y");
}

TEST(Lexer, StringsWithEscapes) {
    Lexer lex{R"(s = "hello \"world\"";)"};
    const auto toks = lex.run();
    ASSERT_TRUE(lex.errors().empty());
    EXPECT_EQ(toks[2].kind, TokKind::String);
    EXPECT_EQ(toks[2].text, R"("hello \"world\"")");
}

TEST(Lexer, UnterminatedStringReported) {
    Lexer lex{"\"oops"};
    (void)lex.run();
    ASSERT_EQ(lex.errors().size(), 1u);
    EXPECT_NE(lex.errors()[0].message.find("unterminated string"), std::string::npos);
}

TEST(Lexer, UnterminatedCommentReported) {
    Lexer lex{"/* oops"};
    (void)lex.run();
    ASSERT_EQ(lex.errors().size(), 1u);
}

TEST(Lexer, MultiCharPunct) {
    Lexer lex{"a == b && c != d"};
    const auto toks = lex.run();
    EXPECT_EQ(toks[1].text, "==");
    EXPECT_EQ(toks[3].text, "&&");
    EXPECT_EQ(toks[5].text, "!=");
}

TEST(Lexer, OffsetsIndexOriginalSource) {
    const std::string src = "behavior  Foo";
    Lexer lex{src};
    const auto toks = lex.run();
    EXPECT_EQ(src.substr(toks[1].offset, toks[1].text.size()), "Foo");
}

// ---- apply_edits ----

TEST(ApplyEdits, ReplacesAndInserts) {
    std::vector<Edit> edits;
    edits.push_back({4, 9, "world"});
    edits.push_back({0, 0, ">> "});
    EXPECT_EQ(apply_edits("abc hello def", std::move(edits)), ">> abc world def");
}

TEST(ApplyEdits, EmptyEditsReturnOriginal) {
    EXPECT_EQ(apply_edits("unchanged", {}), "unchanged");
}

// ---- Task refinement (paper Fig. 5) ----

TEST(Refine, TaskRefinementMatchesFig5) {
    const std::string spec =
        "behavior B2() {\n"
        "  void main(void) {\n"
        "    waitfor(500);\n"
        "  }\n"
        "};\n";
    RefineConfig cfg;
    cfg.tasks["B2"] = TaskSpec{"APERIODIC", 0, 500};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
    // All the Fig. 5(b) ingredients:
    EXPECT_NE(r.output.find("behavior B2(RTOS os)"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("proc me;"), std::string::npos);
    EXPECT_NE(r.output.find("me = os.task_create(\"B2\", APERIODIC, 0, 500);"),
              std::string::npos);
    EXPECT_NE(r.output.find("os.task_activate(me);"), std::string::npos);
    EXPECT_NE(r.output.find("os.time_wait(500);"), std::string::npos);
    EXPECT_NE(r.output.find("os.task_terminate();"), std::string::npos);
    EXPECT_EQ(r.output.find("waitfor"), std::string::npos);
}

TEST(Refine, VoidParamListReplaced) {
    const std::string spec =
        "behavior B(void) {\n  void main(void) { waitfor(1); }\n};\n";
    RefineConfig cfg;
    cfg.tasks["B"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("behavior B(RTOS os)"), std::string::npos) << r.output;
}

TEST(Refine, ExistingParamsKeepPosition) {
    const std::string spec =
        "behavior B(c_queue q) {\n  void main(void) { waitfor(1); }\n};\n";
    RefineConfig cfg;
    cfg.tasks["B"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("behavior B(RTOS os, c_queue q)"), std::string::npos)
        << r.output;
}

TEST(Refine, BareWaitforForm) {
    const std::string spec =
        "behavior B() {\n  void main(void) { waitfor 250; }\n};\n";
    RefineConfig cfg;
    cfg.tasks["B"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("os.time_wait( 250);"), std::string::npos) << r.output;
}

TEST(Refine, PeriodicTaskCreateArguments) {
    const std::string spec =
        "behavior P() {\n  void main(void) { waitfor(10); }\n};\n";
    RefineConfig cfg;
    cfg.tasks["P"] = TaskSpec{"PERIODIC", 20000, 5000};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("os.task_create(\"P\", PERIODIC, 20000, 5000);"),
              std::string::npos);
}

// ---- Task creation refinement (paper Fig. 6) ----

TEST(Refine, ParRefinementMatchesFig6) {
    const std::string spec =
        "behavior Top() {\n"
        "  B2 b2;\n"
        "  B3 b3;\n"
        "  void main(void) {\n"
        "    par {\n"
        "      b2.main();\n"
        "      b3.main();\n"
        "    }\n"
        "  }\n"
        "};\n"
        "behavior B2() { void main(void) { waitfor(1); } };\n"
        "behavior B3() { void main(void) { waitfor(2); } };\n";
    RefineConfig cfg;
    cfg.tasks["Top"] = TaskSpec{};
    cfg.tasks["B2"] = TaskSpec{};
    cfg.tasks["B3"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("b2.init();"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("b3.init();"), std::string::npos);
    EXPECT_NE(r.output.find("os.par_start();"), std::string::npos);
    EXPECT_NE(r.output.find("os.par_end();"), std::string::npos);
    // Ordering: init calls, then par_start, then the par block, then par_end.
    EXPECT_LT(r.output.find("b2.init();"), r.output.find("os.par_start();"));
    EXPECT_LT(r.output.find("os.par_start();"), r.output.find("par {"));
    EXPECT_LT(r.output.find("b3.main();"), r.output.find("os.par_end();"));
    // Instances of refined behaviors receive the os handle.
    EXPECT_NE(r.output.find("B2 b2(os);"), std::string::npos);
    EXPECT_NE(r.output.find("B3 b3(os);"), std::string::npos);
}

// ---- Synchronization refinement (paper Fig. 7) ----

TEST(Refine, ChannelRefinementMatchesFig7) {
    const std::string spec =
        "channel c_queue() {\n"
        "  event erdy, eack;\n"
        "  void send(int d) {\n"
        "    notify erdy;\n"
        "    wait(eack);\n"
        "  }\n"
        "};\n";
    RefineConfig cfg;
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("channel c_queue(RTOS os)"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("evt erdy, eack;"), std::string::npos);
    EXPECT_NE(r.output.find("os.event_notify( erdy);"), std::string::npos);
    EXPECT_NE(r.output.find("os.event_wait(eack);"), std::string::npos);
    EXPECT_EQ(r.output.find("event "), std::string::npos);
}

TEST(Refine, ChannelRefinementCanBeDisabled) {
    const std::string spec =
        "channel c() { event e; void f(void) { notify e; } };\n";
    RefineConfig cfg;
    cfg.refine_channels = false;
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.output, spec);
    EXPECT_EQ(r.report.edit_count, 0u);
}

TEST(Refine, OsOwnerGetsRtosInstance) {
    const std::string spec =
        "behavior Pe() {\n"
        "  Worker w;\n"
        "  void main(void) {\n"
        "    w.main();\n"
        "  }\n"
        "};\n"
        "behavior Worker() { void main(void) { waitfor(5); } };\n";
    RefineConfig cfg;
    cfg.os_owner = "Pe";
    cfg.tasks["Worker"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("RTOS os;"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("Worker w(os);"), std::string::npos);
    // The owner itself is not a task: no activate/terminate in Pe.
    EXPECT_EQ(r.output.find("Pe\", APERIODIC"), std::string::npos);
}

TEST(Refine, PureComputationSubBehaviorUntouched) {
    // Most lines of a realistic model are algorithm bodies that never touch
    // SLDL services; the refiner must leave them (and their instantiations)
    // alone — this is what keeps the footprint at the paper's ~1% scale.
    const std::string spec =
        "behavior Fir() {\n"
        "  int acc;\n"
        "  void main(void) {\n"
        "    acc = acc + 1;\n"
        "  }\n"
        "};\n"
        "behavior Task1() {\n"
        "  Fir fir;\n"
        "  void main(void) {\n"
        "    fir.main();\n"
        "    waitfor(10);\n"
        "  }\n"
        "};\n";
    RefineConfig cfg;
    cfg.tasks["Task1"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("behavior Fir() {"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("Fir fir;"), std::string::npos);
}

TEST(Refine, DelayUsingSubBehaviorGetsOsHandle) {
    const std::string spec =
        "behavior Stage() {\n"
        "  void main(void) {\n"
        "    waitfor(5);\n"
        "  }\n"
        "};\n"
        "behavior Task1() {\n"
        "  Stage st;\n"
        "  void main(void) {\n"
        "    st.main();\n"
        "  }\n"
        "};\n";
    RefineConfig cfg;
    cfg.tasks["Task1"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("behavior Stage(RTOS os)"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("Stage st(os);"), std::string::npos);
    EXPECT_NE(r.output.find("os.time_wait(5);"), std::string::npos);
}

TEST(Refine, InterfaceDeclarationsPassThrough) {
    // Interface declarations (method signatures only) are not behaviors or
    // channels; the refiner must leave them byte-identical.
    const std::string spec =
        "interface i_sender {\n"
        "  void send(int d);\n"
        "};\n"
        "channel c(void) implements i_sender {\n"
        "  event e;\n"
        "  void send(int d) { notify e; }\n"
        "};\n";
    RefineConfig cfg;
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("interface i_sender {\n  void send(int d);\n};"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("channel c(RTOS os) implements i_sender"),
              std::string::npos);
}

// ---- error handling ----

TEST(Refine, MissingTaskBehaviorIsAnError) {
    RefineConfig cfg;
    cfg.tasks["Ghost"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine("behavior Real() { };\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].find("Ghost"), std::string::npos);
}

TEST(Refine, UnbalancedBracesReported) {
    RefineConfig cfg;
    const RefineResult r = Refiner{cfg}.refine("channel c() { event e;\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].find("unmatched"), std::string::npos);
}

TEST(Refine, EditsNeverLandInComments) {
    const std::string spec =
        "behavior B() {\n"
        "  // waitfor(999); stays a comment\n"
        "  void main(void) { waitfor(1); }\n"
        "};\n";
    RefineConfig cfg;
    cfg.tasks["B"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.output.find("// waitfor(999); stays a comment"), std::string::npos);
    EXPECT_NE(r.output.find("os.time_wait(1);"), std::string::npos);
}

// ---- metrics (the paper's "104 lines, <1%" claim shape) ----

TEST(Refine, ReportCountsLines) {
    const std::string spec =
        "behavior B2() {\n"
        "  void main(void) {\n"
        "    waitfor(500);\n"
        "  }\n"
        "};\n";
    RefineConfig cfg;
    cfg.tasks["B2"] = TaskSpec{"APERIODIC", 0, 500};
    const RefineResult r = Refiner{cfg}.refine(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.report.lines_total, 5);
    EXPECT_GT(r.report.lines_changed, 0);
    EXPECT_GT(r.report.lines_added, 0);
    EXPECT_GT(r.report.edit_count, 0u);
    EXPECT_FALSE(r.report.notes.empty());
}

TEST(Refine, VocoderSpecRefinesCleanly) {
    RefineConfig cfg;
    cfg.os_owner = "DspPe";
    cfg.tasks["Coder"] = TaskSpec{"APERIODIC", 0, 6470};
    cfg.tasks["Decoder"] = TaskSpec{"APERIODIC", 0, 1800};
    cfg.tasks["BusDriver"] = TaskSpec{"APERIODIC", 0, 40};
    const RefineResult r = Refiner{cfg}.refine(kVocoderSpec);
    ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
    // The absolute refinement effort matches the paper's scale (104 touched
    // lines on the vocoder). The percentage is naturally higher here because
    // our embedded spec is pure structure, while the paper's 13.5 kLoC model
    // is dominated by untouched algorithm bodies — bench_refinement measures
    // the percentage against a realistically sized model.
    EXPECT_GT(r.report.lines_total, 150);
    EXPECT_GT(r.report.lines_touched(), 0);
    EXPECT_LT(r.report.lines_touched(), 120);
    // Key transforms present:
    EXPECT_NE(r.output.find("os.task_create(\"Coder\""), std::string::npos);
    EXPECT_NE(r.output.find("os.par_start();"), std::string::npos);
    EXPECT_NE(r.output.find("evt erdy;"), std::string::npos);
    EXPECT_EQ(r.output.find("waitfor"), std::string::npos);
}

TEST(Refine, RefinedVocoderLexesAgain) {
    RefineConfig cfg;
    cfg.os_owner = "DspPe";
    cfg.tasks["Coder"] = TaskSpec{};
    cfg.tasks["Decoder"] = TaskSpec{};
    cfg.tasks["BusDriver"] = TaskSpec{};
    const RefineResult r = Refiner{cfg}.refine(kVocoderSpec);
    ASSERT_TRUE(r.ok());
    Lexer relex{r.output};
    (void)relex.run();
    EXPECT_TRUE(relex.errors().empty());
}
