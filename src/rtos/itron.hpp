#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>

#include "rtos/core.hpp"
#include "rtos/os_channels.hpp"

namespace slm::rtos::itron {

/// ITRON-style OS personality (modeled after RTK-Spec TRON, the μITRON
/// kernel model in SystemC; see PAPERS.md): the second API flavor layered on
/// OsCore, proving the core/services/personality split carries more than one
/// RTOS standard. Objects are addressed by small integer IDs, calls return
/// μITRON error codes, and the task model is create-dormant / start-ready
/// (`cre_tsk` + `sta_tsk`) with wakeup counting (`slp_tsk`/`wup_tsk`) —
/// semantics the paper-style RtosModel does not expose, implemented here
/// purely from core primitives and the os_channels services. Everything the
/// infrastructure offers for the default personality — schedule exploration,
/// Gantt tracing, deadlock checking — works on ItronOs models unchanged,
/// because it all targets OsCore.
///
/// Naming follows the standard: xxx_yyy = operation xxx on object type yyy
/// (tsk = task, sem = semaphore, dtq = data queue).

using ID = int;   ///< object identifier (user-chosen, > 0)
using PRI = int;  ///< task priority, smaller = higher (core convention)
using ER = int;   ///< error code (E_OK or a negative E_* value)
using VP_INT = std::intptr_t;  ///< data-queue payload word

// μITRON 4.0 error codes (the subset this personality can return).
inline constexpr ER E_OK = 0;      ///< success
inline constexpr ER E_PAR = -17;   ///< parameter error
inline constexpr ER E_ID = -18;    ///< invalid ID number
inline constexpr ER E_CTX = -25;   ///< call from a non-task context
inline constexpr ER E_OBJ = -41;   ///< object state error
inline constexpr ER E_NOEXS = -42; ///< object does not exist
inline constexpr ER E_QOVR = -43;  ///< queueing/counting overflow
inline constexpr ER E_TMOUT = -50; ///< polling failure or timeout

[[nodiscard]] const char* to_string(ER er);

/// Task creation packet (cre_tsk). The body runs in an SLDL process spawned
/// by sta_tsk; a body that returns terminates the task normally.
struct T_CTSK {
    std::string name;            ///< task name, enters traces via the core TCB
    PRI itskpri = 1;             ///< initial priority
    std::function<void()> task;  ///< task body
};

/// Semaphore creation packet (cre_sem).
struct T_CSEM {
    unsigned isemcnt = 0;  ///< initial count
    unsigned maxsem = std::numeric_limits<unsigned>::max();  ///< count ceiling
    std::string name = "sem";
};

/// Data-queue creation packet (cre_dtq).
struct T_CDTQ {
    std::size_t dtqcnt = 0;  ///< capacity in words; 0 = unbounded
    std::string name = "dtq";
};

class ItronOs {
public:
    /// Layer the personality over an externally owned core (e.g. the core of
    /// an arch::ProcessingElement).
    explicit ItronOs(OsCore& core) : core_(core) {}

    /// Convenience: create a private core over `kernel` and own it.
    explicit ItronOs(sim::Kernel& kernel, RtosConfig cfg = {});

    ItronOs(const ItronOs&) = delete;
    ItronOs& operator=(const ItronOs&) = delete;

    /// The shared core — hand this to exploration (explore::Run::watch),
    /// tracing, and the os_channels services.
    [[nodiscard]] OsCore& core() { return core_; }
    [[nodiscard]] const OsCore& core() const { return core_; }

    /// Begin scheduling (the simulation stand-in for ITRON kernel boot).
    void start() { core_.start(); }
    void start(SchedPolicy p) { core_.start(p); }

    // ---- task management ----

    /// Create a task in the DORMANT state.
    ER cre_tsk(ID tskid, T_CTSK pk_ctsk);
    /// Make a DORMANT task ready: spawns its SLDL process, which enters the
    /// ready queue at the current simulated instant. A task that terminated
    /// (ext_tsk / ter_tsk) returns to DORMANT and may be started again.
    ER sta_tsk(ID tskid);
    /// Restart a live task from the top of its body: the current incarnation
    /// is torn down (held locks force-released, stats reset) and a fresh one
    /// enters the ready queue. E_OBJ on a DORMANT task (use sta_tsk).
    ER rst_tsk(ID tskid);
    /// Terminate the calling task. Does not return when successful.
    void ext_tsk();
    /// Forcibly terminate another task.
    ER ter_tsk(ID tskid);
    /// Change a task's base priority.
    ER chg_pri(ID tskid, PRI tskpri);
    ER get_pri(ID tskid, PRI* p_tskpri) const;
    /// Sleep until wup_tsk; a queued wakeup (wupcnt > 0) is consumed
    /// without blocking.
    ER slp_tsk();
    /// Wake a sleeping task, or queue the wakeup if the target is not asleep.
    ER wup_tsk(ID tskid);
    /// Zero the target's wakeup queue, reporting the discarded count.
    ER can_wup(ID tskid, unsigned* p_wupcnt);
    /// Delay the calling task without consuming CPU.
    ER dly_tsk(SimTime dlytim);

    // ---- watchdogs (core recovery service, ITRON-flavored wrappers) ----

    /// Arm (or re-arm) a software watchdog on a task: unless kck_wdg is
    /// called within `timeout`, the core applies `action` to the task.
    ER sta_wdg(ID tskid, SimTime timeout, MissPolicy action);
    /// Pet the watchdog, restarting its countdown.
    ER kck_wdg(ID tskid);
    /// Disarm the watchdog and forget its configuration.
    ER stp_wdg(ID tskid);

    // ---- semaphores (OsSemaphore service underneath) ----

    ER cre_sem(ID semid, T_CSEM pk_csem);
    ER sig_sem(ID semid);
    ER wai_sem(ID semid);
    /// Polling acquire: E_TMOUT instead of blocking.
    ER pol_sem(ID semid);
    /// Timed acquire: E_TMOUT if no token arrived within `tmout`.
    ER twai_sem(ID semid, SimTime tmout);

    // ---- data queues (OsQueue service underneath) ----

    ER cre_dtq(ID dtqid, T_CDTQ pk_cdtq);
    ER snd_dtq(ID dtqid, VP_INT data);
    ER rcv_dtq(VP_INT* p_data, ID dtqid);

    // ---- introspection ----

    /// Core TCB behind a task ID (nullptr if no such task) — for tests and
    /// trace/analysis code that joins ITRON objects with core-level data.
    [[nodiscard]] Task* task(ID tskid) const;
    [[nodiscard]] unsigned semaphore_count(ID semid) const;

private:
    struct Tcb {
        Task* task = nullptr;  ///< core TCB; the body lives there (task_set_body)
        unsigned wupcnt = 0;
        bool started = false;
    };
    struct Sem {
        std::unique_ptr<OsSemaphore> sem;
        unsigned maxsem = 0;
    };

    [[nodiscard]] Tcb* tcb(ID tskid);
    [[nodiscard]] const Tcb* tcb(ID tskid) const;

    std::unique_ptr<OsCore> owned_core_;  ///< set by the owning constructor
    OsCore& core_;
    std::unordered_map<ID, Tcb> tasks_;
    std::unordered_map<ID, Sem> sems_;
    std::unordered_map<ID, std::unique_ptr<OsQueue<VP_INT>>> dtqs_;
};

}  // namespace slm::rtos::itron
