#include "rtos/core.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "sim/assert.hpp"

namespace slm::rtos {

const char* to_string(TaskState s) {
    switch (s) {
        case TaskState::New: return "New";
        case TaskState::Ready: return "Ready";
        case TaskState::Running: return "Running";
        case TaskState::WaitingEvent: return "WaitingEvent";
        case TaskState::WaitingPeriod: return "WaitingPeriod";
        case TaskState::Sleeping: return "Sleeping";
        case TaskState::Suspended: return "Suspended";
        case TaskState::ParWait: return "ParWait";
        case TaskState::Terminated: return "Terminated";
    }
    return "?";
}

const char* to_string(TaskType t) {
    return t == TaskType::Periodic ? "Periodic" : "Aperiodic";
}

const char* to_string(MissPolicy p) {
    switch (p) {
        case MissPolicy::Ignore: return "Ignore";
        case MissPolicy::Notify: return "Notify";
        case MissPolicy::SkipJob: return "SkipJob";
        case MissPolicy::Restart: return "Restart";
        case MissPolicy::Kill: return "Kill";
    }
    return "?";
}

namespace {
/// Scoped in_teardown_ flag (see the member's comment in core.hpp).
struct TeardownScope {
    explicit TeardownScope(bool& flag) : flag_(flag), prev_(flag) { flag_ = true; }
    ~TeardownScope() { flag_ = prev_; }
    bool& flag_;
    bool prev_;
};
}  // namespace

Task::Task(OsCore& os, TaskParams params) : os_(os), params_(std::move(params)) {
    dispatch_evt_ = std::make_unique<sim::Event>(os.kernel(), params_.name + ".dispatch");
}

OsCore::OsCore(sim::Kernel& kernel, RtosConfig cfg)
    : kernel_(kernel), cfg_(std::move(cfg)) {
    SLM_ASSERT(cfg_.speed_num > 0 && cfg_.speed_den > 0,
               "RtosConfig speed scale must be positive");
    policy_ = make_policy(cfg_.policy, cfg_.quantum);
    ready_ = policy_->make_queue();
}

OsCore::~OsCore() {
    for (OsObserver* obs : observers_) {
        obs->on_core_teardown();
    }
}

void OsCore::init() {
    SLM_ASSERT(!started_, "init() after start()");
    SLM_ASSERT(tasks_.empty(), "init() must precede task_create()");
    stats_ = RtosStats{};
}

void OsCore::start() {
    SLM_ASSERT(!started_, "start() called twice");
    started_ = true;
    schedule();
}

void OsCore::start(SchedPolicy policy) {
    policy_ = make_policy(policy, cfg_.quantum);
    // Tasks activated before start() already sit in the old queue; migrate
    // them so the new policy orders them (arrival_seq stamps are preserved).
    auto queue = policy_->make_queue();
    while (!ready_->empty()) {
        queue->push(ready_->pop());
    }
    ready_ = std::move(queue);
    start();
}

Task* OsCore::task_create(TaskParams params) {
    ++stats_.syscalls;
    SLM_ASSERT(params.type != TaskType::Periodic || !params.period.is_zero(),
               "periodic task needs a non-zero period");
    tasks_.push_back(std::unique_ptr<Task>(new Task(*this, std::move(params))));
    return tasks_.back().get();
}

Task* OsCore::self() const {
    const auto it = by_process_.find(sim::this_process());
    return it != by_process_.end() ? it->second : nullptr;
}

std::vector<const Task*> OsCore::tasks() const {
    std::vector<const Task*> out;
    out.reserve(tasks_.size());
    for (const auto& t : tasks_) {
        out.push_back(t.get());
    }
    return out;
}

SimTime OsCore::busy_time() const {
    SimTime total;
    for (const auto& t : tasks_) {
        total += t->stats_.exec_time;
    }
    return total;
}

// ---- internal machinery ----

void OsCore::set_task_state(Task* t, TaskState s) {
    if (t->state_ == s) {
        return;
    }
    const TaskState from = t->state_;
    t->state_ = s;
    if (cfg_.tracer != nullptr) {
        cfg_.tracer->task_state(kernel_.now(), cfg_.cpu_name, t->params_.name,
                                to_string(s));
    }
    for (OsObserver* obs : observers_) {
        obs->on_task_state(*t, from, s, kernel_.now());
    }
}

void OsCore::add_observer(OsObserver* obs) {
    if (obs != nullptr) {
        observers_.push_back(obs);
    }
}

void OsCore::remove_observer(OsObserver* obs) {
    std::erase(observers_, obs);
}

void OsCore::enqueue_ready(Task* t) {
    t->arrival_seq_ = ++arrival_counter_;
    ready_->push(t);
    set_task_state(t, TaskState::Ready);
}

void OsCore::remove_ready(Task* t) {
    ready_->erase(t);
}

void OsCore::requeue_if_ready(Task* t) {
    if (t->state_ == TaskState::Ready) {
        ready_->requeue(t);
    }
}

Task* OsCore::pick_next() {
    sim::ScheduleController* ctl = kernel_.schedule_controller();
    if (ctl == nullptr) {
        return ready_->pop();
    }
    ties_scratch_.clear();
    ready_->ties(ties_scratch_);
    if (ties_scratch_.size() < 2) {
        return ready_->pop();
    }
    sim::SchedulePoint pt;
    pt.kind = sim::SchedulePoint::Kind::TaskDispatch;
    pt.now = kernel_.now();
    pt.candidates.reserve(ties_scratch_.size());
    for (const Task* t : ties_scratch_) {
        pt.candidates.push_back(t->params_.name);
    }
    const std::size_t choice = ctl->choose(pt);
    SLM_ASSERT(choice < ties_scratch_.size(),
               "ScheduleController returned an out-of-range choice");
    Task* chosen = ties_scratch_[choice];
    ready_->erase(chosen);
    return chosen;
}

void OsCore::dispatch(Task* t) {
    running_ = t;
    reschedule_pending_ = false;
    quantum_used_ = SimTime::zero();
    set_task_state(t, TaskState::Running);
    ++stats_.dispatches;
    if (t != last_dispatched_) {
        ++stats_.context_switches;
        if (cfg_.tracer != nullptr) {
            cfg_.tracer->context_switch(
                kernel_.now(), cfg_.cpu_name, t->params_.name,
                last_dispatched_ != nullptr ? last_dispatched_->params_.name : "<idle>");
        }
        t->switch_cost_due_ = !cfg_.context_switch_overhead.is_zero();
        last_dispatched_ = t;
    }
    kernel_.notify(*t->dispatch_evt_);
}

void OsCore::schedule() {
    if (!started_) {
        return;
    }
    if (running_ == nullptr) {
        if (!ready_->empty()) {
            // All tied candidates share the dispatch key, so *whether* to
            // dispatch is tie-independent; *which* task is a choice point.
            dispatch(pick_next());
        }
        return;
    }
    Task* best = ready_->peek();
    if (best != nullptr && policy_->preempts(*best, *running_)) {
        // The switch takes effect at the running task's next RTOS-call
        // boundary — the end of its current discrete delay step (paper
        // Fig. 8(b): preemption at t4 is delayed until t4').
        reschedule_pending_ = true;
    }
}

void OsCore::maybe_yield() {
    Task* selftask = running_;
    SLM_ASSERT(selftask != nullptr, "maybe_yield outside running task");
    if (!reschedule_pending_) {
        return;
    }
    reschedule_pending_ = false;
    const SimTime saved_quantum = quantum_used_;
    enqueue_ready(selftask);
    running_ = nullptr;
    Task* best = pick_next();
    SLM_ASSERT(best != nullptr, "ready queue lost the yielding task");
    if (best == selftask) {
        running_ = selftask;
        quantum_used_ = saved_quantum;
        set_task_state(selftask, TaskState::Running);
        return;
    }
    ++stats_.preemptions;
    ++selftask->stats_.preemptions;
    for (OsObserver* obs : observers_) {
        obs->on_preempt(*selftask, *best, kernel_.now());
    }
    dispatch(best);
    wait_dispatch(selftask);
}

void OsCore::rotate_quantum() {
    Task* selftask = running_;
    reschedule_pending_ = false;
    enqueue_ready(selftask);
    running_ = nullptr;
    Task* best = pick_next();
    if (best == selftask) {
        running_ = selftask;
        quantum_used_ = SimTime::zero();
        set_task_state(selftask, TaskState::Running);
        return;
    }
    dispatch(best);
    wait_dispatch(selftask);
}

void OsCore::apply_switch_cost(Task* t) {
    if (t->switch_cost_due_) {
        t->switch_cost_due_ = false;
        kernel_.waitfor(cfg_.context_switch_overhead);
    }
}

void OsCore::wait_dispatch(Task* t) {
    while (running_ != t) {
        kernel_.wait(*t->dispatch_evt_);
    }
    on_dispatched(t);
}

void OsCore::on_dispatched(Task* t) {
    if (fault_hook_ != nullptr && fault_hook_->crash_at_dispatch(*t)) {
        crash_running(t);  // unwinds this process; does not return
    }
    apply_switch_cost(t);
}

Task* OsCore::require_running_self(const char* what) {
    Task* t = self();
    SLM_ASSERT(t != nullptr, what);
    SLM_ASSERT(t == running_, what);
    return t;
}

bool OsCore::record_completion(Task* t) {
    const SimTime resp = kernel_.now() - t->release_time_;
    ++t->stats_.completions;
    t->stats_.total_response += resp;
    t->stats_.max_response = std::max(t->stats_.max_response, resp);
    const bool missed = kernel_.now() > t->abs_deadline_;
    if (missed) {
        ++t->stats_.deadline_misses;
        ++stats_.deadline_misses;
    }
    for (OsObserver* obs : observers_) {
        obs->on_completion(*t, resp, missed, kernel_.now());
    }
    return missed;
}

void OsCore::reschedule_after_boost() {
    schedule();
    if (running_ != nullptr && self() == running_) {
        maybe_yield();
    }
}

// ---- service interface ----

int OsCore::priority_boost(const Task* t) const {
    return t->inherited_priority_;
}

void OsCore::boost_priority(Task* t, int priority) {
    if (priority < t->inherited_priority_) {
        t->inherited_priority_ = priority;
        requeue_if_ready(t);  // re-sort if it sits in the ready queue
        reschedule_after_boost();
    }
}

void OsCore::restore_priority(Task* t, int saved) {
    t->inherited_priority_ = saved;
}

void OsCore::note_resource_block(const Task* blocked, const Task* holder,
                                 const std::string& resource) {
    SLM_ASSERT(blocked != nullptr && holder != nullptr, "note_resource_block(nullptr)");
    for (OsObserver* obs : observers_) {
        obs->on_resource_block(*blocked, *holder, resource, kernel_.now());
    }
}

void OsCore::note_resource_acquire(const Task* t, const std::string& resource,
                                   SimTime waited) {
    SLM_ASSERT(t != nullptr, "note_resource_acquire(nullptr)");
    for (OsObserver* obs : observers_) {
        obs->on_resource_acquire(*t, resource, waited, kernel_.now());
    }
    // Fault injection: a stalled holder burns execution time right after the
    // acquire, inside its critical section. Only meaningful when the acquiring
    // task is the one executing this call (the OsMutex lock path).
    if (fault_hook_ != nullptr && t == running_ && t == self()) {
        const SimTime stall = fault_hook_->stall_after_acquire(*t, resource);
        if (!stall.is_zero()) {
            exec_charge(running_, stall);
        }
    }
}

void OsCore::note_resource_release(const Task* t, const std::string& resource) {
    SLM_ASSERT(t != nullptr, "note_resource_release(nullptr)");
    for (OsObserver* obs : observers_) {
        obs->on_resource_release(*t, resource, kernel_.now());
    }
}

void OsCore::note_channel_op(const std::string& channel, const char* op) {
    for (OsObserver* obs : observers_) {
        obs->on_channel_op(channel, op, kernel_.now());
    }
}

// ---- task management ----

void OsCore::task_activate(Task* t) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "task_activate(nullptr)");
    switch (t->state_) {
        case TaskState::New: {
            sim::Process* proc = sim::this_process();
            SLM_ASSERT(proc != nullptr,
                       "task_activate(New) must run inside the task's process");
            SLM_ASSERT(self() == nullptr,
                       "this process is already bound to another task");
            t->proc_ = proc;
            t->pending_proc_ = nullptr;  // task_start's wrapper is now bound
            by_process_[proc] = t;
            t->release_time_ = kernel_.now();
            ++t->stats_.activations;
            if (t->params_.type == TaskType::Periodic) {
                t->next_release_ = kernel_.now() + t->params_.period;
                t->abs_deadline_ = kernel_.now() + (t->params_.deadline.is_zero()
                                                        ? t->params_.period
                                                        : t->params_.deadline);
            } else {
                t->abs_deadline_ = t->params_.deadline.is_zero()
                                       ? SimTime::max()
                                       : kernel_.now() + t->params_.deadline;
            }
            enqueue_ready(t);
            // Let sibling activations in the same simulated instant land
            // before the dispatch decision (zero-time delta yield): when a
            // `par` forks several child tasks at once, the scheduler must see
            // all of them and pick by policy, not by process start order
            // (paper Fig. 8(b): the higher-priority child runs first).
            kernel_.waitfor(SimTime::zero());
            schedule();
            wait_dispatch(t);
            return;
        }
        case TaskState::Suspended: {
            ++t->stats_.activations;
            t->release_time_ = kernel_.now();
            enqueue_ready(t);
            schedule();
            if (running_ != nullptr && self() == running_) {
                maybe_yield();
            }
            return;
        }
        case TaskState::Ready:
        case TaskState::Running:
            return;  // already active: no-op
        case TaskState::WaitingEvent:
        case TaskState::WaitingPeriod:
        case TaskState::Sleeping:
        case TaskState::ParWait:
        case TaskState::Terminated:
            SLM_ASSERT(false, "task_activate() on a waiting or terminated task");
    }
}

void OsCore::task_terminate() {
    ++stats_.syscalls;
    Task* t = require_running_self("task_terminate() requires the running task");
    if (t->params_.type == TaskType::Aperiodic) {
        // Periodic tasks record completions per cycle in task_endcycle();
        // terminating between cycles is not an extra completion.
        record_completion(t);
    }
    watchdog_cancel_internal(t);
    set_task_state(t, TaskState::Terminated);
    by_process_.erase(t->proc_);
    t->proc_ = nullptr;
    t->pending_proc_ = nullptr;
    running_ = nullptr;
    schedule();
}

void OsCore::task_sleep() {
    ++stats_.syscalls;
    Task* t = require_running_self("task_sleep() requires the running task");
    set_task_state(t, TaskState::Suspended);
    running_ = nullptr;
    schedule();
    wait_dispatch(t);
}

void OsCore::task_endcycle() {
    ++stats_.syscalls;
    Task* t = require_running_self("task_endcycle() requires the running task");
    SLM_ASSERT(t->params_.type == TaskType::Periodic,
               "task_endcycle() is only meaningful for periodic tasks");
    const bool missed = record_completion(t);

    // Deadline-miss recovery (MissPolicy). Ignore is the legacy path: the
    // miss was counted by record_completion and nothing else happens.
    bool skip_next = false;
    if (missed) {
        const MissPolicy policy = effective_miss_policy(*t);
        if (policy != MissPolicy::Ignore) {
            const SimTime overrun = kernel_.now() - t->abs_deadline_;
            for (OsObserver* obs : observers_) {
                obs->on_deadline_miss(*t, overrun, kernel_.now());
            }
        }
        switch (policy) {
            case MissPolicy::Ignore:
            case MissPolicy::Notify:
                break;
            case MissPolicy::SkipJob:
                ++stats_.jobs_skipped;
                ++t->stats_.jobs_skipped;
                skip_next = true;
                break;
            case MissPolicy::Restart:
                task_restart(t);  // self-restart unwinds; does not return
                SLM_ASSERT(false, "task_restart(self) returned");
                break;
            case MissPolicy::Kill:
                task_kill(t);  // self-kill unwinds; does not return
                SLM_ASSERT(false, "task_kill(self) returned");
                break;
        }
    }

    // Catch up if the cycle overran one or more whole periods.
    while (t->next_release_ <= kernel_.now()) {
        t->next_release_ += t->params_.period;
    }
    if (skip_next) {
        // SkipJob: drop one upcoming release beyond the catch-up, giving the
        // overrunning task a full idle period of slack.
        t->next_release_ += t->params_.period;
    }

    set_task_state(t, TaskState::WaitingPeriod);
    running_ = nullptr;
    schedule();

    // The wait for the next release consumes no CPU: it runs at SLDL level,
    // concurrently with whatever task was just dispatched.
    kernel_.waitfor(t->next_release_ - kernel_.now());

    t->release_time_ = kernel_.now();
    t->next_release_ = kernel_.now() + t->params_.period;
    t->abs_deadline_ = kernel_.now() + (t->params_.deadline.is_zero() ? t->params_.period
                                                                      : t->params_.deadline);
    ++t->stats_.activations;
    enqueue_ready(t);
    schedule();
    wait_dispatch(t);
}

void OsCore::task_kill(Task* t) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "task_kill(nullptr)");
    if (t->state_ == TaskState::Terminated) {
        return;
    }
    const bool killing_self = (t == self());

    switch (t->state_) {
        case TaskState::Running:
            SLM_ASSERT(t == running_, "Running task is not the dispatched task");
            running_ = nullptr;
            break;
        case TaskState::Ready:
            remove_ready(t);
            break;
        case TaskState::WaitingEvent:
            if (t->waiting_evt_ != nullptr) {
                std::erase(t->waiting_evt_->waiters_, t);
                t->waiting_evt_ = nullptr;
            }
            break;
        case TaskState::New:
        case TaskState::WaitingPeriod:
        case TaskState::Sleeping:
        case TaskState::Suspended:
        case TaskState::ParWait:
            break;
        case TaskState::Terminated:
            return;
    }
    {
        // Force-release resources the dying task holds (mutex cleanup hooks)
        // now that it has left every scheduler queue.
        TeardownScope teardown{in_teardown_};
        run_task_cleanup(t);
    }
    watchdog_cancel_internal(t);
    set_task_state(t, TaskState::Terminated);
    sim::Process* proc = t->proc_;
    if (proc == nullptr) {
        proc = t->pending_proc_;  // started but never bound (pre-activate kill)
    }
    if (t->proc_ != nullptr) {
        by_process_.erase(t->proc_);
        t->proc_ = nullptr;
    }
    t->pending_proc_ = nullptr;
    if (!killing_self) {
        schedule();
    }
    if (proc != nullptr) {
        kernel_.kill(*proc);  // self-kill: throws ProcessKilled, does not return
    }
}

void OsCore::task_set_priority(Task* t, int priority) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "task_set_priority(nullptr)");
    t->params_.priority = priority;
    requeue_if_ready(t);
    schedule();
    if (running_ != nullptr && self() == running_) {
        maybe_yield();
    }
}

Task* OsCore::par_start() {
    ++stats_.syscalls;
    Task* t = require_running_self("par_start() requires the running task");
    set_task_state(t, TaskState::ParWait);
    running_ = nullptr;
    schedule();
    return t;
}

void OsCore::par_end(Task* parent) {
    ++stats_.syscalls;
    SLM_ASSERT(parent != nullptr && parent->state_ == TaskState::ParWait,
               "par_end() expects the handle returned by par_start()");
    SLM_ASSERT(sim::this_process() == parent->proc_,
               "par_end() must be called by the suspended parent task");
    enqueue_ready(parent);
    schedule();
    wait_dispatch(parent);
}

// ---- event handling ----

OsEvent* OsCore::event_new(std::string name) {
    ++stats_.syscalls;
    if (name.empty()) {
        name = "evt" + std::to_string(events_.size());
    }
    events_.push_back(std::make_unique<OsEvent>(std::move(name)));
    return events_.back().get();
}

void OsCore::event_del(OsEvent* e) {
    ++stats_.syscalls;
    SLM_ASSERT(e != nullptr, "event_del(nullptr)");
    SLM_ASSERT(e->waiters_.empty(), "event_del() with tasks still waiting");
    std::erase_if(events_, [e](const auto& p) { return p.get() == e; });
}

void OsCore::event_wait(OsEvent* e) {
    ++stats_.syscalls;
    SLM_ASSERT(e != nullptr, "event_wait(nullptr)");
    Task* t = require_running_self("event_wait() requires the running task");
    e->waiters_.push_back(t);
    t->waiting_evt_ = e;
    set_task_state(t, TaskState::WaitingEvent);
    running_ = nullptr;
    schedule();
    wait_dispatch(t);
}

bool OsCore::event_wait_timeout(OsEvent* e, SimTime timeout) {
    ++stats_.syscalls;
    SLM_ASSERT(e != nullptr, "event_wait_timeout(nullptr)");
    SLM_ASSERT(!timeout.is_zero(), "event_wait_timeout() needs a non-zero timeout");
    Task* t = require_running_self("event_wait_timeout() requires the running task");
    const SimTime deadline = kernel_.now() + timeout;
    e->waiters_.push_back(t);
    t->waiting_evt_ = e;
    set_task_state(t, TaskState::WaitingEvent);
    running_ = nullptr;
    schedule();

    bool notified = true;
    while (running_ != t) {
        if (t->waiting_evt_ == e) {
            const SimTime remaining = deadline - kernel_.now();
            const bool dispatched =
                !remaining.is_zero() &&
                kernel_.wait_timeout(*t->dispatch_evt_, remaining);
            if (!dispatched && t->waiting_evt_ == e) {
                // RTOS-level timeout: leave the event queue and contend for
                // the CPU like any freshly readied task.
                std::erase(e->waiters_, t);
                t->waiting_evt_ = nullptr;
                notified = false;
                enqueue_ready(t);
                schedule();
            }
        } else {
            // Already readied by event_notify (or by the timeout above):
            // plain wait for the dispatcher.
            kernel_.wait(*t->dispatch_evt_);
        }
    }
    apply_switch_cost(t);
    return notified;
}

void OsCore::event_notify(OsEvent* e) {
    ++stats_.syscalls;
    SLM_ASSERT(e != nullptr, "event_notify(nullptr)");
    if (e->waiters_.empty()) {
        ++stats_.lost_notifies;
    }
    for (Task* t : e->waiters_) {
        t->waiting_evt_ = nullptr;
        enqueue_ready(t);
    }
    e->waiters_.clear();
    schedule();
    if (!in_teardown_ && running_ != nullptr && self() == running_) {
        // A task made others ready inside a system call: the scheduler runs
        // now, possibly switching away immediately.
        maybe_yield();
    }
}

// ---- time modeling ----

void OsCore::time_wait(SimTime dt) {
    ++stats_.syscalls;
    Task* t = require_running_self("time_wait() requires the running task");
    // Nominal work -> this PE's time first; fault transforms model wall-level
    // slowdowns of whatever the PE actually executes.
    dt = scaled_exec(dt);
    if (fault_hook_ != nullptr) {
        dt = fault_hook_->transform_exec(*t, dt);
    }
    // A reschedule pending from an earlier call takes effect before any of
    // this delay elapses.
    maybe_yield();
    exec_charge(t, dt);
}

void OsCore::io_wait(SimTime dt) {
    ++stats_.syscalls;
    Task* t = require_running_self("io_wait() requires the running task");
    if (fault_hook_ != nullptr) {
        dt = fault_hook_->transform_exec(*t, dt);
    }
    maybe_yield();
    exec_charge(t, dt);
}

SimTime OsCore::scaled_exec(SimTime nominal) const {
    if (cfg_.speed_num == 1 && cfg_.speed_den == 1) {
        return nominal;
    }
    const auto wide = static_cast<unsigned __int128>(nominal.ns()) * cfg_.speed_den;
    return SimTime{static_cast<std::uint64_t>(wide / cfg_.speed_num)};
}

void OsCore::exec_charge(Task* t, SimTime dt) {
    SimTime remaining = dt;
    const SimTime quantum = policy_->quantum();
    do {
        SimTime chunk = remaining;
        if (!cfg_.preemption_granularity.is_zero() && cfg_.preemption_granularity < chunk) {
            chunk = cfg_.preemption_granularity;
        }
        if (!quantum.is_zero()) {
            const SimTime left = quantum - quantum_used_;
            if (left.is_zero()) {
                rotate_quantum();
                continue;
            }
            if (left < chunk) {
                chunk = left;
            }
        }
        kernel_.waitfor(chunk);
        t->stats_.exec_time += chunk;
        quantum_used_ += chunk;
        remaining -= chunk;
        if (!quantum.is_zero() && quantum_used_ >= quantum && !remaining.is_zero()) {
            rotate_quantum();
        }
        // Yield between chunks only: when the delay has fully elapsed the
        // task's step is complete, and its completion timestamp must not
        // absorb a preemption landing exactly on the boundary (a pending
        // reschedule still takes effect at the next RTOS call).
        if (!remaining.is_zero()) {
            maybe_yield();
        }
    } while (!remaining.is_zero());
}

void OsCore::task_delay(SimTime dt) {
    ++stats_.syscalls;
    Task* t = require_running_self("task_delay() requires the running task");
    set_task_state(t, TaskState::Sleeping);
    running_ = nullptr;
    schedule();
    // The sleep itself consumes no CPU: it elapses at SLDL level while the
    // dispatcher runs other tasks.
    kernel_.waitfor(dt);
    enqueue_ready(t);
    schedule();
    wait_dispatch(t);
}

// ---- interrupts ----

void OsCore::isr_enter(const std::string& irq_name) {
    ++stats_.isr_entries;
    if (cfg_.tracer != nullptr) {
        cfg_.tracer->irq(kernel_.now(), cfg_.cpu_name, irq_name);
    }
    for (OsObserver* obs : observers_) {
        obs->on_isr(irq_name, kernel_.now());
    }
}

void OsCore::interrupt_return() {
    ++stats_.syscalls;
    schedule();
}

void OsCore::isr_deliver(const std::string& irq_name, std::function<void()> handler) {
    SLM_ASSERT(handler != nullptr, "isr_deliver() requires a handler");
    IsrFate fate;
    if (fault_hook_ != nullptr) {
        fate = fault_hook_->isr_fate(irq_name);
    }
    if (!fate.deliver) {
        return;  // dropped on the floor
    }
    if (!fate.delay.is_zero()) {
        // Deferred delivery rides a kernel one-shot timer; the handler then
        // runs in scheduler context, where event_notify's caller-side yield
        // guard is naturally inert (self() is null there).
        kernel_.post_at(kernel_.now() + fate.delay,
                        [this, irq_name, handler = std::move(handler),
                         extra = fate.extra_fires] {
                            deliver_isr_now(irq_name, handler, extra);
                        });
        return;
    }
    deliver_isr_now(irq_name, handler, fate.extra_fires);
}

void OsCore::deliver_isr_now(const std::string& irq_name,
                             const std::function<void()>& handler, unsigned extra) {
    for (unsigned i = 0; i <= extra; ++i) {
        isr_enter(irq_name);
        handler();
        interrupt_return();
    }
}

// ---- restartable bodies / recovery ----

void OsCore::task_set_body(Task* t, std::function<void()> body) {
    SLM_ASSERT(t != nullptr, "task_set_body(nullptr)");
    SLM_ASSERT(body != nullptr, "task_set_body() requires a body");
    t->body_ = std::move(body);
}

sim::Process* OsCore::task_start(Task* t, std::string process_name) {
    SLM_ASSERT(t != nullptr, "task_start(nullptr)");
    SLM_ASSERT(t->body_ != nullptr,
               "task_start() requires a body registered via task_set_body()");
    SLM_ASSERT(t->state_ == TaskState::New, "task_start() on a started task");
    SLM_ASSERT(t->pending_proc_ == nullptr, "task_start() called twice");
    if (!process_name.empty()) {
        t->proc_name_ = std::move(process_name);
    }
    spawn_task_process(t);
    return t->pending_proc_;
}

void OsCore::spawn_task_process(Task* t) {
    // The wrapper is byte-for-byte the hand-written spawn idiom the models
    // and personalities used before restartable bodies existed.
    t->pending_proc_ = kernel_.spawn(
        t->proc_name_.empty() ? t->params_.name : t->proc_name_, [this, t] {
            task_activate(t);
            t->body_();
            if (self() == t) {
                task_terminate();
            }
        });
}

void OsCore::task_restart(Task* t) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "task_restart(nullptr)");
    SLM_ASSERT(t->body_ != nullptr,
               "task_restart() requires a body registered via task_set_body()");
    sim::Process* old = t->proc_ != nullptr ? t->proc_ : t->pending_proc_;

    // Detach the dying incarnation from wherever it sits (mirrors task_kill;
    // kernel-level wakeups die with the old process when it is killed below).
    switch (t->state_) {
        case TaskState::Running:
            SLM_ASSERT(t == running_, "Running task is not the dispatched task");
            running_ = nullptr;
            break;
        case TaskState::Ready:
            remove_ready(t);
            break;
        case TaskState::WaitingEvent:
            if (t->waiting_evt_ != nullptr) {
                std::erase(t->waiting_evt_->waiters_, t);
                t->waiting_evt_ = nullptr;
            }
            break;
        case TaskState::New:
        case TaskState::WaitingPeriod:
        case TaskState::Sleeping:
        case TaskState::Suspended:
        case TaskState::ParWait:
        case TaskState::Terminated:  // revive (ITRON sta_tsk after ter_tsk)
            break;
    }
    {
        TeardownScope teardown{in_teardown_};
        run_task_cleanup(t);
    }
    ++stats_.restarts;
    for (OsObserver* obs : observers_) {
        obs->on_task_restart(*t, kernel_.now());
    }
    if (t->proc_ != nullptr) {
        by_process_.erase(t->proc_);
        t->proc_ = nullptr;
    }
    t->pending_proc_ = nullptr;

    // Reset the incarnation's accounting; the restart counter itself survives.
    const std::uint64_t restarts = t->stats_.restarts + 1;
    t->stats_ = TaskStats{};
    t->stats_.restarts = restarts;
    t->inherited_priority_ = std::numeric_limits<int>::max();
    t->switch_cost_due_ = false;
    t->release_time_ = SimTime{};
    t->next_release_ = SimTime{};
    t->abs_deadline_ = SimTime::max();
    if (last_dispatched_ == t) {
        last_dispatched_ = nullptr;  // the fresh incarnation is a real switch
    }
    set_task_state(t, TaskState::New);
    spawn_task_process(t);
    if (!t->wd_timeout_.is_zero()) {
        watchdog_schedule(t);  // a configured watchdog restarts its countdown
    }
    schedule();
    if (old != nullptr) {
        kernel_.kill(*old);  // self-restart: throws ProcessKilled, no return
    }
}

void OsCore::crash_running(Task* t) {
    SLM_ASSERT(t == running_ && t == self(),
               "crash_running() targets the freshly dispatched task");
    ++stats_.crashes;
    for (OsObserver* obs : observers_) {
        obs->on_task_crash(*t, kernel_.now());
    }
    running_ = nullptr;
    {
        TeardownScope teardown{in_teardown_};
        run_task_cleanup(t);
    }
    // Deliberately NOT cancelling the watchdog: an armed watchdog firing
    // after the crash is the recovery path (Restart revives the task).
    set_task_state(t, TaskState::Terminated);
    sim::Process* proc = t->proc_;
    by_process_.erase(proc);
    t->proc_ = nullptr;
    t->pending_proc_ = nullptr;
    schedule();
    kernel_.kill(*proc);  // throws ProcessKilled out of the dispatch path
    std::abort();         // unreachable: kill(self) never returns
}

void OsCore::run_task_cleanup(Task* t) {
    for (std::size_t i = 0; i < cleanup_hooks_.size(); ++i) {
        cleanup_hooks_[i].second(t);
    }
}

std::uint64_t OsCore::add_task_cleanup(std::function<void(Task*)> fn) {
    SLM_ASSERT(fn != nullptr, "add_task_cleanup() requires a hook");
    const std::uint64_t id = next_cleanup_id_++;
    cleanup_hooks_.emplace_back(id, std::move(fn));
    return id;
}

void OsCore::remove_task_cleanup(std::uint64_t id) {
    std::erase_if(cleanup_hooks_, [id](const auto& h) { return h.first == id; });
}

// ---- watchdogs ----

void OsCore::watchdog_arm(Task* t, SimTime timeout, MissPolicy action) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "watchdog_arm(nullptr)");
    SLM_ASSERT(!timeout.is_zero(), "watchdog_arm() needs a non-zero timeout");
    t->wd_timeout_ = timeout;
    t->wd_action_ = action;
    watchdog_schedule(t);
}

void OsCore::watchdog_kick(Task* t) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "watchdog_kick(nullptr)");
    SLM_ASSERT(!t->wd_timeout_.is_zero(), "watchdog_kick() before watchdog_arm()");
    watchdog_schedule(t);
}

void OsCore::watchdog_disarm(Task* t) {
    ++stats_.syscalls;
    SLM_ASSERT(t != nullptr, "watchdog_disarm(nullptr)");
    watchdog_cancel_internal(t);
    t->wd_timeout_ = SimTime{};
}

bool OsCore::watchdog_armed(const Task* t) const {
    SLM_ASSERT(t != nullptr, "watchdog_armed(nullptr)");
    return t->wd_pending_;
}

void OsCore::watchdog_schedule(Task* t) {
    ++t->wd_gen_;
    if (t->wd_pending_) {
        kernel_.cancel_timer(t->wd_timer_);
    }
    const std::uint64_t gen = t->wd_gen_;
    t->wd_pending_ = true;
    t->wd_timer_ = kernel_.post_at(kernel_.now() + t->wd_timeout_,
                                   [this, t, gen] { watchdog_fire(t, gen); });
}

void OsCore::watchdog_cancel_internal(Task* t) {
    ++t->wd_gen_;
    if (t->wd_pending_) {
        kernel_.cancel_timer(t->wd_timer_);
        t->wd_pending_ = false;
    }
}

void OsCore::watchdog_fire(Task* t, std::uint64_t gen) {
    if (gen != t->wd_gen_ || !t->wd_pending_) {
        return;  // superseded by a kick/disarm racing the timer
    }
    t->wd_pending_ = false;
    ++stats_.watchdog_fires;
    for (OsObserver* obs : observers_) {
        obs->on_watchdog(*t, kernel_.now());
    }
    switch (t->wd_action_) {
        case MissPolicy::Ignore:
        case MissPolicy::Notify:
        case MissPolicy::SkipJob:
            // Counted + observed only. SkipJob has no job to skip here — the
            // next endcycle applies the task's own policy.
            break;
        case MissPolicy::Restart:
            task_restart(t);  // timer context: never a self-restart
            break;
        case MissPolicy::Kill:
            if (t->state_ != TaskState::Terminated) {
                task_kill(t);  // timer context: never a self-kill
            }
            break;
    }
}

}  // namespace slm::rtos
