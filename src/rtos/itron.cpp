#include "rtos/itron.hpp"

#include "sim/assert.hpp"

namespace slm::rtos::itron {

const char* to_string(ER er) {
    switch (er) {
        case E_OK: return "E_OK";
        case E_PAR: return "E_PAR";
        case E_ID: return "E_ID";
        case E_CTX: return "E_CTX";
        case E_OBJ: return "E_OBJ";
        case E_NOEXS: return "E_NOEXS";
        case E_QOVR: return "E_QOVR";
        case E_TMOUT: return "E_TMOUT";
    }
    return "E_?";
}

ItronOs::ItronOs(sim::Kernel& kernel, RtosConfig cfg)
    : owned_core_(std::make_unique<OsCore>(kernel, std::move(cfg))), core_(*owned_core_) {
    core_.init();
}

ItronOs::Tcb* ItronOs::tcb(ID tskid) {
    const auto it = tasks_.find(tskid);
    return it != tasks_.end() ? &it->second : nullptr;
}

const ItronOs::Tcb* ItronOs::tcb(ID tskid) const {
    const auto it = tasks_.find(tskid);
    return it != tasks_.end() ? &it->second : nullptr;
}

Task* ItronOs::task(ID tskid) const {
    const Tcb* e = tcb(tskid);
    return e != nullptr ? e->task : nullptr;
}

// ---- task management ----

ER ItronOs::cre_tsk(ID tskid, T_CTSK pk_ctsk) {
    if (tskid <= 0) {
        return E_ID;
    }
    if (tasks_.contains(tskid)) {
        return E_OBJ;
    }
    if (pk_ctsk.task == nullptr) {
        return E_PAR;
    }
    TaskParams p;
    p.name = pk_ctsk.name.empty() ? "tsk" + std::to_string(tskid)
                                  : std::move(pk_ctsk.name);
    p.type = TaskType::Aperiodic;
    p.priority = pk_ctsk.itskpri;
    Tcb e;
    e.task = core_.task_create(std::move(p));
    core_.task_set_body(e.task, std::move(pk_ctsk.task));
    tasks_.emplace(tskid, std::move(e));
    return E_OK;
}

ER ItronOs::sta_tsk(ID tskid) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (!e->started) {
        if (e->task->state() != TaskState::New) {
            return E_OBJ;
        }
        e->started = true;
        // The task body runs in its own SLDL process, entering the ready
        // queue at the current instant — the same refinement pattern the
        // arch layer uses (now canonicalized in OsCore::task_start).
        core_.task_start(e->task);
        return E_OK;
    }
    if (e->task->state() != TaskState::Terminated) {
        return E_OBJ;  // not DORMANT
    }
    // A terminated task is DORMANT again: sta_tsk revives it with a fresh
    // incarnation of its body (per the standard's create/start lifecycle).
    core_.task_restart(e->task);
    return E_OK;
}

ER ItronOs::rst_tsk(ID tskid) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (!e->started || e->task->state() == TaskState::New ||
        e->task->state() == TaskState::Terminated) {
        return E_OBJ;  // DORMANT: sta_tsk is the reviving call
    }
    core_.task_restart(e->task);  // self-restart does not return E_OK — or at all
    return E_OK;
}

void ItronOs::ext_tsk() {
    Task* t = core_.self();
    SLM_ASSERT(t != nullptr, "ext_tsk() outside a task");
    sim::Process* proc = sim::this_process();
    core_.task_terminate();  // records completion, dispatches the next task
    core_.kernel().kill(*proc);  // throws ProcessKilled; does not return
}

ER ItronOs::ter_tsk(ID tskid) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (e->task == core_.self()) {
        return E_OBJ;  // ITRON forbids ter_tsk on the caller (use ext_tsk)
    }
    if (!e->started || e->task->state() == TaskState::Terminated) {
        return E_OBJ;
    }
    // The task returns to DORMANT; sta_tsk may start a fresh incarnation
    // (task bodies are restartable via OsCore::task_set_body).
    core_.task_kill(e->task);
    return E_OK;
}

ER ItronOs::chg_pri(ID tskid, PRI tskpri) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (e->task->state() == TaskState::Terminated) {
        return E_OBJ;
    }
    core_.task_set_priority(e->task, tskpri);
    return E_OK;
}

ER ItronOs::get_pri(ID tskid, PRI* p_tskpri) const {
    if (p_tskpri == nullptr) {
        return E_PAR;
    }
    const Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    // Base priority, as chg_pri sets it (boosts from the mutex services are a
    // core-level concept, visible via Task::effective_priority).
    *p_tskpri = e->task->params().priority;
    return E_OK;
}

ER ItronOs::slp_tsk() {
    Task* t = core_.self();
    if (t == nullptr) {
        return E_CTX;
    }
    for (auto& [id, e] : tasks_) {
        if (e.task == t) {
            if (e.wupcnt > 0) {
                --e.wupcnt;  // a queued wakeup satisfies the sleep immediately
                return E_OK;
            }
            core_.task_sleep();
            return E_OK;
        }
    }
    return E_CTX;  // caller is not an ITRON task of this instance
}

ER ItronOs::wup_tsk(ID tskid) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (!e->started || e->task->state() == TaskState::Terminated) {
        return E_OBJ;
    }
    if (e->task->state() == TaskState::Suspended) {
        core_.task_activate(e->task);
    } else {
        ++e->wupcnt;  // not asleep: queue the wakeup for the next slp_tsk
    }
    return E_OK;
}

ER ItronOs::can_wup(ID tskid, unsigned* p_wupcnt) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (p_wupcnt != nullptr) {
        *p_wupcnt = e->wupcnt;
    }
    e->wupcnt = 0;
    return E_OK;
}

ER ItronOs::dly_tsk(SimTime dlytim) {
    if (core_.self() == nullptr) {
        return E_CTX;
    }
    core_.task_delay(dlytim);
    return E_OK;
}

// ---- watchdogs ----

ER ItronOs::sta_wdg(ID tskid, SimTime timeout, MissPolicy action) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (timeout.is_zero()) {
        return E_PAR;
    }
    core_.watchdog_arm(e->task, timeout, action);
    return E_OK;
}

ER ItronOs::kck_wdg(ID tskid) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    if (e->task->wd_timeout().is_zero()) {
        return E_OBJ;  // never armed (or stopped)
    }
    core_.watchdog_kick(e->task);
    return E_OK;
}

ER ItronOs::stp_wdg(ID tskid) {
    Tcb* e = tcb(tskid);
    if (e == nullptr) {
        return E_NOEXS;
    }
    core_.watchdog_disarm(e->task);
    return E_OK;
}

// ---- semaphores ----

ER ItronOs::cre_sem(ID semid, T_CSEM pk_csem) {
    if (semid <= 0) {
        return E_ID;
    }
    if (sems_.contains(semid)) {
        return E_OBJ;
    }
    if (pk_csem.isemcnt > pk_csem.maxsem) {
        return E_PAR;
    }
    Sem s;
    s.sem = std::make_unique<OsSemaphore>(core_, pk_csem.isemcnt,
                                          std::move(pk_csem.name));
    s.maxsem = pk_csem.maxsem;
    sems_.emplace(semid, std::move(s));
    return E_OK;
}

ER ItronOs::sig_sem(ID semid) {
    const auto it = sems_.find(semid);
    if (it == sems_.end()) {
        return E_NOEXS;
    }
    if (it->second.sem->count() >= it->second.maxsem) {
        return E_QOVR;
    }
    it->second.sem->release();
    return E_OK;
}

ER ItronOs::wai_sem(ID semid) {
    const auto it = sems_.find(semid);
    if (it == sems_.end()) {
        return E_NOEXS;
    }
    if (core_.self() == nullptr) {
        return E_CTX;
    }
    it->second.sem->acquire();
    return E_OK;
}

ER ItronOs::pol_sem(ID semid) {
    const auto it = sems_.find(semid);
    if (it == sems_.end()) {
        return E_NOEXS;
    }
    return it->second.sem->try_acquire() ? E_OK : E_TMOUT;
}

ER ItronOs::twai_sem(ID semid, SimTime tmout) {
    const auto it = sems_.find(semid);
    if (it == sems_.end()) {
        return E_NOEXS;
    }
    if (tmout.is_zero()) {
        return pol_sem(semid);  // TMO_POL
    }
    if (core_.self() == nullptr) {
        return E_CTX;
    }
    return it->second.sem->acquire_for(tmout) ? E_OK : E_TMOUT;
}

unsigned ItronOs::semaphore_count(ID semid) const {
    const auto it = sems_.find(semid);
    return it != sems_.end() ? it->second.sem->count() : 0;
}

// ---- data queues ----

ER ItronOs::cre_dtq(ID dtqid, T_CDTQ pk_cdtq) {
    if (dtqid <= 0) {
        return E_ID;
    }
    if (dtqs_.contains(dtqid)) {
        return E_OBJ;
    }
    dtqs_.emplace(dtqid, std::make_unique<OsQueue<VP_INT>>(core_, pk_cdtq.dtqcnt,
                                                           std::move(pk_cdtq.name)));
    return E_OK;
}

ER ItronOs::snd_dtq(ID dtqid, VP_INT data) {
    const auto it = dtqs_.find(dtqid);
    if (it == dtqs_.end()) {
        return E_NOEXS;
    }
    if (core_.self() == nullptr) {
        return E_CTX;  // a full queue would need to block
    }
    it->second->send(data);
    return E_OK;
}

ER ItronOs::rcv_dtq(VP_INT* p_data, ID dtqid) {
    if (p_data == nullptr) {
        return E_PAR;
    }
    const auto it = dtqs_.find(dtqid);
    if (it == dtqs_.end()) {
        return E_NOEXS;
    }
    if (core_.self() == nullptr) {
        return E_CTX;
    }
    *p_data = it->second->receive();
    return E_OK;
}

}  // namespace slm::rtos::itron
