#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtos/scheduler.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace slm::rtos {

class OsCore;
class OsEvent;

/// Task kinds supported by the model (paper §4.1): periodic hard real-time
/// tasks with a critical deadline, and aperiodic tasks with a fixed priority.
enum class TaskType { Aperiodic, Periodic };

/// RTOS-level task states (layered above sim::ProcState; the paper implements
/// task management "in a customary manner where tasks transition between
/// different states and a task queue is associated with each state").
enum class TaskState {
    New,            ///< TCB created, no process bound yet
    Ready,          ///< runnable, in the ready queue
    Running,        ///< the one task executing on this core
    WaitingEvent,   ///< blocked in event_wait()
    WaitingPeriod,  ///< periodic task between end-of-cycle and next release
    Sleeping,       ///< task_delay()ed until a wall-clock instant
    Suspended,      ///< task_sleep()ed, until task_activate()
    ParWait,        ///< parent task suspended in par_start()/par_end()
    Terminated,     ///< finished (task_terminate) or killed (task_kill)
};

[[nodiscard]] const char* to_string(TaskState s);
[[nodiscard]] const char* to_string(TaskType t);

/// Static task attributes passed to task_create.
struct TaskParams {
    std::string name;
    TaskType type = TaskType::Aperiodic;
    /// Fixed priority; smaller number = higher priority. Used by the Priority
    /// and RoundRobin policies (EDF/RMS derive ordering from deadlines/periods).
    int priority = 0;
    SimTime period{};    ///< release period (Periodic tasks)
    SimTime wcet{};      ///< worst-case execution time per cycle (informational + analysis)
    /// Relative deadline; zero means "= period" for periodic tasks and
    /// "none" (background) for aperiodic tasks under EDF.
    SimTime deadline{};
};

/// Per-task measured statistics.
struct TaskStats {
    std::uint64_t activations = 0;      ///< releases (periodic) / activations
    std::uint64_t preemptions = 0;      ///< times this task lost the CPU involuntarily
    std::uint64_t deadline_misses = 0;  ///< completions after the absolute deadline
    SimTime exec_time{};                ///< accumulated time_wait() execution time
    SimTime max_response{};             ///< max release-to-completion latency
    SimTime total_response{};           ///< sum of response times (for averages)
    std::uint64_t completions = 0;      ///< completed cycles/activations
};

/// Task control block. Created via OsCore::task_create (the paper's `proc`
/// handle); owned by the core. Application code treats it as an opaque
/// handle with read-only accessors.
class Task {
public:
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    [[nodiscard]] const std::string& name() const { return params_.name; }
    [[nodiscard]] const TaskParams& params() const { return params_; }
    [[nodiscard]] TaskState state() const { return state_; }
    [[nodiscard]] const TaskStats& stats() const { return stats_; }
    /// Effective priority: base priority unless boosted by priority
    /// inheritance (see OsMutex).
    [[nodiscard]] int effective_priority() const {
        return inherited_priority_ < params_.priority ? inherited_priority_
                                                      : params_.priority;
    }
    [[nodiscard]] SimTime absolute_deadline() const { return abs_deadline_; }
    [[nodiscard]] SimTime release_time() const { return release_time_; }
    /// Monotone stamp refreshed each time the task enters the ready queue;
    /// policies use it for FIFO ordering and tie-breaking.
    [[nodiscard]] std::uint64_t arrival_seq() const { return arrival_seq_; }

private:
    friend class OsCore;
    friend class ReadyQueue;  // intrusive ready-queue link access

    Task(OsCore& os, TaskParams params);

    OsCore& os_;
    TaskParams params_;
    TaskState state_ = TaskState::New;
    sim::Process* proc_ = nullptr;  ///< bound at task_activate time
    std::unique_ptr<sim::Event> dispatch_evt_;
    ReadyLink rq_link_;             ///< owned by the scheduler's ReadyQueue

    SimTime release_time_{};
    SimTime next_release_{};
    SimTime abs_deadline_ = SimTime::max();
    OsEvent* waiting_evt_ = nullptr;  ///< valid while state_ == WaitingEvent
    int inherited_priority_ = std::numeric_limits<int>::max();
    std::uint64_t arrival_seq_ = 0;  ///< FIFO stamp, refreshed on each enqueue
    bool switch_cost_due_ = false;
    TaskStats stats_;
};

/// RTOS event (the paper's `evt`, allocated with event_new). Unlike SLDL
/// events, RTOS events queue *tasks*, and a notify with no waiting task is
/// lost — stateful synchronization belongs in the os_channels built on top.
class OsEvent {
public:
    explicit OsEvent(std::string name) : name_(std::move(name)) {}
    OsEvent(const OsEvent&) = delete;
    OsEvent& operator=(const OsEvent&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

private:
    friend class OsCore;
    std::string name_;
    std::vector<Task*> waiters_;
};

/// Observer hook for OS-level instrumentation: online timing analytics
/// (obs::RtosAnalytics), test assertions, custom monitors. All callbacks run
/// synchronously inside the core at the instant the event happens; they must
/// not call blocking OS or kernel APIs and must not mutate the model —
/// observing never changes scheduling. Both API personalities (paper-style
/// RtosModel, ITRON-style ItronOs) emit through these hooks because the
/// hooks live in the shared OsCore.
class OsObserver {
public:
    virtual ~OsObserver() = default;

    /// A task's RTOS-level state changed (fires for every transition,
    /// including Ready→Running dispatches and Running→Ready preemptions).
    virtual void on_task_state(const Task& /*t*/, TaskState /*from*/, TaskState /*to*/,
                               SimTime /*now*/) {}
    /// The running task is about to lose the CPU involuntarily to `by`
    /// (counted as a preemption in the stats).
    virtual void on_preempt(const Task& /*preempted*/, const Task& /*by*/,
                            SimTime /*now*/) {}
    /// A task completed a job: an activation (aperiodic) or one periodic
    /// cycle. `response` is release→completion latency; `missed` is true when
    /// completion passed the absolute deadline.
    virtual void on_completion(const Task& /*t*/, SimTime /*response*/, bool /*missed*/,
                               SimTime /*now*/) {}
    /// An ISR body was entered (isr_enter).
    virtual void on_isr(const std::string& /*irq_name*/, SimTime /*now*/) {}
    /// `blocked` is about to wait for a resource (mutex) currently held by
    /// `holder` — reported by the services layer via note_resource_block().
    virtual void on_resource_block(const Task& /*blocked*/, const Task& /*holder*/,
                                   const std::string& /*resource*/, SimTime /*now*/) {}
    /// `t` acquired a resource after waiting `waited` (zero when uncontended).
    virtual void on_resource_acquire(const Task& /*t*/, const std::string& /*resource*/,
                                     SimTime /*waited*/, SimTime /*now*/) {}
    /// `t` released a resource it held.
    virtual void on_resource_release(const Task& /*t*/, const std::string& /*resource*/,
                                     SimTime /*now*/) {}
    /// The observed core is being destroyed. Observers that can outlive the
    /// core (e.g. an obs::RtosAnalytics whose results are read after the
    /// model run returns) drop their core reference here instead of
    /// detaching in their destructor.
    virtual void on_core_teardown() {}
};

/// Core construction parameters (shared by every personality).
struct RtosConfig {
    /// Name of the processing element this core runs on; used as the
    /// `cpu` field of trace records.
    std::string cpu_name = "cpu0";
    /// Default scheduling policy (can be overridden by start(policy)).
    SchedPolicy policy = SchedPolicy::Priority;
    /// Round-robin time slice.
    SimTime quantum = milliseconds(1);
    /// Modeled cost of a context switch, charged to the incoming task.
    SimTime context_switch_overhead{};
    /// Chop time_wait() delays into chunks of at most this size so preemption
    /// can take effect earlier (paper §4.3: "the accuracy of preemption
    /// results is limited by the granularity of task delay models"). Zero
    /// means no chopping: one chunk per time_wait call.
    SimTime preemption_granularity{};
    /// Optional trace sink for task states, context switches, and IRQs. Any
    /// trace::TraceSink works: a trace::TraceRecorder for derived views and
    /// text exporters, or an obs::BinaryTraceSink when recording overhead on
    /// the hot path matters (convert to a TraceRecorder afterwards). Online
    /// per-task analytics do not need a tracer at all — attach an
    /// obs::RtosAnalytics through OsCore::add_observer() instead.
    trace::TraceSink* tracer = nullptr;
};

/// Core-instance statistics.
struct RtosStats {
    std::uint64_t context_switches = 0;  ///< dispatches where the task changed
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t isr_entries = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t syscalls = 0;  ///< RTOS interface invocations
    /// event_notify() calls that found no waiting task. RTOS events are lossy
    /// by design, so a nonzero count is not itself a bug (semaphore releases
    /// with no contender land here) — but for pure-event protocols it flags a
    /// signal the intended receiver never saw. The schedule explorer can
    /// treat it as a safety property (ExploreConfig::check_lost_signals).
    std::uint64_t lost_notifies = 0;
};

/// The OS core: the bottom layer of the layered RTOS model.
///
/// One instance models the kernel of one processing element. It owns task
/// lifecycle (TCBs, states, the ready queue), the context-handoff protocol
/// (per-task dispatch events serializing tasks over the SLDL kernel), the
/// reschedule protocol (deferred preemption at delay-step boundaries,
/// paper Fig. 8(b): t4 → t4'), events, and time services. It knows nothing
/// about API flavors: *personalities* (the paper-style RtosModel, the
/// ITRON-style ItronOs) are thin veneers mapping their standard's call set
/// onto this class, and the *services* layer (os_channels.hpp) builds
/// stateful synchronization from the narrow service interface below.
///
/// Infrastructure — schedule exploration, Gantt tracing, deadlock checking,
/// architecture modeling — targets OsCore, so every personality inherits it
/// for free.
class OsCore {
public:
    explicit OsCore(sim::Kernel& kernel, RtosConfig cfg = {});
    ~OsCore();

    OsCore(const OsCore&) = delete;
    OsCore& operator=(const OsCore&) = delete;

    // ---- operating system management ----

    /// Reset kernel data structures. Must be called before any task_create.
    void init();

    /// Begin multi-task scheduling with the configured policy.
    void start();
    /// Begin multi-task scheduling with an explicit policy (paper signature).
    void start(SchedPolicy policy);

    /// Notify the kernel that an interrupt service routine has finished; the
    /// scheduler runs and may dispatch a task the ISR made ready.
    void interrupt_return();

    /// Bracket an ISR body (bookkeeping + trace). The arch layer calls
    /// isr_enter() when an interrupt fires; models written by hand may too.
    void isr_enter(const std::string& irq_name);

    // ---- task management ----

    /// Allocate a task control block. The returned handle is bound to an SLDL
    /// process by the first task_activate() call made from that process.
    Task* task_create(TaskParams params);

    /// Terminate the calling task and dispatch the next one.
    void task_terminate();

    /// Suspend the calling task until another task task_activate()s it.
    void task_sleep();

    /// Dual purpose (paper §4.1/§4.4):
    ///  - called from the task's own (unbound) process: binds the process to
    ///    the TCB, enters the ready queue, and blocks until dispatched;
    ///  - called on a Suspended task from elsewhere: moves it back to ready.
    void task_activate(Task* t);

    /// Periodic tasks: end the current cycle, wait for the next release.
    void task_endcycle();

    /// Forcibly terminate another task (or the caller, = task_terminate).
    void task_kill(Task* t);

    /// Change a task's base priority at runtime (smaller = higher). The
    /// scheduler re-evaluates immediately; lowering the caller's own priority
    /// may switch away inside this call.
    void task_set_priority(Task* t, int priority);

    /// Suspend the calling task for dynamic fork: call before an SLDL `par`
    /// that spawns child tasks. Returns the suspended task handle.
    Task* par_start();

    /// Resume the parent task after the SLDL `par` joined.
    void par_end(Task* parent);

    // ---- event handling ----

    OsEvent* event_new(std::string name = {});
    void event_del(OsEvent* e);
    /// Block the calling task until the event is notified.
    void event_wait(OsEvent* e);
    /// Block until the event is notified or `timeout` elapses. Returns true
    /// if the event arrived; false if the task timed out (it then re-entered
    /// the ready queue and was redispatched normally).
    [[nodiscard]] bool event_wait_timeout(OsEvent* e, SimTime timeout);
    /// Move all tasks waiting on `e` to ready; reschedule.
    void event_notify(OsEvent* e);

    // ---- time modeling ----

    /// Model `dt` of task execution time; replaces `waitfor` in refined tasks
    /// (the wrapper that lets the RTOS kernel reschedule when time increases).
    void time_wait(SimTime dt);

    /// Suspend the calling task for `dt` of simulated time *without consuming
    /// CPU* (the classic RTOS delay()/taskDelay() service): other tasks run
    /// during the sleep, and the caller re-enters the ready queue afterwards.
    void task_delay(SimTime dt);

    // ---- service interface ----
    //
    // The narrow surface the services layer (os_channels.hpp) builds on, in
    // addition to the event operations above. Priority boosts model the
    // inheritance/ceiling protocols of OsMutex without letting services reach
    // into TCB internals: a boost never lowers the effective priority, and
    // restore_priority() reinstates a level previously read with
    // priority_boost() (the mutex save/restore discipline).

    /// Current boost level of `t` (numeric level; INT_MAX = no boost).
    [[nodiscard]] int priority_boost(const Task* t) const;
    /// Raise `t`'s boost to `priority` if that is higher (numerically lower);
    /// re-sorts the ready queue and reschedules immediately. No-op otherwise.
    void boost_priority(Task* t, int priority);
    /// Reinstate a boost level previously read with priority_boost(). Takes
    /// effect at the next reschedule (the releasing service is expected to
    /// trigger one, e.g. via event_notify).
    void restore_priority(Task* t, int saved);

    /// Resource-contention notifications, forwarded verbatim to OsObservers.
    /// The services layer (OsMutex) reports who blocks on whom and for how
    /// long, so online analytics can measure blocking time and walk blocking
    /// chains without reaching into channel internals. Purely observational:
    /// calling or omitting them never changes scheduling.
    void note_resource_block(const Task* blocked, const Task* holder,
                             const std::string& resource);
    void note_resource_acquire(const Task* t, const std::string& resource,
                               SimTime waited);
    void note_resource_release(const Task* t, const std::string& resource);

    // ---- introspection ----

    /// Attach an instrumentation observer (callbacks in attachment order).
    void add_observer(OsObserver* obs);
    void remove_observer(OsObserver* obs);

    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
    [[nodiscard]] const RtosConfig& config() const { return cfg_; }
    [[nodiscard]] const RtosStats& stats() const { return stats_; }
    [[nodiscard]] const SchedulerPolicy& policy() const { return *policy_; }
    [[nodiscard]] Task* running_task() const { return running_; }
    [[nodiscard]] bool started() const { return started_; }
    /// The task bound to the calling SLDL process (nullptr if unbound).
    [[nodiscard]] Task* self() const;
    [[nodiscard]] std::vector<const Task*> tasks() const;
    /// Sum of all tasks' modeled execution time (CPU busy time).
    [[nodiscard]] SimTime busy_time() const;

private:
    void enqueue_ready(Task* t);
    void remove_ready(Task* t);
    /// Re-sort a Ready task whose scheduling key changed (priority boost /
    /// task_set_priority); no-op for tasks in other states.
    void requeue_if_ready(Task* t);
    void set_task_state(Task* t, TaskState s);
    /// Remove and return the next task to dispatch. Equals ready_->pop()
    /// unless a sim::ScheduleController is installed on the kernel, in which
    /// case policy-equivalent ties become a TaskDispatch choice point.
    Task* pick_next();
    void dispatch(Task* t);
    void apply_switch_cost(Task* t);
    void schedule();
    void maybe_yield();
    void rotate_quantum();
    void wait_dispatch(Task* t);
    [[nodiscard]] Task* require_running_self(const char* what);
    void record_completion(Task* t);
    void reschedule_after_boost();

    sim::Kernel& kernel_;
    RtosConfig cfg_;
    std::unique_ptr<SchedulerPolicy> policy_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::vector<std::unique_ptr<OsEvent>> events_;
    std::unique_ptr<ReadyQueue> ready_;
    std::unordered_map<const sim::Process*, Task*> by_process_;
    Task* running_ = nullptr;
    Task* last_dispatched_ = nullptr;
    bool reschedule_pending_ = false;
    bool started_ = false;
    std::uint64_t arrival_counter_ = 0;
    SimTime quantum_used_{};
    std::vector<Task*> ties_scratch_;  ///< reused by pick_next()
    std::vector<OsObserver*> observers_;
    RtosStats stats_;
};

}  // namespace slm::rtos
