#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtos/scheduler.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace slm::rtos {

class OsCore;
class OsEvent;

/// Task kinds supported by the model (paper §4.1): periodic hard real-time
/// tasks with a critical deadline, and aperiodic tasks with a fixed priority.
enum class TaskType { Aperiodic, Periodic };

/// RTOS-level task states (layered above sim::ProcState; the paper implements
/// task management "in a customary manner where tasks transition between
/// different states and a task queue is associated with each state").
enum class TaskState {
    New,            ///< TCB created, no process bound yet
    Ready,          ///< runnable, in the ready queue
    Running,        ///< the one task executing on this core
    WaitingEvent,   ///< blocked in event_wait()
    WaitingPeriod,  ///< periodic task between end-of-cycle and next release
    Sleeping,       ///< task_delay()ed until a wall-clock instant
    Suspended,      ///< task_sleep()ed, until task_activate()
    ParWait,        ///< parent task suspended in par_start()/par_end()
    Terminated,     ///< finished (task_terminate) or killed (task_kill)
};

/// What the core does when a periodic task completes a cycle past its
/// absolute deadline (task_endcycle), and what a fired watchdog does to its
/// task. `Ignore` preserves the classic accounting-only behavior; every other
/// policy additionally raises the on_deadline_miss observer callback.
enum class MissPolicy {
    Ignore,   ///< count the miss, change nothing (legacy behavior)
    Notify,   ///< count + raise on_deadline_miss; scheduling unchanged
    SkipJob,  ///< drop the next release to let the task catch up
    Restart,  ///< task_restart(): re-enter the task body, stats reset
    Kill,     ///< task_kill(): terminate the offender
};

[[nodiscard]] const char* to_string(TaskState s);
[[nodiscard]] const char* to_string(TaskType t);
[[nodiscard]] const char* to_string(MissPolicy p);

/// Static task attributes passed to task_create.
struct TaskParams {
    std::string name;
    TaskType type = TaskType::Aperiodic;
    /// Fixed priority; smaller number = higher priority. Used by the Priority
    /// and RoundRobin policies (EDF/RMS derive ordering from deadlines/periods).
    int priority = 0;
    SimTime period{};    ///< release period (Periodic tasks)
    SimTime wcet{};      ///< worst-case execution time per cycle (informational + analysis)
    /// Relative deadline; zero means "= period" for periodic tasks and
    /// "none" (background) for aperiodic tasks under EDF.
    SimTime deadline{};
    /// Deadline-miss recovery policy for this task; unset falls back to
    /// RtosConfig::default_miss_policy. Applied at task_endcycle().
    std::optional<MissPolicy> miss_policy;
};

/// Per-task measured statistics.
struct TaskStats {
    std::uint64_t activations = 0;      ///< releases (periodic) / activations
    std::uint64_t preemptions = 0;      ///< times this task lost the CPU involuntarily
    std::uint64_t deadline_misses = 0;  ///< completions after the absolute deadline
    SimTime exec_time{};                ///< accumulated time_wait() execution time
    SimTime max_response{};             ///< max release-to-completion latency
    SimTime total_response{};           ///< sum of response times (for averages)
    std::uint64_t completions = 0;      ///< completed cycles/activations
    std::uint64_t restarts = 0;         ///< task_restart() invocations (survives the reset)
    std::uint64_t jobs_skipped = 0;     ///< releases dropped by MissPolicy::SkipJob
};

/// Task control block. Created via OsCore::task_create (the paper's `proc`
/// handle); owned by the core. Application code treats it as an opaque
/// handle with read-only accessors.
class Task {
public:
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    [[nodiscard]] const std::string& name() const { return params_.name; }
    [[nodiscard]] const TaskParams& params() const { return params_; }
    [[nodiscard]] TaskState state() const { return state_; }
    [[nodiscard]] const TaskStats& stats() const { return stats_; }
    /// Effective priority: base priority unless boosted by priority
    /// inheritance (see OsMutex).
    [[nodiscard]] int effective_priority() const {
        return inherited_priority_ < params_.priority ? inherited_priority_
                                                      : params_.priority;
    }
    [[nodiscard]] SimTime absolute_deadline() const { return abs_deadline_; }
    [[nodiscard]] SimTime release_time() const { return release_time_; }
    /// Monotone stamp refreshed each time the task enters the ready queue;
    /// policies use it for FIFO ordering and tie-breaking.
    [[nodiscard]] std::uint64_t arrival_seq() const { return arrival_seq_; }
    /// Configured watchdog timeout (zero = none); see OsCore::watchdog_arm.
    [[nodiscard]] SimTime wd_timeout() const { return wd_timeout_; }
    [[nodiscard]] MissPolicy wd_action() const { return wd_action_; }
    /// True if a body was registered via task_set_body (required for restart).
    [[nodiscard]] bool restartable() const { return body_ != nullptr; }

private:
    friend class OsCore;
    friend class ReadyQueue;  // intrusive ready-queue link access

    Task(OsCore& os, TaskParams params);

    OsCore& os_;
    TaskParams params_;
    TaskState state_ = TaskState::New;
    sim::Process* proc_ = nullptr;  ///< bound at task_activate time
    std::unique_ptr<sim::Event> dispatch_evt_;
    ReadyLink rq_link_;             ///< owned by the scheduler's ReadyQueue

    SimTime release_time_{};
    SimTime next_release_{};
    SimTime abs_deadline_ = SimTime::max();
    OsEvent* waiting_evt_ = nullptr;  ///< valid while state_ == WaitingEvent
    int inherited_priority_ = std::numeric_limits<int>::max();
    std::uint64_t arrival_seq_ = 0;  ///< FIFO stamp, refreshed on each enqueue
    bool switch_cost_due_ = false;
    TaskStats stats_;

    // Restartable-body support (task_set_body/task_start/task_restart).
    std::function<void()> body_;         ///< re-entrant body; empty = not restartable
    std::string proc_name_;              ///< process name used by task_start (restart reuses it)
    sim::Process* pending_proc_ = nullptr;  ///< spawned wrapper not yet bound by task_activate

    // Watchdog (see OsCore::watchdog_arm). Generation tokens invalidate
    // callbacks from superseded arms/kicks.
    SimTime wd_timeout_{};               ///< zero = not configured
    MissPolicy wd_action_ = MissPolicy::Notify;
    sim::Kernel::TimerId wd_timer_ = 0;
    bool wd_pending_ = false;
    std::uint64_t wd_gen_ = 0;
};

/// RTOS event (the paper's `evt`, allocated with event_new). Unlike SLDL
/// events, RTOS events queue *tasks*, and a notify with no waiting task is
/// lost — stateful synchronization belongs in the os_channels built on top.
class OsEvent {
public:
    explicit OsEvent(std::string name) : name_(std::move(name)) {}
    OsEvent(const OsEvent&) = delete;
    OsEvent& operator=(const OsEvent&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

private:
    friend class OsCore;
    std::string name_;
    std::vector<Task*> waiters_;
};

/// Observer hook for OS-level instrumentation: online timing analytics
/// (obs::RtosAnalytics), test assertions, custom monitors. All callbacks run
/// synchronously inside the core at the instant the event happens; they must
/// not call blocking OS or kernel APIs and must not mutate the model —
/// observing never changes scheduling. Both API personalities (paper-style
/// RtosModel, ITRON-style ItronOs) emit through these hooks because the
/// hooks live in the shared OsCore.
class OsObserver {
public:
    virtual ~OsObserver() = default;

    /// A task's RTOS-level state changed (fires for every transition,
    /// including Ready→Running dispatches and Running→Ready preemptions).
    virtual void on_task_state(const Task& /*t*/, TaskState /*from*/, TaskState /*to*/,
                               SimTime /*now*/) {}
    /// The running task is about to lose the CPU involuntarily to `by`
    /// (counted as a preemption in the stats).
    virtual void on_preempt(const Task& /*preempted*/, const Task& /*by*/,
                            SimTime /*now*/) {}
    /// A task completed a job: an activation (aperiodic) or one periodic
    /// cycle. `response` is release→completion latency; `missed` is true when
    /// completion passed the absolute deadline.
    virtual void on_completion(const Task& /*t*/, SimTime /*response*/, bool /*missed*/,
                               SimTime /*now*/) {}
    /// An ISR body was entered (isr_enter).
    virtual void on_isr(const std::string& /*irq_name*/, SimTime /*now*/) {}
    /// `blocked` is about to wait for a resource (mutex) currently held by
    /// `holder` — reported by the services layer via note_resource_block().
    virtual void on_resource_block(const Task& /*blocked*/, const Task& /*holder*/,
                                   const std::string& /*resource*/, SimTime /*now*/) {}
    /// `t` acquired a resource after waiting `waited` (zero when uncontended).
    virtual void on_resource_acquire(const Task& /*t*/, const std::string& /*resource*/,
                                     SimTime /*waited*/, SimTime /*now*/) {}
    /// `t` released a resource it held.
    virtual void on_resource_release(const Task& /*t*/, const std::string& /*resource*/,
                                     SimTime /*now*/) {}
    /// An OS communication channel (queue, semaphore) performed `op` — a
    /// static string like "send"/"recv"/"acquire"/"release" — reported by the
    /// channel layer via note_channel_op().
    virtual void on_channel_op(const std::string& /*channel*/, const char* /*op*/,
                               SimTime /*now*/) {}
    /// A periodic task completed a cycle `overrun` past its absolute deadline
    /// and its effective MissPolicy is not Ignore. Raised from task_endcycle()
    /// before the recovery action runs.
    virtual void on_deadline_miss(const Task& /*t*/, SimTime /*overrun*/,
                                  SimTime /*now*/) {}
    /// `t`'s watchdog expired (before its recovery action runs).
    virtual void on_watchdog(const Task& /*t*/, SimTime /*now*/) {}
    /// `t` is being restarted via task_restart(); fires before the stats reset
    /// so observers can snapshot the dying incarnation.
    virtual void on_task_restart(const Task& /*t*/, SimTime /*now*/) {}
    /// `t` crashed at dispatch (fault injection); fires before teardown.
    virtual void on_task_crash(const Task& /*t*/, SimTime /*now*/) {}
    /// The observed core is being destroyed. Observers that can outlive the
    /// core (e.g. an obs::RtosAnalytics whose results are read after the
    /// model run returns) drop their core reference here instead of
    /// detaching in their destructor.
    virtual void on_core_teardown() {}
};

/// What fault injection does to one interrupt delivery (FaultHook::isr_fate).
struct IsrFate {
    bool deliver = true;      ///< false: drop the interrupt entirely
    SimTime delay{};          ///< non-zero: deliver after this much simulated time
    unsigned extra_fires = 0; ///< spurious repeats delivered right after the real one
};

/// Fault-injection hook consulted by the core at well-defined points. The
/// default implementation of every method is a no-op, and with no hook
/// installed (the default) the core's behavior is bit-for-bit unchanged —
/// conformance and replay baselines stay valid. slm::fault::FaultInjector is
/// the seeded, plan-driven implementation; tests may install ad-hoc ones.
class FaultHook {
public:
    virtual ~FaultHook() = default;

    /// Transform a time_wait() execution delay (scale/jitter/overrun).
    virtual SimTime transform_exec(const Task& /*t*/, SimTime dt) { return dt; }
    /// Decide the fate of an interrupt about to be delivered via isr_deliver().
    virtual IsrFate isr_fate(const std::string& /*irq_name*/) { return {}; }
    /// True to crash `t` at this dispatch (task dies as if its code faulted).
    virtual bool crash_at_dispatch(const Task& /*t*/) { return false; }
    /// Extra execution time `t` burns right after acquiring `resource`
    /// (models a stalled mutex holder). Zero = no stall.
    virtual SimTime stall_after_acquire(const Task& /*t*/,
                                        const std::string& /*resource*/) {
        return {};
    }
};

/// Core construction parameters (shared by every personality).
struct RtosConfig {
    /// Name of the processing element this core runs on; used as the
    /// `cpu` field of trace records.
    std::string cpu_name = "cpu0";
    /// Default scheduling policy (can be overridden by start(policy)).
    SchedPolicy policy = SchedPolicy::Priority;
    /// Round-robin time slice.
    SimTime quantum = milliseconds(1);
    /// Modeled cost of a context switch, charged to the incoming task.
    SimTime context_switch_overhead{};
    /// Chop time_wait() delays into chunks of at most this size so preemption
    /// can take effect earlier (paper §4.3: "the accuracy of preemption
    /// results is limited by the granularity of task delay models"). Zero
    /// means no chopping: one chunk per time_wait call.
    SimTime preemption_granularity{};
    /// Heterogeneous-PE execution scaling (the paper's Fig. 1 flow maps tasks
    /// onto candidate architectures whose PEs run at different raw speeds): a
    /// nominal execution delay dt passed to time_wait() is charged as
    /// dt * speed_den / speed_num on this core. speed_num/speed_den > 1
    /// models a faster PE (a DSP charging half the time for the same nominal
    /// work at 2/1), < 1 a slower one. Exact integer arithmetic keeps runs
    /// deterministic, and the 1/1 default is bit-identical to the unscaled
    /// core. Time with an externally fixed duration (bus occupancy, device
    /// I/O) goes through io_wait(), which never scales.
    std::uint32_t speed_num = 1;
    std::uint32_t speed_den = 1;
    /// Optional trace sink for task states, context switches, and IRQs. Any
    /// trace::TraceSink works: a trace::TraceRecorder for derived views and
    /// text exporters, or an obs::BinaryTraceSink when recording overhead on
    /// the hot path matters (convert to a TraceRecorder afterwards). Online
    /// per-task analytics do not need a tracer at all — attach an
    /// obs::RtosAnalytics through OsCore::add_observer() instead.
    trace::TraceSink* tracer = nullptr;
    /// Deadline-miss policy for tasks that do not set TaskParams::miss_policy.
    /// Ignore preserves the pre-recovery behavior exactly.
    MissPolicy default_miss_policy = MissPolicy::Ignore;
};

/// Core-instance statistics.
struct RtosStats {
    std::uint64_t context_switches = 0;  ///< dispatches where the task changed
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t isr_entries = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t syscalls = 0;  ///< RTOS interface invocations
    /// event_notify() calls that found no waiting task. RTOS events are lossy
    /// by design, so a nonzero count is not itself a bug (semaphore releases
    /// with no contender land here) — but for pure-event protocols it flags a
    /// signal the intended receiver never saw. The schedule explorer can
    /// treat it as a safety property (ExploreConfig::check_lost_signals).
    std::uint64_t lost_notifies = 0;
    std::uint64_t crashes = 0;         ///< fault-injected task crashes (crash_at_dispatch)
    std::uint64_t restarts = 0;        ///< task_restart() invocations
    std::uint64_t watchdog_fires = 0;  ///< expired per-task watchdogs
    std::uint64_t jobs_skipped = 0;    ///< releases dropped by MissPolicy::SkipJob
};

/// The OS core: the bottom layer of the layered RTOS model.
///
/// One instance models the kernel of one processing element. It owns task
/// lifecycle (TCBs, states, the ready queue), the context-handoff protocol
/// (per-task dispatch events serializing tasks over the SLDL kernel), the
/// reschedule protocol (deferred preemption at delay-step boundaries,
/// paper Fig. 8(b): t4 → t4'), events, and time services. It knows nothing
/// about API flavors: *personalities* (the paper-style RtosModel, the
/// ITRON-style ItronOs) are thin veneers mapping their standard's call set
/// onto this class, and the *services* layer (os_channels.hpp) builds
/// stateful synchronization from the narrow service interface below.
///
/// Infrastructure — schedule exploration, Gantt tracing, deadlock checking,
/// architecture modeling — targets OsCore, so every personality inherits it
/// for free.
class OsCore {
public:
    explicit OsCore(sim::Kernel& kernel, RtosConfig cfg = {});
    ~OsCore();

    OsCore(const OsCore&) = delete;
    OsCore& operator=(const OsCore&) = delete;

    // ---- operating system management ----

    /// Reset kernel data structures. Must be called before any task_create.
    void init();

    /// Begin multi-task scheduling with the configured policy.
    void start();
    /// Begin multi-task scheduling with an explicit policy (paper signature).
    void start(SchedPolicy policy);

    /// Notify the kernel that an interrupt service routine has finished; the
    /// scheduler runs and may dispatch a task the ISR made ready.
    void interrupt_return();

    /// Bracket an ISR body (bookkeeping + trace). The arch layer calls
    /// isr_enter() when an interrupt fires; models written by hand may too.
    void isr_enter(const std::string& irq_name);

    /// Deliver one interrupt through the fault-injection layer: with no
    /// FaultHook installed this is exactly isr_enter(); handler();
    /// interrupt_return(). A hook may drop the delivery, defer it by a
    /// kernel one-shot timer, or replay it spuriously. The preferred ISR
    /// idiom for architecture models (the arch layer uses it).
    void isr_deliver(const std::string& irq_name, std::function<void()> handler);

    // ---- task management ----

    /// Allocate a task control block. The returned handle is bound to an SLDL
    /// process by the first task_activate() call made from that process.
    Task* task_create(TaskParams params);

    /// Terminate the calling task and dispatch the next one.
    void task_terminate();

    /// Suspend the calling task until another task task_activate()s it.
    void task_sleep();

    /// Dual purpose (paper §4.1/§4.4):
    ///  - called from the task's own (unbound) process: binds the process to
    ///    the TCB, enters the ready queue, and blocks until dispatched;
    ///  - called on a Suspended task from elsewhere: moves it back to ready.
    void task_activate(Task* t);

    /// Periodic tasks: end the current cycle, wait for the next release.
    void task_endcycle();

    /// Forcibly terminate another task (or the caller, = task_terminate).
    void task_kill(Task* t);

    /// Register a re-entrant body for `t`, enabling task_start()/task_restart().
    /// The body is the task's whole lifetime (task_activate through the final
    /// work); task_start's wrapper appends the task_terminate().
    void task_set_body(Task* t, std::function<void()> body);

    /// Spawn the SLDL process that runs `t`'s registered body: the wrapper
    /// performs task_activate(t); body(); task_terminate(). `process_name`
    /// defaults to the task name. Not itself a modeled syscall — it matches
    /// the hand-written spawn idiom byte-for-byte.
    sim::Process* task_start(Task* t, std::string process_name = {});

    /// Tear down `t`'s current incarnation and re-enter its registered body
    /// from the top: cleanup hooks run (mutexes force-released with PI/PC
    /// state restored), per-task stats reset (TaskStats::restarts survives),
    /// the old process is killed and a fresh one spawned. Works on any state
    /// including Terminated (revive). Calling it on self unwinds immediately.
    void task_restart(Task* t);

    // ---- watchdogs ----
    //
    // A per-task one-shot countdown built on the kernel's post_at timers.
    // arm() configures and starts it; kick() restarts the countdown (the
    // healthy-task heartbeat); expiry bumps the watchdog counters, raises
    // on_watchdog, and applies `action` (Restart revives even a crashed or
    // terminated task — crash_at_dispatch deliberately leaves the watchdog
    // pending so it doubles as the crash-recovery mechanism).

    void watchdog_arm(Task* t, SimTime timeout, MissPolicy action);
    /// Restart the countdown from now. Requires a prior watchdog_arm().
    void watchdog_kick(Task* t);
    /// Cancel the countdown and forget the configuration.
    void watchdog_disarm(Task* t);
    /// True while a countdown is pending (armed and neither fired nor kicked-off).
    [[nodiscard]] bool watchdog_armed(const Task* t) const;

    /// Change a task's base priority at runtime (smaller = higher). The
    /// scheduler re-evaluates immediately; lowering the caller's own priority
    /// may switch away inside this call.
    void task_set_priority(Task* t, int priority);

    /// Suspend the calling task for dynamic fork: call before an SLDL `par`
    /// that spawns child tasks. Returns the suspended task handle.
    Task* par_start();

    /// Resume the parent task after the SLDL `par` joined.
    void par_end(Task* parent);

    // ---- event handling ----

    OsEvent* event_new(std::string name = {});
    void event_del(OsEvent* e);
    /// Block the calling task until the event is notified.
    void event_wait(OsEvent* e);
    /// Block until the event is notified or `timeout` elapses. Returns true
    /// if the event arrived; false if the task timed out (it then re-entered
    /// the ready queue and was redispatched normally).
    [[nodiscard]] bool event_wait_timeout(OsEvent* e, SimTime timeout);
    /// Move all tasks waiting on `e` to ready; reschedule.
    void event_notify(OsEvent* e);

    // ---- time modeling ----

    /// Model `dt` of task execution time; replaces `waitfor` in refined tasks
    /// (the wrapper that lets the RTOS kernel reschedule when time increases).
    /// `dt` is *nominal* work: the charged time is scaled_exec(dt), so a task
    /// migrated to a faster/slower PE (RtosConfig::speed_num/speed_den)
    /// charges proportionally less/more without touching its model source.
    void time_wait(SimTime dt);

    /// Model `dt` of task-occupied time whose duration is fixed externally —
    /// bus occupancy, device I/O — and therefore must NOT scale with the PE
    /// speed. Identical to time_wait() (preemptible chunks, exec accounting,
    /// fault transform) except that scaled_exec() is skipped; on a 1/1 core
    /// the two calls are bit-identical.
    void io_wait(SimTime dt);

    /// The execution time this core charges for `nominal` work:
    /// nominal * speed_den / speed_num, in exact 128-bit intermediate
    /// arithmetic (truncating division).
    [[nodiscard]] SimTime scaled_exec(SimTime nominal) const;

    /// Suspend the calling task for `dt` of simulated time *without consuming
    /// CPU* (the classic RTOS delay()/taskDelay() service): other tasks run
    /// during the sleep, and the caller re-enters the ready queue afterwards.
    void task_delay(SimTime dt);

    // ---- service interface ----
    //
    // The narrow surface the services layer (os_channels.hpp) builds on, in
    // addition to the event operations above. Priority boosts model the
    // inheritance/ceiling protocols of OsMutex without letting services reach
    // into TCB internals: a boost never lowers the effective priority, and
    // restore_priority() reinstates a level previously read with
    // priority_boost() (the mutex save/restore discipline).

    /// Current boost level of `t` (numeric level; INT_MAX = no boost).
    [[nodiscard]] int priority_boost(const Task* t) const;
    /// Raise `t`'s boost to `priority` if that is higher (numerically lower);
    /// re-sorts the ready queue and reschedules immediately. No-op otherwise.
    void boost_priority(Task* t, int priority);
    /// Reinstate a boost level previously read with priority_boost(). Takes
    /// effect at the next reschedule (the releasing service is expected to
    /// trigger one, e.g. via event_notify).
    void restore_priority(Task* t, int saved);

    /// Resource-contention notifications, forwarded verbatim to OsObservers.
    /// The services layer (OsMutex) reports who blocks on whom and for how
    /// long, so online analytics can measure blocking time and walk blocking
    /// chains without reaching into channel internals. Purely observational:
    /// calling or omitting them never changes scheduling.
    void note_resource_block(const Task* blocked, const Task* holder,
                             const std::string& resource);
    void note_resource_acquire(const Task* t, const std::string& resource,
                               SimTime waited);
    void note_resource_release(const Task* t, const std::string& resource);
    /// Channel-operation notification (OsQueue/OsSemaphore), forwarded to
    /// OsObservers like the resource notes above. `op` must be a static
    /// string ("send", "recv", "acquire", "release").
    void note_channel_op(const std::string& channel, const char* op);

    /// Register a hook run whenever a task is torn down abnormally
    /// (task_kill, task_restart, fault-injected crash) — services use it to
    /// force-release resources the dying task holds (OsMutex registers one in
    /// its constructor). Returns an id for remove_task_cleanup(). Hooks run
    /// after the task has left every scheduler queue; event_notify calls they
    /// make defer their preemption to the caller's next RTOS boundary, the
    /// same discipline task_kill always had.
    std::uint64_t add_task_cleanup(std::function<void(Task*)> fn);
    void remove_task_cleanup(std::uint64_t id);

    /// Install the fault-injection hook (nullptr = none, the default; the
    /// no-hook path is bit-identical to the pre-fault core).
    void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
    [[nodiscard]] FaultHook* fault_hook() const { return fault_hook_; }

    /// The deadline-miss policy in effect for `t` (task override or config default).
    [[nodiscard]] MissPolicy effective_miss_policy(const Task& t) const {
        return t.params().miss_policy.value_or(cfg_.default_miss_policy);
    }

    // ---- introspection ----

    /// Attach an instrumentation observer (callbacks in attachment order).
    void add_observer(OsObserver* obs);
    void remove_observer(OsObserver* obs);

    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
    [[nodiscard]] const RtosConfig& config() const { return cfg_; }
    [[nodiscard]] const RtosStats& stats() const { return stats_; }
    [[nodiscard]] const SchedulerPolicy& policy() const { return *policy_; }
    [[nodiscard]] Task* running_task() const { return running_; }
    [[nodiscard]] bool started() const { return started_; }
    /// The task bound to the calling SLDL process (nullptr if unbound).
    [[nodiscard]] Task* self() const;
    [[nodiscard]] std::vector<const Task*> tasks() const;
    /// Sum of all tasks' modeled execution time (CPU busy time).
    [[nodiscard]] SimTime busy_time() const;

private:
    void enqueue_ready(Task* t);
    void remove_ready(Task* t);
    /// Re-sort a Ready task whose scheduling key changed (priority boost /
    /// task_set_priority); no-op for tasks in other states.
    void requeue_if_ready(Task* t);
    void set_task_state(Task* t, TaskState s);
    /// Remove and return the next task to dispatch. Equals ready_->pop()
    /// unless a sim::ScheduleController is installed on the kernel, in which
    /// case policy-equivalent ties become a TaskDispatch choice point.
    Task* pick_next();
    void dispatch(Task* t);
    void apply_switch_cost(Task* t);
    void schedule();
    void maybe_yield();
    void rotate_quantum();
    void wait_dispatch(Task* t);
    /// Crash check + switch cost, run by the task that just won the CPU.
    void on_dispatched(Task* t);
    [[nodiscard]] Task* require_running_self(const char* what);
    /// Returns true when the completion missed the absolute deadline.
    bool record_completion(Task* t);
    void reschedule_after_boost();
    /// The time_wait() charging loop (quantum + granularity chopping) without
    /// the syscall bookkeeping; also used to model injected stalls.
    void exec_charge(Task* t, SimTime dt);
    /// Kill the dispatched task as if its code faulted. Unwinds the caller.
    [[noreturn]] void crash_running(Task* t);
    void deliver_isr_now(const std::string& irq_name,
                         const std::function<void()>& handler, unsigned extra);
    void spawn_task_process(Task* t);
    void run_task_cleanup(Task* t);
    void watchdog_schedule(Task* t);
    void watchdog_cancel_internal(Task* t);
    void watchdog_fire(Task* t, std::uint64_t gen);

    sim::Kernel& kernel_;
    RtosConfig cfg_;
    std::unique_ptr<SchedulerPolicy> policy_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::vector<std::unique_ptr<OsEvent>> events_;
    std::unique_ptr<ReadyQueue> ready_;
    std::unordered_map<const sim::Process*, Task*> by_process_;
    Task* running_ = nullptr;
    Task* last_dispatched_ = nullptr;
    bool reschedule_pending_ = false;
    bool started_ = false;
    std::uint64_t arrival_counter_ = 0;
    SimTime quantum_used_{};
    std::vector<Task*> ties_scratch_;  ///< reused by pick_next()
    std::vector<OsObserver*> observers_;
    std::vector<std::pair<std::uint64_t, std::function<void(Task*)>>> cleanup_hooks_;
    std::uint64_t next_cleanup_id_ = 1;
    FaultHook* fault_hook_ = nullptr;
    /// While set, event_notify() defers its caller-side maybe_yield — cleanup
    /// hooks run mid-teardown and must not switch away with the dying task
    /// half-dismantled (the pending reschedule still lands at the caller's
    /// next RTOS boundary, task_kill's long-standing discipline).
    bool in_teardown_ = false;
    RtosStats stats_;
};

}  // namespace slm::rtos
