#pragma once

#include <string>

#include "rtos/core.hpp"

namespace slm::rtos {

/// The abstract RTOS model (the paper's Fig. 4 interface) — the *default
/// personality* of the layered OS architecture.
///
/// All mechanism lives in OsCore: task lifecycle, the context-handoff and
/// reschedule protocols, events, and time services. This class is the thin
/// API veneer that presents that mechanism with the paper's exact call set —
/// most calls are inherited unchanged because the core's primitives were
/// distilled from them; the paper-specific surface is the positional
/// task_create() signature below. A second personality (ITRON-style, see
/// rtos/itron.hpp) maps a different standard onto the same core, and both
/// automatically share schedule exploration, Gantt tracing, and deadlock
/// checking because that infrastructure targets OsCore.
///
/// One instance models the RTOS of one processing element. Tasks are SLDL
/// processes refined to use this interface instead of raw kernel primitives:
/// `waitfor` becomes time_wait(), `wait`/`notify` become event_wait()/
/// event_notify(), and `par` is bracketed by par_start()/par_end(). The model
/// serializes its tasks over the SLDL kernel — at any simulated instant at
/// most one task of this instance is executing — by blocking all but the
/// dispatched task on per-task dispatch events.
///
/// Preemption semantics follow the paper: when an interrupt makes a
/// higher-priority task ready while the running task is inside a time_wait
/// delay step, the task switch happens at the end of that discrete step
/// (Fig. 8(b), t4 → t4'). Chopping steps via RtosConfig::preemption_granularity
/// trades simulation speed for preemption accuracy.
class RtosModel : public OsCore {
public:
    explicit RtosModel(sim::Kernel& kernel, RtosConfig cfg = {})
        : OsCore(kernel, std::move(cfg)) {}

    using OsCore::task_create;

    /// Allocate a task control block (the paper's positional signature; the
    /// core takes a TaskParams aggregate). The returned handle is bound to an
    /// SLDL process by the first task_activate() call made from that process.
    Task* task_create(std::string name, TaskType type, SimTime period, SimTime wcet,
                      int priority = 0, SimTime deadline = {}) {
        TaskParams p;
        p.name = std::move(name);
        p.type = type;
        p.period = period;
        p.wcet = wcet;
        p.priority = priority;
        p.deadline = deadline;
        return OsCore::task_create(std::move(p));
    }
};

}  // namespace slm::rtos
