#include "rtos/scheduler.hpp"

#include "rtos/rtos.hpp"
#include "sim/assert.hpp"

namespace slm::rtos {

const char* to_string(SchedPolicy p) {
    switch (p) {
        case SchedPolicy::Fifo: return "FIFO";
        case SchedPolicy::Priority: return "Priority";
        case SchedPolicy::RoundRobin: return "RoundRobin";
        case SchedPolicy::Edf: return "EDF";
        case SchedPolicy::Rms: return "RMS";
    }
    return "?";
}

namespace {

/// Best ready task by comparator; `less(a, b)` = "a should run before b".
template <typename Less>
Task* pick_best(const std::vector<Task*>& ready, Less less) {
    Task* best = nullptr;
    for (Task* t : ready) {
        if (best == nullptr || less(t, best)) {
            best = t;
        }
    }
    return best;
}

class FifoPolicy final : public SchedulerPolicy {
public:
    const char* name() const override { return "FIFO"; }
    Task* pick(const std::vector<Task*>& ready) const override {
        return pick_best(ready, [](const Task* a, const Task* b) {
            return a->arrival_seq() < b->arrival_seq();
        });
    }
    bool preempts(const Task&, const Task&) const override { return false; }
};

class PriorityPolicy : public SchedulerPolicy {
public:
    const char* name() const override { return "Priority"; }
    Task* pick(const std::vector<Task*>& ready) const override {
        return pick_best(ready, [](const Task* a, const Task* b) {
            if (a->effective_priority() != b->effective_priority()) {
                return a->effective_priority() < b->effective_priority();
            }
            return a->arrival_seq() < b->arrival_seq();
        });
    }
    bool preempts(const Task& cand, const Task& running) const override {
        return cand.effective_priority() < running.effective_priority();
    }
};

class RoundRobinPolicy final : public PriorityPolicy {
public:
    explicit RoundRobinPolicy(SimTime quantum) : quantum_(quantum) {
        SLM_ASSERT(!quantum.is_zero(), "round-robin needs a non-zero quantum");
    }
    const char* name() const override { return "RoundRobin"; }
    SimTime quantum() const override { return quantum_; }

private:
    SimTime quantum_;
};

class EdfPolicy final : public SchedulerPolicy {
public:
    const char* name() const override { return "EDF"; }
    Task* pick(const std::vector<Task*>& ready) const override {
        return pick_best(ready, [](const Task* a, const Task* b) {
            if (a->absolute_deadline() != b->absolute_deadline()) {
                return a->absolute_deadline() < b->absolute_deadline();
            }
            return a->arrival_seq() < b->arrival_seq();
        });
    }
    bool preempts(const Task& cand, const Task& running) const override {
        return cand.absolute_deadline() < running.absolute_deadline();
    }
};

class RmsPolicy final : public SchedulerPolicy {
public:
    const char* name() const override { return "RMS"; }
    Task* pick(const std::vector<Task*>& ready) const override {
        return pick_best(ready, [](const Task* a, const Task* b) {
            if (key(*a) != key(*b)) {
                return key(*a) < key(*b);
            }
            return a->arrival_seq() < b->arrival_seq();
        });
    }
    bool preempts(const Task& cand, const Task& running) const override {
        return key(cand) < key(running);
    }

private:
    /// Shorter period = higher rate = higher priority. Aperiodic tasks
    /// (no period) run in the background.
    static SimTime key(const Task& t) {
        return t.params().type == TaskType::Periodic ? t.params().period : SimTime::max();
    }
};

}  // namespace

std::unique_ptr<SchedulerPolicy> make_policy(SchedPolicy p, SimTime quantum) {
    switch (p) {
        case SchedPolicy::Fifo: return std::make_unique<FifoPolicy>();
        case SchedPolicy::Priority: return std::make_unique<PriorityPolicy>();
        case SchedPolicy::RoundRobin: return std::make_unique<RoundRobinPolicy>(quantum);
        case SchedPolicy::Edf: return std::make_unique<EdfPolicy>();
        case SchedPolicy::Rms: return std::make_unique<RmsPolicy>();
    }
    SLM_ASSERT(false, "unknown scheduling policy");
    return nullptr;
}

}  // namespace slm::rtos
