#include "rtos/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "rtos/rtos.hpp"
#include "sim/assert.hpp"

namespace slm::rtos {

const char* to_string(SchedPolicy p) {
    switch (p) {
        case SchedPolicy::Fifo: return "FIFO";
        case SchedPolicy::Priority: return "Priority";
        case SchedPolicy::RoundRobin: return "RoundRobin";
        case SchedPolicy::Edf: return "EDF";
        case SchedPolicy::Rms: return "RMS";
    }
    return "?";
}

ReadyLink& ReadyQueue::link(Task& t) {
    return t.rq_link_;
}

namespace {

// ---- ready queues ----

/// FIFO order: arrival_seq is monotone in push order, so a plain deque is
/// already sorted. O(1) push/pop. Key changes (priority boosts) cannot affect
/// FIFO order, so requeue() keeps the task in place.
class FifoQueue final : public ReadyQueue {
public:
    void push(Task* t) override {
        link(*t).queued = true;
        // Monotone arrival_seq makes push_back sorted; policy migration at
        // start() may replay tasks out of arrival order.
        if (q_.empty() || q_.back()->arrival_seq() < t->arrival_seq()) {
            q_.push_back(t);
        } else {
            const auto it = std::upper_bound(
                q_.begin(), q_.end(), t->arrival_seq(),
                [](std::uint64_t seq, const Task* q) { return seq < q->arrival_seq(); });
            q_.insert(it, t);
        }
    }
    Task* peek() const override { return q_.empty() ? nullptr : q_.front(); }
    Task* pop() override {
        SLM_ASSERT(!q_.empty(), "pop() on an empty ready queue");
        Task* t = q_.front();
        q_.pop_front();
        link(*t).queued = false;
        return t;
    }
    void erase(Task* t) override {
        if (link(*t).queued) {
            std::erase(q_, t);
            link(*t).queued = false;
        }
    }
    void requeue(Task*) override {}
    bool empty() const override { return q_.empty(); }
    std::size_t size() const override { return q_.size(); }
    void ties(std::vector<Task*>& out) const override {
        // FIFO's dispatch order is total (arrival_seq is unique): no ties.
        if (!q_.empty()) {
            out.push_back(q_.front());
        }
    }

private:
    std::deque<Task*> q_;
};

/// Priority buckets: a map keyed by effective priority (smaller = higher),
/// FIFO by arrival_seq inside each bucket. Dispatch is O(log P) in the number
/// of *distinct* priority levels — effectively O(1) for real task sets —
/// instead of O(n) in ready tasks. The insertion key is remembered in the
/// intrusive link so erase() finds the right bucket even after the task's
/// effective priority changed (requeue() re-inserts under the new key,
/// keeping arrival order within the destination bucket).
class PriorityBucketQueue final : public ReadyQueue {
public:
    void push(Task* t) override {
        const int key = t->effective_priority();
        auto& bucket = buckets_[key];
        // Monotone arrival_seq makes push_back sorted; a requeue()ed task may
        // carry an older seq and belongs further forward.
        if (bucket.empty() || bucket.back()->arrival_seq() < t->arrival_seq()) {
            bucket.push_back(t);
        } else {
            const auto it = std::upper_bound(
                bucket.begin(), bucket.end(), t->arrival_seq(),
                [](std::uint64_t seq, const Task* q) { return seq < q->arrival_seq(); });
            bucket.insert(it, t);
        }
        link(*t).bucket = key;
        link(*t).queued = true;
        ++size_;
    }
    Task* peek() const override {
        return buckets_.empty() ? nullptr : buckets_.begin()->second.front();
    }
    Task* pop() override {
        SLM_ASSERT(!buckets_.empty(), "pop() on an empty ready queue");
        const auto it = buckets_.begin();
        Task* t = it->second.front();
        it->second.pop_front();
        if (it->second.empty()) {
            buckets_.erase(it);
        }
        link(*t).queued = false;
        --size_;
        return t;
    }
    void erase(Task* t) override {
        if (!link(*t).queued) {
            return;
        }
        const auto it = buckets_.find(link(*t).bucket);
        SLM_ASSERT(it != buckets_.end(), "ready task lost its priority bucket");
        std::erase(it->second, t);
        if (it->second.empty()) {
            buckets_.erase(it);
        }
        link(*t).queued = false;
        --size_;
    }
    void requeue(Task* t) override {
        if (link(*t).queued && link(*t).bucket != t->effective_priority()) {
            erase(t);
            push(t);
        }
    }
    bool empty() const override { return buckets_.empty(); }
    std::size_t size() const override { return size_; }
    void ties(std::vector<Task*>& out) const override {
        // Every task in the best bucket shares the dispatch key; the bucket
        // deque is already in arrival order with pop()'s choice at the front.
        if (!buckets_.empty()) {
            const auto& bucket = buckets_.begin()->second;
            out.insert(out.end(), bucket.begin(), bucket.end());
        }
    }

private:
    std::map<int, std::deque<Task*>> buckets_;
    std::size_t size_ = 0;
};

/// Binary min-heap keyed by a policy-supplied SimTime (absolute deadline for
/// EDF, period for RMS) with arrival_seq as tie-break. O(log n) push/pop,
/// O(log n) erase via the intrusive heap position.
template <typename KeyFn>
class TimeHeapQueue final : public ReadyQueue {
public:
    explicit TimeHeapQueue(KeyFn key) : key_(key) {}

    void push(Task* t) override {
        link(*t).queued = true;
        link(*t).heap_pos = heap_.size();
        heap_.push_back(t);
        sift_up(heap_.size() - 1);
    }
    Task* peek() const override { return heap_.empty() ? nullptr : heap_.front(); }
    Task* pop() override {
        SLM_ASSERT(!heap_.empty(), "pop() on an empty ready queue");
        Task* t = heap_.front();
        remove_at(0);
        return t;
    }
    void erase(Task* t) override {
        if (link(*t).queued) {
            remove_at(link(*t).heap_pos);
        }
    }
    void requeue(Task* t) override {
        if (link(*t).queued) {
            sift_up(link(*t).heap_pos);
            sift_down(link(*t).heap_pos);
        }
    }
    bool empty() const override { return heap_.empty(); }
    std::size_t size() const override { return heap_.size(); }
    void ties(std::vector<Task*>& out) const override {
        if (heap_.empty()) {
            return;
        }
        // All tasks sharing the minimum key are legal dispatches. The heap
        // array has no useful order among them, so sort by arrival_seq — the
        // heap's own tie-break puts the earliest arrival at the top, so out[0]
        // matches pop().
        const SimTime best = key_(*heap_.front());
        const std::size_t first = out.size();
        for (Task* t : heap_) {
            if (key_(*t) == best) {
                out.push_back(t);
            }
        }
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
                  [](const Task* a, const Task* b) {
                      return a->arrival_seq() < b->arrival_seq();
                  });
    }

private:
    bool before(const Task* a, const Task* b) const {
        const SimTime ka = key_(*a);
        const SimTime kb = key_(*b);
        if (ka != kb) {
            return ka < kb;
        }
        return a->arrival_seq() < b->arrival_seq();
    }
    void place(Task* t, std::size_t pos) {
        heap_[pos] = t;
        link(*t).heap_pos = pos;
    }
    void sift_up(std::size_t pos) {
        while (pos > 0) {
            const std::size_t parent = (pos - 1) / 2;
            if (!before(heap_[pos], heap_[parent])) {
                break;
            }
            Task* tmp = heap_[pos];
            place(heap_[parent], pos);
            place(tmp, parent);
            pos = parent;
        }
    }
    void sift_down(std::size_t pos) {
        for (;;) {
            std::size_t best = pos;
            const std::size_t l = 2 * pos + 1;
            const std::size_t r = 2 * pos + 2;
            if (l < heap_.size() && before(heap_[l], heap_[best])) {
                best = l;
            }
            if (r < heap_.size() && before(heap_[r], heap_[best])) {
                best = r;
            }
            if (best == pos) {
                return;
            }
            Task* tmp = heap_[pos];
            place(heap_[best], pos);
            place(tmp, best);
            pos = best;
        }
    }
    void remove_at(std::size_t pos) {
        SLM_ASSERT(pos < heap_.size(), "heap position out of range");
        link(*heap_[pos]).queued = false;
        link(*heap_[pos]).heap_pos = ReadyLink::npos;
        Task* last = heap_.back();
        heap_.pop_back();
        if (pos < heap_.size()) {
            place(last, pos);
            sift_down(pos);
            sift_up(link(*last).heap_pos);
        }
    }

    KeyFn key_;
    std::vector<Task*> heap_;
};

template <typename KeyFn>
std::unique_ptr<ReadyQueue> make_time_heap(KeyFn key) {
    return std::make_unique<TimeHeapQueue<KeyFn>>(key);
}

// ---- policies ----

class FifoPolicy final : public SchedulerPolicy {
public:
    const char* name() const override { return "FIFO"; }
    std::unique_ptr<ReadyQueue> make_queue() const override {
        return std::make_unique<FifoQueue>();
    }
    bool preempts(const Task&, const Task&) const override { return false; }
};

class PriorityPolicy : public SchedulerPolicy {
public:
    const char* name() const override { return "Priority"; }
    std::unique_ptr<ReadyQueue> make_queue() const override {
        return std::make_unique<PriorityBucketQueue>();
    }
    bool preempts(const Task& cand, const Task& running) const override {
        return cand.effective_priority() < running.effective_priority();
    }
};

class RoundRobinPolicy final : public PriorityPolicy {
public:
    explicit RoundRobinPolicy(SimTime quantum) : quantum_(quantum) {
        SLM_ASSERT(!quantum.is_zero(), "round-robin needs a non-zero quantum");
    }
    const char* name() const override { return "RoundRobin"; }
    SimTime quantum() const override { return quantum_; }

private:
    SimTime quantum_;
};

class EdfPolicy final : public SchedulerPolicy {
public:
    const char* name() const override { return "EDF"; }
    std::unique_ptr<ReadyQueue> make_queue() const override {
        return make_time_heap([](const Task& t) { return t.absolute_deadline(); });
    }
    bool preempts(const Task& cand, const Task& running) const override {
        return cand.absolute_deadline() < running.absolute_deadline();
    }
};

class RmsPolicy final : public SchedulerPolicy {
public:
    const char* name() const override { return "RMS"; }
    std::unique_ptr<ReadyQueue> make_queue() const override {
        return make_time_heap([](const Task& t) { return key(t); });
    }
    bool preempts(const Task& cand, const Task& running) const override {
        return key(cand) < key(running);
    }

private:
    /// Shorter period = higher rate = higher priority. Aperiodic tasks
    /// (no period) run in the background.
    static SimTime key(const Task& t) {
        return t.params().type == TaskType::Periodic ? t.params().period : SimTime::max();
    }
};

}  // namespace

std::unique_ptr<SchedulerPolicy> make_policy(SchedPolicy p, SimTime quantum) {
    switch (p) {
        case SchedPolicy::Fifo: return std::make_unique<FifoPolicy>();
        case SchedPolicy::Priority: return std::make_unique<PriorityPolicy>();
        case SchedPolicy::RoundRobin: return std::make_unique<RoundRobinPolicy>(quantum);
        case SchedPolicy::Edf: return std::make_unique<EdfPolicy>();
        case SchedPolicy::Rms: return std::make_unique<RmsPolicy>();
    }
    SLM_ASSERT(false, "unknown scheduling policy");
    return nullptr;
}

}  // namespace slm::rtos
