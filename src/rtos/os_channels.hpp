#pragma once

#include <algorithm>
#include <deque>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "rtos/core.hpp"
#include "sim/assert.hpp"

namespace slm::rtos {

/// The *services* layer of the layered OS architecture: stateful
/// synchronization and message passing built on the OsCore service interface
/// (events + priority boosts) — the result of the paper's synchronization
/// refinement (Fig. 7) applied to the spec-model channels. Identical protocol
/// logic, but all blocking goes through OsCore::event_wait/event_notify so
/// the RTOS task states stay correct and the scheduler can run at every
/// synchronization point. Because services bind to the core, every API
/// personality (paper-style RtosModel, ITRON-style ItronOs) shares them.
///
/// Channel operations themselves consume no modeled CPU time; computation and
/// communication delays are modeled explicitly with time_wait() in the tasks.

namespace detail {

/// Shared deadline/re-arm retry loop for timed acquires (OsSemaphore::
/// acquire_for, OsQueue::receive_for): retry `try_take` until it succeeds or
/// `deadline` passes, blocking on `evt` for the remaining time between
/// attempts. A timed-out wait re-checks `try_take` once more because the
/// token may have arrived in the very instant the timeout fired (the
/// releasing task and the timeout land in the same delta cycle); that
/// boundary is pinned by tests/test_os_channels.cpp.
template <typename TryFn>
[[nodiscard]] bool acquire_until(OsCore& os, OsEvent* evt, SimTime deadline,
                                 TryFn&& try_take) {
    for (;;) {
        if (try_take()) {
            return true;
        }
        const SimTime remaining = deadline - os.kernel().now();
        if (remaining.is_zero()) {
            return false;
        }
        if (!os.event_wait_timeout(evt, remaining)) {
            return try_take();  // token arrived exactly at the timeout instant?
        }
    }
}

}  // namespace detail

/// Counting semaphore over RTOS events (the `sem` channel of Fig. 3 that an
/// ISR releases to signal the bus driver task).
class OsSemaphore {
public:
    OsSemaphore(OsCore& os, unsigned initial, std::string name = "sem")
        : os_(os), evt_(os.event_new(name + ".evt")), count_(initial),
          name_(std::move(name)) {}

    void acquire() {
        while (count_ == 0) {
            os_.event_wait(evt_);
        }
        --count_;
        os_.note_channel_op(name_, "acquire");
    }

    [[nodiscard]] bool try_acquire() {
        if (count_ == 0) {
            return false;
        }
        --count_;
        os_.note_channel_op(name_, "acquire");
        return true;
    }

    /// P() with a timeout: returns false if no token arrived within `timeout`.
    [[nodiscard]] bool acquire_for(slm::SimTime timeout) {
        return detail::acquire_until(os_, evt_, os_.kernel().now() + timeout,
                                     [this] { return try_acquire(); });
    }

    /// Callable from tasks and from ISR context.
    void release() {
        ++count_;
        os_.note_channel_op(name_, "release");
        os_.event_notify(evt_);
    }

    [[nodiscard]] unsigned count() const { return count_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    OsCore& os_;
    OsEvent* evt_;
    unsigned count_;
    std::string name_;
};

/// Mutex with a choice of priority protocols:
///
///  - None: plain lock; unbounded priority inversion is possible.
///  - PriorityInheritance: when a higher-priority task blocks on a lock held
///    by a lower-priority task, the holder inherits the blocked task's
///    effective priority until release. Bounds inversion reactively (classic
///    Mars-Pathfinder fix).
///  - PriorityCeiling (immediate ceiling / "priority protect" protocol): the
///    holder's priority is raised to the mutex's preassigned ceiling the
///    moment it acquires the lock, so no task that could ever contend gets to
///    preempt a critical section at all — inversion *and* deadlock between
///    ceiling mutexes are prevented proactively.
///
/// Boosts go through the OsCore service interface (priority_boost /
/// boost_priority / restore_priority): the mutex saves the holder's boost
/// level at acquisition and reinstates exactly that level on release, so
/// nested critical sections unwind like a stack. Releasing in non-LIFO order
/// restores the level saved at that mutex's own lock time — see the
/// "PiAndCeilingHeldTogether" tests for the pinned interaction.
///
/// See tests/test_os_channels.cpp and bench_sched for the ablation.
class OsMutex {
public:
    enum class Protocol { None, PriorityInheritance, PriorityCeiling };

    explicit OsMutex(OsCore& os, Protocol protocol = Protocol::None,
                     std::string name = "mutex", int ceiling = 0)
        : os_(os),
          evt_(os.event_new(name + ".evt")),
          protocol_(protocol),
          ceiling_(ceiling),
          name_(std::move(name)) {
        // Recovery invariant: when a task is killed, restarted, or crashed,
        // a lock it holds must not stay locked forever. The cleanup hook
        // force-releases on behalf of the dead owner, restoring the boost
        // level saved at its lock time so PI/PC unwind exactly as unlock()
        // would have, then wakes the waiters.
        cleanup_id_ = os_.add_task_cleanup([this](Task* t) {
            std::erase(waiters_, t);
            if (owner_ == t) {
                os_.restore_priority(owner_, saved_boost_);
                owner_ = nullptr;
                os_.note_resource_release(t, name_);
                os_.event_notify(evt_);
            }
        });
    }

    ~OsMutex() { os_.remove_task_cleanup(cleanup_id_); }

    OsMutex(const OsMutex&) = delete;
    OsMutex& operator=(const OsMutex&) = delete;

    void lock() {
        Task* self = os_.self();
        SLM_ASSERT(self != nullptr, "OsMutex::lock() requires a task");
        SLM_ASSERT(owner_ != self, "OsMutex is not recursive");
        const SimTime t0 = os_.kernel().now();
        while (owner_ != nullptr) {
            // Observers learn the wait-for edge before any boost reshuffles
            // the schedule; a re-stolen lock re-reports the (new) holder.
            os_.note_resource_block(self, owner_, name_);
            if (protocol_ == Protocol::PriorityInheritance) {
                os_.boost_priority(owner_, self->effective_priority());
            }
            waiters_.push_back(self);
            os_.event_wait(evt_);
            std::erase(waiters_, self);
        }
        owner_ = self;
        saved_boost_ = os_.priority_boost(owner_);
        if (protocol_ == Protocol::PriorityCeiling) {
            os_.boost_priority(owner_, ceiling_);
        }
        os_.note_resource_acquire(self, name_, os_.kernel().now() - t0);
    }

    void unlock() {
        Task* self = os_.self();
        SLM_ASSERT(owner_ == self, "OsMutex unlocked by non-owner");
        os_.restore_priority(owner_, saved_boost_);
        owner_ = nullptr;
        os_.note_resource_release(self, name_);
        os_.event_notify(evt_);
    }

    [[nodiscard]] bool locked() const { return owner_ != nullptr; }
    [[nodiscard]] const Task* owner() const { return owner_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    /// Tasks currently blocked in lock() on this mutex, in blocking order.
    /// Together with owner() this is the wait-for graph the schedule
    /// explorer's deadlock checker walks (docs/schedule-exploration.md).
    [[nodiscard]] const std::vector<Task*>& waiters() const { return waiters_; }

private:
    OsCore& os_;
    OsEvent* evt_;
    Protocol protocol_;
    int ceiling_;
    std::string name_;
    Task* owner_ = nullptr;
    std::vector<Task*> waiters_;
    int saved_boost_ = std::numeric_limits<int>::max();
    std::uint64_t cleanup_id_ = 0;
};

/// RAII guard for OsMutex.
class OsScopedLock {
public:
    explicit OsScopedLock(OsMutex& m) : m_(m) { m_.lock(); }
    ~OsScopedLock() { m_.unlock(); }
    OsScopedLock(const OsScopedLock&) = delete;
    OsScopedLock& operator=(const OsScopedLock&) = delete;

private:
    OsMutex& m_;
};

/// Blocking bounded FIFO queue — the refined c_queue of the paper's Fig. 7,
/// with the erdy/eack event pair replaced by RTOS events. capacity == 0 means
/// unbounded.
template <typename T>
class OsQueue {
public:
    OsQueue(OsCore& os, std::size_t capacity, std::string name = "queue")
        : os_(os),
          erdy_(os.event_new(name + ".rdy")),
          eack_(os.event_new(name + ".ack")),
          capacity_(capacity),
          name_(std::move(name)) {}

    void send(T value) {
        while (capacity_ != 0 && buf_.size() >= capacity_) {
            os_.event_wait(eack_);
        }
        buf_.push_back(std::move(value));
        os_.note_channel_op(name_, "send");
        os_.event_notify(erdy_);
    }

    [[nodiscard]] T receive() {
        while (buf_.empty()) {
            os_.event_wait(erdy_);
        }
        T v = std::move(buf_.front());
        buf_.pop_front();
        os_.note_channel_op(name_, "recv");
        os_.event_notify(eack_);
        return v;
    }

    [[nodiscard]] bool try_receive(T& out) {
        if (buf_.empty()) {
            return false;
        }
        out = std::move(buf_.front());
        buf_.pop_front();
        os_.note_channel_op(name_, "recv");
        os_.event_notify(eack_);
        return true;
    }

    /// Blocking receive with a timeout: false if no message arrived in time.
    [[nodiscard]] bool receive_for(T& out, slm::SimTime timeout) {
        return detail::acquire_until(os_, erdy_, os_.kernel().now() + timeout,
                                     [this, &out] { return try_receive(out); });
    }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] bool empty() const { return buf_.empty(); }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    OsCore& os_;
    OsEvent* erdy_;
    OsEvent* eack_;
    std::deque<T> buf_;
    std::size_t capacity_;
    std::string name_;
};

/// Single-slot mailbox: send overwrites nothing — it blocks while full.
template <typename T>
class OsMailbox {
public:
    explicit OsMailbox(OsCore& os, std::string name = "mbox")
        : q_(os, 1, std::move(name)) {}

    void send(T value) { q_.send(std::move(value)); }
    [[nodiscard]] T receive() { return q_.receive(); }
    [[nodiscard]] bool full() const { return q_.size() == 1; }

private:
    OsQueue<T> q_;
};

}  // namespace slm::rtos
