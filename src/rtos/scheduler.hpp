#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace slm::rtos {

class Task;

/// Dynamic scheduling algorithms selectable at RtosModel::start() (the paper's
/// `start(int sched_alg)`).
enum class SchedPolicy {
    Fifo,        ///< non-preemptive first-come-first-served
    Priority,    ///< fixed-priority, preemptive (smaller number = higher priority)
    RoundRobin,  ///< fixed-priority preemptive + quantum rotation among equals
    Edf,         ///< earliest absolute deadline first, preemptive
    Rms,         ///< rate-monotonic: shortest period first, preemptive
};

[[nodiscard]] const char* to_string(SchedPolicy p);

/// Strategy interface consulted by the RTOS model whenever task states change.
/// Implementations are stateless; all task bookkeeping lives in the model so
/// policies can be swapped per `start()` call.
class SchedulerPolicy {
public:
    virtual ~SchedulerPolicy() = default;

    [[nodiscard]] virtual const char* name() const = 0;

    /// Best candidate among the ready tasks (nullptr if `ready` is empty).
    [[nodiscard]] virtual Task* pick(const std::vector<Task*>& ready) const = 0;

    /// Should `cand` preempt the currently running task? Non-preemptive
    /// policies always answer false.
    [[nodiscard]] virtual bool preempts(const Task& cand, const Task& running) const = 0;

    /// Time-slice length, or zero for no quantum-based rotation.
    [[nodiscard]] virtual SimTime quantum() const { return SimTime::zero(); }
};

/// Factory for the built-in policies. `quantum` only matters for RoundRobin.
[[nodiscard]] std::unique_ptr<SchedulerPolicy> make_policy(SchedPolicy p,
                                                           SimTime quantum = milliseconds(1));

}  // namespace slm::rtos
