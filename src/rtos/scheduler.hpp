#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace slm::rtos {

class Task;

/// Dynamic scheduling algorithms selectable at RtosModel::start() (the paper's
/// `start(int sched_alg)`).
enum class SchedPolicy {
    Fifo,        ///< non-preemptive first-come-first-served
    Priority,    ///< fixed-priority, preemptive (smaller number = higher priority)
    RoundRobin,  ///< fixed-priority preemptive + quantum rotation among equals
    Edf,         ///< earliest absolute deadline first, preemptive
    Rms,         ///< rate-monotonic: shortest period first, preemptive
};

[[nodiscard]] const char* to_string(SchedPolicy p);

/// Intrusive ready-queue bookkeeping embedded in each Task. Owned by the
/// scheduler's ReadyQueue; tasks never touch it themselves.
struct ReadyLink {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    int bucket = 0;               ///< bucket key at insertion (bucket queues)
    std::size_t heap_pos = npos;  ///< heap slot (heap queues)
    bool queued = false;
};

/// Policy-ordered ready queue. Each SchedulerPolicy supplies a queue whose
/// internal order matches its dispatch rule, so picking the next task is
/// O(1)/O(log n) instead of the O(n) scan a flat ready list needs — the
/// dominant cost of an RTOS-model dispatch once context switches are cheap.
class ReadyQueue {
public:
    virtual ~ReadyQueue() = default;

    /// Insert a task (its arrival_seq must already be stamped).
    virtual void push(Task* t) = 0;
    /// Best task by the policy's dispatch rule; nullptr when empty.
    [[nodiscard]] virtual Task* peek() const = 0;
    /// Remove and return the best task (the same one peek() reports).
    virtual Task* pop() = 0;
    /// Remove an arbitrary queued task (kill, policy migration).
    virtual void erase(Task* t) = 0;
    /// Re-position a queued task after its ordering key changed (priority
    /// boost); preserves the task's arrival_seq tie-break rank.
    virtual void requeue(Task* t) = 0;
    [[nodiscard]] virtual bool empty() const = 0;
    [[nodiscard]] virtual std::size_t size() const = 0;
    /// Append every task tied for "best" under the policy's dispatch key —
    /// the set a real RTOS could legally dispatch next. out[0] is always the
    /// task pop() would return (the deterministic FIFO tie-break); the rest
    /// follow in arrival order. Policies with a total dispatch order (FIFO)
    /// report exactly one candidate. Used by schedule-space exploration; the
    /// normal dispatch path never calls it.
    virtual void ties(std::vector<Task*>& out) const = 0;

protected:
    /// Accessor for the intrusive link (ReadyQueue is a friend of Task).
    [[nodiscard]] static ReadyLink& link(Task& t);
};

/// Strategy interface consulted by the RTOS model whenever task states change.
/// Implementations are stateless; the per-instance ready-queue state lives in
/// the queue returned by make_queue(), so policies can be swapped per
/// `start()` call (the model migrates queued tasks across).
class SchedulerPolicy {
public:
    virtual ~SchedulerPolicy() = default;

    [[nodiscard]] virtual const char* name() const = 0;

    /// Create the ready queue implementing this policy's dispatch order.
    [[nodiscard]] virtual std::unique_ptr<ReadyQueue> make_queue() const = 0;

    /// Should `cand` preempt the currently running task? Non-preemptive
    /// policies always answer false.
    [[nodiscard]] virtual bool preempts(const Task& cand, const Task& running) const = 0;

    /// Time-slice length, or zero for no quantum-based rotation.
    [[nodiscard]] virtual SimTime quantum() const { return SimTime::zero(); }
};

/// Factory for the built-in policies. `quantum` only matters for RoundRobin.
[[nodiscard]] std::unique_ptr<SchedulerPolicy> make_policy(SchedPolicy p,
                                                           SimTime quantum = milliseconds(1));

}  // namespace slm::rtos
