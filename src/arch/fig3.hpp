#pragma once

#include <functional>

#include "rtos/rtos.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace slm::arch {

/// The paper's running example (Fig. 3): one PE executing behavior B1 followed
/// by the parallel composition of B2 and B3. B2 and B3 communicate through
/// channels c1 and c2; B3 additionally receives data from another PE through a
/// bus driver whose interrupt handler signals a semaphore.
///
/// Timeline structure (Fig. 8):
///   B2: d5 | c1.send | d6 | d7 | c2.receive | d8
///   B3: d1 | c1.receive | d2 | bus receive (sem) | d3 | c2.send | d4
///   external PE posts the bus message at `irq_at` (the paper's t4).
struct Fig3Delays {
    SimTime b1 = microseconds(10);
    SimTime d1 = microseconds(20);
    SimTime d2 = microseconds(25);
    SimTime d3 = microseconds(15);
    SimTime d4 = microseconds(5);
    SimTime d5 = microseconds(30);
    SimTime d6 = microseconds(25);
    SimTime d7 = microseconds(20);
    SimTime d8 = microseconds(10);
    SimTime irq_at = microseconds(95);
};

/// Measured outcomes of one Fig. 3 simulation.
struct Fig3Result {
    SimTime b2_done;         ///< completion time of behavior/task B2
    SimTime b3_done;         ///< completion time of behavior/task B3
    SimTime pe_done;         ///< completion of the whole PE (join + B1 epilogue)
    SimTime bus_data_seen;   ///< when B3 obtained the external data (t4 vs t4')
    std::uint64_t context_switches = 0;  ///< 0 for the unscheduled model
};

/// Simulate the unscheduled model (paper Fig. 3(a) / trace Fig. 8(a)): B2 and
/// B3 run truly in parallel on the SLDL kernel; synchronization uses spec
/// channels. Execution spans are recorded into `rec` (any TraceSink; may be
/// null).
Fig3Result run_fig3_unscheduled(trace::TraceSink* rec, const Fig3Delays& d = {});

/// Simulate the architecture model (paper Fig. 3(b) / trace Fig. 8(b)): the
/// behaviors are refined into tasks on an RTOS model instance; B3 has higher
/// priority than B2. `cfg` lets callers vary policy / preemption granularity;
/// cpu name and tracer are set internally. `attach` (optional) is invoked
/// with the OS core after construction and before any task exists — the hook
/// for observers such as obs::RtosAnalytics.
Fig3Result run_fig3_architecture(trace::TraceSink* rec, const Fig3Delays& d = {},
                                 rtos::RtosConfig cfg = {},
                                 const std::function<void(rtos::OsCore&)>& attach = {});

}  // namespace slm::arch
