#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "arch/arch.hpp"
#include "sim/time.hpp"

namespace slm::arch {

/// Communication abstraction levels for bus traffic, in decreasing
/// abstraction / increasing accuracy (the transaction-level-modeling ladder
/// explored in the companion work "RTOS Scheduling in Transaction Level
/// Models"):
///
///  - Message: pure latency model — transfer time is a function of size,
///    contention is not modeled at all (two masters overlap freely). The
///    fastest to simulate and the most optimistic under load.
///  - Transaction: the whole message arbitrates for and holds the bus
///    (`Bus::occupy`). Contention appears at message granularity: a long
///    message blocks everyone until it completes.
///  - BusFunctional: the message is split into bus-word beats (4 bytes),
///    each separately arbitrated, so concurrent masters interleave at word
///    granularity — fair bandwidth sharing, many more simulation events.
enum class CommLevel { Message, Transaction, BusFunctional };

[[nodiscard]] const char* to_string(CommLevel level);

/// A data pipe over a shared Bus modeled at a chosen communication level.
/// `send` spends the modeled transfer time through the caller's waiter
/// (task time for RTOS tasks, kernel time for device models).
class TlmChannel {
public:
    TlmChannel(Bus& bus, std::string name, CommLevel level)
        : bus_(bus), name_(std::move(name)), level_(level) {}

    /// Transfer `bytes` at this channel's abstraction level.
    void send(std::size_t bytes, const std::function<void(SimTime)>& waiter,
              int master = 0);

    [[nodiscard]] CommLevel level() const { return level_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t messages() const { return messages_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

    /// Bus beats a `bytes`-sized message needs at the BusFunctional level.
    [[nodiscard]] static std::size_t beats(std::size_t bytes) {
        return (bytes + kBeatBytes - 1) / kBeatBytes;
    }

    static constexpr std::size_t kBeatBytes = 4;

private:
    Bus& bus_;
    std::string name_;
    CommLevel level_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
};

}  // namespace slm::arch
