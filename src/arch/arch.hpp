#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rtos/core.hpp"
#include "rtos/os_channels.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace slm::arch {

/// Architecture-level modeling: processing elements hosting RTOS instances,
/// busses with arbitration and transfer delays, and interrupt plumbing — the
/// infrastructure of the paper's design-flow Fig. 1 and example Fig. 3.

/// Bus arbitration schemes.
enum class BusArbitration {
    Fifo,      ///< grant in request order
    Priority,  ///< grant the lowest master id first (smaller = higher priority)
    Tdma,      ///< time-division: master i may start only inside its slot
};

[[nodiscard]] const char* to_string(BusArbitration a);

/// A shared system bus. Transfers are arbitrated (one master at a time) and
/// take setup + per-byte time. The time is modeled through a caller-supplied
/// waiter so that a transfer executed by an RTOS task charges task execution
/// time (os.time_wait) while a raw SLDL process charges plain kernel time.
///
/// Arbitration among simultaneous requests is configurable; under TDMA the
/// requesting master additionally stalls until the start of its own slot
/// (slot index = master id, frame = slot_length x master_count).
class Bus {
public:
    struct Config {
        SimTime setup = nanoseconds(100);   ///< arbitration + address phase
        SimTime per_byte = nanoseconds(10); ///< data phase per byte
        BusArbitration arbitration = BusArbitration::Fifo;
        SimTime tdma_slot = microseconds(10);  ///< slot length (Tdma only)
        unsigned tdma_masters = 2;             ///< slots per TDMA frame
    };

    Bus(sim::Kernel& kernel, std::string name);
    Bus(sim::Kernel& kernel, std::string name, Config cfg);

    /// Duration of a `bytes`-sized transfer, excluding arbitration wait.
    [[nodiscard]] SimTime transfer_latency(std::size_t bytes) const;

    [[nodiscard]] SimTime setup_time() const { return cfg_.setup; }
    [[nodiscard]] SimTime per_byte_time() const { return cfg_.per_byte; }

    /// Hold the bus for one transfer, spending the latency via `waiter`.
    /// `master` identifies the requester for Priority/Tdma arbitration.
    void occupy(std::size_t bytes, const std::function<void(SimTime)>& waiter,
                int master = 0);

    /// Hold the bus for an explicit duration (building block for word-level
    /// bus-functional models where the per-beat time is computed externally).
    void occupy_for(SimTime duration, std::size_t bytes_accounted,
                    const std::function<void(SimTime)>& waiter, int master = 0);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
    [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
    [[nodiscard]] SimTime busy_time() const { return busy_; }
    /// Aggregate time masters spent waiting for a grant (contention metric).
    [[nodiscard]] SimTime arbitration_wait() const { return arb_wait_; }

private:
    struct Request {
        int master;
        std::uint64_t seq;
    };

    [[nodiscard]] bool is_chosen(const Request& r) const;
    [[nodiscard]] SimTime tdma_align_delay(int master) const;

    sim::Kernel& kernel_;
    std::string name_;
    Config cfg_;
    sim::Event grant_;
    std::vector<Request> waiters_;
    bool busy_flag_ = false;
    std::uint64_t seq_ = 0;
    std::uint64_t transfers_ = 0;
    std::uint64_t bytes_ = 0;
    SimTime busy_{};
    SimTime arb_wait_{};
};

/// An interrupt request line: edge-triggered, raised by a device/bus and
/// consumed by the ISR dispatcher of a ProcessingElement.
class InterruptLine {
public:
    InterruptLine(sim::Kernel& kernel, std::string name)
        : kernel_(kernel), evt_(kernel, name + ".irq"), name_(std::move(name)) {}

    /// Raise the interrupt (callable from any process context).
    void raise() {
        ++raised_;
        kernel_.notify(evt_);
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t raise_count() const { return raised_; }
    [[nodiscard]] sim::Event& event() { return evt_; }

private:
    sim::Kernel& kernel_;
    sim::Event evt_;
    std::string name_;
    std::uint64_t raised_ = 0;
};

/// A typed point-to-point link over a shared bus: the sender occupies the bus
/// for the message size, deposits the payload into the receiver-side buffer,
/// and raises the receiver's interrupt line — the paper's "bus driver + ISR +
/// semaphore" structure in Fig. 3.
template <typename T>
class BusLink {
public:
    BusLink(sim::Kernel& kernel, Bus& bus, std::string name,
            std::size_t message_bytes = sizeof(T))
        : kernel_(kernel), bus_(bus), irq_(kernel, name), bytes_(message_bytes) {}

    /// Observation hook fired after each completed post() with the message
    /// and the transfer window [begin, end) — begin is taken before
    /// arbitration, so the window covers wait-for-grant plus the data phase.
    /// Purely observational (sys::System installs one per bus-routed channel
    /// to emit BusXfer spans when span tracing is on).
    using PostHook = std::function<void(const T&, SimTime begin, SimTime end, int master)>;
    void set_post_hook(PostHook hook) { post_hook_ = std::move(hook); }

    /// Sender side: transfer + interrupt. `waiter` spends the bus time in the
    /// sender's time domain (os.time_wait for tasks, kernel.waitfor for raw
    /// processes / external device models). `master` feeds the bus
    /// arbitration (Priority/Tdma schemes).
    void post(T msg, const std::function<void(SimTime)>& waiter, int master = 0) {
        const SimTime begin = kernel_.now();
        bus_.occupy(bytes_, waiter, master);
        if (post_hook_) {
            post_hook_(msg, begin, kernel_.now(), master);
        }
        rx_.push_back(std::move(msg));
        irq_.raise();
    }

    /// Receiver side (typically called from the ISR or the driver task).
    [[nodiscard]] bool try_fetch(T& out) {
        if (rx_.empty()) {
            return false;
        }
        out = std::move(rx_.front());
        rx_.pop_front();
        return true;
    }

    [[nodiscard]] InterruptLine& irq() { return irq_; }
    [[nodiscard]] std::size_t pending() const { return rx_.size(); }

private:
    sim::Kernel& kernel_;
    Bus& bus_;
    InterruptLine irq_;
    std::deque<T> rx_;
    std::size_t bytes_;
    PostHook post_hook_;
};

/// A prioritized interrupt controller with masking: multiple interrupt lines
/// funnel into one ISR dispatch context. When several interrupts are pending,
/// the highest-priority unmasked one is served first (smaller number = higher
/// priority, matching the RTOS convention); masked lines accumulate pending
/// counts and are served on unmask. ISRs execute in zero simulated time, as
/// in the paper's abstraction — their effect on tasks is what the RTOS model
/// captures (semaphore releases, event notifies, preemption flags).
class InterruptController {
public:
    InterruptController(sim::Kernel& kernel, rtos::OsCore& os, std::string name);

    /// Route `line` through this controller with the given IRQ priority.
    void attach(InterruptLine& line, int priority, std::function<void()> handler);

    /// Suppress dispatch for `line`; raises are latched while masked.
    void mask(const InterruptLine& line);
    /// Re-enable `line` and serve anything latched.
    void unmask(const InterruptLine& line);

    [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
    [[nodiscard]] std::uint64_t pending() const;

private:
    struct Source {
        InterruptLine* line;
        int priority;
        std::function<void()> handler;
        bool masked = false;
        std::uint64_t pending = 0;
    };

    [[nodiscard]] Source* best_pending();
    void ensure_dispatcher();

    sim::Kernel& kernel_;
    rtos::OsCore& os_;
    std::string name_;
    sim::Event pending_evt_;
    std::vector<std::unique_ptr<Source>> sources_;
    std::uint64_t dispatched_ = 0;
    bool dispatcher_spawned_ = false;
};

/// A processing element: one CPU with its own OS core instance, tasks, and
/// ISRs. After dynamic-scheduling refinement, every software PE of the system
/// model is an instance of this class (paper Fig. 1, architecture model).
///
/// The PE hosts the personality-neutral rtos::OsCore; task refinement
/// helpers (add_task / add_periodic_task) drive the core directly, and an
/// API personality can be layered over os() when refined software expects a
/// specific call set (e.g. rtos::itron::ItronOs{pe.os()}).
class ProcessingElement {
public:
    ProcessingElement(sim::Kernel& kernel, std::string name, rtos::RtosConfig cfg = {});

    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
    [[nodiscard]] rtos::OsCore& os() { return *os_; }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// This PE's speed relative to a nominal speed-1 core, as configured via
    /// RtosConfig::speed_num/speed_den (a 2.0 DSP charges half the execution
    /// time for the same nominal work — see OsCore::scaled_exec).
    [[nodiscard]] double speed() const {
        return static_cast<double>(os_->config().speed_num) /
               static_cast<double>(os_->config().speed_den);
    }

    /// Create and spawn an aperiodic task following the paper's refinement
    /// pattern (task_activate / body / task_terminate).
    rtos::Task* add_task(const std::string& task_name, int priority,
                         std::function<void()> body);

    /// Create and spawn a periodic task running `body` each cycle; `cycles` = 0
    /// runs forever (until the simulation stops or the task is killed).
    rtos::Task* add_periodic_task(const std::string& task_name, int priority,
                                  SimTime period, SimTime wcet,
                                  std::function<void()> body, std::uint64_t cycles = 0,
                                  SimTime deadline = {});

    /// Register an interrupt service routine for `line`. The handler runs in
    /// ISR context (not a task): it may release OS channels / notify OS events
    /// but must not block or consume modeled time.
    void attach_isr(InterruptLine& line, std::function<void()> handler);

    /// Start the RTOS (call once, after all initial tasks are added).
    void start() { os_->start(); }
    void start(rtos::SchedPolicy p) { os_->start(p); }

private:
    sim::Kernel& kernel_;
    std::string name_;
    std::unique_ptr<rtos::OsCore> os_;
};

}  // namespace slm::arch
