#include "arch/arch.hpp"

#include "sim/assert.hpp"

namespace slm::arch {

const char* to_string(BusArbitration a) {
    switch (a) {
        case BusArbitration::Fifo: return "FIFO";
        case BusArbitration::Priority: return "Priority";
        case BusArbitration::Tdma: return "TDMA";
    }
    return "?";
}

Bus::Bus(sim::Kernel& kernel, std::string name) : Bus(kernel, std::move(name), Config{}) {}

Bus::Bus(sim::Kernel& kernel, std::string name, Config cfg)
    : kernel_(kernel), name_(std::move(name)), cfg_(cfg), grant_(kernel, name_ + ".grant") {}

SimTime Bus::transfer_latency(std::size_t bytes) const {
    return cfg_.setup + cfg_.per_byte * static_cast<std::uint64_t>(bytes);
}

bool Bus::is_chosen(const Request& r) const {
    for (const Request& w : waiters_) {
        switch (cfg_.arbitration) {
            case BusArbitration::Fifo:
            case BusArbitration::Tdma:  // TDMA ordering comes from slot timing
                if (w.seq < r.seq) {
                    return false;
                }
                break;
            case BusArbitration::Priority:
                if (w.master < r.master ||
                    (w.master == r.master && w.seq < r.seq)) {
                    return false;
                }
                break;
        }
    }
    return true;
}

SimTime Bus::tdma_align_delay(int master) const {
    const std::uint64_t slot = cfg_.tdma_slot.ns();
    const std::uint64_t frame = slot * cfg_.tdma_masters;
    SLM_ASSERT(master >= 0 && static_cast<unsigned>(master) < cfg_.tdma_masters,
               "TDMA master id out of range");
    const std::uint64_t phase = kernel_.now().ns() % frame;
    const std::uint64_t my_start = static_cast<std::uint64_t>(master) * slot;
    if (phase >= my_start && phase < my_start + slot) {
        return SimTime::zero();  // already inside the slot
    }
    const std::uint64_t next =
        phase < my_start ? my_start - phase : frame - phase + my_start;
    return SimTime{next};
}

void Bus::occupy(std::size_t bytes, const std::function<void(SimTime)>& waiter,
                 int master) {
    occupy_for(transfer_latency(bytes), bytes, waiter, master);
}

void Bus::occupy_for(SimTime duration, std::size_t bytes_accounted,
                     const std::function<void(SimTime)>& waiter, int master) {
    SLM_ASSERT(waiter != nullptr, "Bus::occupy needs a time waiter");
    const SimTime requested_at = kernel_.now();
    if (cfg_.arbitration == BusArbitration::Tdma) {
        // Stall until this master's slot opens, then contend FIFO. (Transfers
        // may spill past the slot boundary — a deliberate simplification; the
        // slot gates transfer *starts*.)
        const SimTime align = tdma_align_delay(master);
        if (!align.is_zero()) {
            kernel_.waitfor(align);
        }
    }
    const Request me{master, ++seq_};
    waiters_.push_back(me);
    while (busy_flag_ || !is_chosen(me)) {
        kernel_.wait(grant_);
    }
    std::erase_if(waiters_, [&](const Request& r) { return r.seq == me.seq; });
    busy_flag_ = true;
    arb_wait_ += kernel_.now() - requested_at;

    waiter(duration);
    ++transfers_;
    bytes_ += bytes_accounted;
    busy_ += duration;

    busy_flag_ = false;
    kernel_.notify(grant_);
}

InterruptController::InterruptController(sim::Kernel& kernel, rtos::OsCore& os,
                                         std::string name)
    : kernel_(kernel), os_(os), name_(std::move(name)), pending_evt_(kernel, name_ + ".pending") {}

void InterruptController::attach(InterruptLine& line, int priority,
                                 std::function<void()> handler) {
    auto src = std::make_unique<Source>();
    src->line = &line;
    src->priority = priority;
    src->handler = std::move(handler);
    Source* s = src.get();
    sources_.push_back(std::move(src));
    kernel_.spawn(name_ + ".watch." + line.name(), [this, s] {
        // Track the raise counter rather than wakeups: multiple raises within
        // one delta cycle coalesce into a single event notification, but each
        // raise is a distinct interrupt to serve.
        std::uint64_t seen = 0;
        for (;;) {
            kernel_.wait(s->line->event());
            const std::uint64_t raised = s->line->raise_count();
            s->pending += raised - seen;
            seen = raised;
            kernel_.notify(pending_evt_);
        }
    });
    ensure_dispatcher();
}

InterruptController::Source* InterruptController::best_pending() {
    Source* best = nullptr;
    for (const auto& s : sources_) {
        if (s->pending > 0 && !s->masked &&
            (best == nullptr || s->priority < best->priority)) {
            best = s.get();
        }
    }
    return best;
}

std::uint64_t InterruptController::pending() const {
    std::uint64_t total = 0;
    for (const auto& s : sources_) {
        total += s->pending;
    }
    return total;
}

void InterruptController::ensure_dispatcher() {
    if (dispatcher_spawned_) {
        return;
    }
    dispatcher_spawned_ = true;
    kernel_.spawn(name_ + ".dispatch", [this] {
        for (;;) {
            Source* s = best_pending();
            if (s == nullptr) {
                kernel_.wait(pending_evt_);
                continue;
            }
            --s->pending;
            ++dispatched_;
            // Routed through isr_deliver so an attached FaultHook can drop,
            // delay, or replicate the interrupt; without a hook this is
            // exactly isr_enter / handler / interrupt_return.
            os_.isr_deliver(s->line->name(), [s] { s->handler(); });
        }
    });
}

void InterruptController::mask(const InterruptLine& line) {
    for (const auto& s : sources_) {
        if (s->line == &line) {
            s->masked = true;
        }
    }
}

void InterruptController::unmask(const InterruptLine& line) {
    for (const auto& s : sources_) {
        if (s->line == &line) {
            s->masked = false;
        }
    }
    kernel_.notify(pending_evt_);
}

ProcessingElement::ProcessingElement(sim::Kernel& kernel, std::string name,
                                     rtos::RtosConfig cfg)
    : kernel_(kernel), name_(std::move(name)) {
    cfg.cpu_name = name_;
    os_ = std::make_unique<rtos::OsCore>(kernel, std::move(cfg));
    os_->init();
}

rtos::Task* ProcessingElement::add_task(const std::string& task_name, int priority,
                                        std::function<void()> body) {
    rtos::TaskParams p;
    p.name = task_name;
    p.priority = priority;
    rtos::Task* t = os_->task_create(std::move(p));
    // Registering the body with the core (instead of hand-spawning a wrapper)
    // makes the task restartable by the recovery services; the spawned
    // wrapper is semantically the same activate/body/terminate sequence.
    os_->task_set_body(t, std::move(body));
    os_->task_start(t, name_ + "." + task_name);
    return t;
}

rtos::Task* ProcessingElement::add_periodic_task(const std::string& task_name,
                                                 int priority, SimTime period,
                                                 SimTime wcet, std::function<void()> body,
                                                 std::uint64_t cycles, SimTime deadline) {
    rtos::TaskParams p;
    p.name = task_name;
    p.type = rtos::TaskType::Periodic;
    p.period = period;
    p.wcet = wcet;
    p.priority = priority;
    p.deadline = deadline;
    rtos::Task* t = os_->task_create(std::move(p));
    os_->task_set_body(t, [this, body = std::move(body), cycles] {
        for (std::uint64_t c = 0; cycles == 0 || c < cycles; ++c) {
            body();
            os_->task_endcycle();
        }
    });
    os_->task_start(t, name_ + "." + task_name);
    return t;
}

void ProcessingElement::attach_isr(InterruptLine& line, std::function<void()> handler) {
    kernel_.spawn(name_ + ".isr." + line.name(),
                  [this, &line, handler = std::move(handler)] {
                      for (;;) {
                          kernel_.wait(line.event());
                          os_->isr_deliver(line.name(), handler);
                      }
                  });
}

}  // namespace slm::arch
