#include "arch/fig3.hpp"

#include "arch/arch.hpp"
#include "rtos/os_channels.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"

namespace slm::arch {

namespace {

/// Zero-latency bus for the example: the paper's Fig. 8 timeline attributes
/// no time to the transfer itself, only to the computation steps.
Bus::Config ideal_bus() {
    return Bus::Config{SimTime::zero(), SimTime::zero()};
}

}  // namespace

Fig3Result run_fig3_unscheduled(trace::TraceSink* rec, const Fig3Delays& d) {
    sim::Kernel k;
    Bus bus{k, "bus", ideal_bus()};
    BusLink<int> link{k, bus, "ext"};
    sim::Semaphore sem{k, 0, "sem"};
    sim::Queue<int> c1{k, 1, "c1"};
    sim::Queue<int> c2{k, 1, "c2"};
    Fig3Result res{};

    // Execute one behavior step of `who`, recording the span.
    const auto exec = [&](const char* who, SimTime dt) {
        if (rec != nullptr) {
            rec->exec_begin(k.now(), "PE0", who);
        }
        k.waitfor(dt);
        if (rec != nullptr) {
            rec->exec_end(k.now(), "PE0", who);
        }
    };

    // Interrupt handler: generated as part of the bus driver during
    // communication synthesis; signals the driver through `sem`.
    k.spawn("ISR", [&] {
        for (;;) {
            k.wait(link.irq().event());
            if (rec != nullptr) {
                rec->irq(k.now(), "PE0", "ext");
            }
            sem.release();
        }
    });

    // The external PE posting data onto the bus at t4.
    k.spawn("ExtPE", [&] {
        k.waitfor(d.irq_at);
        link.post(42, [&](SimTime dt) { k.waitfor(dt); });
    });

    k.spawn("PE", [&] {
        exec("B1", d.b1);
        k.par({sim::Branch{"B2",
                           [&] {
                               exec("B2", d.d5);
                               c1.send(1);
                               exec("B2", d.d6);
                               exec("B2", d.d7);
                               (void)c2.receive();
                               exec("B2", d.d8);
                               res.b2_done = k.now();
                           }},
               sim::Branch{"B3", [&] {
                               exec("B3", d.d1);
                               (void)c1.receive();
                               exec("B3", d.d2);
                               sem.acquire();
                               int data = 0;
                               (void)link.try_fetch(data);
                               res.bus_data_seen = k.now();
                               exec("B3", d.d3);
                               c2.send(2);
                               exec("B3", d.d4);
                               res.b3_done = k.now();
                           }}});
        res.pe_done = k.now();
    });

    k.run();
    res.context_switches = 0;  // no RTOS: behaviors are truly concurrent
    return res;
}

Fig3Result run_fig3_architecture(trace::TraceSink* rec, const Fig3Delays& d,
                                 rtos::RtosConfig cfg,
                                 const std::function<void(rtos::OsCore&)>& attach) {
    sim::Kernel k;
    cfg.cpu_name = "PE0";
    cfg.tracer = rec;
    rtos::RtosModel os{k, cfg};
    if (attach) {
        attach(os);
    }
    os.init();

    Bus bus{k, "bus", ideal_bus()};
    BusLink<int> link{k, bus, "ext"};
    rtos::OsSemaphore sem{os, 0, "sem"};
    rtos::OsQueue<int> c1{os, 1, "c1"};
    rtos::OsQueue<int> c2{os, 1, "c2"};
    Fig3Result res{};

    // ISR: wait on the interrupt line, release the driver semaphore, return
    // through the RTOS so the scheduler runs.
    k.spawn("ISR", [&] {
        for (;;) {
            k.wait(link.irq().event());
            os.isr_deliver("ext", [&] { sem.release(); });
        }
    });

    k.spawn("ExtPE", [&] {
        k.waitfor(d.irq_at);
        link.post(42, [&](SimTime dt) { k.waitfor(dt); });
    });

    // Task priorities: B3 > B2 > Task_PE (smaller number = higher priority).
    rtos::Task* tb2 = os.task_create("task_b2", rtos::TaskType::Aperiodic, {}, {}, 2);
    rtos::Task* tb3 = os.task_create("task_b3", rtos::TaskType::Aperiodic, {}, {}, 1);

    k.spawn("Task_PE", [&] {
        rtos::Task* me = os.task_create("task_pe", rtos::TaskType::Aperiodic, {}, {}, 3);
        os.task_activate(me);
        os.time_wait(d.b1);  // B1
        rtos::Task* parent = os.par_start();
        k.par({sim::Branch{"task_b2",
                           [&] {
                               os.task_activate(tb2);
                               os.time_wait(d.d5);
                               c1.send(1);
                               os.time_wait(d.d6);
                               os.time_wait(d.d7);
                               (void)c2.receive();
                               os.time_wait(d.d8);
                               res.b2_done = k.now();
                               os.task_terminate();
                           }},
               sim::Branch{"task_b3", [&] {
                               os.task_activate(tb3);
                               os.time_wait(d.d1);
                               (void)c1.receive();
                               os.time_wait(d.d2);
                               sem.acquire();
                               int data = 0;
                               (void)link.try_fetch(data);
                               res.bus_data_seen = k.now();
                               os.time_wait(d.d3);
                               c2.send(2);
                               os.time_wait(d.d4);
                               res.b3_done = k.now();
                               os.task_terminate();
                           }}});
        os.par_end(parent);
        res.pe_done = k.now();
        os.task_terminate();
    });

    os.start();
    k.run();
    res.context_switches = os.stats().context_switches;
    return res;
}

}  // namespace slm::arch
