#include "arch/tlm.hpp"

#include "sim/assert.hpp"

namespace slm::arch {

const char* to_string(CommLevel level) {
    switch (level) {
        case CommLevel::Message: return "Message";
        case CommLevel::Transaction: return "Transaction";
        case CommLevel::BusFunctional: return "BusFunctional";
    }
    return "?";
}

void TlmChannel::send(std::size_t bytes, const std::function<void(SimTime)>& waiter,
                      int master) {
    SLM_ASSERT(waiter != nullptr, "TlmChannel::send needs a time waiter");
    switch (level_) {
        case CommLevel::Message:
            // Latency only; the bus is not held, contention is invisible.
            waiter(bus_.transfer_latency(bytes));
            break;
        case CommLevel::Transaction:
            bus_.occupy(bytes, waiter, master);
            break;
        case CommLevel::BusFunctional: {
            // Arbitration setup once, then per-beat data phases, each a
            // separate bus tenure so other masters interleave.
            const std::size_t n = beats(bytes);
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t beat_bytes =
                    i + 1 == n ? bytes - i * kBeatBytes : kBeatBytes;
                const SimTime dt = (i == 0 ? bus_.setup_time() : SimTime::zero()) +
                                   bus_.per_byte_time() * beat_bytes;
                bus_.occupy_for(dt, beat_bytes, waiter, master);
            }
            break;
        }
    }
    ++messages_;
    bytes_ += bytes;
}

}  // namespace slm::arch
