#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "rtos/core.hpp"
#include "rtos/os_channels.hpp"
#include "sim/kernel.hpp"
#include "sim/schedule_point.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace slm::explore {

/// Schedule-space exploration (stateless model checking) for the RTOS model.
///
/// The simulator is deterministic: one build of a model yields exactly one
/// schedule. Real concurrent systems are not — every tie the kernel breaks
/// FIFO (simultaneous wakeups, equal-priority tasks, IRQ arrival order) is a
/// point where hardware could go the other way. The explorer re-runs the
/// whole simulation once per interleaving, driving those ties through the
/// sim::ScheduleController hook, and checks safety properties on every path.
/// A path is identified by its decision trace (a Schedule), which replays it
/// exactly. See docs/schedule-exploration.md.

/// A decision trace: choices[k] is the candidate index taken at the k-th
/// SchedulePoint of a run. All-zero choices reproduce the default
/// deterministic schedule. Serializes to a compact string — total length,
/// then only the non-default entries — for logging and replay from a CLI:
/// "12|3:1,7:2" = 12 choice points, choice 1 at point 3 and 2 at point 7.
struct Schedule {
    std::vector<std::uint32_t> choices;

    /// Number of non-default decisions (the path's distance from the
    /// deterministic schedule; bounded by ExploreConfig::preemption_bound).
    [[nodiscard]] std::size_t divergences() const;

    [[nodiscard]] std::string to_string() const;
    /// Inverse of to_string(). nullopt on malformed input; when `err` is
    /// non-null it receives a description of what is wrong with the input
    /// (missing '|', non-numeric field, index past the declared length, ...).
    [[nodiscard]] static std::optional<Schedule> parse(const std::string& s,
                                                       std::string* err = nullptr);

    friend bool operator==(const Schedule&, const Schedule&) = default;
};

/// A safety-property violation found on one explored path. `schedule` is the
/// complete decision trace of the failing run — feed it to
/// Explorer::replay() for a deterministic reproduction with a full trace.
struct Violation {
    enum class Kind {
        Deadlock,          ///< no timed activity left, processes still blocked
        LostSignal,        ///< event_notify with no waiter (RtosStats::lost_notifies)
        DeadlineMiss,      ///< a task completed after its absolute deadline
        AssertionFailure,  ///< SLM_ASSERT fired (converted by the assert handler)
        PropertyFailure,   ///< a Run::expect() predicate returned false
    };

    Kind kind = Kind::Deadlock;
    std::string detail;
    Schedule schedule;
    SimTime time{};
};

[[nodiscard]] const char* to_string(Violation::Kind k);

/// Exploration statistics (ISSUE acceptance: paths explored, states pruned,
/// max depth).
struct ExploreStats {
    std::uint64_t paths = 0;          ///< complete simulation runs executed
    std::uint64_t choice_points = 0;  ///< SchedulePoints hit, summed over runs
    std::uint64_t pruned = 0;         ///< alternative branches cut by the bound
    std::uint64_t max_depth = 0;      ///< longest decision trace seen
    std::uint64_t truncated = 0;      ///< runs that hit max_choices_per_run
};

/// Exploration parameters.
struct ExploreConfig {
    /// Max non-default decisions per path (the preemption bound of bounded
    /// model checking). Exploration cost grows roughly as
    /// (choice points x branching)^bound; 1-2 finds most concurrency bugs.
    int preemption_bound = 2;
    /// Hard cap on simulation runs for explore(); exploration stops
    /// unexhausted when it is reached.
    std::uint64_t max_paths = 10'000;
    /// Per-run cap on consulted choice points; a run that exceeds it keeps
    /// the default schedule from there on and is counted in stats.truncated.
    std::size_t max_choices_per_run = 1'000'000;
    /// Simulated-time horizon per run. SimTime::max() (default) runs to
    /// quiescence (Kernel::run()); finite horizons use run_until() — pick one
    /// analysis::hyperperiod() for periodic task sets.
    SimTime horizon = SimTime::max();
    bool check_deadlock = true;
    /// Opt-in: flag RtosStats::lost_notifies > 0. Only meaningful for
    /// pure-event protocols; stateful channels (semaphores) trip it benignly.
    bool check_lost_signals = false;
    /// Opt-in: flag any Task with stats().deadline_misses > 0.
    bool check_deadline_misses = false;
    /// Seed for random_walks(); walk i uses a stream derived from seed + i.
    std::uint64_t seed = 1;
    /// Record a trace::Marker per decision into the run's trace, so a failing
    /// schedule's Gantt chart shows where the explorer steered.
    bool record_choices = true;
    /// Stop after collecting this many violations.
    std::size_t max_violations = 16;
    /// Kernel construction parameters for each per-path kernel.
    sim::KernelConfig kernel{};
};

/// One simulation run under exploration: a fresh Kernel plus the models the
/// user's build function creates for it. The explorer constructs a Run per
/// path and calls the build function; everything made through make() dies
/// with the Run, so paths are fully independent (stateless model checking).
class Run {
public:
    explicit Run(const sim::KernelConfig& kc) : kernel_(kc) {}
    Run(const Run&) = delete;
    Run& operator=(const Run&) = delete;
    // make() promises reverse construction order; a vector destroys forward,
    // which would tear down a core before the channels registered on it.
    ~Run() {
        while (!owned_.empty()) owned_.pop_back();
    }

    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }

    /// The run's trace sink. Pass as RtosConfig::tracer to get task states
    /// and context switches into failure reports; decision markers land here
    /// when ExploreConfig::record_choices is set.
    [[nodiscard]] trace::TraceRecorder& trace() { return trace_; }

    /// Construct an object owned by this Run (destroyed before the kernel,
    /// in reverse construction order). OS cores (any personality: RtosModel
    /// is-an OsCore, ItronOs exposes core()) and OsMutexes made here are
    /// automatically watch()ed.
    template <typename T, typename... Args>
    T& make(Args&&... args) {
        auto obj = std::make_shared<T>(std::forward<Args>(args)...);
        T& ref = *obj;
        owned_.push_back(std::move(obj));
        if constexpr (std::is_base_of_v<rtos::OsCore, T>) {
            watch(ref);
        } else if constexpr (std::is_same_v<T, rtos::OsMutex>) {
            watch(ref);
        } else if constexpr (requires(T& p) {
                                 { p.core() } -> std::convertible_to<rtos::OsCore&>;
                             }) {
            watch(ref.core());  // personality wrapper owning/viewing a core
        }
        return ref;
    }

    /// Register an OS core for the lost-signal and deadline-miss checks
    /// (needed only for models built outside make()).
    void watch(rtos::OsCore& os) { models_.push_back(&os); }
    /// Cores registered so far (via watch() or make()); wrappers that attach
    /// shared machinery to every core of a run (fault::make_fault_explorer)
    /// read this after the user's build function ran.
    [[nodiscard]] const std::vector<rtos::OsCore*>& watched_cores() const {
        return models_;
    }
    /// Register a mutex for the deadlock checker's wait-for graph, so a
    /// deadlock report names the cycle instead of just the blocked tasks.
    void watch(rtos::OsMutex& m) { mutexes_.push_back(&m); }

    /// Register a custom safety property, evaluated after the run; a false
    /// result becomes a PropertyFailure violation named `name`.
    void expect(std::string name, std::function<bool()> pred) {
        expects_.emplace_back(std::move(name), std::move(pred));
    }

private:
    friend class Explorer;

    sim::Kernel kernel_;  // declared first: models in owned_ die before it
    trace::TraceRecorder trace_;
    std::vector<std::shared_ptr<void>> owned_;
    std::vector<rtos::OsCore*> models_;
    std::vector<rtos::OsMutex*> mutexes_;
    std::vector<std::pair<std::string, std::function<bool()>>> expects_;
};

/// Outcome of one simulated path (also the return type of replay()).
struct PathResult {
    Schedule schedule;                 ///< complete decision trace of the run
    std::vector<Violation> violations; ///< empty = path is safe
    trace::TraceRecorder trace;        ///< the run's trace, moved out
    SimTime end_time{};
    bool more_timed = false;  ///< run_until() horizon hit with work pending
    bool truncated = false;   ///< hit max_choices_per_run
    /// True when a supplied plan did not fit the model (a choice index was
    /// out of range at some point and degraded to the default). The replayed
    /// path is then NOT the planned one. See Explorer::replay_trace.
    bool diverged = false;
};

/// Aggregate outcome of explore()/random_walks().
struct ExploreResult {
    ExploreStats stats;
    std::vector<Violation> violations;
    /// First failing path with its full trace, for immediate Gantt dumps.
    std::optional<PathResult> first_failure;
    /// True when bounded DFS ran out of schedules to try: every interleaving
    /// within the preemption bound was visited (full coverage if
    /// stats.pruned == 0 and no run was truncated).
    bool exhausted = false;
};

/// Canonical JSON serialization of an ExploreResult: fixed key order, no
/// whitespace, violations in stored order, first_failure inlined with its
/// full trace CSV. This is THE byte-comparable artifact of exploration — the
/// parallel engine's determinism contract (docs/parallel-exploration.md) is
/// "same bytes out of write_result_json as the serial engine", and
/// ci/check_parallel.sh diffs exactly this output. Schema:
/// slm-explore-result-v1.
void write_result_json(std::ostream& os, const ExploreResult& res);

/// The exploration driver. `build` populates a fresh Run per path — it must
/// be deterministic (same calls in the same order each time), because replay
/// identity depends on the k-th choice point meaning the same decision in
/// every run. When the same BuildFn is handed to the parallel engine
/// (src/parallel/), it must additionally be safe to call concurrently from
/// multiple threads: each call receives its own Run and must confine all
/// mutable state to it (no captured mutable globals, no shared counters).
/// Everything a Run::make() build touches satisfies this by construction.
///
///     explore::Explorer ex{[](explore::Run& run) {
///         auto& os = run.make<rtos::RtosModel>(run.kernel(),
///                        rtos::RtosConfig{.tracer = &run.trace()});
///         ... create tasks/mutexes, os.start() ...
///     }};
///     auto result = ex.explore();
///     if (!result.violations.empty())
///         replayed = ex.replay(result.violations.front().schedule);
class Explorer {
public:
    using BuildFn = std::function<void(Run&)>;

    explicit Explorer(BuildFn build, ExploreConfig cfg = {})
        : build_(std::move(build)), cfg_(cfg) {}

    /// Bounded depth-first enumeration of decision traces, lexicographic
    /// order, starting from the all-default schedule.
    [[nodiscard]] ExploreResult explore();

    /// `n` independent random schedules (uniform choice at each point within
    /// the preemption bound). Cheap smoke-testing for spaces too big to
    /// enumerate; deterministic per ExploreConfig::seed.
    [[nodiscard]] ExploreResult random_walks(std::uint64_t n);

    /// Re-run one schedule exactly. Identical builds yield byte-for-byte
    /// identical traces (tests/test_explore.cpp locks this in).
    [[nodiscard]] PathResult replay(const Schedule& s);

    /// Outcome of replay_trace(): either a PathResult or a diagnostic. Never
    /// both empty — a malformed trace yields `error` only; a trace that
    /// parsed but did not fit the model yields the (diverged) result *and*
    /// an error naming the first bad decision point.
    struct ReplayOutcome {
        std::optional<PathResult> result;
        std::string error;  ///< empty = clean replay
        [[nodiscard]] bool ok() const { return result.has_value() && error.empty(); }
    };

    /// Replay from a serialized "len|i:c,..." decision trace (CLI/log round
    /// trip). Malformed or truncated input is reported as a structured error
    /// instead of asserting; an out-of-range choice is detected during the
    /// run and reported with its point index.
    [[nodiscard]] ReplayOutcome replay_trace(const std::string& trace);

    [[nodiscard]] const ExploreConfig& config() const { return cfg_; }

    /// One nondeterministic decision consulted during a run: the candidate
    /// index taken and how many candidates were on offer. The decision list of
    /// a completed path is what DFS successor generation consumes — both the
    /// serial next_plan() backtracking here and the prefix-sharding child
    /// generation of the parallel engine.
    struct Decision {
        std::uint32_t chosen;
        std::uint32_t count;
    };

    /// Outcome of expand(): one completed path plus its full decision list.
    /// Per-path stat deltas are derivable (paths = 1, choice_points =
    /// decisions.size(), truncated = path.truncated), so a sharded driver can
    /// reconstruct exactly the ExploreStats the serial loop would have
    /// accumulated.
    struct Expansion {
        PathResult path;
        std::vector<Decision> decisions;
    };

    /// Run exactly one path: force `plan` as a prefix, then complete with
    /// default choices. This is the primitive the parallel engine shards
    /// across workers — each worker owns a private Explorer and expands the
    /// plan prefixes it claims. An empty plan runs the all-default schedule.
    [[nodiscard]] Expansion expand(const std::vector<std::uint32_t>& plan);

private:
    class Controller;

    PathResult run_path(const std::vector<std::uint32_t>* plan, bool random,
                        std::uint64_t rng_seed, std::vector<Decision>* decisions_out,
                        ExploreStats* stats,
                        std::string* divergence_detail_out = nullptr);
    void check_path(Run& run, PathResult& pr,
                    const std::optional<std::string>& abort_reason) const;
    static bool next_plan(const std::vector<Decision>& d, int bound,
                          std::vector<std::uint32_t>& plan, std::uint64_t& pruned);

    BuildFn build_;
    ExploreConfig cfg_;
};

}  // namespace slm::explore
