#include "explore/explore.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "sim/assert.hpp"

namespace slm::explore {

// ---- Schedule ----

std::size_t Schedule::divergences() const {
    return static_cast<std::size_t>(
        std::count_if(choices.begin(), choices.end(),
                      [](std::uint32_t c) { return c != 0; }));
}

std::string Schedule::to_string() const {
    std::string s = std::to_string(choices.size());
    s += '|';
    bool first = true;
    for (std::size_t i = 0; i < choices.size(); ++i) {
        if (choices[i] == 0) {
            continue;
        }
        if (!first) {
            s += ',';
        }
        first = false;
        s += std::to_string(i);
        s += ':';
        s += std::to_string(choices[i]);
    }
    return s;
}

namespace {

bool parse_u64(std::string_view sv, std::uint64_t& out) {
    const char* end = sv.data() + sv.size();
    const auto [ptr, ec] = std::from_chars(sv.data(), end, out);
    return ec == std::errc{} && ptr == end && !sv.empty();
}

}  // namespace

std::optional<Schedule> Schedule::parse(const std::string& s, std::string* err) {
    const auto fail = [&](std::string why) -> std::optional<Schedule> {
        if (err != nullptr) {
            *err = std::move(why);
        }
        return std::nullopt;
    };
    const std::size_t bar = s.find('|');
    if (bar == std::string::npos) {
        return fail("missing '|' separator (expected \"len|i:c,...\")");
    }
    std::uint64_t len = 0;
    if (!parse_u64(std::string_view(s).substr(0, bar), len)) {
        return fail("length field \"" + s.substr(0, bar) + "\" is not a number");
    }
    Schedule out;
    out.choices.assign(len, 0);
    std::string_view rest = std::string_view(s).substr(bar + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view pair = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        const std::size_t colon = pair.find(':');
        if (colon == std::string_view::npos) {
            return fail("entry \"" + std::string(pair) +
                        "\" has no ':' (expected \"index:choice\")");
        }
        std::uint64_t idx = 0;
        std::uint64_t val = 0;
        if (!parse_u64(pair.substr(0, colon), idx)) {
            return fail("index \"" + std::string(pair.substr(0, colon)) +
                        "\" is not a number");
        }
        if (!parse_u64(pair.substr(colon + 1), val)) {
            return fail("choice \"" + std::string(pair.substr(colon + 1)) +
                        "\" is not a number");
        }
        if (idx >= len) {
            return fail("index " + std::to_string(idx) +
                        " is past the declared length " + std::to_string(len));
        }
        if (val == 0) {
            return fail("entry " + std::to_string(idx) +
                        ":0 is redundant (0 is the default choice and is "
                        "never serialized)");
        }
        out.choices[idx] = static_cast<std::uint32_t>(val);
    }
    return out;
}

const char* to_string(Violation::Kind k) {
    switch (k) {
        case Violation::Kind::Deadlock: return "deadlock";
        case Violation::Kind::LostSignal: return "lost_signal";
        case Violation::Kind::DeadlineMiss: return "deadline_miss";
        case Violation::Kind::AssertionFailure: return "assertion_failure";
        case Violation::Kind::PropertyFailure: return "property_failure";
    }
    return "?";
}

// ---- canonical serialization ----

namespace {

void write_violation_json(std::ostream& os, const Violation& v) {
    os << "{\"kind\":\"" << to_string(v.kind) << "\",\"detail\":\""
       << trace::json_escape(v.detail) << "\",\"schedule\":\""
       << v.schedule.to_string() << "\",\"t_ns\":" << v.time.ns() << '}';
}

}  // namespace

void write_result_json(std::ostream& os, const ExploreResult& res) {
    os << "{\"schema\":\"slm-explore-result-v1\"";
    os << ",\"stats\":{\"paths\":" << res.stats.paths
       << ",\"choice_points\":" << res.stats.choice_points
       << ",\"pruned\":" << res.stats.pruned
       << ",\"max_depth\":" << res.stats.max_depth
       << ",\"truncated\":" << res.stats.truncated << '}';
    os << ",\"exhausted\":" << (res.exhausted ? "true" : "false");
    os << ",\"violations\":[";
    for (std::size_t i = 0; i < res.violations.size(); ++i) {
        if (i != 0) {
            os << ',';
        }
        write_violation_json(os, res.violations[i]);
    }
    os << ']';
    os << ",\"first_failure\":";
    if (!res.first_failure.has_value()) {
        os << "null";
    } else {
        const PathResult& pr = *res.first_failure;
        os << "{\"schedule\":\"" << pr.schedule.to_string()
           << "\",\"end_ns\":" << pr.end_time.ns()
           << ",\"more_timed\":" << (pr.more_timed ? "true" : "false")
           << ",\"truncated\":" << (pr.truncated ? "true" : "false")
           << ",\"diverged\":" << (pr.diverged ? "true" : "false")
           << ",\"violations\":[";
        for (std::size_t i = 0; i < pr.violations.size(); ++i) {
            if (i != 0) {
                os << ',';
            }
            write_violation_json(os, pr.violations[i]);
        }
        std::ostringstream csv;
        pr.trace.write_csv(csv);
        os << "],\"trace_csv\":\"" << trace::json_escape(csv.str()) << "\"}";
    }
    os << "}\n";
}

// ---- assert-handler scope ----

namespace {

/// While alive, SLM_ASSERT failures throw sim::SimulationAbort instead of
/// aborting the host process, so a contract violation on an explored path is
/// a recordable result. Restores the previous handler on destruction.
class AssertScope {
public:
    AssertScope() : prev_(sim::set_assert_handler(&throwing_handler)) {}
    ~AssertScope() { sim::set_assert_handler(prev_); }
    AssertScope(const AssertScope&) = delete;
    AssertScope& operator=(const AssertScope&) = delete;

private:
    static void throwing_handler(const sim::AssertInfo& ai) {
        throw sim::SimulationAbort{std::string(ai.file) + ":" +
                                   std::to_string(ai.line) + ": " + ai.cond +
                                   " (" + ai.msg + ")"};
    }

    sim::AssertHandler prev_;
};

/// splitmix64: tiny deterministic PRNG — good enough for uniform branch
/// picking and has no global state to leak between paths.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Walk the wait-for graph of the watched mutexes (task --waits-on--> mutex
/// --held-by--> task) and render the first cycle found, e.g.
/// "taskA -> m2 (held by taskB) -> m1 (held by taskA)". Empty if acyclic.
std::string describe_mutex_cycle(const std::vector<rtos::OsMutex*>& mutexes) {
    std::unordered_map<const rtos::Task*, const rtos::OsMutex*> waits_on;
    for (const rtos::OsMutex* m : mutexes) {
        for (const rtos::Task* t : m->waiters()) {
            waits_on.emplace(t, m);
        }
    }
    for (const auto& [start, unused] : waits_on) {
        std::unordered_set<const rtos::Task*> seen;
        const rtos::Task* t = start;
        while (t != nullptr) {
            const auto it = waits_on.find(t);
            if (it == waits_on.end()) {
                break;  // chain ends at a task that is not blocked on a mutex
            }
            if (!seen.insert(t).second) {
                // Revisited `t`: render the cycle starting from it.
                std::string desc = t->name();
                const rtos::Task* cur = t;
                do {
                    const rtos::OsMutex* m = waits_on.at(cur);
                    cur = m->owner();
                    desc += " -> " + m->name() + " (held by " + cur->name() + ")";
                } while (cur != t);
                return desc;
            }
            t = it->second->owner();
        }
    }
    return {};
}

}  // namespace

// ---- the controller ----

/// Drives every SchedulePoint of one run. Forced `plan` prefix, then either
/// the default choice (DFS/replay) or a bounded-uniform random choice.
class Explorer::Controller final : public sim::ScheduleController {
public:
    Controller(const std::vector<std::uint32_t>* plan, bool random, int bound,
               std::size_t max_choices, std::uint64_t rng_seed,
               trace::TraceRecorder* rec)
        : plan_(plan), random_(random), bound_(bound), max_choices_(max_choices),
          rng_(rng_seed), rec_(rec) {}

    std::size_t choose(const sim::SchedulePoint& pt) override {
        const auto count = static_cast<std::uint32_t>(pt.candidates.size());
        if (decisions_.size() >= max_choices_) {
            truncated_ = true;
            return 0;
        }
        std::uint32_t choice = 0;
        const std::size_t k = decisions_.size();
        if (plan_ != nullptr && k < plan_->size()) {
            choice = (*plan_)[k];
            if (choice >= count) {
                // A plan that does not fit the model (hand-edited or from a
                // different build) degrades to the default rather than dying.
                if (!diverged_) {
                    diverged_ = true;
                    diverged_at_ = k;
                    diverged_choice_ = choice;
                    diverged_count_ = count;
                }
                choice = 0;
            }
        } else if (random_ && divergences_ < bound_) {
            choice = static_cast<std::uint32_t>(splitmix64(rng_) % count);
        }
        if (choice != 0) {
            ++divergences_;
        }
        decisions_.push_back({choice, count});
        if (rec_ != nullptr) {
            rec_->marker(pt.now, std::string("choice[") + sim::to_string(pt.kind) +
                                     "] #" + std::to_string(k) + " -> " +
                                     pt.candidates[choice] + " (" +
                                     std::to_string(choice) + "/" +
                                     std::to_string(count) + ")");
        }
        return choice;
    }

    [[nodiscard]] const std::vector<Decision>& decisions() const { return decisions_; }
    [[nodiscard]] bool truncated() const { return truncated_; }
    [[nodiscard]] bool diverged() const { return diverged_; }
    /// Diagnostic for the first out-of-range plan entry, e.g.
    /// "point 7: choice 3 out of range (2 candidates)". Empty if !diverged().
    [[nodiscard]] std::string divergence_detail() const {
        if (!diverged_) {
            return {};
        }
        return "point " + std::to_string(diverged_at_) + ": choice " +
               std::to_string(diverged_choice_) + " out of range (" +
               std::to_string(diverged_count_) + " candidate" +
               (diverged_count_ == 1 ? "" : "s") + ")";
    }

private:
    const std::vector<std::uint32_t>* plan_;
    bool random_;
    int bound_;
    std::size_t max_choices_;
    std::uint64_t rng_;
    trace::TraceRecorder* rec_;
    std::vector<Decision> decisions_;
    int divergences_ = 0;
    bool truncated_ = false;
    bool diverged_ = false;
    std::size_t diverged_at_ = 0;
    std::uint32_t diverged_choice_ = 0;
    std::uint32_t diverged_count_ = 0;
};

// ---- one path ----

PathResult Explorer::run_path(const std::vector<std::uint32_t>* plan, bool random,
                              std::uint64_t rng_seed,
                              std::vector<Decision>* decisions_out,
                              ExploreStats* stats,
                              std::string* divergence_detail_out) {
    Run run(cfg_.kernel);
    Controller ctl(plan, random, cfg_.preemption_bound, cfg_.max_choices_per_run,
                   rng_seed, cfg_.record_choices ? &run.trace_ : nullptr);
    run.kernel_.set_schedule_controller(&ctl);
    AssertScope assert_scope;

    PathResult pr;
    std::optional<std::string> abort_reason;
    try {
        build_(run);
        if (cfg_.horizon == SimTime::max()) {
            run.kernel_.run();
        } else {
            pr.more_timed = run.kernel_.run_until(cfg_.horizon);
        }
    } catch (const sim::SimulationAbort& a) {
        // Thrown outside process context (build function or scheduler path);
        // in-process aborts are already caught by the kernel trampoline.
        abort_reason = a.reason;
    }
    if (run.kernel_.aborted()) {
        abort_reason = *run.kernel_.abort_reason();
    }

    pr.end_time = run.kernel_.now();
    pr.truncated = ctl.truncated();
    pr.diverged = ctl.diverged();
    if (divergence_detail_out != nullptr) {
        *divergence_detail_out = ctl.divergence_detail();
    }
    pr.schedule.choices.reserve(ctl.decisions().size());
    for (const Decision& d : ctl.decisions()) {
        pr.schedule.choices.push_back(d.chosen);
    }

    check_path(run, pr, abort_reason);

    if (stats != nullptr) {
        ++stats->paths;
        stats->choice_points += ctl.decisions().size();
        stats->max_depth = std::max<std::uint64_t>(stats->max_depth,
                                                   ctl.decisions().size());
        if (ctl.truncated()) {
            ++stats->truncated;
        }
    }
    if (decisions_out != nullptr) {
        *decisions_out = ctl.decisions();
    }
    pr.trace = std::move(run.trace_);
    return pr;
}

void Explorer::check_path(Run& run, PathResult& pr,
                          const std::optional<std::string>& abort_reason) const {
    const auto add = [&](Violation::Kind k, std::string detail) {
        pr.violations.push_back({k, std::move(detail), pr.schedule,
                                 run.kernel_.now()});
    };

    if (abort_reason.has_value()) {
        add(Violation::Kind::AssertionFailure, *abort_reason);
        return;  // an aborted run's remaining state is not meaningful
    }

    if (cfg_.check_deadlock && !pr.more_timed) {
        const auto blocked = run.kernel_.blocked_processes();
        if (!blocked.empty()) {
            std::string detail = describe_mutex_cycle(run.mutexes_);
            if (!detail.empty()) {
                detail = "cyclic mutex wait: " + detail;
            } else {
                detail = "blocked forever:";
                for (const sim::Process* p : blocked) {
                    detail += ' ' + p->name();
                }
            }
            add(Violation::Kind::Deadlock, detail);
        }
    }

    for (const rtos::OsCore* os : run.models_) {
        if (cfg_.check_lost_signals && os->stats().lost_notifies > 0) {
            add(Violation::Kind::LostSignal,
                os->config().cpu_name + ": " +
                    std::to_string(os->stats().lost_notifies) +
                    " notify(s) with no waiting task");
        }
        if (cfg_.check_deadline_misses) {
            for (const rtos::Task* t : os->tasks()) {
                if (t->stats().deadline_misses > 0) {
                    add(Violation::Kind::DeadlineMiss,
                        t->name() + " missed " +
                            std::to_string(t->stats().deadline_misses) +
                            " deadline(s)");
                }
            }
        }
    }

    for (const auto& [name, pred] : run.expects_) {
        if (!pred()) {
            add(Violation::Kind::PropertyFailure, name);
        }
    }
}

// ---- DFS successor generation ----

/// Compute the next decision trace in lexicographic DFS order: find the last
/// position whose choice can be incremented without exceeding the preemption
/// bound, keep the prefix before it, and drop the suffix (it regrows with
/// default choices on the next run). Returns false when the bounded space is
/// exhausted. Branches skipped because the bound forbids them are tallied
/// into `pruned`.
bool Explorer::next_plan(const std::vector<Decision>& d, int bound,
                         std::vector<std::uint32_t>& plan, std::uint64_t& pruned) {
    std::vector<int> nz_before(d.size() + 1, 0);
    for (std::size_t i = 0; i < d.size(); ++i) {
        nz_before[i + 1] = nz_before[i] + (d[i].chosen != 0 ? 1 : 0);
    }
    for (std::size_t i = d.size(); i-- > 0;) {
        if (d[i].chosen + 1 >= d[i].count) {
            continue;  // no alternative left at this point
        }
        // Incrementing makes d[i] non-default; it only adds a divergence if
        // the current choice was the default.
        const int divergences = nz_before[i] + 1;
        if (divergences > bound) {
            pruned += d[i].count - 1 - d[i].chosen;
            continue;
        }
        plan.clear();
        plan.reserve(i + 1);
        for (std::size_t j = 0; j < i; ++j) {
            plan.push_back(d[j].chosen);
        }
        plan.push_back(d[i].chosen + 1);
        return true;
    }
    return false;
}

// ---- drivers ----

ExploreResult Explorer::explore() {
    ExploreResult res;
    std::vector<std::uint32_t> plan;  // empty = all-default first path
    std::vector<Decision> decisions;
    for (;;) {
        if (res.stats.paths >= cfg_.max_paths) {
            break;  // budget exhausted, space not necessarily covered
        }
        PathResult pr = run_path(&plan, /*random=*/false, 0, &decisions,
                                 &res.stats);
        const bool failed = !pr.violations.empty();
        for (Violation& v : pr.violations) {
            if (res.violations.size() < cfg_.max_violations) {
                res.violations.push_back(v);
            }
        }
        if (failed && !res.first_failure.has_value()) {
            res.first_failure = std::move(pr);
        }
        if (res.violations.size() >= cfg_.max_violations) {
            break;
        }
        if (!next_plan(decisions, cfg_.preemption_bound, plan,
                       res.stats.pruned)) {
            res.exhausted = true;
            break;
        }
    }
    return res;
}

ExploreResult Explorer::random_walks(std::uint64_t n) {
    ExploreResult res;
    std::unordered_set<std::string> reported;  // dedup repeats across walks
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t stream = cfg_.seed + i;
        const std::uint64_t rng_seed = splitmix64(stream);
        PathResult pr = run_path(nullptr, /*random=*/true, rng_seed, nullptr,
                                 &res.stats);
        const bool failed = !pr.violations.empty();
        for (Violation& v : pr.violations) {
            if (res.violations.size() < cfg_.max_violations &&
                reported.insert(std::string(to_string(v.kind)) + '@' +
                                v.schedule.to_string()).second) {
                res.violations.push_back(v);
            }
        }
        if (failed && !res.first_failure.has_value()) {
            res.first_failure = std::move(pr);
        }
        if (res.violations.size() >= cfg_.max_violations) {
            break;
        }
    }
    return res;
}

PathResult Explorer::replay(const Schedule& s) {
    return run_path(&s.choices, /*random=*/false, 0, nullptr, nullptr);
}

Explorer::Expansion Explorer::expand(const std::vector<std::uint32_t>& plan) {
    Expansion e;
    e.path = run_path(&plan, /*random=*/false, 0, &e.decisions, nullptr);
    return e;
}

Explorer::ReplayOutcome Explorer::replay_trace(const std::string& trace) {
    ReplayOutcome out;
    std::string parse_err;
    const std::optional<Schedule> s = Schedule::parse(trace, &parse_err);
    if (!s.has_value()) {
        out.error = "malformed decision trace: " + parse_err;
        return out;  // nothing was run
    }
    std::string divergence;
    out.result = run_path(&s->choices, /*random=*/false, 0, nullptr, nullptr,
                          &divergence);
    if (!divergence.empty()) {
        out.error = "decision trace does not fit this model at " + divergence +
                    "; replayed path diverged to the default choice there";
    }
    return out;
}

}  // namespace slm::explore
