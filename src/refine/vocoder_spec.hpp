#pragma once

#include <string_view>

namespace slm::refine {

/// Unscheduled specification of the vocoder example in the mini-SpecC dialect,
/// used by the refinement tests and by bench_refinement to reproduce the
/// paper's "104 changed lines, <1% of code" measurement shape. The structure
/// mirrors the paper's experiment: encoder and decoder behaviors running
/// concurrently inside a DSP processing element, frame I/O channels, and a bus
/// driver with interrupt-signaled semaphore.
inline constexpr std::string_view kVocoderSpec = R"SPEC(// GSM vocoder, unscheduled specification model (mini-SpecC dialect)

channel c_frame_queue() implements i_sender {
  event erdy;
  event eack;
  int frame[160];
  int valid;

  void send(int data[160]) {
    if (valid != 0) {
      wait(eack);
    }
    valid = 1;
    notify erdy;
  }

  void recv(int data[160]) {
    if (valid == 0) {
      wait(erdy);
    }
    valid = 0;
    notify eack;
  }
};

channel c_bits_queue() {
  event erdy;
  event eack;
  int bits[244];
  int valid;

  void send(int data[244]) {
    if (valid != 0) {
      wait(eack);
    }
    valid = 1;
    notify erdy;
  }

  void recv(int data[244]) {
    if (valid == 0) {
      wait(erdy);
    }
    valid = 0;
    notify eack;
  }
};

channel c_semaphore() {
  event sig;
  int count;

  void release(void) {
    count = count + 1;
    notify sig;
  }

  void acquire(void) {
    while (count == 0) {
      wait(sig);
    }
    count = count - 1;
  }
};

behavior Preemphasis() {
  void main(void) {
    waitfor(180);
  }
};

behavior LpAnalysis() {
  void main(void) {
    waitfor(1450);
  }
};

behavior OpenLoopPitch() {
  void main(void) {
    waitfor(880);
  }
};

behavior ClosedLoopPitch() {
  void main(void) {
    waitfor(1190);
  }
};

behavior CodebookSearch() {
  void main(void) {
    waitfor(2630);
  }
};

behavior Coder(c_frame_queue speech_in, c_bits_queue bits_out) {
  Preemphasis pre;
  LpAnalysis lp;
  OpenLoopPitch olp;
  ClosedLoopPitch clp;
  CodebookSearch cbs;
  int frame[160];
  int bits[244];

  void main(void) {
    while (1) {
      speech_in.recv(frame);
      pre.main();
      lp.main();
      olp.main();
      clp.main();
      cbs.main();
      waitfor(320);
      bits_out.send(bits);
    }
  }
};

behavior LpSynthesis() {
  void main(void) {
    waitfor(900);
  }
};

behavior Postfilter() {
  void main(void) {
    waitfor(640);
  }
};

behavior Decoder(c_bits_queue bits_in, c_frame_queue speech_out) {
  LpSynthesis syn;
  Postfilter post;
  int bits[244];
  int frame[160];

  void main(void) {
    while (1) {
      bits_in.recv(bits);
      syn.main();
      post.main();
      waitfor(260);
      speech_out.send(frame);
    }
  }
};

behavior BusDriver(c_semaphore sem, c_frame_queue speech_in) {
  int rxbuf[160];

  void main(void) {
    while (1) {
      sem.acquire();
      waitfor(40);
      speech_in.send(rxbuf);
    }
  }
};

behavior DspPe(c_semaphore sem) {
  c_frame_queue mic_in;
  c_frame_queue spk_out;
  c_bits_queue radio_tx;
  Coder coder(mic_in, radio_tx);
  Decoder decoder(radio_tx, spk_out);
  BusDriver driver(sem, mic_in);

  void main(void) {
    waitfor(120);
    par {
      coder.main();
      decoder.main();
      driver.main();
    }
  }
};
)SPEC";

}  // namespace slm::refine
