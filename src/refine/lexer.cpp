#include "refine/lexer.hpp"

#include <array>
#include <cctype>

namespace slm::refine {

const char* to_string(TokKind k) {
    switch (k) {
        case TokKind::Ident: return "ident";
        case TokKind::Keyword: return "keyword";
        case TokKind::Number: return "number";
        case TokKind::String: return "string";
        case TokKind::Punct: return "punct";
        case TokKind::Comment: return "comment";
        case TokKind::Eof: return "eof";
    }
    return "?";
}

namespace {

constexpr std::array<std::string_view, 10> kKeywords = {
    "behavior", "channel", "event",      "par",  "waitfor",
    "wait",     "notify",  "interface",  "main", "implements",
};

bool is_keyword(std::string_view s) {
    for (const auto kw : kKeywords) {
        if (s == kw) {
            return true;
        }
    }
    return false;
}

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexer::Lexer(std::string_view source) : src_(source) {}

char Lexer::peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
    }
    return c;
}

std::vector<Token> Lexer::run() {
    std::vector<Token> out;
    while (!at_end()) {
        lex_one(out);
    }
    out.push_back(Token{TokKind::Eof, "", src_.size(), line_});
    return out;
}

void Lexer::lex_one(std::vector<Token>& out) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        return;
    }

    const std::size_t start = pos_;
    const int start_line = line_;
    const auto emit = [&](TokKind kind) {
        out.push_back(Token{kind, std::string(src_.substr(start, pos_ - start)), start,
                            start_line});
    };

    // comments
    if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') {
            advance();
        }
        emit(TokKind::Comment);
        return;
    }
    if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) {
            advance();
        }
        if (at_end()) {
            errors_.push_back({"unterminated block comment", start_line});
        } else {
            advance();
            advance();
        }
        emit(TokKind::Comment);
        return;
    }

    if (ident_start(c)) {
        while (!at_end() && ident_char(peek())) {
            advance();
        }
        const std::string_view text = src_.substr(start, pos_ - start);
        emit(is_keyword(text) ? TokKind::Keyword : TokKind::Ident);
        return;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        while (!at_end() && (ident_char(peek()) || peek() == '.')) {
            advance();  // accepts ints, floats, hex, suffixes — good enough
        }
        emit(TokKind::Number);
        return;
    }

    if (c == '"') {
        advance();
        while (!at_end() && peek() != '"') {
            if (peek() == '\\') {
                advance();
            }
            if (!at_end()) {
                advance();
            }
        }
        if (at_end()) {
            errors_.push_back({"unterminated string literal", start_line});
        } else {
            advance();
        }
        emit(TokKind::String);
        return;
    }

    // multi-char punctuation that matters for pass-through fidelity
    static constexpr std::array<std::string_view, 12> kMulti = {
        "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--"};
    for (const auto m : kMulti) {
        if (src_.substr(pos_, m.size()) == m) {
            advance();
            advance();
            emit(TokKind::Punct);
            return;
        }
    }

    advance();
    emit(TokKind::Punct);
}

}  // namespace slm::refine
