#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace slm::refine {

/// Attributes for a behavior that is converted into an RTOS task (paper §4.2,
/// Fig. 5: parameters of the generated os.task_create call).
struct TaskSpec {
    std::string type = "APERIODIC";  ///< APERIODIC or PERIODIC
    std::uint64_t period = 0;
    std::uint64_t wcet = 0;
};

/// What the refiner should transform.
struct RefineConfig {
    /// Behaviors to convert into tasks, by name. Each receives the full task
    /// refinement: RTOS parameter, `proc me` + init() members, task_activate/
    /// task_terminate bracketing of main(), waitfor -> time_wait, and par
    /// fork/join bracketing.
    std::map<std::string, TaskSpec> tasks;

    /// Behavior that owns the RTOS instance (the PE top behavior): receives an
    /// `RTOS os;` member instead of a parameter. Optional.
    std::string os_owner;

    /// Apply synchronization refinement to channels (paper Fig. 7):
    /// event -> evt, wait -> os.event_wait, notify -> os.event_notify, and an
    /// RTOS parameter on every channel.
    bool refine_channels = true;
};

/// One source edit: replace bytes [begin, end) with `replacement`.
/// A pure insertion has begin == end.
struct Edit {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::string replacement;
};

/// Refinement metrics — the paper reports "changing or adding 104 lines or
/// less than 1% of code" for the vocoder.
struct RefineReport {
    int lines_total = 0;    ///< lines in the original source
    int lines_changed = 0;  ///< original lines modified in place
    int lines_added = 0;    ///< new lines inserted
    std::size_t edit_count = 0;
    std::vector<std::string> notes;  ///< one entry per semantic action

    [[nodiscard]] int lines_touched() const { return lines_changed + lines_added; }
    [[nodiscard]] double percent_touched() const {
        return lines_total > 0 ? 100.0 * lines_touched() / lines_total : 0.0;
    }
};

struct RefineResult {
    std::string output;  ///< refined source (valid only if ok())
    RefineReport report;
    std::vector<std::string> errors;

    [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Automatic model refinement: rewrites an unscheduled mini-SpecC
/// specification into an RTOS-based architecture model, implementing the three
/// mechanical steps of paper §4.2 — task refinement (Fig. 5), task creation
/// (Fig. 6), and synchronization refinement (Fig. 7) — as source-to-source
/// edits that preserve the original formatting.
class Refiner {
public:
    explicit Refiner(RefineConfig cfg) : cfg_(std::move(cfg)) {}

    [[nodiscard]] RefineResult refine(std::string_view source) const;

private:
    RefineConfig cfg_;
};

/// Apply a batch of non-overlapping edits to `source` (exposed for testing).
[[nodiscard]] std::string apply_edits(std::string_view source, std::vector<Edit> edits);

}  // namespace slm::refine
