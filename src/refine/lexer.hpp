#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace slm::refine {

/// Token categories for the mini-SpecC dialect accepted by the refinement
/// tool. The dialect covers what the paper's refinement steps operate on:
/// behaviors, channels, events, waitfor/wait/notify statements, par blocks,
/// method definitions and instance declarations. Everything else (expressions,
/// control flow) passes through the refiner untouched as plain tokens.
enum class TokKind {
    Ident,
    Keyword,  // behavior channel event par waitfor wait notify interface implements
    Number,
    String,
    Punct,  // single/multi-char punctuation: { } ( ) ; , . :: etc.
    Comment,
    Eof,
};

[[nodiscard]] const char* to_string(TokKind k);

struct Token {
    TokKind kind = TokKind::Eof;
    std::string text;
    std::size_t offset = 0;  ///< byte offset of the first character in the source
    int line = 1;            ///< 1-based line number

    [[nodiscard]] std::size_t end_offset() const { return offset + text.size(); }
    [[nodiscard]] bool is(TokKind k, std::string_view t) const {
        return kind == k && text == t;
    }
    [[nodiscard]] bool is_punct(std::string_view t) const {
        return is(TokKind::Punct, t);
    }
    [[nodiscard]] bool is_kw(std::string_view t) const {
        return is(TokKind::Keyword, t);
    }
};

/// Lexing error with location information.
struct LexError {
    std::string message;
    int line = 0;
};

/// Tokenize mini-SpecC source. Comments are kept as tokens (the refiner skips
/// them) so that edits never land inside a comment. Whitespace is discarded;
/// the rewriter works on byte offsets into the original source, so formatting
/// is preserved exactly.
class Lexer {
public:
    explicit Lexer(std::string_view source);

    /// Tokenize the whole input. On error, `errors()` is non-empty and the
    /// tokens lexed so far are returned.
    [[nodiscard]] std::vector<Token> run();

    [[nodiscard]] const std::vector<LexError>& errors() const { return errors_; }

private:
    [[nodiscard]] char peek(std::size_t ahead = 0) const;
    [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
    char advance();
    void lex_one(std::vector<Token>& out);

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    std::vector<LexError> errors_;
};

}  // namespace slm::refine
