#include "refine/refiner.hpp"

#include <algorithm>
#include <set>

#include "refine/lexer.hpp"
#include "sim/assert.hpp"

namespace slm::refine {

std::string apply_edits(std::string_view source, std::vector<Edit> edits) {
    std::stable_sort(edits.begin(), edits.end(),
                     [](const Edit& a, const Edit& b) { return a.begin < b.begin; });
    std::string out;
    out.reserve(source.size() + source.size() / 4);
    std::size_t pos = 0;
    for (const Edit& e : edits) {
        SLM_ASSERT(e.begin >= pos && e.end >= e.begin && e.end <= source.size(),
                   "overlapping or out-of-range edits");
        out.append(source.substr(pos, e.begin - pos));
        out.append(e.replacement);
        pos = e.end;
    }
    out.append(source.substr(pos));
    return out;
}

namespace {

struct Decl {
    enum class Kind { Behavior, Channel };
    Kind kind = Kind::Behavior;
    std::string name;
    std::size_t paren_open = 0;  // code-token indices
    std::size_t paren_close = 0;
    std::size_t body_open = 0;
    std::size_t body_close = 0;
};

class Pass {
public:
    Pass(const RefineConfig& cfg, std::string_view src) : cfg_(cfg), src_(src) {}

    RefineResult run() {
        Lexer lexer{src_};
        toks_ = lexer.run();
        for (const LexError& e : lexer.errors()) {
            result_.errors.push_back("line " + std::to_string(e.line) + ": " + e.message);
        }
        if (!result_.errors.empty()) {
            return std::move(result_);
        }
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Comment) {
                code_.push_back(i);
            }
        }
        scan_decls();
        if (!result_.errors.empty()) {
            return std::move(result_);
        }
        for (const std::string& name : missing_task_behaviors()) {
            result_.errors.push_back("task behavior '" + name + "' not found in source");
        }
        if (!result_.errors.empty()) {
            return std::move(result_);
        }
        compute_os_users();
        for (const Decl& d : decls_) {
            process_decl(d);
        }
        finish_report();
        result_.output = apply_edits(src_, edits_);
        return std::move(result_);
    }

private:
    // ---- token navigation (over code tokens, comments skipped) ----

    [[nodiscard]] const Token& tok(std::size_t ci) const { return toks_[code_[ci]]; }
    [[nodiscard]] std::size_t ntok() const { return code_.size(); }

    /// Index of the token matching the bracket at `open_ci`, or npos on error.
    [[nodiscard]] std::size_t match(std::size_t open_ci, std::string_view open,
                                    std::string_view close) {
        int depth = 0;
        for (std::size_t i = open_ci; i < ntok(); ++i) {
            if (tok(i).is_punct(open)) {
                ++depth;
            } else if (tok(i).is_punct(close)) {
                if (--depth == 0) {
                    return i;
                }
            }
        }
        result_.errors.push_back("line " + std::to_string(tok(open_ci).line) +
                                 ": unmatched '" + std::string(open) + "'");
        return npos;
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Leading whitespace of the line containing byte `offset`.
    [[nodiscard]] std::string indent_of(std::size_t offset) const {
        std::size_t bol = src_.rfind('\n', offset == 0 ? 0 : offset - 1);
        bol = (bol == std::string_view::npos) ? 0 : bol + 1;
        std::size_t i = bol;
        while (i < src_.size() && (src_[i] == ' ' || src_[i] == '\t')) {
            ++i;
        }
        return std::string(src_.substr(bol, i - bol));
    }

    void edit(std::size_t b, std::size_t e, std::string repl, std::string note) {
        edits_.push_back(Edit{b, e, std::move(repl)});
        result_.report.notes.push_back(std::move(note));
    }

    // ---- structure discovery ----

    void scan_decls() {
        std::size_t ci = 0;
        while (ci < ntok()) {
            if ((tok(ci).is_kw("behavior") || tok(ci).is_kw("channel")) &&
                ci + 2 < ntok() && tok(ci + 1).kind == TokKind::Ident &&
                tok(ci + 2).is_punct("(")) {
                Decl d;
                d.kind = tok(ci).is_kw("behavior") ? Decl::Kind::Behavior
                                                   : Decl::Kind::Channel;
                d.name = tok(ci + 1).text;
                d.paren_open = ci + 2;
                d.paren_close = match(d.paren_open, "(", ")");
                if (d.paren_close == npos) {
                    return;
                }
                std::size_t j = d.paren_close + 1;
                if (j < ntok() && tok(j).is_kw("implements")) {
                    j += 2;  // implements IDENT
                }
                if (j >= ntok() || !tok(j).is_punct("{")) {
                    result_.errors.push_back("line " + std::to_string(tok(ci).line) +
                                             ": expected '{' after declaration of '" +
                                             d.name + "'");
                    return;
                }
                d.body_open = j;
                d.body_close = match(j, "{", "}");
                if (d.body_close == npos) {
                    return;
                }
                decls_.push_back(d);
                declared_.insert(d.name);
                ci = d.body_close + 1;
            } else {
                ++ci;
            }
        }
    }

    [[nodiscard]] std::vector<std::string> missing_task_behaviors() const {
        std::vector<std::string> missing;
        for (const auto& [name, spec] : cfg_.tasks) {
            (void)spec;
            const bool found =
                std::any_of(decls_.begin(), decls_.end(), [&](const Decl& d) {
                    return d.kind == Decl::Kind::Behavior && d.name == name;
                });
            if (!found) {
                missing.push_back(name);
            }
        }
        return missing;
    }

    /// Does this declaration's body use SLDL services that map to RTOS calls
    /// (delays, events, synchronization), directly or through something it
    /// instantiates? Pure-computation behaviors answer no and stay untouched —
    /// this is what keeps the refinement footprint small on realistic models
    /// where most lines are algorithm bodies (paper §5: ~1% of code).
    [[nodiscard]] bool computes_needs_os(const Decl& d,
                                         std::set<std::string>& needy) const {
        for (std::size_t ci = d.body_open; ci <= d.body_close && ci < ntok(); ++ci) {
            const Token& t = tok(ci);
            if (t.is_kw("waitfor") || t.is_kw("wait") || t.is_kw("notify") ||
                t.is_kw("event") || t.is_kw("par")) {
                return true;
            }
        }
        for (const std::string& inst : member_instantiations(d)) {
            if (needy.count(inst) != 0) {
                return true;
            }
        }
        return false;
    }

    /// Compute the set of declarations that execute under the RTOS and
    /// require the os handle: the seeds (task behaviors, channels, os_owner)
    /// plus every *OS-service-using* behavior instantiated — directly or
    /// indirectly — inside one of them.
    void compute_os_users() {
        // Bottom-up: which declarations use OS-mapped services at all?
        std::set<std::string> needy;
        bool grew = true;
        while (grew) {
            grew = false;
            for (const Decl& d : decls_) {
                if (needy.count(d.name) == 0 && computes_needs_os(d, needy)) {
                    needy.insert(d.name);
                    grew = true;
                }
            }
        }
        for (const Decl& d : decls_) {
            if (cfg_.tasks.count(d.name) != 0 || d.name == cfg_.os_owner ||
                (d.kind == Decl::Kind::Channel && cfg_.refine_channels)) {
                os_users_.insert(d.name);
            }
        }
        grew = true;
        while (grew) {
            grew = false;
            for (const Decl& d : decls_) {
                if (os_users_.count(d.name) == 0) {
                    continue;
                }
                for (const std::string& inst : member_instantiations(d)) {
                    if (needy.count(inst) != 0 && os_users_.insert(inst).second) {
                        grew = true;
                    }
                }
            }
        }
    }

    /// Names of declared types instantiated at member level of `d`.
    [[nodiscard]] std::vector<std::string> member_instantiations(const Decl& d) const {
        std::vector<std::string> out;
        int depth = 0;
        for (std::size_t ci = d.body_open; ci <= d.body_close && ci < ntok(); ++ci) {
            const Token& t = tok(ci);
            if (t.is_punct("{")) {
                ++depth;
            } else if (t.is_punct("}")) {
                --depth;
            } else if (depth == 1 && t.kind == TokKind::Ident &&
                       declared_.count(t.text) != 0 && ci + 1 < ntok() &&
                       tok(ci + 1).kind == TokKind::Ident) {
                out.push_back(t.text);
            }
        }
        return out;
    }

    /// Does `name` denote a declaration that receives an RTOS parameter?
    [[nodiscard]] bool takes_os_param(const std::string& name) const {
        return os_users_.count(name) != 0 && name != cfg_.os_owner;
    }

    // ---- the three refinement steps ----

    void process_decl(const Decl& d) {
        const bool is_task =
            d.kind == Decl::Kind::Behavior && cfg_.tasks.count(d.name) != 0;
        const bool is_chan = d.kind == Decl::Kind::Channel && cfg_.refine_channels;
        const bool is_owner = d.kind == Decl::Kind::Behavior && d.name == cfg_.os_owner;
        const bool is_sub =
            !is_task && !is_chan && !is_owner && os_users_.count(d.name) != 0;
        if (!is_task && !is_chan && !is_owner && !is_sub) {
            return;
        }

        const std::string ind = indent_of(tok(d.body_open).offset);
        const std::string ind1 = ind + "  ";

        if (is_task || is_chan || is_sub) {
            insert_os_param(d);
        }
        if (is_owner && !is_task) {
            edit(tok(d.body_open).end_offset(), tok(d.body_open).end_offset(),
                 "\n" + ind1 + "RTOS os;", d.name + ": instantiate RTOS model");
        }
        if (is_task) {
            const TaskSpec& spec = cfg_.tasks.at(d.name);
            edit(tok(d.body_open).end_offset(), tok(d.body_open).end_offset(),
                 "\n" + ind1 + "proc me;\n" + ind1 + "void init(void) { me = os.task_create(\"" +
                     d.name + "\", " + spec.type + ", " + std::to_string(spec.period) +
                     ", " + std::to_string(spec.wcet) + "); }",
                 d.name + ": add proc me / init() members");
        }

        rewrite_body(d, is_task, is_chan, is_owner);
    }

    void insert_os_param(const Decl& d) {
        const Token& open = tok(d.paren_open);
        const std::string note = d.name + ": add RTOS parameter";
        if (tok(d.paren_open + 1).is_punct(")")) {
            edit(open.end_offset(), open.end_offset(), "RTOS os", note);
        } else if (tok(d.paren_open + 1).is(TokKind::Ident, "void") &&
                   d.paren_open + 2 == d.paren_close) {
            edit(tok(d.paren_open + 1).offset, tok(d.paren_open + 1).end_offset(),
                 "RTOS os", note);
        } else {
            edit(open.end_offset(), open.end_offset(), "RTOS os, ", note);
        }
    }

    /// Walk the declaration body and apply statement-level refinements.
    void rewrite_body(const Decl& d, bool is_task, bool is_chan, bool is_owner) {
        int depth = 0;  // 1 == member level
        for (std::size_t ci = d.body_open; ci <= d.body_close && ci < ntok(); ++ci) {
            const Token& t = tok(ci);
            if (t.is_punct("{")) {
                ++depth;
                continue;
            }
            if (t.is_punct("}")) {
                --depth;
                continue;
            }

            // The os_owner behavior executes on the PE as well: its delays and
            // synchronization run under the RTOS even though it is not wrapped
            // into a task of its own.
            if (t.is_kw("event")) {
                edit(t.offset, t.end_offset(), "evt",
                     d.name + ": event -> evt (line " + std::to_string(t.line) + ")");
                continue;
            }
            if (t.is_kw("waitfor")) {
                rewrite_call(d, ci, "os.time_wait");
                continue;
            }
            if (t.is_kw("wait")) {
                rewrite_call(d, ci, "os.event_wait");
                continue;
            }
            if (t.is_kw("notify")) {
                rewrite_call(d, ci, "os.event_notify");
                continue;
            }
            if (t.is_kw("par") && (is_task || is_owner) && ci + 1 < ntok() &&
                tok(ci + 1).is_punct("{")) {
                ci = rewrite_par(d, ci);
                continue;
            }
            if (t.is_kw("main") && is_task && depth == 1 && ci + 1 < ntok() &&
                tok(ci + 1).is_punct("(")) {
                rewrite_main(d, ci);
                continue;
            }
            if (depth == 1 && t.kind == TokKind::Ident && takes_os_param(t.text) &&
                ci + 2 < ntok() && tok(ci + 1).kind == TokKind::Ident) {
                rewrite_instantiation(d, ci);
                continue;
            }
        }
    }

    /// `waitfor(500);` / `waitfor 500;` -> `os.time_wait(500);` (same pattern
    /// for wait/notify, which in SpecC are commonly written without parens).
    void rewrite_call(const Decl& d, std::size_t kw_ci, const std::string& callee) {
        const Token& kw = tok(kw_ci);
        const std::string note = d.name + ": " + kw.text + " -> " + callee + " (line " +
                                 std::to_string(kw.line) + ")";
        if (kw_ci + 1 < ntok() && tok(kw_ci + 1).is_punct("(")) {
            edit(kw.offset, kw.end_offset(), callee, note);
            return;
        }
        // bare form: wrap the argument list up to the terminating ';'
        std::size_t semi = kw_ci + 1;
        while (semi < ntok() && !tok(semi).is_punct(";")) {
            ++semi;
        }
        if (semi >= ntok()) {
            result_.errors.push_back("line " + std::to_string(kw.line) +
                                     ": missing ';' after " + kw.text);
            return;
        }
        edit(kw.offset, kw.end_offset(), callee + "(", note);
        edit(tok(semi).offset, tok(semi).offset, ")", note);
    }

    /// `par { b2.main(); b3.main(); }` gains child init calls and the
    /// par_start/par_end bracket (paper Fig. 6).
    std::size_t rewrite_par(const Decl& d, std::size_t par_ci) {
        const std::size_t open = par_ci + 1;
        const std::size_t close = match(open, "{", "}");
        if (close == npos) {
            return ntok();
        }
        // Children: instance.main() calls inside the par body.
        std::vector<std::string> children;
        for (std::size_t i = open + 1; i < close; ++i) {
            if (tok(i).kind == TokKind::Ident && tok(i + 1).is_punct(".") &&
                tok(i + 2).is_kw("main")) {
                children.push_back(tok(i).text);
                i += 2;
            }
        }
        const std::string ind = indent_of(tok(par_ci).offset);
        std::string before;
        for (const std::string& c : children) {
            before += c + ".init();\n" + ind;
        }
        before += "os.par_start();\n" + ind;
        edit(tok(par_ci).offset, tok(par_ci).offset, before,
             d.name + ": fork/join refinement around par (line " +
                 std::to_string(tok(par_ci).line) + ")");
        edit(tok(close).end_offset(), tok(close).end_offset(), "\n" + ind + "os.par_end();",
             d.name + ": par_end after join");
        return close;
    }

    /// Bracket the task's main() body with task_activate / task_terminate.
    void rewrite_main(const Decl& d, std::size_t main_ci) {
        const std::size_t popen = main_ci + 1;
        const std::size_t pclose = match(popen, "(", ")");
        if (pclose == npos || pclose + 1 >= ntok() || !tok(pclose + 1).is_punct("{")) {
            return;  // a call `x.main()` rather than a definition
        }
        const std::size_t bopen = pclose + 1;
        const std::size_t bclose = match(bopen, "{", "}");
        if (bclose == npos) {
            return;
        }
        const std::string ind = indent_of(tok(main_ci).offset);
        const std::string ind1 = ind + "  ";
        edit(tok(bopen).end_offset(), tok(bopen).end_offset(),
             "\n" + ind1 + "os.task_activate(me);", d.name + ": task_activate at main entry");
        edit(tok(bclose).offset, tok(bclose).offset,
             "  os.task_terminate();\n" + ind, d.name + ": task_terminate at main exit");
    }

    /// `B2 b2;` -> `B2 b2(os);`  /  `B2 b2(c1, c2);` -> `B2 b2(os, c1, c2);`
    void rewrite_instantiation(const Decl& d, std::size_t type_ci) {
        const Token& type = tok(type_ci);
        const std::size_t after = type_ci + 2;
        const std::string note = d.name + ": pass RTOS to instance '" +
                                 tok(type_ci + 1).text + "' (line " +
                                 std::to_string(type.line) + ")";
        if (after < ntok() && tok(after).is_punct(";")) {
            edit(tok(after).offset, tok(after).offset, "(os)", note);
        } else if (after < ntok() && tok(after).is_punct("(")) {
            const bool empty = tok(after + 1).is_punct(")");
            edit(tok(after).end_offset(), tok(after).end_offset(),
                 empty ? "os" : "os, ", note);
        }
    }

    // ---- metrics ----

    void finish_report() {
        RefineReport& rep = result_.report;
        rep.lines_total =
            static_cast<int>(std::count(src_.begin(), src_.end(), '\n')) +
            (!src_.empty() && src_.back() != '\n' ? 1 : 0);
        rep.edit_count = edits_.size();

        std::set<int> changed_lines;
        for (const Edit& e : edits_) {
            const auto newlines_in = [](std::string_view s) {
                return static_cast<int>(std::count(s.begin(), s.end(), '\n'));
            };
            const int added = newlines_in(e.replacement) -
                              newlines_in(src_.substr(e.begin, e.end - e.begin));
            rep.lines_added += std::max(0, added);
            // Any replacement text on the existing line marks it changed.
            const bool touches_line =
                e.end > e.begin ||
                (!e.replacement.empty() && e.replacement.front() != '\n');
            if (touches_line) {
                changed_lines.insert(line_of(e.begin));
            }
        }
        rep.lines_changed = static_cast<int>(changed_lines.size());
    }

    [[nodiscard]] int line_of(std::size_t offset) const {
        return 1 + static_cast<int>(
                       std::count(src_.begin(), src_.begin() + static_cast<long>(offset),
                                  '\n'));
    }

    const RefineConfig& cfg_;
    std::string_view src_;
    std::vector<Token> toks_;
    std::vector<std::size_t> code_;
    std::vector<Decl> decls_;
    std::set<std::string> declared_;
    std::set<std::string> os_users_;
    std::vector<Edit> edits_;
    RefineResult result_;
};

}  // namespace

RefineResult Refiner::refine(std::string_view source) const {
    Pass pass{cfg_, source};
    return pass.run();
}

}  // namespace slm::refine
