#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "explore/explore.hpp"
#include "fault/campaign.hpp"

namespace slm::parallel {

/// Everything the engine needs from one expanded plan prefix *except* the
/// trace: the full decision list (to regenerate the schedule and the child
/// prefixes) and the check outcome. Traces are deliberately not cached — a
/// failing path's trace is regenerated bit-exactly by replay when it is
/// needed for ExploreResult::first_failure, which keeps cache entries small
/// (bytes, not the megabytes a trace can reach).
struct CachedExpansion {
    std::vector<explore::Explorer::Decision> decisions;
    std::vector<explore::Violation> violations;
    SimTime end_time{};
    bool more_timed = false;
    bool truncated = false;
    bool diverged = false;
};

/// Shared result cache for warm re-runs of exploration and fault campaigns
/// over an *unchanged* model. Keys are opaque strings built by the engine
/// (see expansion_cache_key()/campaign_cache_key() in parallel.hpp — the key
/// schema is documented in docs/parallel-exploration.md); correctness
/// therefore rests entirely on the caller's ParallelConfig::model_fingerprint
/// naming the model build honestly. A stale fingerprint misses; a *reused*
/// fingerprint over a changed model silently serves wrong results — the same
/// contract as any build cache.
///
/// Thread-safe: the map is sharded by key hash, one mutex per shard, so
/// workers rarely contend. Hit/miss counters are atomics updated on every
/// lookup.
class ResultCache {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t entries = 0;
    };

    ResultCache() = default;
    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /// Exploration entries (one per expanded plan prefix).
    bool lookup(const std::string& key, CachedExpansion& out);
    void store(const std::string& key, CachedExpansion value);

    /// Campaign entries (one per seed, full CampaignRun including trace_csv).
    bool lookup(const std::string& key, fault::CampaignRun& out);
    void store(const std::string& key, fault::CampaignRun value);

    [[nodiscard]] Stats stats() const;
    void clear();

private:
    static constexpr std::size_t kShards = 16;
    struct Shard {
        mutable std::mutex mu;
        std::unordered_map<std::string, CachedExpansion> expansions;
        std::unordered_map<std::string, fault::CampaignRun> campaign_runs;
    };

    Shard& shard_for(const std::string& key) {
        return shards_[std::hash<std::string>{}(key) % kShards];
    }

    Shard shards_[kShards];
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace slm::parallel
