#include "parallel/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "parallel/deque.hpp"

namespace slm::parallel {

namespace {

// ---- cache key construction ----

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffU;
        h *= kFnvPrime;
    }
}

void mix(std::uint64_t& h, const std::string& s) {
    mix(h, s.size());
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t explore_config_digest(const explore::ExploreConfig& cfg) {
    std::uint64_t h = kFnvOffset;
    mix(h, static_cast<std::uint64_t>(cfg.preemption_bound));
    mix(h, cfg.max_choices_per_run);
    mix(h, cfg.horizon.ns());
    mix(h, (cfg.check_deadlock ? 1U : 0U) | (cfg.check_lost_signals ? 2U : 0U) |
               (cfg.check_deadline_misses ? 4U : 0U));
    return h;
}

std::uint64_t fault_plan_digest(const fault::FaultPlan& plan) {
    std::uint64_t h = kFnvOffset;
    mix(h, plan.seed);
    mix(h, plan.specs.size());
    for (const fault::FaultSpec& s : plan.specs) {
        mix(h, static_cast<std::uint64_t>(s.kind));
        mix(h, s.target);
        mix(h, std::bit_cast<std::uint64_t>(s.factor));
        mix(h, s.amount.ns());
        mix(h, std::bit_cast<std::uint64_t>(s.probability));
        mix(h, s.after.ns());
        mix(h, s.until.ns());
        mix(h, s.extra);
        mix(h, s.at.has_value() ? s.at->ns() : ~std::uint64_t{0});
        mix(h, s.at.has_value() ? 1U : 0U);
    }
    return h;
}

std::string plan_to_string(const std::vector<std::uint32_t>& plan) {
    explore::Schedule s;
    s.choices = plan;
    return s.to_string();
}

// ---- the exploration engine ----

using Clock = std::chrono::steady_clock;

std::uint64_t since_ns(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
}

unsigned resolve_jobs(unsigned requested) {
    if (requested != 0) {
        return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/// One failing path, trace-free: enough to merge the violation list and to
/// identify (and if necessary re-simulate) the first failure.
struct FailRecord {
    std::vector<std::uint32_t> choices;
    std::vector<explore::Violation> violations;
};

struct ExploreWorker {
    unsigned id = 0;
    WorkDeque<std::vector<std::uint32_t>> deque;
    explore::ExploreStats stats;
    std::vector<FailRecord> fails;
    /// Lexicographically smallest failing path this worker simulated *live*
    /// (cache hits carry no trace, so they are never kept here).
    std::optional<explore::PathResult> min_fail;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t busy_ns = 0;
};

class ExploreEngine {
public:
    ExploreEngine(const explore::Explorer::BuildFn& build,
                  const explore::ExploreConfig& cfg, const ParallelConfig& pcfg)
        : build_(build), cfg_(cfg), pcfg_(pcfg) {
        if (pcfg_.cache != nullptr) {
            key_prefix_ = "x/" + pcfg_.model_fingerprint + '/' +
                          hex64(explore_config_digest(cfg_)) + '/';
        }
    }

    explore::ExploreResult run(unsigned jobs, ParallelStats* stats_out) {
        const auto wall0 = Clock::now();
        workers_.reserve(jobs);
        for (unsigned i = 0; i < jobs; ++i) {
            workers_.push_back(std::make_unique<ExploreWorker>());
            workers_.back()->id = i;
        }
        // The root work item: the empty prefix, i.e. the whole bounded space.
        in_flight_.store(1, std::memory_order_seq_cst);
        workers_[0]->deque.push({});

        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned i = 0; i < jobs; ++i) {
            threads.emplace_back([this, i] { worker_main(*workers_[i]); });
        }
        for (std::thread& t : threads) {
            t.join();
        }
        explore::ExploreResult res = merge();
        if (stats_out != nullptr) {
            fill_stats(*stats_out, jobs, since_ns(wall0));
        }
        return res;
    }

private:
    void worker_main(ExploreWorker& w) {
        explore::Explorer ex(build_, cfg_);
        std::vector<std::uint32_t> plan;
        for (;;) {
            if (acquire(w, plan)) {
                const auto t0 = Clock::now();
                process(w, ex, plan);
                w.busy_ns += since_ns(t0);
                in_flight_.fetch_sub(1, std::memory_order_seq_cst);
                continue;
            }
            if (in_flight_.load(std::memory_order_seq_cst) == 0) {
                return;
            }
            std::this_thread::yield();
        }
    }

    bool acquire(ExploreWorker& w, std::vector<std::uint32_t>& plan) {
        if (w.deque.pop(plan)) {
            return true;
        }
        const std::size_t n = workers_.size();
        for (std::size_t k = 1; k < n; ++k) {
            if (workers_[(w.id + k) % n]->deque.steal(plan)) {
                ++w.stolen;
                return true;
            }
        }
        return false;
    }

    void process(ExploreWorker& w, explore::Explorer& ex,
                 const std::vector<std::uint32_t>& plan) {
        ++w.executed;
        // Path budget: serial explore() stops before running path #max_paths.
        // Which paths fit into the budget depends on execution order, so a
        // capped parallel run is NOT equivalent to a capped serial run (the
        // documented carve-out from the determinism contract).
        const std::uint64_t ticket =
            path_tickets_.fetch_add(1, std::memory_order_seq_cst);
        if (ticket >= cfg_.max_paths) {
            budget_hit_.store(true, std::memory_order_seq_cst);
            return;
        }

        CachedExpansion ce;
        bool from_cache = false;
        std::string key;
        if (pcfg_.cache != nullptr) {
            key = key_prefix_ + plan_to_string(plan);
            from_cache = pcfg_.cache->lookup(key, ce);
            ++(from_cache ? w.cache_hits : w.cache_misses);
        }
        if (!from_cache) {
            explore::Explorer::Expansion e = ex.expand(plan);
            ce.decisions = std::move(e.decisions);
            ce.violations = e.path.violations;
            ce.end_time = e.path.end_time;
            ce.more_timed = e.path.more_timed;
            ce.truncated = e.path.truncated;
            ce.diverged = e.path.diverged;
            if (!e.path.violations.empty() &&
                (!w.min_fail.has_value() ||
                 e.path.schedule.choices < w.min_fail->schedule.choices)) {
                w.min_fail = std::move(e.path);
            }
            if (pcfg_.cache != nullptr) {
                pcfg_.cache->store(key, ce);
            }
        }

        // Stat deltas exactly as the serial run_path() would have counted.
        ++w.stats.paths;
        w.stats.choice_points += ce.decisions.size();
        w.stats.max_depth =
            std::max<std::uint64_t>(w.stats.max_depth, ce.decisions.size());
        if (ce.truncated) {
            ++w.stats.truncated;
        }

        if (!ce.violations.empty()) {
            FailRecord fr;
            fr.choices.reserve(ce.decisions.size());
            for (const explore::Explorer::Decision& d : ce.decisions) {
                fr.choices.push_back(d.chosen);
            }
            fr.violations = ce.violations;
            w.fails.push_back(std::move(fr));
        }

        spawn_children(w, plan, ce.decisions);
    }

    /// Prefix-sharding invariant (docs/parallel-exploration.md): the subtree
    /// of a work item `plan` (frozen = plan.size()) is its default-completion
    /// path plus, for every later position i and non-default choice c, the
    /// disjoint subtree rooted at plan ++ 0^(i-frozen) ++ [c]. Every child
    /// adds exactly one divergence over this path, so the preemption bound
    /// admits all of them or none — and the pruned tally for the "none" case
    /// (count-1 per position, the chosen entry being the default) is exactly
    /// what serial next_plan() accumulates across its backtracks.
    void spawn_children(ExploreWorker& w, const std::vector<std::uint32_t>& plan,
                        const std::vector<explore::Explorer::Decision>& d) {
        std::uint64_t divergences = 0;
        for (const explore::Explorer::Decision& dec : d) {
            divergences += dec.chosen != 0 ? 1 : 0;
        }
        if (divergences + 1 > static_cast<std::uint64_t>(cfg_.preemption_bound)) {
            for (std::size_t i = plan.size(); i < d.size(); ++i) {
                w.stats.pruned += d[i].count - 1;
            }
            return;
        }
        // d[j].chosen == plan[j] for j < frozen and 0 after (default
        // completion), so every child is plan ++ 0^(i-frozen) ++ [c].
        std::vector<std::uint32_t> child(plan);
        for (std::size_t i = plan.size(); i < d.size(); ++i) {
            child.push_back(0);
            for (std::uint32_t c = 1; c < d[i].count; ++c) {
                child[i] = c;
                in_flight_.fetch_add(1, std::memory_order_seq_cst);
                w.deque.push(child);
            }
            child[i] = 0;
        }
    }

    explore::ExploreResult merge() {
        explore::ExploreResult res;
        std::vector<const FailRecord*> fails;
        for (const auto& w : workers_) {
            res.stats.paths += w->stats.paths;
            res.stats.choice_points += w->stats.choice_points;
            res.stats.pruned += w->stats.pruned;
            res.stats.truncated += w->stats.truncated;
            res.stats.max_depth =
                std::max(res.stats.max_depth, w->stats.max_depth);
            for (const FailRecord& fr : w->fails) {
                fails.push_back(&fr);
            }
        }
        res.exhausted = !budget_hit_.load(std::memory_order_seq_cst);

        // Deterministic merge: distinct paths never share a decision trace,
        // so sorting by trace reproduces the serial engine's lexicographic
        // emission order regardless of which worker ran what when.
        std::sort(fails.begin(), fails.end(),
                  [](const FailRecord* a, const FailRecord* b) {
                      return a->choices < b->choices;
                  });
        for (const FailRecord* fr : fails) {
            for (const explore::Violation& v : fr->violations) {
                if (res.violations.size() >= cfg_.max_violations) {
                    break;
                }
                res.violations.push_back(v);
            }
        }
        // Serial explore() stops as soon as the violation cap fills, so it
        // never marks a capped space exhausted.
        if (!fails.empty() && res.violations.size() >= cfg_.max_violations) {
            res.exhausted = false;
        }

        if (!fails.empty()) {
            const std::vector<std::uint32_t>& first = fails.front()->choices;
            for (auto& w : workers_) {
                if (w->min_fail.has_value() &&
                    w->min_fail->schedule.choices == first) {
                    res.first_failure = std::move(w->min_fail);
                    break;
                }
            }
            if (!res.first_failure.has_value()) {
                // The first failure was served from the cache (trace-free):
                // re-simulate it. Replay is deterministic, so the regenerated
                // trace is byte-identical to what a cold run produced.
                ++first_failure_replays_;
                explore::Explorer ex(build_, cfg_);
                explore::Schedule s;
                s.choices = first;
                res.first_failure = ex.replay(s);
            }
        }
        return res;
    }

    void fill_stats(ParallelStats& out, unsigned jobs, std::uint64_t wall_ns) {
        out = ParallelStats{};
        out.workers = jobs;
        out.wall_ns = wall_ns;
        out.first_failure_replays = first_failure_replays_;
        for (const auto& w : workers_) {
            out.tasks_executed += w->executed;
            out.tasks_stolen += w->stolen;
            out.cache_hits += w->cache_hits;
            out.cache_misses += w->cache_misses;
            out.busy_ns += w->busy_ns;
        }
    }

    const explore::Explorer::BuildFn& build_;
    explore::ExploreConfig cfg_;
    ParallelConfig pcfg_;
    std::string key_prefix_;
    std::vector<std::unique_ptr<ExploreWorker>> workers_;
    std::atomic<std::uint64_t> in_flight_{0};
    std::atomic<std::uint64_t> path_tickets_{0};
    std::atomic<bool> budget_hit_{false};
    std::uint64_t first_failure_replays_ = 0;
};

// ---- the campaign engine ----

struct CampaignWorker {
    unsigned id = 0;
    WorkDeque<std::size_t> deque;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t busy_ns = 0;
};

}  // namespace

std::string expansion_cache_key(const std::string& fingerprint,
                                const explore::ExploreConfig& cfg,
                                const std::vector<std::uint32_t>& plan) {
    return "x/" + fingerprint + '/' + hex64(explore_config_digest(cfg)) + '/' +
           plan_to_string(plan);
}

std::string campaign_cache_key(const std::string& fingerprint,
                               const fault::FaultPlan& plan, std::uint64_t seed) {
    return "c/" + fingerprint + '/' + hex64(fault_plan_digest(plan)) + '/' +
           std::to_string(seed);
}

explore::ExploreResult explore(const explore::Explorer::BuildFn& build,
                               const explore::ExploreConfig& cfg,
                               const ParallelConfig& pcfg,
                               ParallelStats* stats_out) {
    ExploreEngine engine(build, cfg, pcfg);
    return engine.run(resolve_jobs(pcfg.jobs), stats_out);
}

fault::CampaignResult run_campaign(const fault::FaultPlan& plan,
                                   const fault::CampaignConfig& cfg,
                                   const fault::CampaignRunFn& fn,
                                   const ParallelConfig& pcfg,
                                   ParallelStats* stats_out) {
    const auto wall0 = Clock::now();
    const unsigned jobs = resolve_jobs(pcfg.jobs);

    fault::CampaignResult res;
    res.runs.resize(cfg.runs);

    std::vector<std::unique_ptr<CampaignWorker>> workers;
    workers.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) {
        workers.push_back(std::make_unique<CampaignWorker>());
        workers.back()->id = i;
    }
    // Seeds are dealt round-robin; stealing rebalances when run times differ
    // (a crashing seed finishes early, a cascading-overrun seed runs long).
    std::atomic<std::uint64_t> in_flight{cfg.runs};
    for (unsigned i = 0; i < cfg.runs; ++i) {
        workers[i % jobs]->deque.push(i);
    }

    const std::string key_mid =
        pcfg.cache != nullptr
            ? "c/" + pcfg.model_fingerprint + '/' + hex64(fault_plan_digest(plan)) + '/'
            : std::string{};

    const auto worker_main = [&](CampaignWorker& w) {
        std::size_t idx = 0;
        const auto acquire = [&]() {
            if (w.deque.pop(idx)) {
                return true;
            }
            for (std::size_t k = 1; k < workers.size(); ++k) {
                if (workers[(w.id + k) % workers.size()]->deque.steal(idx)) {
                    ++w.stolen;
                    return true;
                }
            }
            return false;
        };
        for (;;) {
            if (!acquire()) {
                if (in_flight.load(std::memory_order_seq_cst) == 0) {
                    return;
                }
                std::this_thread::yield();
                continue;
            }
            const auto t0 = Clock::now();
            ++w.executed;
            const std::uint64_t seed = cfg.first_seed + idx;
            fault::CampaignRun run;
            bool from_cache = false;
            std::string key;
            if (pcfg.cache != nullptr) {
                key = key_mid + std::to_string(seed);
                from_cache = pcfg.cache->lookup(key, run);
                ++(from_cache ? w.cache_hits : w.cache_misses);
            }
            if (!from_cache) {
                fault::FaultInjector inj(plan, seed);
                fn(inj, run);
                run.seed = seed;  // driver-owned fields, set last (same
                run.injections = inj.stats().total();  // contract as serial)
                if (pcfg.cache != nullptr) {
                    pcfg.cache->store(key, run);
                }
            }
            res.runs[idx] = std::move(run);  // disjoint slots: no lock needed
            w.busy_ns += since_ns(t0);
            in_flight.fetch_sub(1, std::memory_order_seq_cst);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) {
        threads.emplace_back([&, i] { worker_main(*workers[i]); });
    }
    for (std::thread& t : threads) {
        t.join();
    }

    if (stats_out != nullptr) {
        *stats_out = ParallelStats{};
        stats_out->workers = jobs;
        stats_out->wall_ns = since_ns(wall0);
        for (const auto& w : workers) {
            stats_out->tasks_executed += w->executed;
            stats_out->tasks_stolen += w->stolen;
            stats_out->cache_hits += w->cache_hits;
            stats_out->cache_misses += w->cache_misses;
            stats_out->busy_ns += w->busy_ns;
        }
    }
    return res;
}

void for_each_index(std::size_t count, unsigned jobs,
                    const std::function<void(std::size_t)>& fn,
                    ParallelStats* stats_out) {
    const auto wall0 = Clock::now();
    const unsigned n_workers = resolve_jobs(jobs);

    if (n_workers == 1) {
        // Serial fast path: no pool, no atomics — the byte-identity contract
        // is trivially met because there is nothing to merge.
        std::uint64_t busy = 0;
        for (std::size_t i = 0; i < count; ++i) {
            const auto t0 = Clock::now();
            fn(i);
            busy += since_ns(t0);
        }
        if (stats_out != nullptr) {
            *stats_out = ParallelStats{};
            stats_out->workers = 1;
            stats_out->tasks_executed = count;
            stats_out->busy_ns = busy;
            stats_out->wall_ns = since_ns(wall0);
        }
        return;
    }

    std::vector<std::unique_ptr<CampaignWorker>> workers;
    workers.reserve(n_workers);
    for (unsigned i = 0; i < n_workers; ++i) {
        workers.push_back(std::make_unique<CampaignWorker>());
        workers.back()->id = i;
    }
    std::atomic<std::uint64_t> in_flight{count};
    for (std::size_t i = 0; i < count; ++i) {
        workers[i % n_workers]->deque.push(i);
    }

    const auto worker_main = [&](CampaignWorker& w) {
        std::size_t idx = 0;
        const auto acquire = [&]() {
            if (w.deque.pop(idx)) {
                return true;
            }
            for (std::size_t k = 1; k < workers.size(); ++k) {
                if (workers[(w.id + k) % workers.size()]->deque.steal(idx)) {
                    ++w.stolen;
                    return true;
                }
            }
            return false;
        };
        for (;;) {
            if (!acquire()) {
                if (in_flight.load(std::memory_order_seq_cst) == 0) {
                    return;
                }
                std::this_thread::yield();
                continue;
            }
            const auto t0 = Clock::now();
            ++w.executed;
            fn(idx);
            w.busy_ns += since_ns(t0);
            in_flight.fetch_sub(1, std::memory_order_seq_cst);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (unsigned i = 0; i < n_workers; ++i) {
        threads.emplace_back([&, i] { worker_main(*workers[i]); });
    }
    for (std::thread& t : threads) {
        t.join();
    }

    if (stats_out != nullptr) {
        *stats_out = ParallelStats{};
        stats_out->workers = n_workers;
        stats_out->wall_ns = since_ns(wall0);
        for (const auto& w : workers) {
            stats_out->tasks_executed += w->executed;
            stats_out->tasks_stolen += w->stolen;
            stats_out->busy_ns += w->busy_ns;
        }
    }
}

void register_parallel_stats(obs::Registry& reg, const ParallelStats& s,
                             obs::Labels base) {
    const auto gauge = [&](const char* name, const char* help, auto getter) {
        reg.gauge_fn(name, help, [&s, getter] { return getter(s); }, base);
    };
    gauge("slm_parallel_workers", "Worker threads of the last parallel run",
          [](const ParallelStats& st) { return static_cast<double>(st.workers); });
    gauge("slm_parallel_tasks_executed_total",
          "Work items processed (plan prefixes or campaign seeds)",
          [](const ParallelStats& st) {
              return static_cast<double>(st.tasks_executed);
          });
    gauge("slm_parallel_tasks_stolen_total",
          "Work items taken from another worker's deque",
          [](const ParallelStats& st) { return static_cast<double>(st.tasks_stolen); });
    gauge("slm_parallel_cache_hits_total", "Result-cache hits",
          [](const ParallelStats& st) { return static_cast<double>(st.cache_hits); });
    gauge("slm_parallel_cache_misses_total", "Result-cache misses",
          [](const ParallelStats& st) { return static_cast<double>(st.cache_misses); });
    gauge("slm_parallel_first_failure_replays_total",
          "Cached first failures re-simulated for their trace",
          [](const ParallelStats& st) {
              return static_cast<double>(st.first_failure_replays);
          });
    gauge("slm_parallel_busy_ns_total", "Summed per-worker busy time",
          [](const ParallelStats& st) { return static_cast<double>(st.busy_ns); });
    gauge("slm_parallel_wall_ns", "Pool wall-clock time",
          [](const ParallelStats& st) { return static_cast<double>(st.wall_ns); });
    gauge("slm_parallel_utilization",
          "busy / (workers * wall): 1.0 = every worker always fed",
          [](const ParallelStats& st) { return st.utilization(); });
}

}  // namespace slm::parallel
