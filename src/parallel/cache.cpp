#include "parallel/cache.hpp"

#include <utility>

namespace slm::parallel {

bool ResultCache::lookup(const std::string& key, CachedExpansion& out) {
    Shard& s = shard_for(key);
    {
        std::lock_guard<std::mutex> lock(s.mu);
        const auto it = s.expansions.find(key);
        if (it != s.expansions.end()) {
            out = it->second;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void ResultCache::store(const std::string& key, CachedExpansion value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    // insert_or_assign: two workers can race to expand the same prefix only
    // if the caller feeds overlapping work into one cache, and the values are
    // deterministic anyway — last writer wins with identical bytes.
    s.expansions.insert_or_assign(key, std::move(value));
    insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool ResultCache::lookup(const std::string& key, fault::CampaignRun& out) {
    Shard& s = shard_for(key);
    {
        std::lock_guard<std::mutex> lock(s.mu);
        const auto it = s.campaign_runs.find(key);
        if (it != s.campaign_runs.end()) {
            out = it->second;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void ResultCache::store(const std::string& key, fault::CampaignRun value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    s.campaign_runs.insert_or_assign(key, std::move(value));
    insertions_.fetch_add(1, std::memory_order_relaxed);
}

ResultCache::Stats ResultCache::stats() const {
    Stats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.insertions = insertions_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        st.entries += s.expansions.size() + s.campaign_runs.size();
    }
    return st;
}

void ResultCache::clear() {
    for (Shard& s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        s.expansions.clear();
        s.campaign_runs.clear();
    }
}

}  // namespace slm::parallel
