#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "fault/campaign.hpp"
#include "obs/metrics.hpp"
#include "parallel/cache.hpp"

namespace slm::parallel {

/// Multi-core drivers for the two embarrassingly parallel workloads of the
/// repo: schedule-space exploration (explore::Explorer::explore()) and fault
/// campaign seed sweeps (fault::run_campaign()). A work-stealing pool shards
/// the work — decision-trace prefixes for exploration, seeds for campaigns —
/// across workers that each own a private kernel, and merges the results
/// deterministically, so an N-thread run emits byte-identical canonical
/// output (explore::write_result_json / fault::write_campaign_json) to the
/// serial engine. ci/check_parallel.sh enforces that equivalence; the full
/// architecture, sharding invariants, and determinism contract live in
/// docs/parallel-exploration.md.

struct ParallelConfig {
    /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
    unsigned jobs = 0;
    /// Shared result cache for warm re-runs; nullptr disables caching.
    ResultCache* cache = nullptr;
    /// Names the model build for cache keys. The caller must change it
    /// whenever the model, its parameters, or the fault plan change — it is
    /// the only part of the cache key the engine cannot derive itself.
    std::string model_fingerprint;
};

/// Counters of one parallel run (filled when a stats out-param is passed).
/// Expose through the metrics registry with register_parallel_stats().
struct ParallelStats {
    std::uint64_t workers = 0;
    std::uint64_t tasks_executed = 0;  ///< work items processed (incl. cached)
    std::uint64_t tasks_stolen = 0;    ///< items taken from another worker's deque
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t first_failure_replays = 0;  ///< cached failure re-simulated
    std::uint64_t busy_ns = 0;  ///< summed per-worker time spent processing items
    std::uint64_t wall_ns = 0;  ///< pool wall-clock time

    /// Fraction of worker-seconds spent processing items: busy / (workers *
    /// wall). Approaches 1.0 when stealing keeps everyone fed.
    [[nodiscard]] double utilization() const {
        if (workers == 0 || wall_ns == 0) {
            return 0.0;
        }
        return static_cast<double>(busy_ns) /
               (static_cast<double>(workers) * static_cast<double>(wall_ns));
    }
};

/// Parallel equivalent of constructing explore::Explorer{build, cfg} and
/// calling explore(). Workers claim plan prefixes, expand them with the
/// serial engine's own bounded DFS primitive (Explorer::expand()), and push
/// sibling prefixes for stealing. The merged result is byte-identical to the
/// serial engine's whenever the bounded space is explored to completion
/// within cfg.max_paths; under a hit budget cap the *which paths ran* differs
/// (documented in docs/parallel-exploration.md), and when only
/// cfg.max_violations is hit the violation list still matches (both engines
/// keep the lexicographically first max_violations entries).
///
/// `build` is called concurrently from every worker — see the BuildFn
/// thread-safety contract on explore::Explorer.
[[nodiscard]] explore::ExploreResult explore(const explore::Explorer::BuildFn& build,
                                             const explore::ExploreConfig& cfg = {},
                                             const ParallelConfig& pcfg = {},
                                             ParallelStats* stats_out = nullptr);

/// Parallel equivalent of fault::run_campaign(): seeds are sharded across the
/// pool, each worker runs whole seeds with its own FaultInjector, and results
/// land in seed order — trivially byte-identical to the serial sweep. `fn`
/// is called concurrently from every worker (see CampaignRunFn).
[[nodiscard]] fault::CampaignResult run_campaign(const fault::FaultPlan& plan,
                                                 const fault::CampaignConfig& cfg,
                                                 const fault::CampaignRunFn& fn,
                                                 const ParallelConfig& pcfg = {},
                                                 ParallelStats* stats_out = nullptr);

/// The deterministic index sharder under sys::run_sweep (and any future
/// embarrassingly indexed workload): runs fn(i) for every i in [0, count)
/// across a work-stealing pool of `jobs` threads (0 = hardware concurrency),
/// dealing indices round-robin and rebalancing by stealing. `fn` is called
/// concurrently from every worker and exactly once per index; determinism is
/// the caller's contract, the same as run_campaign's — write each result
/// into a caller-owned index-keyed slot (disjoint slots need no lock) and
/// merge in index order. jobs == 1 degrades to a plain serial loop on the
/// calling thread, so a serial sweep needs no thread at all.
void for_each_index(std::size_t count, unsigned jobs,
                    const std::function<void(std::size_t)>& fn,
                    ParallelStats* stats_out = nullptr);

/// Register the counters as slm_parallel_* callback gauges (tasks stolen,
/// cache hits, utilization, ...). `s` must outlive the registry's exports,
/// like every other register_*_stats target.
void register_parallel_stats(obs::Registry& reg, const ParallelStats& s,
                             obs::Labels base = {});

// ---- cache key schema (exposed for tests; see docs/parallel-exploration.md) ----

/// "x/<fingerprint>/<config-digest-hex>/<plan-as-trace-string>". The config
/// digest covers every ExploreConfig field that changes a single expansion's
/// outcome (preemption bound, horizon, per-run choice cap, check_* flags).
[[nodiscard]] std::string expansion_cache_key(const std::string& fingerprint,
                                              const explore::ExploreConfig& cfg,
                                              const std::vector<std::uint32_t>& plan);

/// "c/<fingerprint>/<plan-digest-hex>/<seed>". The plan digest covers every
/// FaultSpec field, so editing the fault plan invalidates cached runs even
/// under an unchanged model fingerprint.
[[nodiscard]] std::string campaign_cache_key(const std::string& fingerprint,
                                             const fault::FaultPlan& plan,
                                             std::uint64_t seed);

}  // namespace slm::parallel
