#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace slm::parallel {

/// Chase-Lev work-stealing deque: the owner thread pushes and pops work at
/// the bottom (LIFO, so a worker drills depth-first into the subtree it just
/// expanded — good locality, bounded frontier), thieves take from the top
/// (FIFO, so they steal the *shallowest* prefix, i.e. the biggest remaining
/// subtree). Items are heap-allocated and handed over through atomic slots.
///
/// Memory-order policy: every index and slot access is seq_cst. The classic
/// formulation (Lê et al., "Correct and Efficient Work-Stealing for Weak
/// Memory Models") relaxes most of these around standalone fences, but
/// ThreadSanitizer does not model standalone fences and would report false
/// races, and our work items are whole simulation runs — microseconds to
/// milliseconds each — so deque overhead is noise. seq_cst everywhere keeps
/// the proof obligations (and the TSan report) empty.
///
/// `top_` is monotonically increasing, so the CAS in steal()/pop() cannot
/// suffer ABA. Buffers grown by the owner are retired, not freed, until the
/// deque is destroyed: a thief may still be reading a slot of a stale buffer
/// (the slot values are copied to the new buffer, and index ownership is
/// decided solely by the CAS on `top_`, so both buffers agree).
template <typename T>
class WorkDeque {
public:
    explicit WorkDeque(std::size_t initial_capacity = 64) {
        std::size_t cap = 1;
        while (cap < initial_capacity) {
            cap <<= 1U;
        }
        array_.store(new Array(cap), std::memory_order_seq_cst);
    }

    /// Not thread-safe: all workers must have joined before destruction.
    ~WorkDeque() {
        const std::uint64_t t = top_.load(std::memory_order_seq_cst);
        const std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
        Array* a = array_.load(std::memory_order_seq_cst);
        for (std::uint64_t i = t; static_cast<std::int64_t>(i) <
                                  static_cast<std::int64_t>(b); ++i) {
            delete a->get(i);
        }
        delete a;
        for (Array* r : retired_) {
            delete r;
        }
    }

    WorkDeque(const WorkDeque&) = delete;
    WorkDeque& operator=(const WorkDeque&) = delete;

    /// Owner only.
    void push(T item) {
        const std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
        const std::uint64_t t = top_.load(std::memory_order_seq_cst);
        Array* a = array_.load(std::memory_order_seq_cst);
        if (b - t >= a->cap) {
            a = grow(a, t, b);
        }
        a->put(b, new T(std::move(item)));
        bottom_.store(b + 1, std::memory_order_seq_cst);
    }

    /// Owner only: take the most recently pushed item.
    bool pop(T& out) {
        const std::uint64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
        Array* a = array_.load(std::memory_order_seq_cst);
        bottom_.store(b, std::memory_order_seq_cst);
        const std::uint64_t t = top_.load(std::memory_order_seq_cst);
        if (static_cast<std::int64_t>(t) > static_cast<std::int64_t>(b)) {
            bottom_.store(b + 1, std::memory_order_seq_cst);  // was empty
            return false;
        }
        T* p = a->get(b);
        if (t == b) {
            // Last item: race the thieves for it via the CAS on top_.
            std::uint64_t expect = t;
            const bool won = top_.compare_exchange_strong(
                expect, t + 1, std::memory_order_seq_cst);
            bottom_.store(b + 1, std::memory_order_seq_cst);
            if (!won) {
                return false;  // a thief claimed it; it will free p
            }
        }
        out = std::move(*p);
        delete p;
        return true;
    }

    /// Any thread: take the oldest item. False = empty or lost a race (the
    /// caller retries or moves to the next victim either way).
    bool steal(T& out) {
        const std::uint64_t t = top_.load(std::memory_order_seq_cst);
        const std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
        if (static_cast<std::int64_t>(t) >= static_cast<std::int64_t>(b)) {
            return false;
        }
        Array* a = array_.load(std::memory_order_seq_cst);
        T* p = a->get(t);
        std::uint64_t expect = t;
        if (!top_.compare_exchange_strong(expect, t + 1,
                                          std::memory_order_seq_cst)) {
            return false;
        }
        out = std::move(*p);
        delete p;
        return true;
    }

    /// Racy snapshot, for load reporting only.
    [[nodiscard]] std::size_t approx_size() const {
        const auto t = static_cast<std::int64_t>(top_.load(std::memory_order_seq_cst));
        const auto b = static_cast<std::int64_t>(bottom_.load(std::memory_order_seq_cst));
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

private:
    struct Array {
        explicit Array(std::size_t c)
            : cap(c), mask(c - 1), slots(new std::atomic<T*>[c]) {
            for (std::size_t i = 0; i < c; ++i) {
                slots[i].store(nullptr, std::memory_order_relaxed);
            }
        }
        std::size_t cap;
        std::size_t mask;
        std::unique_ptr<std::atomic<T*>[]> slots;

        [[nodiscard]] T* get(std::uint64_t i) const {
            return slots[i & mask].load(std::memory_order_seq_cst);
        }
        void put(std::uint64_t i, T* p) {
            slots[i & mask].store(p, std::memory_order_seq_cst);
        }
    };

    /// Owner only (from push). The old buffer is retired, not freed — see
    /// class comment.
    Array* grow(Array* a, std::uint64_t t, std::uint64_t b) {
        auto* bigger = new Array(a->cap * 2);
        for (std::uint64_t i = t; i != b; ++i) {
            bigger->put(i, a->get(i));
        }
        retired_.push_back(a);
        array_.store(bigger, std::memory_order_seq_cst);
        return bigger;
    }

    std::atomic<std::uint64_t> top_{0};
    std::atomic<std::uint64_t> bottom_{0};
    std::atomic<Array*> array_{nullptr};
    std::vector<Array*> retired_;  ///< owner-only; freed in the destructor
};

}  // namespace slm::parallel
