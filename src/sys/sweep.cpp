#include "sys/sweep.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "sim/assert.hpp"
#include "trace/trace.hpp"

namespace slm::sys {

namespace {

/// Expand `base` into one variant per combination of per-PE priority
/// permutations: the k tasks bound to a PE (binding order) receive the
/// priorities 1..k in every possible assignment, PEs combined as a cartesian
/// product walked in deterministic next_permutation order.
void expand_priorities(const MappingSpec& base, const PlatformSpec& platform,
                       std::vector<MappingSpec>& out) {
    // Binding indices grouped by PE, platform order; PEs hosting < 2 tasks
    // contribute exactly one (trivial) permutation.
    std::vector<std::vector<std::size_t>> groups;
    for (const PeSpec& pe : platform.pes) {
        std::vector<std::size_t> g;
        for (std::size_t i = 0; i < base.bindings.size(); ++i) {
            if (base.bindings[i].pe == pe.name) {
                g.push_back(i);
            }
        }
        if (!g.empty()) {
            groups.push_back(std::move(g));
        }
    }
    std::vector<std::vector<int>> perms(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        perms[gi].resize(groups[gi].size());
        std::iota(perms[gi].begin(), perms[gi].end(), 1);
    }
    std::size_t variant = 0;
    for (;;) {
        MappingSpec m = base;
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            for (std::size_t ti = 0; ti < groups[gi].size(); ++ti) {
                m.bindings[groups[gi][ti]].priority = perms[gi][ti];
            }
        }
        if (variant != 0) {
            m.name += "/p" + std::to_string(variant);
        }
        out.push_back(std::move(m));
        ++variant;
        // Odometer step over the per-group permutations.
        std::size_t gi = 0;
        while (gi < groups.size() &&
               !std::next_permutation(perms[gi].begin(), perms[gi].end())) {
            ++gi;  // wrapped to sorted order: carry into the next group
        }
        if (gi == groups.size()) {
            break;
        }
    }
}

}  // namespace

std::vector<MappingSpec> enumerate_mappings(const AppSpec& app,
                                            const PlatformSpec& platform,
                                            const EnumOptions& opts) {
    SLM_ASSERT(!platform.pes.empty(), "enumerate_mappings() needs at least one PE");
    std::vector<const TaskSpec*> swept;
    for (const TaskSpec& t : app.tasks) {
        bool pinned = false;
        for (const TaskBinding& p : opts.pinned) {
            if (p.task == t.name) {
                pinned = true;
            }
        }
        if (!pinned) {
            swept.push_back(&t);
        }
    }

    std::vector<MappingSpec> out;
    std::vector<std::size_t> digits(swept.size(), 0);
    std::size_t index = 0;
    for (;;) {
        MappingSpec m;
        m.name = "m" + std::to_string(index);
        // Bindings in app task order (pinned ones verbatim), so summaries and
        // priority groups are stable across candidates.
        std::size_t di = 0;
        for (const TaskSpec& t : app.tasks) {
            const TaskBinding* p = nullptr;
            for (const TaskBinding& pb : opts.pinned) {
                if (pb.task == t.name) {
                    p = &pb;
                }
            }
            if (p != nullptr) {
                m.bindings.push_back(*p);
            } else {
                m.bindings.push_back(
                    TaskBinding{t.name, platform.pes[digits[di]].name, t.priority});
                ++di;
            }
        }
        // Routes: fixed first, then the co-location rule.
        for (const ChannelSpec& c : app.channels) {
            const ChannelRoute* fixed = nullptr;
            for (const ChannelRoute& r : opts.fixed_routes) {
                if (r.channel == c.name) {
                    fixed = &r;
                }
            }
            if (fixed != nullptr) {
                m.routes.push_back(*fixed);
                continue;
            }
            const TaskBinding* sb = c.src.empty() ? nullptr : m.binding(c.src);
            const TaskBinding* db = m.binding(c.dst);
            if (sb != nullptr && db != nullptr && sb->pe == db->pe) {
                m.routes.push_back(ChannelRoute{c.name, ""});
            } else {
                SLM_ASSERT(!opts.default_bus.empty(),
                           "cross-PE channel needs EnumOptions::default_bus");
                m.routes.push_back(ChannelRoute{c.name, opts.default_bus});
            }
        }
        if (opts.sweep_priorities) {
            expand_priorities(m, platform, out);
        } else {
            out.push_back(std::move(m));
        }
        ++index;
        // Mixed-radix increment, least-significant digit first.
        std::size_t di2 = 0;
        while (di2 < digits.size()) {
            if (++digits[di2] < platform.pes.size()) {
                break;
            }
            digits[di2] = 0;
            ++di2;
        }
        if (di2 == digits.size()) {
            break;
        }
    }
    return out;
}

SweepResult run_sweep(const AppSpec& app, const PlatformSpec& platform,
                      const std::vector<MappingSpec>& mappings, const SweepConfig& cfg,
                      const SystemSetup& setup, parallel::ParallelStats* stats_out) {
    SweepResult res;
    res.app = app.name;
    res.platform = platform.name;
    res.attributed = cfg.attribute;
    res.candidates.resize(mappings.size());
    // Each index evaluates one candidate into its own slot: disjoint writes,
    // enumeration-order results at any jobs count (the for_each_index
    // determinism contract).
    parallel::for_each_index(
        mappings.size(), cfg.jobs,
        [&](std::size_t i) {
            SystemOptions opts = cfg.options;
            // Worker-local recorder: each candidate's span stream is private,
            // so recording (and the attribution derived from it) is identical
            // at any jobs count.
            obs::SpanRecorder spans;
            if (cfg.attribute) {
                opts.spans = &spans;
            }
            System sys(app, platform, mappings[i], opts);
            if (setup) {
                setup(sys);
            }
            sys.run(cfg.horizon);
            CandidateResult r{mappings[i], sys.metrics(), {}};
            if (cfg.attribute) {
                r.attribution = obs::worst_critical_path(spans);
            }
            res.candidates[i] = std::move(r);
        },
        stats_out);
    return res;
}

std::vector<std::size_t> SweepResult::ranking() const {
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto total_bus_busy = [](const SystemMetrics& m) {
        std::uint64_t ns = 0;
        for (const BusMetrics& b : m.buses) {
            ns += b.busy.ns();
        }
        return ns;
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const SystemMetrics& ma = candidates[a].metrics;
        const SystemMetrics& mb = candidates[b].metrics;
        const std::uint64_t miss_a = ma.task_deadline_misses + ma.latency_misses;
        const std::uint64_t miss_b = mb.task_deadline_misses + mb.latency_misses;
        if (miss_a != miss_b) {
            return miss_a < miss_b;
        }
        if (ma.latency_p95 != mb.latency_p95) {
            return ma.latency_p95 < mb.latency_p95;
        }
        if (ma.latency_max != mb.latency_max) {
            return ma.latency_max < mb.latency_max;
        }
        if (ma.latency_p50 != mb.latency_p50) {
            return ma.latency_p50 < mb.latency_p50;
        }
        const std::uint64_t bus_a = total_bus_busy(ma);
        const std::uint64_t bus_b = total_bus_busy(mb);
        if (bus_a != bus_b) {
            return bus_a < bus_b;
        }
        if (ma.sim_duration != mb.sim_duration) {
            return ma.sim_duration < mb.sim_duration;
        }
        return a < b;
    });
    return order;
}

void write_sweep_json(std::ostream& os, const SweepResult& res) {
    os << "{\"schema\":\"slm-sweep-result-v1\"";
    os << ",\"app\":\"" << trace::json_escape(res.app) << '"';
    os << ",\"platform\":\"" << trace::json_escape(res.platform) << '"';
    os << ",\"candidates\":[";
    for (std::size_t i = 0; i < res.candidates.size(); ++i) {
        const CandidateResult& c = res.candidates[i];
        const SystemMetrics& m = c.metrics;
        if (i != 0) {
            os << ',';
        }
        os << "{\"index\":" << i;
        os << ",\"name\":\"" << trace::json_escape(c.mapping.name) << '"';
        os << ",\"summary\":\"" << trace::json_escape(c.mapping.summary()) << '"';
        os << ",\"sim_ns\":" << m.sim_duration.ns();
        os << ",\"jobs_completed\":" << m.jobs_completed;
        os << ",\"task_deadline_misses\":" << m.task_deadline_misses;
        os << ",\"latency_samples\":" << m.latency_samples;
        os << ",\"latency_misses\":" << m.latency_misses;
        os << ",\"latency_p50_ns\":" << m.latency_p50.ns();
        os << ",\"latency_p95_ns\":" << m.latency_p95.ns();
        os << ",\"latency_max_ns\":" << m.latency_max.ns();
        os << ",\"pes\":[";
        for (std::size_t p = 0; p < m.pes.size(); ++p) {
            const PeMetrics& pe = m.pes[p];
            if (p != 0) {
                os << ',';
            }
            os << "{\"name\":\"" << trace::json_escape(pe.name) << '"'
               << ",\"busy_ns\":" << pe.busy.ns()
               << ",\"context_switches\":" << pe.context_switches
               << ",\"preemptions\":" << pe.preemptions
               << ",\"deadline_misses\":" << pe.deadline_misses << '}';
        }
        os << "],\"buses\":[";
        for (std::size_t b = 0; b < m.buses.size(); ++b) {
            const BusMetrics& bus = m.buses[b];
            if (b != 0) {
                os << ',';
            }
            os << "{\"name\":\"" << trace::json_escape(bus.name) << '"'
               << ",\"transfers\":" << bus.transfers << ",\"bytes\":" << bus.bytes
               << ",\"busy_ns\":" << bus.busy.ns()
               << ",\"arb_wait_ns\":" << bus.arbitration_wait.ns() << '}';
        }
        os << ']';
        if (res.attributed) {
            os << ",\"attribution\":";
            const obs::CriticalPath& cp = c.attribution;
            if (!cp.valid) {
                os << "null";
            } else {
                os << "{\"token\":" << cp.token_id << ",\"born_ns\":" << cp.born_ns
                   << ",\"anchor_ns\":" << cp.anchor_ns
                   << ",\"recorded_ns\":" << cp.recorded_ns
                   << ",\"total_ns\":" << cp.total_ns
                   << ",\"exact\":" << (cp.exact() ? "true" : "false")
                   << ",\"hops\":" << cp.hops << ",\"sink\":\""
                   << trace::json_escape(cp.sink) << "\",\"bottleneck\":\""
                   << obs::to_string(cp.bottleneck()) << "\",\"categories\":{";
                for (std::size_t k = 0; k < obs::kPathCategoryCount; ++k) {
                    if (k != 0) {
                        os << ',';
                    }
                    os << '"' << obs::to_string(static_cast<obs::PathCategory>(k))
                       << "\":" << cp.by_category[k];
                }
                os << "}}";
            }
        }
        os << '}';
    }
    os << "],\"ranking\":[";
    const std::vector<std::size_t> order = res.ranking();
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (i != 0) {
            os << ',';
        }
        os << order[i];
    }
    os << "]}\n";
}

}  // namespace slm::sys
