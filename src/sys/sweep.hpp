#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "parallel/parallel.hpp"
#include "sys/elaborate.hpp"
#include "sys/spec.hpp"

namespace slm::sys {

/// Mapping design-space sweeps: enumerate candidate MappingSpecs for an
/// application on a platform, evaluate each with a fresh elaborated System,
/// and rank the results. Candidates are independent simulations, so the sweep
/// shards them across slm::parallel::for_each_index into enumeration-order
/// slots — an N-thread sweep produces byte-identical canonical JSON
/// (write_sweep_json) to the serial one, enforced by ci/check_sweep.sh. The
/// full determinism contract lives in docs/system-mapping.md.

/// enumerate_mappings() knobs.
struct EnumOptions {
    /// Bus carrying every cross-PE and stimulus channel that has no fixed
    /// route. Must name a PlatformSpec bus whenever such channels exist.
    std::string default_bus;
    /// Routes applied verbatim before the co-location rule (e.g. a stimulus
    /// channel pinned to its dedicated I/O bus).
    std::vector<ChannelRoute> fixed_routes;
    /// Bindings applied verbatim; pinned tasks are excluded from the sweep.
    std::vector<TaskBinding> pinned;
    /// Additionally permute per-PE task priorities (1..k over the k tasks
    /// bound to each PE) instead of keeping each task's spec priority.
    /// Multiplies the candidate count by the product of per-PE k!.
    bool sweep_priorities = false;
};

/// The full task->PE assignment space in deterministic order: a mixed-radix
/// counter over platform.pes (least-significant digit = first unpinned task
/// in app order), named "m0", "m1", ... Channel routes follow the
/// co-location rule: same-PE endpoints go intra-PE, everything else rides
/// EnumOptions::default_bus. Priority permutations (when enabled) expand each
/// assignment in-place with "/p1", "/p2", ... name suffixes.
[[nodiscard]] std::vector<MappingSpec> enumerate_mappings(const AppSpec& app,
                                                          const PlatformSpec& platform,
                                                          const EnumOptions& opts = {});

struct SweepConfig {
    /// Worker threads for candidate evaluation; 1 = serial on the calling
    /// thread, 0 = hardware concurrency (parallel::for_each_index semantics).
    unsigned jobs = 1;
    /// Per-candidate simulation horizon; zero runs each system to completion.
    SimTime horizon{};
    /// Elaboration options for every candidate. Leave `tracer` null for
    /// parallel sweeps — candidates run concurrently and a shared sink would
    /// interleave; `on_os` must be safe to call from worker threads.
    SystemOptions options{};
    /// Record spans per candidate (each worker gets its own private
    /// obs::SpanRecorder — never options.spans, which would interleave) and
    /// attach the worst latency sample's critical path to every
    /// CandidateResult. Attribution is computed from the candidate's own
    /// deterministic span stream, so results and write_sweep_json stay
    /// byte-identical at any jobs count.
    bool attribute = false;
};

/// Per-candidate hook run after elaboration, before System::run() — attach
/// real task behaviors here (called concurrently from workers; any shared
/// state it touches must be its own).
using SystemSetup = std::function<void(System&)>;

struct CandidateResult {
    MappingSpec mapping;
    SystemMetrics metrics;
    /// Worst latency sample's exact critical path (SweepConfig::attribute);
    /// attribution.valid is false when attribution was off or the candidate
    /// recorded no latency samples.
    obs::CriticalPath attribution;
};

struct SweepResult {
    std::string app;
    std::string platform;
    bool attributed = false;  ///< ran with SweepConfig::attribute
    std::vector<CandidateResult> candidates;  ///< enumeration order

    /// Candidate indices from best to worst: fewest (task deadline + latency)
    /// misses first, then lowest latency p95, max, p50, then least total bus
    /// busy time, then shortest sim duration, then enumeration index — a
    /// strict total order, so rankings are deterministic.
    [[nodiscard]] std::vector<std::size_t> ranking() const;
};

/// Evaluate every mapping candidate: elaborate, setup, run, collect metrics.
/// Deterministic at any thread count — results land in enumeration-order
/// slots regardless of completion order.
[[nodiscard]] SweepResult run_sweep(const AppSpec& app, const PlatformSpec& platform,
                                    const std::vector<MappingSpec>& mappings,
                                    const SweepConfig& cfg = {},
                                    const SystemSetup& setup = {},
                                    parallel::ParallelStats* stats_out = nullptr);

/// Canonical single-line JSON (schema "slm-sweep-result-v1"): compact, keys
/// in fixed order, every quantity an integer (nanoseconds / counts), ranking
/// included — byte-identical across jobs counts and platforms by
/// construction. Schema reference: docs/system-mapping.md.
void write_sweep_json(std::ostream& os, const SweepResult& res);

}  // namespace slm::sys
