#include "sys/elaborate.hpp"

#include <algorithm>
#include <utility>

#include "sim/assert.hpp"

namespace slm::sys {

/// Transport machinery of one elaborated channel. Exactly one of {queue} or
/// {link, sem} is populated, mirroring the route.
struct System::ChannelImpl {
    const ChannelSpec* spec = nullptr;
    // Intra-PE route: a blocking OS queue on the shared core.
    std::unique_ptr<rtos::OsQueue<Token>> queue;
    // Bus route: sender-side link + receiver-side ISR-released semaphore.
    std::unique_ptr<arch::BusLink<Token>> link;
    std::unique_ptr<rtos::OsSemaphore> sem;
    arch::ProcessingElement* dst_pe = nullptr;
    int src_master = 0;
};

System::System(AppSpec app, PlatformSpec platform, MappingSpec mapping, SystemOptions opts)
    : app_(std::move(app)),
      platform_(std::move(platform)),
      mapping_(std::move(mapping)),
      opts_(std::move(opts)) {
    const std::vector<std::string> errors = validate(app_, platform_, mapping_);
    SLM_ASSERT(errors.empty(), errors.empty() ? "spec triple invalid"
                                              : errors.front().c_str());

    // PEs in platform order: the PE index doubles as the bus master id.
    for (const PeSpec& ps : platform_.pes) {
        rtos::RtosConfig cfg = opts_.base_rtos;
        cfg.cpu_name = ps.name;
        cfg.policy = ps.policy;
        cfg.context_switch_overhead = ps.context_switch_overhead;
        cfg.speed_num = ps.speed_num;
        cfg.speed_den = ps.speed_den;
        if (opts_.tracer != nullptr) {
            cfg.tracer = opts_.tracer;
        }
        pes_.push_back(
            std::make_unique<arch::ProcessingElement>(kernel_, ps.name, std::move(cfg)));
        if (opts_.on_os) {
            opts_.on_os(pes_.back()->os());
        }
    }
    for (const BusSpec& bs : platform_.buses) {
        arch::Bus::Config cfg;
        cfg.setup = bs.setup;
        cfg.per_byte = bs.per_byte;
        cfg.arbitration = bs.arbitration;
        buses_.push_back(std::make_unique<arch::Bus>(kernel_, bs.name, cfg));
    }

    // Channels in application order; each bus channel attaches its receiver
    // ISR here, before any task or stimulus process exists.
    for (const ChannelSpec& cs : app_.channels) {
        auto impl = std::make_unique<ChannelImpl>();
        impl->spec = &cs;
        impl->dst_pe = pe_of(cs.dst);
        const ChannelRoute* route = mapping_.route(cs.name);
        if (route->bus.empty()) {
            impl->queue = std::make_unique<rtos::OsQueue<Token>>(impl->dst_pe->os(),
                                                                 cs.capacity, cs.name);
        } else {
            arch::Bus* b = bus(route->bus);
            impl->link = std::make_unique<arch::BusLink<Token>>(kernel_, *b, cs.name,
                                                                cs.message_bytes);
            impl->sem = std::make_unique<rtos::OsSemaphore>(impl->dst_pe->os(), 0,
                                                            cs.name + ".rx");
            impl->src_master = cs.src.empty() ? 0 : master_of(pe_of(cs.src));
            rtos::OsSemaphore* sem = impl->sem.get();
            impl->dst_pe->attach_isr(impl->link->irq(), [sem] { sem->release(); });
        }
        channels_.push_back(std::move(impl));
    }
}

System::~System() = default;

void System::set_behavior(const std::string& task, Behavior b) {
    SLM_ASSERT(!ran_, "set_behavior() after run()");
    SLM_ASSERT(app_.task(task) != nullptr, "set_behavior() for unknown task");
    for (auto& [name, fn] : behaviors_) {
        if (name == task) {
            fn = std::move(b);
            return;
        }
    }
    behaviors_.emplace_back(task, std::move(b));
}

arch::ProcessingElement* System::pe(const std::string& name) {
    for (auto& p : pes_) {
        if (p->name() == name) {
            return p.get();
        }
    }
    return nullptr;
}

arch::Bus* System::bus(const std::string& name) {
    for (auto& b : buses_) {
        if (b->name() == name) {
            return b.get();
        }
    }
    return nullptr;
}

System::ChannelImpl* System::channel_impl(const std::string& name) {
    for (auto& c : channels_) {
        if (c->spec->name == name) {
            return c.get();
        }
    }
    return nullptr;
}

arch::ProcessingElement* System::pe_of(const std::string& task) {
    const TaskBinding* b = mapping_.binding(task);
    return b == nullptr ? nullptr : pe(b->pe);
}

int System::master_of(const arch::ProcessingElement* p) const {
    for (std::size_t i = 0; i < pes_.size(); ++i) {
        if (pes_[i].get() == p) {
            return static_cast<int>(i);
        }
    }
    return 0;
}

void System::spawn_stimuli() {
    // Stimuli are raw kernel processes (the environment has no RTOS): wait a
    // period, occupy the bus with the kernel's own waitfor, post, repeat.
    for (const StimulusSpec& s : app_.stimuli) {
        ChannelImpl* impl = channel_impl(s.channel);
        kernel_.spawn("stim." + s.name, [this, &s, impl] {
            for (std::uint64_t i = 0; i < s.count; ++i) {
                kernel_.waitfor(s.period);
                impl->link->post(Token{i, kernel_.now()},
                                 [this](SimTime dt) { kernel_.waitfor(dt); });
            }
        });
    }
}

void System::default_behavior(TaskCtx& ctx) {
    const std::string& me = ctx.spec().name;
    Token first{};
    bool got = false;
    bool has_output = false;
    for (const ChannelSpec& cs : app_.channels) {
        if (cs.dst == me) {
            Token t = ctx.recv(cs.name);
            if (!got) {
                first = t;
                got = true;
            }
        }
    }
    ctx.exec(ctx.spec().exec_cost);
    for (const ChannelSpec& cs : app_.channels) {
        if (cs.src == me) {
            has_output = true;
            ctx.send(cs.name, Token{got ? first.id : ctx.job(),
                                    got ? first.born : ctx.now()});
        }
    }
    if (!has_output && got) {
        ctx.record_latency(ctx.now() - first.born);
    }
}

void System::spawn_tasks() {
    for (const TaskSpec& ts : app_.tasks) {
        const TaskBinding* binding = mapping_.binding(ts.name);
        arch::ProcessingElement* host = pe(binding->pe);
        Behavior behavior;
        for (auto& [name, fn] : behaviors_) {
            if (name == ts.name) {
                behavior = fn;
            }
        }
        if (!behavior) {
            behavior = [this](TaskCtx& ctx) { default_behavior(ctx); };
        }
        auto ctx = std::make_shared<TaskCtx>(TaskCtx{*this, ts, *host});
        auto job_body = [this, ctx, behavior = std::move(behavior)] {
            behavior(*ctx);
            ++ctx->job_;
            ++jobs_done_;
        };
        if (ts.period.is_zero()) {
            // Data-driven: one aperiodic task iterating its job count.
            host->add_task(ts.name, binding->priority,
                           [job_body, jobs = ts.jobs] {
                               for (std::uint64_t j = 0; j < jobs; ++j) {
                                   job_body();
                               }
                           });
        } else {
            host->add_periodic_task(ts.name, binding->priority, ts.period,
                                    ts.exec_cost, job_body, ts.jobs, ts.deadline);
        }
    }
}

void System::run(SimTime horizon) {
    SLM_ASSERT(!ran_, "System::run() is single-shot");
    ran_ = true;
    spawn_stimuli();
    spawn_tasks();
    for (auto& p : pes_) {
        p->start();
    }
    if (horizon.is_zero()) {
        kernel_.run();
    } else {
        kernel_.run_until(horizon);
    }
}

SystemMetrics System::metrics() const {
    SystemMetrics m;
    m.sim_duration = kernel_.now();
    m.jobs_completed = jobs_done_;
    for (const auto& p : pes_) {
        const rtos::RtosStats& st = p->os().stats();
        m.task_deadline_misses += st.deadline_misses;
        m.pes.push_back(PeMetrics{p->name(), p->os().busy_time(), st.context_switches,
                                  st.preemptions, st.deadline_misses});
    }
    for (const auto& b : buses_) {
        m.buses.push_back(BusMetrics{b->name(), b->transfers(), b->bytes_transferred(),
                                     b->busy_time(), b->arbitration_wait()});
    }
    m.latency_samples = latencies_.size();
    if (!latencies_.empty()) {
        std::vector<SimTime> sorted = latencies_;
        std::sort(sorted.begin(), sorted.end());
        // Nearest-rank percentiles: ceil(p/100 * n) - 1.
        const auto rank = [&sorted](std::uint64_t pct) {
            const std::uint64_t n = sorted.size();
            const std::uint64_t r = (pct * n + 99) / 100;
            return sorted[r == 0 ? 0 : r - 1];
        };
        m.latency_p50 = rank(50);
        m.latency_p95 = rank(95);
        m.latency_max = sorted.back();
        if (!app_.latency_deadline.is_zero()) {
            for (const SimTime& s : latencies_) {
                if (app_.latency_deadline < s) {
                    ++m.latency_misses;
                }
            }
        }
    }
    return m;
}

// ---- TaskCtx ----

Token TaskCtx::recv(const std::string& channel) {
    System::ChannelImpl* impl = sys_->channel_impl(channel);
    SLM_ASSERT(impl != nullptr, "recv() on unknown channel");
    if (impl->queue != nullptr) {
        return impl->queue->receive();
    }
    impl->sem->acquire();
    Token t{};
    const bool ok = impl->link->try_fetch(t);
    SLM_ASSERT(ok, "bus channel semaphore/link out of sync");
    return t;
}

void TaskCtx::send(const std::string& channel, Token tok) {
    System::ChannelImpl* impl = sys_->channel_impl(channel);
    SLM_ASSERT(impl != nullptr, "send() on unknown channel");
    if (impl->queue != nullptr) {
        impl->queue->send(tok);
        return;
    }
    rtos::OsCore& core = pe_->os();
    impl->link->post(tok, [&core](SimTime dt) { core.io_wait(dt); }, impl->src_master);
}

void TaskCtx::exec(SimTime nominal) {
    if (!nominal.is_zero()) {
        pe_->os().time_wait(nominal);
    }
}

void TaskCtx::record_latency(SimTime sample) { sys_->record_latency(sample); }

SimTime TaskCtx::now() const { return sys_->kernel_.now(); }

rtos::OsCore& TaskCtx::os() { return pe_->os(); }

sim::Kernel& TaskCtx::kernel() { return sys_->kernel_; }

const std::string& TaskCtx::pe_name() const { return pe_->name(); }

}  // namespace slm::sys
