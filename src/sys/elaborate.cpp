#include "sys/elaborate.hpp"

#include <algorithm>
#include <utility>

#include "obs/span.hpp"
#include "sim/assert.hpp"

namespace slm::sys {

/// Transport machinery of one elaborated channel. Exactly one of {queue} or
/// {link, sem} is populated, mirroring the route.
struct System::ChannelImpl {
    const ChannelSpec* spec = nullptr;
    // Intra-PE route: a blocking OS queue on the shared core.
    std::unique_ptr<rtos::OsQueue<Token>> queue;
    // Bus route: sender-side link + receiver-side ISR-released semaphore.
    std::unique_ptr<arch::BusLink<Token>> link;
    std::unique_ptr<rtos::OsSemaphore> sem;
    arch::ProcessingElement* dst_pe = nullptr;
    int src_master = 0;
};

System::System(AppSpec app, PlatformSpec platform, MappingSpec mapping, SystemOptions opts)
    : app_(std::move(app)),
      platform_(std::move(platform)),
      mapping_(std::move(mapping)),
      opts_(std::move(opts)) {
    const std::vector<std::string> errors = validate(app_, platform_, mapping_);
    SLM_ASSERT(errors.empty(), errors.empty() ? "spec triple invalid"
                                              : errors.front().c_str());

    // PEs in platform order: the PE index doubles as the bus master id.
    for (const PeSpec& ps : platform_.pes) {
        rtos::RtosConfig cfg = opts_.base_rtos;
        cfg.cpu_name = ps.name;
        cfg.policy = ps.policy;
        cfg.context_switch_overhead = ps.context_switch_overhead;
        cfg.speed_num = ps.speed_num;
        cfg.speed_den = ps.speed_den;
        if (opts_.tracer != nullptr) {
            cfg.tracer = opts_.tracer;
        }
        pes_.push_back(
            std::make_unique<arch::ProcessingElement>(kernel_, ps.name, std::move(cfg)));
        if (opts_.on_os) {
            opts_.on_os(pes_.back()->os());
        }
        if (opts_.spans != nullptr) {
            span_tracers_.push_back(
                std::make_unique<obs::SpanTracer>(pes_.back()->os(), *opts_.spans));
        }
    }
    for (const BusSpec& bs : platform_.buses) {
        arch::Bus::Config cfg;
        cfg.setup = bs.setup;
        cfg.per_byte = bs.per_byte;
        cfg.arbitration = bs.arbitration;
        buses_.push_back(std::make_unique<arch::Bus>(kernel_, bs.name, cfg));
    }

    // Channels in application order; each bus channel attaches its receiver
    // ISR here, before any task or stimulus process exists.
    for (const ChannelSpec& cs : app_.channels) {
        auto impl = std::make_unique<ChannelImpl>();
        impl->spec = &cs;
        impl->dst_pe = pe_of(cs.dst);
        const ChannelRoute* route = mapping_.route(cs.name);
        if (route->bus.empty()) {
            impl->queue = std::make_unique<rtos::OsQueue<Token>>(impl->dst_pe->os(),
                                                                 cs.capacity, cs.name);
        } else {
            arch::Bus* b = bus(route->bus);
            impl->link = std::make_unique<arch::BusLink<Token>>(kernel_, *b, cs.name,
                                                                cs.message_bytes);
            impl->sem = std::make_unique<rtos::OsSemaphore>(impl->dst_pe->os(), 0,
                                                            cs.name + ".rx");
            impl->src_master = cs.src.empty() ? 0 : master_of(pe_of(cs.src));
            rtos::OsSemaphore* sem = impl->sem.get();
            impl->dst_pe->attach_isr(impl->link->irq(), [sem] { sem->release(); });
            if (opts_.spans != nullptr) {
                // One BusXfer span per post, recorded after the fact with the
                // transfer window (arbitration wait + data phase).
                impl->link->set_post_hook(
                    [sink = opts_.spans, chan = cs.name, bus_name = b->name()](
                        const Token& t, SimTime begin, SimTime end, int /*master*/) {
                        sink->complete(begin, end, obs::SpanKind::BusXfer, {}, chan,
                                       bus_name, obs::TokenRef{t.id, t.born.ns()});
                    });
            }
        }
        channels_.push_back(std::move(impl));
    }
}

System::~System() = default;

void System::set_behavior(const std::string& task, Behavior b) {
    SLM_ASSERT(!ran_, "set_behavior() after run()");
    SLM_ASSERT(app_.task(task) != nullptr, "set_behavior() for unknown task");
    for (auto& [name, fn] : behaviors_) {
        if (name == task) {
            fn = std::move(b);
            return;
        }
    }
    behaviors_.emplace_back(task, std::move(b));
}

arch::ProcessingElement* System::pe(const std::string& name) {
    for (auto& p : pes_) {
        if (p->name() == name) {
            return p.get();
        }
    }
    return nullptr;
}

arch::Bus* System::bus(const std::string& name) {
    for (auto& b : buses_) {
        if (b->name() == name) {
            return b.get();
        }
    }
    return nullptr;
}

System::ChannelImpl* System::channel_impl(const std::string& name) {
    for (auto& c : channels_) {
        if (c->spec->name == name) {
            return c.get();
        }
    }
    return nullptr;
}

arch::ProcessingElement* System::pe_of(const std::string& task) {
    const TaskBinding* b = mapping_.binding(task);
    return b == nullptr ? nullptr : pe(b->pe);
}

int System::master_of(const arch::ProcessingElement* p) const {
    for (std::size_t i = 0; i < pes_.size(); ++i) {
        if (pes_[i].get() == p) {
            return static_cast<int>(i);
        }
    }
    return 0;
}

void System::spawn_stimuli() {
    // Stimuli are raw kernel processes (the environment has no RTOS): wait a
    // period, occupy the bus with the kernel's own waitfor, post, repeat.
    for (const StimulusSpec& s : app_.stimuli) {
        ChannelImpl* impl = channel_impl(s.channel);
        kernel_.spawn("stim." + s.name, [this, &s, impl, who = "stim." + s.name] {
            for (std::uint64_t i = 0; i < s.count; ++i) {
                kernel_.waitfor(s.period);
                const Token tok{i, kernel_.now()};
                std::uint64_t span = 0;
                if (opts_.spans != nullptr) {
                    // pe is empty: the environment has no PE; the custody
                    // walk classifies this stretch as Env.
                    span = opts_.spans->begin_span(
                        kernel_.now(), obs::SpanKind::Send, {}, s.channel, who,
                        obs::TokenRef{tok.id, tok.born.ns()});
                }
                impl->link->post(tok, [this](SimTime dt) { kernel_.waitfor(dt); });
                if (span != 0) {
                    opts_.spans->end_span(span, kernel_.now());
                }
            }
        });
    }
}

void System::default_behavior(TaskCtx& ctx) {
    const std::string& me = ctx.spec().name;
    Token first{};
    bool got = false;
    bool has_output = false;
    for (const ChannelSpec& cs : app_.channels) {
        if (cs.dst == me) {
            Token t = ctx.recv(cs.name);
            if (!got) {
                first = t;
                got = true;
            }
        }
    }
    ctx.exec(ctx.spec().exec_cost);
    for (const ChannelSpec& cs : app_.channels) {
        if (cs.src == me) {
            has_output = true;
            ctx.send(cs.name, Token{got ? first.id : ctx.job(),
                                    got ? first.born : ctx.now()});
        }
    }
    if (!has_output && got) {
        ctx.record_latency(ctx.now() - first.born);
    }
}

void System::spawn_tasks() {
    for (const TaskSpec& ts : app_.tasks) {
        const TaskBinding* binding = mapping_.binding(ts.name);
        arch::ProcessingElement* host = pe(binding->pe);
        Behavior behavior;
        for (auto& [name, fn] : behaviors_) {
            if (name == ts.name) {
                behavior = fn;
            }
        }
        if (!behavior) {
            behavior = [this](TaskCtx& ctx) { default_behavior(ctx); };
        }
        auto ctx = std::make_shared<TaskCtx>(TaskCtx{*this, ts, *host});
        auto job_body = [this, ctx, behavior = std::move(behavior)] {
            ctx->begin_job();
            behavior(*ctx);
            ctx->end_job();
            ++ctx->job_;
            ++jobs_done_;
        };
        if (ts.period.is_zero()) {
            // Data-driven: one aperiodic task iterating its job count.
            host->add_task(ts.name, binding->priority,
                           [job_body, jobs = ts.jobs] {
                               for (std::uint64_t j = 0; j < jobs; ++j) {
                                   job_body();
                               }
                           });
        } else {
            host->add_periodic_task(ts.name, binding->priority, ts.period,
                                    ts.exec_cost, job_body, ts.jobs, ts.deadline);
        }
    }
}

void System::run(SimTime horizon) {
    SLM_ASSERT(!ran_, "System::run() is single-shot");
    ran_ = true;
    spawn_stimuli();
    spawn_tasks();
    for (auto& p : pes_) {
        p->start();
    }
    if (horizon.is_zero()) {
        kernel_.run();
    } else {
        kernel_.run_until(horizon);
    }
}

SystemMetrics System::metrics() const {
    SystemMetrics m;
    m.sim_duration = kernel_.now();
    m.jobs_completed = jobs_done_;
    for (const auto& p : pes_) {
        const rtos::RtosStats& st = p->os().stats();
        m.task_deadline_misses += st.deadline_misses;
        m.pes.push_back(PeMetrics{p->name(), p->os().busy_time(), st.context_switches,
                                  st.preemptions, st.deadline_misses});
    }
    for (const auto& b : buses_) {
        m.buses.push_back(BusMetrics{b->name(), b->transfers(), b->bytes_transferred(),
                                     b->busy_time(), b->arbitration_wait()});
    }
    m.latency_samples = latencies_.size();
    if (!latencies_.empty()) {
        std::vector<SimTime> sorted = latencies_;
        std::sort(sorted.begin(), sorted.end());
        // Nearest-rank percentiles: ceil(p/100 * n) - 1.
        const auto rank = [&sorted](std::uint64_t pct) {
            const std::uint64_t n = sorted.size();
            const std::uint64_t r = (pct * n + 99) / 100;
            return sorted[r == 0 ? 0 : r - 1];
        };
        m.latency_p50 = rank(50);
        m.latency_p95 = rank(95);
        m.latency_max = sorted.back();
        if (!app_.latency_deadline.is_zero()) {
            for (const SimTime& s : latencies_) {
                if (app_.latency_deadline < s) {
                    ++m.latency_misses;
                }
            }
        }
    }
    return m;
}

// ---- TaskCtx ----

void TaskCtx::begin_job() {
    if (obs::SpanSink* sink = sys_->opts_.spans) {
        span_tokens_.clear();
        span_job_ = sink->begin_span(now(), obs::SpanKind::Job, pe_->name(),
                                     spec_->name);
    }
}

void TaskCtx::end_job() {
    if (span_job_ != 0) {
        sys_->opts_.spans->end_span(span_job_, now());
        span_job_ = 0;
        span_tokens_.clear();
    }
}

Token TaskCtx::recv(const std::string& channel) {
    System::ChannelImpl* impl = sys_->channel_impl(channel);
    SLM_ASSERT(impl != nullptr, "recv() on unknown channel");
    obs::SpanSink* sink = sys_->opts_.spans;
    std::uint64_t span = 0;
    if (sink != nullptr) {
        span = sink->begin_span(now(), obs::SpanKind::Recv, pe_->name(), channel,
                                spec_->name, {}, span_job_);
    }
    Token t{};
    if (impl->queue != nullptr) {
        t = impl->queue->receive();
    } else {
        impl->sem->acquire();
        const bool ok = impl->link->try_fetch(t);
        SLM_ASSERT(ok, "bus channel semaphore/link out of sync");
    }
    if (sink != nullptr) {
        // The token is known only now; close with it attached so the custody
        // walk can use this recv's end as a hop boundary.
        sink->set_token(span, obs::TokenRef{t.id, t.born.ns()});
        sink->end_span(span, now());
        span_tokens_.push_back(t);
    }
    return t;
}

void TaskCtx::send(const std::string& channel, Token tok) {
    System::ChannelImpl* impl = sys_->channel_impl(channel);
    SLM_ASSERT(impl != nullptr, "send() on unknown channel");
    obs::SpanSink* sink = sys_->opts_.spans;
    std::uint64_t span = 0;
    if (sink != nullptr) {
        span = sink->begin_span(now(), obs::SpanKind::Send, pe_->name(), channel,
                                spec_->name, obs::TokenRef{tok.id, tok.born.ns()},
                                span_job_);
    }
    if (impl->queue != nullptr) {
        impl->queue->send(tok);
    } else {
        rtos::OsCore& core = pe_->os();
        impl->link->post(tok, [&core](SimTime dt) { core.io_wait(dt); },
                         impl->src_master);
    }
    if (sink != nullptr) {
        sink->end_span(span, now());
    }
}

void TaskCtx::exec(SimTime nominal) {
    if (!nominal.is_zero()) {
        pe_->os().time_wait(nominal);
    }
}

void TaskCtx::record_latency(SimTime sample) {
    if (obs::SpanSink* sink = sys_->opts_.spans) {
        // Correlate the sample with the token whose birth anchors it: the
        // token received this job with born == now - sample (exact for the
        // default dataflow body and the vocoder, whose samples are
        // now - born). Fall back to the most recent token so even ad-hoc
        // samples keep a causal hook.
        obs::TokenRef ref{};
        const std::uint64_t anchor =
            now().ns() >= sample.ns() ? now().ns() - sample.ns() : 0;
        for (const Token& t : span_tokens_) {
            if (t.born.ns() == anchor) {
                ref = obs::TokenRef{t.id, t.born.ns()};
                break;
            }
        }
        if (!ref.valid() && !span_tokens_.empty()) {
            ref = obs::TokenRef{span_tokens_.back().id, span_tokens_.back().born.ns()};
        }
        sink->instant(now(), obs::SpanKind::Latency, pe_->name(), spec_->name, {}, ref,
                      span_job_, sample.ns());
    }
    sys_->record_latency(sample);
}

SimTime TaskCtx::now() const { return sys_->kernel_.now(); }

rtos::OsCore& TaskCtx::os() { return pe_->os(); }

sim::Kernel& TaskCtx::kernel() { return sys_->kernel_; }

const std::string& TaskCtx::pe_name() const { return pe_->name(); }

}  // namespace slm::sys
