#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "rtos/core.hpp"
#include "rtos/os_channels.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "sys/spec.hpp"
#include "trace/trace.hpp"

namespace slm::obs {
class SpanSink;
class SpanTracer;
}  // namespace slm::obs

namespace slm::sys {

/// The elaborator: turns an (AppSpec, PlatformSpec, MappingSpec) triple into
/// a runnable simulation — one sim::Kernel, one arch::ProcessingElement per
/// PeSpec (its RtosConfig carrying the PE's speed/policy/switch cost), one
/// arch::Bus per BusSpec, and per ChannelSpec either an intra-PE rtos::OsQueue
/// or the paper's Fig. 3 cross-PE stack (arch::BusLink + receiver-side ISR +
/// rtos::OsSemaphore). Task behaviors are either the default dataflow body
/// (receive inputs, charge exec_cost, send outputs) or caller-supplied
/// Behavior functors for models with real payload semantics (the vocoder).

/// What flows through elaborated channels: an id chosen by the sender plus
/// the birth timestamp of the value it represents. Payloads stay in model
/// state keyed by id — a token crossing a bus costs the channel's
/// message_bytes regardless, so timing needs no payload marshalling.
struct Token {
    std::uint64_t id = 0;
    SimTime born{};
};

class System;

/// Per-job execution context handed to a Behavior: channel I/O by channel
/// name, execution-time charging, and latency reporting. Valid only inside
/// the behavior invocation.
class TaskCtx {
public:
    /// Blocking receive on an input channel (OsQueue::receive intra-PE;
    /// semaphore acquire + BusLink::try_fetch cross-PE).
    [[nodiscard]] Token recv(const std::string& channel);

    /// Send on an output channel. A bus route occupies the bus for the
    /// channel's message_bytes, charging the time via OsCore::io_wait (bus
    /// occupancy has an externally fixed duration — it must not scale with
    /// this PE's speed), with this task's PE index as the bus master id.
    void send(const std::string& channel, Token tok);

    /// Charge `nominal` execution time through OsCore::time_wait (scaled by
    /// the hosting PE's speed). Zero is a no-op, not a syscall.
    void exec(SimTime nominal);

    /// Report one end-to-end latency sample to the system (checked against
    /// AppSpec::latency_deadline, aggregated into SystemMetrics quantiles).
    void record_latency(SimTime sample);

    [[nodiscard]] SimTime now() const;
    [[nodiscard]] std::uint64_t job() const { return job_; }
    [[nodiscard]] const TaskSpec& spec() const { return *spec_; }
    [[nodiscard]] rtos::OsCore& os();
    [[nodiscard]] sim::Kernel& kernel();
    [[nodiscard]] const std::string& pe_name() const;

private:
    friend class System;
    TaskCtx(System& sys, const TaskSpec& spec, arch::ProcessingElement& pe)
        : sys_(&sys), spec_(&spec), pe_(&pe) {}

    /// Span bookkeeping for one job: open the Job span (remembering its id as
    /// the parent for this job's Recv/Send/Latency spans), close it, and
    /// track the tokens received so record_latency can correlate the sample
    /// with the token whose birth anchors it. All no-ops when spans are off.
    void begin_job();
    void end_job();

    System* sys_;
    const TaskSpec* spec_;
    arch::ProcessingElement* pe_;
    std::uint64_t job_ = 0;
    std::uint64_t span_job_ = 0;        ///< open Job span id (0 = none)
    std::vector<Token> span_tokens_;    ///< tokens recv'd during this job
};

/// A task body, called once per job. The default (no set_behavior call)
/// receives one token from every input channel, charges exec_cost, and sends
/// Token{job, birth} on every output channel; sink tasks instead report
/// now - born of their first input as an end-to-end latency sample.
using Behavior = std::function<void(TaskCtx&)>;

/// Elaboration knobs orthogonal to the specs.
struct SystemOptions {
    /// Base RtosConfig for every PE; the PeSpec overrides cpu_name, policy,
    /// context_switch_overhead, and speed_num/speed_den per PE. Quantum,
    /// preemption granularity, miss policy, and tracer pass through.
    rtos::RtosConfig base_rtos{};
    /// Trace sink wired into every PE (overrides base_rtos.tracer when set).
    trace::TraceSink* tracer = nullptr;
    /// Per-PE hook run right after each OsCore is constructed (observers,
    /// fault hooks, analytics), before any task exists.
    std::function<void(rtos::OsCore&)> on_os;
    /// Span sink for token-level causal tracing (docs/span-tracing.md). When
    /// set, every PE gets an obs::SpanTracer, every bus-routed channel a
    /// BusXfer post hook, and TaskCtx emits Job/Recv/Send/Latency spans.
    /// Null (the default) records nothing and costs nothing.
    obs::SpanSink* spans = nullptr;
};

struct PeMetrics {
    std::string name;
    SimTime busy{};
    std::uint64_t context_switches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t deadline_misses = 0;
};

struct BusMetrics {
    std::string name;
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    SimTime busy{};
    SimTime arbitration_wait{};
};

/// Everything a sweep ranks candidates by, measured from one run().
struct SystemMetrics {
    SimTime sim_duration{};
    std::uint64_t jobs_completed = 0;        ///< behavior invocations finished
    std::uint64_t task_deadline_misses = 0;  ///< summed RTOS-level misses
    std::uint64_t latency_samples = 0;
    std::uint64_t latency_misses = 0;  ///< samples above AppSpec::latency_deadline
    SimTime latency_p50{};             ///< nearest-rank percentiles over samples
    SimTime latency_p95{};
    SimTime latency_max{};
    std::vector<PeMetrics> pes;
    std::vector<BusMetrics> buses;
};

/// An elaborated system: owns the kernel, PEs, buses, and channel machinery.
/// Lifecycle: construct (validates the triple), set_behavior() for tasks
/// needing real bodies, run() once, read metrics(). Single-shot by design —
/// a sweep elaborates a fresh System per candidate, which is what keeps
/// candidates independent and the sweep embarrassingly parallel.
class System {
public:
    System(AppSpec app, PlatformSpec platform, MappingSpec mapping,
           SystemOptions opts = {});
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /// Replace the default dataflow body of `task`. Call before run().
    void set_behavior(const std::string& task, Behavior b);

    /// Elaborate tasks + stimuli and simulate: to completion when `horizon`
    /// is zero, else up to `horizon`.
    void run(SimTime horizon = {});

    [[nodiscard]] SystemMetrics metrics() const;

    [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
    [[nodiscard]] arch::ProcessingElement* pe(const std::string& name);
    [[nodiscard]] arch::Bus* bus(const std::string& name);
    [[nodiscard]] const AppSpec& app() const { return app_; }
    [[nodiscard]] const PlatformSpec& platform() const { return platform_; }
    [[nodiscard]] const MappingSpec& mapping() const { return mapping_; }
    [[nodiscard]] const std::vector<SimTime>& latencies() const { return latencies_; }

    /// TaskCtx::record_latency target; callable directly by raw-process
    /// instrumentation as well.
    void record_latency(SimTime sample) { latencies_.push_back(sample); }

    /// The span sink wired at elaboration (null when tracing is off).
    [[nodiscard]] obs::SpanSink* spans() const { return opts_.spans; }

private:
    friend class TaskCtx;

    struct ChannelImpl;

    [[nodiscard]] ChannelImpl* channel_impl(const std::string& name);
    [[nodiscard]] arch::ProcessingElement* pe_of(const std::string& task);
    [[nodiscard]] int master_of(const arch::ProcessingElement* pe) const;
    void spawn_stimuli();
    void spawn_tasks();
    void default_behavior(TaskCtx& ctx);

    AppSpec app_;
    PlatformSpec platform_;
    MappingSpec mapping_;
    SystemOptions opts_;
    sim::Kernel kernel_;
    /// Declared before pes_ so the tracers outlive the cores: ~OsCore raises
    /// on_core_teardown, which each tracer uses to close its open state spans.
    std::vector<std::unique_ptr<obs::SpanTracer>> span_tracers_;
    std::vector<std::unique_ptr<arch::ProcessingElement>> pes_;
    std::vector<std::unique_ptr<arch::Bus>> buses_;
    std::vector<std::unique_ptr<ChannelImpl>> channels_;
    std::vector<std::pair<std::string, Behavior>> behaviors_;
    std::vector<SimTime> latencies_;
    std::uint64_t jobs_done_ = 0;
    bool ran_ = false;
};

}  // namespace slm::sys
