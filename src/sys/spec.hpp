#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "rtos/scheduler.hpp"
#include "sim/time.hpp"

namespace slm::sys {

/// Declarative system specification — the inputs of the paper's Fig. 1 flow
/// as data instead of code. Three orthogonal specs describe a system:
///
///  - AppSpec: *what* computes — tasks (nominal execution cost, optional
///    period/deadline), the channels between them, and external stimuli.
///  - PlatformSpec: *where* it could run — named PEs with relative speeds and
///    scheduling policies, plus shared buses with transfer cost/arbitration.
///  - MappingSpec: *which where* — the binding of every task to a PE, of
///    every channel to an intra-PE OS queue or a bus link, and the per-PE
///    priorities.
///
/// The elaborator (elaborate.hpp) instantiates a runnable simulation from the
/// triple; the sweep engine (sweep.hpp) enumerates and evaluates mapping
/// candidates. Specs are plain value types: copyable, comparable by hand,
/// trivially built in tests. validate() checks cross-references before
/// elaboration so a bad mapping fails with a message, not an assert.

/// One schedulable computation. `exec_cost` is *nominal* work per job: the
/// elaborated task charges it through OsCore::time_wait, so the same spec
/// costs less wall time on a faster PE (RtosConfig::speed_num/speed_den).
struct TaskSpec {
    std::string name;
    SimTime exec_cost{};         ///< nominal execution time per job
    SimTime period{};            ///< release period; zero = data-driven (runs on input)
    SimTime deadline{};          ///< relative deadline; zero = period (periodic) / none
    std::uint64_t jobs = 1;      ///< jobs to execute before terminating (> 0)
    int priority = 10;           ///< default priority; MappingSpec may override
};

/// A typed point-to-point message stream. Routing is the mapping's decision:
/// intra-PE channels become rtos::OsQueue, cross-PE channels become
/// arch::BusLink + ISR + semaphore (the paper's Fig. 3 communication stack).
struct ChannelSpec {
    std::string name;
    std::string src;             ///< producing task; empty = stimulus-fed
    std::string dst;             ///< consuming task
    std::size_t message_bytes = 4;
    std::size_t capacity = 0;    ///< intra-PE queue depth; 0 = unbounded
};

/// An external periodic token source feeding one stimulus channel (the
/// environment: an A/D converter, a sensor, a radio frontend).
struct StimulusSpec {
    std::string name;
    std::string channel;         ///< ChannelSpec with empty src
    SimTime period{};
    std::uint64_t count = 1;
};

struct AppSpec {
    std::string name;
    std::vector<TaskSpec> tasks;
    std::vector<ChannelSpec> channels;
    std::vector<StimulusSpec> stimuli;
    /// End-to-end latency bound checked against TaskCtx::record_latency
    /// samples; zero disables the check.
    SimTime latency_deadline{};

    [[nodiscard]] const TaskSpec* task(const std::string& name) const;
    [[nodiscard]] const ChannelSpec* channel(const std::string& name) const;
};

/// One processing element of a candidate platform.
struct PeSpec {
    std::string name;
    /// Relative speed as an exact rational (see RtosConfig::speed_num):
    /// 2/1 charges half the nominal time, 1/2 doubles it.
    std::uint32_t speed_num = 1;
    std::uint32_t speed_den = 1;
    rtos::SchedPolicy policy = rtos::SchedPolicy::Priority;
    SimTime context_switch_overhead{};
    /// Relative unit cost (die area / price); reported by sweeps so a ranking
    /// can weigh performance against platform expense.
    std::uint32_t cost = 1;
};

/// One shared interconnect of a candidate platform.
struct BusSpec {
    std::string name;
    SimTime setup = nanoseconds(100);
    SimTime per_byte = nanoseconds(10);
    arch::BusArbitration arbitration = arch::BusArbitration::Fifo;
};

struct PlatformSpec {
    std::string name;
    std::vector<PeSpec> pes;
    std::vector<BusSpec> buses;

    [[nodiscard]] const PeSpec* pe(const std::string& name) const;
    [[nodiscard]] const BusSpec* bus(const std::string& name) const;
};

/// Task → PE binding with the priority the task runs at on that PE
/// (smaller = higher, the RTOS convention).
struct TaskBinding {
    std::string task;
    std::string pe;
    int priority = 10;
};

/// Channel → transport route. An empty `bus` routes the channel through an
/// intra-PE OS queue (src and dst must then be bound to the same PE); a bus
/// name routes it through a BusLink on that bus.
struct ChannelRoute {
    std::string channel;
    std::string bus;
};

struct MappingSpec {
    std::string name;
    std::vector<TaskBinding> bindings;
    std::vector<ChannelRoute> routes;

    [[nodiscard]] const TaskBinding* binding(const std::string& task) const;
    [[nodiscard]] const ChannelRoute* route(const std::string& channel) const;
    /// "driver@1->DSP0 encoder@3->DSP0 decoder@1->DSP1" — one token per
    /// binding in binding order; the human-readable candidate label of sweep
    /// reports.
    [[nodiscard]] std::string summary() const;
};

/// Cross-check the spec triple. Returns one message per defect (empty =
/// valid): duplicate/unknown names, unbound tasks, unrouted channels,
/// intra-PE routes crossing PEs, stimulus channels not bus-routed,
/// non-positive speeds or job counts.
[[nodiscard]] std::vector<std::string> validate(const AppSpec& app,
                                                const PlatformSpec& platform,
                                                const MappingSpec& mapping);

}  // namespace slm::sys
