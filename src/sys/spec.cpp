#include "sys/spec.hpp"

#include <unordered_map>
#include <unordered_set>

namespace slm::sys {

namespace {

template <typename Vec>
auto find_by_name(const Vec& v, const std::string& name) -> const typename Vec::value_type* {
    for (const auto& e : v) {
        if (e.name == name) {
            return &e;
        }
    }
    return nullptr;
}

void check_unique(const std::vector<std::string>& names, const char* what,
                  std::vector<std::string>& errors) {
    std::unordered_set<std::string> seen;
    for (const auto& n : names) {
        if (n.empty()) {
            errors.push_back(std::string(what) + " with empty name");
        } else if (!seen.insert(n).second) {
            errors.push_back(std::string("duplicate ") + what + " name '" + n + "'");
        }
    }
}

}  // namespace

const TaskSpec* AppSpec::task(const std::string& n) const { return find_by_name(tasks, n); }
const ChannelSpec* AppSpec::channel(const std::string& n) const {
    return find_by_name(channels, n);
}
const PeSpec* PlatformSpec::pe(const std::string& n) const { return find_by_name(pes, n); }
const BusSpec* PlatformSpec::bus(const std::string& n) const { return find_by_name(buses, n); }

const TaskBinding* MappingSpec::binding(const std::string& task) const {
    for (const auto& b : bindings) {
        if (b.task == task) {
            return &b;
        }
    }
    return nullptr;
}

const ChannelRoute* MappingSpec::route(const std::string& channel) const {
    for (const auto& r : routes) {
        if (r.channel == channel) {
            return &r;
        }
    }
    return nullptr;
}

std::string MappingSpec::summary() const {
    std::string s;
    for (const auto& b : bindings) {
        if (!s.empty()) {
            s += ' ';
        }
        s += b.task + "@" + std::to_string(b.priority) + "->" + b.pe;
    }
    return s;
}

std::vector<std::string> validate(const AppSpec& app, const PlatformSpec& platform,
                                  const MappingSpec& mapping) {
    std::vector<std::string> errors;

    // Name uniqueness within each spec family.
    {
        std::vector<std::string> names;
        for (const auto& t : app.tasks) { names.push_back(t.name); }
        check_unique(names, "task", errors);
        names.clear();
        for (const auto& c : app.channels) { names.push_back(c.name); }
        check_unique(names, "channel", errors);
        names.clear();
        for (const auto& p : platform.pes) { names.push_back(p.name); }
        check_unique(names, "pe", errors);
        names.clear();
        for (const auto& b : platform.buses) { names.push_back(b.name); }
        check_unique(names, "bus", errors);
    }

    for (const auto& t : app.tasks) {
        if (t.jobs == 0) {
            errors.push_back("task '" + t.name + "' has jobs == 0");
        }
    }
    for (const auto& p : platform.pes) {
        if (p.speed_num == 0 || p.speed_den == 0) {
            errors.push_back("pe '" + p.name + "' has non-positive speed");
        }
    }

    // Every task bound exactly once, to an existing PE.
    {
        std::unordered_map<std::string, int> bound;
        for (const auto& b : mapping.bindings) {
            ++bound[b.task];
            if (app.task(b.task) == nullptr) {
                errors.push_back("binding references unknown task '" + b.task + "'");
            }
            if (platform.pe(b.pe) == nullptr) {
                errors.push_back("task '" + b.task + "' bound to unknown pe '" + b.pe + "'");
            }
        }
        for (const auto& t : app.tasks) {
            const auto it = bound.find(t.name);
            if (it == bound.end()) {
                errors.push_back("task '" + t.name + "' is not bound to any pe");
            } else if (it->second > 1) {
                errors.push_back("task '" + t.name + "' is bound more than once");
            }
        }
    }

    // Channel endpoints + routes.
    for (const auto& c : app.channels) {
        if (c.dst.empty() || app.task(c.dst) == nullptr) {
            errors.push_back("channel '" + c.name + "' has unknown dst task '" + c.dst + "'");
        }
        if (!c.src.empty() && app.task(c.src) == nullptr) {
            errors.push_back("channel '" + c.name + "' has unknown src task '" + c.src + "'");
        }
        const ChannelRoute* r = mapping.route(c.name);
        if (r == nullptr) {
            errors.push_back("channel '" + c.name + "' has no route");
            continue;
        }
        if (r->bus.empty()) {
            if (c.src.empty()) {
                errors.push_back("stimulus channel '" + c.name +
                                 "' must be routed over a bus (sources are external)");
                continue;
            }
            const TaskBinding* sb = mapping.binding(c.src);
            const TaskBinding* db = mapping.binding(c.dst);
            if (sb != nullptr && db != nullptr && sb->pe != db->pe) {
                errors.push_back("channel '" + c.name + "' routed intra-pe but '" + c.src +
                                 "'->" + sb->pe + " and '" + c.dst + "'->" + db->pe +
                                 " sit on different pes");
            }
        } else if (platform.bus(r->bus) == nullptr) {
            errors.push_back("channel '" + c.name + "' routed over unknown bus '" + r->bus +
                             "'");
        }
    }
    for (const auto& r : mapping.routes) {
        if (app.channel(r.channel) == nullptr) {
            errors.push_back("route references unknown channel '" + r.channel + "'");
        }
    }

    // Stimuli feed existing source-less channels with sane parameters.
    for (const auto& s : app.stimuli) {
        const ChannelSpec* c = app.channel(s.channel);
        if (c == nullptr) {
            errors.push_back("stimulus '" + s.name + "' feeds unknown channel '" + s.channel +
                             "'");
        } else if (!c->src.empty()) {
            errors.push_back("stimulus '" + s.name + "' feeds channel '" + s.channel +
                             "' which already has src task '" + c->src + "'");
        }
        if (s.period.is_zero()) {
            errors.push_back("stimulus '" + s.name + "' has zero period");
        }
        if (s.count == 0) {
            errors.push_back("stimulus '" + s.name + "' has count == 0");
        }
    }

    return errors;
}

}  // namespace slm::sys
