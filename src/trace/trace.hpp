#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/time.hpp"

namespace slm::trace {

/// What a trace record describes.
enum class RecordKind {
    TaskState,      ///< actor changed scheduling state (detail = new state name)
    ContextSwitch,  ///< CPU switched tasks (actor = incoming, detail = outgoing)
    Irq,            ///< interrupt occurred (actor = irq name)
    ExecBegin,      ///< actor started a computation span
    ExecEnd,        ///< actor finished a computation span
    ChannelOp,      ///< channel activity (actor = channel, detail = op)
    Marker,         ///< free-form annotation
};

[[nodiscard]] const char* to_string(RecordKind k);

/// Escape a string for embedding in a JSON string literal (backslash, quote,
/// and control characters). Shared by the Chrome-trace exporter and the
/// metrics JSON exporter (src/obs/metrics.cpp) so every JSON we emit agrees
/// on escaping.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Abstract recording interface for timestamped scheduling traces.
///
/// Every producer (the OS core via RtosConfig::tracer, SpecTraceAdapter, the
/// arch/vocoder models, hand-written markers) records through this interface,
/// so sinks are interchangeable: `TraceRecorder` keeps records as strings and
/// offers derived views and text exporters; `obs::BinaryTraceSink` interns
/// strings into a fixed-width binary form for hot recording paths and
/// converts losslessly to a TraceRecorder afterwards.
///
/// **Ordering contract:** records must arrive in nondecreasing time order.
/// Kernel- and RTOS-emitted records satisfy it by construction (timestamps
/// are kernel.now(), which never decreases); hand-recorded markers must take
/// care. Sinks assert the contract in debug builds.
class TraceSink {
public:
    virtual ~TraceSink() = default;

    virtual void exec_begin(SimTime t, std::string_view cpu, std::string_view actor) = 0;
    virtual void exec_end(SimTime t, std::string_view cpu, std::string_view actor) = 0;
    virtual void task_state(SimTime t, std::string_view cpu, std::string_view actor,
                            std::string_view state) = 0;
    virtual void context_switch(SimTime t, std::string_view cpu, std::string_view to,
                                std::string_view from) = 0;
    virtual void irq(SimTime t, std::string_view cpu, std::string_view irq_name) = 0;
    virtual void channel_op(SimTime t, std::string_view channel, std::string_view op) = 0;
    virtual void marker(SimTime t, std::string_view text) = 0;
};

/// One timestamped trace record. `cpu` names the resource (PE) the record
/// belongs to — empty for records that are not bound to a processor.
struct Record {
    SimTime t;
    RecordKind kind = RecordKind::Marker;
    std::string cpu;
    std::string actor;
    std::string detail;
};

/// A half-open interval [begin, end) during which `actor` was executing.
struct Interval {
    SimTime begin;
    SimTime end;
    std::string actor;

    friend bool operator==(const Interval&, const Interval&) = default;
};

/// Collects timestamped records from models (explicit ExecBegin/ExecEnd spans
/// in specification models, task-state changes emitted by the RTOS model) and
/// derives per-actor execution intervals, Gantt charts, and export formats.
///
/// Recording is append-only; every record copies its strings, so the hot
/// recording path allocates. For record-rate-sensitive runs, record into an
/// obs::BinaryTraceSink and convert (losslessly) to a TraceRecorder only when
/// a derived view or exporter is needed. All analysis walks the record list
/// on demand.
///
/// The ordering contract of TraceSink applies: a violation produces silently
/// wrong derived views, not an error. Debug builds assert the contract in
/// record(); release builds accept the record unchecked.
class TraceRecorder final : public TraceSink {
public:
    // ---- recording ----
    void record(Record r);
    void exec_begin(SimTime t, std::string_view cpu, std::string_view actor) override;
    void exec_end(SimTime t, std::string_view cpu, std::string_view actor) override;
    void task_state(SimTime t, std::string_view cpu, std::string_view actor,
                    std::string_view state) override;
    void context_switch(SimTime t, std::string_view cpu, std::string_view to,
                        std::string_view from) override;
    void irq(SimTime t, std::string_view cpu, std::string_view irq_name) override;
    void channel_op(SimTime t, std::string_view channel, std::string_view op) override;
    void marker(SimTime t, std::string_view text) override;

    void clear();

    // ---- raw access ----
    [[nodiscard]] const std::vector<Record>& records() const { return records_; }
    [[nodiscard]] std::size_t count(RecordKind k) const;
    [[nodiscard]] std::size_t context_switches(const std::string& cpu = {}) const;

    // ---- derived views ----

    /// Execution intervals of one actor, from ExecBegin/ExecEnd pairs and/or
    /// TaskState records entering/leaving the "Running" state. Open intervals
    /// at trace end are closed at the last record's timestamp.
    [[nodiscard]] std::vector<Interval> intervals(const std::string& actor) const;

    /// All distinct actors appearing in exec/task-state records, in order of
    /// first appearance.
    [[nodiscard]] std::vector<std::string> actors() const;

    /// Total time `actor` spent executing.
    [[nodiscard]] SimTime busy_time(const std::string& actor) const;

    /// True if any two execution intervals of different actors on `cpu`
    /// overlap — i.e. the serialization invariant of an RTOS model is violated.
    [[nodiscard]] bool has_concurrent_execution(const std::string& cpu) const;

    /// Timestamps of Irq records (optionally filtered by irq name).
    [[nodiscard]] std::vector<SimTime> irq_times(const std::string& name = {}) const;

    // ---- rendering / export ----

    /// ASCII Gantt chart: one row per actor, `width` time buckets across
    /// [t0, t1). A bucket is '#' if the actor executed during it. Interrupt
    /// times are marked on a footer row.
    [[nodiscard]] std::string render_gantt(SimTime t0, SimTime t1, int width = 72) const;

    /// Per-actor utilization summary over [t0, t1): busy time, share of the
    /// window, execution interval count, rendered as an aligned text table.
    [[nodiscard]] std::string utilization_report(SimTime t0, SimTime t1) const;

    /// CSV: t_ns,kind,cpu,actor,detail
    void write_csv(std::ostream& os) const;

    /// Value-change-dump with one wire per actor (1 = executing), viewable in
    /// GTKWave. Timescale 1 ns.
    void write_vcd(std::ostream& os) const;

    /// Chrome trace-event JSON (load in Perfetto / chrome://tracing): one
    /// lane per actor with complete ("X") events for execution intervals and
    /// instant events for IRQs. Timestamps in microseconds as the format
    /// requires. Actor and IRQ names are JSON-escaped via json_escape().
    void write_chrome_trace(std::ostream& os) const;

private:
    std::vector<Record> records_;
};

/// Automatic tracing for *specification* models: attach as a kernel observer
/// and every process's `waitfor` delay steps are recorded as execution spans
/// (the delay-as-computation convention of spec models — paper Fig. 8(a)
/// shows exactly these spans). Processes blocked on events or joins record
/// nothing.
///
///     trace::TraceRecorder rec;
///     trace::SpecTraceAdapter adapter{kernel, rec, "PE0"};
///     kernel.add_observer(&adapter);
///
/// Use an explicit name filter to keep testbench/device processes out of the
/// trace. Not intended for RTOS-based models — the OS core (rtos::OsCore,
/// under any API personality) emits richer task-state records through
/// RtosConfig::tracer instead (any TraceSink: a TraceRecorder, or an
/// obs::BinaryTraceSink when recording overhead matters).
class SpecTraceAdapter final : public sim::KernelObserver {
public:
    SpecTraceAdapter(sim::Kernel& kernel, TraceSink& rec, std::string cpu = {})
        : kernel_(kernel), rec_(rec), cpu_(std::move(cpu)) {}

    /// Record only processes whose name satisfies `pred`.
    void set_filter(std::function<bool(const std::string&)> pred) {
        filter_ = std::move(pred);
    }

    void on_process_state(const sim::Process& p, sim::ProcState from,
                          sim::ProcState to) override {
        if (filter_ && !filter_(p.name())) {
            return;
        }
        if (to == sim::ProcState::WaitingTime) {
            rec_.exec_begin(kernel_.now(), cpu_, p.name());
        } else if (from == sim::ProcState::WaitingTime) {
            rec_.exec_end(kernel_.now(), cpu_, p.name());
        }
    }

private:
    sim::Kernel& kernel_;
    TraceSink& rec_;
    std::string cpu_;
    std::function<bool(const std::string&)> filter_;
};

}  // namespace slm::trace
